package main

import (
	"context"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pi/client"
)

// onTimeRow is one syntactically valid row for the olap workload's
// ontime table (16 columns).
var onTimeRow = []any{"AA", "AA", "CAP", "NYP", "CA", "NY", 1, 1, 1, 10, 12, 8, 500, 1, 0, 0}

// buildServer compiles pi-serve once into a temp dir shared by the
// crash tests.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pi-serve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build pi-serve: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startServer launches pi-serve in WAL mode against dataDir and waits
// for it to serve health.
func startServer(t *testing.T, bin, addr, dataDir string, extra ...string) (*exec.Cmd, *client.Client) {
	t.Helper()
	args := append([]string{
		"-addr", addr, "-workloads", "olap", "-n", "20", "-rows", "60",
		"-data-dir", dataDir, "-wal",
	}, extra...)
	cmd := exec.Command(bin, args...)
	var out strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	c, err := client.New("http://" + addr)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := c.Health(ctx)
		cancel()
		if err == nil {
			return cmd, c
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became healthy: %v\n--- server output ---\n%s", err, out.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestCrashRecoveryNoAckedLoss is the tentpole's acceptance test at
// the process level: concurrent writers stream acked appends, the
// server dies with SIGKILL mid-stream (no shutdown snapshot), and the
// restarted process must serve every row that was acknowledged. The
// only tolerated surplus is one in-flight row per writer — journaled
// under the feed lock but killed before its HTTP response left.
func TestCrashRecoveryNoAckedLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildServer(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)

	cmd, c := startServer(t, bin, addr, dataDir, "-wal-sync", "0")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	probe, err := c.AppendRows(ctx, "olap", "ontime", [][]any{onTimeRow}, true)
	if err != nil {
		t.Fatal(err)
	}
	base := probe.RowCount // 60 generated + the probe

	const writers = 4
	var acked atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wc, err := client.New("http://"+addr, client.WithRetries(0))
			if err != nil {
				return
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				actx, acancel := context.WithTimeout(context.Background(), 2*time.Second)
				_, err := wc.AppendRows(actx, "olap", "ontime", [][]any{onTimeRow}, true)
				acancel()
				if err != nil {
					return // the kill landed; unacked by definition
				}
				acked.Add(1)
			}
		}()
	}

	// Let the writers build up a journaled tail, then murder the
	// process mid-append. No snapshot has covered these rows.
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()
	ackedRows := int(acked.Load())
	if ackedRows == 0 {
		t.Fatal("no writer got an ack before the kill; test proves nothing")
	}

	_, c2 := startServer(t, bin, addr, dataDir, "-wal-sync", "0")
	probe2, err := c2.AppendRows(ctx, "olap", "ontime", [][]any{onTimeRow}, true)
	if err != nil {
		t.Fatal(err)
	}
	got := probe2.RowCount - 1 // exclude this probe
	if got < base+ackedRows {
		t.Fatalf("restarted server has %d rows, but %d were acked before the kill (base %d): acked writes lost",
			got, ackedRows, base)
	}
	if got > base+ackedRows+writers {
		t.Fatalf("restarted server has %d rows, more than acked %d + %d in-flight (base %d): phantom rows applied",
			got, ackedRows, writers, base)
	}
	t.Logf("killed with %d acked appends; restart serves %d rows (base %d, tolerated in-flight %d)",
		ackedRows, got, base, got-base-ackedRows)
}

// TestCrashRecoveryTornTail: bytes torn off or garbled at the end of
// the active segment (the shape a mid-append SIGKILL leaves) must be
// truncated on restart, never applied and never fatal.
func TestCrashRecoveryTornTail(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildServer(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)

	cmd, c := startServer(t, bin, addr, dataDir, "-wal-sync", "0")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	probe, err := c.AppendRows(ctx, "olap", "ontime", [][]any{onTimeRow}, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Garble the journaled tail: append torn bytes to the newest
	// segment, as if the crash had interrupted a frame write.
	segs, err := filepath.Glob(filepath.Join(dataDir, "olap.wal", "*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments written: %v (%v)", segs, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, c2 := startServer(t, bin, addr, dataDir, "-wal-sync", "0")
	probe2, err := c2.AppendRows(ctx, "olap", "ontime", [][]any{onTimeRow}, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := probe2.RowCount - 1; got != probe.RowCount {
		t.Fatalf("restart after torn tail serves %d rows, want %d (acked state exactly, torn bytes dropped)",
			got, probe.RowCount)
	}
}

// TestWALBootRefusesOrphanLog: a data dir whose WAL has no base
// snapshot to replay onto must fail the boot loudly instead of
// serving as if the acked writes never happened.
func TestWALBootRefusesOrphanLog(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes; skipped in -short")
	}
	bin := buildServer(t)
	dataDir := t.TempDir()
	addr := freeAddr(t)

	cmd, c := startServer(t, bin, addr, dataDir, "-wal-sync", "0")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.AppendRows(ctx, "olap", "ontime", [][]any{onTimeRow}, true); err != nil {
		t.Fatal(err)
	}
	cmd.Process.Kill()
	cmd.Wait()

	// Remove the base + manifest but keep the log: unrecoverable.
	for _, pat := range []string{"olap.snap", "olap.manifest.json", "*.delta"} {
		matches, _ := filepath.Glob(filepath.Join(dataDir, pat))
		for _, m := range matches {
			os.Remove(m)
		}
	}

	reboot := exec.Command(bin, "-addr", addr, "-workloads", "olap", "-n", "20", "-rows", "60",
		"-data-dir", dataDir, "-wal", "-wal-sync", "0")
	out, err := reboot.CombinedOutput()
	if err == nil {
		reboot.Process.Kill()
		t.Fatal("boot over an orphaned WAL succeeded")
	}
	if !strings.Contains(string(out), "no snapshot or manifest") {
		t.Fatalf("boot failed for the wrong reason: %s", out)
	}
}
