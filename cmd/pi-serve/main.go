// Command pi-serve mines interfaces from the paper's workloads and
// serves them over the versioned HTTP API: the generated pages become
// live dashboards whose widget interactions execute against the
// in-memory engine, and — with ingestion enabled — the dashboards keep
// improving as new query-log entries stream in.
//
// Usage:
//
//	pi-serve [-addr :8080] [-workloads olap,adhoc,sdss] [-n 150] [-rows 2000]
//	         [-seed 7] [-cache 256] [-ingest] [-batch 8] [-flush-every 2s]
//	         [-tail id=path[,id=path...]] [-token T | -token-file F]
//	         [-data-dir DIR] [-snapshot-every 30s]
//	         [-wal] [-wal-sync 2ms] [-wal-segment-bytes N]
//	         [-shard-addr http://HOST:PORT]
//	pi-serve -check [-addr :8080] [-token T | -token-file F]
//
// Endpoints (also mounted unversioned for legacy pages):
//
//	GET  /v1/interfaces             list hosted interfaces
//	GET  /v1/interfaces/{id}        one interface's widgets and initial query
//	GET  /v1/interfaces/{id}/page   the live HTML dashboard (reloads on epoch bump)
//	GET  /v1/interfaces/{id}/epoch  the interface's current epoch
//	POST /v1/interfaces/{id}/query  bind widget state, execute, return rows (auth)
//	POST /v1/interfaces/{id}/log    ingest new query-log entries (auth)
//	POST /v1/interfaces/{id}/rows   append dataset rows to one table (auth)
//	DELETE /v1/interfaces/{id}      unhost an interface (auth)
//	POST /v1/snapshot               persist every interface to the data dir (auth)
//	GET  /v1/healthz                build info, uptime, epochs, cache hit rates
//	GET  /v1/debug                  cache and traffic counters
//
// With -shard-addr the process runs as a shard: the same v1 surface
// plus the /v1/shard admin surface (load, export, accept, relinquish,
// and the replication control plane: follow, apply, promote, demote,
// unfollow, targets, replica status) that cmd/pi-router migrates
// interfaces and replicates them through; requests for an interface
// this shard handed off answer with a structured "moved" error the
// SDK follows, and requests that need the owner of a replicated
// interface answer "not_owner" pointing at it. A shard may boot with
// -workloads "" and host nothing until the router seeds it. See
// README "Sharding" and "Replication & failover".
//
// With -token (or -token-file) the query and log endpoints require
// "Authorization: Bearer <token>"; metadata GETs stay open. Served
// pages pick the token up from their URL fragment: open
// /v1/interfaces/olap/page#token=<token>.
//
// With -data-dir the server is durable: on boot it restores every
// interface saved under the dir (same-or-later epoch, identical
// dataset row counts, no access to the original logs needed) and only
// mines workloads that have no snapshot; while running it persists on
// POST /v1/snapshot, every -snapshot-every interval (when set), and on
// graceful shutdown. Kill it with SIGKILL and restart it with the same
// -data-dir: the dashboards come back. Adding -wal journals every
// acked write (log batches, row appends, epoch bumps) to a per-
// interface write-ahead log before the ack returns, so a SIGKILL
// loses nothing that was acknowledged: restart merges the newest
// snapshot plus its differential deltas and replays the logged tail.
// -wal-sync widens fsyncs into a group-commit window; 0 syncs before
// every ack. See README "Durability".
//
// -check flips the binary into client mode: it probes a running
// pi-serve at -addr through the pi/client SDK (health, list, a query
// round-trip, and — when a token is set — an auth rejection check) and
// exits non-zero on any failure. `make api-smoke` builds on it.
//
// Example:
//
//	pi-serve -token secret &
//	pi-serve -check -token secret
//	curl -s localhost:8080/v1/interfaces
//	curl -s -X POST localhost:8080/v1/interfaces/olap/query \
//	     -H 'Authorization: Bearer secret' \
//	     -d '{"widgets":[],"limit":5}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/workload"
	"repro/pi/client"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (serve) or target address (-check)")
	workloads := flag.String("workloads", "olap,adhoc,sdss", "comma-separated workloads to mine and host")
	n := flag.Int("n", 150, "queries per mined log")
	rows := flag.Int("rows", 2000, "rows per synthetic dataset table")
	seed := flag.Int64("seed", 7, "workload generator seed")
	cache := flag.Int("cache", api.DefaultCacheSize, "per-interface result/plan-cache entries (0 disables)")
	enableIngest := flag.Bool("ingest", true, "enable live log ingestion (POST /v1/interfaces/{id}/log)")
	batch := flag.Int("batch", 8, "ingested entries per incremental re-mine")
	flushEvery := flag.Duration("flush-every", 2*time.Second, "background flush interval for partial batches")
	tails := flag.String("tail", "", "comma-separated id=path log files (or globs like 'logs/*.log') to tail into hosted interfaces")
	dataDir := flag.String("data-dir", "", "directory for durable snapshots (enables restore-on-boot and POST /v1/snapshot)")
	snapEvery := flag.Duration("snapshot-every", 0, "periodic background snapshot interval (0 = only on demand/shutdown; needs -data-dir)")
	enableWAL := flag.Bool("wal", false, "write-ahead-log every acked publish before its ack returns (needs -data-dir); restart replays the tail so no acked write is lost")
	walSync := flag.Duration("wal-sync", 0, "group-commit window for WAL fsyncs (0 = fsync before every ack; e.g. 2ms trades a bounded window for throughput)")
	walSegBytes := flag.Int64("wal-segment-bytes", 0, "WAL segment rotation size in bytes (0 = default 4MiB)")
	token := flag.String("token", "", "bearer token required on query/log endpoints (empty = open)")
	tokenFile := flag.String("token-file", "", "file holding the bearer token (overrides -token)")
	shardAddr := flag.String("shard-addr", "", "advertised base URL for shard mode, e.g. http://10.0.0.5:8081 (enables the /v1/shard admin surface; needs -ingest)")
	pprofAddr := flag.String("pprof-addr", "", "private listen address for net/http/pprof, e.g. localhost:6060 (empty = disabled; keep it off public interfaces)")
	logFormat := flag.String("log-format", server.LogText, "request-log line shape: text or json (one JSON object per line)")
	slowThresh := flag.Duration("slow-threshold", 250*time.Millisecond, "queries at or above this duration are recorded in GET /v1/debug/slow")
	slowSample := flag.Int("slow-sample", 0, "also record every Nth query regardless of duration (0 = threshold only)")
	slowCap := flag.Int("slow-ring", 256, "slow-query ring capacity (newest entries win)")
	check := flag.Bool("check", false, "probe a running pi-serve at -addr via the Go SDK and exit")
	flag.Parse()

	tok, err := server.ResolveToken(*token, *tokenFile)
	if err != nil {
		fatal(err)
	}

	if *check {
		if err := runCheck(*addr, tok); err != nil {
			fatal(err)
		}
		return
	}

	server.StartPprof(*pprofAddr, log.Printf)

	reg := api.NewRegistryWithCache(*cache)
	ing := ingest.New(reg, ingest.Options{BatchSize: *batch, FlushInterval: *flushEvery})

	// With a data dir, the service restores saved interfaces before
	// anything is mined; workloads that came back from disk are not
	// re-hosted (that is the whole point: the accumulated log and the
	// appended rows survive, the original workload generator is not
	// consulted).
	var svc *api.Service
	var persister *ingest.Persister
	var walMgr *wal.Manager
	if *dataDir != "" {
		if !*enableIngest {
			fatal(fmt.Errorf("-data-dir needs -ingest (snapshots cover live-hosted interfaces)"))
		}
		popts := ingest.PersistOptions{Funcs: attachWorkloadFuncs}
		if *enableWAL {
			walMgr = wal.NewManager(*dataDir, wal.Options{
				SegmentBytes: *walSegBytes,
				SyncInterval: *walSync,
			})
			popts.WAL = walMgr
		}
		persister = ingest.NewPersister(*dataDir, ing, popts)
		var restored *api.RestoreResult
		var rerr error
		svc, restored, rerr = api.NewPersistentService(reg, persister)
		if rerr != nil {
			fatal(fmt.Errorf("restore from %s: %w", *dataDir, rerr))
		}
		for _, row := range restored.Interfaces {
			log.Printf("restored %-6s epoch %d, %d log entries, %d dataset rows from %s",
				row.ID, row.Epoch, row.LogEntries, row.Rows, *dataDir)
		}
	} else {
		svc = api.NewService(reg)
	}
	if *snapEvery > 0 && persister == nil {
		fatal(fmt.Errorf("-snapshot-every needs -data-dir"))
	}
	if *enableWAL && *dataDir == "" {
		fatal(fmt.Errorf("-wal needs -data-dir (the log lives alongside the snapshots it replays onto)"))
	}

	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := reg.Get(name); ok {
			continue // restored from the data dir
		}
		logq, db, title, err := buildWorkload(name, *n, *rows, *seed)
		if err != nil {
			fatal(err)
		}
		var h *api.Hosted
		if *enableIngest {
			h, err = ing.Host(name, title, logq, db, core.DefaultLiveOptions())
		} else {
			var iface *core.Interface
			iface, err = core.Generate(logq, core.DefaultOptions())
			if err == nil {
				h, err = reg.Add(name, title, iface, db)
			}
		}
		if err != nil {
			fatal(fmt.Errorf("host %s: %w", name, err))
		}
		iface := h.Iface()
		log.Printf("hosted %-6s %d queries -> %d widgets (cost %.0f) at /v1/interfaces/%s/page",
			h.ID, logq.Len(), len(iface.Widgets), iface.Cost(), h.ID)
	}
	// A shard may legitimately boot empty (-workloads ''): a fresh
	// process joining a fleet hosts nothing until the router migrates
	// an interface onto it or seeds it as a follower replica.
	if reg.Len() == 0 && *shardAddr == "" {
		fatal(fmt.Errorf("no workloads hosted"))
	}

	// In WAL mode every interface must have a base snapshot on disk
	// before its first acked write is journaled: a log with no base to
	// replay onto is unrecoverable, so freshly mined workloads are
	// persisted once up front, before the listener opens.
	if walMgr != nil {
		if res, err := svc.Snapshot(); err != nil {
			fatal(fmt.Errorf("initial snapshot: %w", err))
		} else if len(res.Interfaces) > 0 {
			log.Printf("wal: initial snapshot of %d interface(s) to %s (sync window %s)",
				len(res.Interfaces), res.Dir, walSync.String())
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if persister != nil && *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if res, err := svc.Snapshot(); err != nil {
						log.Printf("periodic snapshot: %v", err)
					} else {
						log.Printf("snapshot: %d interface(s) persisted to %s in %.1fms",
							len(res.Interfaces), res.Dir, res.ElapsedMS)
					}
				}
			}
		}()
	}
	if *enableIngest {
		svc.SetIngestor(ing)
		go ing.Run(ctx)
		for _, spec := range strings.Split(*tails, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			id, path, ok := strings.Cut(spec, "=")
			if !ok {
				fatal(fmt.Errorf("bad -tail spec %q (want id=path)", spec))
			}
			go func(id, path string) {
				log.Printf("tailing %s into /v1/interfaces/%s", path, id)
				if err := ing.Tail(ctx, id, path, time.Second); err != nil && ctx.Err() == nil {
					log.Printf("tail %s: %v", path, err)
				}
			}(id, path)
		}
	} else if *tails != "" {
		fatal(fmt.Errorf("-tail needs -ingest"))
	}

	// Observability: process gauges, the Prometheus exposition at
	// GET /v1/metrics, and the slow-query ring at GET /v1/debug/slow.
	obs.Default.RegisterProcess()
	ring := obs.NewSlowRing(*slowCap, *slowThresh, *slowSample)
	svc.SetSlowRing(ring)
	reqLog := log.Default()
	if *logFormat == server.LogJSON {
		// JSON lines must not carry the default date/time prefix.
		reqLog = log.New(os.Stderr, "", 0)
	}
	opts := []server.Option{
		server.WithLogger(reqLog),
		server.WithLogFormat(*logFormat),
		server.WithMetrics(obs.Default),
		server.WithSlowRing(ring),
	}
	auth := server.AuthConfig{Token: tok}
	if tok != "" {
		opts = append(opts, server.WithAuth(auth))
	}
	// In shard mode the server fronts a shard.Node instead of the bare
	// service: identical v1 surface, plus moved tombstones and the
	// /v1/shard admin surface a router migrates interfaces through.
	var servicer api.Servicer = svc
	if *shardAddr != "" {
		if !*enableIngest {
			fatal(fmt.Errorf("-shard-addr needs -ingest (snapshot export rides live feeds)"))
		}
		node, err := shard.NewNode(svc, ing, shard.NodeOptions{
			Addr:      *shardAddr,
			Funcs:     attachWorkloadFuncs,
			Persister: persister,
			Token:     tok,
		})
		if err != nil {
			fatal(err)
		}
		servicer = node
		opts = append(opts, server.WithAdmin("/v1/shard/", node.AdminHandler(auth)))
		log.Printf("shard mode: advertising %s, admin surface at /v1/shard/ (auth %v)", node.Addr(), tok != "")
	}
	hs := server.New(servicer, opts...).HTTPServer(*addr)

	log.Printf("serving %d interface(s) on %s (ingestion %v, auth %v)",
		reg.Len(), *addr, *enableIngest, tok != "")
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		// Graceful shutdown: stop accepting, drain in-flight requests,
		// give stragglers a bounded grace period.
		log.Printf("signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
		// A final snapshot so a graceful stop never loses ingested state
		// (a SIGKILL loses only what arrived since the last snapshot).
		if persister != nil {
			if res, err := svc.Snapshot(); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				log.Printf("final snapshot: %d interface(s) persisted to %s", len(res.Interfaces), res.Dir)
			}
		}
		if walMgr != nil {
			if err := walMgr.Close(); err != nil {
				log.Printf("wal close: %v", err)
			}
		}
	}
}

// attachWorkloadFuncs re-binds table-valued functions a snapshot file
// cannot carry: the synthetic SDSS spatial UDF re-attaches to the
// restored Galaxy table.
func attachWorkloadFuncs(id string, st *store.Store) {
	if gal, ok := st.Snapshot().Table("Galaxy"); ok {
		st.AddFunc("dbo.fGetNearbyObjEq", engine.FGetNearbyObjEq(gal))
	}
}

// runCheck drives a running server through the pi/client SDK: health,
// interface listing, a query round-trip against the first interface,
// and — with auth configured — a rejected unauthenticated query.
func runCheck(addr, tok string) error {
	base := addr
	if strings.HasPrefix(base, ":") {
		base = "127.0.0.1" + base
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c, err := client.New(base, client.WithToken(tok))
	if err != nil {
		return err
	}
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("health: %w", err)
	}
	fmt.Printf("health: %s (%s, up %.0fs, ingestion %v, %d interfaces)\n",
		h.Status, h.GoVersion, h.UptimeSeconds, h.Ingestion, len(h.Interfaces))
	list, err := c.ListInterfaces(ctx)
	if err != nil {
		return fmt.Errorf("list interfaces: %w", err)
	}
	if len(list) == 0 {
		return fmt.Errorf("server hosts no interfaces")
	}
	id := list[0].ID
	detail, err := c.GetInterface(ctx, id)
	if err != nil {
		return fmt.Errorf("get %s: %w", id, err)
	}
	resp, err := c.Query(ctx, id, api.QueryRequest{Limit: 5})
	if err != nil {
		return fmt.Errorf("query %s: %w", id, err)
	}
	fmt.Printf("query %s: %d/%d rows at epoch %d (%d widgets, truncated %v)\n",
		id, len(resp.Rows), resp.RowCount, resp.Epoch, len(detail.Widgets), resp.Truncated)

	if tok != "" {
		anon, err := client.New(base, client.WithRetries(0))
		if err != nil {
			return err
		}
		_, err = anon.Query(ctx, id, api.QueryRequest{Limit: 1})
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnauthorized {
			return fmt.Errorf("unauthenticated query was not rejected with unauthorized: %v", err)
		}
		fmt.Printf("auth: unauthenticated query correctly rejected (%s)\n", apiErr.Code)
	}
	fmt.Println("check: ok")
	return nil
}

// buildWorkload returns the query log and the dataset for one named
// workload.
func buildWorkload(name string, n, rows int, seed int64) (*qlog.Log, *engine.DB, string, error) {
	switch name {
	case "olap":
		return workload.OLAPLog(n, seed), engine.OnTimeDB(rows), "OnTime OLAP dashboard", nil
	case "adhoc":
		return workload.AdhocLog(n, seed), engine.OnTimeDB(rows), "OnTime ad-hoc study", nil
	case "sdss":
		return workload.SDSSClient(workload.Lookup, seed, n), engine.SDSSDB(rows), "SDSS spectro explorer", nil
	}
	return nil, nil, "", fmt.Errorf("unknown workload %q (want olap, adhoc or sdss)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pi-serve:", err)
	os.Exit(1)
}
