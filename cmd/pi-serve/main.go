// Command pi-serve mines interfaces from the paper's workloads and
// serves them over HTTP: the generated pages become live dashboards
// whose widget interactions execute against the in-memory engine, and
// — with ingestion enabled — the dashboards keep improving as new
// query-log entries stream in.
//
// Usage:
//
//	pi-serve [-addr :8080] [-workloads olap,adhoc,sdss] [-n 150] [-rows 2000]
//	         [-seed 7] [-cache 256] [-ingest] [-batch 8] [-flush-every 2s]
//	         [-tail id=path[,id=path...]]
//
// Endpoints:
//
//	GET  /interfaces             list hosted interfaces
//	GET  /interfaces/{id}        one interface's widgets and initial query
//	GET  /interfaces/{id}/page   the live HTML dashboard (reloads on epoch bump)
//	GET  /interfaces/{id}/epoch  the interface's current epoch
//	POST /interfaces/{id}/query  bind widget state, execute, return rows
//	POST /interfaces/{id}/log    ingest new query-log entries (text or JSON)
//	GET  /healthz                build info, uptime, epochs, cache hit rates
//	GET  /debug                  cache and traffic counters
//
// Example:
//
//	pi-serve &
//	curl -s localhost:8080/interfaces
//	curl -s -X POST localhost:8080/interfaces/olap/query \
//	     -d '{"widgets":[{"path":"3/0","value":{"type":"ColExpr","attrs":{"value":"uniquecarrier"}}}]}'
//	curl -s -X POST 'localhost:8080/interfaces/olap/log?flush=1' \
//	     --data-binary 'SELECT DestState, COUNT(Delay) FROM ontime WHERE Day = 28 GROUP BY DestState'
//	curl -s localhost:8080/healthz
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/qlog"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workloads := flag.String("workloads", "olap,adhoc,sdss", "comma-separated workloads to mine and host")
	n := flag.Int("n", 150, "queries per mined log")
	rows := flag.Int("rows", 2000, "rows per synthetic dataset table")
	seed := flag.Int64("seed", 7, "workload generator seed")
	cache := flag.Int("cache", server.DefaultCacheSize, "per-interface result/plan-cache entries (0 disables)")
	enableIngest := flag.Bool("ingest", true, "enable live log ingestion (POST /interfaces/{id}/log)")
	batch := flag.Int("batch", 8, "ingested entries per incremental re-mine")
	flushEvery := flag.Duration("flush-every", 2*time.Second, "background flush interval for partial batches")
	tails := flag.String("tail", "", "comma-separated id=path log files to tail into hosted interfaces")
	flag.Parse()

	reg := server.NewRegistryWithCache(*cache)
	ing := ingest.New(reg, ingest.Options{BatchSize: *batch, FlushInterval: *flushEvery})

	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		logq, db, title, err := buildWorkload(name, *n, *rows, *seed)
		if err != nil {
			fatal(err)
		}
		var h *server.Hosted
		if *enableIngest {
			h, err = ing.Host(name, title, logq, db, core.DefaultLiveOptions())
		} else {
			var iface *core.Interface
			iface, err = core.Generate(logq, core.DefaultOptions())
			if err == nil {
				h, err = reg.Add(name, title, iface, db)
			}
		}
		if err != nil {
			fatal(fmt.Errorf("host %s: %w", name, err))
		}
		iface := h.Iface()
		log.Printf("hosted %-6s %d queries -> %d widgets (cost %.0f) at /interfaces/%s/page",
			h.ID, logq.Len(), len(iface.Widgets), iface.Cost(), h.ID)
	}
	if reg.Len() == 0 {
		fatal(fmt.Errorf("no workloads hosted"))
	}

	srv := server.New(reg)
	ctx := context.Background()
	if *enableIngest {
		srv.SetIngestor(ing)
		go ing.Run(ctx)
		for _, spec := range strings.Split(*tails, ",") {
			spec = strings.TrimSpace(spec)
			if spec == "" {
				continue
			}
			id, path, ok := strings.Cut(spec, "=")
			if !ok {
				fatal(fmt.Errorf("bad -tail spec %q (want id=path)", spec))
			}
			go func(id, path string) {
				log.Printf("tailing %s into /interfaces/%s", path, id)
				if err := ing.Tail(ctx, id, path, time.Second); err != nil && ctx.Err() == nil {
					log.Printf("tail %s: %v", path, err)
				}
			}(id, path)
		}
	} else if *tails != "" {
		fatal(fmt.Errorf("-tail needs -ingest"))
	}

	log.Printf("serving %d interface(s) on %s (ingestion %v)", reg.Len(), *addr, *enableIngest)
	fatal(srv.ListenAndServe(*addr))
}

// buildWorkload returns the query log and the dataset for one named
// workload.
func buildWorkload(name string, n, rows int, seed int64) (*qlog.Log, *engine.DB, string, error) {
	switch name {
	case "olap":
		return workload.OLAPLog(n, seed), engine.OnTimeDB(rows), "OnTime OLAP dashboard", nil
	case "adhoc":
		return workload.AdhocLog(n, seed), engine.OnTimeDB(rows), "OnTime ad-hoc study", nil
	case "sdss":
		return workload.SDSSClient(workload.Lookup, seed, n), engine.SDSSDB(rows), "SDSS spectro explorer", nil
	}
	return nil, nil, "", fmt.Errorf("unknown workload %q (want olap, adhoc or sdss)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pi-serve:", err)
	os.Exit(1)
}
