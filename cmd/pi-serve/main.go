// Command pi-serve mines interfaces from the paper's workloads and
// serves them over HTTP: the generated pages become live dashboards
// whose widget interactions execute against the in-memory engine.
//
// Usage:
//
//	pi-serve [-addr :8080] [-workloads olap,adhoc,sdss] [-n 150] [-rows 2000] [-seed 7] [-cache 256]
//
// Endpoints:
//
//	GET  /interfaces            list hosted interfaces
//	GET  /interfaces/{id}       one interface's widgets and initial query
//	GET  /interfaces/{id}/page  the live HTML dashboard
//	POST /interfaces/{id}/query bind widget state, execute, return rows
//	GET  /debug                 cache and traffic counters
//
// Example:
//
//	pi-serve &
//	curl -s localhost:8080/interfaces
//	curl -s -X POST localhost:8080/interfaces/olap/query \
//	     -d '{"widgets":[{"path":"3/0","value":{"type":"ColExpr","attrs":{"value":"uniquecarrier"}}}]}'
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/pi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workloads := flag.String("workloads", "olap,adhoc,sdss", "comma-separated workloads to mine and host")
	n := flag.Int("n", 150, "queries per mined log")
	rows := flag.Int("rows", 2000, "rows per synthetic dataset table")
	seed := flag.Int64("seed", 7, "workload generator seed")
	cache := flag.Int("cache", server.DefaultCacheSize, "per-interface result-cache entries (0 disables)")
	flag.Parse()

	reg := server.NewRegistryWithCache(*cache)
	for _, name := range strings.Split(*workloads, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		logq, db, title, err := buildWorkload(name, *n, *rows, *seed)
		if err != nil {
			fatal(err)
		}
		iface, err := pi.Generate(logq, pi.DefaultOptions())
		if err != nil {
			fatal(fmt.Errorf("mine %s: %w", name, err))
		}
		h, err := reg.Add(name, title, iface, db)
		if err != nil {
			fatal(err)
		}
		log.Printf("hosted %-6s %d queries -> %d widgets (cost %.0f) at /interfaces/%s/page",
			h.ID, logq.Len(), len(iface.Widgets), iface.Cost(), h.ID)
	}
	if reg.Len() == 0 {
		fatal(fmt.Errorf("no workloads hosted"))
	}

	log.Printf("serving %d interface(s) on %s", reg.Len(), *addr)
	fatal(pi.Serve(*addr, reg))
}

// buildWorkload returns the query log and the dataset for one named
// workload.
func buildWorkload(name string, n, rows int, seed int64) (*qlog.Log, *engine.DB, string, error) {
	switch name {
	case "olap":
		return workload.OLAPLog(n, seed), engine.OnTimeDB(rows), "OnTime OLAP dashboard", nil
	case "adhoc":
		return workload.AdhocLog(n, seed), engine.OnTimeDB(rows), "OnTime ad-hoc study", nil
	case "sdss":
		return workload.SDSSClient(workload.Lookup, seed, n), engine.SDSSDB(rows), "SDSS spectro explorer", nil
	}
	return nil, nil, "", fmt.Errorf("unknown workload %q (want olap, adhoc or sdss)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pi-serve:", err)
	os.Exit(1)
}
