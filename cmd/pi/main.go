// Command pi mines an interactive interface from a SQL query log and
// compiles it to a standalone HTML page.
//
// Usage:
//
//	pi [-o out.html] [-title T] [-window N] [-nolca] [-allpairs] [-summary] logfile
//
// The log format is one SELECT statement per line, optionally prefixed
// with "client<TAB>". With "-" (or no argument) the log is read from
// stdin.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/qlog"
	"repro/pi"
)

func main() {
	out := flag.String("o", "interface.html", "output HTML file ('-' for stdout)")
	title := flag.String("title", "Precision Interface", "page title")
	window := flag.Int("window", 2, "sliding window size (0 = compare all pairs)")
	noLCA := flag.Bool("nolca", false, "disable least-common-ancestor pruning")
	allPairs := flag.Bool("allpairs", false, "shorthand for -window 0")
	summary := flag.Bool("summary", false, "print the widget summary instead of compiling HTML")
	flag.Parse()

	log, err := readLog(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	opts := core.Options{Miner: interaction.Options{WindowSize: *window, LCAPrune: !*noLCA}}
	if *allPairs {
		opts.Miner.WindowSize = 0
	}
	iface, err := pi.Generate(log, opts)
	if err != nil {
		fatal(err)
	}

	if *summary {
		printSummary(iface)
		return
	}
	// Multi-level widget dependencies (Fig 5d style) are always wired
	// into the page; dependent widgets render disabled until their
	// controlling widget is in a supporting state.
	deps := pi.Dependencies(iface)
	page, err := pi.CompileHTMLWithDeps(iface, *title, deps)
	if err != nil {
		fatal(err)
	}
	if *out == "-" {
		fmt.Print(page)
		return
	}
	if err := os.WriteFile(*out, []byte(page), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "pi: %d queries -> %d widgets (cost %.0f) -> %s\n",
		log.Len(), len(iface.Widgets), iface.Cost(), *out)
}

func readLog(path string) (*qlog.Log, error) {
	if path == "" || path == "-" {
		return qlog.Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return qlog.Read(f)
}

func printSummary(iface *core.Interface) {
	fmt.Printf("initial query: %s\n", ast.SQL(iface.Initial))
	fmt.Printf("widgets (%d, total cost %.0f):\n", len(iface.Widgets), iface.Cost())
	for _, w := range iface.Widgets {
		fmt.Printf("  %-14s path=%-12s options=%d", w.Type.Name, w.Path.String(), w.Domain.Len())
		if w.Domain.IsNumericRange() {
			lo, hi := w.Domain.Range()
			fmt.Printf(" range=[%g, %g]", lo, hi)
		}
		fmt.Println()
	}
	fmt.Printf("mining: %d comparisons, %d edges, %d diff records (%v mine, %v map)\n",
		iface.Stats.Comparisons, iface.Stats.Edges, iface.Stats.DiffRecords,
		iface.Stats.MineTime.Round(1000), iface.Stats.MapTime.Round(1000))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pi:", err)
	os.Exit(1)
}
