package main

import (
	"os"

	"repro/internal/experiments"
)

func main() {
	ids := os.Args[1:]
	if len(ids) == 0 {
		if err := experiments.RunAll(os.Stdout); err != nil {
			panic(err)
		}
		return
	}
	for _, id := range ids {
		e, ok := experiments.Lookup(id)
		if !ok {
			panic("unknown: " + id)
		}
		if err := experiments.RunOne(os.Stdout, e); err != nil {
			panic(err)
		}
	}
}
