// Command pi-loggen generates the synthetic query logs used throughout
// the evaluation (SDSS-style client sessions, the OLAP random walk, and
// the ad-hoc student log) in the text format cmd/pi reads.
//
// Usage:
//
//	pi-loggen -kind sdss|olap|adhoc|mixed [-n 200] [-seed 1] [-clients 1] [-arch lookup|radial|filter|slowburn] [-mutate-frac 0.01]
//
// -mutate-frac weaves UPDATE/DELETE statements against the workload's
// ontime table into the stream at the given fraction, for driving the
// DML path (POST /interfaces/{id}/mutate) alongside read mining.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/qlog"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "sdss", "log kind: sdss, olap, adhoc, mixed")
	n := flag.Int("n", 200, "queries per client")
	seed := flag.Int64("seed", 1, "random seed")
	clients := flag.Int("clients", 1, "number of clients (sdss and mixed)")
	arch := flag.String("arch", "lookup", "sdss archetype: lookup, radial, filter, slowburn")
	mutateFrac := flag.Float64("mutate-frac", 0, "fraction of lines that are UPDATE/DELETE mutations against ontime (0 disables)")
	flag.Parse()

	var log *qlog.Log
	switch *kind {
	case "sdss":
		if *clients > 1 {
			log = qlog.Interleave(workload.SDSSClients(*clients, *n, *seed)...)
		} else {
			log = workload.SDSSClient(parseArch(*arch), *seed, *n)
		}
	case "olap":
		log = workload.OLAPLog(*n, *seed)
	case "adhoc":
		log = workload.AdhocLog(*n, *seed)
	case "mixed":
		log = qlog.Interleave(workload.HeterogeneousClients(*clients, *n, *seed)...)
	default:
		fmt.Fprintf(os.Stderr, "pi-loggen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	if *mutateFrac > 0 {
		log = interleaveMutations(log, *mutateFrac, *seed)
	}
	if err := log.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pi-loggen:", err)
		os.Exit(1)
	}
}

// interleaveMutations weaves UPDATE/DELETE statements against the
// ontime table into the stream: after each generated query, with
// probability frac, one mutation follows under the same client.
// Deterministic from seed, like the query generators. The mutations
// target the OnTime schema's filter columns so they evaluate against
// the synthetic dataset as written.
func interleaveMutations(log *qlog.Log, frac float64, seed int64) *qlog.Log {
	if frac > 1 {
		frac = 1
	}
	r := rand.New(rand.NewSource(seed ^ 0x6d7574)) // differs from the query generators' stream
	out := &qlog.Log{}
	for _, e := range log.Entries {
		out.Entries = append(out.Entries, e)
		if r.Float64() >= frac {
			continue
		}
		var sql string
		if r.Intn(2) == 0 {
			sql = fmt.Sprintf("UPDATE ontime SET delay = %d WHERE month = %d AND day = %d",
				r.Intn(240)-30, 1+r.Intn(12), 1+r.Intn(28))
		} else {
			sql = fmt.Sprintf("DELETE FROM ontime WHERE canceled = 1 AND month = %d AND dayofweek = %d",
				1+r.Intn(12), 1+r.Intn(7))
		}
		out.Append(sql, e.Client)
	}
	return out
}

func parseArch(s string) workload.Archetype {
	switch s {
	case "lookup":
		return workload.Lookup
	case "radial":
		return workload.Radial
	case "filter":
		return workload.Filter
	case "slowburn":
		return workload.SlowBurn
	}
	fmt.Fprintf(os.Stderr, "pi-loggen: unknown archetype %q\n", s)
	os.Exit(1)
	return 0
}
