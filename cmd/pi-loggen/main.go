// Command pi-loggen generates the synthetic query logs used throughout
// the evaluation (SDSS-style client sessions, the OLAP random walk, and
// the ad-hoc student log) in the text format cmd/pi reads.
//
// Usage:
//
//	pi-loggen -kind sdss|olap|adhoc|mixed [-n 200] [-seed 1] [-clients 1] [-arch lookup|radial|filter|slowburn]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/qlog"
	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "sdss", "log kind: sdss, olap, adhoc, mixed")
	n := flag.Int("n", 200, "queries per client")
	seed := flag.Int64("seed", 1, "random seed")
	clients := flag.Int("clients", 1, "number of clients (sdss and mixed)")
	arch := flag.String("arch", "lookup", "sdss archetype: lookup, radial, filter, slowburn")
	flag.Parse()

	var log *qlog.Log
	switch *kind {
	case "sdss":
		if *clients > 1 {
			log = qlog.Interleave(workload.SDSSClients(*clients, *n, *seed)...)
		} else {
			log = workload.SDSSClient(parseArch(*arch), *seed, *n)
		}
	case "olap":
		log = workload.OLAPLog(*n, *seed)
	case "adhoc":
		log = workload.AdhocLog(*n, *seed)
	case "mixed":
		log = qlog.Interleave(workload.HeterogeneousClients(*clients, *n, *seed)...)
	default:
		fmt.Fprintf(os.Stderr, "pi-loggen: unknown kind %q\n", *kind)
		os.Exit(1)
	}
	if err := log.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pi-loggen:", err)
		os.Exit(1)
	}
}

func parseArch(s string) workload.Archetype {
	switch s {
	case "lookup":
		return workload.Lookup
	case "radial":
		return workload.Radial
	case "filter":
		return workload.Filter
	case "slowburn":
		return workload.SlowBurn
	}
	fmt.Fprintf(os.Stderr, "pi-loggen: unknown archetype %q\n", s)
	os.Exit(1)
	return 0
}
