// Command pi-router fronts a fleet of pi-serve shards with the same v1
// API one server exposes: it owns the interface→shard placement map,
// proxies every per-interface operation to the owning shard, fans out
// the fleet-wide ones (list, health, debug, snapshot), and migrates
// interfaces between shards live over their /v1/shard admin surfaces.
// Clients — curl, the Go SDK, served dashboard pages — cannot tell the
// router from a single server; that is the point of the api.Servicer
// seam.
//
// Usage:
//
//	pi-router -shards http://HOST:PORT,http://HOST:PORT,...
//	          [-addr :8100] [-token T | -token-file F]
//	          [-pin id=addr[,id=addr...]] [-refresh-every 15s]
//	          [-timeout 30s] [-replicas N] [-read-fanout] [-failover]
//
// Endpoints: the full /v1 interface surface (proxied), plus the
// router-admin surface:
//
//	GET  /v1/router/shards      shard liveness + placement map + pins
//	POST /v1/router/refresh     re-discover placement from the shards
//	POST /v1/router/migrate     {"id": ..., "to": ...}: move one interface live
//	POST /v1/router/rebalance   move every interface to its pinned/hashed home
//	GET  /v1/router/replication per-interface replica sets (owner, term, followers)
//	POST /v1/router/failover    {"id": ...}: force-promote the best follower
//
// The -token is used both ways: clients must present it on mutating
// endpoints (like pi-serve), and the router presents it to the shards
// — a routed fleet shares one token.
//
// Placement starts from discovery (each shard is asked what it hosts),
// repairs itself when shards answer with structured moved errors, and
// is re-polled every -refresh-every. Default placement for rebalancing
// is rendezvous hashing; -pin overrides it per interface.
//
// With -replicas N (N > 1) every refresh drives each owner toward N-1
// warm follower replicas on the next rendezvous-ranked shards: the
// owner seeds them with a snapshot and streams every acked write
// before acking (see README "Replication & failover"). -read-fanout
// spreads queries, pages and epoch reads round-robin across in-sync
// replicas; -failover promotes the most-caught-up follower when an
// owner dies, so the fleet heals itself instead of answering
// shard_unavailable until an operator intervenes.
//
// Example (two shards and a router on one machine):
//
//	pi-serve -addr :8101 -workloads olap  -token s -shard-addr http://127.0.0.1:8101 &
//	pi-serve -addr :8102 -workloads adhoc -token s -shard-addr http://127.0.0.1:8102 &
//	pi-router -addr :8100 -shards 127.0.0.1:8101,127.0.0.1:8102 -token s &
//	curl -s localhost:8100/v1/interfaces          # both shards' interfaces
//	curl -s -X POST localhost:8100/v1/router/migrate \
//	     -H 'Authorization: Bearer s' \
//	     -d '{"id":"olap","to":"127.0.0.1:8102"}'  # live migration
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8100", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs (required)")
	pins := flag.String("pin", "", "comma-separated id=addr placement pins")
	token := flag.String("token", "", "bearer token: required from clients on mutating endpoints AND presented to shards")
	tokenFile := flag.String("token-file", "", "file holding the bearer token (overrides -token)")
	refreshEvery := flag.Duration("refresh-every", 15*time.Second, "placement re-discovery interval (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-proxied-operation budget")
	replicas := flag.Int("replicas", 1, "copies per interface incl. the owner (>1 keeps warm followers on other shards)")
	readFanout := flag.Bool("read-fanout", false, "spread read-only operations across in-sync replicas")
	failover := flag.Bool("failover", false, "auto-promote the best follower when an owner shard dies")
	pprofAddr := flag.String("pprof-addr", "", "private listen address for net/http/pprof, e.g. localhost:6061 (empty = disabled; keep it off public interfaces)")
	logFormat := flag.String("log-format", server.LogText, "request-log line shape: text or json (one JSON object per line)")
	slowThresh := flag.Duration("slow-threshold", 250*time.Millisecond, "routed queries at or above this duration are recorded in GET /v1/debug/slow")
	slowSample := flag.Int("slow-sample", 0, "also record every Nth routed query regardless of duration (0 = threshold only)")
	slowCap := flag.Int("slow-ring", 256, "slow-query ring capacity (newest entries win)")
	flag.Parse()

	tok, err := server.ResolveToken(*token, *tokenFile)
	if err != nil {
		fatal(err)
	}

	server.StartPprof(*pprofAddr, log.Printf)

	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fatal(fmt.Errorf("-shards is required (comma-separated shard base URLs)"))
	}

	pinMap := map[string]string{}
	for _, spec := range strings.Split(*pins, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		id, target, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad -pin spec %q (want id=addr)", spec))
		}
		pinMap[id] = target
	}

	rt, err := shard.NewRouter(addrs, shard.RouterOptions{
		Token:      tok,
		Timeout:    *timeout,
		Pins:       pinMap,
		Replicas:   *replicas,
		ReadFanout: *readFanout,
		Failover:   *failover,
	})
	if err != nil {
		fatal(err)
	}
	if *replicas > 1 {
		log.Printf("replication: %d copies per interface (read fan-out %v, failover %v)",
			*replicas, *readFanout, *failover)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	shardRows := rt.Refresh(ctx)
	for _, s := range shardRows {
		log.Printf("shard %s: %s (%d interfaces)", s.Addr, s.Status, s.Interfaces)
	}
	log.Printf("routing %d interface(s) across %d shard(s)", len(rt.Placement()), len(shardRows))

	if *refreshEvery > 0 {
		go func() {
			t := time.NewTicker(*refreshEvery)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					rt.Refresh(ctx)
				}
			}
		}()
	}

	// Observability: process gauges, the Prometheus exposition at
	// GET /v1/metrics, and the router-side slow-query ring.
	obs.Default.RegisterProcess()
	ring := obs.NewSlowRing(*slowCap, *slowThresh, *slowSample)
	rt.SetSlowRing(ring)
	reqLog := log.Default()
	if *logFormat == server.LogJSON {
		// JSON lines must not carry the default date/time prefix.
		reqLog = log.New(os.Stderr, "", 0)
	}
	auth := server.AuthConfig{Token: tok}
	opts := []server.Option{
		server.WithLogger(reqLog),
		server.WithLogFormat(*logFormat),
		server.WithMetrics(obs.Default),
		server.WithSlowRing(ring),
		server.WithAdmin("/v1/router/", rt.AdminHandler(auth)),
	}
	if tok != "" {
		opts = append(opts, server.WithAuth(auth))
	}
	hs := server.New(rt, opts...).HTTPServer(*addr)

	log.Printf("pi-router serving on %s over shards %s (auth %v)", *addr, strings.Join(rt.Shards(), ", "), tok != "")
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
		log.Printf("signal received, shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			fatal(fmt.Errorf("shutdown: %w", err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pi-router:", err)
	os.Exit(1)
}
