package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/server"
)

// fixtureService mines a tiny interface ("SELECT a FROM t WHERE x=N")
// and returns a service over it — cheap enough to build per test.
func fixtureService(t *testing.T, opts ...api.ServiceOptions) *api.Service {
	t.Helper()
	l := &qlog.Log{}
	for i := 1; i <= 4; i++ {
		l.Append(fmt.Sprintf("SELECT a FROM t WHERE x = %d", i), "")
	}
	iface, err := core.Generate(l, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tbl := engine.NewTable("t", "a", "x")
	for i := 1; i <= 20; i++ {
		if err := tbl.AddRow(engine.Num(float64(i*10)), engine.Num(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.AddTable(tbl)
	reg := api.NewRegistry()
	if _, err := reg.Add("tiny", "tiny fixture", iface, db); err != nil {
		t.Fatal(err)
	}
	return api.NewService(reg, opts...)
}

// stubIngestor acks whatever it is given, recording the last submit.
type stubIngestor struct {
	submitted atomic.Int64
}

func (s *stubIngestor) Submit(id string, entries []qlog.Entry) (api.IngestAck, error) {
	s.submitted.Add(int64(len(entries)))
	return api.IngestAck{Accepted: len(entries)}, nil
}

func (s *stubIngestor) Flush(id string) (uint64, error) { return 1, nil }

// TestClientRoundTrip drives every SDK operation against a real
// transport with auth enabled — the second consumer of the contract
// next to the server's own tests.
func TestClientRoundTrip(t *testing.T) {
	svc := fixtureService(t)
	ing := &stubIngestor{}
	svc.SetIngestor(ing)
	ts := httptest.NewServer(server.New(svc, server.WithAuth(server.AuthConfig{Token: "tok"})).Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	c, err := New(ts.URL, WithToken("tok"))
	if err != nil {
		t.Fatal(err)
	}

	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" || !h.Ingestion {
		t.Fatalf("health = %+v (%v)", h, err)
	}
	list, err := c.ListInterfaces(ctx)
	if err != nil || len(list) != 1 || list[0].ID != "tiny" {
		t.Fatalf("list = %+v (%v)", list, err)
	}
	d, err := c.GetInterface(ctx, "tiny")
	if err != nil || d.ID != "tiny" || len(d.Widgets) == 0 {
		t.Fatalf("detail = %+v (%v)", d, err)
	}
	epoch, err := c.Epoch(ctx, "tiny")
	if err != nil || epoch != 1 {
		t.Fatalf("epoch = %d (%v)", epoch, err)
	}
	resp, err := c.Query(ctx, "tiny", api.QueryRequest{})
	if err != nil || resp.RowCount == 0 || resp.Epoch != 1 {
		t.Fatalf("query = %+v (%v)", resp, err)
	}
	ack, err := c.IngestSQL(ctx, "tiny", true, "SELECT a FROM t WHERE x = 9")
	if err != nil || ack.Accepted != 1 || ing.submitted.Load() != 1 {
		t.Fatalf("ingest = %+v (%v, submitted %d)", ack, err, ing.submitted.Load())
	}
	dbg, err := c.Debug(ctx)
	if err != nil || len(dbg.Interfaces) != 1 || dbg.Interfaces[0].Queries != 1 {
		t.Fatalf("debug = %+v (%v)", dbg, err)
	}

	// Unknown interface surfaces the typed not_found error.
	_, err = c.GetInterface(ctx, "nope")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.Status != http.StatusNotFound {
		t.Fatalf("unknown interface error = %v", err)
	}
}

// TestClientAuthFailures: 401 without a token, 403 with the wrong one —
// both as typed *api.Error values.
func TestClientAuthFailures(t *testing.T) {
	svc := fixtureService(t)
	ts := httptest.NewServer(server.New(svc, server.WithAuth(server.AuthConfig{Token: "tok"})).Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	anon, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	_, err = anon.Query(ctx, "tiny", api.QueryRequest{})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnauthorized || apiErr.Status != http.StatusUnauthorized {
		t.Fatalf("no-token error = %v", err)
	}
	// Metadata stays readable without a token.
	if _, err := anon.ListInterfaces(ctx); err != nil {
		t.Fatalf("unauthenticated list rejected: %v", err)
	}

	wrong, err := New(ts.URL, WithToken("nope"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = wrong.Query(ctx, "tiny", api.QueryRequest{})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeForbidden || apiErr.Status != http.StatusForbidden {
		t.Fatalf("wrong-token error = %v", err)
	}
}

// TestClientPagination pages through a result with QueryAll and checks
// the cursor chain terminates with the full row set.
func TestClientPagination(t *testing.T) {
	svc := fixtureService(t, api.ServiceOptions{DefaultRowLimit: 2, MaxRowLimit: 2})
	ts := httptest.NewServer(server.New(svc).Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Query(ctx, "tiny", api.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if first.RowCount <= 2 {
		t.Skipf("fixture result has %d rows; need > 2", first.RowCount)
	}
	if !first.Truncated || len(first.Rows) != 2 || first.NextCursor == "" {
		t.Fatalf("first page = %+v", first)
	}
	all, err := c.QueryAll(ctx, "tiny", api.QueryRequest{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Rows) != all.RowCount || all.Truncated || all.NextCursor != "" {
		t.Fatalf("QueryAll = %d/%d rows truncated=%v", len(all.Rows), all.RowCount, all.Truncated)
	}
}

// TestClientRetriesOn5xx: transient 5xx responses are retried with
// backoff; 4xx responses are not.
func TestClientRetriesOn5xx(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "flaky", http.StatusBadGateway)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `[]`)
	}))
	t.Cleanup(ts.Close)

	c, err := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListInterfaces(context.Background()); err != nil {
		t.Fatalf("retried request failed: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", got)
	}

	// Exhausted retries surface the last error.
	hits.Store(-100)
	_, err = c.ListInterfaces(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadGateway {
		t.Fatalf("exhausted retries error = %v", err)
	}

	// 4xx is not retried.
	var fourHits atomic.Int64
	ts4 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fourHits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"code":"not_found","error":"nope"}`)
	}))
	t.Cleanup(ts4.Close)
	c4, err := New(ts4.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c4.GetInterface(context.Background(), "x")
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("4xx error = %v", err)
	}
	if got := fourHits.Load(); got != 1 {
		t.Fatalf("4xx was retried: %d attempts", got)
	}
}

// TestClientNeverRetriesIngest: replaying a lost ingest response would
// duplicate entries, so IngestLog must not retry even on 5xx.
func TestClientNeverRetriesIngest(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestSQL(context.Background(), "tiny", true, "SELECT 1"); err == nil {
		t.Fatal("ingest against a dead server succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("ingest was retried: %d attempts, want 1", got)
	}
}

func TestClientBadBaseURL(t *testing.T) {
	if _, err := New("not a url"); err == nil {
		t.Fatal("bad base URL accepted")
	}
	if _, err := New("/relative/only"); err == nil {
		t.Fatal("schemeless base URL accepted")
	}
}
