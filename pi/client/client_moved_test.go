package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
	"repro/internal/server"
)

// movedFront wraps a real serving backend with a front server that
// answers every /v1/interfaces/{id}... request with a structured moved
// error pointing at the backend — the shape of a shard that just
// relinquished an interface.
func movedFront(t *testing.T, target string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		e := api.ErrMoved("tiny", target)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(e.Status)
		_ = json.NewEncoder(w).Encode(e)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClientFollowsMoved: a request hitting a shard that relinquished
// the interface transparently lands on the new owner.
func TestClientFollowsMoved(t *testing.T) {
	backend := httptest.NewServer(server.New(fixtureService(t)).Handler())
	t.Cleanup(backend.Close)
	front := movedFront(t, backend.URL)

	c, err := New(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(context.Background(), "tiny", api.QueryRequest{Limit: 3})
	if err != nil {
		t.Fatalf("client did not follow the move: %v", err)
	}
	if resp.RowCount == 0 {
		t.Fatal("followed query returned no rows")
	}
	// Non-idempotent operations follow too: moved means unprocessed.
	svc := fixtureService(t)
	ing := &stubIngestor{}
	svc.SetIngestor(ing)
	backend2 := httptest.NewServer(server.New(svc).Handler())
	t.Cleanup(backend2.Close)
	front2 := movedFront(t, backend2.URL)
	c2, err := New(front2.URL)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := c2.IngestLog(context.Background(), "tiny", []api.LogEntry{{SQL: "SELECT a FROM t WHERE x = 9"}}, false)
	if err != nil {
		t.Fatalf("ingest did not follow the move: %v", err)
	}
	if ack.Accepted != 1 || ing.submitted.Load() != 1 {
		t.Fatalf("followed ingest ack = %+v (backend saw %d)", ack, ing.submitted.Load())
	}
}

// TestClientFollowMovedDisabled: the router's configuration — the
// structured error surfaces instead of being followed.
func TestClientFollowMovedDisabled(t *testing.T) {
	backend := httptest.NewServer(server.New(fixtureService(t)).Handler())
	t.Cleanup(backend.Close)
	front := movedFront(t, backend.URL)

	c, err := New(front.URL, WithFollowMoved(false))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), "tiny", api.QueryRequest{Limit: 1})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeMoved || ae.Addr != backend.URL {
		t.Fatalf("error = %v, want moved -> %s", err, backend.URL)
	}
}

// TestClientMovedHopsBounded: two shards pointing moved at each other
// must not loop the client forever.
func TestClientMovedHopsBounded(t *testing.T) {
	var aURL, bURL string
	mk := func(target *string) *httptest.Server {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			e := api.ErrMoved("tiny", *target)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(e.Status)
			_ = json.NewEncoder(w).Encode(e)
		}))
		t.Cleanup(ts.Close)
		return ts
	}
	a := mk(&bURL)
	b := mk(&aURL)
	aURL, bURL = a.URL, b.URL

	c, err := New(a.URL, WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(context.Background(), "tiny", api.QueryRequest{Limit: 1})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeMoved {
		t.Fatalf("looping move = %v, want a surfaced moved error after bounded hops", err)
	}
}

// TestClientDeleteInterface round-trips the DELETE operation.
func TestClientDeleteInterface(t *testing.T) {
	ts := httptest.NewServer(server.New(fixtureService(t)).Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := c.DeleteInterface(context.Background(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Deleted || ack.ID != "tiny" {
		t.Fatalf("ack = %+v", ack)
	}
	_, err = c.GetInterface(context.Background(), "tiny")
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotFound {
		t.Fatalf("post-delete get = %v, want not_found", err)
	}
	// Page round-trips as raw text on a fresh fixture.
	ts2 := httptest.NewServer(server.New(fixtureService(t)).Handler())
	t.Cleanup(ts2.Close)
	c2, err := New(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	page, err := c2.Page(context.Background(), "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if len(page) == 0 || page[0] != '<' {
		t.Fatalf("page does not look like HTML: %.60q", page)
	}
}
