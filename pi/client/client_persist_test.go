package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/qlog"
	"repro/internal/server"
)

// liveFixture hosts the tiny interface behind a real store-backed
// ingester and an in-memory persister, so the SDK's AppendRows and
// Snapshot calls exercise the full stack.
func liveFixture(t *testing.T) (*api.Service, *memPersister) {
	t.Helper()
	l := &qlog.Log{}
	for i := 1; i <= 4; i++ {
		l.Append("SELECT a FROM t WHERE x = "+string(rune('0'+i)), "")
	}
	tbl := engine.NewTable("t", "a", "x")
	for i := 1; i <= 8; i++ {
		tbl.MustAddRow(engine.Num(float64(i*10)), engine.Num(float64(i)))
	}
	db := engine.NewDB()
	db.AddTable(tbl)
	reg := api.NewRegistry()
	ing := ingest.New(reg, ingest.Options{RowBatchSize: 100})
	if _, err := ing.Host("tiny", "tiny live", l, db, core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	svc := api.NewService(reg)
	svc.SetIngestor(ing)
	p := &memPersister{}
	svc.SetPersister(p)
	return svc, p
}

type memPersister struct{ saves atomic.Int64 }

func (p *memPersister) SaveAll() (*api.SnapshotResult, error) {
	p.saves.Add(1)
	return &api.SnapshotResult{Dir: "mem", Interfaces: []api.SnapshotInterface{{ID: "tiny", Epoch: 1}}}, nil
}

func (p *memPersister) Restore() (*api.RestoreResult, error) { return &api.RestoreResult{}, nil }

// TestClientAppendRowsAndSnapshot drives the two storage operations
// end to end through the SDK.
func TestClientAppendRowsAndSnapshot(t *testing.T) {
	svc, p := liveFixture(t)
	ts := httptest.NewServer(server.New(svc).Handler())
	t.Cleanup(ts.Close)
	ctx := context.Background()

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := c.AppendRows(ctx, "tiny", "t", [][]any{{90.0, 9.0}, {100.0, 10.0}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 2 || !ack.Flushed || ack.RowCount != 10 || ack.Epoch != 2 {
		t.Fatalf("append ack = %+v", ack)
	}
	if epoch, err := c.Epoch(ctx, "tiny"); err != nil || epoch != 2 {
		t.Fatalf("post-append epoch = %d (%v)", epoch, err)
	}

	res, err := c.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.saves.Load() != 1 || len(res.Interfaces) != 1 || res.Interfaces[0].ID != "tiny" {
		t.Fatalf("snapshot = %+v (saves %d)", res, p.saves.Load())
	}
	if h, err := c.Health(ctx); err != nil || !h.Persistence {
		t.Fatalf("health persistence = %+v (%v)", h, err)
	}

	// The typed error surfaces for bad rows.
	_, err = c.AppendRows(ctx, "tiny", "missing", [][]any{{1.0}}, true)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeRowsRejected {
		t.Fatalf("bad table error = %v", err)
	}
}

// TestClientNeverRetriesAppendRows: like IngestLog, a replayed rows
// request would double-append; the SDK must send it exactly once.
func TestClientNeverRetriesAppendRows(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "down", http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, WithRetries(3), WithBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AppendRows(context.Background(), "tiny", "t", [][]any{{1.0}}, true); err == nil {
		t.Fatal("append against a dead server succeeded")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("AppendRows was retried: %d attempts, want 1", got)
	}
}

// TestClientContextCancellation: every SDK call takes a context; a
// canceled one must abort the request — including the backoff sleep
// between retries, so cancellation is prompt even mid-retry-loop.
func TestClientContextCancellation(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	t.Cleanup(func() { close(release); ts.Close() })

	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel() }()
	start := time.Now()
	if _, err := c.ListInterfaces(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled request returned %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation was not prompt")
	}

	// A context canceled during retry backoff aborts the loop.
	var hits atomic.Int64
	ts5 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "flaky", http.StatusBadGateway)
	}))
	t.Cleanup(ts5.Close)
	c5, err := New(ts5.URL, WithRetries(10), WithBackoff(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx5, cancel5 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel5()
	if _, err := c5.ListInterfaces(ctx5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline during backoff returned %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d attempts before the deadline, want 1", got)
	}
}
