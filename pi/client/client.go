// Package client is the Go SDK for the v1 serving API: a typed client
// for every operation the service layer exposes (list, detail, epoch,
// query with pagination, log ingestion, health, debug), speaking the
// same request/response structs as the server (repro/internal/api), so
// the contract is compiled on both sides.
//
// The client attaches a bearer token when configured, retries
// idempotent operations on transient failures (5xx responses and
// transport errors) with capped exponential backoff — ingestion is
// never retried, since a replay would duplicate entries — and
// surfaces structured server errors as *api.Error values:
//
//	c, _ := client.New("http://localhost:8080", client.WithToken(tok))
//	resp, err := c.Query(ctx, "olap", api.QueryRequest{Limit: 100})
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeBindRejected { ... }
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
)

// Client speaks the v1 API. It is safe for concurrent use.
type Client struct {
	base    string
	hc      *http.Client
	token   string
	retries int
	backoff time.Duration
	follow  bool
}

// maxMovedHops bounds how many relocations one request follows — a
// placement loop between misconfigured shards must not hang a caller.
const maxMovedHops = 3

// Option customizes a Client.
type Option func(*Client)

// WithToken attaches "Authorization: Bearer <token>" to every request.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times an idempotent request is retried
// after a 5xx response or a transport error (default 2; 0 disables).
// 4xx responses are never retried — they are contract errors, not
// transients — and neither is IngestLog: a lost response after the
// server already buffered the entries would duplicate them on replay.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the base backoff between retries (default 100ms,
// doubled per attempt).
func WithBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// WithFollowMoved controls whether the client transparently re-issues
// a request against the address carried by a structured redirecting
// error (default true): "moved" — what a shard returns after
// relinquishing an interface to another shard — and the replication
// codes "not_owner" and "replica_lagging", which a follower replica
// returns pointing at its owner. Following is safe for every
// operation, including non-idempotent ingestion, because all three
// mean the request was not processed. The shard router disables it so
// it can update its own placement map instead.
func WithFollowMoved(follow bool) Option { return func(c *Client) { c.follow = follow } }

// New returns a client for the API at baseURL (e.g.
// "http://localhost:8080"). The client always calls the versioned /v1
// surface.
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs scheme and host", baseURL)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 2,
		backoff: 100 * time.Millisecond,
		follow:  true,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// ListInterfaces returns a summary row per hosted interface.
func (c *Client) ListInterfaces(ctx context.Context) ([]api.InterfaceSummary, error) {
	var out []api.InterfaceSummary
	return out, c.do(ctx, http.MethodGet, "/v1/interfaces", nil, &out)
}

// GetInterface returns one interface's widgets and initial query.
func (c *Client) GetInterface(ctx context.Context, id string) (*api.InterfaceDetail, error) {
	var out api.InterfaceDetail
	return &out, c.do(ctx, http.MethodGet, "/v1/interfaces/"+url.PathEscape(id), nil, &out)
}

// Epoch returns the interface's current epoch.
func (c *Client) Epoch(ctx context.Context, id string) (uint64, error) {
	var out api.EpochResponse
	err := c.do(ctx, http.MethodGet, "/v1/interfaces/"+url.PathEscape(id)+"/epoch", nil, &out)
	return out.Epoch, err
}

// Query binds widget state, executes and returns one page of rows.
func (c *Client) Query(ctx context.Context, id string, req api.QueryRequest) (*api.QueryResponse, error) {
	var out api.QueryResponse
	err := c.do(ctx, http.MethodPost, "/v1/interfaces/"+url.PathEscape(id)+"/query", req, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// QueryAll follows NextCursor until the result is complete and returns
// the final response with all pages' rows concatenated. The page size
// is req.Limit (or the server default). maxRows is a hard bound on the
// total rows returned (0 = no bound): the final page is requested at
// exactly the remaining budget, so the bound is never overshot and the
// response's Truncated/NextCursor stay accurate.
func (c *Client) QueryAll(ctx context.Context, id string, req api.QueryRequest, maxRows int) (*api.QueryResponse, error) {
	pageLimit := req.Limit
	clamp := func(have int) {
		req.Limit = pageLimit
		if maxRows > 0 {
			if want := maxRows - have; pageLimit <= 0 || pageLimit > want {
				req.Limit = want
			}
		}
	}
	clamp(0)
	first, err := c.Query(ctx, id, req)
	if err != nil {
		return nil, err
	}
	out := *first
	for out.Truncated && out.NextCursor != "" && (maxRows <= 0 || len(out.Rows) < maxRows) {
		clamp(len(out.Rows))
		req.Cursor = out.NextCursor
		page, err := c.Query(ctx, id, req)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, page.Rows...)
		out.Truncated = page.Truncated
		out.NextCursor = page.NextCursor
	}
	out.Offset = 0
	return &out, nil
}

// IngestLog submits query-log entries to a live-hosted interface. With
// flush set the server re-mines before acking, so the returned epoch
// reflects the entries.
func (c *Client) IngestLog(ctx context.Context, id string, entries []api.LogEntry, flush bool) (*api.IngestAck, error) {
	p := "/v1/interfaces/" + url.PathEscape(id) + "/log"
	if flush {
		p += "?flush=1"
	}
	var out api.IngestAck
	// Ingestion is not idempotent: a retry after a lost response would
	// submit (and re-mine) the same entries twice.
	err := c.doOnce(ctx, http.MethodPost, p, api.LogRequest{Entries: entries}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestSQL is IngestLog for bare SQL statements.
func (c *Client) IngestSQL(ctx context.Context, id string, flush bool, sqls ...string) (*api.IngestAck, error) {
	entries := make([]api.LogEntry, len(sqls))
	for i, s := range sqls {
		entries[i] = api.LogEntry{SQL: s}
	}
	return c.IngestLog(ctx, id, entries, flush)
}

// AppendRows streams new dataset rows into one table of a hosted
// interface's versioned store. Values must be JSON scalars (number,
// string, bool, null) positionally matching the table's columns. With
// flush set the rows are published — and the interface hot-swapped
// onto the new data epoch — before the ack returns. Like IngestLog,
// the call is not idempotent and is never retried: replaying a lost
// response would append the rows twice.
func (c *Client) AppendRows(ctx context.Context, id, table string, rows [][]any, flush bool) (*api.RowsAck, error) {
	p := "/v1/interfaces/" + url.PathEscape(id) + "/rows"
	if flush {
		p += "?flush=1"
	}
	var out api.RowsAck
	err := c.doOnce(ctx, http.MethodPost, p, api.RowsRequest{Table: table, Rows: rows}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// MutateRows submits one UPDATE or DELETE statement against a hosted
// interface's versioned store. The server evaluates the predicate
// against its current snapshot and publishes the matched rows as a
// versioned mutation before the ack returns. ifEpoch, when nonzero,
// makes the call conditional (rejected with mutation_conflict if the
// data epoch moved). Like AppendRows, the call is not idempotent and
// is never retried: replaying a lost response would apply the
// mutation twice.
func (c *Client) MutateRows(ctx context.Context, id, sql string, ifEpoch uint64) (*api.MutateAck, error) {
	p := "/v1/interfaces/" + url.PathEscape(id) + "/mutate"
	var out api.MutateAck
	err := c.doOnce(ctx, http.MethodPost, p, api.MutateRequest{SQL: sql, IfEpoch: ifEpoch}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteInterface unhosts an interface: it stops being served, its
// live feed detaches and its durable snapshot (if any) is removed.
// Transient failures are retried like any idempotent call; note that a
// replay after a lost success response answers not_found — callers
// that treat the delete as best-effort should accept CodeNotFound as
// "already gone".
func (c *Client) DeleteInterface(ctx context.Context, id string) (*api.DeleteAck, error) {
	var out api.DeleteAck
	err := c.do(ctx, http.MethodDelete, "/v1/interfaces/"+url.PathEscape(id), nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Page fetches the interface's compiled live HTML page.
func (c *Client) Page(ctx context.Context, id string) (string, error) {
	var out string
	err := c.do(ctx, http.MethodGet, "/v1/interfaces/"+url.PathEscape(id)+"/page", nil, &out)
	return out, err
}

// Snapshot asks the server to persist every hosted interface's (log,
// dataset, epoch) to its data dir. Saving is idempotent — a snapshot
// overwrites the previous one atomically — so transient failures are
// retried like any idempotent call.
func (c *Client) Snapshot(ctx context.Context) (*api.SnapshotResult, error) {
	var out api.SnapshotResult
	err := c.do(ctx, http.MethodPost, "/v1/snapshot", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Health returns the server's health report.
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var out api.Health
	err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Debug returns the server's cache and traffic counters.
func (c *Client) Debug(ctx context.Context) (*api.DebugInfo, error) {
	var out api.DebugInfo
	err := c.do(ctx, http.MethodGet, "/v1/debug", nil, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs one idempotent operation: marshal, send (with retries),
// decode the typed response or the structured error envelope.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.run(ctx, method, path, in, out, c.retries)
}

// doOnce is do without retries, for non-idempotent operations.
func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	return c.run(ctx, method, path, in, out, 0)
}

func (c *Client) run(ctx context.Context, method, path string, in, out any, retries int) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	base := c.base
	attempt, hops := 0, 0
	for {
		retry, err := c.once(ctx, method, base+path, body, out)
		if err == nil {
			return nil
		}
		// A moved, not_owner or replica_lagging error names the shard
		// that can actually serve the request (the new home after a
		// migration, or the replica set's owner) and means this request
		// was NOT processed: follow it immediately (no backoff, no retry
		// budget spent) — safe even for non-idempotent ingestion,
		// bounded by maxMovedHops.
		if c.follow && hops < maxMovedHops {
			var apiErr *api.Error
			if errors.As(err, &apiErr) && apiErr.Addr != "" &&
				(apiErr.Code == api.CodeMoved || apiErr.Code == api.CodeNotOwner || apiErr.Code == api.CodeReplicaLagging) {
				if b, perr := NormalizeBase(apiErr.Addr); perr == nil {
					base = b
					hops++
					continue
				}
			}
		}
		if !retry || attempt >= retries {
			return err
		}
		attempt++
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(c.backoff << (attempt - 1)):
		}
	}
}

// NormalizeBase turns a server address ("host:port" or a full URL)
// into a canonical client base URL. It is the one address
// canonicalizer in the module: the client uses it to follow moved
// errors, and the shard layer uses it so addresses compare equal
// however the operator spelled them.
func NormalizeBase(addr string) (string, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return "", fmt.Errorf("client: bad server address %q (want host:port or a base URL)", addr)
	}
	return strings.TrimRight(u.String(), "/"), nil
}

// once sends the request a single time. The bool reports whether the
// failure is retryable (transport error or 5xx).
func (c *Client) once(ctx context.Context, method, fullURL string, body []byte, out any) (bool, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, fullURL, rd)
	if err != nil {
		return false, fmt.Errorf("client: build request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	// Cross-hop tracing: a context that carries a trace id (a proxied
	// router hop, a replication push inside a traced request) forwards
	// it, so the downstream server adopts the edge's id instead of
	// minting its own.
	if tid := obs.TraceID(ctx); tid != "" {
		req.Header.Set(obs.TraceHeader, tid)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return ctx.Err() == nil, fmt.Errorf("client: %s %s: %w", method, fullURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		switch dst := out.(type) {
		case nil:
			_, _ = io.Copy(io.Discard, resp.Body)
		case *string:
			// Non-JSON endpoints (the compiled HTML page) land as text.
			raw, rerr := io.ReadAll(resp.Body)
			if rerr != nil {
				return false, fmt.Errorf("client: read %s %s response: %w", method, fullURL, rerr)
			}
			*dst = string(raw)
		default:
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return false, fmt.Errorf("client: decode %s %s response: %w", method, fullURL, err)
			}
		}
		return false, nil
	}
	apiErr := DecodeError(resp)
	return resp.StatusCode >= 500, apiErr
}

// DecodeError turns a non-2xx response into an *api.Error — the
// structured envelope when the server sent one, a synthesized internal
// error otherwise (e.g. a proxy in the path). Exported so every HTTP
// consumer of the v1 contract (the SDK itself, the shard-admin client)
// decodes failures identically.
func DecodeError(resp *http.Response) *api.Error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var e api.Error
	if json.Unmarshal(raw, &e) == nil && e.Code != "" {
		e.Status = resp.StatusCode
		return &e
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return &api.Error{Code: api.CodeInternal, Status: resp.StatusCode, Message: msg}
}
