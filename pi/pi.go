// Package pi is the public facade of the Precision Interfaces library:
// it turns SQL query logs into interactive interfaces (Zhang, Zhang,
// Sellam, Wu — "Mining Precision Interfaces From Query Logs", SIGMOD
// 2019).
//
// The minimal flow:
//
//	log := pi.LogFromSQL(
//	    "SELECT a FROM t WHERE x = 1",
//	    "SELECT a FROM t WHERE x = 2",
//	)
//	iface, err := pi.Generate(log, pi.DefaultOptions())
//	page, err := pi.CompileHTML(iface, "My dashboard")
//
// The underlying stages are exposed for advanced use: internal/ast
// (tree model), internal/sqlparser (SQL parsing), internal/treediff
// (subtree transformations), internal/interaction (the interaction
// graph and its miner), internal/widgets (the widget library and cost
// model), internal/mapper (widget mapping) and internal/engine (an
// in-memory executor for generated queries).
package pi

import (
	"io"
	"net/http"

	"repro/internal/api"
	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/editor"
	"repro/internal/engine"
	"repro/internal/htmlgen"
	"repro/internal/ingest"
	"repro/internal/interaction"
	"repro/internal/qlog"
	"repro/internal/replica"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/sessions"
	"repro/internal/shard"
	"repro/internal/speculate"
	"repro/internal/sqlparser"
	"repro/internal/store"
	"repro/internal/treediff"
	"repro/internal/vis"
	"repro/internal/widgets"
)

// Re-exported core types. Downstream users name them through this
// package; the internal packages remain the implementation.
type (
	// Interface is a generated interface: widgets plus an initial query.
	Interface = core.Interface
	// Options configure generation (mining window, LCA pruning, widget
	// library).
	Options = core.Options
	// Log is an ordered query log.
	Log = qlog.Log
	// Node is a query AST node.
	Node = ast.Node
	// Widget is an instantiated interactive widget.
	Widget = widgets.Widget
	// DB is the in-memory database used by exec().
	DB = engine.DB
	// Table is an in-memory relation (also the shape of query results).
	Table = engine.Table
)

// DefaultOptions returns the paper's recommended configuration:
// sliding window of 2 with least-common-ancestor pruning, and the
// nine-type widget library with the published cost constants.
func DefaultOptions() Options { return core.DefaultOptions() }

// AllPairsOptions compares every pair of queries with full ancestor
// transformations — the unoptimized baseline, appropriate for small
// logs and for heterogeneous multi-client logs where related queries
// are far apart.
func AllPairsOptions() Options {
	return Options{Miner: interaction.Options{WindowSize: 0, LCAPrune: false}}
}

// LogFromSQL builds a log from SQL strings.
func LogFromSQL(queries ...string) *Log { return qlog.FromSQL(queries...) }

// ReadLog parses the text log format (one statement per line,
// optionally "client<TAB>sql").
func ReadLog(r io.Reader) (*Log, error) { return qlog.Read(r) }

// ParseSQL parses one SELECT statement.
func ParseSQL(sql string) (*Node, error) { return sqlparser.Parse(sql) }

// RenderSQL renders an AST back to SQL text.
func RenderSQL(q *Node) string { return ast.SQL(q) }

// Generate mines the log and returns the interface.
func Generate(log *Log, opts Options) (*Interface, error) { return core.Generate(log, opts) }

// CompileHTML compiles an interface into a standalone HTML+JS page.
func CompileHTML(iface *Interface, title string) (string, error) {
	return htmlgen.Compile(iface, title)
}

// Exec executes a query AST against an in-memory database — the exec()
// function generated interfaces assume (§3.3 of the paper).
func Exec(db *DB, q *Node) (*Table, error) { return engine.Exec(db, q) }

// NewDB returns an empty in-memory database.
func NewDB() *DB { return engine.NewDB() }

// NewTable returns an empty in-memory table with the given columns.
func NewTable(name string, cols ...string) *Table { return engine.NewTable(name, cols...) }

// Num and Str construct engine values for loading tables.
func Num(f float64) engine.Value { return engine.Num(f) }
func Str(s string) engine.Value  { return engine.Str(s) }

// Render visualizes a query result — the render() function of §3.3: an
// automatically chosen SVG chart for chartable relations, an ASCII grid
// otherwise.
func Render(t *Table) string { return vis.Render(t) }

// --- Extensions beyond the core pipeline (each maps to a direction the
// paper discusses; see DESIGN.md).

// Dependency marks a widget as active only under some states of an
// ancestor widget (e.g. the Figure 5d TOP slider).
type Dependency = speculate.Dependency

// Dependencies detects multi-level widget relationships in a generated
// interface.
func Dependencies(iface *Interface) []Dependency { return speculate.Dependencies(iface) }

// CompileHTMLWithDeps compiles an interface whose dependent widgets are
// disabled while their controlling widget is in a non-supporting state.
func CompileHTMLWithDeps(iface *Interface, title string, deps []Dependency) (string, error) {
	hd := make([]htmlgen.Dependency, len(deps))
	for i, d := range deps {
		hd[i] = htmlgen.Dependency{Widget: d.Widget, On: d.On, ActiveOptions: d.ActiveOptions}
	}
	return htmlgen.CompileWithDeps(iface, title, hd)
}

// Catalog is a table→columns schema, inferable from a log.
type Catalog = schema.Catalog

// InferSchema builds a catalog from parsed queries (Appendix D).
func InferSchema(queries []*Node) *Catalog { return schema.InferFromQueries(queries) }

// Verify speculatively checks the interface closure against a schema
// and reports invalid options and option conflicts (§4.5 discussion).
func Verify(iface *Interface, catalog *Catalog, maxPairs int) speculate.Report {
	return speculate.Verify(iface, catalog, maxPairs)
}

// Cluster groups a heterogeneous log into per-analysis clusters using
// the Zhang-Shasha tree edit distance (§3.3 preprocessing). Generate
// one interface per cluster to recover single-analysis recall.
func Cluster(log *Log) ([]sessions.Cluster, error) {
	return sessions.ClusterLog(log, sessions.DefaultOptions())
}

// QueryDistance is the normalized tree edit distance between two
// queries (0 identical, 1 unrelated).
func QueryDistance(a, b *Node) float64 { return treediff.NormalizedDistance(a, b) }

// NewEditor opens an interface-editor session (§5.3): relabel, retype,
// move, resize and hide widgets, then compile the edited page.
func NewEditor(iface *Interface) *editor.Session {
	return editor.NewSession(iface, widgets.DefaultLibrary())
}

// --- Serving layer (internal/api + internal/server): host mined
// interfaces behind the transport-agnostic service layer and expose
// them over the versioned HTTP API. pi/client is the matching Go SDK.

// Registry holds interfaces registered for serving; it is safe for
// concurrent use.
type Registry = api.Registry

// Hosted is one interface registered for serving.
type Hosted = api.Hosted

// Service is the typed, transport-agnostic operation surface over a
// registry (ListInterfaces, GetInterface, Query with pagination,
// IngestLog, Epoch, Health, Debug) with the structured api.Error
// model. HTTP serving, pi/client and future transports all speak it.
type Service = api.Service

// APIError is the structured service error: a stable machine-readable
// Code, the HTTP status transports map it to, and a message.
type APIError = api.Error

// AuthConfig is per-interface bearer-token access control for the
// mutating endpoints (query, log); metadata GETs stay open.
type AuthConfig = server.AuthConfig

// NewRegistry returns an empty serving registry with the default
// per-interface result-cache size.
func NewRegistry() *Registry { return api.NewRegistry() }

// NewService builds the service layer over a registry.
func NewService(reg *Registry) *Service { return api.NewService(reg) }

// Host mines nothing — it registers an already generated interface and
// the dataset its queries run against under the given ID. The DB must
// not be mutated after hosting (see engine.DB's concurrency contract).
func Host(reg *Registry, id, title string, iface *Interface, db *DB) (*Hosted, error) {
	return reg.Add(id, title, iface, db)
}

// ServeHandler returns the HTTP handler exposing the registry's
// versioned JSON API and served pages (GET /v1/interfaces,
// GET /v1/interfaces/{id}[/page|/epoch], POST /v1/interfaces/{id}/query,
// GET /v1/healthz, GET /v1/debug — plus legacy unversioned aliases).
func ServeHandler(reg *Registry) http.Handler {
	return server.New(api.NewService(reg)).Handler()
}

// ServeHandlerWithAuth is ServeHandler with bearer-token auth enforced
// on the query and log endpoints.
func ServeHandlerWithAuth(svc *Service, auth AuthConfig) http.Handler {
	return server.New(svc, server.WithAuth(auth)).Handler()
}

// Serve hosts the registry's interfaces on addr until the listener
// fails, using production timeouts (see internal/server.HTTPServer).
func Serve(addr string, reg *Registry) error {
	return server.New(api.NewService(reg)).ListenAndServe(addr)
}

// CompileServedHTML compiles an interface into a page whose
// interactions POST widget state to the given query endpoint — the
// live-page variant of CompileHTML.
func CompileServedHTML(iface *Interface, title, endpoint string) (string, error) {
	return htmlgen.CompileServed(iface, title, endpoint)
}

// --- Live ingestion (internal/ingest): stream query-log entries into
// hosted interfaces, re-mine incrementally and hot-swap the result
// under a bumped epoch, so dashboards improve as users keep querying.

// Ingester buffers submitted log entries per interface and re-mines
// incrementally; it also implements the server's Ingestor hook, which
// enables POST /interfaces/{id}/log.
type Ingester = ingest.Ingester

// IngestOptions configure ingestion batching (batch size, buffer
// bound, background flush interval).
type IngestOptions = ingest.Options

// IngestAck reports what happened to one batch of submitted entries.
type IngestAck = api.IngestAck

// LiveOptions are generation options plus the incremental-update
// policy (structural-coverage threshold for the full re-mine
// fallback).
type LiveOptions = core.LiveOptions

// LogEntry is one query-log entry (SQL plus optional client).
type LogEntry = qlog.Entry

// DefaultLiveOptions returns DefaultOptions plus the default
// incremental policy.
func DefaultLiveOptions() LiveOptions { return core.DefaultLiveOptions() }

// NewIngester returns an ingester over the registry with default
// batching. Wire it into a server (ServeLiveHandler or
// server.SetIngestor) to expose HTTP ingestion, and run
// Ingester.Run in a goroutine to flush trickle traffic.
func NewIngester(reg *Registry, opts IngestOptions) *Ingester { return ingest.New(reg, opts) }

// HostLive mines the log and hosts the interface with a live feed
// attached: entries submitted later (Ingest, the HTTP log endpoint, or
// Ingester.Tail) are re-mined incrementally and hot-swapped in while
// the interface keeps its ID and epoch history.
func HostLive(ing *Ingester, id, title string, log *Log, db *DB) (*Hosted, error) {
	return ing.Host(id, title, log, db, core.DefaultLiveOptions())
}

// Ingest submits SQL statements to a live-hosted interface. Entries
// buffer until a batch fills or the background flusher runs; use
// ing.Flush(id) to force an immediate re-mine + swap.
func Ingest(ing *Ingester, id string, sqls ...string) (IngestAck, error) {
	entries := make([]qlog.Entry, len(sqls))
	for i, s := range sqls {
		entries[i] = qlog.Entry{SQL: s}
	}
	return ing.Submit(id, entries)
}

// ServeLiveHandler is ServeHandler with live ingestion enabled: the
// returned handler additionally accepts POST /v1/interfaces/{id}/log
// and reports ingestion state in GET /v1/healthz.
func ServeLiveHandler(reg *Registry, ing *Ingester) http.Handler {
	svc := api.NewService(reg)
	svc.SetIngestor(ing)
	return server.New(svc).Handler()
}

// --- Versioned storage and persistence (internal/store +
// internal/ingest): live-hosted interfaces sit on a copy-on-write
// store whose snapshots the engine executes against, row appends ride
// the same epoch discipline as interface swaps, and (log, dataset,
// epoch) serialize durably so a killed server restores without the
// original log.

// Store is the copy-on-write versioned catalog backing live-hosted
// interfaces: Snapshot() returns an immutable execution target,
// AppendRows publishes a new version without copying rows.
type Store = store.Store

// ExecCatalog is the read-only view engine.Exec consumes; a *DB and a
// Store snapshot both satisfy it.
type ExecCatalog = engine.Catalog

// RowsAck reports what happened to one batch of appended rows.
type RowsAck = api.RowsAck

// MutateAck reports what happened to one UPDATE/DELETE mutation.
type MutateAck = api.MutateAck

// SnapshotResult reports what a durable snapshot persisted.
type SnapshotResult = api.SnapshotResult

// Persister saves and restores hosted interfaces under a data dir.
type Persister = ingest.Persister

// PersistOptions configure restore mining and UDF re-attachment.
type PersistOptions = ingest.PersistOptions

// NewStore wraps a built database in a copy-on-write store. The
// caller must not mutate db afterwards; grow it through AppendRows.
func NewStore(db *DB) *Store { return store.FromDB(db) }

// AppendRows streams new dataset rows into one table of a live-hosted
// interface. Rows buffer until a batch fills; flush forces an
// immediate copy-on-write publish plus hot swap, so the ack's epoch
// reflects the rows.
func AppendRows(ing *Ingester, id, table string, flush bool, rows ...[]engine.Value) (RowsAck, error) {
	return ing.SubmitRows(id, table, rows, flush)
}

// MutateRows runs one UPDATE or DELETE statement against a live-hosted
// interface's store. The predicate evaluates against the current
// snapshot; the matched rows publish as a versioned mutation under a
// bumped epoch before the ack returns. ifEpoch (nonzero) makes the
// call conditional on the store's data epoch.
func MutateRows(ing *Ingester, id, sql string, ifEpoch uint64) (MutateAck, error) {
	return ing.SubmitMutation(id, sql, ifEpoch)
}

// NewPersister returns a snapshot/restore coordinator writing under
// dir for the ingester's live-hosted interfaces.
func NewPersister(dir string, ing *Ingester) *Persister {
	return ingest.NewPersister(dir, ing, ingest.PersistOptions{})
}

// NewPersistentService builds the service layer with durable storage:
// interfaces saved under the persister's dir are restored (at their
// saved epochs) before the service is returned, and the Snapshot
// operation is enabled.
func NewPersistentService(reg *Registry, p *Persister) (*Service, error) {
	svc, _, err := api.NewPersistentService(reg, p)
	return svc, err
}

// --- Sharding (internal/shard): partition hosted interfaces across
// processes. A shard node is a full server plus an admin surface that
// can hand interfaces off via snapshot frames; a router is a drop-in
// Servicer that proxies to the owning shard, fans out fleet-wide
// operations and migrates interfaces live.

// Servicer is the transport-agnostic operation surface both a local
// Service and a ShardRouter implement — the seam that makes a routed
// fleet a drop-in replacement for one process.
type Servicer = api.Servicer

// ShardNode wraps a service as one shard of a fleet: same operations,
// plus export/accept/relinquish and moved tombstones.
type ShardNode = shard.Node

// ShardNodeOptions configure a shard node (advertised address, restore
// mining options, UDF re-attachment, optional persistence).
type ShardNodeOptions = shard.NodeOptions

// ShardRouter fronts a fleet of shards behind the Servicer seam.
type ShardRouter = shard.Router

// ShardRouterOptions configure a router (shared token, per-operation
// timeout, placement pins, replication factor, read fan-out and
// failover policy).
type ShardRouterOptions = shard.RouterOptions

// ReplicaManager is a shard node's replication control plane: it keeps
// warm followers seeded and streaming, and runs the term-fenced
// promote/demote protocol failover is built on. Reach it through
// ShardNode.Replication().
type ReplicaManager = replica.Manager

// ReplicationStatus is the router-admin view of the fleet's replica
// sets (per interface: owner, term, followers and their lag).
type ReplicationStatus = shard.ReplicationStatus

// NewShardNode wraps the service and its ingester as a shard node
// advertising the given options' address.
func NewShardNode(svc *Service, ing *Ingester, opts ShardNodeOptions) (*ShardNode, error) {
	return shard.NewNode(svc, ing, opts)
}

// NewShardRouter builds a router over the given shard base URLs; call
// Refresh on it to discover placements before serving.
func NewShardRouter(addrs []string, opts ShardRouterOptions) (*ShardRouter, error) {
	return shard.NewRouter(addrs, opts)
}

// ServeShardHandler returns the HTTP handler for a shard node: the
// full v1 surface plus the /v1/shard admin surface, both under the
// auth config.
func ServeShardHandler(node *ShardNode, auth AuthConfig) http.Handler {
	return server.New(node,
		server.WithAuth(auth),
		server.WithAdmin("/v1/shard/", node.AdminHandler(auth)),
	).Handler()
}

// ServeRouterHandler returns the HTTP handler for a router: the
// proxied v1 surface plus the /v1/router admin surface, both under the
// auth config.
func ServeRouterHandler(rt *ShardRouter, auth AuthConfig) http.Handler {
	return server.New(rt,
		server.WithAuth(auth),
		server.WithAdmin("/v1/router/", rt.AdminHandler(auth)),
	).Handler()
}
