package pi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func sdssLog() *Log {
	return LogFromSQL(
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x199",
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x3",
	)
}

func TestEndToEnd(t *testing.T) {
	iface, err := Generate(sdssLog(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(iface.Widgets) != 1 || iface.Widgets[0].Type.Name != "slider" {
		t.Fatalf("widgets = %v", iface.Widgets)
	}
	page, err := CompileHTML(iface, "SDSS")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "PI_STATE") {
		t.Fatal("page missing state")
	}
}

func TestParseRenderRoundTrip(t *testing.T) {
	q, err := ParseSQL("SELECT TOP 3 a FROM t WHERE x = 0xff GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseSQL(RenderSQL(q))
	if err != nil {
		t.Fatal(err)
	}
	if RenderSQL(q) != RenderSQL(again) {
		t.Fatalf("round trip changed SQL: %q vs %q", RenderSQL(q), RenderSQL(again))
	}
}

func TestReadLog(t *testing.T) {
	log, err := ReadLog(strings.NewReader("c1\tSELECT a FROM t\nSELECT b FROM t\n"))
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != 2 || log.Entries[0].Client != "c1" {
		t.Fatalf("log = %+v", log.Entries)
	}
}

func TestDependenciesAndCompile(t *testing.T) {
	iface, err := Generate(LogFromSQL(
		"SELECT g.objID FROM Galaxy g",
		"SELECT TOP 1 g.objID FROM Galaxy g",
		"SELECT TOP 10 g.objID FROM Galaxy g"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	deps := Dependencies(iface)
	if len(deps) != 1 {
		t.Fatalf("deps = %v", deps)
	}
	page, err := CompileHTMLWithDeps(iface, "deps", deps)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "\"deps\"") || !strings.Contains(page, "applyDeps") {
		t.Fatal("dependency wiring missing from page")
	}
}

func TestVerifyAndSchema(t *testing.T) {
	log := LogFromSQL(
		"SELECT tempNo FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT ew FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT tempNo FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT tempNo FROM XCRedshift WHERE specObjId = 0x10",
		"SELECT tempNo FROM XCRedshift WHERE specObjId = 0x90")
	iface, err := Generate(log, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	queries, err := log.Parse()
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(iface, InferSchema(queries), 0)
	if rep.Checked == 0 {
		t.Fatal("verification did not run")
	}
}

func TestClusterFacade(t *testing.T) {
	log := LogFromSQL(
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
		"SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 GROUP BY DestState",
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT COUNT(Delay), OriginState FROM ontime WHERE Month = 3 GROUP BY OriginState",
	)
	clusters, err := Cluster(log)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d, want the two analyses separated", len(clusters))
	}
}

func TestQueryDistance(t *testing.T) {
	a, _ := ParseSQL("SELECT a FROM t WHERE x = 1")
	b, _ := ParseSQL("SELECT a FROM t WHERE x = 2")
	c, _ := ParseSQL("SELECT COUNT(q), z FROM other GROUP BY z ORDER BY z")
	if d := QueryDistance(a, b); d <= 0 || d > 0.2 {
		t.Fatalf("near distance = %v", d)
	}
	if QueryDistance(a, c) <= QueryDistance(a, b) {
		t.Fatal("unrelated queries should be farther apart")
	}
}

func TestEditorFacade(t *testing.T) {
	iface, err := Generate(sdssLog(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ed := NewEditor(iface)
	if err := ed.SetLabel(0, "Object id"); err != nil {
		t.Fatal(err)
	}
	page, err := ed.Compile("Edited")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "Object id") {
		t.Fatal("edited label missing")
	}
}

func TestExecFacade(t *testing.T) {
	db := NewDB()
	tbl := NewTable("t", "a")
	tbl.MustAddRow(Num(7))
	db.AddTable(tbl)
	q, _ := ParseSQL("SELECT a FROM t WHERE a > 1")
	res, err := Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 7 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestLiveIngestFacade drives the live path end to end through the
// facade: host with a feed, serve, ingest over HTTP, watch the epoch
// bump and the widened domain answer a query the original mine could
// not express.
func TestLiveIngestFacade(t *testing.T) {
	logq := LogFromSQL(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT a FROM t WHERE x = 3",
	)
	db := NewDB()
	tbl := NewTable("t", "a", "x")
	for i := 1; i <= 60; i++ {
		tbl.MustAddRow(Num(float64(i)), Num(float64(i)))
	}
	db.AddTable(tbl)

	reg := NewRegistry()
	ing := NewIngester(reg, IngestOptions{BatchSize: 1})
	h, err := HostLive(ing, "live", "Live demo", logq, db)
	if err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 1 {
		t.Fatalf("epoch = %d", h.Epoch())
	}
	ts := httptest.NewServer(ServeLiveHandler(reg, ing))
	defer ts.Close()

	// 50 is outside the mined [1,3] domain: a query for it must fail.
	body := `{"widgets":[{"path":"` + h.Iface().Widgets[0].Path.String() + `","number":50}]}`
	resp, err := http.Post(ts.URL+"/interfaces/live/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("out-of-domain query status = %d, want 422", resp.StatusCode)
	}

	// Ingest an entry that widens the domain to 50 (BatchSize 1 swaps
	// immediately), then the same query succeeds at epoch 2.
	if ack, err := Ingest(ing, "live", "SELECT a FROM t WHERE x = 50"); err != nil || !ack.Flushed || ack.Epoch != 2 {
		t.Fatalf("ingest ack = %+v, %v", ack, err)
	}
	resp, err = http.Post(ts.URL+"/interfaces/live/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-ingest query status = %d", resp.StatusCode)
	}
	var out struct {
		SQL   string `json:"sql"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Epoch != 2 || !strings.Contains(out.SQL, "50") {
		t.Fatalf("post-ingest answer = %+v", out)
	}
}
