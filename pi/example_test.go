package pi_test

import (
	"fmt"

	"repro/pi"
)

// Example shows the minimal mine-and-inspect flow.
func Example() {
	log := pi.LogFromSQL(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT a FROM t WHERE x = 9",
	)
	iface, err := pi.Generate(log, pi.DefaultOptions())
	if err != nil {
		panic(err)
	}
	for _, w := range iface.Widgets {
		lo, hi := w.Domain.Range()
		fmt.Printf("%s at %s over [%g, %g]\n", w.Type.Name, w.Path, lo, hi)
	}
	// Output:
	// slider at 2/0/1 over [1, 9]
}

// ExampleInterface_CanExpress shows closure-membership checks: sliders
// extrapolate to unseen values, but parts of the query that never
// changed stay fixed.
func ExampleInterface_CanExpress() {
	log := pi.LogFromSQL(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 9",
	)
	iface, _ := pi.Generate(log, pi.DefaultOptions())
	unseen, _ := pi.ParseSQL("SELECT a FROM t WHERE x = 5")
	outside, _ := pi.ParseSQL("SELECT b FROM t WHERE x = 5")
	fmt.Println(iface.CanExpress(unseen))
	fmt.Println(iface.CanExpress(outside))
	// Output:
	// true
	// false
}

// ExampleExec shows the exec()/render() pair the paper assumes.
func ExampleExec() {
	db := pi.NewDB()
	sales := pi.NewTable("sales", "region", "amount")
	sales.MustAddRow(pi.Str("USA"), pi.Num(100))
	sales.MustAddRow(pi.Str("USA"), pi.Num(50))
	sales.MustAddRow(pi.Str("EUR"), pi.Num(70))
	db.AddTable(sales)

	q, _ := pi.ParseSQL("SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
	res, _ := pi.Exec(db, q)
	for _, row := range res.Rows {
		fmt.Printf("%s %s\n", row[0], row[1])
	}
	// Output:
	// USA 150
	// EUR 70
}

// ExampleQueryDistance shows the semantic query distance used for
// session clustering.
func ExampleQueryDistance() {
	a, _ := pi.ParseSQL("SELECT a FROM t WHERE x = 1")
	b, _ := pi.ParseSQL("SELECT a FROM t WHERE x = 2")
	fmt.Println(pi.QueryDistance(a, a) == 0)
	fmt.Println(pi.QueryDistance(a, b) < 0.1)
	// Output:
	// true
	// true
}
