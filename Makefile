GO ?= go

.PHONY: check fmt-check vet build test race bench bench-json perf-gate ingest-demo api-smoke persist-smoke shard-smoke replica-smoke wal-smoke dml-smoke obs-smoke

check: fmt-check vet build race

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# End-to-end drive of the live-ingestion subsystem: build pi-serve,
# query it, stream new log entries in, watch the epoch bump.
ingest-demo:
	sh scripts/ingest_demo.sh

# End-to-end smoke of the v1 API: start pi-serve with a bearer token,
# exercise it through the pi/client SDK (pi-serve -check) and verify
# the auth + error contracts with raw curl.
api-smoke:
	sh scripts/api_smoke.sh

# End-to-end smoke of the versioned storage layer: pi-serve with
# -data-dir, append rows + ingest log entries, snapshot, SIGKILL,
# restart on the same dir, verify epoch/rows/queries survived.
persist-smoke:
	sh scripts/persist_smoke.sh

# End-to-end smoke of the sharding subsystem: two shards + a router,
# byte-identical routed queries, a live migration under load, cursor
# expiry across the move, p50 proxy overhead < 2x, structured errors
# after a shard dies.
shard-smoke:
	sh scripts/shard_smoke.sh

# End-to-end smoke of the replication subsystem: one owner + two empty
# standbys behind a router with -replicas 2 -read-fanout -failover,
# SIGKILL the owner under live load, assert promotion, zero lost acked
# writes, zero failed reads, follower re-seed, degraded -> healthy.
replica-smoke:
	sh scripts/replica_smoke.sh

# End-to-end smoke of the write-ahead log: pi-serve -wal, acked
# appends that no snapshot ever covers, SIGKILL, restart, verify the
# logged tail replayed them; then differential saves and a second
# crash restoring through base + delta + tail.
wal-smoke:
	sh scripts/wal_smoke.sh

# End-to-end smoke of the DML/MVCC path: acked UPDATE/DELETE mutations
# that no snapshot covers, SIGKILL, restart, verify the WAL replayed
# them (updated values live, deleted rows gone); then a follower bounce
# that must catch the mutations up through the logged tail, not a
# re-seed.
dml-smoke:
	sh scripts/dml_smoke.sh

# End-to-end smoke of the observability layer: router + two WAL-backed
# shards under -replicas 2, drive routed queries and acked appends,
# scrape GET /v1/metrics on all three processes asserting the query,
# WAL, replication and router-proxy series moved, and verify a
# client-supplied Pi-Trace-Id round-trips router -> shard into the
# request logs and both /v1/debug/slow rings.
obs-smoke:
	sh scripts/obs_smoke.sh

# Benchmark router-proxy overhead vs direct serve (BENCH_shard.json),
# the replication layer's ack coupling + fan-out read
# (BENCH_replica.json), and the WAL's acked-append overhead +
# differential-vs-full snapshot cost (BENCH_wal.json), so the perf
# trajectory is tracked run over run.
bench-json:
	sh scripts/bench_json.sh

# Gate the cached-plan query path against the checked-in
# BENCH_query.json: fresh p50 must stay within 3x (CI noise tolerance)
# and allocs/op must not exceed the baseline.
perf-gate:
	sh scripts/perf_gate.sh
