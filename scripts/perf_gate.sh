#!/bin/sh
# Perf-regression gate for the cached-plan query path: run
# BenchmarkQueryPlanCached fresh and compare its p50 against the
# checked-in BENCH_query.json. CI machines are noisy and heterogeneous,
# so the tolerance is deliberately loose (3x by default) — this gate
# catches "someone re-introduced an allocation storm or an O(rows)
# walk on the hot path", not single-digit-percent drift. Allocations
# are compared exactly: the zero-alloc property is the one number CI
# noise cannot blur.
#
# Writes the fresh numbers to PERF_GATE_OUT (default
# bench_fresh_query.json) so CI can upload them as an artifact next to
# the checked-in baseline.
set -eu

BASELINE="${BASELINE:-BENCH_query.json}"
TOLERANCE_X="${TOLERANCE_X:-3}"
BENCHTIME="${BENCHTIME:-2000x}"
PERF_GATE_OUT="${PERF_GATE_OUT:-bench_fresh_query.json}"

if [ ! -f "$BASELINE" ]; then
    echo "FAIL: baseline $BASELINE not found (run make bench-json and commit it)" >&2
    exit 1
fi

base_p50=$(awk -F'[:,]' '/"p50_ns"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$BASELINE")
base_allocs=$(awk -F'[:,]' '/"allocs_op"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$BASELINE")
if [ -z "$base_p50" ] || [ -z "$base_allocs" ]; then
    echo "FAIL: $BASELINE has no p50_ns/allocs_op" >&2
    exit 1
fi

echo "== go test -bench QueryPlanCached -benchtime $BENCHTIME -benchmem ./internal/api"
raw=$(go test -run '^$' -bench 'BenchmarkQueryPlanCached$' \
    -benchtime "$BENCHTIME" -benchmem ./internal/api)
printf '%s\n' "$raw"

line=$(printf '%s\n' "$raw" | awk '/^BenchmarkQueryPlanCached/ { print; exit }')
p50=$(printf '%s\n' "$line" | awk '{ for (i = 2; i < NF; i++) if ($(i+1) == "p50_ns") { print $i; exit } }')
allocs=$(printf '%s\n' "$line" | awk '{ for (i = 2; i <= NF; i++) if ($i == "allocs/op") { print $(i-1); exit } }')
if [ -z "$p50" ] || [ -z "$allocs" ]; then
    echo "FAIL: benchmark produced no p50/allocs" >&2
    exit 1
fi

awk -v p50="$p50" -v al="$allocs" -v bp50="$base_p50" -v bal="$base_allocs" \
    -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"perf gate: fresh cached-plan p50 vs checked-in baseline\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"fresh_p50_ns\": %.1f,\n", p50
    printf "  \"fresh_allocs_op\": %d,\n", al
    printf "  \"baseline_p50_ns\": %.1f,\n", bp50
    printf "  \"baseline_allocs_op\": %d\n", bal
    printf "}\n"
}' >"$PERF_GATE_OUT"
cat "$PERF_GATE_OUT"

fail=0
if awk -v p="$p50" -v b="$base_p50" -v t="$TOLERANCE_X" 'BEGIN { exit !(p > b * t) }'; then
    echo "FAIL: fresh p50 ${p50}ns exceeds ${TOLERANCE_X}x the checked-in baseline ${base_p50}ns" >&2
    fail=1
fi
if awk -v a="$allocs" -v b="$base_allocs" 'BEGIN { exit !(a > b) }'; then
    echo "FAIL: fresh allocs/op $allocs exceeds the checked-in baseline $base_allocs" >&2
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "PASS: p50 ${p50}ns <= ${TOLERANCE_X}x baseline ${base_p50}ns, allocs/op $allocs <= $base_allocs"
