#!/bin/sh
# End-to-end smoke of the write-ahead log: start pi-serve with -wal,
# stream acked row appends and log entries WITHOUT ever snapshotting,
# SIGKILL the process, restart it on the same data dir, and verify
# every acked write came back from the logged tail alone. Then prove
# the differential save path: a snapshot after more appends writes a
# delta (not a base rewrite), and a second SIGKILL restores through
# base + delta + tail. Exits non-zero on any failure.
set -eu

ADDR="${ADDR:-127.0.0.1:8097}"
TOKEN="${TOKEN:-wal-secret}"
BIN="$(mktemp -d)/pi-serve"
DATA_DIR="$(mktemp -d)"
LOG="$(mktemp)"

echo "== build"
go build -o "$BIN" ./cmd/pi-serve

cleanup() {
    [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

start_server() {
    "$BIN" -addr "$ADDR" -workloads olap -n 80 -rows 500 \
        -token "$TOKEN" -data-dir "$DATA_DIR" -wal -wal-sync 0 >>"$LOG" 2>&1 &
    PID=$!
    i=0
    until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 120 ]; then
            echo "server never came up; log:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.25
    done
}

# json_field BODY FIELD -> first numeric value of "field":N
json_field() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -n 1
}

append_rows() { # append_rows N -> ack body
    rows="$1"
    payload=""
    while [ "$rows" -gt 0 ]; do
        payload="$payload${payload:+,}$ONTIME_ROW"
        rows=$((rows - 1))
    done
    curl -s -X POST "http://$ADDR/v1/interfaces/olap/rows?flush=1" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d "{\"table\":\"ontime\",\"rows\":[$payload]}"
}

ONTIME_ROW='["AA","AA","CAP","NYP","CA","NY",1,1,1,10,12,8,500,1,0,0]'

echo "== first life: pi-serve -wal on $ADDR"
start_server

echo "== boot wrote the WAL anchor (base snapshot + manifest)"
[ -f "$DATA_DIR/olap.snap" ] || { echo "no base snapshot after boot" >&2; exit 1; }
[ -f "$DATA_DIR/olap.manifest.json" ] || { echo "no manifest after boot" >&2; exit 1; }
grep -q "wal: initial snapshot" "$LOG" || { echo "no initial snapshot logged; log:" >&2; cat "$LOG" >&2; exit 1; }

echo "== acked writes that are never snapshotted (they live only in the WAL)"
body=$(append_rows 3)
rowcount=$(json_field "$body" rowCount)
[ "$rowcount" = "503" ] || { echo "append ack rowCount=$rowcount, want 503: $body" >&2; exit 1; }
curl -s -X POST "http://$ADDR/v1/interfaces/olap/log?flush=1" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: text/plain' \
    --data-binary 'SELECT carrier, avg(delay) FROM ontime WHERE month = 7 GROUP BY carrier;' >/dev/null
epoch_before=$(json_field "$(curl -s "http://$ADDR/v1/interfaces/olap/epoch")" epoch)
[ -n "$epoch_before" ] && [ "$epoch_before" -ge 2 ] || {
    echo "epoch before kill is $epoch_before, expected >= 2" >&2; exit 1; }

echo "== healthz reports the WAL running ahead of the last save"
body=$(curl -s "http://$ADDR/v1/healthz")
case "$body" in
*'"wal"'*) ;;
*) echo "healthz has no wal block: $body" >&2; exit 1 ;;
esac
lag=$(json_field "$body" lag)
[ -n "$lag" ] && [ "$lag" -ge 1 ] || { echo "wal lag=$lag, want >= 1 (acked, unsaved writes): $body" >&2; exit 1; }

echo "== SIGKILL (no snapshot covered the appends)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== second life: the WAL tail must replay the acked writes"
start_server
grep -q "restored olap" "$LOG" || { echo "server did not restore olap; log:" >&2; cat "$LOG" >&2; exit 1; }
body=$(append_rows 1)
rowcount=$(json_field "$body" rowCount)
[ "$rowcount" = "504" ] || {
    echo "post-crash rowCount=$rowcount, want 504 (3 WAL-only rows must survive): $body" >&2
    exit 1
}
epoch_after=$(json_field "$(curl -s "http://$ADDR/v1/interfaces/olap/epoch")" epoch)
[ -n "$epoch_after" ] && [ "$epoch_after" -ge "$epoch_before" ] || {
    echo "epoch went backwards: $epoch_before -> $epoch_after" >&2; exit 1; }

echo "== a snapshot now cuts a differential delta, not a base rewrite"
base_before=$(wc -c <"$DATA_DIR/olap.snap")
body=$(curl -s -X POST "http://$ADDR/v1/snapshot" -H "Authorization: Bearer $TOKEN")
case "$body" in
*'"id":"olap"'*) ;;
*) echo "snapshot result missing olap: $body" >&2; exit 1 ;;
esac
deltas=$(ls "$DATA_DIR" | grep -c '\.delta$' || true)
[ "$deltas" -ge 1 ] || { echo "no delta file after differential save; dir: $(ls "$DATA_DIR")" >&2; exit 1; }
base_after=$(wc -c <"$DATA_DIR/olap.snap")
[ "$base_after" = "$base_before" ] || {
    echo "differential save rewrote the base ($base_before -> $base_after bytes)" >&2; exit 1; }

echo "== third life: base + delta chain + fresh tail"
body=$(append_rows 2)
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""
start_server
body=$(append_rows 1)
rowcount=$(json_field "$body" rowCount)
[ "$rowcount" = "507" ] || {
    echo "chain-restore rowCount=$rowcount, want 507: $body" >&2; exit 1; }

echo "== verify: queries work (SDK round-trip incl. auth)"
"$BIN" -check -addr "$ADDR" -token "$TOKEN"

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 60 ]; then
        echo "server did not shut down on SIGTERM" >&2
        exit 1
    fi
    sleep 0.25
done
PID=""
grep -q "final snapshot" "$LOG" || { echo "no final snapshot on shutdown; log:" >&2; cat "$LOG" >&2; exit 1; }

echo "wal-smoke: ok"
