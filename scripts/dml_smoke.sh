#!/bin/sh
# End-to-end smoke of the DML/MVCC path: start pi-serve with -wal,
# append marker rows, run acked UPDATE/DELETE mutations WITHOUT ever
# snapshotting, SIGKILL the process, restart on the same data dir, and
# verify every acked mutation replayed from the WAL tail — updated
# values present, deleted rows still gone, zero acked-then-lost. Then
# prove follower catch-up: owner + standby behind a router with
# -replicas 2, bounce the follower, mutate while it is down, and verify
# it re-syncs through the logged tail (no full re-seed) with its epoch
# in lockstep. Exits non-zero on any failure.
set -eu

ADDR="${ADDR:-127.0.0.1:8098}"
TOKEN="${TOKEN:-dml-secret}"
BIN_DIR="$(mktemp -d)"
DATA_DIR="$(mktemp -d)"
LOG="$(mktemp)"

echo "== build"
go build -o "$BIN_DIR/pi-serve" ./cmd/pi-serve
go build -o "$BIN_DIR/pi-router" ./cmd/pi-router

cleanup() {
    [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true
    [ -n "${A_PID:-}" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "${B_PID:-}" ] && kill -9 "$B_PID" 2>/dev/null || true
    [ -n "${R_PID:-}" ] && kill -9 "$R_PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    echo "--- process log:" >&2
    cat "$LOG" >&2
    exit 1
}

wait_up() {
    i=0
    until curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 120 ] || { sleep 0.25; continue; }
        fail "$2 never came up on $1"
    done
}

# json_int BODY FIELD -> first integer value of "field":N
json_int() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -n 1
}

json_str() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p" | head -n 1
}

# Marker rows: distance values (9999/8888/7777) that OnTimeDB never
# generates (it stays under 3000), so predicates select exactly them.
marker_row() { # DISTANCE
    printf '["AA","AA","CAP","NYP","CA","NY",1,1,1,10,12,8,%s,1,0,0]' "$1"
}

append_rows() { # BASE_URL DISTANCE N -> ack body
    n="$3"
    payload=""
    while [ "$n" -gt 0 ]; do
        payload="$payload${payload:+,}$(marker_row "$2")"
        n=$((n - 1))
    done
    curl -s -X POST "$1/v1/interfaces/olap/rows?flush=1" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d "{\"table\":\"ontime\",\"rows\":[$payload]}"
}

mutate() { # BASE_URL SQL -> ack body
    curl -s -X POST "$1/v1/interfaces/olap/mutate" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d "{\"sql\":\"$2\"}"
}

start_server() {
    "$BIN_DIR/pi-serve" -addr "$ADDR" -workloads olap -n 80 -rows 500 \
        -token "$TOKEN" -data-dir "$DATA_DIR" -wal -wal-sync 0 >>"$LOG" 2>&1 &
    PID=$!
    wait_up "$ADDR" "pi-serve"
}

echo "== first life: pi-serve -wal on $ADDR"
start_server

echo "== marker rows the mutations will target"
body=$(append_rows "http://$ADDR" 9999 3)
[ "$(json_int "$body" rowCount)" = "503" ] || fail "marker append ack: $body"
body=$(append_rows "http://$ADDR" 8888 2)
[ "$(json_int "$body" rowCount)" = "505" ] || fail "second marker append ack: $body"

echo "== acked UPDATE and DELETE that no snapshot ever covers"
body=$(mutate "http://$ADDR" "UPDATE ontime SET delay = 12345 WHERE distance = 9999")
[ "$(json_int "$body" matched)" = "3" ] && [ "$(json_int "$body" updated)" = "3" ] \
    || fail "update ack = $body, want 3 matched/updated"
body=$(mutate "http://$ADDR" "DELETE FROM ontime WHERE distance = 8888")
[ "$(json_int "$body" matched)" = "2" ] && [ "$(json_int "$body" deleted)" = "2" ] \
    || fail "delete ack = $body, want 2 matched/deleted"

echo "== a stale ifEpoch refuses with 409 mutation_conflict"
code=$(curl -s -o /tmp/dml_conflict.$$ -w '%{http_code}' \
    -X POST "http://$ADDR/v1/interfaces/olap/mutate" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d '{"sql":"DELETE FROM ontime WHERE distance = 9999","ifEpoch":999999}')
conflict_body=$(cat /tmp/dml_conflict.$$; rm -f /tmp/dml_conflict.$$)
[ "$code" = "409" ] || fail "stale ifEpoch answered $code: $conflict_body"
case "$conflict_body" in
*mutation_conflict*) ;;
*) fail "conflict body missing mutation_conflict: $conflict_body" ;;
esac

echo "== SIGKILL (the mutations live only in the WAL)"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== second life: replay must restore every acked mutation"
start_server
grep -q "restored olap" "$LOG" || fail "server did not restore olap"
body=$(mutate "http://$ADDR" "DELETE FROM ontime WHERE distance = 8888")
[ "$(json_int "$body" matched)" = "0" ] || fail "deleted rows resurrected: $body"
body=$(mutate "http://$ADDR" "DELETE FROM ontime WHERE delay = 12345")
[ "$(json_int "$body" matched)" = "3" ] \
    || fail "acked-then-lost update: replayed rows with the updated value = $body, want 3"
body=$(append_rows "http://$ADDR" 9999 1)
[ "$(json_int "$body" rowCount)" = "501" ] \
    || fail "post-replay rowCount = $body, want 501 (505 - 2 deleted - 3 deleted + 1)"

kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== follower bounce: mutations catch up through the logged tail"
ROUTER_ADDR="${ROUTER_ADDR:-127.0.0.1:8110}"
A_ADDR="${A_ADDR:-127.0.0.1:8111}"
B_ADDR="${B_ADDR:-127.0.0.1:8112}"
A_DIR="$(mktemp -d)"
B_DIR="$(mktemp -d)"

"$BIN_DIR/pi-serve" -addr "$A_ADDR" -workloads olap -n 40 -rows 200 \
    -token "$TOKEN" -shard-addr "http://$A_ADDR" \
    -data-dir "$A_DIR" -wal -wal-sync 0 >>"$LOG" 2>&1 &
A_PID=$!
start_standby() {
    "$BIN_DIR/pi-serve" -addr "$B_ADDR" -workloads '' \
        -token "$TOKEN" -shard-addr "http://$B_ADDR" \
        -data-dir "$B_DIR" -wal -wal-sync 0 >>"$LOG" 2>&1 &
    B_PID=$!
}
start_standby
wait_up "$A_ADDR" "owner shard"
wait_up "$B_ADDR" "standby shard"

"$BIN_DIR/pi-router" -addr "$ROUTER_ADDR" -shards "$A_ADDR,$B_ADDR" \
    -token "$TOKEN" -refresh-every 1s -replicas 2 >>"$LOG" 2>&1 &
R_PID=$!
wait_up "$ROUTER_ADDR" "router"

replication() {
    curl -s -H "Authorization: Bearer $TOKEN" "http://$ROUTER_ADDR/v1/router/replication"
}
wait_synced() {
    i=0
    until printf '%s' "$(replication)" | grep -q '"synced":true'; do
        i=$((i + 1))
        [ "$i" -gt 120 ] && fail "$1: $(replication)"
        sleep 0.5
    done
}
wait_synced "follower never seeded"

echo "== routed mutation while both replicas are up"
append_rows "http://$ROUTER_ADDR" 7777 1 >/dev/null
body=$(mutate "http://$ROUTER_ADDR" "UPDATE ontime SET delay = 54321 WHERE distance = 7777")
[ "$(json_int "$body" matched)" = "1" ] || fail "routed mutation ack = $body"

seeds_before=$(json_int "$(curl -s "http://$A_ADDR/v1/healthz")" seeds)
[ -n "$seeds_before" ] || fail "owner health has no seeds counter"

echo "== bounce the follower; mutate while it is down"
kill -9 "$B_PID"
wait "$B_PID" 2>/dev/null || true
B_PID=""
body=$(mutate "http://$ROUTER_ADDR" "UPDATE ontime SET delay = 54322 WHERE distance = 7777")
[ "$(json_int "$body" matched)" = "1" ] || fail "mutation during follower downtime = $body"
body=$(mutate "http://$ROUTER_ADDR" "DELETE FROM ontime WHERE distance = 9999")
[ -n "$(json_int "$body" matched)" ] || fail "delete during follower downtime = $body"

start_standby
wait_up "$B_ADDR" "bounced follower"
curl -s -X POST -H "Authorization: Bearer $TOKEN" \
    "http://$ROUTER_ADDR/v1/router/refresh" >/dev/null
wait_synced "bounced follower never re-synced"

seeds_after=$(json_int "$(curl -s "http://$A_ADDR/v1/healthz")" seeds)
catchups=$(json_int "$(curl -s "http://$A_ADDR/v1/healthz")" catchUps)
[ "$seeds_after" = "$seeds_before" ] \
    || fail "mutation catch-up triggered a full re-seed (seeds $seeds_before -> $seeds_after)"
[ -n "$catchups" ] && [ "$catchups" -ge 1 ] || fail "no catch-up recorded on the owner"

echo "== follower epoch in lockstep after replaying the mutations"
owner_epoch=$(json_int "$(curl -s "http://$A_ADDR/v1/interfaces/olap/epoch")" epoch)
follower_epoch=$(json_int "$(curl -s "http://$B_ADDR/v1/interfaces/olap/epoch")" epoch)
[ -n "$owner_epoch" ] && [ "$owner_epoch" = "$follower_epoch" ] \
    || fail "epochs diverged after catch-up: owner $owner_epoch, follower $follower_epoch"

echo "dml-smoke: ok"
