#!/bin/sh
# End-to-end smoke of the v1 API surface: build pi-serve, start it
# with a bearer token, exercise it through the pi/client SDK
# (pi-serve -check), and verify the auth and error contracts with raw
# curl. Exits non-zero on any failure.
set -eu

ADDR="${ADDR:-127.0.0.1:8094}"
TOKEN="${TOKEN:-smoke-secret}"
BIN="$(mktemp -d)/pi-serve"
LOG="$(mktemp)"

echo "== build"
go build -o "$BIN" ./cmd/pi-serve

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

echo "== start pi-serve -token ... on $ADDR"
"$BIN" -addr "$ADDR" -workloads olap -n 80 -rows 500 -token "$TOKEN" >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 120 ]; then
        echo "server never came up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.25
done

echo "== pi-serve -check (SDK round-trip incl. auth rejection)"
"$BIN" -check -addr "$ADDR" -token "$TOKEN"

echo "== raw contract checks"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/interfaces/olap/query" -d '{"widgets":[]}')
[ "$code" = "401" ] || { echo "unauthenticated query: $code, want 401" >&2; exit 1; }

code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://$ADDR/v1/interfaces/olap/query" \
    -H "Authorization: Bearer wrong" -d '{"widgets":[]}')
[ "$code" = "403" ] || { echo "wrong-token query: $code, want 403" >&2; exit 1; }

body=$(curl -s -X POST "http://$ADDR/v1/interfaces/nope/query" \
    -H "Authorization: Bearer $TOKEN" -d '{"widgets":[]}')
case "$body" in
*'"code":"not_found"'*) ;;
*) echo "missing not_found envelope: $body" >&2; exit 1 ;;
esac

body=$(curl -s -X POST "http://$ADDR/v1/interfaces/olap/query" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d '{"widgets":[],"limit":2}')
case "$body" in
*'"rows":'*) ;;
*) echo "authorized query failed: $body" >&2; exit 1 ;;
esac

echo "== graceful shutdown"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 60 ]; then
        echo "server did not shut down on SIGTERM" >&2
        exit 1
    fi
    sleep 0.25
done
PID=""

echo "api-smoke: ok"
