#!/bin/sh
# End-to-end smoke of the sharding subsystem: start two pi-serve shards
# and a pi-router, host different interfaces on each shard, verify that
# queries through the router are byte-identical to direct shard
# queries, migrate an interface live while queries keep flowing (no
# failure other than structured moved errors the router/SDK follow),
# verify epoch-bound cursors minted before the migration expire with
# cursor_expired, bound the router-proxy p50 overhead at < 2x direct
# serve on the cached-plan path, then kill a shard and verify the
# structured shard_unavailable / degraded-health contract.
# Exits non-zero on any failure.
set -eu

ROUTER_ADDR="${ROUTER_ADDR:-127.0.0.1:8100}"
A_ADDR="${A_ADDR:-127.0.0.1:8101}"
B_ADDR="${B_ADDR:-127.0.0.1:8102}"
TOKEN="${TOKEN:-shard-secret}"
BIN_DIR="$(mktemp -d)"
LOG="$(mktemp)"
LIVE_CODES="$(mktemp)"

echo "== build"
go build -o "$BIN_DIR/pi-serve" ./cmd/pi-serve
go build -o "$BIN_DIR/pi-router" ./cmd/pi-router

cleanup() {
    [ -n "${A_PID:-}" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "${B_PID:-}" ] && kill -9 "$B_PID" 2>/dev/null || true
    [ -n "${R_PID:-}" ] && kill -9 "$R_PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    echo "--- process log:" >&2
    cat "$LOG" >&2
    exit 1
}

wait_up() {
    i=0
    until curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 120 ] || { sleep 0.25; continue; }
        fail "$2 never came up on $1"
    done
}

# json_str BODY FIELD -> first string value of "field":"..."
json_str() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p" | head -n 1
}

# query ADDR ID EXTRA_JSON -> response body
query() {
    curl -s -X POST "http://$1/v1/interfaces/$2/query" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d "{\"widgets\":[]$3}"
}

# stable_part BODY -> the response minus per-call cache/stat fields
stable_part() {
    printf '%s' "$1" | sed 's/,"cache":.*//'
}

echo "== start shard A (olap) on $A_ADDR and shard B (adhoc) on $B_ADDR"
"$BIN_DIR/pi-serve" -addr "$A_ADDR" -workloads olap -n 80 -rows 400 \
    -token "$TOKEN" -shard-addr "http://$A_ADDR" >>"$LOG" 2>&1 &
A_PID=$!
"$BIN_DIR/pi-serve" -addr "$B_ADDR" -workloads adhoc -n 80 -rows 400 \
    -token "$TOKEN" -shard-addr "http://$B_ADDR" >>"$LOG" 2>&1 &
B_PID=$!
wait_up "$A_ADDR" "shard A"
wait_up "$B_ADDR" "shard B"

echo "== start router on $ROUTER_ADDR over both shards"
"$BIN_DIR/pi-router" -addr "$ROUTER_ADDR" -shards "$A_ADDR,$B_ADDR" \
    -token "$TOKEN" -refresh-every 0 >>"$LOG" 2>&1 &
R_PID=$!
wait_up "$ROUTER_ADDR" "router"

echo "== router merges both shards' interfaces"
list=$(curl -s "http://$ROUTER_ADDR/v1/interfaces")
case "$list" in
*'"id":"adhoc"'*'"id":"olap"'*) ;;
*) fail "router list missing interfaces: $list" ;;
esac

echo "== queries through the router are byte-identical to direct shard queries"
routed=$(query "$ROUTER_ADDR" olap ',"limit":10')
direct=$(query "$A_ADDR" olap ',"limit":10')
[ -n "$(stable_part "$routed")" ] || fail "empty routed response: $routed"
if [ "$(stable_part "$routed")" != "$(stable_part "$direct")" ]; then
    fail "routed response differs from direct:
router: $routed
direct: $direct"
fi

echo "== SDK round-trip through the router (pi-serve -check)"
"$BIN_DIR/pi-serve" -check -addr "$ROUTER_ADDR" -token "$TOKEN" >>"$LOG" 2>&1 \
    || fail "pi-serve -check against the router failed"

echo "== mint an epoch-bound cursor on adhoc (it paginates; olap's initial aggregate does not)"
page1=$(query "$ROUTER_ADDR" adhoc ',"limit":2')
cursor=$(json_str "$page1" nextCursor)
[ -n "$cursor" ] || fail "initial adhoc query minted no cursor: $page1"

echo "== migrate olap A -> B while queries keep flowing"
(
    i=0
    while [ "$i" -lt 50 ]; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' \
            -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/query" \
            -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
            -d '{"widgets":[],"limit":5}' >>"$LIVE_CODES"
    done
) &
LIVE_PID=$!
mig=$(curl -s -X POST "http://$ROUTER_ADDR/v1/router/migrate" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d "{\"id\":\"olap\",\"to\":\"http://$B_ADDR\"}")
case "$mig" in
*'"id":"olap"'*"$B_ADDR"*) ;;
*) fail "migrate failed: $mig" ;;
esac
wait "$LIVE_PID"
bad=$(grep -cv '^200$' "$LIVE_CODES" || true)
[ "$bad" = "0" ] || fail "$bad live queries failed during migration: $(sort "$LIVE_CODES" | uniq -c | tr '\n' ' ')"
echo "   $(wc -l <"$LIVE_CODES" | tr -d ' ') live queries, all 200 during the migration"

echo "== source shard answers with a structured moved error"
moved=$(query "$A_ADDR" olap ',"limit":1')
[ "$(json_str "$moved" code)" = "moved" ] || fail "source shard did not answer moved: $moved"
case "$(json_str "$moved" addr)" in
*"$B_ADDR"*) ;;
*) fail "moved error does not carry the new owner: $moved" ;;
esac

echo "== router serves olap from shard B, identical to direct"
routed=$(query "$ROUTER_ADDR" olap ',"limit":10')
direct=$(query "$B_ADDR" olap ',"limit":10')
[ "$(stable_part "$routed")" = "$(stable_part "$direct")" ] \
    || fail "post-migration routed response differs from shard B"

echo "== router-proxy p50 overhead < 2x direct serve (cached-plan path)"
# Measured on a realistic page (200 rows, plan + result cache hot, both
# interfaces live on shard B at this point, gzip negotiated like the
# SDK and every browser does) so the fixed per-hop cost is weighed
# against real serving work, not a near-empty identity response.
p50() { # addr -> median time_total over 40 cached queries
    j=0
    while [ "$j" -lt 40 ]; do
        j=$((j + 1))
        curl -s --compressed -o /dev/null -w '%{time_total}\n' \
            -X POST "http://$1/v1/interfaces/adhoc/query" \
            -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
            -d '{"widgets":[],"limit":200}'
    done | sort -n | sed -n '20p'
}
query "$B_ADDR" adhoc ',"limit":200' >/dev/null # warm caches
query "$ROUTER_ADDR" adhoc ',"limit":200' >/dev/null
direct_p50=$(p50 "$B_ADDR")
router_p50=$(p50 "$ROUTER_ADDR")
awk -v d="$direct_p50" -v r="$router_p50" 'BEGIN {
    ratio = (d > 0) ? r / d : 0
    printf "   direct p50 %.4fs, router p50 %.4fs, overhead %.2fx\n", d, r, ratio
    exit (d > 0 && ratio < 2.0) ? 0 : 1
}' || fail "router p50 $router_p50 is not < 2x direct p50 $direct_p50"

echo "== migrate adhoc B -> A so each shard owns one interface again"
mig2=$(curl -s -X POST "http://$ROUTER_ADDR/v1/router/migrate" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d "{\"id\":\"adhoc\",\"to\":\"http://$A_ADDR\"}")
case "$mig2" in
*'"id":"adhoc"'*) ;;
*) fail "migrate adhoc failed: $mig2" ;;
esac

echo "== cursor minted before the migration expires with cursor_expired"
stale=$(query "$ROUTER_ADDR" adhoc ",\"limit\":2,\"cursor\":\"$cursor\"")
[ "$(json_str "$stale" code)" = "cursor_expired" ] \
    || fail "stale cursor not expired: $stale"

echo "== kill shard B: structured shard_unavailable, degraded health"
kill -9 "$B_PID"
wait "$B_PID" 2>/dev/null || true
B_PID=""
down=$(query "$ROUTER_ADDR" olap ',"limit":1')
[ "$(json_str "$down" code)" = "shard_unavailable" ] \
    || fail "dead shard query did not return shard_unavailable: $down"
health=$(curl -s "http://$ROUTER_ADDR/v1/healthz")
# Anchored: the fleet status is the first field; shard rows carry their
# own "status" keys later in the body.
[ "$(printf '%s' "$health" | sed -n 's/^{"status":"\([^"]*\)".*/\1/p')" = "degraded" ] \
    || fail "health not degraded with a dead shard: $health"
case "$health" in
*'"status":"unreachable"'*) ;;
*) fail "health does not mark the dead shard unreachable: $health" ;;
esac

echo "== surviving shard keeps serving through the router"
alive=$(query "$ROUTER_ADDR" adhoc ',"limit":1')
[ -z "$(json_str "$alive" code)" ] || fail "adhoc query failed after B died: $alive"

echo "shard smoke: ok"
