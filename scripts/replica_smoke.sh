#!/bin/sh
# End-to-end smoke of the replication subsystem: start one shard
# hosting olap plus two empty standbys behind a router running with
# -replicas 2 -read-fanout -failover, wait for the warm follower to
# sync, then SIGKILL the owner while writes and reads flow through the
# router. Assert that the best follower is promoted, that no read ever
# failed and every acked write survived, that the refresh loop re-seeds
# a replacement follower on the surviving standby, and that health goes
# degraded while the dead shard is down and back to healthy once a
# replacement process rejoins the fleet. Finally bounce the synced
# follower: every shard runs with -data-dir -wal, so the restarted
# follower restores its role and stream position from its manifest and
# re-syncs through the owner's logged tail — the owner's full-seed
# counter must not move.
# Exits non-zero on any failure.
set -eu

ROUTER_ADDR="${ROUTER_ADDR:-127.0.0.1:8100}"
A_ADDR="${A_ADDR:-127.0.0.1:8101}"
B_ADDR="${B_ADDR:-127.0.0.1:8102}"
C_ADDR="${C_ADDR:-127.0.0.1:8103}"
TOKEN="${TOKEN:-shard-secret}"
BIN_DIR="$(mktemp -d)"
A_DIR="$(mktemp -d)"
B_DIR="$(mktemp -d)"
C_DIR="$(mktemp -d)"
LOG="$(mktemp)"
WRITE_CODES="$(mktemp)"
READ_CODES="$(mktemp)"

ROW='["AA","AA","CAP","NYP","CA","NY",1,1,1,10,10,10,500,1,0,0]'

echo "== build"
go build -o "$BIN_DIR/pi-serve" ./cmd/pi-serve
go build -o "$BIN_DIR/pi-router" ./cmd/pi-router

cleanup() {
    [ -n "${A_PID:-}" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "${B_PID:-}" ] && kill -9 "$B_PID" 2>/dev/null || true
    [ -n "${C_PID:-}" ] && kill -9 "$C_PID" 2>/dev/null || true
    [ -n "${R_PID:-}" ] && kill -9 "$R_PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    echo "--- process log:" >&2
    cat "$LOG" >&2
    exit 1
}

wait_up() {
    i=0
    until curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 120 ] || { sleep 0.25; continue; }
        fail "$2 never came up on $1"
    done
}

# json_str BODY FIELD -> first string value of "field":"..."
json_str() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\"\([^\"]*\)\".*/\1/p" | head -n 1
}

# json_int BODY FIELD -> first integer value of "field":N
json_int() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -n 1
}

replication() {
    curl -s -H "Authorization: Bearer $TOKEN" "http://$ROUTER_ADDR/v1/router/replication"
}

append_row() { # -> response body (flushed, so the ack carries rowCount)
    curl -s -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/rows?flush=1" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d "{\"table\":\"ontime\",\"rows\":[$ROW]}"
}

start_standby() { # ADDR DATA_DIR -> pid on stdout
    "$BIN_DIR/pi-serve" -addr "$1" -workloads '' \
        -token "$TOKEN" -shard-addr "http://$1" \
        -data-dir "$2" -wal -wal-sync 0 >>"$LOG" 2>&1 &
    echo $!
}

echo "== start owner shard A (olap) on $A_ADDR, empty standbys on $B_ADDR and $C_ADDR (all durable: -data-dir -wal)"
"$BIN_DIR/pi-serve" -addr "$A_ADDR" -workloads olap -n 40 -rows 200 \
    -token "$TOKEN" -shard-addr "http://$A_ADDR" \
    -data-dir "$A_DIR" -wal -wal-sync 0 >>"$LOG" 2>&1 &
A_PID=$!
B_PID=$(start_standby "$B_ADDR" "$B_DIR")
C_PID=$(start_standby "$C_ADDR" "$C_DIR")
wait_up "$A_ADDR" "shard A"
wait_up "$B_ADDR" "shard B"
wait_up "$C_ADDR" "shard C"

echo "== start router on $ROUTER_ADDR: -replicas 2 -read-fanout -failover"
"$BIN_DIR/pi-router" -addr "$ROUTER_ADDR" -shards "$A_ADDR,$B_ADDR,$C_ADDR" \
    -token "$TOKEN" -refresh-every 1s -replicas 2 -read-fanout -failover \
    >>"$LOG" 2>&1 &
R_PID=$!
wait_up "$ROUTER_ADDR" "router"

echo "== wait for the warm follower to seed and sync"
i=0
until printf '%s' "$(replication)" | grep -q '"synced":true'; do
    i=$((i + 1))
    [ "$i" -gt 120 ] && fail "follower never synced: $(replication)"
    sleep 0.5
done
owner0=$(json_str "$(replication)" owner)
[ "$owner0" = "http://$A_ADDR" ] || fail "unexpected initial owner $owner0"
echo "   owner $owner0, follower in sync"

echo "== baseline row count via one flushed append"
base=$(append_row)
start_count=$(json_int "$base" rowCount)
[ -n "$start_count" ] || fail "baseline append returned no rowCount: $base"

echo "== hammer: writes and reads through the router while the owner dies"
(
    i=0
    while [ "$i" -lt 60 ]; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' \
            -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/rows?flush=1" \
            -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
            -d "{\"table\":\"ontime\",\"rows\":[$ROW]}" >>"$WRITE_CODES"
        sleep 0.05
    done
) &
W_PID=$!
(
    i=0
    while [ "$i" -lt 60 ]; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' \
            -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/query" \
            -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
            -d '{"widgets":[],"limit":5}' >>"$READ_CODES"
        sleep 0.05
    done
) &
READ_PID=$!

sleep 1
echo "== SIGKILL the owner mid-stream"
kill -9 "$A_PID"
wait "$A_PID" 2>/dev/null || true
A_PID=""

wait "$W_PID" || true
wait "$READ_PID" || true

echo "== no read ever failed (fan-out + failover cover the owner's death)"
bad_reads=$(grep -cv '^200$' "$READ_CODES" || true)
[ "$bad_reads" = "0" ] || fail "$bad_reads reads failed during failover: $(sort "$READ_CODES" | uniq -c | tr '\n' ' ')"

echo "== the best follower was promoted"
i=0
while :; do
    owner=$(json_str "$(replication)" owner)
    [ -n "$owner" ] && [ "$owner" != "http://$A_ADDR" ] && break
    i=$((i + 1))
    [ "$i" -gt 60 ] && fail "owner never changed after the kill: $(replication)"
    sleep 0.5
done
echo "   promoted owner: $owner"

echo "== every acked write survived the failover"
# Appends ack with 202; anything else is a write the client saw fail
# (legal during the promotion window — failed writes are not counted).
acked=$(grep -c '^202$' "$WRITE_CODES" || true)
final=$(append_row)
final_count=$(json_int "$final" rowCount)
[ -n "$final_count" ] || fail "post-failover append failed: $final"
want=$((start_count + acked + 1))
[ "$final_count" -ge "$want" ] \
    || fail "acked-then-lost writes: $final_count rows visible, want >= $want ($acked acked)"
echo "   $acked acked writes, $final_count rows visible (>= $want)"

echo "== a replacement follower is re-seeded on the surviving standby"
i=0
until printf '%s' "$(replication)" | grep -q '"synced":true'; do
    i=$((i + 1))
    [ "$i" -gt 120 ] && fail "replacement follower never synced: $(replication)"
    sleep 0.5
done
rep=$(replication)
case "$rep" in
*"$A_ADDR"*) fail "dead shard still in the replica set: $rep" ;;
esac
echo "   replica set healed: $rep"

echo "== health is degraded while the dead shard is down"
health=$(curl -s "http://$ROUTER_ADDR/v1/healthz")
[ "$(printf '%s' "$health" | sed -n 's/^{"status":"\([^"]*\)".*/\1/p')" = "degraded" ] \
    || fail "health not degraded with a dead shard: $health"

echo "== restart the dead shard empty (fresh dir); an explicit refresh clears probe backoff"
A_PID=$(start_standby "$A_ADDR" "$(mktemp -d)")
wait_up "$A_ADDR" "restarted shard A"
curl -s -X POST -H "Authorization: Bearer $TOKEN" \
    "http://$ROUTER_ADDR/v1/router/refresh" >/dev/null
i=0
while :; do
    health=$(curl -s "http://$ROUTER_ADDR/v1/healthz")
    [ "$(printf '%s' "$health" | sed -n 's/^{"status":"\([^"]*\)".*/\1/p')" = "ok" ] && break
    i=$((i + 1))
    [ "$i" -gt 60 ] && fail "health never recovered after the restart: $health"
    sleep 0.5
    curl -s -X POST -H "Authorization: Bearer $TOKEN" \
        "http://$ROUTER_ADDR/v1/router/refresh" >/dev/null
done
echo "   fleet healthy again"

echo "== steady state: queries answer 200, not shard_unavailable"
code=$(curl -s -o /dev/null -w '%{http_code}' \
    -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/query" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d '{"widgets":[],"limit":5}')
[ "$code" = "200" ] || fail "steady-state query answered $code"

echo "== bounce the synced follower: durable state resumes the stream, no full re-seed"
owner=$(json_str "$(replication)" owner)
if [ "$owner" = "http://$B_ADDR" ]; then
    FOL_ADDR="$C_ADDR" FOL_PID="$C_PID" FOL_DIR="$C_DIR" FOL=C
else
    FOL_ADDR="$B_ADDR" FOL_PID="$B_PID" FOL_DIR="$B_DIR" FOL=B
fi
OWNER_HOST="${owner#http://}"
owner_health() { curl -s "http://$OWNER_HOST/v1/healthz"; }

seeds_before=$(json_int "$(owner_health)" seeds)
[ -n "$seeds_before" ] || fail "owner health reports no seeds counter: $(owner_health)"
pre_bounce=$(append_row)
pre_count=$(json_int "$pre_bounce" rowCount)

kill -9 "$FOL_PID"
wait "$FOL_PID" 2>/dev/null || true

echo "   writes land while the follower is down (it must catch up, not re-seed)"
append_row >/dev/null
append_row >/dev/null
down_ack=$(append_row)
down_count=$(json_int "$down_ack" rowCount)
[ -n "$down_count" ] && [ "$down_count" -eq $((pre_count + 3)) ] \
    || fail "writes during follower downtime did not ack: $down_ack"

echo "   restart the follower on its own data dir ($FOL_DIR)"
case "$FOL" in
B) B_PID=$(start_standby "$B_ADDR" "$B_DIR") ;;
C) C_PID=$(start_standby "$C_ADDR" "$C_DIR") ;;
esac
wait_up "$FOL_ADDR" "bounced follower"
curl -s -X POST -H "Authorization: Bearer $TOKEN" \
    "http://$ROUTER_ADDR/v1/router/refresh" >/dev/null

i=0
until printf '%s' "$(replication)" | grep -q '"synced":true'; do
    i=$((i + 1))
    [ "$i" -gt 120 ] && fail "bounced follower never re-synced: $(replication)"
    sleep 0.5
done

seeds_after=$(json_int "$(owner_health)" seeds)
catchups=$(json_int "$(owner_health)" catchUps)
[ "$seeds_after" = "$seeds_before" ] \
    || fail "bounce triggered a full re-seed (seeds $seeds_before -> $seeds_after): $(owner_health)"
[ -n "$catchups" ] && [ "$catchups" -ge 1 ] \
    || fail "no catch-up recorded on the owner: $(owner_health)"
echo "   re-synced via WAL catch-up (seeds stayed $seeds_before, catchUps $catchups)"

echo "replica smoke: ok"
