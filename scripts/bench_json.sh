#!/bin/sh
# Benchmark the router-proxy overhead against direct serve on the
# cached-plan path and record the result as BENCH_shard.json, then the
# replication layer's ack coupling (replicated vs unreplicated append
# ack, fan-out read) as BENCH_replica.json, WAL/snapshot costs as
# BENCH_wal.json, and cached-plan query latency percentiles + allocs
# as BENCH_query.json, and instrumentation overhead (metrics on vs
# off on the cached-plan path) as BENCH_obs.json, so the perf
# trajectory of the serving layer is tracked in-repo run over run.
# Exits non-zero if any benchmark fails to produce a number.
set -eu

OUT="${OUT:-BENCH_shard.json}"
REPLICA_OUT="${REPLICA_OUT:-BENCH_replica.json}"
BENCHTIME="${BENCHTIME:-500x}"

echo "== go test -bench (Direct|Router)Query -benchtime $BENCHTIME ./internal/shard"
raw=$(go test -run '^$' -bench 'BenchmarkDirectQuery$|BenchmarkRouterQuery$' \
    -benchtime "$BENCHTIME" ./internal/shard)
printf '%s\n' "$raw"

direct=$(printf '%s\n' "$raw" | awk '/^BenchmarkDirectQuery/ { print $3; exit }')
router=$(printf '%s\n' "$raw" | awk '/^BenchmarkRouterQuery/ { print $3; exit }')
if [ -z "$direct" ] || [ -z "$router" ]; then
    echo "FAIL: benchmarks produced no numbers" >&2
    exit 1
fi

awk -v d="$direct" -v r="$router" -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"router-proxy query overhead vs direct serve (cached-plan path)\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"direct_ns_op\": %d,\n", d
    printf "  \"router_ns_op\": %d,\n", r
    printf "  \"overhead_x\": %.3f\n", r / d
    printf "}\n"
}' >"$OUT"

echo "== $OUT"
cat "$OUT"

echo "== go test -bench (Unreplicated|Replicated)Ack|FanoutQuery -benchtime $BENCHTIME ./internal/shard"
raw=$(go test -run '^$' \
    -bench 'BenchmarkUnreplicatedAck$|BenchmarkReplicatedAck$|BenchmarkFanoutQuery$' \
    -benchtime "$BENCHTIME" ./internal/shard)
printf '%s\n' "$raw"

unrep=$(printf '%s\n' "$raw" | awk '/^BenchmarkUnreplicatedAck/ { print $3; exit }')
rep=$(printf '%s\n' "$raw" | awk '/^BenchmarkReplicatedAck/ { print $3; exit }')
fanout=$(printf '%s\n' "$raw" | awk '/^BenchmarkFanoutQuery/ { print $3; exit }')
if [ -z "$unrep" ] || [ -z "$rep" ] || [ -z "$fanout" ]; then
    echo "FAIL: replication benchmarks produced no numbers" >&2
    exit 1
fi

awk -v u="$unrep" -v r="$rep" -v f="$fanout" -v q="$router" -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"replicated-ack overhead vs unreplicated append (cached-plan path), fan-out read\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"unreplicated_ack_ns_op\": %d,\n", u
    printf "  \"replicated_ack_ns_op\": %d,\n", r
    printf "  \"replicated_ack_overhead_x\": %.3f,\n", r / u
    printf "  \"fanout_query_ns_op\": %d,\n", f
    printf "  \"router_query_ns_op\": %d\n", q
    printf "}\n"
}' >"$REPLICA_OUT"

echo "== $REPLICA_OUT"
cat "$REPLICA_OUT"

WAL_OUT="${WAL_OUT:-BENCH_wal.json}"

echo "== go test -bench AckedAppend|Snapshot -benchtime $BENCHTIME ./internal/ingest"
raw=$(go test -run '^$' \
    -bench 'BenchmarkAckedAppendNoWAL$|BenchmarkAckedAppendWALStrict$|BenchmarkAckedAppendWALGroup$|BenchmarkSnapshotFull$|BenchmarkSnapshotDifferential$' \
    -benchtime "$BENCHTIME" ./internal/ingest)
printf '%s\n' "$raw"

nowal=$(printf '%s\n' "$raw" | awk '/^BenchmarkAckedAppendNoWAL/ { print $3; exit }')
strict=$(printf '%s\n' "$raw" | awk '/^BenchmarkAckedAppendWALStrict/ { print $3; exit }')
group=$(printf '%s\n' "$raw" | awk '/^BenchmarkAckedAppendWALGroup/ { print $3; exit }')
full=$(printf '%s\n' "$raw" | awk '/^BenchmarkSnapshotFull/ { print $3; exit }')
diff=$(printf '%s\n' "$raw" | awk '/^BenchmarkSnapshotDifferential/ { print $3; exit }')
if [ -z "$nowal" ] || [ -z "$strict" ] || [ -z "$group" ] || [ -z "$full" ] || [ -z "$diff" ]; then
    echo "FAIL: WAL benchmarks produced no numbers" >&2
    exit 1
fi

awk -v n="$nowal" -v s="$strict" -v g="$group" -v f="$full" -v d="$diff" \
    -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"WAL acked-append overhead (off / strict fsync / group commit), differential vs full snapshot at 1%% delta\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"acked_append_no_wal_ns_op\": %d,\n", n
    printf "  \"acked_append_wal_strict_ns_op\": %d,\n", s
    printf "  \"acked_append_wal_group_ns_op\": %d,\n", g
    printf "  \"wal_group_overhead_x\": %.3f,\n", g / n
    printf "  \"snapshot_full_ns_op\": %d,\n", f
    printf "  \"snapshot_differential_ns_op\": %d,\n", d
    printf "  \"differential_saving_x\": %.3f\n", f / d
    printf "}\n"
}' >"$WAL_OUT"

echo "== $WAL_OUT"
cat "$WAL_OUT"

QUERY_OUT="${QUERY_OUT:-BENCH_query.json}"

# Carry the previous run's numbers as prev_* fields before the file is
# overwritten, so the committed artifact always shows before/after for
# the change that regenerated it.
prev_mean=""; prev_p50=""; prev_p99=""; prev_bytes=""; prev_allocs=""
if [ -f "$QUERY_OUT" ]; then
    prev_mean=$(awk -F'[:,]' '/"mean_ns_op"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$QUERY_OUT")
    prev_p50=$(awk -F'[:,]' '/"p50_ns"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$QUERY_OUT")
    prev_p99=$(awk -F'[:,]' '/"p99_ns"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$QUERY_OUT")
    prev_bytes=$(awk -F'[:,]' '/"bytes_op"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$QUERY_OUT")
    prev_allocs=$(awk -F'[:,]' '/"allocs_op"/ && !/prev/ { gsub(/ /, "", $2); print $2; exit }' "$QUERY_OUT")
fi

echo "== go test -bench QueryPlanCached -benchtime $BENCHTIME -benchmem ./internal/api"
raw=$(go test -run '^$' -bench 'BenchmarkQueryPlanCached$' \
    -benchtime "$BENCHTIME" -benchmem ./internal/api)
printf '%s\n' "$raw"

line=$(printf '%s\n' "$raw" | awk '/^BenchmarkQueryPlanCached/ { print; exit }')
mean=$(printf '%s\n' "$line" | awk '{ for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") { print $i; exit } }')
p50=$(printf '%s\n' "$line" | awk '{ for (i = 2; i < NF; i++) if ($(i+1) == "p50_ns") { print $i; exit } }')
p99=$(printf '%s\n' "$line" | awk '{ for (i = 2; i < NF; i++) if ($(i+1) == "p99_ns") { print $i; exit } }')
bytes=$(printf '%s\n' "$line" | awk '{ for (i = 2; i <= NF; i++) if ($i == "B/op") { print $(i-1); exit } }')
allocs=$(printf '%s\n' "$line" | awk '{ for (i = 2; i <= NF; i++) if ($i == "allocs/op") { print $(i-1); exit } }')
if [ -z "$mean" ] || [ -z "$p50" ] || [ -z "$p99" ] || [ -z "$bytes" ] || [ -z "$allocs" ]; then
    echo "FAIL: query benchmark produced no numbers" >&2
    exit 1
fi

awk -v m="$mean" -v p50="$p50" -v p99="$p99" -v by="$bytes" -v al="$allocs" \
    -v pm="$prev_mean" -v pp50="$prev_p50" -v pp99="$prev_p99" \
    -v pby="$prev_bytes" -v pal="$prev_allocs" \
    -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"cached-plan query latency (plan-cache hit path)\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"mean_ns_op\": %.1f,\n", m
    printf "  \"p50_ns\": %.1f,\n", p50
    printf "  \"p99_ns\": %.1f,\n", p99
    printf "  \"bytes_op\": %d,\n", by
    if (pm != "") {
        printf "  \"allocs_op\": %d,\n", al
        printf "  \"prev_mean_ns_op\": %.1f,\n", pm
        printf "  \"prev_p50_ns\": %.1f,\n", pp50
        printf "  \"prev_p99_ns\": %.1f,\n", pp99
        printf "  \"prev_bytes_op\": %d,\n", pby
        printf "  \"prev_allocs_op\": %d\n", pal
    } else {
        printf "  \"allocs_op\": %d\n", al
    }
    printf "}\n"
}' >"$QUERY_OUT"

echo "== $QUERY_OUT"
cat "$QUERY_OUT"

OBS_OUT="${OBS_OUT:-BENCH_obs.json}"

echo "== go test -bench QueryPlanCached(NoMetrics)? -benchtime $BENCHTIME -benchmem ./internal/api"
raw=$(go test -run '^$' -bench 'BenchmarkQueryPlanCached$|BenchmarkQueryPlanCachedNoMetrics$' \
    -benchtime "$BENCHTIME" -benchmem ./internal/api)
printf '%s\n' "$raw"

on=$(printf '%s\n' "$raw" | awk '/^BenchmarkQueryPlanCached[^N]/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") { print $i; exit } }')
off=$(printf '%s\n' "$raw" | awk '/^BenchmarkQueryPlanCachedNoMetrics/ { for (i = 2; i < NF; i++) if ($(i+1) == "ns/op") { print $i; exit } }')
on_allocs=$(printf '%s\n' "$raw" | awk '/^BenchmarkQueryPlanCached[^N]/ { for (i = 2; i <= NF; i++) if ($i == "allocs/op") { print $(i-1); exit } }')
if [ -z "$on" ] || [ -z "$off" ] || [ -z "$on_allocs" ]; then
    echo "FAIL: observability benchmarks produced no numbers" >&2
    exit 1
fi

awk -v on="$on" -v off="$off" -v al="$on_allocs" -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"instrumentation overhead on the cached-plan query path (metrics live vs disabled)\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"metrics_on_ns_op\": %.1f,\n", on
    printf "  \"metrics_off_ns_op\": %.1f,\n", off
    printf "  \"overhead_x\": %.3f,\n", on / off
    printf "  \"metrics_on_allocs_op\": %d\n", al
    printf "}\n"
}' >"$OBS_OUT"

echo "== $OBS_OUT"
cat "$OBS_OUT"
