#!/bin/sh
# Benchmark the router-proxy overhead against direct serve on the
# cached-plan path and record the result as BENCH_shard.json, so the
# perf trajectory of the serving layer is tracked in-repo run over run.
# Exits non-zero if either benchmark fails to produce a number.
set -eu

OUT="${OUT:-BENCH_shard.json}"
BENCHTIME="${BENCHTIME:-500x}"

echo "== go test -bench (Direct|Router)Query -benchtime $BENCHTIME ./internal/shard"
raw=$(go test -run '^$' -bench 'BenchmarkDirectQuery$|BenchmarkRouterQuery$' \
    -benchtime "$BENCHTIME" ./internal/shard)
printf '%s\n' "$raw"

direct=$(printf '%s\n' "$raw" | awk '/^BenchmarkDirectQuery/ { print $3; exit }')
router=$(printf '%s\n' "$raw" | awk '/^BenchmarkRouterQuery/ { print $3; exit }')
if [ -z "$direct" ] || [ -z "$router" ]; then
    echo "FAIL: benchmarks produced no numbers" >&2
    exit 1
fi

awk -v d="$direct" -v r="$router" -v go_ver="$(go env GOVERSION)" 'BEGIN {
    printf "{\n"
    printf "  \"benchmark\": \"router-proxy query overhead vs direct serve (cached-plan path)\",\n"
    printf "  \"go\": \"%s\",\n", go_ver
    printf "  \"direct_ns_op\": %d,\n", d
    printf "  \"router_ns_op\": %d,\n", r
    printf "  \"overhead_x\": %.3f\n", r / d
    printf "}\n"
}' >"$OUT"

echo "== $OUT"
cat "$OUT"
