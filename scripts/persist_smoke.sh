#!/bin/sh
# End-to-end smoke of the versioned storage layer: start pi-serve with
# a data dir, grow the dataset through the rows endpoint and the
# interface through the log endpoint, snapshot, SIGKILL the process,
# restart it on the same data dir, and verify the survivor — same or
# later epoch, identical dataset row counts, a working query through
# the SDK — all without the first process's workload generator state.
# Exits non-zero on any failure.
set -eu

ADDR="${ADDR:-127.0.0.1:8095}"
TOKEN="${TOKEN:-persist-secret}"
BIN="$(mktemp -d)/pi-serve"
DATA_DIR="$(mktemp -d)"
LOG="$(mktemp)"

echo "== build"
go build -o "$BIN" ./cmd/pi-serve

cleanup() {
    [ -n "${PID:-}" ] && kill -9 "$PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

start_server() {
    "$BIN" -addr "$ADDR" -workloads olap -n 80 -rows 500 \
        -token "$TOKEN" -data-dir "$DATA_DIR" >>"$LOG" 2>&1 &
    PID=$!
    i=0
    until curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 120 ]; then
            echo "server never came up; log:" >&2
            cat "$LOG" >&2
            exit 1
        fi
        sleep 0.25
    done
}

# json_field BODY FIELD -> first numeric value of "field":N
json_field() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" | head -n 1
}

ONTIME_ROW='["AA","AA","CAP","NYP","CA","NY",1,1,1,10,12,8,500,1,0,0]'

echo "== first life: start pi-serve -data-dir on $ADDR"
start_server

echo "== grow the dataset (rows endpoint) and the interface (log endpoint)"
body=$(curl -s -X POST "http://$ADDR/v1/interfaces/olap/rows?flush=1" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d "{\"table\":\"ontime\",\"rows\":[$ONTIME_ROW,$ONTIME_ROW]}")
rowcount=$(json_field "$body" rowCount)
[ "$rowcount" = "502" ] || { echo "append ack rowCount=$rowcount, want 502: $body" >&2; exit 1; }

curl -s -X POST "http://$ADDR/v1/interfaces/olap/log?flush=1" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: text/plain' \
    --data-binary 'SELECT carrier, avg(delay) FROM ontime WHERE month = 7 GROUP BY carrier;' >/dev/null

epoch_before=$(json_field "$(curl -s "http://$ADDR/v1/interfaces/olap/epoch")" epoch)
[ -n "$epoch_before" ] && [ "$epoch_before" -ge 2 ] || {
    echo "epoch before kill is $epoch_before, expected >= 2" >&2; exit 1; }

echo "== snapshot to $DATA_DIR"
body=$(curl -s -X POST "http://$ADDR/v1/snapshot" -H "Authorization: Bearer $TOKEN")
case "$body" in
*'"id":"olap"'*) ;;
*) echo "snapshot result missing olap: $body" >&2; exit 1 ;;
esac
[ -f "$DATA_DIR/olap.snap" ] || { echo "no snapshot file in $DATA_DIR" >&2; exit 1; }

echo "== SIGKILL"
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
PID=""

echo "== second life: restart on the same data dir"
start_server
grep -q "restored olap" "$LOG" || { echo "server did not restore olap; log:" >&2; cat "$LOG" >&2; exit 1; }

echo "== verify: epoch is same-or-later"
epoch_after=$(json_field "$(curl -s "http://$ADDR/v1/interfaces/olap/epoch")" epoch)
[ -n "$epoch_after" ] && [ "$epoch_after" -ge "$epoch_before" ] || {
    echo "epoch went backwards: $epoch_before -> $epoch_after" >&2; exit 1; }

echo "== verify: dataset row counts survived (502 + 1 new = 503)"
body=$(curl -s -X POST "http://$ADDR/v1/interfaces/olap/rows?flush=1" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -d "{\"table\":\"ontime\",\"rows\":[$ONTIME_ROW]}")
rowcount=$(json_field "$body" rowCount)
[ "$rowcount" = "503" ] || {
    echo "post-restore rowCount=$rowcount, want 503 (the 2 pre-kill rows must survive): $body" >&2
    exit 1
}

echo "== verify: queries work (SDK round-trip incl. auth)"
"$BIN" -check -addr "$ADDR" -token "$TOKEN"

body=$(curl -s "http://$ADDR/v1/healthz")
case "$body" in
*'"persistence":true'*) ;;
*) echo "healthz does not report persistence: $body" >&2; exit 1 ;;
esac

echo "== graceful shutdown persists a final snapshot"
kill -TERM "$PID"
i=0
while kill -0 "$PID" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 60 ]; then
        echo "server did not shut down on SIGTERM" >&2
        exit 1
    fi
    sleep 0.25
done
PID=""
grep -q "final snapshot" "$LOG" || { echo "no final snapshot on shutdown; log:" >&2; cat "$LOG" >&2; exit 1; }

echo "persist-smoke: ok"
