#!/bin/sh
# End-to-end smoke of the observability layer: start two WAL-backed
# shards behind a router running -replicas 2, drive routed queries and
# acked row appends, then scrape GET /v1/metrics on all three
# processes and assert the query, WAL, replication and router-proxy
# series exist and moved. Finally pin the cross-hop trace contract: a
# client-supplied Pi-Trace-Id sent to the router must come back on the
# response, show up in the owning shard's request log, and land in
# both the router's and the shard's /v1/debug/slow rings.
# Exits non-zero on any failure.
set -eu

ROUTER_ADDR="${ROUTER_ADDR:-127.0.0.1:8110}"
A_ADDR="${A_ADDR:-127.0.0.1:8111}"
B_ADDR="${B_ADDR:-127.0.0.1:8112}"
TOKEN="${TOKEN:-obs-secret}"
TRACE_ID="smoketrace123"
BIN_DIR="$(mktemp -d)"
A_DIR="$(mktemp -d)"
B_DIR="$(mktemp -d)"
A_LOG="$(mktemp)"
B_LOG="$(mktemp)"
R_LOG="$(mktemp)"

ROW='["AA","AA","CAP","NYP","CA","NY",1,1,1,10,10,10,500,1,0,0]'

echo "== build"
go build -o "$BIN_DIR/pi-serve" ./cmd/pi-serve
go build -o "$BIN_DIR/pi-router" ./cmd/pi-router

cleanup() {
    [ -n "${A_PID:-}" ] && kill -9 "$A_PID" 2>/dev/null || true
    [ -n "${B_PID:-}" ] && kill -9 "$B_PID" 2>/dev/null || true
    [ -n "${R_PID:-}" ] && kill -9 "$R_PID" 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    echo "--- shard A log:" >&2
    cat "$A_LOG" >&2
    echo "--- shard B log:" >&2
    cat "$B_LOG" >&2
    echo "--- router log:" >&2
    cat "$R_LOG" >&2
    exit 1
}

wait_up() {
    i=0
    until curl -sf "http://$1/v1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 120 ] || { sleep 0.25; continue; }
        fail "$2 never came up on $1"
    done
}

# series_value SCRAPE GREP_PATTERN -> sum of every matching sample
# (handles preallocated zero-valued label combos; empty when no match).
series_value() {
    printf '%s\n' "$1" | grep -- "$2" | grep -v '^#' |
        awk '{s += $NF} END { if (NR) printf "%g\n", s }'
}

# assert_moved SCRAPE PATTERN WHO -> fails unless the series exists
# with a value strictly greater than zero.
assert_moved() {
    v="$(series_value "$1" "$2")"
    [ -n "$v" ] || fail "$3: no series matching $2 in scrape"
    case "$v" in
    0 | 0.0 | -*) fail "$3: series $2 did not move (value $v)" ;;
    esac
}

echo "== start shard A (owner, wal, json request log)"
"$BIN_DIR/pi-serve" -addr "$A_ADDR" -workloads olap -n 80 -rows 400 \
    -token "$TOKEN" -shard-addr "http://$A_ADDR" \
    -data-dir "$A_DIR" -wal -wal-sync 0 \
    -log-format json -slow-threshold 0 -slow-sample 1 >>"$A_LOG" 2>&1 &
A_PID=$!

echo "== start shard B (empty standby, wal)"
"$BIN_DIR/pi-serve" -addr "$B_ADDR" -workloads '' -n 80 -rows 400 \
    -token "$TOKEN" -shard-addr "http://$B_ADDR" \
    -data-dir "$B_DIR" -wal -wal-sync 0 \
    -slow-threshold 0 -slow-sample 1 >>"$B_LOG" 2>&1 &
B_PID=$!

wait_up "$A_ADDR" "shard A"
wait_up "$B_ADDR" "shard B"

echo "== start router (-replicas 2)"
"$BIN_DIR/pi-router" -addr "$ROUTER_ADDR" -shards "$A_ADDR,$B_ADDR" \
    -token "$TOKEN" -refresh-every 1s -replicas 2 \
    -slow-threshold 0 -slow-sample 1 >>"$R_LOG" 2>&1 &
R_PID=$!
wait_up "$ROUTER_ADDR" "router"

echo "== drive routed queries"
i=0
while [ "$i" -lt 40 ]; do
    i=$((i + 1))
    code=$(curl -s -o /dev/null -w '%{http_code}' \
        -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/query" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d '{"widgets":[],"limit":1}')
    [ "$code" = 200 ] || fail "routed query $i returned $code"
done

echo "== drive acked appends (WAL + replication stream)"
i=0
while [ "$i" -lt 10 ]; do
    i=$((i + 1))
    code=$(curl -s -o /dev/null -w '%{http_code}' \
        -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/rows?flush=1" \
        -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
        -d "{\"table\":\"ontime\",\"rows\":[$ROW]}")
    # acked appends come back 202 Accepted
    case "$code" in 200 | 202) ;; *) fail "routed append $i returned $code" ;; esac
done

echo "== wait for the follower to report stream position"
i=0
while :; do
    B_SCRAPE="$(curl -s "http://$B_ADDR/v1/metrics")"
    v="$(series_value "$B_SCRAPE" 'pi_replica_seq{iface="olap"}')"
    [ -n "$v" ] && [ "$v" != 0 ] && break
    i=$((i + 1))
    [ "$i" -gt 120 ] || { sleep 0.25; continue; }
    fail "follower on B never reported pi_replica_seq > 0"
done

echo "== scrape shard A"
A_SCRAPE="$(curl -s "http://$A_ADDR/v1/metrics")"
printf '%s\n' "$A_SCRAPE" | grep -q '^# TYPE pi_query_duration_seconds histogram' ||
    fail "shard A: query latency histogram family missing"
assert_moved "$A_SCRAPE" 'pi_queries_total{iface="olap"}' "shard A"
assert_moved "$A_SCRAPE" 'pi_http_requests_total{route="POST /v1/interfaces/{id}/query",class="2xx"}' "shard A"
assert_moved "$A_SCRAPE" 'pi_query_duration_seconds_count{iface="olap"' "shard A"
assert_moved "$A_SCRAPE" 'pi_wal_appends_total' "shard A"
assert_moved "$A_SCRAPE" 'pi_wal_syncs_total' "shard A"
assert_moved "$A_SCRAPE" 'pi_wal_fsync_seconds_count' "shard A"
assert_moved "$A_SCRAPE" 'pi_replica_seq{iface="olap"}' "shard A"
assert_moved "$A_SCRAPE" 'pi_replica_seeds_total{iface="olap"}' "shard A"

echo "== scrape shard B (follower)"
assert_moved "$B_SCRAPE" 'class="2xx"' "shard B"
assert_moved "$B_SCRAPE" 'pi_replica_seq{iface="olap"}' "shard B"

echo "== scrape router"
R_SCRAPE="$(curl -s "http://$ROUTER_ADDR/v1/metrics")"
assert_moved "$R_SCRAPE" "pi_router_proxy_total{shard=\"http://$A_ADDR\"}" "router"
assert_moved "$R_SCRAPE" "pi_router_shard_interfaces{shard=\"http://$A_ADDR\"}" "router"
assert_moved "$R_SCRAPE" 'pi_router_proxy_seconds_count' "router"
assert_moved "$R_SCRAPE" 'class="2xx"' "router"

echo "== trace id round trip router -> shard"
hdr=$(curl -s -D - -o /dev/null \
    -X POST "http://$ROUTER_ADDR/v1/interfaces/olap/query" \
    -H "Authorization: Bearer $TOKEN" -H 'Content-Type: application/json' \
    -H "Pi-Trace-Id: $TRACE_ID" \
    -d '{"widgets":[],"limit":1}')
printf '%s' "$hdr" | grep -qi "^Pi-Trace-Id: $TRACE_ID" ||
    fail "router response did not echo the client trace id"

grep -q "$TRACE_ID" "$A_LOG" ||
    fail "shard A request log never saw the propagated trace id"

curl -s "http://$A_ADDR/v1/debug/slow" | grep -q "\"traceId\":\"$TRACE_ID\"" ||
    fail "shard A slow-query ring has no entry for the trace id"
curl -s "http://$ROUTER_ADDR/v1/debug/slow" | grep -q "\"traceId\":\"$TRACE_ID\"" ||
    fail "router slow-query ring has no entry for the trace id"

echo "PASS: obs smoke (fleet scrape + cross-hop trace) OK"
