#!/bin/sh
# ingest_demo.sh — drive the live-ingestion subsystem end to end:
# build pi-serve, host the OLAP workload, query it, stream new log
# entries in over HTTP, and show the epoch bump + widened interface.
set -eu

ADDR="${PI_SERVE_ADDR:-127.0.0.1:18080}"
BASE="http://$ADDR"
BIN="$(mktemp -d)/pi-serve"
LOGF="$(mktemp)"

say() { printf '\n=== %s\n' "$*"; }

go build -o "$BIN" ./cmd/pi-serve

say "starting pi-serve on $ADDR (olap workload, batch=2)"
"$BIN" -addr "$ADDR" -workloads olap -n 80 -rows 500 -batch 2 >"$LOGF" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true; rm -f "$LOGF"' EXIT INT TERM

for _ in $(seq 1 50); do
	if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
	sleep 0.2
done

say "hosted interfaces"
curl -fsS "$BASE/interfaces"; echo

say "initial query (epoch 1, cache miss)"
curl -fsS -X POST "$BASE/interfaces/olap/query" \
	-H 'Content-Type: application/json' -d '{"widgets":[]}' | head -c 400; echo

say "ingesting 3 new log entries (text format, forced flush)"
curl -fsS -X POST "$BASE/interfaces/olap/log?flush=1" --data-binary @- <<'SQL'
SELECT DestState, COUNT(Delay) FROM ontime WHERE Day = 28 GROUP BY DestState
SELECT DestState, COUNT(Delay)
  FROM ontime -- multi-line statement
  WHERE Day = 29
  GROUP BY DestState;
SELECT DestState, COUNT(Delay) FROM ontime WHERE Day = 30 GROUP BY DestState
SQL
echo

say "epoch after ingestion (was 1)"
curl -fsS "$BASE/interfaces/olap/epoch"; echo

say "post-swap query (fresh caches, new epoch)"
curl -fsS -X POST "$BASE/interfaces/olap/query" \
	-H 'Content-Type: application/json' -d '{"widgets":[]}' | head -c 400; echo

say "healthz (per-interface epoch, hit rates, ingest counters)"
curl -fsS "$BASE/healthz"; echo

say "server log tail"
tail -n 5 "$LOGF"

say "ingest demo OK"
