// Quickstart: mine an interface from a six-query log, inspect the
// widgets, interact with one programmatically, and execute the
// resulting query against the bundled in-memory database.
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/pi"
)

func main() {
	// An analysis session: the analyst keeps changing one threshold and
	// one country name in the same query.
	queries := pi.LogFromSQL(
		"SELECT cty, SUM(sales) FROM t WHERE x > 1 AND cty = 'USA' GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 3 AND cty = 'USA' GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 3 AND cty = 'EUR' GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 7 AND cty = 'EUR' GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 7 AND cty = 'JPN' GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 2 AND cty = 'JPN' GROUP BY cty",
	)

	iface, err := pi.Generate(queries, pi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== mined widgets ==")
	for _, w := range iface.Widgets {
		fmt.Printf("  %-13s at %-8s with %d option(s)", w.Type.Name, w.Path, w.Domain.Len())
		if w.Domain.IsNumericRange() {
			lo, hi := w.Domain.Range()
			fmt.Printf(", extrapolated to [%g, %g]", lo, hi)
		}
		fmt.Println()
	}

	// Interact: set the slider to a value that never appeared in the
	// log (5 is inside the extrapolated range [1, 7]).
	var slider = iface.Widgets[0]
	for _, w := range iface.Widgets {
		if w.Type.Name == "slider" {
			slider = w
		}
	}
	q := core.Apply(iface.Initial, slider, ast.Leaf(ast.TypeNumExpr, "5"))
	fmt.Println("\n== after sliding the threshold to 5 ==")
	fmt.Println(" ", pi.RenderSQL(q))

	// exec() + render(): run it on the bundled sample data.
	db := engine.TinyDB()
	res, err := pi.Exec(db, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== result ==")
	fmt.Print(res.Render())

	// And compile the whole interface to a web page.
	page, err := pi.CompileHTML(iface, "Quickstart")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompiled HTML page: %d bytes (write it to a file and open it)\n", len(page))
}
