// SDSS explorer: mine an interface from an astronomer's session log
// (Listing 1 / Figure 6b of the paper), show that it generalizes to
// queries the astronomer has not yet written, and execute interactions
// against a synthetic SDSS database.
package main

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
	"repro/pi"
)

func main() {
	// A single client's session: 200 object lookups. Train on the
	// first 60, hold out the rest.
	session := workload.SDSSClient(workload.Lookup, 11, 200)
	train, holdout := session.Split(60)

	iface, err := pi.Generate(train, pi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interface mined from %d queries:\n", train.Len())
	for _, w := range iface.Widgets {
		fmt.Printf("  %-13s at %-6s (%d options)", w.Type.Name, w.Path, w.Domain.Len())
		if w.Domain.IsNumericRange() {
			lo, hi := w.Domain.Range()
			fmt.Printf(" range [0x%x, 0x%x]", int(lo), int(hi))
		}
		fmt.Println()
	}

	// Generalization: how much of the astronomer's future session can
	// this interface already express?
	holdQ, err := holdout.Parse()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhold-out recall over the next %d queries: %.0f%%\n",
		len(holdQ), iface.Recall(holdQ)*100)

	// Interact: point the slider at an object id that never appeared in
	// the training log and run the lookup.
	db := engine.SDSSDB(500)
	for _, w := range iface.Widgets {
		if w.Type.Name != "slider" {
			continue
		}
		id := ast.Leaf(ast.TypeNumExpr, "0x2f00")
		id.SetAttr("fmt", "hex")
		q := core.Apply(iface.Initial, w, id)
		if q == nil {
			log.Fatal("0x2f00 outside the slider's extrapolated range")
		}
		fmt.Printf("\nslider -> %s\n", pi.RenderSQL(q))
		res, err := pi.Exec(db, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exec() returned %d rows, %d columns\n", len(res.Rows), len(res.Cols))
	}
}
