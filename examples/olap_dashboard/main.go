// OLAP dashboard: mine an interface from an OLAP exploration log over
// the OnTime flight-delay dataset (the paper's Figure 1 scenario),
// then drive the interface programmatically: every widget setting
// yields an executable query whose result a dashboard would render.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workload"
	"repro/pi"
)

func main() {
	// 150 queries from an OLAP random-walk session (Listing 2 style).
	session := workload.OLAPLog(150, 7)
	iface, err := pi.Generate(session, pi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mined %d widgets from %d queries (cost %.0f)\n\n",
		len(iface.Widgets), session.Len(), iface.Cost())
	for _, w := range iface.Widgets {
		fmt.Printf("  %-13s at %s (%d options)\n", w.Type.Name, w.Path, w.Domain.Len())
	}

	// The dashboard's data source.
	db := engine.OnTimeDB(2000)

	// Simulate a user flipping the grouping drop-down through all of
	// its options: each interaction produces a query, exec() runs it,
	// render() would chart it.
	var grouping interface{ Values() []*ast.Node }
	var groupWidget = iface.Widgets[0]
	for _, w := range iface.Widgets {
		// The grouping widget lives in the GROUP BY slot.
		if len(w.Path) > 0 && w.Path[0] == ast.SlotGroupBy {
			groupWidget = w
			grouping = w.Domain
		}
	}
	if grouping == nil {
		log.Fatal("no grouping widget mined")
	}
	fmt.Println("\n== flipping the grouping widget ==")
	lastChart := ""
	for _, v := range grouping.Values() {
		q := core.Apply(iface.Initial, groupWidget, v)
		if q == nil {
			continue
		}
		// A real dashboard must also swap the projection's dimension;
		// use the projection widget at the first projection slot.
		for _, w := range iface.Widgets {
			if len(w.Path) > 1 && w.Path[0] == ast.SlotProject && w.Domain.Contains(v) {
				if q2 := core.Apply(q, w, v); q2 != nil {
					q = q2
				}
			}
		}
		res, err := pi.Exec(db, q)
		if err != nil {
			log.Fatalf("exec %s: %v", pi.RenderSQL(q), err)
		}
		fmt.Printf("\n%s\n%d groups, first rows:\n", pi.RenderSQL(q), len(res.Rows))
		for i, row := range res.Rows {
			if i == 3 {
				break
			}
			fmt.Printf("  %v\n", row)
		}
		lastChart = pi.Render(res) // render(): auto-chosen chart
	}
	if strings.HasPrefix(lastChart, "<svg") {
		if err := os.WriteFile("olap_chart.svg", []byte(lastChart), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("\nwrote olap_chart.svg (render() chose a chart for the last grouping)")
	}

	// Finally, emit the dashboard as HTML.
	page, err := pi.CompileHTML(iface, "OnTime OLAP dashboard")
	if err != nil {
		log.Fatal(err)
	}
	path := "olap_dashboard.html"
	if err := os.WriteFile(path, []byte(page), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d bytes)\n", path, len(page))
}
