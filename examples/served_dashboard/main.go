// Served dashboard: the OLAP example turned live. Mine an interface
// from an OLAP log, host it with the serving layer, then act as an HTTP
// client driving the dashboard: list interfaces, flip a widget to a
// value never seen in the log (numeric-range extrapolation), and repeat
// the request to show the AST-hash result cache taking over.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/api"
	"repro/internal/engine"
	"repro/internal/workload"
	"repro/pi"
)

func main() {
	// Mine and host, exactly what `pi-serve -workloads olap` does.
	session := workload.OLAPLog(150, 7)
	iface, err := pi.Generate(session, pi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	reg := pi.NewRegistry()
	if _, err := pi.Host(reg, "olap", "OnTime OLAP dashboard", iface, engine.OnTimeDB(2000)); err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { log.Fatal(http.Serve(ln, pi.ServeHandler(reg))) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// 1. Discover the hosted interface and its widgets.
	var detail api.InterfaceDetail
	getJSON(base+"/v1/interfaces/olap", &detail)
	fmt.Printf("\ninterface %q: %s\n", detail.ID, detail.InitialSQL)
	for _, w := range detail.Widgets {
		fmt.Printf("  %-13s at %-6s %q (%d options)\n", w.Kind, w.Path, w.Label, len(w.Options))
	}

	// 2. Find a numeric (slider) widget and query with a value strictly
	// between two mined options — a state no query in the log ever had.
	var numeric *api.WidgetInfo
	for i := range detail.Widgets {
		if detail.Widgets[i].Numeric {
			numeric = &detail.Widgets[i]
			break
		}
	}
	var bindings []api.WidgetBinding
	if numeric != nil {
		unseen := unseenInteger(numeric)
		fmt.Printf("\nslider at %s spans [%g, %g]; querying unseen value %g\n",
			numeric.Path, numeric.Min, numeric.Max, unseen)
		bindings = []api.WidgetBinding{{Path: numeric.Path, Number: &unseen}}
	} else {
		// No slider mined for this seed: run the initial query unchanged.
		fmt.Println("\nno numeric widget mined; running the initial query")
	}

	for i := 0; i < 2; i++ {
		resp := postQuery(base+"/v1/interfaces/olap/query", api.QueryRequest{
			Widgets: bindings,
		})
		fmt.Printf("\n#%d %s\n  %d rows, cache %s (hits=%d misses=%d)\n",
			i+1, resp.SQL, resp.RowCount, resp.Cache, resp.CacheStats.Hits, resp.CacheStats.Misses)
		for r := 0; r < len(resp.Rows) && r < 3; r++ {
			fmt.Printf("  %v\n", resp.Rows[r])
		}
	}
}

// unseenInteger picks an integer inside the slider's extrapolated range
// that none of the log's queries used — the closure beyond the log that
// range extrapolation (§4.3) buys.
func unseenInteger(w *api.WidgetInfo) float64 {
	mined := map[string]bool{}
	for _, o := range w.Options {
		mined[o] = true
	}
	for v := w.Min; v <= w.Max; v++ {
		if !mined[fmt.Sprintf("%g", v)] {
			return v
		}
	}
	return (w.Min + w.Max) / 2
}

func getJSON(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func postQuery(url string, req api.QueryRequest) *api.QueryResponse {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out api.QueryResponse
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	return &out
}
