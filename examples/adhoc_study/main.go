// Ad-hoc study: the negative result. When an analysis has no recurring
// structure (the paper's Tableau student logs, Listing 3), the mined
// interface is complex and barely generalizes — Precision Interfaces
// is built for analyses with systematic, repeated transformations.
package main

import (
	"fmt"
	"log"

	"repro/internal/workload"
	"repro/pi"
)

func main() {
	adhoc := workload.AdhocLog(200, 17)
	train, holdout := adhoc.Split(100)

	iface, err := pi.Generate(train, pi.AllPairsOptions())
	if err != nil {
		log.Fatal(err)
	}
	holdQ, err := holdout.Parse()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ad-hoc log: %d training queries -> %d widgets (cost %.0f)\n",
		train.Len(), len(iface.Widgets), iface.Cost())
	fmt.Printf("hold-out recall: %.0f%% (the paper reports ≈20%% on such logs)\n\n",
		iface.Recall(holdQ)*100)

	// Contrast with a structured session of the same size.
	structured := workload.SDSSClient(workload.Lookup, 3, 200)
	strain, sholdout := structured.Split(100)
	siface, err := pi.Generate(strain, pi.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	sholdQ, err := sholdout.Parse()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("structured log, same sizes: %d widgets, hold-out recall %.0f%%\n",
		len(siface.Widgets), siface.Recall(sholdQ)*100)
	fmt.Println("\ntakeaway: interface complexity tracks the variety of query")
	fmt.Println("changes; unpredictable exploration does not compress into widgets.")
}
