// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md §3 for the
// index) plus ablation benches for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks wrap the experiment runners with output
// discarded; their per-op time is the cost of regenerating that figure.
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/ingest"
	"repro/internal/interaction"
	"repro/internal/mapper"
	"repro/internal/qlog"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/widgets"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Diffs(b *testing.B)               { benchExperiment(b, "table1") }
func BenchmarkCostFit(b *testing.B)                   { benchExperiment(b, "ex44") }
func BenchmarkFig5aListing4(b *testing.B)             { benchExperiment(b, "fig5a") }
func BenchmarkFig5bSmallLog(b *testing.B)             { benchExperiment(b, "fig5b") }
func BenchmarkFig5cLargerLog(b *testing.B)            { benchExperiment(b, "fig5c") }
func BenchmarkFig5dTopClause(b *testing.B)            { benchExperiment(b, "fig5d") }
func BenchmarkFig5eSubquery(b *testing.B)             { benchExperiment(b, "fig5e") }
func BenchmarkFig6aSDSSRecall(b *testing.B)           { benchExperiment(b, "fig6a") }
func BenchmarkFig6bClientC1(b *testing.B)             { benchExperiment(b, "fig6b") }
func BenchmarkFig6cOLAPAdhoc(b *testing.B)            { benchExperiment(b, "fig6c") }
func BenchmarkFig6dOLAPWidgets(b *testing.B)          { benchExperiment(b, "fig6d") }
func BenchmarkFig7aMultiClientTotal(b *testing.B)     { benchExperiment(b, "fig7a") }
func BenchmarkFig7bMultiClientPerClient(b *testing.B) { benchExperiment(b, "fig7b") }
func BenchmarkFig7cCrossClient(b *testing.B)          { benchExperiment(b, "fig7c") }
func BenchmarkFig8cUserStudy(b *testing.B)            { benchExperiment(b, "fig8c") }
func BenchmarkFig9RecallMatrix(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkFig10RecallHistogram(b *testing.B)      { benchExperiment(b, "fig10") }
func BenchmarkFig11Optimizations(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12Scalability(b *testing.B)          { benchExperiment(b, "fig12") }
func BenchmarkFig13OrderingEffects(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig15Precision(b *testing.B)            { benchExperiment(b, "fig15") }
func BenchmarkExtClusteredRecall(b *testing.B)        { benchExperiment(b, "ext-cluster") }
func BenchmarkExtSpeculate(b *testing.B)              { benchExperiment(b, "ext-speculate") }
func BenchmarkExtAnomalies(b *testing.B)              { benchExperiment(b, "ext-anomalies") }

// --- Pipeline stage benchmarks (the quantities behind Figures 11/12).

// BenchmarkPipeline10k is the paper's headline performance claim in
// benchmark form: end-to-end interface generation for a 10,000-query
// log with window=2 and LCA pruning must stay well under 10 seconds.
func BenchmarkPipeline10k(b *testing.B) {
	l := workload.SDSSFullLog(10000, 77)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Generate(l, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func benchMine(b *testing.B, n, window int, lca bool) {
	l := workload.SDSSFullLog(n, 77)
	queries, err := l.Parse()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interaction.Mine(queries, interaction.Options{WindowSize: window, LCAPrune: lca})
	}
}

func BenchmarkMineWindow2LCA(b *testing.B)   { benchMine(b, 2000, 2, true) }
func BenchmarkMineWindow2NoLCA(b *testing.B) { benchMine(b, 2000, 2, false) }
func BenchmarkMineWindow10LCA(b *testing.B)  { benchMine(b, 2000, 10, true) }
func BenchmarkMineAllPairs200(b *testing.B)  { benchMine(b, 200, 0, true) }

// --- Ablation benchmarks (DESIGN.md §4).

// BenchmarkAblationNoMerge compares the initial interface (Algorithm 1
// only) against the merged one; the reported metric is widget count and
// cost via sub-benchmarks.
func BenchmarkAblationNoMerge(b *testing.B) {
	l := workload.SDSSClient(workload.Lookup, 5, 100)
	queries, err := l.Parse()
	if err != nil {
		b.Fatal(err)
	}
	g, _ := interaction.Mine(queries, interaction.Options{WindowSize: 0, LCAPrune: false})
	lib := widgets.DefaultLibrary()
	b.Run("initialize-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws := mapper.MapWithoutMerge(g, lib)
			b.ReportMetric(float64(len(ws)), "widgets")
			b.ReportMetric(mapper.TotalCost(ws), "cost")
		}
	})
	b.Run("with-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ws := mapper.Map(g, lib)
			b.ReportMetric(float64(len(ws)), "widgets")
			b.ReportMetric(mapper.TotalCost(ws), "cost")
		}
	})
}

// BenchmarkAblationWindow compares mining configurations on the same
// log: the sliding window is the dominant lever on graph size.
func BenchmarkAblationWindow(b *testing.B) {
	l := workload.SDSSClient(workload.Lookup, 5, 200)
	queries, err := l.Parse()
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		opts interaction.Options
	}{
		{"window2+lca", interaction.Options{WindowSize: 2, LCAPrune: true}},
		{"window25+lca", interaction.Options{WindowSize: 25, LCAPrune: true}},
		{"allpairs+lca", interaction.Options{WindowSize: 0, LCAPrune: true}},
		{"allpairs", interaction.Options{WindowSize: 0, LCAPrune: false}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, st := interaction.Mine(queries, cfg.opts)
				b.ReportMetric(float64(st.DiffRecords), "diffs")
			}
		})
	}
}

// BenchmarkAblationCostConstants compares interface generation with the
// paper's published cost constants against locally re-fitted ones; the
// widget choices (and thus cost) should be stable.
func BenchmarkAblationCostConstants(b *testing.B) {
	l := workload.SDSSClient(workload.Lookup, 5, 100)
	fitted := refittedLibrary(b)
	for _, cfg := range []struct {
		name string
		lib  widgets.Library
	}{
		{"paper-constants", widgets.DefaultLibrary()},
		{"refit-from-traces", fitted},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				iface, err := core.Generate(l, core.Options{
					Miner:   interaction.DefaultOptions(),
					Library: cfg.lib,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(iface.Widgets)), "widgets")
			}
		})
	}
}

// refittedLibrary rebuilds the widget library with cost functions fit
// from synthetic timing traces instead of the published constants.
func refittedLibrary(b *testing.B) widgets.Library {
	b.Helper()
	sizes := []int{2, 3, 5, 8, 13, 21, 34}
	refit := func(t *widgets.Type) *widgets.Type {
		traces := widgets.SynthesizeTraces(t.Cost.A0, t.Cost.A1, t.Cost.A2, sizes, 5)
		c, err := widgets.FitCost(traces)
		if err != nil {
			b.Fatal(err)
		}
		cp := *t
		cp.Cost = c
		return &cp
	}
	var out widgets.Library
	for _, t := range widgets.DefaultLibrary() {
		out = append(out, refit(t))
	}
	return out
}

// BenchmarkCanExpress measures the closure-membership check that recall
// experiments run millions of times.
func BenchmarkCanExpress(b *testing.B) {
	l := workload.SDSSClient(workload.Lookup, 5, 100)
	iface, err := core.Generate(l, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	holdQ, err := workload.SDSSClient(workload.Lookup, 99, 100).Parse()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iface.CanExpress(holdQ[i%len(holdQ)])
	}
}

// --- Serving-layer benchmarks (internal/server).

// servingHandler mines the OLAP interface once and returns the HTTP
// handler plus a slider widget to vary, shared by the serve benchmarks.
func servingHandler(b *testing.B, cacheSize int) (http.Handler, string, float64, float64) {
	b.Helper()
	iface, err := core.Generate(workload.OLAPLog(150, 7), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	reg := api.NewRegistryWithCache(cacheSize)
	if _, err := reg.Add("olap", "bench", iface, engine.OnTimeDB(2000)); err != nil {
		b.Fatal(err)
	}
	for _, w := range iface.Widgets {
		if w.Domain.IsNumericRange() {
			lo, hi := w.Domain.Range()
			return server.New(api.NewService(reg)).Handler(), w.Path.String(), lo, hi
		}
	}
	b.Fatal("no numeric widget mined")
	return nil, "", 0, 0
}

func benchServeQuery(b *testing.B, cacheSize, distinctStates int) {
	h, path, lo, hi := servingHandler(b, cacheSize)
	span := int(hi - lo + 1)
	if distinctStates < span {
		span = distinctStates
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			v := lo + float64(i%span)
			i++
			body := fmt.Sprintf(`{"widgets":[{"path":%q,"number":%g}]}`, path, v)
			req := httptest.NewRequest("POST", "/v1/interfaces/olap/query", strings.NewReader(body))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	})
}

// BenchmarkServeQueryCached is the hot serving path: concurrent clients
// cycling through a handful of widget states, so nearly every request
// is answered from the AST-hash LRU.
func BenchmarkServeQueryCached(b *testing.B) { benchServeQuery(b, api.DefaultCacheSize, 4) }

// BenchmarkServeQueryUncached disables the result cache: every request
// binds and executes against the engine — the serving layer's floor.
func BenchmarkServeQueryUncached(b *testing.B) { benchServeQuery(b, 0, 4) }

// BenchmarkServeQueryMixed spreads clients over the slider's whole
// extrapolated range, the realistic many-users mix of hits and misses.
func BenchmarkServeQueryMixed(b *testing.B) { benchServeQuery(b, api.DefaultCacheSize, 1<<30) }

// --- Versioned-storage benchmarks (internal/store).

// appendBatch builds one 64-row ontime batch.
func appendBatch() [][]engine.Value {
	const batch = 64
	rows := make([][]engine.Value, batch)
	for i := 0; i < batch; i++ {
		rows[i] = []engine.Value{
			engine.Str("AA"), engine.Str("AA"), engine.Str("CAP"), engine.Str("NYP"),
			engine.Str("CA"), engine.Str("NY"), engine.Num(1), engine.Num(1), engine.Num(1),
			engine.Num(10), engine.Num(12), engine.Num(8), engine.Num(500), engine.Num(1),
			engine.Num(0), engine.Num(0),
		}
	}
	return rows
}

// BenchmarkAppendRows is the storage tentpole's write path: appending
// a 64-row batch through the copy-on-write store publishes a new
// catalog version without copying row data — O(batch + #tables), not
// O(total rows).
func BenchmarkAppendRows(b *testing.B) {
	st := store.FromDB(engine.OnTimeDB(2000))
	rows := appendBatch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.AppendRows("ontime", rows); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRebuildDB is what growing the dataset cost before the
// store existed: the engine's DB was immutable after build, so new
// data meant regenerating the whole dataset. The acceptance bar for
// the storage refactor is AppendRows ≥5x cheaper than this (measured:
// orders of magnitude).
func BenchmarkRebuildDB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db := engine.OnTimeDB(2000)
		if db.NumTables() != 1 {
			b.Fatal("bad rebuild")
		}
	}
}

// BenchmarkSnapshotRestore measures durable persistence: saving one
// live-hosted interface's (log, dataset, epoch) with the checksummed
// atomic writer, and restoring it into a fresh registry (load + verify
// + re-mine the saved log + host).
func BenchmarkSnapshotRestore(b *testing.B) {
	dir := b.TempDir()
	reg := api.NewRegistryWithCache(api.DefaultCacheSize)
	ing := ingest.New(reg, ingest.Options{})
	if _, err := ing.Host("olap", "bench", workload.OLAPLog(150, 7), engine.OnTimeDB(2000), core.DefaultLiveOptions()); err != nil {
		b.Fatal(err)
	}
	p := ingest.NewPersister(dir, ing, ingest.PersistOptions{})
	if _, err := p.SaveAll(); err != nil {
		b.Fatal(err)
	}

	b.Run("save", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := p.SaveAll(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg2 := api.NewRegistryWithCache(api.DefaultCacheSize)
			p2 := ingest.NewPersister(dir, ingest.New(reg2, ingest.Options{}), ingest.PersistOptions{})
			if _, err := p2.Restore(); err != nil {
				b.Fatal(err)
			}
			if reg2.Len() != 1 {
				b.Fatal("restore hosted nothing")
			}
		}
	})
}

// BenchmarkColdStartVsRestore compares the two ways a pi-serve boot
// can reach "serving": cold start regenerates the workload log and
// dataset and mines from scratch; restore loads the snapshot file —
// dataset rows come off disk instead of the generator, and only the
// saved log is mined. Restore is also the only correct option once
// ingestion has evolved the interface past what the generator would
// produce.
func BenchmarkColdStartVsRestore(b *testing.B) {
	dir := b.TempDir()
	{
		reg := api.NewRegistryWithCache(api.DefaultCacheSize)
		ing := ingest.New(reg, ingest.Options{})
		if _, err := ing.Host("olap", "bench", workload.OLAPLog(150, 7), engine.OnTimeDB(2000), core.DefaultLiveOptions()); err != nil {
			b.Fatal(err)
		}
		if _, err := ingest.NewPersister(dir, ing, ingest.PersistOptions{}).SaveAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold-start", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg := api.NewRegistryWithCache(api.DefaultCacheSize)
			ing := ingest.New(reg, ingest.Options{})
			if _, err := ing.Host("olap", "bench", workload.OLAPLog(150, 7), engine.OnTimeDB(2000), core.DefaultLiveOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			reg := api.NewRegistryWithCache(api.DefaultCacheSize)
			p := ingest.NewPersister(dir, ingest.New(reg, ingest.Options{}), ingest.PersistOptions{})
			if _, err := p.Restore(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestAppendAtLeast5xCheaperThanRebuild pins the storage refactor's
// acceptance bar as an executable check rather than a claim in a
// README: appending a batch through the copy-on-write store must beat
// rebuilding the dataset by at least 5x (in practice the gap is
// orders of magnitude; 5x leaves room for noisy CI machines).
func TestAppendAtLeast5xCheaperThanRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	rows := appendBatch()
	var st *store.Store
	appendRes := testing.Benchmark(func(b *testing.B) {
		st = store.FromDB(engine.OnTimeDB(2000))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.AppendRows("ontime", rows); err != nil {
				b.Fatal(err)
			}
		}
	})
	rebuildRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if db := engine.OnTimeDB(2000); db.NumTables() != 1 {
				b.Fatal("bad rebuild")
			}
		}
	})
	appendNs := float64(appendRes.NsPerOp())
	rebuildNs := float64(rebuildRes.NsPerOp())
	t.Logf("append %0.fns/op vs rebuild %0.fns/op (%.1fx)", appendNs, rebuildNs, rebuildNs/appendNs)
	if rebuildNs < 5*appendNs {
		t.Fatalf("append (%.0fns/op) is not ≥5x cheaper than rebuild (%.0fns/op)", appendNs, rebuildNs)
	}
}

// BenchmarkParse measures the SQL parsing substrate on a mixed log.
func BenchmarkParse(b *testing.B) {
	sqls := qlog.Interleave(
		workload.SDSSClient(workload.Radial, 1, 100),
		workload.OLAPLog(100, 2),
	).SQLs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := qlog.FromSQL(sqls...)
		if _, err := l.Parse(); err != nil {
			b.Fatal(err)
		}
	}
}
