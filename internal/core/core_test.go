package core

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/interaction"
	"repro/internal/qlog"
	"repro/internal/sqlparser"
)

// allPairs mines every pair with full ancestors — the baseline
// configuration, used by the Figure 5 micro-logs.
func allPairs() Options {
	o := DefaultOptions()
	o.Miner = interaction.Options{WindowSize: 0, LCAPrune: false}
	return o
}

func widgetTypes(i *Interface) []string {
	var out []string
	for _, w := range i.Widgets {
		out = append(out, w.Type.Name)
	}
	sort.Strings(out)
	return out
}

func generate(t *testing.T, opts Options, sqls ...string) *Interface {
	t.Helper()
	iface, err := Generate(qlog.FromSQL(sqls...), opts)
	if err != nil {
		t.Fatal(err)
	}
	return iface
}

// --- Figure 5a: Listing 4, simple parameter changes in a complex query.
func listing4Log() []string {
	tmpl := `SELECT spec_ts, sum(price) FROM (
		SELECT action, sum(customer) FROM t
		WHERE spec_ts > now AND spec_ts < now + %OFF%
	) WHERE cust = '%NAME%' AND country = 'China' GROUP BY spec_ts`
	var out []string
	names := []string{"Alice", "Bob", "Carol"}
	offs := []string{"3", "9", "5", "7"}
	for i := 0; i < 8; i++ {
		q := strings.ReplaceAll(tmpl, "%NAME%", names[i%3])
		q = strings.ReplaceAll(q, "%OFF%", offs[i%4])
		out = append(out, q)
	}
	return out
}

func TestFig5aParameterChanges(t *testing.T) {
	iface := generate(t, allPairs(), listing4Log()...)
	types := widgetTypes(iface)
	if len(types) != 2 {
		t.Fatalf("widgets = %v, want exactly 2 (drop-down + slider)", describe(iface))
	}
	if types[0] != "drop-down" || types[1] != "slider" {
		t.Fatalf("widgets = %v, want [drop-down slider]", types)
	}
	// Interface complexity tracks change complexity, not query
	// complexity: the query has a subquery and multiple predicates, but
	// only two widgets are produced, and the interface expresses the
	// whole log.
	queries, _ := qlog.FromSQL(listing4Log()...).Parse()
	if expr := iface.Expressiveness(queries); expr != 1 {
		t.Fatalf("expressiveness = %v, want 1", expr)
	}
	// Cross-product generalization: cust='Bob' with offset 9 never
	// co-occurs in the log but is expressible (§7.1.1).
	unseen := sqlparser.MustParse(strings.ReplaceAll(strings.ReplaceAll(
		`SELECT spec_ts, sum(price) FROM (
			SELECT action, sum(customer) FROM t
			WHERE spec_ts > now AND spec_ts < now + %OFF%
		) WHERE cust = '%NAME%' AND country = 'China' GROUP BY spec_ts`,
		"%NAME%", "Bob"), "%OFF%", "9"))
	if !iface.CanExpress(unseen) {
		t.Fatal("cross-product combination should be expressible")
	}
	// But changing the country is NOT expressible: that part never
	// changed in the log.
	other := sqlparser.MustParse(strings.ReplaceAll(strings.ReplaceAll(
		`SELECT spec_ts, sum(price) FROM (
			SELECT action, sum(customer) FROM t
			WHERE spec_ts > now AND spec_ts < now + %OFF%
		) WHERE cust = '%NAME%' AND country = 'Japan' GROUP BY spec_ts`,
		"%NAME%", "Alice"), "%OFF%", "3"))
	if iface.CanExpress(other) {
		t.Fatal("unchanged query parts must not be expressible")
	}
}

// --- Figures 5b/5c: Listing 5, adaptivity to log size.
func TestFig5bSmallLogSingleRadio(t *testing.T) {
	iface := generate(t, allPairs(),
		"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)")
	types := widgetTypes(iface)
	if len(types) != 1 || types[0] != "radio-button" {
		t.Fatalf("widgets = %v, want single radio-button over whole queries", describe(iface))
	}
	w := iface.Widgets[0]
	if len(w.Path) != 0 {
		t.Fatalf("radio path = %v, want root", w.Path)
	}
	if w.Domain.Len() != 3 {
		t.Fatalf("radio domain = %d, want the 3 full ASTs", w.Domain.Len())
	}
}

func TestFig5cLargerLogSplitsWidgets(t *testing.T) {
	iface := generate(t, allPairs(),
		"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)",
		"SELECT avg(b)", "SELECT count(a)", "SELECT avg(c)",
		"SELECT avg(d)", "SELECT avg(e)", "SELECT count(d)",
		"SELECT count(e)")
	if len(iface.Widgets) != 2 {
		t.Fatalf("widgets = %v, want 2 (function name + argument)", describe(iface))
	}
	// One widget for the 2-option function name, one for the 5-option
	// argument; their domains multiply to 10 expressible queries.
	sizes := []int{iface.Widgets[0].Domain.Len(), iface.Widgets[1].Domain.Len()}
	sort.Ints(sizes)
	if sizes[0] != 2 || sizes[1] != 5 {
		t.Fatalf("domain sizes = %v, want [2 5]", sizes)
	}
	// Unseen combination avg(b) already in log; count(b) etc. — check a
	// couple of cross products.
	for _, q := range []string{"SELECT count(b)", "SELECT avg(e)", "SELECT count(c)"} {
		if !iface.CanExpress(sqlparser.MustParse(q)) {
			t.Errorf("cross product %q should be expressible", q)
		}
	}
}

// --- Figure 5d: Listing 6, TOP toggle + slider.
func TestFig5dTopToggleAndSlider(t *testing.T) {
	// Figure 5d arises under the paper's default optimized mining
	// (window=2 + LCA pruning): consecutive pairs each change one thing,
	// so the TOP-presence toggle and the TOP-value slider never merge.
	iface := generate(t, DefaultOptions(),
		"SELECT g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID",
		"SELECT TOP 1 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID",
		"SELECT TOP 10 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID")
	types := widgetTypes(iface)
	want := []string{"slider", "toggle-button"}
	if len(types) != 2 || types[0] != want[0] || types[1] != want[1] {
		t.Fatalf("widgets = %v, want toggle + slider (Fig 5d)", describe(iface))
	}
	// TOP 5 was never in the log but the slider extrapolates [1, 10].
	q := sqlparser.MustParse("SELECT TOP 5 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848,0.352,2.0616) as d WHERE d.objID = g.objID")
	if !iface.CanExpress(q) {
		t.Fatal("TOP 5 should be expressible via slider extrapolation")
	}
}

// --- Figure 5e: Listing 7, subquery toggle + inner widgets.
func TestFig5eSubqueryToggle(t *testing.T) {
	iface := generate(t, DefaultOptions(),
		"SELECT * FROM T",
		"SELECT * FROM (SELECT a FROM T WHERE b > 10)",
		"SELECT * FROM (SELECT a FROM T WHERE b > 20)",
		"SELECT * FROM (SELECT b FROM T WHERE b > 20)")
	types := widgetTypes(iface)
	// A toggle between table T and the subquery, a widget for the inner
	// projection, and a slider for the inner predicate.
	if len(types) != 3 {
		t.Fatalf("widgets = %v, want 3 (toggle + projection + slider)", describe(iface))
	}
	if !contains(types, "toggle-button") || !contains(types, "slider") {
		t.Fatalf("widgets = %v, want toggle-button and slider present", describe(iface))
	}
	// Cross product: subquery projecting b with threshold 10 was never
	// logged but is expressible.
	q := sqlparser.MustParse("SELECT * FROM (SELECT b FROM T WHERE b > 10)")
	if !iface.CanExpress(q) {
		t.Fatal("subquery cross product should be expressible")
	}
}

// --- Closure and apply mechanics.
func TestApplyWidget(t *testing.T) {
	iface := generate(t, allPairs(),
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT a FROM t WHERE x = 9")
	if len(iface.Widgets) != 1 {
		t.Fatalf("widgets = %v", describe(iface))
	}
	w := iface.Widgets[0]
	got := Apply(iface.Initial, w, ast.Leaf(ast.TypeNumExpr, "5"))
	if got == nil {
		t.Fatal("apply failed")
	}
	want := sqlparser.MustParse("SELECT a FROM t WHERE x = 5")
	if !ast.Equal(got, want) {
		t.Fatalf("applied query = %s, want %s", ast.SQL(got), ast.SQL(want))
	}
	if out := Apply(iface.Initial, w, ast.Leaf(ast.TypeNumExpr, "99")); out != nil {
		t.Fatal("value outside the domain must be rejected")
	}
}

func TestEnumerateClosure(t *testing.T) {
	iface := generate(t, allPairs(),
		"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)",
		"SELECT avg(b)", "SELECT count(a)", "SELECT avg(c)",
		"SELECT avg(d)", "SELECT avg(e)", "SELECT count(d)",
		"SELECT count(e)")
	// Two widgets with domains 2 × 5: the closure holds exactly the 10
	// cross-product queries.
	if got := iface.ClosureSize(0); got != 10 {
		t.Fatalf("closure size = %d, want 10", got)
	}
	// And every closure member must self-report as expressible.
	iface.EnumerateClosure(0, func(q *ast.Node) bool {
		if !iface.CanExpress(q) {
			t.Errorf("closure member not expressible: %s", ast.SQL(q))
		}
		return true
	})
}

func TestClosureCap(t *testing.T) {
	iface := generate(t, allPairs(),
		"SELECT avg(a)", "SELECT count(b)", "SELECT count(c)",
		"SELECT avg(b)", "SELECT count(a)", "SELECT avg(c)",
		"SELECT avg(d)", "SELECT avg(e)", "SELECT count(d)",
		"SELECT count(e)")
	n := 0
	iface.EnumerateClosure(3, func(q *ast.Node) bool { n++; return true })
	if n != 3 {
		t.Fatalf("cap ignored: yielded %d", n)
	}
}

// TestTrainingLogAlwaysExpressible pins g=1 (§4.5): with all-pairs
// mining, the generated interface expresses every training query.
func TestTrainingLogAlwaysExpressible(t *testing.T) {
	logs := [][]string{
		listing4Log(),
		{"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
			"SELECT * FROM XCRedshift WHERE specObjId = 0x199",
			"SELECT * FROM SpecLineIndex WHERE specObjId = 0x3"},
		{"SELECT COUNT(Delay), DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
			"SELECT DestState FROM ontime WHERE Month = 9 AND Day = 3 GROUP BY DestState",
			"SELECT DestState FROM ontime WHERE Month = 8 AND Day = 3 GROUP BY DestState"},
	}
	for _, sqls := range logs {
		iface := generate(t, allPairs(), sqls...)
		queries, _ := qlog.FromSQL(sqls...).Parse()
		if expr := iface.Expressiveness(queries); expr != 1 {
			t.Errorf("expressiveness = %v for log %q...", expr, sqls[0])
		}
	}
}

// TestWindowAndLCAPreserveInterface is the Appendix B invariant: the
// optimizations change runtime, not the output interface, on
// systematically changing logs.
func TestWindowAndLCAPreserveInterface(t *testing.T) {
	sqls := []string{
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
		"SELECT * FROM XCRedshift WHERE specObjId = 0x199",
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x3",
		"SELECT * FROM XCRedshift WHERE specObjId = 0x2a",
		"SELECT * FROM SpecLineIndex WHERE specObjId = 0x77",
	}
	baseline := generate(t, allPairs(), sqls...)
	optimized := generate(t, DefaultOptions(), sqls...)
	queries, _ := qlog.FromSQL(sqls...).Parse()
	for _, q := range queries {
		if baseline.CanExpress(q) != optimized.CanExpress(q) {
			t.Fatalf("optimizations changed expressiveness for %s", ast.SQL(q))
		}
	}
	bt, ot := widgetTypes(baseline), widgetTypes(optimized)
	if strings.Join(bt, ",") != strings.Join(ot, ",") {
		t.Fatalf("optimizations changed widget set: %v vs %v", bt, ot)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(&qlog.Log{}, DefaultOptions()); err == nil {
		t.Fatal("empty log must error")
	}
	if _, err := Generate(qlog.FromSQL("DROP TABLE x"), DefaultOptions()); err == nil {
		t.Fatal("unparsable statement must error")
	}
}

func TestSingleQueryLog(t *testing.T) {
	iface := generate(t, DefaultOptions(), "SELECT a FROM t")
	if len(iface.Widgets) != 0 {
		t.Fatalf("single-query log should produce no widgets, got %v", describe(iface))
	}
	if !iface.CanExpress(sqlparser.MustParse("SELECT a FROM t")) {
		t.Fatal("q0 itself must be expressible")
	}
	if iface.CanExpress(sqlparser.MustParse("SELECT b FROM t")) {
		t.Fatal("nothing else should be expressible")
	}
}

func describe(i *Interface) []string {
	var out []string
	for _, w := range i.Widgets {
		out = append(out, w.Type.Name+"@"+w.Path.String())
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
