package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/qlog"
	"repro/internal/widgets"
	"repro/internal/workload"
)

// grownOLAP returns an OLAP log of n entries plus k extra entries drawn
// from the same generator (the continuation a live system would see).
func grownOLAP(n, k int) (initial *qlog.Log, extra []qlog.Entry) {
	full := workload.OLAPLog(n+k, 7)
	initial = full.Slice(0, n)
	for _, e := range full.Entries[n:] {
		extra = append(extra, e)
	}
	return initial, extra
}

func ifaceFingerprint(t *testing.T, i *Interface) string {
	t.Helper()
	out := fmt.Sprintf("initial=%s cost=%.4f widgets=%d\n", ast.SQL(i.Initial), i.Cost(), len(i.Widgets))
	for _, w := range i.Widgets {
		out += fmt.Sprintf("  %s %s absent=%v numeric=%v:", w.Path, w.Type.Name, w.Domain.HasAbsent(), w.Domain.IsNumericRange())
		for _, v := range w.Domain.Values() {
			if v == nil {
				out += " <absent>"
				continue
			}
			out += " " + ast.SQL(v)
		}
		out += "\n"
	}
	return out
}

// TestAppendMatchesBatchRemine is the incremental-correctness anchor:
// a miner grown entry-by-entry must produce exactly the interface a
// batch Generate over the grown log produces.
func TestAppendMatchesBatchRemine(t *testing.T) {
	initial, extra := grownOLAP(120, 30)

	m, err := NewMiner(initial, DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Append in uneven chunks to exercise chunk-boundary handling.
	for _, chunk := range [][]qlog.Entry{extra[:1], extra[1:12], extra[12:]} {
		if _, st, err := m.Append(chunk); err != nil {
			t.Fatal(err)
		} else if st.Added != len(chunk) || st.ParseErrors != 0 {
			t.Fatalf("append stats = %+v, want %d added", st, len(chunk))
		}
	}

	grown := workload.OLAPLog(150, 7)
	want, err := Generate(grown, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := m.Interface()
	if g, w := ifaceFingerprint(t, got), ifaceFingerprint(t, want); g != w {
		t.Fatalf("incremental interface diverged from batch re-mine:\nincremental:\n%s\nbatch:\n%s", g, w)
	}
	if m.Len() != 150 {
		t.Fatalf("miner length = %d, want 150", m.Len())
	}
}

// TestAppendWidensDomains: appending entries with fresh literals at a
// mined path must widen that widget's domain in place while keeping the
// interface's identity (initial query) stable.
func TestAppendWidensDomains(t *testing.T) {
	log := qlog.FromSQL(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT a FROM t WHERE x = 3",
	)
	m, err := NewMiner(log, DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	before := m.Interface()
	if len(before.Widgets) == 0 {
		t.Fatal("no widgets mined from seed log")
	}
	_, hi0 := before.Widgets[0].Domain.Range()

	iface, st, err := m.Append([]qlog.Entry{
		{SQL: "SELECT a FROM t WHERE x = 9"},
		{SQL: "SELECT a FROM t WHERE x = 42"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 2 || st.FullRemine {
		t.Fatalf("stats = %+v, want 2 added on the incremental path", st)
	}
	if !ast.Equal(iface.Initial, before.Initial) {
		t.Fatalf("initial query changed across append: %s -> %s",
			ast.SQL(before.Initial), ast.SQL(iface.Initial))
	}
	if len(iface.Widgets) == 0 {
		t.Fatal("widgets vanished")
	}
	_, hi1 := iface.Widgets[0].Domain.Range()
	if hi1 <= hi0 || hi1 != 42 {
		t.Fatalf("domain did not widen: max %g -> %g, want 42", hi0, hi1)
	}
	// The previously returned interface must be unaffected (readers may
	// still hold it mid-request).
	if _, hiOld := before.Widgets[0].Domain.Range(); hiOld != hi0 {
		t.Fatalf("append mutated the previously served interface (max now %g)", hiOld)
	}
}

// TestAppendCoverageFallback: an appended query whose transformations
// the widget library cannot express (a slider-only library facing a
// tree-shaped change) trips the structural-coverage check and forces a
// full re-mine; with the check disabled the append stays incremental.
func TestAppendCoverageFallback(t *testing.T) {
	log := qlog.FromSQL(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
	)
	opts := DefaultLiveOptions()
	opts.CoverageThreshold = 1.0
	opts.Generate.Library = widgets.Library{widgets.Slider}
	m, err := NewMiner(log, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := m.Append([]qlog.Entry{
		{SQL: "SELECT COUNT(z), w FROM other GROUP BY w ORDER BY w DESC"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !st.FullRemine {
		t.Fatalf("coverage check did not trigger a full re-mine: %+v", st)
	}

	// With the check disabled the same append stays incremental.
	opts.CoverageThreshold = -1
	m2, err := NewMiner(qlog.FromSQL(log.SQLs()...), opts)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := m2.Append([]qlog.Entry{
		{SQL: "SELECT COUNT(z), w FROM other GROUP BY w ORDER BY w DESC"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st2.FullRemine {
		t.Fatalf("disabled coverage check still re-mined: %+v", st2)
	}
}

// TestAppendDropsUnparseableEntries: bad entries are counted and
// skipped, good ones still mined.
func TestAppendDropsUnparseableEntries(t *testing.T) {
	log := qlog.FromSQL(
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
	)
	m, err := NewMiner(log, DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := m.Append([]qlog.Entry{
		{SQL: "THIS IS NOT SQL ((("},
		{SQL: "SELECT a FROM t WHERE x = 7"},
		{SQL: "ALSO ;;; NOT SQL"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 1 || st.ParseErrors != 2 || st.LastParseError == "" {
		t.Fatalf("stats = %+v, want 1 added / 2 parse errors", st)
	}
	if m.Len() != 3 {
		t.Fatalf("miner length = %d, want 3", m.Len())
	}
}

// TestIncrementalSpeedup is the acceptance bar: appending a handful of
// entries to a large mined log must be at least 5x faster than the full
// re-mine (parse + mine + map) it replaces.
func TestIncrementalSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const n, k = 1200, 5
	initial, extra := grownOLAP(n, k)
	m, err := NewMiner(initial, DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	_, st, err := m.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	incr := time.Since(t0)
	if st.FullRemine {
		t.Fatalf("append fell back to a full re-mine: %+v", st)
	}

	grown := workload.OLAPLog(n+k, 7)
	t1 := time.Now()
	if _, err := Generate(grown, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	full := time.Since(t1)

	t.Logf("incremental append of %d onto %d: %v; full re-mine: %v (%.1fx)",
		k, n, incr, full, float64(full)/float64(incr))
	if incr*5 > full {
		t.Fatalf("incremental append %v not ≥5x faster than full re-mine %v", incr, full)
	}
}

// BenchmarkAppendIncremental measures the incremental path: batches of
// K=5 entries from the workload's own continuation stream appended to
// an n=1200 mined log. One miner absorbs every iteration's append —
// the log keeps growing, which is exactly the live scenario.
func BenchmarkAppendIncremental(b *testing.B) {
	const n, k, chunks = 1200, 5, 1024
	full := workload.OLAPLog(n+k*chunks, 7)
	m, err := NewMiner(full.Slice(0, n), DefaultLiveOptions())
	if err != nil {
		b.Fatal(err)
	}
	stream := full.Entries[n:]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := (i % chunks) * k
		if _, _, err := m.Append(stream[at : at+k]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullRemine is the baseline the incremental path replaces:
// batch Generate over the grown log.
func BenchmarkFullRemine(b *testing.B) {
	const n, k = 1200, 5
	grown := workload.OLAPLog(n+k, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(grown, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
