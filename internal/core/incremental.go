package core

import (
	"fmt"
	"time"

	"repro/internal/ast"
	"repro/internal/interaction"
	"repro/internal/mapper"
	"repro/internal/qlog"
	"repro/internal/sqlparser"
	"repro/internal/treediff"
	"repro/internal/widgets"
)

// LiveOptions configure a Miner: the usual generation options plus the
// incremental-update policy.
type LiveOptions struct {
	Generate Options

	// CoverageThreshold is the structural-coverage bar for the
	// incremental path: after an append, at least this fraction of the
	// newly added queries must be expressible by the updated interface,
	// otherwise the miner falls back to a full re-mine of the whole
	// log. 0 selects DefaultCoverageThreshold; a negative value
	// disables the check (never fall back).
	CoverageThreshold float64

	// ComparerSize caps the memoized treediff comparer (0 = default).
	ComparerSize int
}

// DefaultCoverageThreshold is the structural-coverage bar used when
// LiveOptions.CoverageThreshold is zero.
const DefaultCoverageThreshold = 0.5

// DefaultLiveOptions are DefaultOptions plus the default incremental
// policy.
func DefaultLiveOptions() LiveOptions { return LiveOptions{Generate: DefaultOptions()} }

// AppendStats reports what one Miner.Append did.
type AppendStats struct {
	Added       int // entries parsed, mined and now part of the log
	ParseErrors int // entries dropped because they did not parse
	Comparisons int // treediff comparisons this append performed
	NewEdges    int // interaction-graph edges added
	NewDiffs    int // diff records added to the mapper's partitions
	// Coverage is the fraction of the added queries the updated
	// interface can express (1 when nothing was added).
	Coverage float64
	// FullRemine is true when the coverage check failed and the miner
	// rebuilt graph and widgets from the whole log.
	FullRemine bool
	// LastParseError describes the most recent dropped entry ("" when
	// every entry parsed).
	LastParseError string
	Elapsed        time.Duration
}

// Miner is the incremental form of Generate: it retains the parsed
// queries, the interaction graph and the mapper's partition state so
// that appending K log entries costs O(K·window) tree comparisons plus
// a re-merge, instead of the full O(n·window) (or O(n²)) re-mine. A
// graph grown by appends is identical to batch-mining the grown log, so
// the interface a Miner serves after Append equals what Generate would
// produce from scratch — the fallback path exists for configurations
// where the structural-coverage check demands a rebuild.
//
// A Miner is not safe for concurrent use. Callers (internal/ingest)
// serialize Append and hand the returned immutable *Interface to the
// serving layer.
type Miner struct {
	opts  LiveOptions
	log   *qlog.Log
	asts  []*ast.Node
	graph *interaction.Graph
	state *mapper.State
	cmp   *treediff.Comparer
	iface *Interface

	comparisons int
}

// NewMiner mines the initial log and returns a miner ready for appends.
func NewMiner(log *qlog.Log, opts LiveOptions) (*Miner, error) {
	if log.Len() == 0 {
		return nil, fmt.Errorf("core: empty query log")
	}
	if opts.Generate.Library == nil {
		opts.Generate.Library = widgets.DefaultLibrary()
	}
	asts, err := log.Parse()
	if err != nil {
		return nil, err
	}
	m := &Miner{
		opts: opts,
		log:  log.Slice(0, log.Len()), // private copy, Seq rebased
		asts: asts,
		cmp:  treediff.NewComparer(opts.ComparerSize),
	}
	m.remineAll()
	return m, nil
}

// Interface returns the current mined interface. The returned value is
// immutable; each Append produces a fresh one.
func (m *Miner) Interface() *Interface { return m.iface }

// Len returns the number of mined log entries.
func (m *Miner) Len() int { return len(m.asts) }

// Log returns a copy of the accumulated log.
func (m *Miner) Log() *qlog.Log { return m.log.Slice(0, m.log.Len()) }

// Append parses and mines new log entries, updating the interface
// incrementally. Entries that fail to parse are dropped and counted in
// the returned stats; the good entries are still mined. The returned
// interface is a fresh value (the previous one stays valid for readers
// that hold it).
func (m *Miner) Append(entries []qlog.Entry) (*Interface, AppendStats, error) {
	start := time.Now()
	var st AppendStats
	var newASTs []*ast.Node
	for _, e := range entries {
		n, err := sqlparser.Parse(e.SQL)
		if err != nil {
			st.ParseErrors++
			st.LastParseError = fmt.Sprintf("entry %q: %v", truncateSQL(e.SQL), err)
			continue
		}
		newASTs = append(newASTs, n)
		m.log.Append(e.SQL, e.Client)
	}
	st.Added = len(newASTs)
	if st.Added == 0 {
		st.Coverage = 1
		st.Elapsed = time.Since(start)
		return m.iface, st, nil
	}

	prevEdges := len(m.graph.Edges)
	mineStats := interaction.MineAppend(m.graph, newASTs, m.opts.Generate.Miner, m.cmp)
	m.asts = m.graph.Queries
	st.Comparisons = mineStats.Comparisons
	st.NewEdges = mineStats.Edges
	m.comparisons += mineStats.Comparisons

	var newDiffs []interaction.DiffRecord
	for _, e := range m.graph.Edges[prevEdges:] {
		newDiffs = append(newDiffs, e.Diffs...)
	}
	st.NewDiffs = len(newDiffs)
	m.state.AddDiffs(newDiffs)
	m.rebuildInterface()

	st.Coverage = m.coverage(newASTs)
	if thr := m.threshold(); st.Coverage < thr {
		m.remineAll()
		st.FullRemine = true
		st.Coverage = m.coverage(newASTs)
	}
	st.Elapsed = time.Since(start)
	return m.iface, st, nil
}

func (m *Miner) threshold() float64 {
	t := m.opts.CoverageThreshold
	if t == 0 {
		return DefaultCoverageThreshold
	}
	if t < 0 {
		return 0
	}
	return t
}

// coverage is the structural-coverage check: the fraction of the given
// queries the current interface can express.
func (m *Miner) coverage(qs []*ast.Node) float64 {
	if len(qs) == 0 {
		return 1
	}
	n := 0
	for _, q := range qs {
		if m.iface.CanExpress(q) {
			n++
		}
	}
	return float64(n) / float64(len(qs))
}

// remineAll rebuilds graph, partitions and interface from the whole
// log — the batch path, reused both at construction and as the
// incremental fallback. The memoized comparer makes a fallback after
// many appends cheaper than a cold Generate: every window pair already
// compared incrementally is a memo hit.
func (m *Miner) remineAll() {
	g, mstats := interaction.MineWith(m.asts, m.opts.Generate.Miner, m.cmp)
	m.graph = g
	m.state = mapper.NewState(m.opts.Generate.Library)
	m.state.AddDiffs(g.Diffs())
	m.comparisons = mstats.Comparisons
	m.rebuildInterface()
}

// rebuildInterface re-merges the mapper state into a fresh Interface.
func (m *Miner) rebuildInterface() {
	t0 := time.Now()
	ws := m.state.Widgets()
	mapTime := time.Since(t0)
	m.iface = &Interface{
		Widgets: ws,
		Initial: m.asts[0],
		Graph:   m.graph,
		Stats: Stats{
			MapTime:     mapTime,
			Comparisons: m.comparisons,
			Edges:       len(m.graph.Edges),
			DiffRecords: m.graph.NumDiffs(),
			WidgetCount: len(ws),
			Cost:        mapper.TotalCost(ws),
		},
	}
}

func truncateSQL(s string) string {
	if len(s) > 80 {
		return s[:77] + "..."
	}
	return s
}
