// Package core is the paper's primary contribution assembled end to end:
// it turns a query log into an interactive interface (Problem 1, §4.5).
// The pipeline parses the log, mines the interaction graph (§4.2, §6),
// maps edges to widgets (§5), and wraps the result in an Interface value
// that can report its cost, compute its closure and expressiveness
// (§4.4), and apply widget states to produce new queries.
package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/ast"
	"repro/internal/interaction"
	"repro/internal/mapper"
	"repro/internal/qlog"
	"repro/internal/treediff"
	"repro/internal/widgets"
)

// Options configure interface generation.
type Options struct {
	Miner   interaction.Options
	Library widgets.Library
}

// DefaultOptions: window=2 + LCA pruning (the paper's recommended
// configuration) and the nine-type widget library.
func DefaultOptions() Options {
	return Options{Miner: interaction.DefaultOptions(), Library: widgets.DefaultLibrary()}
}

// Stats records the pipeline's work and timings, the quantities plotted
// in Figures 11 and 12.
type Stats struct {
	ParseTime   time.Duration
	MineTime    time.Duration
	MapTime     time.Duration
	Comparisons int
	Edges       int
	DiffRecords int
	WidgetCount int
	Cost        float64
}

// Interface is I = (W, q0): a set of widgets and an initial query
// (§4.4). Queries reachable by combinations of widget settings form the
// interface's closure.
type Interface struct {
	Widgets []*mapper.MappedWidget
	Initial *ast.Node
	Graph   *interaction.Graph
	Stats   Stats
}

// Generate parses the log and builds an interface for it.
func Generate(log *qlog.Log, opts Options) (*Interface, error) {
	if log.Len() == 0 {
		return nil, fmt.Errorf("core: empty query log")
	}
	start := time.Now()
	queries, err := log.Parse()
	if err != nil {
		return nil, err
	}
	parseTime := time.Since(start)
	iface := GenerateFromASTs(queries, opts)
	iface.Stats.ParseTime = parseTime
	return iface, nil
}

// GenerateFromASTs builds an interface from already-parsed queries (in
// log order; the earliest query becomes q0, per §4.4).
func GenerateFromASTs(queries []*ast.Node, opts Options) *Interface {
	if opts.Library == nil {
		opts.Library = widgets.DefaultLibrary()
	}
	t0 := time.Now()
	g, mstats := interaction.Mine(queries, opts.Miner)
	mineTime := time.Since(t0)

	t1 := time.Now()
	ws := mapper.Map(g, opts.Library)
	mapTime := time.Since(t1)

	return &Interface{
		Widgets: ws,
		Initial: queries[0],
		Graph:   g,
		Stats: Stats{
			MineTime:    mineTime,
			MapTime:     mapTime,
			Comparisons: mstats.Comparisons,
			Edges:       mstats.Edges,
			DiffRecords: mstats.DiffRecords,
			WidgetCount: len(ws),
			Cost:        mapper.TotalCost(ws),
		},
	}
}

// Cost is the interface cost C_I (§4.4).
func (i *Interface) Cost() float64 { return mapper.TotalCost(i.Widgets) }

// CanExpress reports whether the interface's closure contains q: there
// must be a combination of widget settings transforming q0 into q.
//
// The check simulates such a combination greedily. Widgets are visited
// in path order (ancestors first); each widget is set to q's subtree at
// its path when that subtree is in the widget's domain (with numeric
// range extrapolation), to "absent" when q lacks the node and the
// domain has the absent option, and otherwise to the domain value with
// the fewest residual differences from q's subtree — the case where an
// ancestor widget swaps in a template that deeper widgets then refine
// (e.g. Figure 5d: toggle to "TOP 1", then slide 1 to 5). The final
// equality check makes the procedure sound: it never reports a query
// outside the closure as expressible.
func (i *Interface) CanExpress(q *ast.Node) bool {
	cur := i.Initial
	if ast.Equal(cur, q) {
		return true
	}
	for _, w := range i.Widgets {
		target := q.At(w.Path)
		curAt := cur.At(w.Path)
		switch {
		case target != nil && w.Domain.Contains(target):
			if !ast.Equal(curAt, target) {
				if next := Apply(cur, w, target); next != nil {
					cur = next
				}
			}
		case target == nil && w.Domain.HasAbsent():
			if curAt != nil {
				if next := cur.DeleteAt(w.Path); next != nil {
					cur = next
				}
			}
		case target != nil && !ast.Equal(curAt, target):
			// Partial progress: swap in the closest domain member and
			// let descendant widgets finish the job.
			best, bestScore := curAt, residual(curAt, target)
			for _, v := range w.Domain.Values() {
				if s := residual(v, target); s < bestScore {
					best, bestScore = v, s
				}
			}
			if !ast.Equal(best, curAt) {
				if next := Apply(cur, w, best); next != nil {
					cur = next
				}
			}
		}
	}
	return ast.Equal(cur, q)
}

// residual scores how far subtree a is from subtree b: 0 when equal,
// otherwise the summed size of the minimal differing subtree pairs
// (plus one per pair). Sizes matter for tie-breaking: replacing an
// empty TOP clause with "TOP 1" is closer to "TOP 5" than leaving it
// empty, even though both are one leaf diff away.
func residual(a, b *ast.Node) int {
	if ast.Equal(a, b) {
		return 0
	}
	if a == nil || b == nil {
		return a.Size() + b.Size() + 1
	}
	score := 0
	for _, d := range treediff.Compare(a, b).Leaves {
		score += d.Left.Size() + d.Right.Size() + 1
	}
	return score
}

// Expressiveness computes |closure ∩ Q| / |Q| for a query log (§4.4).
func (i *Interface) Expressiveness(queries []*ast.Node) float64 {
	if len(queries) == 0 {
		return 1
	}
	n := 0
	for _, q := range queries {
		if i.CanExpress(q) {
			n++
		}
	}
	return float64(n) / float64(len(queries))
}

// Recall is the hold-out expressiveness used throughout §7.2: the
// fraction of unseen queries the generated interface can express.
func (i *Interface) Recall(holdout []*ast.Node) float64 {
	return i.Expressiveness(holdout)
}

// Apply sets one widget to a domain value and returns the transformed
// query: the value subtree is swapped in at the widget's path (§5.3).
// A nil value removes the node at the path (collection deletions); a
// value at a path one past the end of a collection inserts. Returns nil
// when the value is outside the widget's domain.
func Apply(q *ast.Node, w *mapper.MappedWidget, value *ast.Node) *ast.Node {
	if !w.Domain.Contains(value) {
		return nil
	}
	at := q.At(w.Path)
	switch {
	case value == nil:
		if at == nil {
			return q // already absent
		}
		return q.DeleteAt(w.Path)
	case at != nil:
		return q.ReplaceAt(w.Path, value)
	default:
		return q.InsertAt(w.Path, value)
	}
}

// EnumerateClosure enumerates queries in the interface's closure by
// walking the cross product of widget domains applied to q0 (widgets
// are kept in path order, so ancestor settings compose with nested
// descendant settings). Enumeration stops after max yielded queries
// (0 = unlimited) or when yield returns false; q0 is always yielded
// first. The Appendix D precision experiment exhaustively enumerates
// the closure this way.
func (i *Interface) EnumerateClosure(max int, yield func(*ast.Node) bool) {
	count := 0
	var rec func(q *ast.Node, wi int) bool
	rec = func(q *ast.Node, wi int) bool {
		if wi == len(i.Widgets) {
			if max > 0 && count >= max {
				return false
			}
			count++
			return yield(q)
		}
		w := i.Widgets[wi]
		// "Unset": leave the query as-is for this widget.
		if !rec(q, wi+1) {
			return false
		}
		for _, v := range w.Domain.Values() {
			next := Apply(q, w, v)
			if next == nil || ast.Equal(next, q) {
				continue
			}
			if !rec(next, wi+1) {
				return false
			}
		}
		return true
	}
	rec(i.Initial, 0)
}

// SampleClosure yields n queries drawn uniformly-ish from the closure:
// each widget is independently left unset or set to a random domain
// value. Unlike the depth-first EnumerateClosure, whose truncation
// under a cap over-represents the last widgets, sampling gives an
// unbiased estimate of closure-wide properties such as the Appendix D
// precision. Deterministic for a given seed.
func (i *Interface) SampleClosure(n int, seed int64, yield func(*ast.Node) bool) {
	r := rand.New(rand.NewSource(seed))
	for k := 0; k < n; k++ {
		q := i.Initial
		for _, w := range i.Widgets {
			vals := w.Domain.Values()
			// One extra slot leaves the widget unset occasionally so
			// sparse combinations are represented too.
			pick := r.Intn(len(vals) + 1)
			if pick == len(vals) {
				if r.Intn(4) != 0 {
					pick = r.Intn(len(vals))
				} else {
					continue
				}
			}
			if next := Apply(q, w, vals[pick]); next != nil {
				q = next
			}
		}
		if !yield(q) {
			return
		}
	}
}

// ClosureSize counts distinct queries in the closure, enumerating at
// most max combinations (0 = unlimited). Distinctness is structural.
func (i *Interface) ClosureSize(max int) int {
	seen := ast.NewSet()
	i.EnumerateClosure(max, func(q *ast.Node) bool {
		seen.Add(q)
		return true
	})
	return seen.Len()
}
