package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/interaction"
	"repro/internal/qlog"
)

// randomStructuredLog emits a log in which each consecutive query
// changes one of: a numeric literal, a string literal, a column, or a
// table — the structured-analysis regime the system targets.
func randomStructuredLog(r *rand.Rand, n int) *qlog.Log {
	tables := []string{"t", "u", "v"}
	cols := []string{"a", "b", "c"}
	names := []string{"p", "q", "s"}
	tab, col, name, num := 0, 0, 0, 1
	l := &qlog.Log{}
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			num = 1 + r.Intn(50)
		case 1:
			name = r.Intn(len(names))
		case 2:
			col = r.Intn(len(cols))
		default:
			tab = r.Intn(len(tables))
		}
		l.Append(fmt.Sprintf("SELECT %s FROM %s WHERE x = %d AND tag = '%s'",
			cols[col], tables[tab], num, names[name]), "")
	}
	return l
}

// TestPropertyTrainingAlwaysExpressible: with all-pairs mining the
// interface must express 100%% of its own training log (g = 1, §4.5),
// for any structured log.
func TestPropertyTrainingAlwaysExpressible(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		l := randomStructuredLog(r, 4+r.Intn(20))
		iface, err := Generate(l, Options{
			Miner: interaction.Options{WindowSize: 0, LCAPrune: r.Intn(2) == 0},
		})
		if err != nil {
			t.Fatal(err)
		}
		queries, err := l.Parse()
		if err != nil {
			t.Fatal(err)
		}
		if expr := iface.Expressiveness(queries); expr != 1 {
			for _, q := range queries {
				if !iface.CanExpress(q) {
					t.Logf("inexpressible: %s", ast.SQL(q))
				}
			}
			for _, w := range iface.Widgets {
				t.Logf("widget %s@%s n=%d", w.Type.Name, w.Path, w.Domain.Len())
			}
			t.Fatalf("trial %d: expressiveness = %v over %d queries", trial, expr, len(queries))
		}
	}
}

// TestPropertyClosureMembersExpressible: every query the closure
// enumerator produces must pass CanExpress — the two implementations of
// "the set of queries reachable by widget settings" must agree.
func TestPropertyClosureMembersExpressible(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	for trial := 0; trial < 15; trial++ {
		l := randomStructuredLog(r, 4+r.Intn(10))
		iface, err := Generate(l, Options{
			Miner: interaction.Options{WindowSize: 0, LCAPrune: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		iface.EnumerateClosure(300, func(q *ast.Node) bool {
			checked++
			if !iface.CanExpress(q) {
				t.Errorf("trial %d: closure member not expressible: %s", trial, ast.SQL(q))
				return false
			}
			return true
		})
		if checked == 0 {
			t.Fatalf("trial %d: closure empty", trial)
		}
	}
}

// TestPropertySampleClosureMembersExpressible: the random sampler only
// produces closure members too.
func TestPropertySampleClosureMembersExpressible(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		l := randomStructuredLog(r, 6+r.Intn(10))
		iface, err := Generate(l, Options{
			Miner: interaction.Options{WindowSize: 0, LCAPrune: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		iface.SampleClosure(50, int64(trial), func(q *ast.Node) bool {
			if !iface.CanExpress(q) {
				t.Errorf("trial %d: sampled query not expressible: %s", trial, ast.SQL(q))
				return false
			}
			return true
		})
	}
}

// TestPropertyMergeSoundness: merging must never lose expressiveness
// relative to the unmerged (initialize-only) interface on the training
// log, while never costing more.
func TestPropertyMergeSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		l := randomStructuredLog(r, 4+r.Intn(16))
		iface, err := Generate(l, Options{
			Miner: interaction.Options{WindowSize: 0, LCAPrune: false},
		})
		if err != nil {
			t.Fatal(err)
		}
		queries, err := l.Parse()
		if err != nil {
			t.Fatal(err)
		}
		if expr := iface.Expressiveness(queries); expr != 1 {
			t.Fatalf("trial %d: merged interface lost training coverage: %v", trial, expr)
		}
	}
}
