// Package htmlgen compiles a generated interface into a standalone
// HTML+JavaScript page (§5.3: "we then compile the interface into a web
// application"). Widgets are rendered as native browser controls; each
// interaction swaps the widget's current value into the query AST at the
// widget's path, re-renders the SQL, and calls the page's exec() hook
// (a stub that applications replace with a real endpoint).
package htmlgen

import (
	"encoding/json"
	"fmt"
	"html"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/mapper"
	"repro/internal/widgets"
)

// Dependency mirrors speculate.Dependency without importing it (the
// compiler only needs the indices): the widget at Widget is enabled
// only while the widget at On is in one of the ActiveOptions states.
type Dependency struct {
	Widget, On    int
	ActiveOptions []int
}

// Served configures the live-page variants of Compile: where the
// page's exec() hook POSTs widget bindings, which epoch endpoint it
// polls for hot swaps, and an optional bearer token.
//
// Auth: a page served from an open GET endpoint must NOT embed the
// token (anyone who can fetch the page would learn it) — leave Token
// empty; the page script also picks a token up from the URL fragment
// or query string (#token=... / ?token=...), so operators hand out
// tokenized links while the page itself stays secret-free. Set Token
// only when compiling a page for a trusted destination.
type Served struct {
	QueryEndpoint string       // where exec() POSTs widget bindings (required)
	EpochEndpoint string       // epoch polling URL ("" disables the reload loop)
	Epoch         uint64       // epoch the page was compiled at
	Token         string       // optional bearer token embedded in the page
	Deps          []Dependency // widget dependencies
}

// Compile renders the interface as a self-contained HTML document.
func Compile(iface *core.Interface, title string) (string, error) {
	return compile(iface, title, Served{})
}

// CompileWithDeps additionally embeds widget dependencies (§4.5 /
// Figure 5d: "the slider is only active when the TOP clause is
// enabled"): the page disables a dependent widget's controls while its
// controlling widget is in a non-supporting state.
func CompileWithDeps(iface *core.Interface, title string, deps []Dependency) (string, error) {
	return compile(iface, title, Served{Deps: deps})
}

// CompileServedPage renders the interface as a page whose exec() hook
// is live: every interaction POSTs the current widget bindings to
// cfg.QueryEndpoint (the serving layer's POST /v1/interfaces/{id}/query)
// with the bearer token attached when one is known, and renders the
// returned rows. With an EpochEndpoint the page also polls for hot
// swaps and reloads itself when the epoch bumps.
func CompileServedPage(iface *core.Interface, title string, cfg Served) (string, error) {
	if cfg.QueryEndpoint == "" {
		return "", fmt.Errorf("htmlgen: served page needs a query endpoint")
	}
	return compile(iface, title, cfg)
}

// CompileServed is CompileServedPage with only a query endpoint — the
// interaction hook that turns the static §5.3 compilation into a
// working dashboard.
func CompileServed(iface *core.Interface, title, endpoint string) (string, error) {
	return CompileServedPage(iface, title, Served{QueryEndpoint: endpoint})
}

// CompileServedWithDeps is CompileServed plus widget dependencies.
func CompileServedWithDeps(iface *core.Interface, title, endpoint string, deps []Dependency) (string, error) {
	return CompileServedPage(iface, title, Served{QueryEndpoint: endpoint, Deps: deps})
}

// CompileServedLive is CompileServed for an interface that evolves
// under live log ingestion: the page is stamped with the epoch it was
// compiled at and polls the given epoch endpoint (GET, returning
// {"epoch": n}); when the server hot-swaps a re-mined interface the
// epoch bumps and the page reloads itself, picking up the widened
// widget domains while keeping the same URL.
func CompileServedLive(iface *core.Interface, title, endpoint, epochEndpoint string, epoch uint64) (string, error) {
	return CompileServedPage(iface, title, Served{
		QueryEndpoint: endpoint, EpochEndpoint: epochEndpoint, Epoch: epoch,
	})
}

func compile(iface *core.Interface, title string, cfg Served) (string, error) {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(styleBlock)
	b.WriteString("</head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))
	b.WriteString("<div id=\"widgets\">\n")
	for i, w := range iface.Widgets {
		ctrl, err := renderWidget(i, w)
		if err != nil {
			return "", err
		}
		b.WriteString(ctrl)
	}
	b.WriteString("</div>\n")
	b.WriteString("<pre id=\"sql\"></pre>\n<div id=\"result\"></div>\n")

	state, err := pageState(iface, cfg)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "<script>\nconst PI_STATE = %s;\n%s</script>\n", state, scriptBlock)
	b.WriteString("</body>\n</html>\n")
	return b.String(), nil
}

// pageState serializes the initial query AST, each widget's path and
// domain (as both AST JSON and rendered SQL fragments), and the widget
// dependencies for the page script.
func pageState(iface *core.Interface, cfg Served) (string, error) {
	type option struct {
		Label string          `json:"label"`
		AST   json.RawMessage `json:"ast"`
	}
	type widgetState struct {
		Kind    string   `json:"kind"`
		Label   string   `json:"label"`
		Path    string   `json:"path"`
		Options []option `json:"options"`
		Min     float64  `json:"min,omitempty"`
		Max     float64  `json:"max,omitempty"`
	}
	type page struct {
		Initial       json.RawMessage `json:"initial"`
		InitSQL       string          `json:"initSql"`
		Widgets       []widgetState   `json:"widgets"`
		Deps          []Dependency    `json:"deps,omitempty"`
		Endpoint      string          `json:"endpoint,omitempty"`
		EpochEndpoint string          `json:"epochEndpoint,omitempty"`
		Epoch         uint64          `json:"epoch,omitempty"`
		Token         string          `json:"token,omitempty"`
	}
	p := page{
		InitSQL: ast.SQL(iface.Initial), Deps: cfg.Deps, Endpoint: cfg.QueryEndpoint,
		EpochEndpoint: cfg.EpochEndpoint, Epoch: cfg.Epoch, Token: cfg.Token,
	}
	ini, err := json.Marshal(iface.Initial)
	if err != nil {
		return "", err
	}
	p.Initial = ini
	for _, w := range iface.Widgets {
		ws := widgetState{
			Kind:  w.Type.Name,
			Label: Label(w),
			Path:  w.Path.String(),
		}
		if w.Domain.IsNumericRange() {
			ws.Min, ws.Max = w.Domain.Range()
		}
		for _, v := range w.Domain.Values() {
			lbl := "(absent)"
			var raw json.RawMessage = []byte("null")
			if v != nil {
				lbl = ast.SQL(v)
				raw, err = json.Marshal(v)
				if err != nil {
					return "", err
				}
			}
			ws.Options = append(ws.Options, option{Label: lbl, AST: raw})
		}
		p.Widgets = append(p.Widgets, ws)
	}
	out, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// Label derives a human-readable caption from the widget path and
// domain (the editor of §5.3 lets users override it; the widget's own
// Label wins when set). The serving layer reuses it for the JSON API.
func Label(w *mapper.MappedWidget) string {
	if w.Label != "" {
		return w.Label
	}
	if len(w.Path) == 0 {
		return "query"
	}
	switch w.Path[0] {
	case ast.SlotProject:
		return "projection"
	case ast.SlotFrom:
		return "from"
	case ast.SlotWhere:
		return "filter"
	case ast.SlotGroupBy:
		return "grouping"
	case ast.SlotHaving:
		return "having"
	case ast.SlotOrderBy:
		return "ordering"
	case ast.SlotLimit:
		return "limit"
	}
	return "widget " + w.Path.String()
}

// renderWidget emits the HTML control for one widget.
func renderWidget(idx int, w *mapper.MappedWidget) (string, error) {
	var b strings.Builder
	label := html.EscapeString(Label(w))
	fmt.Fprintf(&b, "<div class=\"widget\" data-widget=\"%d\">\n<label>%s</label>\n", idx, label)
	vals := w.Domain.Values()
	switch w.Type {
	case widgets.Slider, widgets.RangeSlider:
		lo, hi := w.Domain.Range()
		fmt.Fprintf(&b,
			"<input type=\"range\" min=\"%g\" max=\"%g\" step=\"any\" oninput=\"piSetNumber(%d, this.value)\">\n",
			lo, hi, idx)
		fmt.Fprintf(&b, "<span class=\"value\" id=\"wval-%d\">%g</span>\n", idx, lo)
	case widgets.Textbox:
		fmt.Fprintf(&b, "<input type=\"text\" onchange=\"piSetText(%d, this.value)\">\n", idx)
	case widgets.ToggleButton, widgets.Checkbox:
		fmt.Fprintf(&b, "<button onclick=\"piToggle(%d)\" id=\"wtog-%d\">%s</button>\n",
			idx, idx, optionCaption(vals, 0))
	case widgets.RadioButton:
		for oi := range vals {
			fmt.Fprintf(&b,
				"<label class=\"opt\"><input type=\"radio\" name=\"w%d\" onchange=\"piSelect(%d, %d)\">%s</label>\n",
				idx, idx, oi, optionCaption(vals, oi))
		}
	case widgets.CheckboxList:
		for oi := range vals {
			fmt.Fprintf(&b,
				"<label class=\"opt\"><input type=\"checkbox\" onchange=\"piSelect(%d, %d)\">%s</label>\n",
				idx, idx, optionCaption(vals, oi))
		}
	default: // drop-down, drag-and-drop fall back to a select control
		fmt.Fprintf(&b, "<select onchange=\"piSelect(%d, this.selectedIndex)\">\n", idx)
		for oi := range vals {
			fmt.Fprintf(&b, "<option>%s</option>\n", optionCaption(vals, oi))
		}
		b.WriteString("</select>\n")
	}
	b.WriteString("</div>\n")
	return b.String(), nil
}

func optionCaption(vals []*ast.Node, i int) string {
	if i >= len(vals) || vals[i] == nil {
		return "(absent)"
	}
	s := ast.SQL(vals[i])
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return html.EscapeString(s)
}

const styleBlock = `<style>
body { font-family: sans-serif; margin: 2em; }
.widget { margin: 0.8em 0; padding: 0.6em; border: 1px solid #ccc; border-radius: 6px; max-width: 42em; }
.widget label { font-weight: bold; margin-right: 1em; }
.widget .opt { font-weight: normal; display: block; margin-left: 1em; }
#sql { background: #f6f6f6; padding: 1em; border-radius: 6px; max-width: 60em; white-space: pre-wrap; }
#result table { border-collapse: collapse; margin-top: 0.5em; }
#result th, #result td { border: 1px solid #ccc; padding: 0.25em 0.6em; text-align: left; }
#result .meta { color: #666; font-size: 0.9em; }
#result .error { color: #a00; }
</style>
`

// scriptBlock holds the page logic: a JS mirror of the Go AST model
// (replace-subtree-at-path and SQL rendering for the node types the
// widget domains contain), plus exec() and render() hooks.
const scriptBlock = `
let current = JSON.parse(JSON.stringify(PI_STATE.initial));
// Bearer token for the query API: an embedded one (trusted
// compilations only) or one handed over in the page URL
// (#token=... preferred — the fragment never leaves the browser —
// or ?token=...). Kept in memory; never re-rendered into the DOM.
const PI_TOKEN = (function () {
  if (PI_STATE.token) return PI_STATE.token;
  try {
    const h = new URLSearchParams(location.hash.slice(1));
    if (h.get("token")) return h.get("token");
    return new URLSearchParams(location.search).get("token") || "";
  } catch (err) { return ""; }
})();
function piHeaders(extra) {
  const h = extra || {};
  if (PI_TOKEN) h["Authorization"] = "Bearer " + PI_TOKEN;
  return h;
}
// Widget bindings in request order: path -> last applied AST value
// (null = absent). The served exec() sends these to the query API,
// which re-binds them onto the template server-side.
const piBindings = {};
function parsePath(p) { return p === "/" ? [] : p.split("/").map(Number); }
function replaceAt(node, path, sub) {
  if (path.length === 0) return sub;
  const copy = {type: node.type, attrs: node.attrs, children: (node.children || []).slice()};
  copy.children[path[0]] = replaceAt(copy.children[path[0]], path.slice(1), sub);
  if (copy.children[path[0]] === null || copy.children[path[0]] === undefined) {
    copy.children.splice(path[0], 1);
  }
  return copy;
}
function piApply(idx, astValue) {
  const w = PI_STATE.widgets[idx];
  piBindings[w.path] = astValue;
  current = replaceAt(current, parsePath(w.path), astValue);
  refresh();
}
function piSelect(idx, optIdx) {
  PI_STATE.widgets[idx]._state = optIdx;
  applyDeps();
  piApply(idx, PI_STATE.widgets[idx].options[optIdx].ast);
}
function piToggle(idx) {
  const w = PI_STATE.widgets[idx];
  w._state = ((w._state || 0) + 1) % w.options.length;
  document.getElementById("wtog-" + idx).textContent = w.options[w._state].label;
  applyDeps();
  piApply(idx, w.options[w._state].ast);
}
// Multi-level interactions: a dependent widget is disabled while its
// controlling widget is in a non-supporting state (PI_STATE.deps).
function applyDeps() {
  for (const d of (PI_STATE.deps || [])) {
    const state = PI_STATE.widgets[d.On]._state;
    const active = state !== undefined && d.ActiveOptions.indexOf(state) >= 0;
    const cell = document.querySelector('[data-widget="' + d.Widget + '"]');
    if (!cell) continue;
    for (const ctl of cell.querySelectorAll("input, select, button")) {
      ctl.disabled = !active;
    }
    cell.style.opacity = active ? "1" : "0.45";
  }
}
function piSetNumber(idx, v) {
  document.getElementById("wval-" + idx).textContent = v;
  piApply(idx, {type: "NumExpr", attrs: {value: String(v)}});
}
function piSetText(idx, v) { piApply(idx, {type: "StrExpr", attrs: {value: v}}); }
function sql(n) {
  if (!n) return "";
  const a = n.attrs || {}, c = n.children || [];
  const list = xs => xs.map(sql).join(", ");
  switch (n.type) {
  case "Select": {
    let s = "SELECT ";
    if (a.distinct === "true") s += "DISTINCT ";
    const lim = c[6];
    if (lim && lim.children && lim.children.length && lim.attrs && lim.attrs.kind === "top")
      s += "TOP " + sql(lim.children[0]) + " ";
    s += sql(c[0]);
    const clause = (i, kw) => (c[i] && c[i].children && c[i].children.length) ? " " + kw + " " + sql(c[i]) : "";
    s += clause(1, "FROM") + clause(2, "WHERE") + clause(3, "GROUP BY") +
         clause(4, "HAVING") + clause(5, "ORDER BY");
    if (lim && lim.children && lim.children.length && (!lim.attrs || lim.attrs.kind !== "top"))
      s += " LIMIT " + sql(lim.children[0]);
    return s;
  }
  case "Project": case "From": case "GroupBy": case "OrderBy": return list(c);
  case "ProjClause": case "FromClause":
    return sql(c[0]) + (a.alias ? " AS " + a.alias : "");
  case "Where": case "Having": case "ElseClause": return sql(c[0]);
  case "OrderClause": return sql(c[0]) + (a.dir === "desc" ? " DESC" : "");
  case "Limit": return sql(c[0]);
  case "SubQuery": return "(" + sql(c[0]) + ")";
  case "ParenExpr": return "(" + sql(c[0]) + ")";
  case "TabExpr": return a.value;
  case "TabFunc": return a && c.length ? sql(c[0]).replace(/'/g, "") + "(" + list(c.slice(1)) + ")" : "";
  case "FuncName": return a.value.toUpperCase();
  case "FuncExpr": return sql(c[0]) + "(" + (a.distinct === "true" ? "DISTINCT " : "") + list(c.slice(1)) + ")";
  case "BiExpr": {
    const wordOps = {and:1, or:1, like:1, is:1, "is not":1, "not like":1};
    const op = wordOps[a.op] ? " " + a.op.toUpperCase() + " " : " " + a.op + " ";
    return sql(c[0]) + op + sql(c[1]);
  }
  case "UniExpr": return (a.op === "not" ? "NOT " : a.op) + sql(c[0]);
  case "CastExpr": return "CAST(" + sql(c[0]) + (a.as ? " AS " + a.as : "") + ")";
  case "CaseExpr": return "CASE " + c.map(sql).join(" ") + " END";
  case "WhenClause": return "WHEN " + sql(c[0]) + " THEN " + sql(c[1]);
  case "InExpr": return sql(c[0]) + (a.not === "true" ? " NOT" : "") + " IN (" + list(c.slice(1)) + ")";
  case "BetweenExpr": return sql(c[0]) + (a.not === "true" ? " NOT" : "") +
    " BETWEEN " + sql(c[1]) + " AND " + sql(c[2]);
  case "ColExpr": return (a.table ? a.table + "." : "") + a.value;
  case "StrExpr": return "'" + a.value.replace(/'/g, "''") + "'";
  case "NumExpr": return a.value;
  case "StarExpr": return (a.table ? a.table + "." : "") + "*";
  case "NullExpr": return "NULL";
  case "BoolExpr": return a.value.toUpperCase();
  }
  return "?" + n.type;
}
// exec()/render() hooks (§3.3). A served page (PI_STATE.endpoint set)
// POSTs the widget bindings to the live query API and renders the
// returned rows; a standalone page falls back to the stub.
async function exec(q) {
  if (!PI_STATE.endpoint) {
    return {note: "exec() stub — wire this to your database", sql: q};
  }
  const widgets = Object.keys(piBindings).map(path =>
    piBindings[path] === null ? {path: path, absent: true}
                              : {path: path, value: piBindings[path]});
  try {
    const resp = await fetch(PI_STATE.endpoint, {
      method: "POST",
      headers: piHeaders({"Content-Type": "application/json"}),
      body: JSON.stringify({widgets: widgets}),
    });
    const body = await resp.json();
    if (!resp.ok) return {error: (body.code ? body.code + ": " : "") + (body.error || resp.statusText)};
    return body;
  } catch (err) {
    return {error: String(err)};
  }
}
function render(result) {
  const el = document.getElementById("result");
  if (result && result.error) {
    el.innerHTML = "";
    const div = document.createElement("div");
    div.className = "error";
    div.textContent = result.error;
    el.appendChild(div);
    return;
  }
  if (!result || !result.cols) {
    el.textContent = JSON.stringify(result);
    return;
  }
  el.innerHTML = "";
  const meta = document.createElement("div");
  meta.className = "meta";
  meta.textContent = result.rowCount + " rows (cache " + result.cache + ")";
  el.appendChild(meta);
  const table = document.createElement("table");
  const head = table.insertRow();
  for (const c of result.cols) {
    const th = document.createElement("th");
    th.textContent = c;
    head.appendChild(th);
  }
  for (const row of result.rows.slice(0, 100)) {
    const tr = table.insertRow();
    for (const v of row) tr.insertCell().textContent = v === null ? "NULL" : v;
  }
  el.appendChild(table);
}
async function refresh() {
  const q = sql(current);
  document.getElementById("sql").textContent = q;
  render(await exec(q));
}
// Live ingestion: a page compiled at some epoch polls the epoch
// endpoint; when the server hot-swaps a re-mined interface the epoch
// bumps and the page reloads to pick up the widened widget domains.
// The current URL (and thus the interface ID) stays stable.
if (PI_STATE.epochEndpoint) {
  setInterval(async function () {
    try {
      const resp = await fetch(PI_STATE.epochEndpoint, {headers: piHeaders()});
      if (!resp.ok) return;
      const body = await resp.json();
      if (body.epoch && body.epoch !== PI_STATE.epoch) location.reload();
    } catch (err) { /* server away; keep the dashboard usable */ }
  }, 3000);
}
applyDeps();
refresh();
`
