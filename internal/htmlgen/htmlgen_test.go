package htmlgen

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/qlog"
)

func buildIface(t *testing.T, sqls ...string) *core.Interface {
	t.Helper()
	iface, err := core.Generate(qlog.FromSQL(sqls...), core.Options{
		Miner: interaction.Options{WindowSize: 0, LCAPrune: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	return iface
}

func TestCompileContainsWidgetsAndState(t *testing.T) {
	iface := buildIface(t,
		"SELECT a FROM t WHERE x = 1 AND name = 'p'",
		"SELECT a FROM t WHERE x = 2 AND name = 'q'",
		"SELECT a FROM t WHERE x = 9 AND name = 'r'",
		"SELECT a FROM t WHERE x = 4 AND name = 'p'",
		"SELECT a FROM t WHERE x = 7 AND name = 'q'",
	)
	page, err := Compile(iface, "Test Interface")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "<title>Test Interface</title>") {
		t.Fatal("missing title")
	}
	if !strings.Contains(page, "type=\"range\"") {
		t.Fatal("numeric widget should render a range input")
	}
	if !strings.Contains(page, "PI_STATE") || !strings.Contains(page, "\"initial\"") {
		t.Fatal("missing embedded state")
	}
	// The embedded state must be valid JSON.
	m := regexp.MustCompile(`const PI_STATE = (\{.*?\});\n`).FindStringSubmatch(page)
	if m == nil {
		t.Fatal("PI_STATE not found")
	}
	var state map[string]any
	if err := json.Unmarshal([]byte(m[1]), &state); err != nil {
		t.Fatalf("PI_STATE not valid JSON: %v", err)
	}
	if _, ok := state["widgets"]; !ok {
		t.Fatal("state missing widgets")
	}
	if sqlStr, _ := state["initSql"].(string); !strings.Contains(sqlStr, "SELECT a FROM t") {
		t.Fatalf("initSql = %q", sqlStr)
	}
}

func TestCompileEscapesHTML(t *testing.T) {
	iface := buildIface(t,
		"SELECT a FROM t WHERE name = '<script>alert(1)</script>'",
		"SELECT a FROM t WHERE name = 'b'",
		"SELECT a FROM t WHERE name = 'c'",
	)
	page, err := Compile(iface, "<script>bad</script>")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(page, "<script>alert(1)</script>") ||
		strings.Contains(page, "<title><script>") {
		t.Fatal("unescaped user content in page")
	}
}

func TestCompileEveryWidgetKind(t *testing.T) {
	cases := []struct {
		frag string
		log  []string
	}{
		{"type=\"range\"", []string{ // slider: numeric literal changes
			"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
			"SELECT * FROM SpecLineIndex WHERE specObjId = 0x199",
			"SELECT * FROM SpecLineIndex WHERE specObjId = 0x3"}},
		{"<button", []string{ // toggle: two-option table change
			"SELECT * FROM SpecLineIndex WHERE specObjId = 0x400",
			"SELECT * FROM XCRedshift WHERE specObjId = 0x400"}},
		{"<select", []string{ // drop-down: 3-option string domain
			"SELECT ew FROM SpecLineIndex WHERE name = 'a'",
			"SELECT ew FROM SpecLineIndex WHERE name = 'b'",
			"SELECT ew FROM SpecLineIndex WHERE name = 'c'"}},
	}
	for _, c := range cases {
		iface := buildIface(t, c.log...)
		page, err := Compile(iface, "SDSS")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(page, c.frag) {
			t.Errorf("page missing %s\nwidgets: %v", c.frag, iface.Widgets)
		}
	}
}

func TestEmptyInterfaceCompiles(t *testing.T) {
	iface := buildIface(t, "SELECT a FROM t")
	page, err := Compile(iface, "Empty")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "PI_STATE") {
		t.Fatal("page should still carry state for q0")
	}
}

func TestCompileServedLiveEmbedsEpochPolling(t *testing.T) {
	iface := buildIface(t,
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2")
	page, err := CompileServedLive(iface, "Live", "/interfaces/x/query", "/interfaces/x/epoch", 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`"endpoint":"/interfaces/x/query"`,
		`"epochEndpoint":"/interfaces/x/epoch"`,
		`"epoch":3`,
		"location.reload()",
	} {
		if !strings.Contains(page, frag) {
			t.Errorf("live page missing %s", frag)
		}
	}
	// A plain served page neither embeds an epoch nor polls.
	static, err := CompileServed(iface, "Static", "/interfaces/x/query")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(static, "epochEndpoint\":") {
		t.Error("static served page should not carry an epoch endpoint")
	}
}

// TestServedPageToken: an explicitly embedded token lands in PI_STATE
// and the script attaches it as a bearer header; a token-less page
// carries no token field but still knows how to pick one up from its
// URL (fragment or query string).
func TestServedPageToken(t *testing.T) {
	iface := buildIface(t,
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2")
	trusted, err := CompileServedPage(iface, "Trusted", Served{
		QueryEndpoint: "/v1/interfaces/x/query", Token: "sesame",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		`"token":"sesame"`,
		`"Authorization"] = "Bearer " + PI_TOKEN`,
	} {
		if !strings.Contains(trusted, frag) {
			t.Errorf("trusted page missing %s", frag)
		}
	}
	open, err := CompileServedPage(iface, "Open", Served{QueryEndpoint: "/v1/interfaces/x/query"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(open, `"token":"`) {
		t.Error("open page embeds a token")
	}
	for _, frag := range []string{`location.hash`, `location.search`, `h.get("token")`} {
		if !strings.Contains(open, frag) {
			t.Errorf("open page cannot pick a token from the URL: missing %s", frag)
		}
	}
	if _, err := CompileServedPage(iface, "Bad", Served{}); err == nil {
		t.Error("served page without a query endpoint accepted")
	}
}
