package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/qlog"
)

// AdhocLog generates the open-ended student exploration log (Listing 3
// shapes): every query is drawn from a wide family of structurally
// different templates with fresh constants, so changes between queries
// are unpredictable. A small repetitive core keeps hold-out recall
// non-zero; the paper reports interfaces expressing only ≈20% of
// hold-out queries on this log (Figure 6c, red line).
func AdhocLog(n int, seed int64) *qlog.Log {
	r := rand.New(rand.NewSource(seed))
	l := &qlog.Log{}
	cols := []string{"delay", "arrdelay", "depdelay", "distance", "flights"}
	dims := []string{"uniquecarrier", "origin", "dest", "deststate", "dayofweek"}
	carriers := []string{"AA", "UA", "DL", "WN", "B6"}
	for i := 0; i < n; i++ {
		var sql string
		// ~20% of queries come from one simple recurring template; the
		// rest are ad-hoc one-offs.
		if r.Intn(5) == 0 {
			sql = fmt.Sprintf("SELECT COUNT(*) FROM ontime WHERE month = %d", 1+r.Intn(12))
		} else {
			switch r.Intn(6) {
			case 0:
				sql = fmt.Sprintf("SELECT CAST(%s) AS %s FROM ontime",
					dims[r.Intn(len(dims))], dims[r.Intn(len(dims))])
			case 1:
				lo := 100 + r.Intn(1000)
				sql = fmt.Sprintf(
					"SELECT SUM(%s) FROM ontime WHERE canceled = %d HAVING SUM(flights) > %d AND SUM(flights) < %d",
					cols[r.Intn(len(cols))], r.Intn(2), lo, lo+100+r.Intn(2000))
			case 2:
				sql = fmt.Sprintf(
					"SELECT (CASE %s WHEN '%s' THEN '%s' ELSE 'Other' END) AS carrier, FLOOR(%s/%d) AS bucket FROM ontime",
					dims[0], carriers[r.Intn(len(carriers))], carriers[r.Intn(len(carriers))],
					cols[r.Intn(len(cols))], 1+r.Intn(20))
			case 3:
				sql = fmt.Sprintf("SELECT %s, AVG(%s) FROM ontime GROUP BY %s ORDER BY AVG(%s) DESC LIMIT %d",
					dims[r.Intn(len(dims))], cols[r.Intn(len(cols))],
					dims[r.Intn(len(dims))], cols[r.Intn(len(cols))], 1+r.Intn(30))
			case 4:
				sql = fmt.Sprintf(
					"SELECT %s FROM ontime WHERE %s BETWEEN %d AND %d AND %s IN ('%s', '%s')",
					cols[r.Intn(len(cols))], cols[r.Intn(len(cols))],
					r.Intn(100), 100+r.Intn(500), dims[0],
					carriers[r.Intn(len(carriers))], carriers[r.Intn(len(carriers))])
			default:
				sql = fmt.Sprintf(
					"SELECT %s, %s FROM (SELECT * FROM ontime WHERE %s > %d) WHERE %s < %d",
					dims[r.Intn(len(dims))], cols[r.Intn(len(cols))],
					cols[r.Intn(len(cols))], r.Intn(50),
					cols[r.Intn(len(cols))], 100+r.Intn(200))
			}
		}
		l.Append(sql, "student")
	}
	return l
}
