// Package workload synthesizes the paper's three query logs (§7
// "Query Logs"). The real artifacts (the SDSS SkyServer log sample, the
// Tableau student log) are not redistributable, so these generators
// reproduce the statistical structure the paper describes and that the
// algorithms actually observe: the distribution of AST shapes and of
// structural changes between nearby queries. DESIGN.md §2 documents the
// substitution argument.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/qlog"
)

// Archetype is a family of SDSS client behaviours. Clients of the same
// archetype perform the same analysis with the same vocabulary, which
// is what makes cross-client recall bimodal (Figures 7c, 9, 10).
type Archetype int

const (
	// Lookup clients issue Listing-1 style object lookups: the table
	// name, id attribute and hex id literal change, nothing else.
	Lookup Archetype = iota
	// Radial clients run Listing-6 style cone searches with a TOP
	// clause that appears and changes.
	Radial
	// Filter clients run threshold scans over PhotoObj.
	Filter
	// SlowBurn clients mirror the paper's client C5: the structure is
	// fixed, but a *string* literal keeps taking previously unseen
	// values deep into the log, so recall climbs slowly (string domains
	// cannot extrapolate the way numeric sliders do).
	SlowBurn
)

func (a Archetype) String() string {
	switch a {
	case Lookup:
		return "lookup"
	case Radial:
		return "radial"
	case Filter:
		return "filter"
	case SlowBurn:
		return "slowburn"
	}
	return "?"
}

// SDSSClient generates one client's session log of n queries using the
// shared (variant 0) vocabulary: clients with the same archetype are
// mutually expressible, which drives the cross-client experiments.
func SDSSClient(arch Archetype, seed int64, n int) *qlog.Log {
	return SDSSClientV(arch, 0, seed, n)
}

// SDSSClientV generates a client log with an explicit vocabulary
// variant: different variants use disjoint table subsets, attribute
// names and literal ranges, modeling genuinely different analyses. The
// multi-client heterogeneity experiments (Figures 7a/7b) use distinct
// variants so clients cannot train each other.
func SDSSClientV(arch Archetype, variant int, seed int64, n int) *qlog.Log {
	r := rand.New(rand.NewSource(seed))
	l := &qlog.Log{}
	client := fmt.Sprintf("%s-v%d-%d", arch, variant, seed)
	for i := 0; i < n; i++ {
		var sql string
		switch arch {
		case Lookup:
			sql = lookupQuery(r, variant)
		case Radial:
			sql = radialQuery(r, variant, i)
		case Filter:
			sql = filterQuery(r, variant)
		case SlowBurn:
			sql = slowBurnQuery(r, variant, i)
		}
		l.Append(sql, client)
	}
	return l
}

var lookupTables = []string{"SpecLineIndex", "XCRedshift", "SpecObj", "PhotoObj", "Star", "Neighbors", "PlateX"}
var lookupAttrs = []string{"specObjId", "plateId", "objId", "fieldId", "mjd", "fiberId", "runId"}

// lookupQuery: Listing 1. Tables and id attributes come from small
// per-variant sets; ids from a per-variant discrete pool so numeric
// sliders cover the variant's range after a few dozen examples.
//
// Crucially, each table has its own pair of id attributes (as in the
// real SDSS schema): the syntactic cross product of the table widget
// and the attribute widget is therefore mostly schema-invalid, which is
// exactly what the Appendix D precision experiment measures.
func lookupQuery(r *rand.Rand, variant int) string {
	ti := r.Intn(3)
	table := lookupTables[(variant*3+ti)%len(lookupTables)]
	attrs := lookupAttrsFor(variant, ti)
	return fmt.Sprintf("SELECT * FROM %s WHERE %s = 0x%x",
		table, attrs[r.Intn(len(attrs))], idPool(r, variant))
}

// lookupAttrsFor returns the two id attributes of the ti-th table of a
// variant; different tables get disjoint pairs.
func lookupAttrsFor(variant, ti int) [2]string {
	base := (variant*3 + ti) * 2
	return [2]string{
		lookupAttrs[base%len(lookupAttrs)],
		lookupAttrs[(base+1)%len(lookupAttrs)],
	}
}

// idPool draws from a discrete pool of 30 hex ids in a per-variant
// disjoint range; extremes appear with ordinary probability, so slider
// ranges saturate after tens of queries (Figure 6a's shape).
func idPool(r *rand.Rand, variant int) int {
	base := 0x10 + variant*0x10000
	span := 0x8000
	return base + r.Intn(30)*span/29
}

// radialQuery: Listing 6 cone searches; the TOP clause is absent in
// about a third of the queries and its limit varies otherwise.
func radialQuery(r *rand.Rand, variant, i int) string {
	base := 5 + 11*variant
	ras := []string{fmt.Sprintf("%d.848", base), fmt.Sprintf("%d.122", base+1), fmt.Sprintf("%d.901", base)}
	decs := []string{fmt.Sprintf("%d.352", variant), fmt.Sprintf("%d.204", variant+1)}
	rads := []string{"0.5", "1.0", "2.0616", "4.0"}
	top := ""
	if i%3 != 0 {
		tops := []int{1, 5, 10, 50}
		top = fmt.Sprintf("TOP %d ", tops[r.Intn(len(tops))])
	}
	return fmt.Sprintf(
		"SELECT %sg.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(%s, %s, %s) as d WHERE d.objID = g.objID",
		top, ras[r.Intn(len(ras))], decs[r.Intn(len(decs))], rads[r.Intn(len(rads))])
}

// filterQuery: threshold scans whose numeric bounds move within a
// per-variant band over a per-variant photometric column.
func filterQuery(r *rand.Rand, variant int) string {
	bands := []string{"u", "g", "r", "i", "z"}
	band := bands[variant%len(bands)]
	off := 20 * variant
	lo := off + 14 + r.Intn(5)
	hi := lo + 1 + r.Intn(3)
	types := []int{3 + variant, 6 + variant}
	return fmt.Sprintf(
		"SELECT objID, ra, dec FROM PhotoObj WHERE type = %d AND %s > %d AND %s < %d",
		types[r.Intn(len(types))], band, lo, band, hi)
}

// slowBurnQuery keeps widening a string-literal vocabulary: query i can
// reference any of the first 4+i/4 line names, so fresh values keep
// appearing far into the log (the paper's client C5).
func slowBurnQuery(r *rand.Rand, variant, i int) string {
	vocab := 4 + i/4
	name := fmt.Sprintf("line%d_%d", variant, r.Intn(vocab))
	return fmt.Sprintf("SELECT ew, z FROM SpecLineIndex WHERE name = '%s' AND specObjId = 0x%x",
		name, idPool(r, variant))
}

// SDSSClients generates m client logs of n queries each with the
// paper-motivated archetype mix: a majority of simple lookup clients,
// then radial, filter, and a few slow-burn clients. For m = 22 the mix
// is 7/6/5/4, which makes the largest cross-client benefit group size 7
// (Figure 7c: "7 interfaces were able to express 6 other clients").
func SDSSClients(m, n int, seed int64) []*qlog.Log {
	mix := archetypeMix(m)
	out := make([]*qlog.Log, m)
	for i := 0; i < m; i++ {
		out[i] = SDSSClient(mix[i], seed+int64(i)*101, n)
	}
	return out
}

// archetypeMix deals archetypes in proportions 7:6:5:4 per 22 clients.
func archetypeMix(m int) []Archetype {
	var out []Archetype
	quota := []struct {
		a Archetype
		k int
	}{{Lookup, 7}, {Radial, 6}, {Filter, 5}, {SlowBurn, 4}}
	for len(out) < m {
		for _, q := range quota {
			for j := 0; j < q.k && len(out) < m; j++ {
				out = append(out, q.a)
			}
		}
	}
	return out[:m]
}

// HeterogeneousClients generates m clients that perform genuinely
// different analyses: every client gets its own archetype rotation AND
// its own vocabulary variant, so no client's interface expresses
// another's queries. The multi-client experiments (§7.2.3) interleave
// these.
func HeterogeneousClients(m, n int, seed int64) []*qlog.Log {
	out := make([]*qlog.Log, m)
	for i := 0; i < m; i++ {
		out[i] = SDSSClientV(Archetype(i%4), i+1, seed+int64(i)*31, n)
	}
	return out
}

// SDSSFullLog generates a single heterogeneous log of total queries by
// interleaving many clients — the scalability workload of Figure 12.
func SDSSFullLog(total int, seed int64) *qlog.Log {
	clients := SDSSClients(16, (total+15)/16, seed)
	merged := qlog.Interleave(clients...)
	return merged.Slice(0, total)
}
