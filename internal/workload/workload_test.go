package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/interaction"
	"repro/internal/qlog"
)

func TestAllGeneratedQueriesParse(t *testing.T) {
	logs := map[string]*qlog.Log{
		"lookup":   SDSSClient(Lookup, 1, 100),
		"radial":   SDSSClient(Radial, 2, 100),
		"filter":   SDSSClient(Filter, 3, 100),
		"slowburn": SDSSClient(SlowBurn, 4, 100),
		"olap":     OLAPLog(200, 5),
		"adhoc":    AdhocLog(200, 6),
		"full":     SDSSFullLog(500, 7),
	}
	for name, l := range logs {
		if _, err := l.Parse(); err != nil {
			t.Errorf("%s log does not parse: %v", name, err)
		}
	}
}

func TestGeneratorsAreDeterministic(t *testing.T) {
	a := SDSSClient(Lookup, 42, 50).SQLs()
	b := SDSSClient(Lookup, 42, 50).SQLs()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if OLAPLog(50, 9).SQLs()[49] != OLAPLog(50, 9).SQLs()[49] {
		t.Fatal("OLAP log nondeterministic")
	}
}

func TestClientsVaryBySeed(t *testing.T) {
	a := SDSSClient(Lookup, 1, 50).SQLs()
	b := SDSSClient(Lookup, 2, 50).SQLs()
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestLookupRecallSaturates pins the Figure 6a behaviour: a few dozen
// training queries suffice for 100%-ish hold-out recall on structured
// lookup clients.
func TestLookupRecallSaturates(t *testing.T) {
	l := SDSSClient(Lookup, 11, 200)
	train, hold := l.Split(60)
	iface, err := core.Generate(train, core.Options{
		Miner: interaction.Options{WindowSize: 0, LCAPrune: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	holdQ, err := hold.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if r := iface.Recall(holdQ); r < 0.95 {
		t.Fatalf("lookup recall after 60 training queries = %v, want >= 0.95", r)
	}
}

// TestSlowBurnRecallClimbsSlowly pins the C5 behaviour: with only a few
// training queries the string vocabulary is mostly unseen.
func TestSlowBurnRecallClimbsSlowly(t *testing.T) {
	l := SDSSClient(SlowBurn, 13, 200)
	holdQ, err := l.Slice(100, 200).Parse()
	if err != nil {
		t.Fatal(err)
	}
	gen := func(n int) float64 {
		iface, err := core.Generate(l.Slice(0, n), core.Options{
			Miner: interaction.Options{WindowSize: 0, LCAPrune: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return iface.Recall(holdQ)
	}
	early, late := gen(10), gen(100)
	if early >= late {
		t.Fatalf("slow-burn recall should climb: recall(10)=%v, recall(100)=%v", early, late)
	}
	if early > 0.9 {
		t.Fatalf("slow-burn recall too high too early: %v", early)
	}
}

// TestAdhocRecallStaysLow pins Figure 6c's red line: ad-hoc exploration
// does not generalize (≈20%).
func TestAdhocRecallStaysLow(t *testing.T) {
	l := AdhocLog(200, 17)
	train, hold := l.Split(100)
	iface, err := core.Generate(train, core.Options{
		Miner: interaction.Options{WindowSize: 0, LCAPrune: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	holdQ, err := hold.Parse()
	if err != nil {
		t.Fatal(err)
	}
	r := iface.Recall(holdQ)
	if r > 0.5 {
		t.Fatalf("ad-hoc recall = %v, should stay low (paper: ≈0.2)", r)
	}
	if r == 0 {
		t.Fatal("ad-hoc recall should be non-zero (the recurring template)")
	}
}

// TestCrossArchetypeRecallBimodal pins Figures 9/10: an interface from
// one client expresses same-archetype clients and nothing else.
func TestCrossArchetypeRecallBimodal(t *testing.T) {
	gen := func(arch Archetype, seed int64) *core.Interface {
		iface, err := core.Generate(SDSSClient(arch, seed, 100), core.Options{
			Miner: interaction.Options{WindowSize: 0, LCAPrune: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return iface
	}
	lk := gen(Lookup, 21)
	sameQ, _ := SDSSClient(Lookup, 99, 100).Parse()
	diffQ, _ := SDSSClient(Radial, 22, 100).Parse()
	if r := lk.Recall(sameQ); r < 0.9 {
		t.Fatalf("same-archetype recall = %v, want high", r)
	}
	if r := lk.Recall(diffQ); r > 0.1 {
		t.Fatalf("cross-archetype recall = %v, want ~0", r)
	}
}

func TestArchetypeMix22(t *testing.T) {
	mix := archetypeMix(22)
	counts := map[Archetype]int{}
	for _, a := range mix {
		counts[a]++
	}
	if counts[Lookup] != 7 || counts[Radial] != 6 || counts[Filter] != 5 || counts[SlowBurn] != 4 {
		t.Fatalf("mix = %v", counts)
	}
}

func TestSDSSFullLogSize(t *testing.T) {
	l := SDSSFullLog(1234, 1)
	if l.Len() != 1234 {
		t.Fatalf("len = %d", l.Len())
	}
}
