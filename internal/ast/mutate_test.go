package ast

import (
	"math/rand"
	"testing"
)

// randomTree builds a random small tree with list-shaped children.
func randomTree(r *rand.Rand, depth int) *Node {
	if depth == 0 || r.Intn(3) == 0 {
		return Leaf(TypeNumExpr, string(rune('0'+r.Intn(10))))
	}
	n := New(TypeProject)
	for i := 0; i < 1+r.Intn(3); i++ {
		n.Children = append(n.Children, randomTree(r, depth-1))
	}
	return n
}

// randomPath picks a random existing path in the tree (possibly root).
func randomPath(r *rand.Rand, n *Node) Path {
	p := Path{}
	for len(n.Children) > 0 && r.Intn(3) != 0 {
		i := r.Intn(len(n.Children))
		p = append(p, i)
		n = n.Children[i]
	}
	return p
}

// TestInsertDeleteInverse: deleting right after inserting at the same
// path restores the original tree.
func TestInsertDeleteInverse(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		tree := randomTree(r, 3)
		parent := randomPath(r, tree)
		node := tree.At(parent)
		idx := r.Intn(node.NumChildren() + 1)
		p := parent.Child(idx)
		sub := Leaf(TypeStrExpr, "inserted")
		inserted := tree.InsertAt(p, sub)
		if inserted == nil {
			t.Fatalf("InsertAt(%v) failed on %s", p, tree)
		}
		if got := inserted.At(p); !Equal(got, sub) {
			t.Fatalf("inserted subtree not found at %v", p)
		}
		restored := inserted.DeleteAt(p)
		if !Equal(restored, tree) {
			t.Fatalf("delete after insert did not restore:\norig: %s\ngot: %s", tree, restored)
		}
		// Original untouched throughout.
		if tree.At(p) != nil && Equal(tree.At(p), sub) {
			t.Fatal("original tree mutated")
		}
	}
}

// TestReplaceAtPreservesSize: replacing a subtree changes the size by
// exactly the size delta of the subtrees.
func TestReplaceAtPreservesSize(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 300; trial++ {
		tree := randomTree(r, 3)
		p := randomPath(r, tree)
		old := tree.At(p)
		repl := randomTree(r, 2)
		out := tree.ReplaceAt(p, repl)
		if out == nil {
			t.Fatalf("ReplaceAt(%v) failed", p)
		}
		want := tree.Size() - old.Size() + repl.Size()
		if got := out.Size(); got != want {
			t.Fatalf("size after replace = %d, want %d", got, want)
		}
		if !Equal(out.At(p), repl) {
			t.Fatal("replacement not present")
		}
	}
}

// TestHashAgreesWithEqual on random tree pairs.
func TestHashAgreesWithEqual(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var trees []*Node
	for i := 0; i < 60; i++ {
		trees = append(trees, randomTree(r, 3))
	}
	for _, a := range trees {
		for _, b := range trees {
			if Equal(a, b) && HashOf(a) != HashOf(b) {
				t.Fatalf("equal trees with different hashes:\n%s\n%s", a, b)
			}
		}
	}
}

// TestDeleteAtBounds: invalid paths return nil, valid leaf deletions
// shrink the child list.
func TestDeleteAtBounds(t *testing.T) {
	tree := New(TypeProject, Leaf(TypeNumExpr, "1"), Leaf(TypeNumExpr, "2"))
	if tree.DeleteAt(Path{}) != nil {
		t.Fatal("deleting the root is not defined")
	}
	if tree.DeleteAt(Path{5}) != nil {
		t.Fatal("out-of-range delete must fail")
	}
	out := tree.DeleteAt(Path{0})
	if out.NumChildren() != 1 || out.Child(0).Value() != "2" {
		t.Fatalf("delete produced %s", out)
	}
	if tree.NumChildren() != 2 {
		t.Fatal("original mutated")
	}
}

// TestInsertAtBounds: index may be one past the end but no further.
func TestInsertAtBounds(t *testing.T) {
	tree := New(TypeProject, Leaf(TypeNumExpr, "1"))
	if out := tree.InsertAt(Path{1}, Leaf(TypeNumExpr, "2")); out == nil || out.NumChildren() != 2 {
		t.Fatalf("append-insert failed: %v", out)
	}
	if tree.InsertAt(Path{3}, Leaf(TypeNumExpr, "2")) != nil {
		t.Fatal("insert past end+1 must fail")
	}
	if tree.InsertAt(Path{}, Leaf(TypeNumExpr, "2")) != nil {
		t.Fatal("insert at root path is not defined")
	}
}
