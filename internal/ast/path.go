package ast

import (
	"fmt"
	"strconv"
	"strings"
)

// Path identifies a node by the sequence of child indices followed from
// the root, rendered as "0/1/0" like the paper's Table 1. The empty path
// names the root.
type Path []int

// ParsePath parses the "0/1/0" rendering. The empty string and "/" both
// name the root.
func ParsePath(s string) (Path, error) {
	s = strings.Trim(s, "/")
	if s == "" {
		return Path{}, nil
	}
	parts := strings.Split(s, "/")
	p := make(Path, len(parts))
	for i, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("ast: invalid path segment %q in %q", part, s)
		}
		p[i] = v
	}
	return p, nil
}

// String renders the path as "0/1/0"; the root renders as "/".
func (p Path) String() string {
	if len(p) == 0 {
		return "/"
	}
	parts := make([]string, len(p))
	for i, v := range p {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, "/")
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether p is a (possibly equal) prefix of q, i.e.
// whether the node at p is an ancestor-or-self of the node at q.
func (p Path) IsPrefixOf(q Path) bool {
	if len(p) > len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// IsStrictPrefixOf reports whether p is a proper prefix of q.
func (p Path) IsStrictPrefixOf(q Path) bool {
	return len(p) < len(q) && p.IsPrefixOf(q)
}

// Child returns the path extended by one child index.
func (p Path) Child(i int) Path {
	c := make(Path, len(p)+1)
	copy(c, p)
	c[len(p)] = i
	return c
}

// Parent returns the path with the last segment removed; the root's
// parent is the root itself.
func (p Path) Parent() Path {
	if len(p) == 0 {
		return p
	}
	return p[:len(p)-1].Clone()
}

// Clone returns an independent copy of the path.
func (p Path) Clone() Path {
	c := make(Path, len(p))
	copy(c, p)
	return c
}

// CommonPrefix returns the longest common prefix of p and q — the path
// of the least common ancestor of the two nodes.
func CommonPrefix(p, q Path) Path {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	i := 0
	for i < n && p[i] == q[i] {
		i++
	}
	return p[:i].Clone()
}

// Compare orders paths first by pre-order position (lexicographic on
// segments) and then by length, giving a stable total order for
// deterministic output.
func (p Path) Compare(q Path) int {
	n := len(p)
	if len(q) < n {
		n = len(q)
	}
	for i := 0; i < n; i++ {
		if p[i] != q[i] {
			if p[i] < q[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(p) < len(q):
		return -1
	case len(p) > len(q):
		return 1
	}
	return 0
}
