package ast

// Node type names used by the SQL grammar. The parser produces exactly
// these; the diff and widget layers dispatch on them. The Select node
// has a fixed child layout (see the Slot* constants) so that clause
// positions — and therefore diff paths — are stable across queries that
// omit optional clauses.
const (
	TypeSelect      = "Select"      // root; fixed children: Project, From, Where, GroupBy, Having, OrderBy, Limit
	TypeProject     = "Project"     // collection of ProjClause
	TypeProjClause  = "ProjClause"  // one output expression, attr "alias" optional
	TypeFrom        = "From"        // collection of FromClause
	TypeFromClause  = "FromClause"  // one relation, attr "alias" optional
	TypeWhere       = "Where"       // zero children (absent) or one boolean expression
	TypeGroupBy     = "GroupBy"     // collection of grouping expressions
	TypeHaving      = "Having"      // zero or one boolean expression
	TypeOrderBy     = "OrderBy"     // collection of OrderClause
	TypeOrderClause = "OrderClause" // attr "dir" in {asc,desc}
	TypeLimit       = "Limit"       // zero children (absent) or one NumExpr; attr "kind" in {top,limit}

	TypeSubQuery = "SubQuery" // one Select child (derived table or IN-subquery)
	TypeTabExpr  = "TabExpr"  // terminal, value = table name (possibly qualified)
	TypeTabFunc  = "TabFunc"  // table-valued function: FuncName child + args
	TypeJoin     = "JoinExpr" // attr "kind" in {inner,left}; children: left FromClause, right FromClause, ON expression

	TypeBiExpr     = "BiExpr"      // attr "op"; two children
	TypeUniExpr    = "UniExpr"     // attr "op" (NOT, -); one child
	TypeFuncExpr   = "FuncExpr"    // FuncName child followed by argument expressions; attr "distinct" optional
	TypeFuncName   = "FuncName"    // terminal, value = function name (lower-cased)
	TypeCaseExpr   = "CaseExpr"    // optional operand child then WhenClause* then ElseClause?
	TypeWhenClause = "WhenClause"  // two children: condition/match and result
	TypeElseClause = "ElseClause"  // one child
	TypeCastExpr   = "CastExpr"    // one child; attr "as" optional target type
	TypeInExpr     = "InExpr"      // attr "not" optional; first child operand, then list items or SubQuery
	TypeBetween    = "BetweenExpr" // three children: operand, low, high; attr "not" optional
	TypeParen      = "ParenExpr"   // one child, preserved so unparse round-trips

	// DML statement nodes. These are produced only by
	// sqlparser.ParseStatement — the mining pipeline (Parse/ParseMany)
	// stays SELECT-only, so no Slot layout, widget kind or collection
	// annotation applies to them.
	TypeUpdate  = "Update"  // children: TabExpr, Set, Where (empty clause when absent)
	TypeDelete  = "Delete"  // children: TabExpr, Where (empty clause when absent)
	TypeSet     = "Set"     // collection of SetItem
	TypeSetItem = "SetItem" // attr "col" = target column; one value expression child

	TypeColExpr  = "ColExpr"  // terminal, value = column name, attr "table" optional qualifier
	TypeStrExpr  = "StrExpr"  // terminal string literal
	TypeNumExpr  = "NumExpr"  // terminal numeric literal (decimal or 0x hex), attr "fmt" = "hex" for hex
	TypeStarExpr = "StarExpr" // terminal "*", attr "table" optional
	TypeNullExpr = "NullExpr" // terminal NULL
	TypeBoolExpr = "BoolExpr" // terminal TRUE/FALSE
)

// Fixed child slots of a Select node. Optional clauses are always
// present as empty clause nodes so paths stay stable (the paper's
// example paths, e.g. Table 1's "2/0/0/1" into WHERE, assume Project=0).
const (
	SlotProject = 0
	SlotFrom    = 1
	SlotWhere   = 2
	SlotGroupBy = 3
	SlotHaving  = 4
	SlotOrderBy = 5
	SlotLimit   = 6
	NumSlots    = 7
)

// Kind is the primitive kind a widget domain is typed with (§4.3): the
// implementation distinguishes strings, numbers, and trees. Numbers can
// be cast to strings, and any kind can be cast to a tree.
type Kind int

const (
	KindTree Kind = iota
	KindString
	KindNumber
)

// String returns the short name used in the paper's Table 1 ("str",
// "num", "tree").
func (k Kind) String() string {
	switch k {
	case KindString:
		return "str"
	case KindNumber:
		return "num"
	default:
		return "tree"
	}
}

// CastableTo reports whether a domain of kind k can be used by a widget
// that requires kind want: numbers cast to strings, anything to trees.
func (k Kind) CastableTo(want Kind) bool {
	switch want {
	case KindTree:
		return true
	case KindString:
		return k == KindString || k == KindNumber
	case KindNumber:
		return k == KindNumber
	}
	return false
}

// terminalKinds is the grammar annotation mapping terminal node types
// to primitive kinds (§4.1 "Assumptions"). Column, table and function
// names are treated as string literals, matching Table 1 where
// ColExpr(sales)→ColExpr(costs) has type "str".
var terminalKinds = map[string]Kind{
	TypeStrExpr:  KindString,
	TypeColExpr:  KindString,
	TypeTabExpr:  KindString,
	TypeFuncName: KindString,
	TypeStarExpr: KindString,
	TypeNullExpr: KindString,
	TypeBoolExpr: KindString,
	TypeNumExpr:  KindNumber,
}

// KindOf returns the primitive kind of a subtree: the annotated kind for
// terminal node types, KindTree for everything else (including nil,
// which represents an added/removed subtree).
func KindOf(n *Node) Kind {
	if n == nil {
		return KindTree
	}
	if k, ok := terminalKinds[n.Type]; ok {
		return k
	}
	return KindTree
}

// collectionTypes is the grammar annotation listing node types that
// represent collections of sub-expressions (§4.1), e.g. Project is a
// collection of ProjClause nodes. Widgets such as checkbox lists model
// these.
var collectionTypes = map[string]bool{
	TypeProject: true,
	TypeFrom:    true,
	TypeGroupBy: true,
	TypeOrderBy: true,
}

// IsCollection reports whether the node type represents a collection of
// sub-expressions.
func IsCollection(typ string) bool { return collectionTypes[typ] }

// NewSelect returns a Select node with all seven clause slots present
// (empty clause nodes for absent clauses).
func NewSelect() *Node {
	return New(TypeSelect,
		New(TypeProject),
		New(TypeFrom),
		New(TypeWhere),
		New(TypeGroupBy),
		New(TypeHaving),
		New(TypeOrderBy),
		New(TypeLimit),
	)
}

// IsEmptyClause reports whether a clause node is present but empty
// (e.g. a query with no WHERE has an empty Where node in slot 2).
func IsEmptyClause(n *Node) bool {
	return n != nil && len(n.Children) == 0 && len(n.Attrs) == 0
}
