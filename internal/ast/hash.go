package ast

import (
	"hash/fnv"
	"sort"
)

// Hash is a 64-bit structural hash of a subtree. Equal subtrees have
// equal hashes; the diff and closure layers use hashes as cheap
// pre-filters and as set keys (falling back to Equal on collision where
// correctness matters).
type Hash uint64

// HashOf computes the structural hash of a subtree. A nil subtree
// (an absent/removed side of a diff) hashes to a fixed sentinel.
func HashOf(n *Node) Hash {
	h := fnv.New64a()
	writeHash(n, h)
	return Hash(h.Sum64())
}

type hasher interface {
	Write(p []byte) (int, error)
}

func writeHash(n *Node, h hasher) {
	if n == nil {
		h.Write([]byte{0xff, 0x00})
		return
	}
	h.Write([]byte{0x01})
	h.Write([]byte(n.Type))
	h.Write([]byte{0x02})
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			h.Write([]byte(k))
			h.Write([]byte{0x03})
			h.Write([]byte(n.Attrs[k]))
			h.Write([]byte{0x04})
		}
	}
	for _, c := range n.Children {
		writeHash(c, h)
	}
	h.Write([]byte{0x05})
}

// Set is a set of subtrees keyed by structural hash with collision
// verification, used for widget domains and closure membership.
type Set struct {
	buckets map[Hash][]*Node
	size    int
}

// NewSet returns an empty subtree set.
func NewSet() *Set {
	return &Set{buckets: make(map[Hash][]*Node)}
}

// Add inserts the subtree if not already present and reports whether it
// was inserted. The set stores the node pointer as-is; callers should
// pass trees they will not mutate.
func (s *Set) Add(n *Node) bool {
	h := HashOf(n)
	for _, e := range s.buckets[h] {
		if Equal(e, n) {
			return false
		}
	}
	s.buckets[h] = append(s.buckets[h], n)
	s.size++
	return true
}

// Contains reports set membership by structural equality.
func (s *Set) Contains(n *Node) bool {
	for _, e := range s.buckets[HashOf(n)] {
		if Equal(e, n) {
			return true
		}
	}
	return false
}

// Len returns the number of distinct subtrees in the set.
func (s *Set) Len() int { return s.size }

// Values returns the distinct subtrees in insertion-independent but
// deterministic order (sorted by rendered string) for stable output.
func (s *Set) Values() []*Node {
	out := make([]*Node, 0, s.size)
	for _, b := range s.buckets {
		out = append(out, b...)
	}
	sort.Slice(out, func(i, j int) bool {
		return nodeLess(out[i], out[j])
	})
	return out
}

func nodeLess(a, b *Node) bool {
	as, bs := "", ""
	if a != nil {
		as = a.String()
	}
	if b != nil {
		bs = b.String()
	}
	return as < bs
}
