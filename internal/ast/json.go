package ast

import (
	"encoding/json"
	"fmt"
)

// jsonNode is the stable wire representation of a Node.
type jsonNode struct {
	Type     string            `json:"type"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*jsonNode       `json:"children,omitempty"`
}

func toJSONNode(n *Node) *jsonNode {
	if n == nil {
		return nil
	}
	j := &jsonNode{Type: n.Type, Attrs: n.Attrs}
	for _, c := range n.Children {
		j.Children = append(j.Children, toJSONNode(c))
	}
	return j
}

func fromJSONNode(j *jsonNode) (*Node, error) {
	if j == nil {
		return nil, nil
	}
	if j.Type == "" {
		return nil, fmt.Errorf("ast: node with empty type in JSON")
	}
	n := &Node{Type: j.Type, Attrs: j.Attrs}
	for _, c := range j.Children {
		cn, err := fromJSONNode(c)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cn)
	}
	return n, nil
}

// MarshalJSON encodes the subtree as nested {type, attrs, children}
// objects, the format the HTML compiler embeds in generated pages.
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(toJSONNode(n))
}

// UnmarshalJSON decodes the nested-object format.
func (n *Node) UnmarshalJSON(data []byte) error {
	var j jsonNode
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	d, err := fromJSONNode(&j)
	if err != nil {
		return err
	}
	*n = *d
	return nil
}
