package ast

import (
	"fmt"
	"strings"
)

// SQL renders the subtree back to SQL text. Rendering a tree produced by
// internal/sqlparser and re-parsing it yields a structurally equal tree
// (property-tested), which is what lets the generated interface hand
// executable SQL to exec().
func SQL(n *Node) string {
	var b strings.Builder
	writeSQL(&b, n)
	return b.String()
}

func writeSQL(b *strings.Builder, n *Node) {
	if n == nil {
		return
	}
	switch n.Type {
	case TypeSelect:
		writeSelect(b, n)
	case TypeProject:
		writeList(b, n.Children)
	case TypeProjClause:
		writeSQL(b, n.Child(0))
		if a := n.Attr("alias"); a != "" {
			b.WriteString(" AS ")
			b.WriteString(a)
		}
	case TypeFrom:
		writeList(b, n.Children)
	case TypeFromClause:
		writeSQL(b, n.Child(0))
		if a := n.Attr("alias"); a != "" {
			b.WriteString(" AS ")
			b.WriteString(a)
		}
	case TypeWhere, TypeHaving, TypeElseClause:
		writeSQL(b, n.Child(0))
	case TypeParen:
		b.WriteByte('(')
		writeSQL(b, n.Child(0))
		b.WriteByte(')')
	case TypeGroupBy, TypeOrderBy:
		writeList(b, n.Children)
	case TypeOrderClause:
		writeSQL(b, n.Child(0))
		if d := n.Attr("dir"); d == "desc" {
			b.WriteString(" DESC")
		}
	case TypeLimit:
		writeSQL(b, n.Child(0))
	case TypeSubQuery:
		b.WriteByte('(')
		writeSQL(b, n.Child(0))
		b.WriteByte(')')
	case TypeJoin:
		writeSQL(b, n.Child(0))
		if n.Attr("kind") == "left" {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		writeSQL(b, n.Child(1))
		b.WriteString(" ON ")
		writeSQL(b, n.Child(2))
	case TypeUpdate:
		b.WriteString("UPDATE ")
		writeSQL(b, n.Child(0))
		b.WriteString(" SET ")
		writeSQL(b, n.Child(1))
		if w := n.Child(2); !IsEmptyClause(w) {
			b.WriteString(" WHERE ")
			writeSQL(b, w)
		}
	case TypeDelete:
		b.WriteString("DELETE FROM ")
		writeSQL(b, n.Child(0))
		if w := n.Child(1); !IsEmptyClause(w) {
			b.WriteString(" WHERE ")
			writeSQL(b, w)
		}
	case TypeSet:
		writeList(b, n.Children)
	case TypeSetItem:
		b.WriteString(n.Attr("col"))
		b.WriteString(" = ")
		writeSQL(b, n.Child(0))
	case TypeTabExpr:
		b.WriteString(n.Value())
	case TypeTabFunc:
		writeFunc(b, n)
	case TypeBiExpr:
		writeSQL(b, n.Child(0))
		op := n.Attr("op")
		if isWordOp(op) {
			b.WriteByte(' ')
			b.WriteString(strings.ToUpper(op))
			b.WriteByte(' ')
		} else {
			b.WriteString(" " + op + " ")
		}
		writeSQL(b, n.Child(1))
	case TypeUniExpr:
		op := n.Attr("op")
		if isWordOp(op) {
			b.WriteString(strings.ToUpper(op))
			b.WriteByte(' ')
		} else {
			b.WriteString(op)
		}
		writeSQL(b, n.Child(0))
	case TypeFuncExpr:
		writeFunc(b, n)
	case TypeFuncName:
		b.WriteString(strings.ToUpper(n.Value()))
	case TypeCastExpr:
		b.WriteString("CAST(")
		writeSQL(b, n.Child(0))
		if as := n.Attr("as"); as != "" {
			b.WriteString(" AS ")
			b.WriteString(as)
		}
		b.WriteByte(')')
	case TypeCaseExpr:
		writeCase(b, n)
	case TypeWhenClause:
		b.WriteString("WHEN ")
		writeSQL(b, n.Child(0))
		b.WriteString(" THEN ")
		writeSQL(b, n.Child(1))
	case TypeInExpr:
		writeSQL(b, n.Child(0))
		if n.Attr("not") == "true" {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		writeList(b, n.Children[1:])
		b.WriteByte(')')
	case TypeBetween:
		writeSQL(b, n.Child(0))
		if n.Attr("not") == "true" {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		writeSQL(b, n.Child(1))
		b.WriteString(" AND ")
		writeSQL(b, n.Child(2))
	case TypeColExpr:
		if t := n.Attr("table"); t != "" {
			b.WriteString(t)
			b.WriteByte('.')
		}
		b.WriteString(n.Value())
	case TypeStrExpr:
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(n.Value(), "'", "''"))
		b.WriteByte('\'')
	case TypeNumExpr:
		b.WriteString(n.Value())
	case TypeStarExpr:
		if t := n.Attr("table"); t != "" {
			b.WriteString(t)
			b.WriteByte('.')
		}
		b.WriteByte('*')
	case TypeNullExpr:
		b.WriteString("NULL")
	case TypeBoolExpr:
		b.WriteString(strings.ToUpper(n.Value()))
	default:
		fmt.Fprintf(b, "/*?%s*/", n.Type)
	}
}

func writeSelect(b *strings.Builder, n *Node) {
	b.WriteString("SELECT ")
	if n.Attr("distinct") == "true" {
		b.WriteString("DISTINCT ")
	}
	if lim := n.Child(SlotLimit); !IsEmptyClause(lim) && lim.Attr("kind") == "top" {
		b.WriteString("TOP ")
		writeSQL(b, lim)
		b.WriteByte(' ')
	}
	writeSQL(b, n.Child(SlotProject))
	if f := n.Child(SlotFrom); !IsEmptyClause(f) {
		b.WriteString(" FROM ")
		writeSQL(b, f)
	}
	if w := n.Child(SlotWhere); !IsEmptyClause(w) {
		b.WriteString(" WHERE ")
		writeSQL(b, w)
	}
	if g := n.Child(SlotGroupBy); !IsEmptyClause(g) {
		b.WriteString(" GROUP BY ")
		writeSQL(b, g)
	}
	if h := n.Child(SlotHaving); !IsEmptyClause(h) {
		b.WriteString(" HAVING ")
		writeSQL(b, h)
	}
	if o := n.Child(SlotOrderBy); !IsEmptyClause(o) {
		b.WriteString(" ORDER BY ")
		writeSQL(b, o)
	}
	if lim := n.Child(SlotLimit); !IsEmptyClause(lim) && lim.Attr("kind") != "top" {
		b.WriteString(" LIMIT ")
		writeSQL(b, lim)
	}
}

func writeFunc(b *strings.Builder, n *Node) {
	name := n.Child(0)
	b.WriteString(strings.ToUpper(name.Value()))
	b.WriteByte('(')
	if n.Attr("distinct") == "true" {
		b.WriteString("DISTINCT ")
	}
	writeList(b, n.Children[1:])
	b.WriteByte(')')
}

func writeCase(b *strings.Builder, n *Node) {
	b.WriteString("CASE")
	for _, c := range n.Children {
		switch c.Type {
		case TypeWhenClause:
			b.WriteByte(' ')
			writeSQL(b, c)
		case TypeElseClause:
			b.WriteString(" ELSE ")
			writeSQL(b, c)
		default: // the optional operand
			b.WriteByte(' ')
			writeSQL(b, c)
		}
	}
	b.WriteString(" END")
}

func writeList(b *strings.Builder, items []*Node) {
	for i, c := range items {
		if i > 0 {
			b.WriteString(", ")
		}
		writeSQL(b, c)
	}
}

// isWordOp reports whether a binary/unary operator renders as a keyword
// (AND, OR, NOT, LIKE, IS, IS NOT) rather than a symbol.
func isWordOp(op string) bool {
	switch strings.ToLower(op) {
	case "and", "or", "not", "like", "is", "is not", "not like":
		return true
	}
	return false
}
