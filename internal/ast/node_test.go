package ast

import (
	"encoding/json"
	"testing"
)

func sampleTree() *Node {
	return New(TypeSelect,
		New(TypeProject,
			New(TypeProjClause, Leaf(TypeColExpr, "cty")),
			New(TypeProjClause, Leaf(TypeColExpr, "sales")),
		),
		New(TypeFrom, New(TypeFromClause, Leaf(TypeTabExpr, "T"))),
		New(TypeWhere,
			NewAttr(TypeBiExpr, "op", "=",
				Leaf(TypeColExpr, "cty"),
				Leaf(TypeStrExpr, "USA"))),
		New(TypeGroupBy),
		New(TypeHaving),
		New(TypeOrderBy),
		New(TypeLimit),
	)
}

func TestCloneIsDeepAndEqual(t *testing.T) {
	a := sampleTree()
	b := a.Clone()
	if !Equal(a, b) {
		t.Fatalf("clone not equal: %s vs %s", a, b)
	}
	b.Children[0].Children[0].Children[0].Attrs["value"] = "other"
	if Equal(a, b) {
		t.Fatal("mutating clone affected original (shallow copy)")
	}
	if a.Children[0].Children[0].Children[0].Value() != "cty" {
		t.Fatal("original mutated through clone")
	}
}

func TestEqualNilHandling(t *testing.T) {
	if !Equal(nil, nil) {
		t.Fatal("nil != nil")
	}
	if Equal(nil, sampleTree()) || Equal(sampleTree(), nil) {
		t.Fatal("nil equal to non-nil")
	}
}

func TestLabelEqual(t *testing.T) {
	a := NewAttr(TypeBiExpr, "op", "=", Leaf(TypeColExpr, "x"))
	b := NewAttr(TypeBiExpr, "op", "=", Leaf(TypeColExpr, "y"))
	c := NewAttr(TypeBiExpr, "op", ">", Leaf(TypeColExpr, "x"))
	if !LabelEqual(a, b) {
		t.Fatal("labels with same type+attrs should match regardless of children")
	}
	if LabelEqual(a, c) {
		t.Fatal("different op attr should break label equality")
	}
}

func TestSizeDepthLeaves(t *testing.T) {
	tr := sampleTree()
	if got := tr.Size(); got != 17 {
		t.Fatalf("Size = %d, want 17", got)
	}
	if got := tr.Depth(); got != 4 {
		t.Fatalf("Depth = %d, want 4", got)
	}
	if got := tr.NumLeaves(); got != 9 {
		t.Fatalf("NumLeaves = %d, want 9", got)
	}
	var nilNode *Node
	if nilNode.Size() != 0 || nilNode.Depth() != 0 || nilNode.NumLeaves() != 0 {
		t.Fatal("nil node metrics should be zero")
	}
}

func TestAtAndWalkAgree(t *testing.T) {
	tr := sampleTree()
	count := 0
	tr.Walk(func(n *Node, p Path) bool {
		count++
		if got := tr.At(p); got != n {
			t.Fatalf("At(%s) = %v, want node %v", p, got, n)
		}
		return true
	})
	if count != tr.Size() {
		t.Fatalf("walk visited %d nodes, size is %d", count, tr.Size())
	}
}

func TestWalkPrune(t *testing.T) {
	tr := sampleTree()
	count := 0
	tr.Walk(func(n *Node, p Path) bool {
		count++
		return n.Type != TypeProject // prune the projection subtree
	})
	// Pruning Project skips its 4 descendants.
	if count != tr.Size()-4 {
		t.Fatalf("pruned walk visited %d, want %d", count, tr.Size()-4)
	}
}

func TestReplaceAt(t *testing.T) {
	tr := sampleTree()
	p := Path{SlotWhere, 0, 1} // the StrExpr(USA)
	if got := tr.At(p); got.Value() != "USA" {
		t.Fatalf("precondition: At(%s).Value = %q", p, got.Value())
	}
	repl := Leaf(TypeStrExpr, "EUR")
	out := tr.ReplaceAt(p, repl)
	if out == nil {
		t.Fatal("ReplaceAt returned nil")
	}
	if got := out.At(p).Value(); got != "EUR" {
		t.Fatalf("replacement not applied: %q", got)
	}
	if got := tr.At(p).Value(); got != "USA" {
		t.Fatal("ReplaceAt mutated the original tree")
	}
	// Everything off the replaced path is structurally unchanged.
	if !Equal(out.Child(SlotProject), tr.Child(SlotProject)) {
		t.Fatal("unrelated subtree changed")
	}
}

func TestReplaceAtRoot(t *testing.T) {
	tr := sampleTree()
	repl := Leaf(TypeStrExpr, "x")
	out := tr.ReplaceAt(Path{}, repl)
	if !Equal(out, repl) {
		t.Fatalf("root replacement failed: %s", out)
	}
}

func TestReplaceAtInvalidPath(t *testing.T) {
	tr := sampleTree()
	if out := tr.ReplaceAt(Path{99}, Leaf(TypeStrExpr, "x")); out != nil {
		t.Fatalf("invalid path should return nil, got %s", out)
	}
	if out := tr.ReplaceAt(Path{0, 0, 0, 5, 1}, Leaf(TypeStrExpr, "x")); out != nil {
		t.Fatalf("deep invalid path should return nil, got %s", out)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTree()
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Node
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !Equal(tr, &back) {
		t.Fatalf("JSON round trip changed tree:\n%s\n%s", tr, &back)
	}
}

func TestStringRendering(t *testing.T) {
	n := NewAttr(TypeBiExpr, "op", "=",
		Leaf(TypeColExpr, "cty"), Leaf(TypeStrExpr, "USA"))
	want := "(BiExpr{op:=} (ColExpr{value:cty}) (StrExpr{value:USA}))"
	if got := n.String(); got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
