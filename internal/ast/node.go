// Package ast defines the abstract-syntax-tree model that Precision
// Interfaces operates on (§4.1 of the paper). Each node consists of a
// type, a set of attribute-value pairs, and an ordered list of children.
//
// The package also carries the "minimal grammar annotations" the paper
// assumes: a mapping from terminal node types to primitive kinds
// (string/number) and the set of node types that represent collections
// of sub-expressions.
package ast

import (
	"sort"
	"strings"
)

// Node is a single AST node: a type, attribute-value pairs, and an
// ordered list of children. Nodes are treated as immutable once built;
// all transformations copy (see ReplaceAt and Clone).
type Node struct {
	Type     string
	Attrs    map[string]string
	Children []*Node
}

// New returns a node of the given type with the given children.
func New(typ string, children ...*Node) *Node {
	return &Node{Type: typ, Children: children}
}

// NewAttr returns a node with a single attribute set.
func NewAttr(typ, key, val string, children ...*Node) *Node {
	return &Node{Type: typ, Attrs: map[string]string{key: val}, Children: children}
}

// Leaf returns a terminal node carrying a "value" attribute, the common
// shape for literals and identifiers (StrExpr, NumExpr, ColExpr, ...).
func Leaf(typ, value string) *Node {
	return NewAttr(typ, "value", value)
}

// Value returns the node's "value" attribute ("" when absent).
func (n *Node) Value() string {
	if n == nil || n.Attrs == nil {
		return ""
	}
	return n.Attrs["value"]
}

// Attr returns the named attribute ("" when absent).
func (n *Node) Attr(key string) string {
	if n == nil || n.Attrs == nil {
		return ""
	}
	return n.Attrs[key]
}

// SetAttr returns n after setting an attribute, allocating the map lazily.
// It is intended for use while constructing a tree, before it is shared.
func (n *Node) SetAttr(key, val string) *Node {
	if n.Attrs == nil {
		n.Attrs = make(map[string]string, 1)
	}
	n.Attrs[key] = val
	return n
}

// NumChildren returns the number of children (0 for nil).
func (n *Node) NumChildren() int {
	if n == nil {
		return 0
	}
	return len(n.Children)
}

// Child returns the i-th child or nil when out of range.
func (n *Node) Child(i int) *Node {
	if n == nil || i < 0 || i >= len(n.Children) {
		return nil
	}
	return n.Children[i]
}

// Clone returns a deep copy of the subtree rooted at n.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Type: n.Type}
	if len(n.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return c
}

// Equal reports deep structural equality of two subtrees, including
// attributes. Two nil nodes are equal.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Type != b.Type || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// LabelEqual reports whether two nodes have the same label, i.e. the
// same type and the same attribute set, ignoring children. The ordered
// tree matcher maps node pairs with equal labels.
func LabelEqual(a, b *Node) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a.Type != b.Type || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for k, v := range a.Attrs {
		if b.Attrs[k] != v {
			return false
		}
	}
	return true
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// NumLeaves returns the number of leaves in the subtree.
func (n *Node) NumLeaves() int {
	if n == nil {
		return 0
	}
	if len(n.Children) == 0 {
		return 1
	}
	s := 0
	for _, c := range n.Children {
		s += c.NumLeaves()
	}
	return s
}

// Walk visits the subtree in pre-order, calling fn with each node and
// its path from n. Returning false from fn prunes the node's subtree.
func (n *Node) Walk(fn func(node *Node, path Path) bool) {
	var rec func(nd *Node, p Path)
	rec = func(nd *Node, p Path) {
		if nd == nil || !fn(nd, p) {
			return
		}
		for i, c := range nd.Children {
			cp := make(Path, len(p)+1)
			copy(cp, p)
			cp[len(p)] = i
			rec(c, cp)
		}
	}
	rec(n, Path{})
}

// At returns the node reached by following path from n, or nil when the
// path does not exist.
func (n *Node) At(p Path) *Node {
	cur := n
	for _, i := range p {
		cur = cur.Child(i)
		if cur == nil {
			return nil
		}
	}
	return cur
}

// ReplaceAt returns a copy of the tree rooted at n with the subtree at
// path p replaced by sub (which may be nil, representing removal of an
// optional clause body when the grammar allows it). The original tree is
// not modified. It returns nil if the path is invalid.
func (n *Node) ReplaceAt(p Path, sub *Node) *Node {
	if len(p) == 0 {
		return sub.Clone()
	}
	if n == nil {
		return nil
	}
	idx := p[0]
	if idx < 0 || idx >= len(n.Children) {
		return nil
	}
	c := &Node{Type: n.Type}
	if len(n.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	c.Children = make([]*Node, len(n.Children))
	copy(c.Children, n.Children)
	rep := n.Children[idx].ReplaceAt(p[1:], sub)
	if rep == nil && len(p) > 1 {
		return nil
	}
	c.Children[idx] = rep
	// Dropping a child entirely (rep == nil at the final hop) is modeled
	// by an empty clause node, never a nil pointer, so normalize.
	if c.Children[idx] == nil {
		c.Children[idx] = &Node{Type: n.Children[idx].Type}
	}
	return c
}

// InsertAt returns a copy of the tree with sub inserted as a new child
// of the node at p[:len(p)-1], at child index p[len(p)-1] (which may be
// one past the current last child). Returns nil if the path is invalid.
func (n *Node) InsertAt(p Path, sub *Node) *Node {
	if len(p) == 0 || n == nil {
		return nil
	}
	c := n.shallowCopy()
	idx := p[0]
	if len(p) == 1 {
		if idx < 0 || idx > len(n.Children) {
			return nil
		}
		c.Children = make([]*Node, 0, len(n.Children)+1)
		c.Children = append(c.Children, n.Children[:idx]...)
		c.Children = append(c.Children, sub.Clone())
		c.Children = append(c.Children, n.Children[idx:]...)
		return c
	}
	if idx < 0 || idx >= len(n.Children) {
		return nil
	}
	child := n.Children[idx].InsertAt(p[1:], sub)
	if child == nil {
		return nil
	}
	c.Children = make([]*Node, len(n.Children))
	copy(c.Children, n.Children)
	c.Children[idx] = child
	return c
}

// DeleteAt returns a copy of the tree with the child at path p removed
// from its parent's child list. Returns nil if the path is invalid.
func (n *Node) DeleteAt(p Path) *Node {
	if len(p) == 0 || n == nil {
		return nil
	}
	idx := p[0]
	if idx < 0 || idx >= len(n.Children) {
		return nil
	}
	c := n.shallowCopy()
	if len(p) == 1 {
		c.Children = make([]*Node, 0, len(n.Children)-1)
		c.Children = append(c.Children, n.Children[:idx]...)
		c.Children = append(c.Children, n.Children[idx+1:]...)
		return c
	}
	child := n.Children[idx].DeleteAt(p[1:])
	if child == nil {
		return nil
	}
	c.Children = make([]*Node, len(n.Children))
	copy(c.Children, n.Children)
	c.Children[idx] = child
	return c
}

// shallowCopy copies the node header (type and attrs) without children.
func (n *Node) shallowCopy() *Node {
	c := &Node{Type: n.Type}
	if len(n.Attrs) > 0 {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	return c
}

// attrString renders attributes deterministically (sorted by key).
func (n *Node) attrString() string {
	if len(n.Attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(n.Attrs))
	for k := range n.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte(':')
		b.WriteString(n.Attrs[k])
	}
	return b.String()
}

// String renders the subtree in a compact s-expression form useful in
// tests and error messages, e.g. (BiExpr{op:=} (ColExpr{value:cty}) (StrExpr{value:USA})).
func (n *Node) String() string {
	if n == nil {
		return "<nil>"
	}
	var b strings.Builder
	n.writeString(&b)
	return b.String()
}

func (n *Node) writeString(b *strings.Builder) {
	b.WriteByte('(')
	b.WriteString(n.Type)
	if a := n.attrString(); a != "" {
		b.WriteByte('{')
		b.WriteString(a)
		b.WriteByte('}')
	}
	for _, c := range n.Children {
		b.WriteByte(' ')
		if c == nil {
			b.WriteString("<nil>")
			continue
		}
		c.writeString(b)
	}
	b.WriteByte(')')
}
