package ast

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParsePath(t *testing.T) {
	cases := []struct {
		in   string
		want Path
		err  bool
	}{
		{"", Path{}, false},
		{"/", Path{}, false},
		{"0/1/0", Path{0, 1, 0}, false},
		{"2/0/0/1", Path{2, 0, 0, 1}, false},
		{"0/1/", Path{0, 1}, false},
		{"a/b", nil, true},
		{"0/-1", nil, true},
	}
	for _, c := range cases {
		got, err := ParsePath(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParsePath(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePath(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("ParsePath(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPathStringRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		p := make(Path, len(raw))
		for i, v := range raw {
			p[i] = int(v)
		}
		back, err := ParsePath(p.String())
		return err == nil && back.Equal(p)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPathPrefix(t *testing.T) {
	p := Path{0, 1}
	q := Path{0, 1, 0}
	if !p.IsPrefixOf(q) || !p.IsStrictPrefixOf(q) {
		t.Fatal("0/1 should be a strict prefix of 0/1/0")
	}
	if !p.IsPrefixOf(p) {
		t.Fatal("a path is a prefix of itself")
	}
	if p.IsStrictPrefixOf(p) {
		t.Fatal("a path is not a strict prefix of itself")
	}
	if q.IsPrefixOf(p) {
		t.Fatal("longer path cannot prefix shorter")
	}
	if (Path{0, 2}).IsPrefixOf(q) {
		t.Fatal("diverging path is not a prefix")
	}
}

func TestCommonPrefix(t *testing.T) {
	got := CommonPrefix(Path{0, 1, 0}, Path{0, 1, 2, 3})
	if !got.Equal(Path{0, 1}) {
		t.Fatalf("CommonPrefix = %v", got)
	}
	if got := CommonPrefix(Path{1}, Path{2}); len(got) != 0 {
		t.Fatalf("disjoint paths share only the root, got %v", got)
	}
}

func TestPathChildParent(t *testing.T) {
	p := Path{0, 1}
	c := p.Child(3)
	if !c.Equal(Path{0, 1, 3}) {
		t.Fatalf("Child = %v", c)
	}
	if !c.Parent().Equal(p) {
		t.Fatalf("Parent = %v", c.Parent())
	}
	root := Path{}
	if !root.Parent().Equal(root) {
		t.Fatal("root parent should be root")
	}
}

func TestPathCompare(t *testing.T) {
	cases := []struct {
		a, b Path
		want int
	}{
		{Path{}, Path{}, 0},
		{Path{}, Path{0}, -1},
		{Path{0}, Path{}, 1},
		{Path{0, 1}, Path{0, 2}, -1},
		{Path{1}, Path{0, 9}, 1},
		{Path{0, 1}, Path{0, 1}, 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHashEqualityContract(t *testing.T) {
	a := sampleTree()
	b := sampleTree()
	if HashOf(a) != HashOf(b) {
		t.Fatal("equal trees must hash equal")
	}
	c := a.Clone()
	c.Children[SlotWhere].Children[0].Children[1].Attrs["value"] = "EUR"
	if HashOf(a) == HashOf(c) {
		t.Fatal("distinct literals produced identical hashes (bad mixing)")
	}
	if HashOf(nil) == HashOf(a) {
		t.Fatal("nil hash collides with real tree")
	}
}

func TestSetSemantics(t *testing.T) {
	s := NewSet()
	if !s.Add(Leaf(TypeStrExpr, "USA")) {
		t.Fatal("first add should insert")
	}
	if s.Add(Leaf(TypeStrExpr, "USA")) {
		t.Fatal("duplicate add should not insert")
	}
	s.Add(Leaf(TypeStrExpr, "EUR"))
	s.Add(nil) // absent-subtree sentinel is a legal domain member
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(Leaf(TypeStrExpr, "EUR")) || s.Contains(Leaf(TypeStrExpr, "JPN")) {
		t.Fatal("Contains is wrong")
	}
	if !s.Contains(nil) {
		t.Fatal("set should contain nil sentinel after adding it")
	}
	vals := s.Values()
	if len(vals) != 3 {
		t.Fatalf("Values returned %d items", len(vals))
	}
}

func TestKindOf(t *testing.T) {
	cases := []struct {
		n    *Node
		want Kind
	}{
		{Leaf(TypeStrExpr, "x"), KindString},
		{Leaf(TypeColExpr, "sales"), KindString},
		{Leaf(TypeTabExpr, "T"), KindString},
		{Leaf(TypeNumExpr, "42"), KindNumber},
		{NewAttr(TypeBiExpr, "op", "="), KindTree},
		{nil, KindTree},
	}
	for _, c := range cases {
		if got := KindOf(c.n); got != c.want {
			t.Errorf("KindOf(%s) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestKindCasts(t *testing.T) {
	// Numbers cast to strings; everything casts to trees; strings do not
	// cast to numbers (§4.3).
	if !KindNumber.CastableTo(KindString) || !KindNumber.CastableTo(KindTree) {
		t.Fatal("number casts to string and tree")
	}
	if KindString.CastableTo(KindNumber) {
		t.Fatal("string must not cast to number")
	}
	if !KindTree.CastableTo(KindTree) || KindTree.CastableTo(KindString) {
		t.Fatal("tree casts only to tree")
	}
}

func TestNewSelectShape(t *testing.T) {
	s := NewSelect()
	if len(s.Children) != NumSlots {
		t.Fatalf("NewSelect has %d children, want %d", len(s.Children), NumSlots)
	}
	for i, c := range s.Children {
		if !IsEmptyClause(c) {
			t.Fatalf("slot %d not empty: %s", i, c)
		}
	}
}
