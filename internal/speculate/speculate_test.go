package speculate

import (
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/schema"
	"repro/internal/sqlparser"
)

func generate(t *testing.T, sqls ...string) *core.Interface {
	t.Helper()
	iface, err := core.Generate(qlog.FromSQL(sqls...), core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return iface
}

// TestDependenciesFig5d reproduces the Figure 5d relationship: the TOP
// value slider is only active while the TOP toggle is on.
func TestDependenciesFig5d(t *testing.T) {
	iface := generate(t,
		"SELECT g.objID FROM Galaxy g",
		"SELECT TOP 1 g.objID FROM Galaxy g",
		"SELECT TOP 10 g.objID FROM Galaxy g")
	deps := Dependencies(iface)
	if len(deps) != 1 {
		t.Fatalf("dependencies = %v, want exactly one (slider on toggle)", deps)
	}
	d := deps[0]
	toggle := iface.Widgets[d.On]
	slider := iface.Widgets[d.Widget]
	if toggle.Type.Name != "toggle-button" || slider.Type.Name != "slider" {
		t.Fatalf("dependency direction wrong: %s depends on %s",
			slider.Type.Name, toggle.Type.Name)
	}
	// Only the TOP-present option supports the slider.
	if len(d.ActiveOptions) != 1 {
		t.Fatalf("active options = %v, want exactly the TOP-present one", d.ActiveOptions)
	}
	v := toggle.Domain.Values()[d.ActiveOptions[0]]
	if v == nil || v.NumChildren() == 0 {
		t.Fatalf("active option should be the populated Limit subtree, got %v", v)
	}
}

// TestDependenciesFig5e: the subquery toggle controls the inner
// projection widget and the inner predicate slider.
func TestDependenciesFig5e(t *testing.T) {
	iface := generate(t,
		"SELECT * FROM T",
		"SELECT * FROM (SELECT a FROM T WHERE b > 10)",
		"SELECT * FROM (SELECT a FROM T WHERE b > 20)",
		"SELECT * FROM (SELECT b FROM T WHERE b > 20)")
	deps := Dependencies(iface)
	if len(deps) != 2 {
		t.Fatalf("dependencies = %v, want 2 (both inner widgets on the toggle)", deps)
	}
	for _, d := range deps {
		if iface.Widgets[d.On].Type.Name != "toggle-button" {
			t.Fatalf("controller should be the subquery toggle, got %s",
				iface.Widgets[d.On].Type.Name)
		}
	}
}

func TestNoDependenciesForFlatInterface(t *testing.T) {
	iface := generate(t,
		"SELECT a FROM t WHERE x = 1",
		"SELECT a FROM t WHERE x = 2",
		"SELECT a FROM t WHERE x = 9")
	if deps := Dependencies(iface); len(deps) != 0 {
		t.Fatalf("flat interface should have no dependencies, got %v", deps)
	}
}

// TestVerifyFindsCrossTableConflicts: the classic Appendix D mixup — a
// table option combined with another table's attribute — is flagged as
// a pairwise conflict.
func TestVerifyFindsCrossTableConflicts(t *testing.T) {
	// Each consecutive pair changes exactly one component, so the
	// mapper keeps independent projection/table/id widgets. The log
	// contains (tempNo, SpecLineIndex), (ew, SpecLineIndex) and
	// (tempNo, XCRedshift) but never (ew, XCRedshift): each option is
	// individually valid from q0, and exactly that cross-product pair
	// violates the schema.
	log := qlog.FromSQL(
		"SELECT tempNo FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT ew FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT tempNo FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT tempNo FROM XCRedshift WHERE specObjId = 0x10",
		"SELECT tempNo FROM XCRedshift WHERE specObjId = 0x90")
	iface := generate(t, log.SQLs()...)
	queries, err := log.Parse()
	if err != nil {
		t.Fatal(err)
	}
	catalog := schema.InferFromQueries(queries)
	rep := Verify(iface, catalog, 0)
	if rep.Checked == 0 || rep.Valid == 0 {
		t.Fatalf("verification did not run: %+v", rep)
	}
	if len(rep.Conflicts) == 0 {
		t.Fatalf("expected cross-table conflicts, got none (report %+v)", rep)
	}
	// Every conflict involves two different widgets.
	for _, c := range rep.Conflicts {
		if c[0].Widget == c[1].Widget {
			t.Fatalf("conflict within one widget: %v", c)
		}
	}
}

func TestVerifyCleanInterfaceHasNoConflicts(t *testing.T) {
	iface := generate(t,
		"SELECT ew FROM SpecLineIndex WHERE specObjId = 0x10",
		"SELECT ew FROM SpecLineIndex WHERE specObjId = 0x20",
		"SELECT ew FROM SpecLineIndex WHERE specObjId = 0x90")
	queries, _ := qlog.FromSQL("SELECT ew FROM SpecLineIndex WHERE specObjId = 0x10").Parse()
	catalog := schema.InferFromQueries(queries)
	rep := Verify(iface, catalog, 0)
	if len(rep.BadOptions) != 0 || len(rep.Conflicts) != 0 {
		t.Fatalf("single-analysis interface should verify clean: %+v", rep)
	}
	if rep.Valid != rep.Checked {
		t.Fatalf("valid %d != checked %d", rep.Valid, rep.Checked)
	}
}

func TestVerifyPairCap(t *testing.T) {
	iface := generate(t,
		"SELECT a FROM t WHERE x = 1 AND name = 'p'",
		"SELECT a FROM t WHERE x = 2 AND name = 'q'",
		"SELECT a FROM t WHERE x = 9 AND name = 'r'",
		"SELECT a FROM t WHERE x = 4 AND name = 'p'",
		"SELECT a FROM t WHERE x = 7 AND name = 'q'")
	queries, _ := qlog.FromSQL("SELECT a FROM t WHERE x = 1 AND name = 'p'").Parse()
	catalog := schema.InferFromQueries(queries)
	full := Verify(iface, catalog, 0)
	capped := Verify(iface, catalog, 1)
	if capped.Checked >= full.Checked {
		t.Fatalf("cap had no effect: %d vs %d", capped.Checked, full.Checked)
	}
}

// TestPrecompute executes the closure of a small interface and caches
// results.
func TestPrecompute(t *testing.T) {
	iface := generate(t,
		"SELECT cty, SUM(sales) FROM t WHERE x > 1 GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 3 GROUP BY cty",
		"SELECT cty, SUM(sales) FROM t WHERE x > 7 GROUP BY cty")
	db := engine.TinyDB()
	pre := Precompute(iface, db, 100)
	if pre.Len() == 0 {
		t.Fatalf("nothing precomputed (failed=%d)", pre.Failed)
	}
	// The initial query must be cached and retrievable.
	q := sqlparser.MustParse("SELECT cty, SUM(sales) FROM t WHERE x > 1 GROUP BY cty")
	res, ok := pre.Get(q)
	if !ok {
		t.Fatal("initial query missing from cache")
	}
	if len(res.Cols) != 2 {
		t.Fatalf("cached result cols = %v", res.Cols)
	}
	if _, ok := pre.Get(sqlparser.MustParse("SELECT zzz FROM t")); ok {
		t.Fatal("cache hit for query outside the closure")
	}
}
