// Package speculate implements the §4.5 discussion: "One solution is to
// speculatively parse and execute queries in the interface's closure,
// and visually disallow interactions that lead to these ASTs. If the
// space of queries is small, this can be a way to both verify and
// pre-compute results for performance purposes."
//
// Three facilities:
//
//   - Dependencies: detect multi-level widget relationships — a widget
//     whose path only exists under some options of an ancestor widget
//     (Figure 5d: "the slider is only active when the TOP clause is
//     enabled");
//   - Verify: walk the closure, validate each query against a schema
//     catalog, and report which single-widget options and which
//     pairwise option combinations always produce invalid queries, so
//     the interface can disable them;
//   - Precompute: execute closure queries against the in-memory engine
//     and cache the results keyed by query hash.
package speculate

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schema"
)

// Dependency records that a widget is only meaningful while an ancestor
// widget is in one of the supporting states.
type Dependency struct {
	// Widget is the dependent widget's index in the interface.
	Widget int
	// On is the controlling ancestor widget's index.
	On int
	// ActiveOptions are the indices (into the ancestor's Domain.Values)
	// whose subtrees contain the dependent widget's path; with the
	// ancestor in any other state the dependent widget has nothing to
	// modify and should be disabled.
	ActiveOptions []int
}

// Dependencies detects ancestor/descendant widget relationships in an
// interface. A dependency is reported when the ancestor has at least
// one option that does NOT contain the descendant's relative path
// (otherwise the descendant is always active and no dependency exists).
func Dependencies(iface *core.Interface) []Dependency {
	var out []Dependency
	for bi, wb := range iface.Widgets {
		for ai, wa := range iface.Widgets {
			if ai == bi || !wa.Path.IsStrictPrefixOf(wb.Path) {
				continue
			}
			rel := wb.Path[len(wa.Path):]
			var active []int
			missing := false
			for oi, v := range wa.Domain.Values() {
				if v != nil && v.At(rel) != nil {
					active = append(active, oi)
				} else {
					missing = true
				}
			}
			if missing && len(active) > 0 {
				out = append(out, Dependency{Widget: bi, On: ai, ActiveOptions: active})
			}
		}
	}
	return out
}

// OptionRef names one option of one widget.
type OptionRef struct {
	Widget, Option int
}

func (o OptionRef) String() string { return fmt.Sprintf("w%d#%d", o.Widget, o.Option) }

// Report is the result of speculative closure verification.
type Report struct {
	// Checked and Valid count the examined closure queries.
	Checked, Valid int
	// BadOptions are single options that are invalid even applied alone
	// to the initial query.
	BadOptions []OptionRef
	// Conflicts are option pairs (from different widgets) that produce
	// schema-invalid queries when combined, although each option is
	// individually fine. The generated page disables the second option
	// while the first is selected.
	Conflicts [][2]OptionRef
}

// Verify speculatively checks the interface's closure against a schema
// catalog. Single options are checked exhaustively; pairs are checked
// exhaustively up to maxPairs combinations (0 = unlimited).
func Verify(iface *core.Interface, catalog *schema.Catalog, maxPairs int) Report {
	var rep Report
	valid := func(q *ast.Node) bool {
		rep.Checked++
		ok := q != nil && catalog.Valid(q)
		if ok {
			rep.Valid++
		}
		return ok
	}

	// Single-option pass.
	type applied struct {
		ref OptionRef
		q   *ast.Node
	}
	var singles []applied
	badSingle := map[OptionRef]bool{}
	for wi, w := range iface.Widgets {
		for oi, v := range w.Domain.Values() {
			q := core.Apply(iface.Initial, w, v)
			ref := OptionRef{wi, oi}
			if q == nil || !valid(q) {
				rep.BadOptions = append(rep.BadOptions, ref)
				badSingle[ref] = true
				continue
			}
			singles = append(singles, applied{ref, q})
		}
	}

	// Pairwise pass over individually-valid options of distinct widgets.
	pairs := 0
	for i := 0; i < len(singles); i++ {
		for j := i + 1; j < len(singles); j++ {
			a, b := singles[i], singles[j]
			if a.ref.Widget == b.ref.Widget {
				continue
			}
			if maxPairs > 0 && pairs >= maxPairs {
				return rep
			}
			pairs++
			wb := iface.Widgets[b.ref.Widget]
			vb := wb.Domain.Values()[b.ref.Option]
			q := core.Apply(a.q, wb, vb)
			if q == nil {
				// The combination is structurally impossible (e.g. the
				// second path vanished); not a schema conflict.
				rep.Checked++
				continue
			}
			if !valid(q) {
				rep.Conflicts = append(rep.Conflicts, [2]OptionRef{a.ref, b.ref})
			}
		}
	}
	return rep
}

// Precomputed caches executed results for closure queries.
type Precomputed struct {
	results map[ast.Hash]*engine.Table
	// Failed counts closure queries the engine rejected.
	Failed int
}

// Get returns the cached result for a query, if present.
func (p *Precomputed) Get(q *ast.Node) (*engine.Table, bool) {
	t, ok := p.results[ast.HashOf(q)]
	return t, ok
}

// Len returns the number of cached results.
func (p *Precomputed) Len() int { return len(p.results) }

// Precompute executes up to max closure queries against the database
// and caches their results — the §4.5 "pre-compute results for
// performance purposes" path. Invalid queries are counted, not fatal.
func Precompute(iface *core.Interface, cat engine.Catalog, max int) *Precomputed {
	p := &Precomputed{results: map[ast.Hash]*engine.Table{}}
	iface.EnumerateClosure(max, func(q *ast.Node) bool {
		res, err := engine.Exec(cat, q)
		if err != nil {
			p.Failed++
			return true
		}
		p.results[ast.HashOf(q)] = res
		return true
	})
	return p
}
