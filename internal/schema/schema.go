// Package schema implements the Appendix D substrate: a local database
// schema inferred from the queries in a log ("we created a local
// database with a schema consistent with the tables and attributes
// found in the queries"), AST validation against it, and the
// column→table containment filter that lifts closure precision to 100%.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Catalog maps table names to their column sets (all lower-cased).
type Catalog struct {
	tables map[string]map[string]bool
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]map[string]bool{}}
}

// AddColumn records that table contains column.
func (c *Catalog) AddColumn(table, column string) {
	t := strings.ToLower(lastPart(table))
	col := strings.ToLower(column)
	if c.tables[t] == nil {
		c.tables[t] = map[string]bool{}
	}
	c.tables[t][col] = true
}

// AddTable records a table (possibly with no known columns yet).
func (c *Catalog) AddTable(table string) {
	t := strings.ToLower(lastPart(table))
	if c.tables[t] == nil {
		c.tables[t] = map[string]bool{}
	}
}

// HasTable reports whether the catalog knows the table.
func (c *Catalog) HasTable(table string) bool {
	_, ok := c.tables[strings.ToLower(lastPart(table))]
	return ok
}

// HasColumn reports whether the table contains the column.
func (c *Catalog) HasColumn(table, column string) bool {
	cols, ok := c.tables[strings.ToLower(lastPart(table))]
	return ok && cols[strings.ToLower(column)]
}

// TablesWithColumn returns the tables containing the column — the
// "mapping from column name to the names of tables that contain the
// column" Appendix D's filter keeps.
func (c *Catalog) TablesWithColumn(column string) []string {
	col := strings.ToLower(column)
	var out []string
	for t, cols := range c.tables {
		if cols[col] {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// Tables lists the known tables in sorted order.
func (c *Catalog) Tables() []string {
	var out []string
	for t := range c.tables {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Columns lists a table's known columns in sorted order.
func (c *Catalog) Columns(table string) []string {
	var out []string
	for col := range c.tables[strings.ToLower(lastPart(table))] {
		out = append(out, col)
	}
	sort.Strings(out)
	return out
}

// InferFromQueries builds a catalog from parsed queries by attributing
// every column reference to the tables in the enclosing query block:
// qualified references go to their aliased table; unqualified ones are
// credited to every table in the block's FROM (the safe
// over-approximation, exactly what a schema crawl of the logged
// workload can know).
func InferFromQueries(queries []*ast.Node) *Catalog {
	c := NewCatalog()
	for _, q := range queries {
		inferBlock(c, q)
	}
	return c
}

func inferBlock(c *Catalog, sel *ast.Node) {
	if sel == nil || sel.Type != ast.TypeSelect {
		return
	}
	aliases, tables, onConds := blockTables(c, sel)
	var walkExprs func(n *ast.Node)
	walkExprs = func(n *ast.Node) {
		if n == nil {
			return
		}
		switch n.Type {
		case ast.TypeSubQuery:
			inferBlock(c, n.Child(0))
			return
		case ast.TypeColExpr:
			qual := strings.ToLower(n.Attr("table"))
			if qual != "" {
				if t, ok := aliases[qual]; ok {
					c.AddColumn(t, n.Value())
				} else {
					c.AddColumn(qual, n.Value())
				}
				return
			}
			for _, t := range tables {
				c.AddColumn(t, n.Value())
			}
			return
		}
		for _, ch := range n.Children {
			walkExprs(ch)
		}
	}
	for slot, ch := range sel.Children {
		if slot == ast.SlotFrom {
			continue // handled by blockTables
		}
		walkExprs(ch)
	}
	for _, cond := range onConds {
		walkExprs(cond)
	}
}

// flattenFrom expands JOIN chains into their leaf FromClauses and
// collects the ON conditions for expression-level processing.
func flattenFrom(from *ast.Node) (leaves []*ast.Node, onConds []*ast.Node) {
	var rec func(fc *ast.Node)
	rec = func(fc *ast.Node) {
		rel := fc.Child(0)
		if rel != nil && rel.Type == ast.TypeJoin {
			rec(rel.Child(0))
			rec(rel.Child(1))
			onConds = append(onConds, rel.Child(2))
			return
		}
		leaves = append(leaves, fc)
	}
	if !ast.IsEmptyClause(from) {
		for _, fc := range from.Children {
			rec(fc)
		}
	}
	return leaves, onConds
}

// blockTables registers the FROM tables of one block and returns the
// alias map, the list of base tables (subqueries recurse but do not
// contribute a base table), and any JOIN ON conditions.
func blockTables(c *Catalog, sel *ast.Node) (map[string]string, []string, []*ast.Node) {
	aliases := map[string]string{}
	var tables []string
	leaves, onConds := flattenFrom(sel.Child(ast.SlotFrom))
	for _, fc := range leaves {
		rel := fc.Child(0)
		alias := strings.ToLower(fc.Attr("alias"))
		switch rel.Type {
		case ast.TypeTabExpr:
			name := lastPart(rel.Value())
			c.AddTable(name)
			tables = append(tables, name)
			if alias != "" {
				aliases[alias] = name
			}
			aliases[strings.ToLower(name)] = name
		case ast.TypeSubQuery:
			inferBlock(c, rel.Child(0))
		case ast.TypeTabFunc:
			// Table functions expose an opaque relation; register under
			// the function name so qualified refs (d.objID) validate.
			name := lastPart(rel.Child(0).Value())
			c.AddTable(name)
			if alias != "" {
				aliases[alias] = name
			}
		}
	}
	return aliases, tables, onConds
}

// Violation describes one schema error found by Validate.
type Violation struct {
	Msg string
}

func (v Violation) String() string { return v.Msg }

// Validate checks a query against the catalog the way Appendix D's
// precision experiment does: every referenced table must exist and
// every column reference must be contained in (one of) the tables of
// its query block. It returns all violations (none for a valid query).
func (c *Catalog) Validate(sel *ast.Node) []Violation {
	var out []Violation
	c.validateBlock(sel, &out)
	return out
}

func (c *Catalog) validateBlock(sel *ast.Node, out *[]Violation) {
	if sel == nil || sel.Type != ast.TypeSelect {
		return
	}
	aliases := map[string]string{}
	var tables []string
	leaves, onConds := flattenFrom(sel.Child(ast.SlotFrom))
	for _, fc := range leaves {
		rel := fc.Child(0)
		alias := strings.ToLower(fc.Attr("alias"))
		switch rel.Type {
		case ast.TypeTabExpr:
			name := lastPart(rel.Value())
			if !c.HasTable(name) {
				*out = append(*out, Violation{Msg: fmt.Sprintf("unknown table %q", rel.Value())})
				continue
			}
			tables = append(tables, name)
			if alias != "" {
				aliases[alias] = name
			}
			aliases[strings.ToLower(name)] = name
		case ast.TypeSubQuery:
			c.validateBlock(rel.Child(0), out)
		case ast.TypeTabFunc:
			name := lastPart(rel.Child(0).Value())
			if alias != "" && c.HasTable(name) {
				aliases[alias] = name
			}
		}
	}
	var walk func(n *ast.Node)
	walk = func(n *ast.Node) {
		if n == nil {
			return
		}
		switch n.Type {
		case ast.TypeSubQuery:
			c.validateBlock(n.Child(0), out)
			return
		case ast.TypeColExpr:
			qual := strings.ToLower(n.Attr("table"))
			if qual != "" {
				t, ok := aliases[qual]
				if !ok {
					t = qual
				}
				if !c.HasColumn(t, n.Value()) {
					*out = append(*out, Violation{Msg: fmt.Sprintf("column %s.%s not in schema", qual, n.Value())})
				}
				return
			}
			if strings.EqualFold(n.Value(), "now") {
				return // pseudo-column (Listing 4)
			}
			for _, t := range tables {
				if c.HasColumn(t, n.Value()) {
					return
				}
			}
			*out = append(*out, Violation{Msg: fmt.Sprintf("column %q not in any FROM table", n.Value())})
			return
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for slot, ch := range sel.Children {
		if slot == ast.SlotFrom {
			continue
		}
		walk(ch)
	}
	for _, cond := range onConds {
		walk(cond)
	}
}

// Valid reports whether the query has no schema violations.
func (c *Catalog) Valid(sel *ast.Node) bool { return len(c.Validate(sel)) == 0 }

func lastPart(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
