package schema

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

func parseAll(t *testing.T, sqls ...string) []*ast.Node {
	t.Helper()
	out := make([]*ast.Node, len(sqls))
	for i, s := range sqls {
		out[i] = sqlparser.MustParse(s)
	}
	return out
}

func TestInferFromQueries(t *testing.T) {
	qs := parseAll(t,
		"SELECT ew, z FROM SpecLineIndex WHERE specObjId = 0x400",
		"SELECT tempNo FROM XCRedshift WHERE specObjId = 0x199",
		"SELECT g.objID FROM Galaxy g WHERE g.redshift > 1",
	)
	c := InferFromQueries(qs)
	if !c.HasTable("speclineindex") || !c.HasTable("xcredshift") || !c.HasTable("galaxy") {
		t.Fatalf("tables = %v", c.Tables())
	}
	if !c.HasColumn("SpecLineIndex", "ew") || !c.HasColumn("speclineindex", "specobjid") {
		t.Fatalf("SpecLineIndex columns = %v", c.Columns("SpecLineIndex"))
	}
	if !c.HasColumn("galaxy", "objid") || !c.HasColumn("galaxy", "redshift") {
		t.Fatalf("Galaxy columns = %v", c.Columns("Galaxy"))
	}
	if c.HasColumn("galaxy", "ew") {
		t.Fatal("ew must not leak into Galaxy")
	}
}

func TestTablesWithColumn(t *testing.T) {
	qs := parseAll(t,
		"SELECT specObjId FROM SpecLineIndex",
		"SELECT specObjId FROM XCRedshift",
		"SELECT objID FROM Galaxy",
	)
	c := InferFromQueries(qs)
	got := c.TablesWithColumn("specObjId")
	if len(got) != 2 || got[0] != "speclineindex" || got[1] != "xcredshift" {
		t.Fatalf("TablesWithColumn = %v", got)
	}
}

// TestValidateCrossTableMixups reproduces the Appendix D failure mode:
// a purely syntactic interface can combine an attribute from table T
// with table S in FROM; Validate must reject it.
func TestValidateCrossTableMixups(t *testing.T) {
	c := InferFromQueries(parseAll(t,
		"SELECT ew FROM SpecLineIndex",
		"SELECT tempNo FROM XCRedshift",
	))
	valid := parseAll(t, "SELECT ew FROM SpecLineIndex")[0]
	if !c.Valid(valid) {
		t.Fatalf("valid query rejected: %v", c.Validate(valid))
	}
	// Column ew picked with table XCRedshift: the nonsensical mix.
	invalid := parseAll(t, "SELECT ew FROM XCRedshift")[0]
	if c.Valid(invalid) {
		t.Fatal("cross-table mixup accepted")
	}
	// Unknown table entirely.
	unknown := parseAll(t, "SELECT ew FROM NoSuchTable")[0]
	if c.Valid(unknown) {
		t.Fatal("unknown table accepted")
	}
}

func TestValidateQualifiedAndAliases(t *testing.T) {
	c := InferFromQueries(parseAll(t,
		"SELECT g.objID, g.redshift FROM Galaxy g",
	))
	ok := parseAll(t, "SELECT g.objID FROM Galaxy AS g")[0]
	if !c.Valid(ok) {
		t.Fatalf("aliased query rejected: %v", c.Validate(ok))
	}
	bad := parseAll(t, "SELECT g.nonexistent FROM Galaxy g")[0]
	if c.Valid(bad) {
		t.Fatal("unknown qualified column accepted")
	}
}

func TestValidateSubqueries(t *testing.T) {
	c := InferFromQueries(parseAll(t,
		"SELECT a FROM t WHERE b > 10",
	))
	ok := parseAll(t, "SELECT * FROM (SELECT a FROM t WHERE b > 20)")[0]
	if !c.Valid(ok) {
		t.Fatalf("subquery rejected: %v", c.Validate(ok))
	}
	bad := parseAll(t, "SELECT * FROM (SELECT zz FROM t)")[0]
	if c.Valid(bad) {
		t.Fatal("bad inner column accepted")
	}
}

func TestValidateTableFunction(t *testing.T) {
	c := InferFromQueries(parseAll(t,
		"SELECT g.objID, d.objID FROM Galaxy g, dbo.fGetNearbyObjEq(5.8, 0.3, 2.0) d",
	))
	q := parseAll(t, "SELECT g.objID FROM Galaxy g, dbo.fGetNearbyObjEq(1.0, 2.0, 3.0) d WHERE d.objID = g.objID")[0]
	if !c.Valid(q) {
		t.Fatalf("UDF query rejected: %v", c.Validate(q))
	}
}

func TestValidateNowPseudoColumn(t *testing.T) {
	c := InferFromQueries(parseAll(t, "SELECT spec_ts FROM t"))
	q := parseAll(t, "SELECT spec_ts FROM t WHERE spec_ts > now")[0]
	if !c.Valid(q) {
		t.Fatalf("now pseudo-column rejected: %v", c.Validate(q))
	}
}

func TestInferIsSelfConsistent(t *testing.T) {
	// Every query a catalog was inferred from must validate against it.
	sqls := []string{
		"SELECT ew, z FROM SpecLineIndex WHERE specObjId = 0x400",
		"SELECT TOP 5 g.objID FROM Galaxy g WHERE g.redshift > 0.5",
		"SELECT COUNT(delay), deststate FROM ontime WHERE month = 9 GROUP BY deststate",
		"SELECT * FROM (SELECT a FROM t WHERE b > 10)",
		"SELECT carrier, FLOOR(distance/5) FROM ontime HAVING SUM(flights) > 10",
	}
	qs := parseAll(t, sqls...)
	c := InferFromQueries(qs)
	for i, q := range qs {
		if !c.Valid(q) {
			t.Errorf("query %d does not validate against its own catalog: %v", i, c.Validate(q))
		}
	}
}

func TestJoinValidation(t *testing.T) {
	c := InferFromQueries(parseAll(t,
		"SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.did",
	))
	if !c.HasColumn("emp", "dept") || !c.HasColumn("dept", "did") {
		t.Fatalf("ON condition columns not inferred: emp=%v dept=%v",
			c.Columns("emp"), c.Columns("dept"))
	}
	ok := parseAll(t, "SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did")[0]
	if !c.Valid(ok) {
		t.Fatalf("join query rejected: %v", c.Validate(ok))
	}
	bad := parseAll(t, "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.nosuch")[0]
	if c.Valid(bad) {
		t.Fatal("bad ON column accepted")
	}
}
