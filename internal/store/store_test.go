package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/sqlparser"
)

// seedDB builds a small two-table catalog.
func seedDB(t testing.TB, rows int) *engine.DB {
	t.Helper()
	tbl := engine.NewTable("t", "a", "x")
	for i := 1; i <= rows; i++ {
		if err := tbl.AddRow(engine.Num(float64(i*10)), engine.Num(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	u := engine.NewTable("u", "b")
	u.MustAddRow(engine.Str("one"))
	db := engine.NewDB()
	db.AddTable(tbl)
	db.AddTable(u)
	return db
}

func row(vals ...float64) []engine.Value {
	out := make([]engine.Value, len(vals))
	for i, v := range vals {
		out[i] = engine.Num(v)
	}
	return out
}

func countRows(t testing.TB, cat engine.Catalog, sql string) float64 {
	t.Helper()
	n, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.Exec(cat, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("expected scalar result, got %dx%d", len(res.Rows), len(res.Rows[0]))
	}
	f, ok := res.Rows[0][0].AsNumber()
	if !ok {
		t.Fatalf("non-numeric count %v", res.Rows[0][0])
	}
	return f
}

// TestAppendRowsCopyOnWrite: a snapshot taken before an append must
// keep seeing the old row count forever — the whole point of COW
// versions is that epoch-pinned caches stay correct.
func TestAppendRowsCopyOnWrite(t *testing.T) {
	st := FromDB(seedDB(t, 5))
	before := st.Snapshot()
	if st.Epoch() != 1 {
		t.Fatalf("fresh store epoch = %d, want 1", st.Epoch())
	}

	epoch, err := st.AppendRows("t", [][]engine.Value{row(60, 6), row(70, 7)})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || st.Epoch() != 2 {
		t.Fatalf("post-append epoch = %d/%d, want 2", epoch, st.Epoch())
	}
	after := st.Snapshot()

	if got := countRows(t, before, "SELECT count(*) FROM t"); got != 5 {
		t.Fatalf("old snapshot sees %v rows, want 5", got)
	}
	if got := countRows(t, after, "SELECT count(*) FROM t"); got != 7 {
		t.Fatalf("new snapshot sees %v rows, want 7", got)
	}
	// The untouched table is shared, not copied.
	bu, _ := before.Table("u")
	au, _ := after.Table("u")
	if bu != au {
		t.Fatal("untouched table was copied by the append")
	}
}

func TestAppendRowsValidation(t *testing.T) {
	st := FromDB(seedDB(t, 2))
	if _, err := st.AppendRows("nope", [][]engine.Value{row(1)}); err == nil {
		t.Fatal("append to unknown table accepted")
	}
	if _, err := st.AppendRows("t", [][]engine.Value{row(1, 2), row(3)}); err == nil {
		t.Fatal("arity-mismatched row accepted")
	}
	// A rejected batch publishes nothing — all-or-nothing.
	if st.Epoch() != 1 {
		t.Fatalf("failed appends bumped the epoch to %d", st.Epoch())
	}
	if n, _ := st.RowCount("t"); n != 2 {
		t.Fatalf("failed append changed row count to %d", n)
	}
	if err := st.ValidateRows("t", [][]engine.Value{row(1, 2)}); err != nil {
		t.Fatalf("valid rows rejected: %v", err)
	}
	if err := st.ValidateRows("t", [][]engine.Value{row(1)}); err == nil {
		t.Fatal("ValidateRows accepted an arity mismatch")
	}
}

// TestConcurrentExecWhileAppending hammers Exec against snapshots
// while a writer streams appends — run under -race, this is the
// storage layer's core concurrency contract: readers pin a snapshot
// and never see a torn state.
func TestConcurrentExecWhileAppending(t *testing.T) {
	st := FromDB(seedDB(t, 50))
	q, err := sqlparser.Parse("SELECT count(*), sum(x) FROM t WHERE x > 0")
	if err != nil {
		t.Fatal(err)
	}

	const appends = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Snapshot()
				res, err := engine.Exec(snap, q)
				if err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				// Within one snapshot the table is frozen: re-running
				// against the same snapshot must agree exactly.
				again, err := engine.Exec(snap, q)
				if err != nil {
					t.Errorf("re-exec: %v", err)
					return
				}
				if res.Rows[0][0] != again.Rows[0][0] {
					t.Errorf("snapshot not stable: %v vs %v", res.Rows[0][0], again.Rows[0][0])
					return
				}
			}
		}()
	}
	for i := 0; i < appends; i++ {
		if _, err := st.AppendRows("t", [][]engine.Value{row(float64(i), float64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := countRows(t, st.Snapshot(), "SELECT count(*) FROM t"); got != 50+appends {
		t.Fatalf("final count %v, want %d", got, 50+appends)
	}
	if st.Epoch() != 1+appends {
		t.Fatalf("final epoch %d, want %d", st.Epoch(), 1+appends)
	}
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := FromDB(seedDB(t, 3))
	if _, err := st.AppendRows("t", [][]engine.Value{row(40, 4)}); err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{
		ID:        "round",
		Title:     "round trip",
		Epoch:     7,
		DataEpoch: st.Epoch(),
		Log:       []qlog.Entry{{SQL: "SELECT a FROM t WHERE x = 1"}, {SQL: "SELECT a FROM t WHERE x = 2", Client: "c9"}},
		Tables:    st.CaptureTables(),
	}
	n, err := Save(dir, snap)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("saved %d bytes", n)
	}
	leftovers, _ := filepath.Glob(filepath.Join(dir, "*.tmp*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind after atomic publish: %v", leftovers)
	}

	got, err := Load(SnapFile(dir, "round"))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != "round" || got.Title != "round trip" || got.Epoch != 7 || got.DataEpoch != snap.DataEpoch {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.Log) != 2 || got.Log[1].Client != "c9" {
		t.Fatalf("log mismatch: %+v", got.Log)
	}
	restored, err := got.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != snap.DataEpoch {
		t.Fatalf("restored data epoch = %d, want %d", restored.Epoch(), snap.DataEpoch)
	}
	if c := countRows(t, restored.Snapshot(), "SELECT count(*) FROM t"); c != 4 {
		t.Fatalf("restored t has %v rows, want 4", c)
	}
	if l := got.RestoredLog(); l.Len() != 2 || l.Entries[0].Seq != 0 || l.Entries[1].Seq != 1 {
		t.Fatalf("restored log not rebased: %+v", l.Entries)
	}
}

// TestLoadRejectsCorruption: a flipped payload byte must fail the
// checksum; a truncated file and a foreign file must fail framing.
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	st := FromDB(seedDB(t, 3))
	snap := &Snapshot{ID: "c", Title: "c", Epoch: 1, DataEpoch: 1, Tables: st.CaptureTables()}
	if _, err := Save(dir, snap); err != nil {
		t.Fatal(err)
	}
	path := SnapFile(dir, "c")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-1] ^= 0xff
	bad := filepath.Join(dir, "bad.snap")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("corrupted snapshot loaded")
	}

	if err := os.WriteFile(bad, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("truncated snapshot loaded")
	}

	if err := os.WriteFile(bad, []byte("definitely not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("foreign file loaded")
	}
}

func TestSaveRejectsHostileID(t *testing.T) {
	dir := t.TempDir()
	for _, id := range []string{"", "a/b", "../escape", "a b"} {
		if _, err := Save(dir, &Snapshot{ID: id}); err == nil {
			t.Fatalf("hostile id %q accepted", id)
		}
	}
}

func TestListMissingDirIsEmpty(t *testing.T) {
	files, err := List(filepath.Join(t.TempDir(), "never-created"))
	if err != nil || len(files) != 0 {
		t.Fatalf("List = %v, %v; want empty, nil", files, err)
	}
}

func TestAddTableAndFunc(t *testing.T) {
	st := New()
	before := st.Snapshot()
	tb := engine.NewTable("fresh", "v")
	tb.MustAddRow(engine.Num(1))
	st.AddTable(tb)
	st.AddFunc("f", func(args []engine.Value) (*engine.Table, error) {
		return engine.NewTable("r", "x"), nil
	})
	if _, ok := before.Table("fresh"); ok {
		t.Fatal("old snapshot sees the new table")
	}
	snap := st.Snapshot()
	if _, ok := snap.Table("fresh"); !ok {
		t.Fatal("new snapshot missing the table")
	}
	if _, ok := snap.Func("f"); !ok {
		t.Fatal("new snapshot missing the func")
	}
	names := st.TableNames()
	if len(names) != 1 || names[0] != "fresh" {
		t.Fatalf("TableNames = %v", names)
	}
	counts := st.RowCounts()
	if counts["fresh"] != 1 {
		t.Fatalf("RowCounts = %v", counts)
	}
}
