package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/engine"
	"repro/internal/qlog"
)

// This file is the differential half of persistence: instead of
// rewriting the whole dataset on every save, a periodic save appends
// one Delta — the log entries and table rows added since the previous
// save — keyed off the copy-on-write version chain (a table's new
// rows are exactly the slice past the previously-saved row count,
// because AppendRows only ever extends the backing array). A manifest
// (manifest.go) links base snapshot → deltas → WAL tail; restore
// merges them back into one in-memory Snapshot.

// Delta is the durable form of "what changed since the last save":
// the appended tail of the query log and of each grown table, plus
// the position (seq, epochs) the interface had when it was cut.
type Delta struct {
	// FormatVersion guards decoding across format changes.
	FormatVersion int
	// ID is the interface the delta belongs to.
	ID string
	// FromSeq/ToSeq bound the replication sequence range: the previous
	// save covered FromSeq, base+deltas through this one cover ToSeq.
	FromSeq uint64
	ToSeq   uint64
	// Epoch/DataEpoch are the serving and store epochs at the cut.
	Epoch     uint64
	DataEpoch uint64
	// Log is the query-log tail appended since the previous save.
	Log []qlog.Entry
	// Tables holds each grown table's appended rows.
	Tables []TableDelta
}

// TableDelta is one table's change since the previous save. Two
// shapes, discriminated by Replace:
//
//   - append tail (Replace false): Rows/RowIDs hold only the rows
//     added past FromRow — the common case, tiny files.
//   - replacement (Replace true): the table absorbed UPDATE/DELETE
//     mutations since the last save, so a tail cut cannot describe it;
//     Rows/RowIDs carry the full visible table and Apply swaps it
//     wholesale. Still differential at the save level: unmutated
//     tables and the log keep riding as tails.
type TableDelta struct {
	Name string
	Cols []string
	// FromRow is the row count the previous save covered; the restore
	// path refuses a delta whose FromRow does not meet the merged table
	// where it left off (a gap would silently drop acked rows).
	FromRow int
	Rows    [][]engine.Value

	// RowIDs aligns with Rows (appended rows' ids, or the full table's
	// for a replacement). NextRowID/MutGen snapshot the table's rowid
	// allocator and mutation generation at the cut.
	RowIDs    []uint64
	NextRowID uint64
	MutGen    uint64
	// Replace marks a full-table replacement delta.
	Replace bool
}

// DeltaFormatVersion is the current delta file format.
const DeltaFormatVersion = 1

// deltaMagic leads every delta file, distinguishing it from snapshots.
var deltaMagic = []byte("PIDELT01")

// DeltaFile returns the delta path for an interface at a covered seq.
// The zero-padded seq keeps lexicographic order equal to replay order.
func DeltaFile(dir, id string, toSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%020d.delta", id, toSeq))
}

// CutDelta derives the delta between a previous save — described by
// its covered log length, per-table row counts and per-table mutation
// generations, as the manifest records them — and a fresh full
// capture. A table whose mutation generation moved since the last save
// has been updated or deleted from, so its tail is not a sound
// description of the change: it rides as a full-table replacement
// delta instead, while unmutated tables keep the cheap tail cut.
// Sharing is safe: the returned slices alias the capture's immutable
// rows.
func CutDelta(snap *Snapshot, fromSeq uint64, logLen int, tableRows map[string]int, tableMuts map[string]uint64) (*Delta, error) {
	if logLen > len(snap.Log) {
		return nil, fmt.Errorf("store: delta of %q: capture has %d log entries, previous save covered %d",
			snap.ID, len(snap.Log), logLen)
	}
	d := &Delta{
		FormatVersion: DeltaFormatVersion,
		ID:            snap.ID,
		FromSeq:       fromSeq,
		ToSeq:         snap.Seq,
		Epoch:         snap.Epoch,
		DataEpoch:     snap.DataEpoch,
		Log:           snap.Log[logLen:],
	}
	for _, td := range snap.Tables {
		if td.MutGen != tableMuts[td.Name] {
			d.Tables = append(d.Tables, TableDelta{
				Name:      td.Name,
				Cols:      td.Cols,
				Rows:      td.Rows,
				RowIDs:    td.RowIDs,
				NextRowID: td.NextRowID,
				MutGen:    td.MutGen,
				Replace:   true,
			})
			continue
		}
		covered := tableRows[td.Name]
		if covered > len(td.Rows) {
			return nil, fmt.Errorf("store: delta of %q: table %q has %d rows, previous save covered %d",
				snap.ID, td.Name, len(td.Rows), covered)
		}
		if covered == len(td.Rows) && covered > 0 {
			continue // unchanged table: nothing to carry
		}
		var ids []uint64
		if len(td.RowIDs) == len(td.Rows) {
			ids = td.RowIDs[covered:]
		}
		d.Tables = append(d.Tables, TableDelta{
			Name:      td.Name,
			Cols:      td.Cols,
			FromRow:   covered,
			Rows:      td.Rows[covered:],
			RowIDs:    ids,
			NextRowID: td.NextRowID,
			MutGen:    td.MutGen,
		})
	}
	return d, nil
}

// Apply merges the delta into a snapshot being rebuilt, in place. The
// seq chain and per-table row positions are verified — a delta that
// does not continue exactly where the snapshot ends means a save was
// lost, and restoring past it would silently drop acked state.
func (d *Delta) Apply(snap *Snapshot) error {
	if d.ID != snap.ID {
		return fmt.Errorf("store: delta for %q applied to snapshot of %q", d.ID, snap.ID)
	}
	if d.FromSeq != snap.Seq {
		return fmt.Errorf("store: delta of %q continues from seq %d but snapshot covers seq %d",
			d.ID, d.FromSeq, snap.Seq)
	}
	for _, td := range d.Tables {
		idx := -1
		for i := range snap.Tables {
			if snap.Tables[i].Name == td.Name {
				idx = i
				break
			}
		}
		if td.Replace {
			data := TableData{Name: td.Name, Cols: td.Cols, Rows: td.Rows,
				RowIDs: td.RowIDs, NextRowID: td.NextRowID, MutGen: td.MutGen}
			if idx < 0 {
				snap.Tables = append(snap.Tables, data)
			} else {
				snap.Tables[idx] = data
			}
			continue
		}
		if idx < 0 {
			if td.FromRow != 0 {
				return fmt.Errorf("store: delta of %q grows unknown table %q from row %d",
					d.ID, td.Name, td.FromRow)
			}
			snap.Tables = append(snap.Tables, TableData{Name: td.Name, Cols: td.Cols, Rows: td.Rows,
				RowIDs: td.RowIDs, NextRowID: td.NextRowID, MutGen: td.MutGen})
			continue
		}
		have := len(snap.Tables[idx].Rows)
		if td.FromRow != have {
			return fmt.Errorf("store: delta of %q continues table %q at row %d but snapshot holds %d rows",
				d.ID, td.Name, td.FromRow, have)
		}
		t := &snap.Tables[idx]
		if len(td.RowIDs) == len(td.Rows) && len(t.RowIDs) == len(t.Rows) {
			t.RowIDs = append(t.RowIDs, td.RowIDs...)
		} else {
			t.RowIDs = nil // legacy mix: Restore re-assigns sequentially
		}
		t.Rows = append(t.Rows, td.Rows...)
		if td.NextRowID > t.NextRowID {
			t.NextRowID = td.NextRowID
		}
		if td.MutGen > t.MutGen {
			t.MutGen = td.MutGen
		}
	}
	snap.Log = append(snap.Log, d.Log...)
	snap.Seq = d.ToSeq
	snap.Epoch = d.Epoch
	snap.DataEpoch = d.DataEpoch
	return nil
}

// EncodeDelta serializes the delta into the same framed format
// snapshots use — magic, CRC-32, length, gob — under its own magic.
func EncodeDelta(d *Delta) ([]byte, error) {
	d.FormatVersion = DeltaFormatVersion
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(d); err != nil {
		return nil, fmt.Errorf("store: encode delta %q: %w", d.ID, err)
	}
	sum := crc32.ChecksumIEEE(payload.Bytes())
	frame := make([]byte, 0, len(deltaMagic)+12+payload.Len())
	frame = append(frame, deltaMagic...)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], sum)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	frame = append(frame, hdr[:]...)
	frame = append(frame, payload.Bytes()...)
	return frame, nil
}

// DecodeDelta verifies and decodes one EncodeDelta frame.
func DecodeDelta(raw []byte) (*Delta, error) {
	if len(raw) < len(deltaMagic)+12 {
		return nil, fmt.Errorf("store: delta is truncated (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:len(deltaMagic)], deltaMagic) {
		return nil, fmt.Errorf("store: not a delta (bad magic)")
	}
	hdr := raw[len(deltaMagic):]
	sum := binary.BigEndian.Uint32(hdr[0:4])
	size := binary.BigEndian.Uint64(hdr[4:12])
	payload := hdr[12:]
	if uint64(len(payload)) != size {
		return nil, fmt.Errorf("store: delta is truncated (payload %d bytes, header says %d)",
			len(payload), size)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("store: delta failed checksum (got %08x, want %08x)", got, sum)
	}
	var d Delta
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&d); err != nil {
		return nil, fmt.Errorf("store: decode delta: %w", err)
	}
	if d.FormatVersion != DeltaFormatVersion {
		return nil, fmt.Errorf("store: delta has format %d, this build reads %d",
			d.FormatVersion, DeltaFormatVersion)
	}
	return &d, nil
}

// SaveDelta writes the delta durably next to its base snapshot,
// returning the file's byte size and name.
func SaveDelta(dir string, d *Delta) (int64, string, error) {
	if !ValidID(d.ID) {
		return 0, "", fmt.Errorf("store: invalid delta id %q", d.ID)
	}
	frame, err := EncodeDelta(d)
	if err != nil {
		return 0, "", err
	}
	name := filepath.Base(DeltaFile(dir, d.ID, d.ToSeq))
	if err := AtomicWrite(dir, name, frame); err != nil {
		return 0, "", fmt.Errorf("store: save delta %q: %w", d.ID, err)
	}
	return int64(len(frame)), name, nil
}

// LoadDelta reads and verifies one delta file.
func LoadDelta(path string) (*Delta, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read delta: %w", err)
	}
	d, err := DecodeDelta(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return d, nil
}
