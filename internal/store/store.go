// Package store is the versioned storage layer under the serving
// system: an MVCC row store (internal/mvcc) behind a copy-on-write
// catalog that turns the "immutable after build" DB into a sequence of
// immutable versions. Readers take a Snapshot — a *View that satisfies
// engine.Catalog and never changes — while writers publish through
// AppendRows and MutateRows, each bumping the data epoch without
// copying row data: appends extend the version arena, updates and
// deletes retire row versions by stamping an end epoch and (for
// updates) appending a replacement, so every publish is O(rows
// touched), never O(table). A snapshot taken at epoch E sees exactly
// the rows live at E, forever — the Berkholz-style
// answering-under-updates discipline PR 2 applied to interfaces,
// applied to the data itself: queries always run against an immutable
// snapshot, so result caches keyed to a snapshot stay correct by
// construction.
//
// The package also owns durable persistence (persist.go): a hosted
// interface's (log, dataset, epoch) triple serializes to a single
// checksummed snapshot file written with an atomic rename, so a
// SIGKILLed server restores without the original log. Row identities
// (rowids) persist too, so replicated mutations keep applying across
// crash/restore.
package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/mvcc"
)

// RowUpdate is one row replacement in a mutation: the row identified
// by RowID gets the new values. It is the wire unit of the DML path —
// publications, WAL records and follower applies all carry it.
type RowUpdate struct {
	RowID uint64
	Vals  []engine.Value
}

// TableMutation is one table's share of a mutation publication:
// updates and deletes keyed by rowid. Replication is physical — the
// owner evaluates the DML predicate once and everyone else (followers,
// WAL replay) re-applies the recorded rowid-level operations, so a
// predicate over data that has since moved on can never diverge.
type TableMutation struct {
	Table   string
	Updates []RowUpdate
	Deletes []uint64
}

// version is one immutable store state: the published table views plus
// the function catalog at one data epoch.
type version struct {
	view View
}

// View is an immutable snapshot of the store at one data epoch: it
// satisfies engine.Catalog (name matching is case-insensitive and
// accepts the final component of qualified names, like engine.DB), and
// additionally exposes the epoch and per-table rowids the DML path
// needs. Views are safe for concurrent use and never change — old
// views keep serving their exact row set while the store moves on.
type View struct {
	epoch  uint64
	tables map[string]*mvcc.View // keyed by lowercase name
	funcs  map[string]engine.TableFunc
}

// Epoch returns the data epoch the view was taken at.
func (v *View) Epoch() uint64 { return v.epoch }

func (v *View) lookup(name string) (*mvcc.View, bool) {
	t, ok := v.tables[strings.ToLower(name)]
	if !ok {
		// Accept the final path component of qualified names (dbo.X).
		parts := strings.Split(name, ".")
		t, ok = v.tables[strings.ToLower(parts[len(parts)-1])]
	}
	return t, ok
}

// Table implements engine.Catalog: the flattened visible rows of the
// named table at this view's epoch.
func (v *View) Table(name string) (*engine.Table, bool) {
	t, ok := v.lookup(name)
	if !ok {
		return nil, false
	}
	return t.Table(), true
}

// Func implements engine.Catalog.
func (v *View) Func(name string) (engine.TableFunc, bool) {
	f, ok := v.funcs[strings.ToLower(name)]
	if !ok {
		parts := strings.Split(name, ".")
		f, ok = v.funcs[strings.ToLower(parts[len(parts)-1])]
	}
	return f, ok
}

// RowIDs returns the stable row identity for each row of Table(name),
// index-aligned — how a predicate match at row i becomes a mutation of
// a concrete rowid.
func (v *View) RowIDs(name string) ([]uint64, bool) {
	t, ok := v.lookup(name)
	if !ok {
		return nil, false
	}
	return t.RowIDs(), true
}

// Columnar implements engine.ColumnarProvider: the cached columnar
// projection of the named table's visible rows, built at most once per
// table per data epoch (it lives on the underlying mvcc.View, which is
// shared by every snapshot of the same epoch) and dropped automatically
// when the epoch moves on — the same lifetime as every other epoch-
// keyed cache above the store, so hot-swap, failover and WAL replay
// need no extra invalidation.
func (v *View) Columnar(name string) (*engine.ColumnarTable, bool) {
	t, ok := v.lookup(name)
	if !ok {
		return nil, false
	}
	return t.Columnar(), true
}

// IndexLookup implements engine.IndexedCatalog: equality positions
// from a secondary index at this view's epoch. ok=false (no index on
// that column, or an unservable key) sends the executor to the scan
// kernels.
func (v *View) IndexLookup(table, col string, key engine.Value) ([]int32, bool) {
	t, ok := v.lookup(table)
	if !ok {
		return nil, false
	}
	return t.Lookup(col, key)
}

// NumTables returns the number of tables in the view.
func (v *View) NumTables() int { return len(v.tables) }

// TableNames lists the view's tables (lowercased) in sorted order.
func (v *View) TableNames() []string {
	out := make([]string, 0, len(v.tables))
	for n := range v.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FuncNames lists the view's table-valued functions in sorted order.
func (v *View) FuncNames() []string {
	out := make([]string, 0, len(v.funcs))
	for n := range v.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Store is the MVCC versioned catalog. It is safe for concurrent use:
// any number of readers call Snapshot while writers call
// AppendRows/MutateRows/AddFunc; writers are serialized internally.
type Store struct {
	mu     sync.Mutex // serializes writers; readers never take it
	tables map[string]*mvcc.Table
	v      atomic.Pointer[version]

	// indexCols remembers which secondary indexes were requested per
	// table key, so a table replaced via AddTable (re-mine, restore)
	// gets them re-applied.
	indexCols map[string]map[string]bool
}

// FromDB seeds a store from a built database. The store takes over the
// write path: the caller must not mutate db (or its tables) afterwards
// — exactly the contract the serving layer already imposed, with
// AppendRows/MutateRows now providing the sanctioned ways to change
// tables. Rows get fresh sequential rowids.
func FromDB(db *engine.DB) *Store {
	s := &Store{tables: map[string]*mvcc.Table{}}
	views := map[string]*mvcc.View{}
	for _, name := range db.TableNames() {
		t, _ := db.Table(name)
		wt, err := mvcc.Seed(t.Name, t.Cols, t.Rows, nil, 0, 0, 1)
		if err != nil { // unreachable: nil ids cannot collide
			panic(err)
		}
		s.tables[name] = wt
		views[name] = wt.Publish(1, 0)
	}
	funcs := map[string]engine.TableFunc{}
	for _, name := range db.FuncNames() {
		fn, _ := db.Func(name)
		funcs[name] = fn
	}
	s.v.Store(&version{view: View{epoch: 1, tables: views, funcs: funcs}})
	return s
}

// New returns an empty store at data epoch 1.
func New() *Store { return FromDB(engine.NewDB()) }

// seed builds a store directly from persisted table state (rows with
// their saved rowids plus the rowid allocator and mutation generation)
// at the given epoch — the restore path. ids may be nil per table for
// legacy snapshots, which assign fresh sequential rowids.
func seed(tables []TableData, epoch uint64) (*Store, error) {
	if epoch == 0 {
		epoch = 1
	}
	s := &Store{tables: map[string]*mvcc.Table{}}
	views := map[string]*mvcc.View{}
	for _, td := range tables {
		ids := td.RowIDs
		if len(ids) != len(td.Rows) {
			ids = nil // legacy snapshot without rowids
		}
		wt, err := mvcc.Seed(td.Name, td.Cols, td.Rows, ids, td.NextRowID, td.MutGen, epoch)
		if err != nil {
			return nil, fmt.Errorf("store: restore table %q: %w", td.Name, err)
		}
		key := strings.ToLower(td.Name)
		s.tables[key] = wt
		views[key] = wt.Publish(epoch, 0)
	}
	s.v.Store(&version{view: View{epoch: epoch, tables: views, funcs: map[string]engine.TableFunc{}}})
	return s, nil
}

// Snapshot returns the current store version: an immutable *View that
// satisfies engine.Catalog and is therefore a drop-in execution
// target. Snapshots are O(1): no rows are copied.
func (s *Store) Snapshot() *View { return &s.v.Load().view }

// Epoch returns the current data epoch (starts at 1, bumped by every
// publishing write).
func (s *Store) Epoch() uint64 { return s.v.Load().view.epoch }

// lookupWriter resolves a table name against the writer map with the
// same name rules the catalog uses. Callers hold s.mu.
func (s *Store) lookupWriter(name string) (*mvcc.Table, string, bool) {
	key := strings.ToLower(name)
	t, ok := s.tables[key]
	if !ok {
		parts := strings.Split(name, ".")
		key = strings.ToLower(parts[len(parts)-1])
		t, ok = s.tables[key]
	}
	return t, key, ok
}

// publish installs a new version that replaces exactly one table's
// view, sharing everything else. Callers hold s.mu.
func (s *Store) publish(epoch uint64, key string, tv *mvcc.View) {
	cur := &s.v.Load().view
	tables := make(map[string]*mvcc.View, len(cur.tables)+1)
	for k, v := range cur.tables {
		tables[k] = v
	}
	tables[key] = tv
	s.v.Store(&version{view: View{epoch: epoch, tables: tables, funcs: cur.funcs}})
}

// ValidateRows checks that the table exists and every row matches its
// column count, without publishing anything — the cheap pre-flight the
// ingestion path runs before buffering.
func (s *Store) ValidateRows(table string, rows [][]engine.Value) error {
	t, ok := s.Snapshot().Table(table)
	if !ok {
		return fmt.Errorf("store: unknown table %q", table)
	}
	for i, r := range rows {
		if len(r) != t.NumCols() {
			return fmt.Errorf("store: table %q has %d columns, row %d has %d",
				t.Name, t.NumCols(), i, len(r))
		}
	}
	return nil
}

// AppendRows appends rows to the named table and publishes a new
// version under a bumped data epoch. The append is copy-on-write at
// the catalog level: new row versions extend the table's arena
// (readers of older snapshots only ever see their own epoch's rows),
// and only the view map is duplicated. Either every row is appended or
// none is (validation runs before publishing). The caller must not
// mutate rows afterwards. Returns the new data epoch.
func (s *Store) AppendRows(table string, rows [][]engine.Value) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	t, key, ok := s.lookupWriter(table)
	if !ok {
		return cur.view.epoch, fmt.Errorf("store: unknown table %q", table)
	}
	for i, r := range rows {
		if len(r) != len(t.Cols) {
			return cur.view.epoch, fmt.Errorf("store: table %q has %d columns, row %d has %d",
				t.Name, len(t.Cols), i, len(r))
		}
	}
	if len(rows) == 0 {
		return cur.view.epoch, nil
	}
	epoch := cur.view.epoch + 1
	t.Append(rows, epoch)
	s.publish(epoch, key, t.Publish(epoch, len(rows)))
	return epoch, nil
}

// MutateRows applies one mutation set — row updates and deletes keyed
// by rowid — to the named table and publishes a new version under a
// bumped data epoch. Updates retire the row's current version and
// append a replacement; deletes just retire: O(rows touched), never a
// table rewrite, and every snapshot taken before the publish keeps
// serving its exact pre-mutation rows. Either the whole set applies or
// none of it (validation runs before the first retire). Returns the
// new data epoch; an empty set publishes nothing.
func (s *Store) MutateRows(table string, updates []RowUpdate, deletes []uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	if len(updates) == 0 && len(deletes) == 0 {
		return cur.view.epoch, nil
	}
	t, key, ok := s.lookupWriter(table)
	if !ok {
		return cur.view.epoch, fmt.Errorf("store: unknown table %q", table)
	}
	ups := make([]mvcc.Update, len(updates))
	for i, u := range updates {
		ups[i] = mvcc.Update{RowID: u.RowID, Vals: u.Vals}
	}
	epoch := cur.view.epoch + 1
	if err := t.Mutate(ups, deletes, epoch); err != nil {
		return cur.view.epoch, err
	}
	s.publish(epoch, key, t.Publish(epoch, 0))
	return epoch, nil
}

// AddTable registers a (possibly non-empty) table under a new version.
// Replacing an existing name swaps the whole table; its rows get fresh
// rowids.
func (s *Store) AddTable(t *engine.Table) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	epoch := cur.view.epoch + 1
	wt, err := mvcc.Seed(t.Name, t.Cols, t.Rows, nil, 0, 0, epoch)
	if err != nil { // unreachable: nil ids cannot collide
		panic(err)
	}
	key := strings.ToLower(t.Name)
	s.tables[key] = wt
	for col := range s.indexCols[key] {
		wt.EnableIndex(col)
	}
	s.publish(epoch, key, wt.Publish(epoch, 0))
	return epoch
}

// EnableIndex builds a secondary index on table.col (idempotent) and
// republishes the current epoch's view so the live snapshot carries
// it. Returns false when the table or column does not exist right
// now; the selection is still recorded, so a table hosted (or
// replaced) later under that name gets the index the moment AddTable
// publishes it. The data epoch does not change: an index is not a
// data mutation, and every epoch-keyed cache above stays valid.
func (s *Store) EnableIndex(table, col string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := strings.ToLower(table)
	if s.indexCols == nil {
		s.indexCols = map[string]map[string]bool{}
	}
	if s.indexCols[key] == nil {
		s.indexCols[key] = map[string]bool{}
	}
	s.indexCols[key][col] = true
	t, key, ok := s.lookupWriter(table)
	if !ok || !t.EnableIndex(col) {
		return false
	}
	cur := &s.v.Load().view
	s.publish(cur.epoch, key, t.Publish(cur.epoch, 0))
	return true
}

// EnableIndexes applies a batch of auto-selected predicate columns
// (engine.PredicateColumns output). Unknown columns are skipped —
// mined ASTs can reference pseudo-columns — and unknown tables are
// deferred until AddTable hosts them. Returns how many indexes are
// now enabled from the batch.
func (s *Store) EnableIndexes(cols []engine.PredicateColumn) int {
	n := 0
	for _, pc := range cols {
		if s.EnableIndex(pc.Table, pc.Col) {
			n++
		}
	}
	return n
}

// AddFunc registers a table-valued function under a new version —
// the restore path uses it to re-attach UDFs a snapshot file cannot
// carry.
func (s *Store) AddFunc(name string, fn engine.TableFunc) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := &s.v.Load().view
	epoch := cur.epoch + 1
	funcs := make(map[string]engine.TableFunc, len(cur.funcs)+1)
	for k, v := range cur.funcs {
		funcs[k] = v
	}
	funcs[strings.ToLower(name)] = fn
	s.v.Store(&version{view: View{epoch: epoch, tables: cur.tables, funcs: funcs}})
	return epoch
}

// Compact folds fully-superseded row versions out of every table's
// arena — pure memory reclamation after updates and deletes, invisible
// to readers (old views hold their own arena slices) and to
// persistence (visible row order is unchanged). The persister calls
// this at every full base rewrite, so a long-lived interface's dead
// versions are bounded by the delta-chain length. Returns the total
// number of versions dropped.
func (s *Store) Compact() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	dropped := 0
	for _, t := range s.tables {
		dropped += t.Compact()
	}
	return dropped
}

// RowCount returns the current row count of the named table.
func (s *Store) RowCount(table string) (int, bool) {
	t, ok := s.Snapshot().Table(table)
	if !ok {
		return 0, false
	}
	return t.NumRows(), true
}

// RowCounts returns every table's current row count, keyed by the
// catalog's (lowercased) table name in sorted order.
func (s *Store) RowCounts() map[string]int {
	v := s.Snapshot()
	out := make(map[string]int, v.NumTables())
	for _, name := range v.TableNames() {
		if t, ok := v.Table(name); ok {
			out[name] = t.NumRows()
		}
	}
	return out
}

// TableNames lists the catalog's tables in sorted order.
func (s *Store) TableNames() []string {
	return s.Snapshot().TableNames()
}
