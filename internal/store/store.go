// Package store is the versioned storage layer under the serving
// system: a copy-on-write wrapper around the engine's catalog that
// turns the "immutable after build" DB into a sequence of immutable
// versions. Readers take a Snapshot — a plain *engine.DB that
// satisfies engine.Catalog and never changes — while writers append
// rows through AppendRows, which publishes a new version under a
// bumped data epoch without copying row data: the new table version
// shares the old backing array, old snapshots keep reading their own
// prefix, and the catalog map is the only thing copied (O(#tables),
// not O(#rows)). This is the Berkholz-style answering-under-updates
// discipline PR 2 applied to interfaces, applied to the data itself:
// queries always run against an immutable snapshot, so result caches
// keyed to a snapshot stay correct by construction.
//
// The package also owns durable persistence (persist.go): a hosted
// interface's (log, dataset, epoch) triple serializes to a single
// checksummed snapshot file written with an atomic rename, so a
// SIGKILLed server restores without the original log.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/engine"
)

// version is one immutable store state: the catalog plus the data
// epoch that produced it.
type version struct {
	epoch uint64
	db    *engine.DB
}

// Store is a copy-on-write versioned catalog. It is safe for
// concurrent use: any number of readers call Snapshot while writers
// call AppendRows/AddFunc; writers are serialized internally.
type Store struct {
	mu sync.Mutex // serializes writers; readers never take it
	v  atomic.Pointer[version]
}

// FromDB seeds a store from a built database. The store takes over the
// write path: the caller must not mutate db (or its tables) afterwards
// — exactly the contract the serving layer already imposed, with
// AppendRows now providing the sanctioned way to grow tables.
func FromDB(db *engine.DB) *Store {
	s := &Store{}
	s.v.Store(&version{epoch: 1, db: db})
	return s
}

// New returns an empty store at data epoch 1.
func New() *Store { return FromDB(engine.NewDB()) }

// Snapshot returns the current catalog version: an *engine.DB that is
// immutable from the caller's point of view and therefore a drop-in
// execution target (engine.Exec consumes the engine.Catalog interface
// both it and a frozen DB satisfy). Snapshots are O(1): no rows are
// copied.
func (s *Store) Snapshot() *engine.DB { return s.v.Load().db }

// Epoch returns the current data epoch (starts at 1, bumped by every
// publishing write).
func (s *Store) Epoch() uint64 { return s.v.Load().epoch }

// ValidateRows checks that the table exists and every row matches its
// column count, without publishing anything — the cheap pre-flight the
// ingestion path runs before buffering.
func (s *Store) ValidateRows(table string, rows [][]engine.Value) error {
	t, ok := s.Snapshot().Table(table)
	if !ok {
		return fmt.Errorf("store: unknown table %q", table)
	}
	for i, r := range rows {
		if len(r) != t.NumCols() {
			return fmt.Errorf("store: table %q has %d columns, row %d has %d",
				t.Name, t.NumCols(), i, len(r))
		}
	}
	return nil
}

// AppendRows appends rows to the named table and publishes a new
// version under a bumped data epoch. The append is copy-on-write at
// the catalog level: the new table version's row slice extends the old
// backing array (readers of older snapshots only ever index their own
// shorter prefix, so sharing is race-free), and only the table map is
// duplicated. Either every row is appended or none is (validation runs
// before publishing). The caller must not mutate rows afterwards.
// Returns the new data epoch.
func (s *Store) AppendRows(table string, rows [][]engine.Value) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	t, ok := cur.db.Table(table)
	if !ok {
		return cur.epoch, fmt.Errorf("store: unknown table %q", table)
	}
	for i, r := range rows {
		if len(r) != t.NumCols() {
			return cur.epoch, fmt.Errorf("store: table %q has %d columns, row %d has %d",
				t.Name, t.NumCols(), i, len(r))
		}
	}
	if len(rows) == 0 {
		return cur.epoch, nil
	}
	grown := &engine.Table{
		Name: t.Name,
		Cols: t.Cols,
		Rows: append(t.Rows, rows...),
	}
	s.v.Store(&version{epoch: cur.epoch + 1, db: cur.db.WithTable(grown)})
	return cur.epoch + 1, nil
}

// AddTable registers a (possibly non-empty) table under a new version.
// Replacing an existing name swaps the whole table.
func (s *Store) AddTable(t *engine.Table) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	s.v.Store(&version{epoch: cur.epoch + 1, db: cur.db.WithTable(t)})
	return cur.epoch + 1
}

// AddFunc registers a table-valued function under a new version —
// the restore path uses it to re-attach UDFs a snapshot file cannot
// carry.
func (s *Store) AddFunc(name string, fn engine.TableFunc) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.v.Load()
	s.v.Store(&version{epoch: cur.epoch + 1, db: cur.db.WithFunc(name, fn)})
	return cur.epoch + 1
}

// RowCount returns the current row count of the named table.
func (s *Store) RowCount(table string) (int, bool) {
	t, ok := s.Snapshot().Table(table)
	if !ok {
		return 0, false
	}
	return t.NumRows(), true
}

// RowCounts returns every table's current row count, keyed by the
// catalog's (lowercased) table name in sorted order.
func (s *Store) RowCounts() map[string]int {
	db := s.Snapshot()
	out := make(map[string]int, db.NumTables())
	for _, name := range db.TableNames() {
		if t, ok := db.Table(name); ok {
			out[name] = t.NumRows()
		}
	}
	return out
}

// TableNames lists the catalog's tables in sorted order.
func (s *Store) TableNames() []string {
	names := s.Snapshot().TableNames()
	sort.Strings(names)
	return names
}
