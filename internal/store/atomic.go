package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWrite durably publishes data as dir/name: the bytes are
// written to a unique temp file in the same directory, fsynced, and
// atomically renamed into place, then the directory is fsynced so the
// rename itself survives a crash. A reader (or a crash at any point)
// can only ever observe the old complete file or the new complete
// file, never a torn write. This is the one write idiom every durable
// artifact in the data dir uses — .snap snapshots, delta frames,
// manifests, the shard tombstone map — so their crash semantics can
// never drift apart.
func AtomicWrite(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create dir for %s: %w", name, err)
	}
	// Unique temp name per call: overlapping writers of the same target
	// never interleave bytes into one file; whichever rename lands last
	// wins, and both published files were complete.
	f, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: sync %s: %w", name, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %s: %w", name, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: publish %s: %w", name, err)
	}
	syncDir(dir)
	return nil
}
