package store

import (
	"sync"
	"testing"

	"repro/internal/engine"
)

func indexedStore(t *testing.T) *Store {
	t.Helper()
	db := engine.NewDB()
	tab := engine.NewTable("users", "id", "city", "score")
	for i := 0; i < 20; i++ {
		tab.MustAddRow(engine.Num(float64(i)), engine.Str([]string{"ORD", "SFO", "JFK", "LAX"}[i%4]), engine.Num(float64(i*10)))
	}
	db.AddTable(tab)
	st := FromDB(db)
	if !st.EnableIndex("users", "city") {
		t.Fatal("EnableIndex(users, city) = false")
	}
	return st
}

// TestStoreIndexLookupServesViews: a snapshot's IndexLookup answers
// SQL-equality positions into its Table() rows, and enabling an index
// does not bump the data epoch (an index is not a data mutation, so
// epoch-keyed caches above stay valid).
func TestStoreIndexLookupServesViews(t *testing.T) {
	st := indexedStore(t)
	if got := st.Epoch(); got != 1 {
		t.Fatalf("EnableIndex bumped the data epoch to %d", got)
	}
	v := st.Snapshot()
	pos, ok := v.IndexLookup("users", "city", engine.Str("SFO"))
	if !ok {
		t.Fatal("IndexLookup(city) not served")
	}
	tab, _ := v.Table("users")
	if len(pos) != 5 {
		t.Fatalf("SFO positions = %v, want 5", pos)
	}
	for _, p := range pos {
		if !engine.Equal(tab.Rows[p][1], engine.Str("SFO")) {
			t.Fatalf("position %d is %v, not SFO", p, tab.Rows[p][1])
		}
	}
	if _, ok := v.IndexLookup("users", "score", engine.Num(10)); ok {
		t.Fatal("unindexed column served")
	}
	if _, ok := v.IndexLookup("ghosts", "city", engine.Str("SFO")); ok {
		t.Fatal("unknown table served")
	}
}

// TestStoreIndexPinnedVsHead: a snapshot pinned before UPDATE/DELETE
// keeps answering its exact pre-mutation positions while the head
// reflects the mutation — the store-level half of the epoch-chain
// guarantee.
func TestStoreIndexPinnedVsHead(t *testing.T) {
	st := indexedStore(t)
	pinned := st.Snapshot()
	ids, _ := pinned.RowIDs("users")

	// Move row 1 (SFO) to ORD, delete row 5 (SFO).
	if _, err := st.MutateRows("users",
		[]RowUpdate{{RowID: ids[1], Vals: []engine.Value{engine.Num(1), engine.Str("ORD"), engine.Num(10)}}},
		[]uint64{ids[5]}); err != nil {
		t.Fatal(err)
	}
	head := st.Snapshot()

	pp, _ := pinned.IndexLookup("users", "city", engine.Str("SFO"))
	hp, _ := head.IndexLookup("users", "city", engine.Str("SFO"))
	if len(pp) != 5 {
		t.Fatalf("pinned SFO count = %d, want 5 (pre-mutation)", len(pp))
	}
	if len(hp) != 3 {
		t.Fatalf("head SFO count = %d, want 3 (one moved, one deleted)", len(hp))
	}
	headTab, _ := head.Table("users")
	for _, p := range hp {
		if !engine.Equal(headTab.Rows[p][1], engine.Str("SFO")) {
			t.Fatalf("head position %d is %v", p, headTab.Rows[p][1])
		}
	}
}

// TestStoreIndexConcurrentWritesWithPinnedReader hammers appends and
// mutations while readers pinned to older snapshots keep doing index
// lookups and columnar builds — the -race proof that publishing index
// snapshots into immutable views needs no reader locks.
func TestStoreIndexConcurrentWritesWithPinnedReader(t *testing.T) {
	st := indexedStore(t)
	pinned := st.Snapshot()
	basePos, _ := pinned.IndexLookup("users", "city", engine.Str("ORD"))
	baseN := len(basePos)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Readers: re-validate the pinned snapshot and probe the moving head.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if pos, ok := pinned.IndexLookup("users", "city", engine.Str("ORD")); !ok || len(pos) != baseN {
					t.Errorf("pinned ORD count drifted: %d (ok=%v), want %d", len(pos), ok, baseN)
					return
				}
				v := st.Snapshot()
				if pos, ok := v.IndexLookup("users", "city", engine.Str("ORD")); ok {
					tab, _ := v.Table("users")
					for _, p := range pos {
						if !engine.Equal(tab.Rows[p][1], engine.Str("ORD")) {
							t.Errorf("head position %d is %v at epoch %d", p, tab.Rows[p][1], v.Epoch())
							return
						}
					}
				}
				if ct, ok := v.Columnar("users"); !ok || ct.N != len(mustTable(v)) {
					t.Errorf("columnar rows %d != table rows %d", ct.N, len(mustTable(v)))
					return
				}
			}
		}()
	}
	// Writer: interleave appends and mutations.
	for i := 0; i < 50; i++ {
		if _, err := st.AppendRows("users", [][]engine.Value{
			{engine.Num(float64(100 + i)), engine.Str("ORD"), engine.Num(1)},
		}); err != nil {
			t.Fatal(err)
		}
		v := st.Snapshot()
		ids, _ := v.RowIDs("users")
		if i%3 == 0 && len(ids) > 0 {
			last := ids[len(ids)-1]
			if _, err := st.MutateRows("users",
				[]RowUpdate{{RowID: last, Vals: []engine.Value{engine.Num(float64(100 + i)), engine.Str("SFO"), engine.Num(2)}}},
				nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func mustTable(v *View) [][]engine.Value {
	t, _ := v.Table("users")
	return t.Rows
}

// TestStoreEnableIndexesAndAddTableReapply: EnableIndexes applies the
// auto-selected predicate columns that resolve (counting them), and a
// table added later under a name the selection covers gets its index
// without another call — the re-host/shard-accept path.
func TestStoreEnableIndexesAndAddTableReapply(t *testing.T) {
	st := indexedStore(t)
	n := st.EnableIndexes([]engine.PredicateColumn{
		{Table: "users", Col: "score"},
		{Table: "users", Col: "city"},    // already enabled: still counts as covered
		{Table: "users", Col: "missing"}, // unknown column: skipped
		{Table: "orders", Col: "sku"},    // table not hosted yet: recorded for later
	})
	if n != 2 {
		t.Fatalf("EnableIndexes applied %d, want 2", n)
	}
	if _, ok := st.Snapshot().IndexLookup("users", "score", engine.Num(10)); !ok {
		t.Fatal("score index not serving after EnableIndexes")
	}

	orders := engine.NewTable("orders", "sku", "qty")
	orders.MustAddRow(engine.Str("a-1"), engine.Num(2))
	orders.MustAddRow(engine.Str("b-2"), engine.Num(3))
	st.AddTable(orders)
	pos, ok := st.Snapshot().IndexLookup("orders", "sku", engine.Str("b-2"))
	if !ok || len(pos) != 1 || pos[0] != 1 {
		t.Fatalf("re-applied orders.sku index: pos=%v ok=%v, want [1]", pos, ok)
	}

	// Replacing a table through AddTable must also re-apply.
	orders2 := engine.NewTable("orders", "sku", "qty")
	orders2.MustAddRow(engine.Str("c-3"), engine.Num(1))
	st.AddTable(orders2)
	pos, ok = st.Snapshot().IndexLookup("orders", "sku", engine.Str("c-3"))
	if !ok || len(pos) != 1 || pos[0] != 0 {
		t.Fatalf("replaced orders table index: pos=%v ok=%v, want [0]", pos, ok)
	}
}
