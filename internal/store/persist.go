package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/engine"
	"repro/internal/qlog"
)

// Snapshot is the durable form of one hosted interface: the
// accumulated query log, the dataset (every table's columns and rows)
// and the epochs it was serving at. Table-valued functions are code
// and cannot be serialized; the restore path re-attaches them (see
// Store.AddFunc).
//
// (log, dataset, epoch) is sufficient to come back from a SIGKILL
// without the original log file: the saved log — initial entries plus
// everything ingested since — re-mines to exactly the interface that
// was serving, and the dataset rows load directly instead of being
// regenerated.
type Snapshot struct {
	// FormatVersion guards decoding across format changes.
	FormatVersion int
	// ID and Title identify the hosted interface.
	ID    string
	Title string
	// Epoch is the interface's serving epoch at save time; DataEpoch is
	// the store's data epoch.
	Epoch     uint64
	DataEpoch uint64
	// Seq is the interface's replication sequence number at save time:
	// the count of epoch-bumping publishes streamed (or streamable) to
	// follower replicas. Zero on snapshots written before replication
	// existed — gob leaves absent fields at their zero value, so the
	// format version does not change.
	Seq uint64
	// Log is the accumulated query log (initial + ingested entries).
	Log []qlog.Entry
	// Tables is the dataset, one entry per catalog table.
	Tables []TableData
}

// TableData is one serialized table. RowIDs, NextRowID and MutGen
// carry the MVCC identity state: each row's stable rowid (aligned with
// Rows), the next id the table would assign, and how many mutation
// publishes the table has absorbed. All three gob-decode to zero on
// snapshots written before MVCC existed; Restore detects the
// misalignment and assigns fresh sequential rowids, so old files keep
// loading.
type TableData struct {
	Name string
	Cols []string
	Rows [][]engine.Value

	RowIDs    []uint64
	NextRowID uint64
	MutGen    uint64
}

// FormatVersion is the current snapshot file format.
const FormatVersion = 1

// fileMagic leads every snapshot file; a mismatch means the file is
// not a snapshot at all (as opposed to a corrupt one, which the
// checksum catches).
var fileMagic = []byte("PISNAP01")

// SnapFile returns the snapshot path for an interface ID inside dir.
func SnapFile(dir, id string) string { return filepath.Join(dir, id+".snap") }

// ValidID mirrors the registry's interface-ID rule so a hostile ID
// can never escape the data dir as a path. Every layer that derives a
// file or directory name from an interface ID (snapshots, deltas,
// manifests, WAL directories) gates on it.
func ValidID(id string) bool { return validSnapID(id) }

// validSnapID mirrors the registry's interface-ID rule so a hostile ID
// can never escape the data dir as a path.
func validSnapID(id string) bool {
	if id == "" {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return !strings.Contains(id, "..")
}

// CaptureTables serializes the store's current snapshot into table
// data, in sorted name order for deterministic files. Rows and rowids
// come from the current view's materialization (immutable, shared with
// readers); the rowid allocator and mutation generation come from the
// writer state under the writer lock.
func (s *Store) CaptureTables() []TableData {
	view := s.Snapshot()
	names := view.TableNames()
	out := make([]TableData, 0, len(names))
	for _, name := range names {
		t, ok := view.Table(name)
		if !ok {
			continue
		}
		ids, _ := view.RowIDs(name)
		td := TableData{Name: t.Name, Cols: t.Cols, Rows: t.Rows, RowIDs: ids}
		s.mu.Lock()
		if wt, _, ok := s.lookupWriter(name); ok {
			td.NextRowID = wt.NextID()
			td.MutGen = wt.MutGen()
		}
		s.mu.Unlock()
		out = append(out, td)
	}
	return out
}

// Encode serializes the snapshot into the framed format shared by
// .snap files and shard-to-shard transfers: magic, CRC-32 checksum,
// payload length, gob payload. Because the checksum rides inside the
// frame, a snapshot exported over HTTP during a migration is verified
// end-to-end by the accepting shard exactly like a file read back from
// disk.
func Encode(snap *Snapshot) ([]byte, error) {
	snap.FormatVersion = FormatVersion
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(snap); err != nil {
		return nil, fmt.Errorf("store: encode snapshot %q: %w", snap.ID, err)
	}
	sum := crc32.ChecksumIEEE(payload.Bytes())

	frame := make([]byte, 0, len(fileMagic)+12+payload.Len())
	frame = append(frame, fileMagic...)
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:4], sum)
	binary.BigEndian.PutUint64(hdr[4:12], uint64(payload.Len()))
	frame = append(frame, hdr[:]...)
	frame = append(frame, payload.Bytes()...)
	return frame, nil
}

// Decode verifies and decodes one frame produced by Encode: magic,
// checksum, then gob. A truncated, corrupted or foreign byte stream is
// an error, never a silently wrong snapshot.
func Decode(raw []byte) (*Snapshot, error) {
	if len(raw) < len(fileMagic)+12 {
		return nil, fmt.Errorf("store: snapshot is truncated (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:len(fileMagic)], fileMagic) {
		return nil, fmt.Errorf("store: not a snapshot (bad magic)")
	}
	hdr := raw[len(fileMagic):]
	sum := binary.BigEndian.Uint32(hdr[0:4])
	size := binary.BigEndian.Uint64(hdr[4:12])
	payload := hdr[12:]
	if uint64(len(payload)) != size {
		return nil, fmt.Errorf("store: snapshot is truncated (payload %d bytes, header says %d)",
			len(payload), size)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("store: snapshot failed checksum (got %08x, want %08x)", got, sum)
	}
	var snap Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode snapshot: %w", err)
	}
	if snap.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("store: snapshot has format %d, this build reads %d",
			snap.FormatVersion, FormatVersion)
	}
	return &snap, nil
}

// Save writes the snapshot to dir/<id>.snap durably through
// AtomicWrite — a reader (or a crash) can only ever observe the old
// complete file or the new complete file, never a torn write. Returns
// the byte size of the file.
func Save(dir string, snap *Snapshot) (int64, error) {
	if !validSnapID(snap.ID) {
		return 0, fmt.Errorf("store: invalid snapshot id %q", snap.ID)
	}
	frame, err := Encode(snap)
	if err != nil {
		return 0, err
	}
	if err := AtomicWrite(dir, snap.ID+".snap", frame); err != nil {
		return 0, fmt.Errorf("store: save snapshot %q: %w", snap.ID, err)
	}
	return int64(len(frame)), nil
}

// syncDir fsyncs the directory so the rename itself is durable; a
// failure here is not fatal (the data file is already synced).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// Load reads and verifies one snapshot file (see Decode). A truncated,
// corrupted or foreign file is an error, never a silently wrong
// snapshot.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	snap, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return snap, nil
}

// List returns the snapshot files in dir in sorted order. A missing
// dir is an empty list, not an error (first boot).
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: list snapshots: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".snap") {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// Restore rebuilds a store from the snapshot's tables: each table's
// rows load as-is, keeping their saved rowids (legacy snapshots
// without rowids get fresh sequential ones), and the store resumes at
// the saved data epoch so restored writers continue the sequence
// rather than restarting at 1. Function values are not part of a
// snapshot; callers re-attach them with AddFunc.
func (snap *Snapshot) Restore() (*Store, error) {
	return seed(snap.Tables, snap.DataEpoch)
}

// RestoredLog rebuilds the qlog from the snapshot's entries.
func (snap *Snapshot) RestoredLog() *qlog.Log {
	l := &qlog.Log{}
	for _, e := range snap.Log {
		l.Append(e.SQL, e.Client)
	}
	return l
}
