package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/qlog"
)

func testSnap(id string, seq uint64, rows int) *Snapshot {
	snap := &Snapshot{
		ID:        id,
		Title:     "t",
		Epoch:     seq + 1,
		DataEpoch: seq,
		Seq:       seq,
	}
	t := TableData{Name: "ontime", Cols: []string{"carrier", "delay"}}
	for i := 0; i < rows; i++ {
		t.Rows = append(t.Rows, []engine.Value{engine.Str("AA"), engine.Num(float64(i))})
	}
	snap.Tables = []TableData{t}
	for i := 0; i < int(seq); i++ {
		snap.Log = append(snap.Log, qlog.Entry{SQL: "SELECT 1", Client: "c"})
	}
	return snap
}

func TestCutDeltaApplyRoundTrip(t *testing.T) {
	base := testSnap("iface", 3, 10)
	logLen, tableRows, tableMuts := CoveredCounts(base)

	// Grow: 5 more rows, 2 more log entries, seq 3 -> 5.
	grown := testSnap("iface", 5, 15)

	d, err := CutDelta(grown, base.Seq, logLen, tableRows, tableMuts)
	if err != nil {
		t.Fatalf("CutDelta: %v", err)
	}
	if d.FromSeq != 3 || d.ToSeq != 5 {
		t.Fatalf("delta range = [%d,%d], want [3,5]", d.FromSeq, d.ToSeq)
	}
	if len(d.Tables) != 1 || len(d.Tables[0].Rows) != 5 || d.Tables[0].FromRow != 10 {
		t.Fatalf("table delta = %+v, want 5 rows from row 10", d.Tables)
	}
	if len(d.Log) != 2 {
		t.Fatalf("log delta has %d entries, want 2", len(d.Log))
	}

	if err := d.Apply(base); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if base.Seq != 5 || base.Epoch != grown.Epoch || base.DataEpoch != grown.DataEpoch {
		t.Fatalf("merged position = seq %d epoch %d, want seq 5 epoch %d", base.Seq, base.Epoch, grown.Epoch)
	}
	if got := len(base.Tables[0].Rows); got != 15 {
		t.Fatalf("merged rows = %d, want 15", got)
	}
	if got := len(base.Log); got != 5 {
		t.Fatalf("merged log = %d entries, want 5", got)
	}
}

func TestCutDeltaSkipsUnchangedTables(t *testing.T) {
	snap := testSnap("iface", 4, 8)
	snap.Tables = append(snap.Tables, TableData{Name: "carriers", Cols: []string{"code"},
		Rows: [][]engine.Value{{engine.Str("AA")}}})
	logLen, tableRows, tableMuts := CoveredCounts(snap)

	grown := testSnap("iface", 6, 12)
	grown.Tables = append(grown.Tables, snap.Tables[1]) // carriers unchanged

	d, err := CutDelta(grown, snap.Seq, logLen, tableRows, tableMuts)
	if err != nil {
		t.Fatalf("CutDelta: %v", err)
	}
	if len(d.Tables) != 1 || d.Tables[0].Name != "ontime" {
		t.Fatalf("delta carries tables %+v, want only grown ontime", d.Tables)
	}
}

func TestApplyRefusesGaps(t *testing.T) {
	base := testSnap("iface", 3, 10)
	grown := testSnap("iface", 5, 15)
	logLen, tableRows, tableMuts := CoveredCounts(base)
	d, err := CutDelta(grown, base.Seq, logLen, tableRows, tableMuts)
	if err != nil {
		t.Fatalf("CutDelta: %v", err)
	}

	// Seq gap: applying onto a snapshot that does not end at FromSeq.
	wrong := testSnap("iface", 2, 10)
	if err := d.Apply(wrong); err == nil || !strings.Contains(err.Error(), "continues from seq") {
		t.Fatalf("seq-gap apply error = %v, want continues-from-seq error", err)
	}

	// Row gap: snapshot's table is shorter than FromRow.
	short := testSnap("iface", 3, 7)
	if err := d.Apply(short); err == nil || !strings.Contains(err.Error(), "continues table") {
		t.Fatalf("row-gap apply error = %v, want continues-table error", err)
	}

	// Wrong interface entirely.
	other := testSnap("other", 3, 10)
	if err := d.Apply(other); err == nil {
		t.Fatalf("cross-interface apply succeeded, want error")
	}
}

func TestDeltaEncodeDecodeDetectsCorruption(t *testing.T) {
	grown := testSnap("iface", 5, 15)
	d, err := CutDelta(grown, 3, 3, map[string]int{"ontime": 10}, map[string]uint64{"ontime": 0})
	if err != nil {
		t.Fatalf("CutDelta: %v", err)
	}
	frame, err := EncodeDelta(d)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	back, err := DecodeDelta(frame)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	if back.ToSeq != d.ToSeq || len(back.Tables) != len(d.Tables) {
		t.Fatalf("round trip changed delta: %+v vs %+v", back, d)
	}

	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := DecodeDelta(flipped); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted delta decode error = %v, want checksum error", err)
	}
	if _, err := DecodeDelta(frame[:10]); err == nil {
		t.Fatalf("truncated delta decoded, want error")
	}
}

func TestManifestChainSaveRestore(t *testing.T) {
	dir := t.TempDir()

	base := testSnap("iface", 3, 10)
	if _, err := Save(dir, base); err != nil {
		t.Fatalf("Save base: %v", err)
	}
	logLen, tableRows, tableMuts := CoveredCounts(base)
	m := &Manifest{
		ID:        "iface",
		Base:      "iface.snap",
		Seq:       base.Seq,
		Epoch:     base.Epoch,
		DataEpoch: base.DataEpoch,
		LogLen:    logLen,
		TableRows: tableRows,
		TableMuts: tableMuts,
		Replication: &ReplState{Role: "owner", Term: 7,
			Followers: map[string]uint64{"http://127.0.0.1:9001": 3}},
	}
	if err := SaveManifest(dir, m); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}

	// Two differential saves.
	for _, to := range []uint64{5, 9} {
		grown := testSnap("iface", to, 10+int(to-3)*5)
		d, err := CutDelta(grown, m.Seq, m.LogLen, m.TableRows, m.TableMuts)
		if err != nil {
			t.Fatalf("CutDelta to %d: %v", to, err)
		}
		_, name, err := SaveDelta(dir, d)
		if err != nil {
			t.Fatalf("SaveDelta to %d: %v", to, err)
		}
		m.Deltas = append(m.Deltas, name)
		m.Seq, m.Epoch, m.DataEpoch = grown.Seq, grown.Epoch, grown.DataEpoch
		m.LogLen, m.TableRows, m.TableMuts = CoveredCounts(grown)
		if err := SaveManifest(dir, m); err != nil {
			t.Fatalf("SaveManifest after %d: %v", to, err)
		}
	}

	loaded, err := LoadManifest(dir, "iface")
	if err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if loaded == nil || len(loaded.Deltas) != 2 || loaded.Seq != 9 {
		t.Fatalf("loaded manifest = %+v, want 2 deltas at seq 9", loaded)
	}
	if loaded.Replication == nil || loaded.Replication.Term != 7 {
		t.Fatalf("replication state not preserved: %+v", loaded.Replication)
	}

	merged, err := RestoreChain(dir, loaded)
	if err != nil {
		t.Fatalf("RestoreChain: %v", err)
	}
	want := testSnap("iface", 9, 40)
	if merged.Seq != want.Seq || len(merged.Tables[0].Rows) != len(want.Tables[0].Rows) ||
		len(merged.Log) != len(want.Log) {
		t.Fatalf("merged snapshot seq %d rows %d log %d, want seq %d rows %d log %d",
			merged.Seq, len(merged.Tables[0].Rows), len(merged.Log),
			want.Seq, len(want.Tables[0].Rows), len(want.Log))
	}

	// Missing manifest is (nil, nil), not an error.
	if m2, err := LoadManifest(dir, "absent"); err != nil || m2 != nil {
		t.Fatalf("LoadManifest(absent) = %v, %v; want nil, nil", m2, err)
	}

	// RemoveManifest deletes the manifest and the deltas, not the base.
	if err := RemoveManifest(dir, "iface"); err != nil {
		t.Fatalf("RemoveManifest: %v", err)
	}
	if _, err := os.Stat(ManifestFile(dir, "iface")); !os.IsNotExist(err) {
		t.Fatalf("manifest survives removal: %v", err)
	}
	left, _ := filepath.Glob(filepath.Join(dir, "*.delta"))
	if len(left) != 0 {
		t.Fatalf("deltas survive removal: %v", left)
	}
	if _, err := os.Stat(SnapFile(dir, "iface")); err != nil {
		t.Fatalf("base snapshot removed too: %v", err)
	}
	// Idempotent.
	if err := RemoveManifest(dir, "iface"); err != nil {
		t.Fatalf("second RemoveManifest: %v", err)
	}
}

func TestListIgnoresDeltaAndManifestFiles(t *testing.T) {
	dir := t.TempDir()
	base := testSnap("iface", 3, 2)
	if _, err := Save(dir, base); err != nil {
		t.Fatalf("Save: %v", err)
	}
	d, err := CutDelta(testSnap("iface", 4, 3), 3, 3, map[string]int{"ontime": 2}, map[string]uint64{"ontime": 0})
	if err != nil {
		t.Fatalf("CutDelta: %v", err)
	}
	if _, _, err := SaveDelta(dir, d); err != nil {
		t.Fatalf("SaveDelta: %v", err)
	}
	if err := SaveManifest(dir, &Manifest{ID: "iface", Base: "iface.snap", Seq: 3}); err != nil {
		t.Fatalf("SaveManifest: %v", err)
	}
	files, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(files) != 1 || !strings.HasSuffix(files[0], "iface.snap") {
		t.Fatalf("List = %v, want just the .snap", files)
	}
}
