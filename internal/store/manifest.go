package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Manifest links an interface's durable pieces together: the base
// snapshot, the ordered delta chain on top of it, and the position
// (seq, epochs, covered counts) everything through the last delta
// adds up to — the floor above which WAL records still apply.
// Replication control state (role, term, owner, follower positions)
// rides along so a restarted shard answers ownership questions from
// the term it actually held, not a blank slate.
//
// The manifest is tiny JSON written atomically (AtomicWrite), so the
// chain flips from "base+deltas(n)" to "base+deltas(n+1)" in one
// rename; a crash between the delta write and the manifest write
// leaves an orphaned delta file the next save overwrites or ignores.
type Manifest struct {
	FormatVersion int    `json:"formatVersion"`
	ID            string `json:"id"`
	// Base is the base snapshot's file name inside the data dir.
	Base string `json:"base"`
	// Deltas are the delta file names, in apply order.
	Deltas []string `json:"deltas,omitempty"`
	// Seq/Epoch/DataEpoch are the position base+deltas reconstruct to;
	// WAL records with seq > Seq complete the acked state.
	Seq       uint64 `json:"seq"`
	Epoch     uint64 `json:"epoch"`
	DataEpoch uint64 `json:"dataEpoch"`
	// LogLen and TableRows are the covered counts the next differential
	// save cuts its delta against; TableMuts are the covered mutation
	// generations — a table whose generation moved since the last save
	// rides the next delta as a full replacement, not a tail.
	LogLen    int               `json:"logLen"`
	TableRows map[string]int    `json:"tableRows,omitempty"`
	TableMuts map[string]uint64 `json:"tableMuts,omitempty"`
	// Replication, when present, is the interface's crash-proof
	// replication control state.
	Replication *ReplState `json:"replication,omitempty"`
}

// ReplState is the durable replication control state of one
// interface on one shard.
type ReplState struct {
	// Role is api.RoleOwner or api.RoleFollower (stored as its string).
	Role string `json:"role"`
	// Term is the fencing term the shard held.
	Term uint64 `json:"term"`
	// Owner is the owner's base URL, set on followers.
	Owner string `json:"owner,omitempty"`
	// Followers maps follower address -> last sequence number the owner
	// saw applied there. Refreshed at saves and control-plane changes,
	// so it may trail the live stream; a restarted owner treats every
	// follower as needing re-sync from this floor.
	Followers map[string]uint64 `json:"followers,omitempty"`
}

// ManifestFormatVersion is the current manifest format.
const ManifestFormatVersion = 1

const manifestSuffix = ".manifest.json"

// ManifestFile returns the manifest path for an interface inside dir.
func ManifestFile(dir, id string) string { return filepath.Join(dir, id+manifestSuffix) }

// SaveManifest writes the manifest durably.
func SaveManifest(dir string, m *Manifest) error {
	if !ValidID(m.ID) {
		return fmt.Errorf("store: invalid manifest id %q", m.ID)
	}
	m.FormatVersion = ManifestFormatVersion
	raw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest %q: %w", m.ID, err)
	}
	if err := AtomicWrite(dir, m.ID+manifestSuffix, raw); err != nil {
		return fmt.Errorf("store: save manifest %q: %w", m.ID, err)
	}
	return nil
}

// LoadManifest reads one interface's manifest; a missing file returns
// (nil, nil) — the interface predates differential saves (or was
// saved full-only) and restores through the legacy .snap path.
func LoadManifest(dir, id string) (*Manifest, error) {
	raw, err := os.ReadFile(ManifestFile(dir, id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read manifest %q: %w", id, err)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("store: decode manifest %q: %w", id, err)
	}
	if m.FormatVersion != ManifestFormatVersion {
		return nil, fmt.Errorf("store: manifest %q has format %d, this build reads %d",
			id, m.FormatVersion, ManifestFormatVersion)
	}
	return &m, nil
}

// RemoveManifest deletes the manifest and every delta it references;
// files that never existed are fine. The base snapshot is the
// caller's business (RemoveSnapshot already owns it).
func RemoveManifest(dir, id string) error {
	m, err := LoadManifest(dir, id)
	if err != nil {
		return err
	}
	if m != nil {
		for _, name := range m.Deltas {
			if err := os.Remove(filepath.Join(dir, name)); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("store: remove delta of %q: %w", id, err)
			}
		}
	}
	if err := os.Remove(ManifestFile(dir, id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: remove manifest %q: %w", id, err)
	}
	return nil
}

// RestoreChain loads the base snapshot and folds every delta into it,
// returning the merged snapshot — the state base+deltas cover, on top
// of which the WAL tail replays.
func RestoreChain(dir string, m *Manifest) (*Snapshot, error) {
	snap, err := Load(filepath.Join(dir, m.Base))
	if err != nil {
		return nil, fmt.Errorf("store: restore chain %q: %w", m.ID, err)
	}
	for _, name := range m.Deltas {
		d, err := LoadDelta(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("store: restore chain %q: %w", m.ID, err)
		}
		if err := d.Apply(snap); err != nil {
			return nil, err
		}
	}
	if snap.Seq != m.Seq || snap.Epoch != m.Epoch {
		return nil, fmt.Errorf("store: restore chain %q: base+deltas reach seq %d epoch %d, manifest says seq %d epoch %d",
			m.ID, snap.Seq, snap.Epoch, m.Seq, m.Epoch)
	}
	return snap, nil
}

// CoveredCounts summarizes a snapshot's covered positions for the
// manifest: log length, per-table row counts and per-table mutation
// generations.
func CoveredCounts(snap *Snapshot) (logLen int, tableRows map[string]int, tableMuts map[string]uint64) {
	tableRows = make(map[string]int, len(snap.Tables))
	tableMuts = make(map[string]uint64, len(snap.Tables))
	for _, t := range snap.Tables {
		tableRows[t.Name] = len(t.Rows)
		tableMuts[t.Name] = t.MutGen
	}
	return len(snap.Log), tableRows, tableMuts
}
