package store

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
)

// mutFixture builds a store over one table "m" (cols a, x) with n rows
// a=i*10, x=i for i in [1,n].
func mutFixture(t *testing.T, n int) *Store {
	t.Helper()
	tbl := engine.NewTable("m", "a", "x")
	for i := 1; i <= n; i++ {
		tbl.MustAddRow(engine.Num(float64(i*10)), engine.Num(float64(i)))
	}
	db := engine.NewDB()
	db.AddTable(tbl)
	return FromDB(db)
}

// TestMutateRowsSnapshotIsolation: snapshots taken before a mutation
// keep serving the pre-mutation rows; the post-mutation snapshot sees
// the update and not the deleted row; identity is stable.
func TestMutateRowsSnapshotIsolation(t *testing.T) {
	s := mutFixture(t, 10)
	before := s.Snapshot()
	ids, ok := before.RowIDs("m")
	if !ok || len(ids) != 10 {
		t.Fatalf("RowIDs = %v, ok=%v", ids, ok)
	}

	epoch, err := s.MutateRows("m",
		[]RowUpdate{{RowID: ids[2], Vals: []engine.Value{engine.Num(-1), engine.Num(3)}}},
		[]uint64{ids[9]})
	if err != nil {
		t.Fatal(err)
	}
	if epoch != before.Epoch()+1 {
		t.Fatalf("mutation bumped epoch %d -> %d", before.Epoch(), epoch)
	}

	bt, _ := before.Table("m")
	if len(bt.Rows) != 10 {
		t.Fatalf("pinned snapshot has %d rows after mutation, want 10", len(bt.Rows))
	}
	if v, _ := bt.Rows[2][0].AsNumber(); v != 30 {
		t.Fatalf("pinned snapshot row2 = %v, want 30", bt.Rows[2][0])
	}

	after := s.Snapshot()
	at, _ := after.Table("m")
	if len(at.Rows) != 9 {
		t.Fatalf("post-mutation snapshot has %d rows, want 9", len(at.Rows))
	}
	aids, _ := after.RowIDs("m")
	found := false
	for i, id := range aids {
		if id == ids[9] {
			t.Fatal("deleted row still visible")
		}
		if id == ids[2] {
			found = true
			if v, _ := at.Rows[i][0].AsNumber(); v != -1 {
				t.Fatalf("updated row = %v, want -1", at.Rows[i][0])
			}
		}
	}
	if !found {
		t.Fatal("updated row lost its identity")
	}

	// Unknown rowid refuses without publishing.
	if _, err := s.MutateRows("m", nil, []uint64{9999}); err == nil {
		t.Fatal("unknown rowid accepted")
	}
	if s.Epoch() != epoch {
		t.Fatalf("failed mutation published: epoch %d -> %d", epoch, s.Epoch())
	}
	// Empty set is a no-op, not a bump.
	if e, err := s.MutateRows("m", nil, nil); err != nil || e != epoch {
		t.Fatalf("empty mutation: epoch %d err %v", e, err)
	}
}

// TestMutateRaceHammer pins the tentpole's concurrency claim: readers
// holding a snapshot at epoch E never observe any E+1 mutation, even
// while four writers update and delete concurrently. Run under -race
// (CI does) this also proves the visibility stamps are data-race-free.
func TestMutateRaceHammer(t *testing.T) {
	const writers = 4
	const roundsPerWriter = 50
	s := mutFixture(t, 400)
	pinned := s.Snapshot()
	ids, _ := pinned.RowIDs("m")

	var stop atomic.Bool
	var writersWG, readersWG sync.WaitGroup
	errs := make(chan error, writers+4)

	// Writers: each owns a disjoint quarter of the rowid space; it
	// updates the first half of its quarter and deletes one row per
	// round from the second half.
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			quarter := ids[w*100 : (w+1)*100]
			for r := 0; r < roundsPerWriter; r++ {
				ups := []RowUpdate{
					{RowID: quarter[r%50], Vals: []engine.Value{engine.Num(float64(-w)), engine.Num(float64(r))}},
				}
				var dels []uint64
				if r < 50 {
					dels = []uint64{quarter[50+r]}
				}
				if _, err := s.MutateRows("m", ups, dels); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// Readers: re-materialize the pinned snapshot's rows concurrently
	// with the writers and verify the epoch-E row set byte-for-byte.
	for r := 0; r < 4; r++ {
		readersWG.Add(1)
		go func() {
			defer readersWG.Done()
			for !stop.Load() {
				tab, ok := pinned.Table("m")
				if !ok || len(tab.Rows) != 400 {
					errs <- errRowSet(len(tab.Rows))
					return
				}
				for i := 0; i < 400; i += 37 {
					if v, _ := tab.Rows[i][0].AsNumber(); v != float64((i+1)*10) {
						errs <- errRowSet(i)
						return
					}
				}
			}
		}()
	}

	writersWG.Wait()
	stop.Store(true)
	readersWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The head snapshot reflects every write: 400 - 4*50 deletes.
	head, _ := s.Snapshot().Table("m")
	if len(head.Rows) != 400-writers*50 {
		t.Fatalf("head has %d rows, want %d", len(head.Rows), 400-writers*50)
	}
	// And the pinned snapshot still doesn't.
	if tab, _ := pinned.Table("m"); len(tab.Rows) != 400 {
		t.Fatalf("pinned snapshot ended with %d rows", len(tab.Rows))
	}
}

type errRowSet int

func (e errRowSet) Error() string { return "pinned snapshot changed under concurrent mutations" }

// captureSnap captures a live store as a persistence Snapshot, the way
// the ingest persister does before cutting a delta.
func captureSnap(s *Store, seq uint64) *Snapshot {
	return &Snapshot{
		ID:        "iface",
		Epoch:     seq,
		DataEpoch: s.Epoch(),
		Seq:       seq,
		Tables:    s.CaptureTables(),
	}
}

// TestCutDeltaMutationFoldBoundary exercises the differential cutter
// around the compaction fold: a table that absorbed mutations since the
// last save rides as a Replace delta, the delta is identical whether it
// is cut before or after Compact folds the retired versions, and the
// encoded delta round-trips through Apply onto the previous base.
func TestCutDeltaMutationFoldBoundary(t *testing.T) {
	s := mutFixture(t, 6)
	base := captureSnap(s, 1)
	logLen, tableRows, tableMuts := CoveredCounts(base)
	ids := base.Tables[0].RowIDs

	if _, err := s.MutateRows("m",
		[]RowUpdate{{RowID: ids[0], Vals: []engine.Value{engine.Num(-5), engine.Num(1)}}},
		[]uint64{ids[5]}); err != nil {
		t.Fatal(err)
	}

	pre := captureSnap(s, 2)
	dPre, err := CutDelta(pre, base.Seq, logLen, tableRows, tableMuts)
	if err != nil {
		t.Fatalf("CutDelta before compaction: %v", err)
	}
	if len(dPre.Tables) != 1 || !dPre.Tables[0].Replace {
		t.Fatalf("mutated table rides as %+v, want a Replace delta", dPre.Tables)
	}
	if got := len(dPre.Tables[0].Rows); got != 5 {
		t.Fatalf("Replace delta carries %d rows, want the full 5 visible", got)
	}

	// Compaction folds the retired versions; the cut must not change.
	if dropped := s.Compact(); dropped == 0 {
		t.Fatal("Compact folded nothing after an update and a delete")
	}
	post := captureSnap(s, 2)
	dPost, err := CutDelta(post, base.Seq, logLen, tableRows, tableMuts)
	if err != nil {
		t.Fatalf("CutDelta after compaction: %v", err)
	}
	if !reflect.DeepEqual(dPre.Tables, dPost.Tables) {
		t.Fatalf("delta changed across compaction:\npre  %+v\npost %+v", dPre.Tables, dPost.Tables)
	}

	// Encode/decode/apply the mutation-bearing delta onto the old base.
	frame, err := EncodeDelta(dPre)
	if err != nil {
		t.Fatalf("EncodeDelta: %v", err)
	}
	back, err := DecodeDelta(frame)
	if err != nil {
		t.Fatalf("DecodeDelta: %v", err)
	}
	if err := back.Apply(base); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !reflect.DeepEqual(base.Tables, pre.Tables) {
		t.Fatalf("merged tables diverge from the live capture:\nmerged %+v\nlive   %+v", base.Tables, pre.Tables)
	}

	// The merged snapshot restores to a store whose row identities keep
	// accepting mutations — the property follower catch-up relies on.
	restored, err := base.Restore()
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if _, err := restored.MutateRows("m", nil, []uint64{ids[0]}); err != nil {
		t.Fatalf("restored store rejects a mutation by preserved rowid: %v", err)
	}
}

// TestCutDeltaEmpty: a save with nothing new cuts a delta that carries
// no tables and no log tail, and applying it only advances the chain
// position.
func TestCutDeltaEmpty(t *testing.T) {
	s := mutFixture(t, 4)
	base := captureSnap(s, 1)
	logLen, tableRows, tableMuts := CoveredCounts(base)

	again := captureSnap(s, 1)
	d, err := CutDelta(again, base.Seq, logLen, tableRows, tableMuts)
	if err != nil {
		t.Fatalf("CutDelta: %v", err)
	}
	if len(d.Tables) != 0 || len(d.Log) != 0 {
		t.Fatalf("empty cut carries %d tables, %d log entries", len(d.Tables), len(d.Log))
	}
	if err := d.Apply(base); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if got := len(base.Tables[0].Rows); got != 4 {
		t.Fatalf("empty delta changed the table: %d rows", got)
	}
}
