// Package qlog models query logs: ordered sequences of SQL statements
// with optional client and sequence metadata, plus text-file IO and
// per-client partitioning. It is the system's input boundary (§3: "using
// logs as the system API").
package qlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// Entry is one logged query.
type Entry struct {
	SQL    string
	Client string // client/session identifier ("" when unknown)
	Seq    int    // position within the log
}

// Log is an ordered sequence of queries, assumed to come from a single
// logical analysis unless partitioned by client first.
type Log struct {
	Entries []Entry
}

// FromSQL builds a log from a slice of SQL strings (client "" and
// sequential Seq).
func FromSQL(queries ...string) *Log {
	l := &Log{Entries: make([]Entry, len(queries))}
	for i, q := range queries {
		l.Entries[i] = Entry{SQL: q, Seq: i}
	}
	return l
}

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.Entries) }

// SQLs returns the raw statements in order.
func (l *Log) SQLs() []string {
	out := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.SQL
	}
	return out
}

// Append adds a query to the log.
func (l *Log) Append(sql, client string) {
	l.Entries = append(l.Entries, Entry{SQL: sql, Client: client, Seq: len(l.Entries)})
}

// Slice returns the sub-log [from, to) with sequence numbers rebased.
func (l *Log) Slice(from, to int) *Log {
	if from < 0 {
		from = 0
	}
	if to > len(l.Entries) {
		to = len(l.Entries)
	}
	if from > to {
		from = to
	}
	out := &Log{Entries: make([]Entry, to-from)}
	copy(out.Entries, l.Entries[from:to])
	for i := range out.Entries {
		out.Entries[i].Seq = i
	}
	return out
}

// Parse parses every entry into an AST, failing on the first statement
// that does not parse.
func (l *Log) Parse() ([]*ast.Node, error) {
	out := make([]*ast.Node, len(l.Entries))
	for i, e := range l.Entries {
		n, err := sqlparser.Parse(e.SQL)
		if err != nil {
			return nil, fmt.Errorf("qlog: entry %d (client %q): %w", i, e.Client, err)
		}
		out[i] = n
	}
	return out, nil
}

// PartitionByClient splits the log into per-client logs, preserving
// order within each client. Clients are returned in sorted name order.
func (l *Log) PartitionByClient() []*Log {
	byClient := map[string]*Log{}
	var names []string
	for _, e := range l.Entries {
		cl, ok := byClient[e.Client]
		if !ok {
			cl = &Log{}
			byClient[e.Client] = cl
			names = append(names, e.Client)
		}
		cl.Append(e.SQL, e.Client)
	}
	sort.Strings(names)
	out := make([]*Log, len(names))
	for i, n := range names {
		out[i] = byClient[n]
	}
	return out
}

// Interleave merges several logs round-robin, simulating the
// heterogeneous multi-client logs of §7.2.3.
func Interleave(logs ...*Log) *Log {
	out := &Log{}
	for i := 0; ; i++ {
		progressed := false
		for _, l := range logs {
			if i < len(l.Entries) {
				e := l.Entries[i]
				out.Append(e.SQL, e.Client)
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// Split returns the first n entries as training and the rest as holdout.
func (l *Log) Split(n int) (train, holdout *Log) {
	return l.Slice(0, n), l.Slice(n, len(l.Entries))
}

// Write emits the log in the text format Read accepts: one
// "client<TAB>sql" line per entry (client omitted when empty).
func (l *Log) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		sql := strings.ReplaceAll(e.SQL, "\n", " ")
		var err error
		if e.Client != "" {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", e.Client, sql)
		} else {
			_, err = fmt.Fprintln(bw, sql)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text log format. The simple form is what Write
// emits — one statement per line, optionally "client<TAB>sql" — but
// real logs are messier, so the reader also accepts:
//
//   - multi-line statements: a line that does not start a new statement
//     (and is not ';'-terminated) continues the previous one, and lines
//     inside an unbalanced parenthesis — subqueries wrapped across
//     lines — always continue;
//   - explicit ';' terminators, including several statements per line;
//   - "--" end-of-line comments (quote-aware: a '--' inside a string
//     literal is kept) and full-line "#" comments;
//   - blank lines, which terminate any pending multi-line statement.
//
// The client TAB prefix is recognized on the first line of a statement.
func Read(r io.Reader) (*Log, error) {
	l := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	st := NewStatementScanner()
	for sc.Scan() {
		st.Line(sc.Text())
		for _, e := range st.Drain() {
			l.Append(e.SQL, e.Client)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	st.Flush()
	for _, e := range st.Drain() {
		l.Append(e.SQL, e.Client)
	}
	return l, nil
}

// StatementScanner assembles complete log entries from text lines fed
// incrementally — the streaming core behind Read and the ingest file
// tailer, which sees a log file grow line-by-line and must not split a
// statement across a flush.
//
// Statement boundaries: a ';' (outside string literals) always
// terminates. Without one, a line *continues* the pending statement
// only when it plausibly belongs to it — it is indented, starts with a
// clause keyword (FROM, WHERE, AND, JOIN, ...) or closing punctuation,
// the pending text has an unbalanced '(' or string literal, or it is
// the SELECT body of a pending WITH. Any other line completes the
// pending statement and starts its own entry (so a legacy one-per-line
// log keeps its per-line semantics, and a junk line cannot corrupt the
// statement before it). Blank lines complete the pending statement,
// "#"-lines and "--" comment tails are dropped.
type StatementScanner struct {
	out     []Entry
	pending []string
	client  string
	depth   int  // unclosed '(' across pending lines
	inQuote bool // unclosed string literal across pending lines
}

// NewStatementScanner returns an empty scanner.
func NewStatementScanner() *StatementScanner { return &StatementScanner{} }

// Line feeds one input line (without trailing newline). Completed
// entries accumulate until Drain.
func (s *StatementScanner) Line(line string) {
	indented := len(line) > 0 && (line[0] == ' ' || line[0] == '\t')
	line = strings.TrimSpace(line)
	if line == "" {
		s.Flush()
		return
	}
	if strings.HasPrefix(line, "#") && !s.inQuote {
		return
	}
	if !s.inQuote {
		line = strings.TrimSpace(stripLineComment(line))
		if line == "" {
			return
		}
	}

	continues := s.depth > 0 || s.inQuote ||
		(len(s.pending) > 0 && (indented || continuesStatement(line) ||
			(s.pendingWithNeedsBody() && startsWith(line, "SELECT"))))
	if !continues {
		// The line is a new entry: complete any pending statement and
		// parse the leading "client<TAB>" prefix, if any.
		s.Flush()
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			s.client = line[:i]
			line = strings.TrimSpace(line[i+1:])
		}
	}

	// Split on ';' terminators outside string literals.
	for {
		cut := semicolonIndex(line, s.inQuote)
		if cut < 0 {
			break
		}
		s.push(line[:cut])
		s.Flush()
		line = strings.TrimSpace(line[cut+1:])
		if line == "" {
			return
		}
	}
	s.push(line)
}

// push appends a fragment to the pending statement, updating the paren
// and quote balance.
func (s *StatementScanner) push(frag string) {
	if frag == "" {
		return
	}
	s.pending = append(s.pending, frag)
	inQuote := s.inQuote
	depth := s.depth
	for i := 0; i < len(frag); i++ {
		switch frag[i] {
		case '\'':
			inQuote = !inQuote
		case '(':
			if !inQuote {
				depth++
			}
		case ')':
			if !inQuote && depth > 0 {
				depth--
			}
		}
	}
	s.inQuote = inQuote
	s.depth = depth
}

// Flush completes the pending statement, if any.
func (s *StatementScanner) Flush() {
	if len(s.pending) > 0 {
		sql := strings.Join(s.pending, " ")
		s.out = append(s.out, Entry{SQL: sql, Client: s.client})
	}
	s.pending = s.pending[:0]
	s.client = ""
	s.depth = 0
	s.inQuote = false
}

// Drain returns the completed entries accumulated so far and resets the
// output buffer. Seq fields are zero; callers appending to a Log get
// rebased sequence numbers from Log.Append.
func (s *StatementScanner) Drain() []Entry {
	out := s.out
	s.out = nil
	return out
}

// pendingWithNeedsBody reports whether the pending statement is a WITH
// that still lacks its main SELECT (no SELECT outside parentheses
// yet): only then may a following SELECT line continue it. A complete
// single-line WITH query does not swallow the unrelated SELECT after
// it.
func (s *StatementScanner) pendingWithNeedsBody() bool {
	if len(s.pending) == 0 || !startsWith(s.pending[0], "WITH") {
		return false
	}
	depth, inQuote := 0, false
	for _, frag := range s.pending {
		for i := 0; i < len(frag); i++ {
			switch frag[i] {
			case '\'':
				inQuote = !inQuote
			case '(':
				if !inQuote {
					depth++
				}
			case ')':
				if !inQuote && depth > 0 {
					depth--
				}
			default:
				if !inQuote && depth == 0 && startsWith(frag[i:], "SELECT") &&
					(i == 0 || frag[i-1] == ' ' || frag[i-1] == '\t' || frag[i-1] == ')') {
					return false // body already present
				}
			}
		}
	}
	return true
}

// continuationWords are clause openers that mark an unindented line as
// the continuation of the pending statement rather than a new entry.
var continuationWords = []string{
	"FROM", "WHERE", "GROUP", "ORDER", "HAVING", "LIMIT", "OFFSET", "BY",
	"AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "ON", "AS",
	"JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "CROSS",
	"UNION", "EXCEPT", "INTERSECT",
	"WHEN", "THEN", "ELSE", "END", "DESC", "ASC",
}

// continuesStatement reports whether an unindented line plausibly
// continues a pending statement: it opens with a clause keyword or
// with closing/listing punctuation.
func continuesStatement(line string) bool {
	if line[0] == ')' || line[0] == ',' {
		return true
	}
	for _, kw := range continuationWords {
		if startsWith(line, kw) {
			return true
		}
	}
	return false
}

// startsWith reports a case-insensitive keyword prefix ending at a word
// boundary ("SELECTED" does not start a statement).
func startsWith(s, kw string) bool {
	if len(s) < len(kw) || !strings.EqualFold(s[:len(kw)], kw) {
		return false
	}
	if len(s) == len(kw) {
		return true
	}
	switch s[len(kw)] {
	case ' ', '\t', '(', '*', ';', ',', ')':
		return true
	}
	return false
}

// stripLineComment removes a "--" comment tail, ignoring "--" inside
// single-quoted string literals.
func stripLineComment(line string) string {
	inQuote := false
	for i := 0; i < len(line)-1; i++ {
		switch line[i] {
		case '\'':
			inQuote = !inQuote
		case '-':
			if !inQuote && line[i+1] == '-' {
				return line[:i]
			}
		}
	}
	return line
}

// semicolonIndex returns the index of the first ';' outside string
// literals, or -1. startInQuote carries quote state from prior lines.
func semicolonIndex(line string, startInQuote bool) int {
	inQuote := startInQuote
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\'':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				return i
			}
		}
	}
	return -1
}
