// Package qlog models query logs: ordered sequences of SQL statements
// with optional client and sequence metadata, plus text-file IO and
// per-client partitioning. It is the system's input boundary (§3: "using
// logs as the system API").
package qlog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// Entry is one logged query.
type Entry struct {
	SQL    string
	Client string // client/session identifier ("" when unknown)
	Seq    int    // position within the log
}

// Log is an ordered sequence of queries, assumed to come from a single
// logical analysis unless partitioned by client first.
type Log struct {
	Entries []Entry
}

// FromSQL builds a log from a slice of SQL strings (client "" and
// sequential Seq).
func FromSQL(queries ...string) *Log {
	l := &Log{Entries: make([]Entry, len(queries))}
	for i, q := range queries {
		l.Entries[i] = Entry{SQL: q, Seq: i}
	}
	return l
}

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.Entries) }

// SQLs returns the raw statements in order.
func (l *Log) SQLs() []string {
	out := make([]string, len(l.Entries))
	for i, e := range l.Entries {
		out[i] = e.SQL
	}
	return out
}

// Append adds a query to the log.
func (l *Log) Append(sql, client string) {
	l.Entries = append(l.Entries, Entry{SQL: sql, Client: client, Seq: len(l.Entries)})
}

// Slice returns the sub-log [from, to) with sequence numbers rebased.
func (l *Log) Slice(from, to int) *Log {
	if from < 0 {
		from = 0
	}
	if to > len(l.Entries) {
		to = len(l.Entries)
	}
	if from > to {
		from = to
	}
	out := &Log{Entries: make([]Entry, to-from)}
	copy(out.Entries, l.Entries[from:to])
	for i := range out.Entries {
		out.Entries[i].Seq = i
	}
	return out
}

// Parse parses every entry into an AST, failing on the first statement
// that does not parse.
func (l *Log) Parse() ([]*ast.Node, error) {
	out := make([]*ast.Node, len(l.Entries))
	for i, e := range l.Entries {
		n, err := sqlparser.Parse(e.SQL)
		if err != nil {
			return nil, fmt.Errorf("qlog: entry %d (client %q): %w", i, e.Client, err)
		}
		out[i] = n
	}
	return out, nil
}

// PartitionByClient splits the log into per-client logs, preserving
// order within each client. Clients are returned in sorted name order.
func (l *Log) PartitionByClient() []*Log {
	byClient := map[string]*Log{}
	var names []string
	for _, e := range l.Entries {
		cl, ok := byClient[e.Client]
		if !ok {
			cl = &Log{}
			byClient[e.Client] = cl
			names = append(names, e.Client)
		}
		cl.Append(e.SQL, e.Client)
	}
	sort.Strings(names)
	out := make([]*Log, len(names))
	for i, n := range names {
		out[i] = byClient[n]
	}
	return out
}

// Interleave merges several logs round-robin, simulating the
// heterogeneous multi-client logs of §7.2.3.
func Interleave(logs ...*Log) *Log {
	out := &Log{}
	for i := 0; ; i++ {
		progressed := false
		for _, l := range logs {
			if i < len(l.Entries) {
				e := l.Entries[i]
				out.Append(e.SQL, e.Client)
				progressed = true
			}
		}
		if !progressed {
			return out
		}
	}
}

// Split returns the first n entries as training and the rest as holdout.
func (l *Log) Split(n int) (train, holdout *Log) {
	return l.Slice(0, n), l.Slice(n, len(l.Entries))
}

// Write emits the log in the text format Read accepts: one
// "client<TAB>sql" line per entry (client omitted when empty).
func (l *Log) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.Entries {
		sql := strings.ReplaceAll(e.SQL, "\n", " ")
		var err error
		if e.Client != "" {
			_, err = fmt.Fprintf(bw, "%s\t%s\n", e.Client, sql)
		} else {
			_, err = fmt.Fprintln(bw, sql)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the text format written by Write. Lines starting with
// "--" or "#" and blank lines are skipped. A line containing a tab is
// treated as "client<TAB>sql".
func Read(r io.Reader) (*Log, error) {
	l := &Log{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") || strings.HasPrefix(line, "#") {
			continue
		}
		client := ""
		sql := line
		if i := strings.IndexByte(line, '\t'); i >= 0 {
			client, sql = line[:i], strings.TrimSpace(line[i+1:])
		}
		l.Append(sql, client)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}
