package qlog

import (
	"bytes"
	"strings"
	"testing"
)

func TestFromSQLAndSlice(t *testing.T) {
	l := FromSQL("SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	s := l.Slice(1, 3)
	if s.Len() != 2 || s.Entries[0].SQL != "SELECT b FROM t" || s.Entries[0].Seq != 0 {
		t.Fatalf("Slice wrong: %+v", s.Entries)
	}
	if out := l.Slice(-5, 99); out.Len() != 3 {
		t.Fatalf("clamped slice = %d", out.Len())
	}
	if out := l.Slice(2, 1); out.Len() != 0 {
		t.Fatalf("inverted slice = %d", out.Len())
	}
}

func TestParseReportsEntry(t *testing.T) {
	l := FromSQL("SELECT a FROM t", "NOT SQL AT ALL ~~~")
	if _, err := l.Parse(); err == nil || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("error should name the failing entry: %v", err)
	}
	good := FromSQL("SELECT a FROM t", "SELECT b FROM u")
	qs, err := good.Parse()
	if err != nil || len(qs) != 2 {
		t.Fatalf("parse: %v, %d", err, len(qs))
	}
}

func TestPartitionByClient(t *testing.T) {
	l := &Log{}
	l.Append("SELECT a FROM t", "c2")
	l.Append("SELECT b FROM t", "c1")
	l.Append("SELECT c FROM t", "c2")
	parts := l.PartitionByClient()
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Entries[0].Client != "c1" || parts[1].Len() != 2 {
		t.Fatalf("partition wrong: %+v", parts)
	}
	// Order within a client is preserved.
	if parts[1].Entries[0].SQL != "SELECT a FROM t" {
		t.Fatal("client order not preserved")
	}
}

func TestInterleave(t *testing.T) {
	a := &Log{}
	a.Append("SELECT a1 FROM t", "a")
	a.Append("SELECT a2 FROM t", "a")
	b := &Log{}
	b.Append("SELECT b1 FROM t", "b")
	out := Interleave(a, b)
	got := make([]string, out.Len())
	for i, e := range out.Entries {
		got[i] = e.Client
	}
	want := "a,b,a"
	if strings.Join(got, ",") != want {
		t.Fatalf("interleave order = %v, want %s", got, want)
	}
}

func TestSplit(t *testing.T) {
	l := FromSQL("SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t", "SELECT d FROM t")
	train, hold := l.Split(3)
	if train.Len() != 3 || hold.Len() != 1 {
		t.Fatalf("split = %d/%d", train.Len(), hold.Len())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	l := &Log{}
	l.Append("SELECT a FROM t WHERE x = 1", "c1")
	l.Append("SELECT b\nFROM t", "") // embedded newline flattened
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip len = %d", back.Len())
	}
	if back.Entries[0].Client != "c1" || back.Entries[0].SQL != "SELECT a FROM t WHERE x = 1" {
		t.Fatalf("entry 0 = %+v", back.Entries[0])
	}
	if back.Entries[1].Client != "" || back.Entries[1].SQL != "SELECT b FROM t" {
		t.Fatalf("entry 1 = %+v", back.Entries[1])
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "-- header\n\n# note\nSELECT a FROM t\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}
