package qlog

import (
	"bytes"
	"strings"
	"testing"
)

func TestFromSQLAndSlice(t *testing.T) {
	l := FromSQL("SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t")
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	s := l.Slice(1, 3)
	if s.Len() != 2 || s.Entries[0].SQL != "SELECT b FROM t" || s.Entries[0].Seq != 0 {
		t.Fatalf("Slice wrong: %+v", s.Entries)
	}
	if out := l.Slice(-5, 99); out.Len() != 3 {
		t.Fatalf("clamped slice = %d", out.Len())
	}
	if out := l.Slice(2, 1); out.Len() != 0 {
		t.Fatalf("inverted slice = %d", out.Len())
	}
}

func TestParseReportsEntry(t *testing.T) {
	l := FromSQL("SELECT a FROM t", "NOT SQL AT ALL ~~~")
	if _, err := l.Parse(); err == nil || !strings.Contains(err.Error(), "entry 1") {
		t.Fatalf("error should name the failing entry: %v", err)
	}
	good := FromSQL("SELECT a FROM t", "SELECT b FROM u")
	qs, err := good.Parse()
	if err != nil || len(qs) != 2 {
		t.Fatalf("parse: %v, %d", err, len(qs))
	}
}

func TestPartitionByClient(t *testing.T) {
	l := &Log{}
	l.Append("SELECT a FROM t", "c2")
	l.Append("SELECT b FROM t", "c1")
	l.Append("SELECT c FROM t", "c2")
	parts := l.PartitionByClient()
	if len(parts) != 2 {
		t.Fatalf("parts = %d", len(parts))
	}
	if parts[0].Entries[0].Client != "c1" || parts[1].Len() != 2 {
		t.Fatalf("partition wrong: %+v", parts)
	}
	// Order within a client is preserved.
	if parts[1].Entries[0].SQL != "SELECT a FROM t" {
		t.Fatal("client order not preserved")
	}
}

func TestInterleave(t *testing.T) {
	a := &Log{}
	a.Append("SELECT a1 FROM t", "a")
	a.Append("SELECT a2 FROM t", "a")
	b := &Log{}
	b.Append("SELECT b1 FROM t", "b")
	out := Interleave(a, b)
	got := make([]string, out.Len())
	for i, e := range out.Entries {
		got[i] = e.Client
	}
	want := "a,b,a"
	if strings.Join(got, ",") != want {
		t.Fatalf("interleave order = %v, want %s", got, want)
	}
}

func TestSplit(t *testing.T) {
	l := FromSQL("SELECT a FROM t", "SELECT b FROM t", "SELECT c FROM t", "SELECT d FROM t")
	train, hold := l.Split(3)
	if train.Len() != 3 || hold.Len() != 1 {
		t.Fatalf("split = %d/%d", train.Len(), hold.Len())
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	l := &Log{}
	l.Append("SELECT a FROM t WHERE x = 1", "c1")
	l.Append("SELECT b\nFROM t", "") // embedded newline flattened
	var buf bytes.Buffer
	if err := l.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round trip len = %d", back.Len())
	}
	if back.Entries[0].Client != "c1" || back.Entries[0].SQL != "SELECT a FROM t WHERE x = 1" {
		t.Fatalf("entry 0 = %+v", back.Entries[0])
	}
	if back.Entries[1].Client != "" || back.Entries[1].SQL != "SELECT b FROM t" {
		t.Fatalf("entry 1 = %+v", back.Entries[1])
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "-- header\n\n# note\nSELECT a FROM t\n"
	l, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

// TestReadStatements is the table-driven spec for the statement
// scanner: multi-line statements, ';' terminators, quote-aware '--'
// comments, client prefixes and paren-wrapped subqueries.
func TestReadStatements(t *testing.T) {
	type entry struct{ client, sql string }
	cases := []struct {
		name string
		in   string
		want []entry
	}{
		{
			name: "one per line legacy",
			in:   "SELECT a FROM t\nSELECT b FROM t\n",
			want: []entry{{"", "SELECT a FROM t"}, {"", "SELECT b FROM t"}},
		},
		{
			name: "multi-line continuation",
			in:   "SELECT a, b\n  FROM t\n  WHERE x = 1\nSELECT c FROM u\n",
			want: []entry{{"", "SELECT a, b FROM t WHERE x = 1"}, {"", "SELECT c FROM u"}},
		},
		{
			name: "semicolon terminators",
			in:   "SELECT a\nFROM t;\nSELECT b FROM u;",
			want: []entry{{"", "SELECT a FROM t"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "two statements one line",
			in:   "SELECT a FROM t; SELECT b FROM u\n",
			want: []entry{{"", "SELECT a FROM t"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "trailing comment stripped",
			in:   "SELECT a FROM t -- grab a\n  WHERE x = 1 -- filter\n",
			want: []entry{{"", "SELECT a FROM t WHERE x = 1"}},
		},
		{
			name: "dashes inside string literal kept",
			in:   "SELECT a FROM t WHERE note = 'a -- b'\n",
			want: []entry{{"", "SELECT a FROM t WHERE note = 'a -- b'"}},
		},
		{
			name: "semicolon inside string literal kept",
			in:   "SELECT a FROM t WHERE note = 'x; y'; SELECT b FROM u\n",
			want: []entry{{"", "SELECT a FROM t WHERE note = 'x; y'"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "client prefix on first line",
			in:   "alice\tSELECT a\n  FROM t\nbob\tSELECT b FROM u\n",
			want: []entry{{"alice", "SELECT a FROM t"}, {"bob", "SELECT b FROM u"}},
		},
		{
			name: "subquery SELECT at line start continues",
			in:   "SELECT * FROM (\nSELECT a FROM t\n) q\nSELECT b FROM u\n",
			want: []entry{{"", "SELECT * FROM ( SELECT a FROM t ) q"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "blank line terminates pending",
			in:   "SELECT a\nFROM t\n\nSELECT b FROM u\n",
			want: []entry{{"", "SELECT a FROM t"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "comment only lines",
			in:   "-- preamble\n# hash note\nSELECT a FROM t\n-- postscript\n",
			want: []entry{{"", "SELECT a FROM t"}},
		},
		{
			name: "unterminated final statement flushes at EOF",
			in:   "SELECT a\nFROM t",
			want: []entry{{"", "SELECT a FROM t"}},
		},
		{
			name: "junk line does not merge into its neighbor",
			in:   "SELECT a FROM t\nEXEC sp_foo\nSELECT b FROM t\n",
			want: []entry{{"", "SELECT a FROM t"}, {"", "EXEC sp_foo"}, {"", "SELECT b FROM t"}},
		},
		{
			name: "unindented clause keyword continues",
			in:   "SELECT a FROM t\nWHERE x = 1\nAND y = 2\nSELECT b FROM u\n",
			want: []entry{{"", "SELECT a FROM t WHERE x = 1 AND y = 2"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "WITH starts a statement",
			in:   "WITH q AS (SELECT a FROM t)\nSELECT * FROM q;\nSELECT b FROM u\n",
			want: []entry{{"", "WITH q AS (SELECT a FROM t) SELECT * FROM q"}, {"", "SELECT b FROM u"}},
		},
		{
			name: "complete one-line WITH does not swallow next SELECT",
			in:   "WITH q AS (SELECT a FROM t) SELECT * FROM q\nSELECT b FROM u\nSELECT c FROM u\n",
			want: []entry{
				{"", "WITH q AS (SELECT a FROM t) SELECT * FROM q"},
				{"", "SELECT b FROM u"},
				{"", "SELECT c FROM u"},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := Read(strings.NewReader(tc.in))
			if err != nil {
				t.Fatal(err)
			}
			if l.Len() != len(tc.want) {
				t.Fatalf("got %d entries %+v, want %d", l.Len(), l.Entries, len(tc.want))
			}
			for i, w := range tc.want {
				if l.Entries[i].Client != w.client || l.Entries[i].SQL != w.sql {
					t.Errorf("entry %d = {%q %q}, want {%q %q}",
						i, l.Entries[i].Client, l.Entries[i].SQL, w.client, w.sql)
				}
				if l.Entries[i].Seq != i {
					t.Errorf("entry %d seq = %d", i, l.Entries[i].Seq)
				}
			}
		})
	}
}

// TestStatementScannerIncremental drives the scanner the way the file
// tailer does: line fragments arrive one at a time, Drain between
// lines, Flush only at the very end.
func TestStatementScannerIncremental(t *testing.T) {
	sc := NewStatementScanner()
	var got []Entry
	for _, line := range []string{"SELECT a,", "  b FROM t;", "tail\tSELECT c", "FROM u"} {
		sc.Line(line)
		got = append(got, sc.Drain()...)
	}
	if len(got) != 1 || got[0].SQL != "SELECT a, b FROM t" {
		t.Fatalf("mid-stream entries = %+v", got)
	}
	sc.Flush()
	got = append(got, sc.Drain()...)
	if len(got) != 2 || got[1].Client != "tail" || got[1].SQL != "SELECT c FROM u" {
		t.Fatalf("final entries = %+v", got)
	}
}
