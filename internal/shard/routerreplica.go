package shard

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/replica"
	"repro/pi/client"
)

// This file is the router half of the replication layer: placement
// from owner claims with term-based conflict resolution, the per-
// refresh reconciliation that drives every owner toward its desired
// follower set, read fan-out across in-sync followers, failover
// (promote the most-caught-up follower when the owner dies) and the
// probe backoff that keeps dead shards from being hammered.

// ownerClaim is one live shard's claim to own an interface, as seen in
// its health listing. info is nil for unreplicated owners.
type ownerClaim struct {
	addr string
	info *api.ReplicationInfo
}

func (c ownerClaim) term() uint64 {
	if c.info == nil {
		return 0
	}
	return c.info.Term
}

// demotion fences a shard that lost an ownership term race.
type demotion struct {
	id    string
	loser string // shard to demote
	to    string // winning owner it should point its tombstone at
	term  uint64 // winning term (the fence)
}

// resolveOwners picks between two conflicting ownership claims. A
// strictly higher replication term wins outright — a promotion
// happened while the loser was partitioned, so the loser is provably
// stale and must be fenced (demoted). At equal terms neither claim is
// provably stale (a crashed migration, or two unreplicated copies), so
// the currently placed — then lexicographically first — shard wins
// deterministically and nobody is demoted; the operator resolves it.
func resolveOwners(id string, a, b ownerClaim, cur string) (win, lose ownerClaim, fence bool) {
	_ = id
	switch {
	case a.term() > b.term():
		return a, b, true
	case b.term() > a.term():
		return b, a, true
	}
	if b.addr == cur && a.addr != cur {
		return b, a, false
	}
	if a.addr == cur {
		return a, b, false
	}
	if a.addr < b.addr {
		return a, b, false
	}
	return b, a, false
}

// demoteStale tells a lost-term ex-owner to fence itself (tombstone
// pointing at the winner, then drop the copy). Best-effort: a miss is
// retried by the next refresh observing the same conflict.
func (rt *Router) demoteStale(d demotion) {
	rt.mu.RLock()
	conn := rt.shards[d.loser]
	rt.mu.RUnlock()
	if conn == nil {
		return
	}
	ctx, cancel := rt.callCtx(nil)
	defer cancel()
	_ = conn.rep.Demote(ctx, d.id, d.to, d.term)
}

// --- replica-set tracking (the owner's view, cached per refresh).

// repFollower is the router's cached view of one follower.
type repFollower struct {
	synced bool
	seq    uint64
}

// replicaSet caches an interface's replication state between
// refreshes: the owner's term, its followers, and the round-robin
// cursor read fan-out walks with.
type replicaSet struct {
	term      uint64
	followers map[string]repFollower
	rr        uint64
}

// newReplicaSet builds the cached view from an owner's health row,
// carrying the round-robin cursor over so fan-out does not reset to
// the same follower after every refresh.
func newReplicaSet(info *api.ReplicationInfo, old *replicaSet) *replicaSet {
	rs := &replicaSet{followers: map[string]repFollower{}}
	if old != nil {
		rs.rr = old.rr
	}
	if info == nil {
		return rs
	}
	rs.term = info.Term
	for _, f := range info.Followers {
		rs.followers[f.Addr] = repFollower{synced: f.Synced, seq: f.Seq}
	}
	return rs
}

// --- reconciliation: drive owners toward their desired follower sets.

// desiredFollowers ranks the live shards after owner by rendezvous
// score and takes Replicas-1 of them — the same stable hashing as
// Want, so follower placement survives membership churn the way
// ownership does.
func (rt *Router) desiredFollowers(id, owner string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	type scored struct {
		addr  string
		score uint64
	}
	cands := make([]scored, 0, len(rt.order))
	for _, addr := range rt.order {
		if addr == owner {
			continue
		}
		if conn := rt.shards[addr]; conn == nil || conn.down {
			continue
		}
		cands = append(cands, scored{addr, rendezvousScore(addr, id)})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	n := rt.opts.Replicas - 1
	if n > len(cands) {
		n = len(cands)
	}
	out := make([]string, 0, n)
	for _, c := range cands[:n] {
		out = append(out, c.addr)
	}
	return out
}

// sameFollowers reports whether the owner's follower list already
// matches the desired addresses, all in sync — the no-op case a
// refresh should not bother re-posting.
func sameFollowers(have []api.ReplicaFollower, want []string) bool {
	if len(have) != len(want) {
		return false
	}
	byAddr := make(map[string]api.ReplicaFollower, len(have))
	for _, f := range have {
		byAddr[f.Addr] = f
	}
	for _, addr := range want {
		f, ok := byAddr[addr]
		if !ok || !f.Synced {
			return false
		}
	}
	return true
}

// ensureReplication posts each owned interface's desired follower set
// to its owner. SetTargets on the shard re-seeds only new or stale
// followers, so re-posting after a failed seed is the retry mechanism:
// the refresh loop is the replication reconciler, no separate daemon.
func (rt *Router) ensureReplication(ctx context.Context, claims map[string]ownerClaim) {
	if rt.opts.Replicas <= 1 {
		return
	}
	var wg sync.WaitGroup
	for id, c := range claims {
		want := rt.desiredFollowers(id, c.addr)
		if len(want) == 0 && (c.info == nil || len(c.info.Followers) == 0) {
			continue
		}
		if c.info != nil && sameFollowers(c.info.Followers, want) {
			continue
		}
		wg.Add(1)
		go func(id, owner string, want []string) {
			defer wg.Done()
			rt.mu.RLock()
			conn := rt.shards[owner]
			rt.mu.RUnlock()
			if conn == nil {
				return
			}
			cctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
			defer cancel()
			_, _ = conn.rep.Targets(cctx, id, want)
		}(id, c.addr, want)
	}
	wg.Wait()
}

// --- read fan-out.

// proxyRead routes a read-only operation: with fan-out enabled it
// first tries the round-robin pick among in-sync followers, falling
// back to the owner (the normal proxy path, failover included) on ANY
// follower failure — fan-out spreads load, it never trades away an
// answer the owner could have given.
func (rt *Router) proxyRead(id string, fn func(ctx context.Context, c *client.Client) error) error {
	return rt.proxyReadCtx(context.Background(), id, fn)
}

func (rt *Router) proxyReadCtx(parent context.Context, id string, fn func(ctx context.Context, c *client.Client) error) error {
	if conn := rt.readTarget(id); conn != nil {
		ctx, cancel := rt.callCtx(parent)
		start := time.Now()
		err := fn(ctx, conn.c)
		cancel()
		conn.mx.proxied.Inc()
		conn.mx.dur.Observe(time.Since(start))
		if err == nil {
			return nil
		}
		// Only transport failures count as proxy errors: a structured
		// api.Error means the follower answered (lagging, moved, ...).
		var ae *api.Error
		if !errors.As(err, &ae) {
			conn.mx.errs.Inc()
		}
		rt.markFollowerFailed(id, conn.addr)
	}
	return rt.proxyOp(parent, id, true, fn)
}

// readTarget picks the next read target for the interface, or nil when
// the read should go to the owner (fan-out off, no usable followers,
// or the owner's turn in the rotation — the owner serves reads too, it
// is a replica like any other).
func (rt *Router) readTarget(id string) *shardConn {
	if !rt.opts.ReadFanout {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rs := rt.reps[id]
	if rs == nil || len(rs.followers) == 0 {
		return nil
	}
	owner := rt.place[id]
	cands := make([]string, 0, len(rs.followers)+1)
	for addr, f := range rs.followers {
		if conn := rt.shards[addr]; f.synced && conn != nil && !conn.down {
			cands = append(cands, addr)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	sort.Strings(cands)
	all := append(cands, owner)
	pick := all[rs.rr%uint64(len(all))]
	rs.rr++
	if pick == owner {
		return nil
	}
	return rt.shards[pick]
}

// markFollowerFailed drops a follower out of the read rotation until
// the next refresh re-reports it in sync.
func (rt *Router) markFollowerFailed(id, addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rs := rt.reps[id]; rs != nil {
		if f, ok := rs.followers[addr]; ok {
			f.synced = false
			rs.followers[addr] = f
		}
	}
}

// --- failover.

// failover promotes the best surviving replica of id after its owner
// at deadAddr stopped answering. Returns the new owner's address. Per
// interface singleflight: the first caller runs the election, everyone
// else waits for its outcome. The election:
//
//  1. ask every other shard where its copy stands — (term, seq, epoch);
//  2. keep candidates that are not stale by their own account AND were
//     in sync by the dead owner's last reported view (a follower that
//     missed an acked write does not always know it — the owner's view
//     is the authority on who has everything that was acked);
//  3. promote the best candidate at term max(observed)+1 — the CAS
//     that fences the ex-owner: its late writes die with term_mismatch
//     (or fence it outright) when they reach any survivor;
//  4. flip the placement; the next refresh re-seeds a replacement
//     follower via ensureReplication.
func (rt *Router) failover(id, deadAddr string) (string, bool) {
	rt.foMu.Lock()
	if ch, inflight := rt.foInflight[id]; inflight {
		rt.foMu.Unlock()
		<-ch
		rt.mu.RLock()
		cur := rt.place[id]
		rt.mu.RUnlock()
		return cur, cur != "" && cur != deadAddr
	}
	ch := make(chan struct{})
	rt.foInflight[id] = ch
	rt.foMu.Unlock()
	defer func() {
		rt.foMu.Lock()
		delete(rt.foInflight, id)
		rt.foMu.Unlock()
		close(ch)
	}()

	rt.mu.RLock()
	cur := rt.place[id]
	ownerView := rt.reps[id]
	conns := make([]*shardConn, 0, len(rt.order))
	for _, addr := range rt.order {
		if addr != deadAddr {
			conns = append(conns, rt.shards[addr])
		}
	}
	rt.mu.RUnlock()
	if cur != "" && cur != deadAddr {
		return cur, true // a concurrent failover (or refresh) already flipped it
	}
	if len(conns) == 0 {
		return "", false
	}

	stats := make([]*replica.StatusResponse, len(conns))
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn *shardConn) {
			defer wg.Done()
			ctx, cancel := rt.callCtx(nil)
			defer cancel()
			if st, err := conn.rep.Status(ctx, id); err == nil {
				stats[i] = st
			}
		}(i, conn)
	}
	wg.Wait()

	type cand struct {
		conn *shardConn
		st   *replica.StatusResponse
	}
	var maxTerm uint64
	var cands []cand
	for i, st := range stats {
		if st == nil {
			continue
		}
		if st.Info.Term > maxTerm {
			maxTerm = st.Info.Term
		}
		if st.Info.Stale {
			continue
		}
		if ownerView != nil {
			if f, tracked := ownerView.followers[conns[i].addr]; tracked && !f.synced {
				continue // the dead owner had already written this one off
			}
		}
		cands = append(cands, cand{conn: conns[i], st: st})
	}
	if len(cands) == 0 {
		return "", false
	}
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i].st, cands[j].st
		if a.Info.Term != b.Info.Term {
			return a.Info.Term > b.Info.Term
		}
		if a.Info.Seq != b.Info.Seq {
			return a.Info.Seq > b.Info.Seq
		}
		if a.Epoch != b.Epoch {
			return a.Epoch > b.Epoch
		}
		return cands[i].conn.addr < cands[j].conn.addr
	})

	newTerm := maxTerm + 1
	for _, c := range cands {
		targets := make([]replica.PromoteTarget, 0, len(cands)-1)
		for _, o := range cands {
			if o.conn.addr != c.conn.addr {
				targets = append(targets, replica.PromoteTarget{Addr: o.conn.addr, Seq: o.st.Info.Seq})
			}
		}
		ctx, cancel := rt.callCtx(nil)
		st, err := c.conn.rep.Promote(ctx, id, newTerm, targets)
		cancel()
		if err != nil {
			continue // next-best survivor gets its chance
		}
		rt.mu.Lock()
		rt.place[id] = c.conn.addr
		rt.reps[id] = newReplicaSet(&st.Info, rt.reps[id])
		rt.mu.Unlock()
		mxFailovers.Inc()
		return c.conn.addr, true
	}
	return "", false
}

// FailoverInterface forces a failover election for one interface, as
// if its current owner were dead — the manual big red button for an
// owner that is misbehaving rather than gone. The ex-owner, if it is
// actually alive, is fenced by the next refresh observing the new
// term.
func (rt *Router) FailoverInterface(id string) (string, *api.Error) {
	rt.mu.RLock()
	cur := rt.place[id]
	rt.mu.RUnlock()
	if cur == "" {
		return "", api.Errf(api.CodeNotFound, http.StatusNotFound,
			"no shard hosts interface %q", id)
	}
	addr, ok := rt.failover(id, cur)
	if !ok {
		return "", api.Errf(api.CodeReplicaOutOfSync, http.StatusConflict,
			"failover %q: no in-sync replica to promote", id)
	}
	return addr, nil
}

// --- probe backoff.

const (
	// probeBackoffBase is the wait after a shard's first failure.
	probeBackoffBase = time.Second
	// probeBackoffCap bounds the exponential growth.
	probeBackoffCap = time.Minute
)

// bumpBackoffLocked records one more failed contact and schedules the
// next probe with jittered exponential backoff. Caller holds rt.mu.
func (rt *Router) bumpBackoffLocked(conn *shardConn) {
	conn.down = true
	conn.mx.probeFail.Inc()
	conn.mx.down.Set(1)
	if conn.failures < 30 {
		conn.failures++
	}
	d := probeBackoffBase << (conn.failures - 1)
	if d <= 0 || d > probeBackoffCap {
		d = probeBackoffCap
	}
	// Jitter over [d/2, d]: routers that observed the same death (or one
	// router's refresh and proxy paths) spread their re-probes instead
	// of stampeding the recovering shard.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	conn.nextProbe = time.Now().Add(d)
}

// ForceRefresh clears every shard's probe backoff and refreshes: the
// operator's explicit POST /v1/router/refresh always probes the whole
// fleet, including shards a backoff window would skip. It is the
// escape hatch after restarting a dead shard — without it the router
// would not notice the revival until the (up to one minute) backoff
// expired.
func (rt *Router) ForceRefresh(ctx context.Context) []api.ShardHealth {
	rt.mu.Lock()
	for _, conn := range rt.shards {
		conn.nextProbe = time.Time{}
	}
	rt.mu.Unlock()
	return rt.Refresh(ctx)
}

// noteShardDown is the proxy path's report of a transport failure, so
// refresh backoff and target selection see deaths between refreshes.
func (rt *Router) noteShardDown(addr string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if conn, ok := rt.shards[addr]; ok {
		rt.bumpBackoffLocked(conn)
	}
}
