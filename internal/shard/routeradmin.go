package shard

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"

	"repro/internal/api"
	"repro/internal/server"
)

// RouterStatus is the router-admin view of the fleet: per-shard
// liveness plus the placement map and pins.
type RouterStatus struct {
	Shards     []api.ShardHealth `json:"shards"`
	Placement  map[string]string `json:"placement"`
	Pins       map[string]string `json:"pins,omitempty"`
	Interfaces int               `json:"interfaces"`
}

// Status polls every shard and reports fleet state.
func (rt *Router) Status() *RouterStatus {
	h := rt.Health()
	st := &RouterStatus{
		Shards:    h.Shards,
		Placement: rt.Placement(),
	}
	st.Interfaces = len(st.Placement)
	rt.mu.RLock()
	if len(rt.pins) > 0 {
		st.Pins = make(map[string]string, len(rt.pins))
		for id, addr := range rt.pins {
			st.Pins[id] = addr
		}
	}
	rt.mu.RUnlock()
	return st
}

// migrateRequest is the body of POST /v1/router/migrate.
type migrateRequest struct {
	ID string `json:"id"`
	To string `json:"to"`
}

// ReplicationStatus is the router-admin view of the fleet's replica
// sets: policy knobs plus, per interface, who owns it at which term
// and where its followers stand.
type ReplicationStatus struct {
	Replicas   int                         `json:"replicas"`
	ReadFanout bool                        `json:"readFanout"`
	Failover   bool                        `json:"failover"`
	Interfaces map[string]ReplicaPlacement `json:"interfaces"`
}

// ReplicaPlacement is one interface's replica set as the router last
// observed it.
type ReplicaPlacement struct {
	Owner     string                `json:"owner"`
	Term      uint64                `json:"term"`
	Followers []api.ReplicaFollower `json:"followers,omitempty"`
}

// Replication reports the router's cached replica-set view (from the
// last refresh, repaired by failovers since).
func (rt *Router) Replication() *ReplicationStatus {
	st := &ReplicationStatus{
		Replicas:   rt.opts.Replicas,
		ReadFanout: rt.opts.ReadFanout,
		Failover:   rt.opts.Failover,
		Interfaces: map[string]ReplicaPlacement{},
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	for id, owner := range rt.place {
		p := ReplicaPlacement{Owner: owner}
		if rs := rt.reps[id]; rs != nil {
			p.Term = rs.term
			addrs := make([]string, 0, len(rs.followers))
			for addr := range rs.followers {
				addrs = append(addrs, addr)
			}
			sort.Strings(addrs)
			for _, addr := range addrs {
				f := rs.followers[addr]
				p.Followers = append(p.Followers, api.ReplicaFollower{
					Addr: addr, Synced: f.synced, Seq: f.seq,
				})
			}
		}
		st.Interfaces[id] = p
	}
	return st
}

// failoverRequest is the body of POST /v1/router/failover.
type failoverRequest struct {
	ID string `json:"id"`
}

// FailoverResult reports one forced (or automatic) promotion.
type FailoverResult struct {
	ID    string `json:"id"`
	Owner string `json:"owner"` // promoted shard
}

// AdminHandler returns the router-admin surface, meant to be mounted
// at /v1/router/ beside the proxied v1 API (server.WithAdmin):
//
//	GET  /v1/router/shards      — shard liveness + placement map + pins
//	POST /v1/router/refresh     — re-discover placement from the shards
//	POST /v1/router/migrate     — {"id": ..., "to": ...}: move one interface live
//	POST /v1/router/rebalance   — move every interface to its pinned/hashed home
//	GET  /v1/router/replication — per-interface replica sets (owner, term, followers)
//	POST /v1/router/failover    — {"id": ...}: force-promote the best follower
//
// Every route is guarded by the auth config's default token.
func (rt *Router) AdminHandler(auth server.AuthConfig) http.Handler {
	mux := http.NewServeMux()
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if apiErr := auth.Check("", r); apiErr != nil {
				writeAdminError(w, apiErr)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /v1/router/shards", guard(func(w http.ResponseWriter, r *http.Request) {
		writeAdminJSON(w, http.StatusOK, rt.Status())
	}))
	mux.HandleFunc("POST /v1/router/refresh", guard(func(w http.ResponseWriter, r *http.Request) {
		// An explicit refresh overrides probe backoff (the operator is
		// telling us something changed — typically a restarted shard),
		// and it just polled every shard, so report what it saw instead
		// of sweeping the fleet a second time.
		shards := rt.ForceRefresh(r.Context())
		st := &RouterStatus{Shards: shards, Placement: rt.Placement()}
		st.Interfaces = len(st.Placement)
		writeAdminJSON(w, http.StatusOK, st)
	}))
	mux.HandleFunc("POST /v1/router/migrate", guard(func(w http.ResponseWriter, r *http.Request) {
		var req migrateRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.ID == "" || req.To == "" {
			writeAdminError(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
				`migrate needs a JSON body {"id": ..., "to": ...}`))
			return
		}
		// Migration transfers a full snapshot; give it its own budget
		// rather than the proxy timeout.
		ctx, cancel := context.WithTimeout(r.Context(), 2*rt.opts.Timeout)
		defer cancel()
		res, err := rt.Migrate(ctx, req.ID, req.To)
		if err != nil {
			writeAdminError(w, err)
			return
		}
		writeAdminJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("POST /v1/router/rebalance", guard(func(w http.ResponseWriter, r *http.Request) {
		res, err := rt.Rebalance(r.Context())
		if err != nil {
			writeAdminError(w, err)
			return
		}
		writeAdminJSON(w, http.StatusOK, res)
	}))
	mux.HandleFunc("GET /v1/router/replication", guard(func(w http.ResponseWriter, r *http.Request) {
		writeAdminJSON(w, http.StatusOK, rt.Replication())
	}))
	mux.HandleFunc("POST /v1/router/failover", guard(func(w http.ResponseWriter, r *http.Request) {
		var req failoverRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil || req.ID == "" {
			writeAdminError(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
				`failover needs a JSON body {"id": ...}`))
			return
		}
		addr, apiErr := rt.FailoverInterface(req.ID)
		if apiErr != nil {
			writeAdminError(w, apiErr)
			return
		}
		writeAdminJSON(w, http.StatusOK, &FailoverResult{ID: req.ID, Owner: addr})
	}))
	return mux
}
