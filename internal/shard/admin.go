package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/api"
	"repro/internal/server"
	"repro/pi/client"
)

// The shard-admin wire contract. Export streams the checksummed
// snapshot frame as an opaque body with the CAS epoch in a header;
// accept takes the same bytes back. Everything else is the usual JSON
// envelope.
const (
	// epochHeader carries Export's CAS epoch alongside the binary frame.
	epochHeader = "Pi-Shard-Epoch"
	// maxFrameBody caps accepted snapshot frames (a full interface:
	// log + dataset). 256 MiB is far above any fixture and far below
	// "accidentally stream /dev/zero".
	maxFrameBody = 256 << 20
)

// AdminHandler returns the shard-admin surface, meant to be mounted at
// /v1/shard/ beside the v1 API (server.WithAdmin):
//
//	GET  /v1/shard/load                          — serving load report
//	GET  /v1/shard/interfaces/{id}/export        — snapshot frame (octet-stream + Pi-Shard-Epoch)
//	POST /v1/shard/accept                        — host an exported frame (octet-stream body)
//	POST /v1/shard/interfaces/{id}/relinquish    — ?to=ADDR&epoch=N: hand off + tombstone
//
// Every route is guarded by the auth config's default token — admin
// operations move whole interfaces between processes and must never be
// open just because individual interfaces are.
func (n *Node) AdminHandler(auth server.AuthConfig) http.Handler {
	mux := http.NewServeMux()
	guard := func(h http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if apiErr := auth.Check("", r); apiErr != nil {
				writeAdminError(w, apiErr)
				return
			}
			h(w, r)
		}
	}
	mux.HandleFunc("GET /v1/shard/load", guard(n.handleLoad))
	mux.HandleFunc("GET /v1/shard/interfaces/{id}/export", guard(n.handleExport))
	mux.HandleFunc("POST /v1/shard/accept", guard(n.handleAccept))
	mux.HandleFunc("POST /v1/shard/interfaces/{id}/relinquish", guard(n.handleRelinquish))
	// The replication surface (follow/apply/promote/demote/unfollow/
	// targets/status) rides the same mux and guard — see
	// internal/replica for the wire contract.
	n.mgr.Register(mux, guard)
	return mux
}

func (n *Node) handleLoad(w http.ResponseWriter, r *http.Request) {
	writeAdminJSON(w, http.StatusOK, n.Load())
}

func (n *Node) handleExport(w http.ResponseWriter, r *http.Request) {
	frame, epoch, err := n.Export(r.PathValue("id"))
	if err != nil {
		writeAdminError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(epochHeader, strconv.FormatUint(epoch, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	_, _ = w.Write(frame)
}

func (n *Node) handleAccept(w http.ResponseWriter, r *http.Request) {
	frame, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFrameBody))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeAdminError(w, api.Errf(api.CodePayloadTooLarge, http.StatusRequestEntityTooLarge,
				"snapshot frame exceeds %d bytes", maxErr.Limit))
			return
		}
		// An aborted upload is the sender's (or the network's) problem,
		// not an oversized frame — do not misdirect the operator.
		writeAdminError(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"read snapshot frame: %v", err))
		return
	}
	res, aerr := n.Accept(frame)
	if aerr != nil {
		writeAdminError(w, aerr)
		return
	}
	writeAdminJSON(w, http.StatusOK, res)
}

func (n *Node) handleRelinquish(w http.ResponseWriter, r *http.Request) {
	var epoch uint64
	if s := r.URL.Query().Get("epoch"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			writeAdminError(w, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
				"bad epoch %q", s))
			return
		}
		epoch = v
	}
	res, err := n.Relinquish(r.PathValue("id"), r.URL.Query().Get("to"), epoch)
	if err != nil {
		writeAdminError(w, err)
		return
	}
	writeAdminJSON(w, http.StatusOK, res)
}

func writeAdminJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeAdminError(w http.ResponseWriter, err error) {
	e := api.FromErr(err)
	writeAdminJSON(w, e.Status, e)
}

// --- the admin client the router (and tests) drive other shards with.

// adminClient speaks the shard-admin wire contract against one shard.
type adminClient struct {
	base  string // normalized base URL
	token string
	hc    *http.Client
}

func newAdminClient(base, token string, hc *http.Client) *adminClient {
	return &adminClient{base: base, token: token, hc: hc}
}

func (a *adminClient) req(ctx context.Context, method, path string, body []byte) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("shard: build admin request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	if a.token != "" {
		req.Header.Set("Authorization", "Bearer "+a.token)
	}
	return req, nil
}

// adminError decodes a non-2xx admin response exactly like the SDK
// decodes v1 failures — one error-envelope contract, one decoder.
func adminError(resp *http.Response) *api.Error {
	return client.DecodeError(resp)
}

func (a *adminClient) json(ctx context.Context, method, path string, body []byte, out any) error {
	req, err := a.req(ctx, method, path, body)
	if err != nil {
		return err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return fmt.Errorf("shard: %s %s%s: %w", method, a.base, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return adminError(resp)
	}
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("shard: decode %s%s response: %w", a.base, path, err)
	}
	return nil
}

// export fetches the interface's snapshot frame and its CAS epoch.
func (a *adminClient) export(ctx context.Context, id string) ([]byte, uint64, error) {
	req, err := a.req(ctx, http.MethodGet, "/v1/shard/interfaces/"+url.PathEscape(id)+"/export", nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: export %q from %s: %w", id, a.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, adminError(resp)
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBody+1))
	if err != nil {
		return nil, 0, fmt.Errorf("shard: read exported frame for %q: %w", id, err)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(epochHeader), 10, 64)
	if err != nil {
		return nil, 0, fmt.Errorf("shard: export %q: bad %s header %q", id, epochHeader, resp.Header.Get(epochHeader))
	}
	return frame, epoch, nil
}

// accept hands a frame to the target shard.
func (a *adminClient) accept(ctx context.Context, frame []byte) (*AcceptResult, error) {
	var out AcceptResult
	if err := a.json(ctx, http.MethodPost, "/v1/shard/accept", frame, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// relinquish asks the source shard to hand the interface off,
// conditioned on the exported epoch.
func (a *adminClient) relinquish(ctx context.Context, id, to string, epoch uint64) (*RelinquishResult, error) {
	q := url.Values{"to": {to}}
	if epoch != 0 {
		q.Set("epoch", strconv.FormatUint(epoch, 10))
	}
	var out RelinquishResult
	p := "/v1/shard/interfaces/" + url.PathEscape(id) + "/relinquish?" + q.Encode()
	if err := a.json(ctx, http.MethodPost, p, []byte{}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// load fetches the shard's load report.
func (a *adminClient) load(ctx context.Context) (*LoadReport, error) {
	var out LoadReport
	if err := a.json(ctx, http.MethodGet, "/v1/shard/load", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// defaultAdminHTTPClient bounds admin calls; snapshot transfers can be
// big, so the budget is generous compared to query proxying.
func defaultAdminHTTPClient() *http.Client {
	return &http.Client{Timeout: 2 * time.Minute}
}
