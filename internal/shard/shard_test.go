package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/qlog"
	"repro/internal/server"
	"repro/internal/workload"
	"repro/pi/client"
)

const testToken = "shard-secret"

// testShard is one running shard: its node, its HTTP server and the
// ingester its interfaces live on.
type testShard struct {
	node *Node
	ts   *httptest.Server
	ing  *ingest.Ingester
}

// fixture logs are mined per hosted interface; the raw logs and
// datasets are cheap to build but stable, so share them.
var logFixture struct {
	once sync.Once
	olap *qlog.Log
	adhc *qlog.Log
}

func fixtureLogs(t testing.TB) (*qlog.Log, *qlog.Log) {
	t.Helper()
	logFixture.once.Do(func() {
		logFixture.olap = workload.OLAPLog(80, 7)
		logFixture.adhc = workload.AdhocLog(80, 7)
	})
	return logFixture.olap, logFixture.adhc
}

// startShard boots a shard node serving the given workloads ("olap"
// and/or "adhoc") behind a real HTTP listener, with the admin surface
// mounted and bearer auth on.
func startShard(t testing.TB, ids ...string) *testShard {
	t.Helper()
	reg := api.NewRegistry()
	ing := ingest.New(reg, ingest.Options{})
	svc := api.NewService(reg)
	svc.SetIngestor(ing)

	// The node needs its advertised URL, which exists only once the
	// listener is up: serve through a late-bound handler.
	var (
		mu sync.RWMutex
		h  http.Handler
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.RLock()
		handler := h
		mu.RUnlock()
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	node, err := NewNode(svc, ing, NodeOptions{Addr: ts.URL, Token: testToken})
	if err != nil {
		t.Fatal(err)
	}
	auth := server.AuthConfig{Token: testToken}
	mu.Lock()
	h = server.New(node,
		server.WithAuth(auth),
		server.WithAdmin("/v1/shard/", node.AdminHandler(auth)),
	).Handler()
	mu.Unlock()

	olap, adhc := fixtureLogs(t)
	for _, id := range ids {
		var log *qlog.Log
		switch id {
		case "olap":
			log = olap
		case "adhoc":
			log = adhc
		default:
			t.Fatalf("unknown fixture workload %q", id)
		}
		if _, err := ing.Host(id, id+" dashboard", log, engine.OnTimeDB(200), core.DefaultLiveOptions()); err != nil {
			t.Fatalf("host %s: %v", id, err)
		}
	}
	return &testShard{node: node, ts: ts, ing: ing}
}

// startFleet boots two shards (olap on A, adhoc on B) and a refreshed
// router over both.
func startFleet(t testing.TB) (*testShard, *testShard, *Router) {
	t.Helper()
	a := startShard(t, "olap")
	b := startShard(t, "adhoc")
	rt, err := NewRouter([]string{a.ts.URL, b.ts.URL}, RouterOptions{Token: testToken, Timeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh(context.Background())
	return a, b, rt
}

func codeOf(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error")
	}
	var e *api.Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v (%T) is not an *api.Error", err, err)
	}
	return e.Code
}

func TestRouterProxiesAndFansOut(t *testing.T) {
	a, b, rt := startFleet(t)

	list := rt.ListInterfaces()
	if len(list) != 2 || list[0].ID != "adhoc" || list[1].ID != "olap" {
		t.Fatalf("merged list = %+v, want [adhoc olap]", list)
	}

	// A query through the router must return exactly what the owning
	// shard returns directly.
	direct, err := a.node.Query("olap", api.QueryRequest{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	routed, err := rt.Query("olap", api.QueryRequest{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if routed.SQL != direct.SQL || routed.RowCount != direct.RowCount || len(routed.Rows) != len(direct.Rows) {
		t.Fatalf("routed result differs: %d/%d rows vs %d/%d", len(routed.Rows), routed.RowCount, len(direct.Rows), direct.RowCount)
	}
	for i := range routed.Rows {
		for j := range routed.Rows[i] {
			if routed.Rows[i][j] != direct.Rows[i][j] {
				t.Fatalf("row %d col %d differs: %v vs %v", i, j, routed.Rows[i][j], direct.Rows[i][j])
			}
		}
	}

	// Fan-out health covers both shards.
	h := rt.Health()
	if h.Status != "ok" || len(h.Shards) != 2 || len(h.Interfaces) != 2 {
		t.Fatalf("health = %+v", h)
	}
	// Per-interface ops route by owner.
	if _, err := rt.GetInterface("adhoc"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Query("nope", api.QueryRequest{}); codeOf(t, err) != api.CodeNotFound {
		t.Fatalf("unknown interface code = %v", err)
	}
	_ = b
}

func TestMigrateLiveAndSDKFollowsMoved(t *testing.T) {
	a, b, rt := startFleet(t)

	before, err := rt.Query("olap", api.QueryRequest{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}

	res, err := rt.Migrate(context.Background(), "olap", b.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if res.From != a.ts.URL || res.To != b.ts.URL || res.Bytes == 0 {
		t.Fatalf("migrate result = %+v", res)
	}
	if res.Epoch <= before.Epoch {
		t.Fatalf("target hosts at epoch %d, want > source epoch %d", res.Epoch, before.Epoch)
	}

	// Router answers identically from the new shard.
	after, err := rt.Query("olap", api.QueryRequest{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if after.SQL != before.SQL || after.RowCount != before.RowCount {
		t.Fatalf("post-migration result differs: %+v vs %+v", after, before)
	}
	if got := rt.Placement()["olap"]; got != b.ts.URL {
		t.Fatalf("placement = %q, want %q", got, b.ts.URL)
	}

	// The source answers with a structured moved error...
	_, err = a.node.Query("olap", api.QueryRequest{Limit: 1})
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeMoved || ae.Addr != b.ts.URL {
		t.Fatalf("source query error = %v, want moved -> %s", err, b.ts.URL)
	}

	// ...which the SDK follows transparently, even though it was
	// pointed at the old shard.
	c, err := client.New(a.ts.URL, client.WithToken(testToken))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Query(context.Background(), "olap", api.QueryRequest{Limit: 5})
	if err != nil {
		t.Fatalf("SDK did not follow the move: %v", err)
	}
	if resp.RowCount != before.RowCount {
		t.Fatalf("followed query rowCount = %d, want %d", resp.RowCount, before.RowCount)
	}

	// Ingestion still reaches the interface through the router on its
	// new shard.
	ack, err := rt.IngestLog("olap", []qlog.Entry{{SQL: "SELECT carrier, avg(delay) FROM ontime WHERE month = 3 GROUP BY carrier"}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Epoch <= res.Epoch {
		t.Fatalf("post-migration ingest epoch = %d, want > %d", ack.Epoch, res.Epoch)
	}
}

// TestCursorExpiresAcrossMigration: an epoch-bound cursor minted by
// the source shard must expire with cursor_expired after the interface
// moves — the target hosts at epoch + 1 precisely so a stale cursor
// can never silently page a restored result set.
func TestCursorExpiresAcrossMigration(t *testing.T) {
	a, _, rt := startFleet(t)

	// The adhoc fixture's initial query returns the whole table, so a
	// small limit always mints a cursor (olap's initial aggregate does
	// not — asserting here keeps the fixture honest instead of letting
	// the test skip itself into uselessness).
	first, err := rt.Query("adhoc", api.QueryRequest{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Truncated || first.NextCursor == "" {
		t.Fatalf("adhoc fixture initial query fits %d rows and minted no cursor; pick a fixture that paginates", first.RowCount)
	}

	// The cursor still pages correctly before the move.
	if _, err := rt.Query("adhoc", api.QueryRequest{Limit: 2, Cursor: first.NextCursor}); err != nil {
		t.Fatalf("pre-migration cursor rejected: %v", err)
	}

	if _, err := rt.Migrate(context.Background(), "adhoc", a.ts.URL); err != nil {
		t.Fatal(err)
	}

	_, err = rt.Query("adhoc", api.QueryRequest{Limit: 2, Cursor: first.NextCursor})
	if codeOf(t, err) != api.CodeCursorExpired {
		t.Fatalf("stale cursor after migration = %v, want %s", err, api.CodeCursorExpired)
	}

	// A fresh first page works and mints a usable cursor again.
	again, err := rt.Query("adhoc", api.QueryRequest{Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again.RowCount != first.RowCount {
		t.Fatalf("post-migration rowCount = %d, want %d", again.RowCount, first.RowCount)
	}
	if !again.Truncated {
		t.Fatalf("post-migration first page not truncated (rowCount %d)", again.RowCount)
	}
	if _, err := rt.Query("adhoc", api.QueryRequest{Limit: 2, Cursor: again.NextCursor}); err != nil {
		t.Fatalf("fresh cursor rejected: %v", err)
	}
}

// TestRelinquishEpochCAS: a handoff conditioned on a stale epoch must
// fail with epoch_mismatch and change nothing — the guard that keeps
// writes landing mid-migration from being silently dropped.
func TestRelinquishEpochCAS(t *testing.T) {
	a, b, _ := startFleet(t)

	frame, epoch, err := a.node.Export("olap")
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) == 0 || epoch == 0 {
		t.Fatalf("export frame %d bytes at epoch %d", len(frame), epoch)
	}

	// A write lands (and publishes) between export and relinquish.
	if _, err := a.node.IngestLog("olap", []qlog.Entry{{SQL: "SELECT dest, count(*) FROM ontime WHERE carrier = 'AA' GROUP BY dest"}}, true); err != nil {
		t.Fatal(err)
	}

	_, err = a.node.Relinquish("olap", b.ts.URL, epoch)
	if codeOf(t, err) != api.CodeEpochMismatch {
		t.Fatalf("stale relinquish = %v, want %s", err, api.CodeEpochMismatch)
	}
	// Nothing changed: still hosted, no tombstone.
	if _, ok := a.node.Registry().Get("olap"); !ok {
		t.Fatal("failed relinquish unhosted the interface")
	}
	if len(a.node.Moved()) != 0 {
		t.Fatalf("failed relinquish left a tombstone: %v", a.node.Moved())
	}

	// Re-exporting at the new epoch succeeds.
	_, epoch2, err := a.node.Export("olap")
	if err != nil {
		t.Fatal(err)
	}
	if epoch2 <= epoch {
		t.Fatalf("epoch did not advance: %d -> %d", epoch, epoch2)
	}
	if _, err := a.node.Relinquish("olap", b.ts.URL, epoch2); err != nil {
		t.Fatalf("fresh relinquish: %v", err)
	}
	if a.node.Moved()["olap"] != b.ts.URL {
		t.Fatalf("tombstone = %v, want olap -> %s", a.node.Moved(), b.ts.URL)
	}
}

func TestAcceptClearsTombstoneAndBumpsEpoch(t *testing.T) {
	a, b, rt := startFleet(t)

	if _, err := rt.Migrate(context.Background(), "olap", b.ts.URL); err != nil {
		t.Fatal(err)
	}
	if a.node.Moved()["olap"] == "" {
		t.Fatal("source kept no tombstone")
	}
	epochOnB, err := b.node.Epoch("olap")
	if err != nil {
		t.Fatal(err)
	}

	// Move it back: A accepts again, clearing its tombstone.
	if _, err := rt.Migrate(context.Background(), "olap", a.ts.URL); err != nil {
		t.Fatal(err)
	}
	if len(a.node.Moved()) != 0 {
		t.Fatalf("accept did not clear the tombstone: %v", a.node.Moved())
	}
	back, err := a.node.Epoch("olap")
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch <= epochOnB.Epoch {
		t.Fatalf("round-trip epoch %d, want > %d (monotone across moves)", back.Epoch, epochOnB.Epoch)
	}
	// And B now tombstones it.
	_, err = b.node.Query("olap", api.QueryRequest{})
	if codeOf(t, err) != api.CodeMoved {
		t.Fatalf("B after handback = %v, want moved", err)
	}
}

func TestRouterShardUnavailable(t *testing.T) {
	a, _, rt := startFleet(t)

	a.ts.Close()
	_, err := rt.Query("olap", api.QueryRequest{Limit: 1})
	if codeOf(t, err) != api.CodeShardUnavailable {
		t.Fatalf("dead shard query = %v, want %s", err, api.CodeShardUnavailable)
	}

	h := rt.Health()
	if h.Status != "degraded" {
		t.Fatalf("health status = %q, want degraded", h.Status)
	}
	unreachable := 0
	for _, s := range h.Shards {
		if s.Status == "unreachable" {
			unreachable++
		}
	}
	if unreachable != 1 {
		t.Fatalf("unreachable shards = %d, want 1", unreachable)
	}

	// The surviving shard keeps serving through the router.
	if _, err := rt.Query("adhoc", api.QueryRequest{Limit: 1}); err != nil {
		t.Fatal(err)
	}

	// Refresh keeps the dead shard's placements (shard_unavailable is
	// honest; not_found would be a lie).
	rt.Refresh(context.Background())
	if rt.Placement()["olap"] == "" {
		t.Fatal("refresh dropped the unreachable shard's placement")
	}
}

func TestRendezvousPlacementAndRebalance(t *testing.T) {
	a, b, rt := startFleet(t)

	// Want is deterministic and spreads across configured shards.
	if w := rt.Want("olap"); w != a.ts.URL && w != b.ts.URL {
		t.Fatalf("Want(olap) = %q, not a fleet member", w)
	}
	if rt.Want("olap") != rt.Want("olap") {
		t.Fatal("Want is not stable")
	}

	// Pin both interfaces to shard B: rebalance must move olap (on A)
	// and skip adhoc (already on B).
	rt2, err := NewRouter([]string{a.ts.URL, b.ts.URL}, RouterOptions{
		Token:   testToken,
		Timeout: 10 * time.Second,
		Pins:    map[string]string{"olap": b.ts.URL, "adhoc": b.ts.URL},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt2.Refresh(context.Background())
	res, err := rt2.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moved) != 1 || res.Moved[0].ID != "olap" || res.Skipped != 1 {
		t.Fatalf("rebalance = %+v, want olap moved, adhoc skipped", res)
	}
	if rt2.Placement()["olap"] != b.ts.URL {
		t.Fatalf("placement after rebalance = %v", rt2.Placement())
	}
	_ = rt
}

// TestRefreshPrefersLiveClaims: a reachable shard that actually hosts
// an interface must win over a stale remembered placement on an
// unreachable shard, regardless of how the addresses sort — otherwise
// the interface would stay shard_unavailable despite a live owner.
func TestRefreshPrefersLiveClaims(t *testing.T) {
	a, b, rt := startFleet(t)

	// Kill A, then plant a stale placement claiming A owns adhoc (which
	// B really hosts) — the shape left behind by a crashed migration.
	a.ts.Close()
	rt.mu.Lock()
	rt.place["adhoc"] = a.ts.URL
	rt.mu.Unlock()

	rt.Refresh(context.Background())
	if got := rt.Placement()["adhoc"]; got != b.ts.URL {
		t.Fatalf("placement[adhoc] = %q, want live shard %q", got, b.ts.URL)
	}
	// And olap, genuinely on the dead shard, keeps its placement so
	// queries answer shard_unavailable rather than not_found.
	if got := rt.Placement()["olap"]; got != a.ts.URL {
		t.Fatalf("placement[olap] = %q, want remembered %q", got, a.ts.URL)
	}
}

// TestRelinquishIdempotentAnswersMoved: re-relinquishing to the same
// target answers moved-to-target — how a migration whose success
// response was lost confirms the handoff committed instead of deleting
// the only surviving copy.
func TestRelinquishIdempotentAnswersMoved(t *testing.T) {
	a, b, _ := startFleet(t)

	frame, epoch, err := a.node.Export("olap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.node.Accept(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := a.node.Relinquish("olap", b.ts.URL, epoch); err != nil {
		t.Fatal(err)
	}
	_, err = a.node.Relinquish("olap", b.ts.URL, epoch)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeMoved || ae.Addr != b.ts.URL {
		t.Fatalf("replayed relinquish = %v, want moved -> %s", err, b.ts.URL)
	}
}

func TestPinMustTargetConfiguredShard(t *testing.T) {
	a := startShard(t, "olap")
	_, err := NewRouter([]string{a.ts.URL}, RouterOptions{
		Pins: map[string]string{"olap": "http://127.0.0.1:1"},
	})
	if err == nil {
		t.Fatal("pin to an unconfigured shard accepted")
	}
}

func TestAdminSurfaceRequiresToken(t *testing.T) {
	a := startShard(t, "olap")
	resp, err := http.Get(a.ts.URL + "/v1/shard/load")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated admin load = %d, want 401", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, a.ts.URL+"/v1/shard/load", nil)
	req.Header.Set("Authorization", "Bearer "+testToken)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("authenticated admin load = %d, want 200", resp2.StatusCode)
	}
}

// TestReAcceptReplacesStaleCopy: a migration round whose relinquish
// never settled leaves a copy on the target; the retried round's
// accept must replace it (monotone epoch) instead of failing on a
// duplicate ID forever.
func TestReAcceptReplacesStaleCopy(t *testing.T) {
	a, b, _ := startFleet(t)

	frame, _, err := a.node.Export("olap")
	if err != nil {
		t.Fatal(err)
	}
	first, err := b.node.Accept(frame)
	if err != nil {
		t.Fatal(err)
	}

	// The source advances (the write that would have failed the CAS),
	// and the retried round re-exports and re-accepts.
	if _, err := a.node.IngestLog("olap", []qlog.Entry{{SQL: "SELECT dest, count(*) FROM ontime WHERE carrier = 'UA' GROUP BY dest"}}, true); err != nil {
		t.Fatal(err)
	}
	frame2, _, err := a.node.Export("olap")
	if err != nil {
		t.Fatal(err)
	}
	second, err := b.node.Accept(frame2)
	if err != nil {
		t.Fatalf("re-accept of a stale copy failed: %v", err)
	}
	if second.Epoch <= first.Epoch {
		t.Fatalf("re-accept epoch %d, want > %d (monotone)", second.Epoch, first.Epoch)
	}
	got, err := b.node.Epoch("olap")
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != second.Epoch {
		t.Fatalf("B serves epoch %d, want %d", got.Epoch, second.Epoch)
	}
}

func TestAcceptRejectsCorruptFrame(t *testing.T) {
	b := startShard(t, "adhoc")
	_, err := b.node.Accept([]byte("not a snapshot frame"))
	if codeOf(t, err) != api.CodeBadRequest {
		t.Fatalf("corrupt frame = %v, want bad_request", err)
	}
}
