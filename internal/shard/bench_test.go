package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
	"repro/pi/client"
)

// The two benchmarks measure the same cached-plan query twice: once
// straight at the shard, once through the router in front of it. The
// delta is the price of routing — one extra HTTP hop plus a typed
// decode/encode — which scripts/bench_json.sh records as
// BENCH_shard.json and shard_smoke.sh bounds at < 2x p50.

func benchClients(b *testing.B) (direct, routed *client.Client) {
	b.Helper()
	a := startShard(b, "olap")
	rt, err := NewRouter([]string{a.ts.URL}, RouterOptions{Token: testToken, Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	rt.Refresh(context.Background())
	rts := httptest.NewServer(server.New(rt, server.WithAuth(server.AuthConfig{Token: testToken})).Handler())
	b.Cleanup(rts.Close)

	mk := func(base string) *client.Client {
		c, err := client.New(base,
			client.WithToken(testToken),
			client.WithRetries(0),
			client.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}),
		)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	return mk(a.ts.URL), mk(rts.URL)
}

func benchQuery(b *testing.B, c *client.Client) {
	b.Helper()
	req := api.QueryRequest{Limit: 10}
	// Warm the plan and result caches: the steady-state hot path is
	// what the router overhead is measured against.
	if _, err := c.Query(context.Background(), "olap", req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(context.Background(), "olap", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectQuery is the baseline: SDK -> shard.
func BenchmarkDirectQuery(b *testing.B) {
	direct, _ := benchClients(b)
	benchQuery(b, direct)
}

// BenchmarkRouterQuery is the same query via SDK -> router -> shard.
func BenchmarkRouterQuery(b *testing.B) {
	_, routed := benchClients(b)
	benchQuery(b, routed)
}

// The replication benchmarks price the ack coupling: a replicated
// owner ships every published write to its follower before the ack
// returns, so the delta between ReplicatedAck and UnreplicatedAck is
// the full cost of that guarantee (encode + HTTP hop + follower
// apply). scripts/bench_json.sh records the pair as BENCH_replica.json
// and the issue bounds the overhead at <= 2x. FanoutQuery measures the
// read path when queries round-robin across in-sync replicas.

func benchReplicatedClient(b *testing.B, n int, opts RouterOptions) *client.Client {
	b.Helper()
	shards, rt := startReplicatedFleet(b, n, opts)
	if opts.Replicas > 1 {
		waitSynced(b, shards[0], "olap", opts.Replicas-1)
		rt.Refresh(context.Background()) // pick up the synced follower set
	}
	rts := httptest.NewServer(server.New(rt, server.WithAuth(server.AuthConfig{Token: testToken})).Handler())
	b.Cleanup(rts.Close)
	c, err := client.New(rts.URL,
		client.WithToken(testToken),
		client.WithRetries(0),
		client.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}),
	)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchAck(b *testing.B, c *client.Client) {
	b.Helper()
	// A small batch per ack, the shape streaming ingestion actually
	// sends (single-row acks are the degenerate case: they price the
	// fixed HTTP hop, not the replication coupling).
	rows := make([][]any, 8)
	for i := range rows {
		rows[i] = []any{
			"AA", "AA", "CAP", "NYP", "CA", "NY",
			float64(1), float64(1), float64(1),
			float64(10), float64(10), float64(10),
			float64(500), float64(1), float64(0), float64(0),
		}
	}
	// flush=true publishes every append, which is the path that ships a
	// replication event — exactly the ack being priced.
	if _, err := c.AppendRows(context.Background(), "olap", "ontime", rows, true); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AppendRows(context.Background(), "olap", "ontime", rows, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnreplicatedAck is the baseline: SDK -> router -> owner
// with no followers attached.
func BenchmarkUnreplicatedAck(b *testing.B) {
	benchAck(b, benchReplicatedClient(b, 1, RouterOptions{Replicas: 1}))
}

// BenchmarkReplicatedAck is the same append with one in-sync follower:
// the ack now includes streaming the event to the follower.
func BenchmarkReplicatedAck(b *testing.B) {
	benchAck(b, benchReplicatedClient(b, 2, RouterOptions{Replicas: 2}))
}

// BenchmarkFanoutQuery is the cached-plan query with read fan-out on:
// the router round-robins it across the owner and its synced follower.
func BenchmarkFanoutQuery(b *testing.B) {
	c := benchReplicatedClient(b, 2, RouterOptions{Replicas: 2, ReadFanout: true})
	benchQuery(b, c)
}
