package shard

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
	"repro/pi/client"
)

// The two benchmarks measure the same cached-plan query twice: once
// straight at the shard, once through the router in front of it. The
// delta is the price of routing — one extra HTTP hop plus a typed
// decode/encode — which scripts/bench_json.sh records as
// BENCH_shard.json and shard_smoke.sh bounds at < 2x p50.

func benchClients(b *testing.B) (direct, routed *client.Client) {
	b.Helper()
	a := startShard(b, "olap")
	rt, err := NewRouter([]string{a.ts.URL}, RouterOptions{Token: testToken, Timeout: 10 * time.Second})
	if err != nil {
		b.Fatal(err)
	}
	rt.Refresh(context.Background())
	rts := httptest.NewServer(server.New(rt, server.WithAuth(server.AuthConfig{Token: testToken})).Handler())
	b.Cleanup(rts.Close)

	mk := func(base string) *client.Client {
		c, err := client.New(base,
			client.WithToken(testToken),
			client.WithRetries(0),
			client.WithHTTPClient(&http.Client{Timeout: 10 * time.Second}),
		)
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	return mk(a.ts.URL), mk(rts.URL)
}

func benchQuery(b *testing.B, c *client.Client) {
	b.Helper()
	req := api.QueryRequest{Limit: 10}
	// Warm the plan and result caches: the steady-state hot path is
	// what the router overhead is measured against.
	if _, err := c.Query(context.Background(), "olap", req); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(context.Background(), "olap", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDirectQuery is the baseline: SDK -> shard.
func BenchmarkDirectQuery(b *testing.B) {
	direct, _ := benchClients(b)
	benchQuery(b, direct)
}

// BenchmarkRouterQuery is the same query via SDK -> router -> shard.
func BenchmarkRouterQuery(b *testing.B) {
	_, routed := benchClients(b)
	benchQuery(b, routed)
}
