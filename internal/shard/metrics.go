package shard

import (
	"repro/internal/obs"
)

// Router-side metric families, registered on the process-wide obs
// registry. The per-shard proxy counters double as the durable load
// signal the rebalancer has wanted (ROADMAP item 1): scraping
// pi_router_proxy_total over time gives request-weighted shard load,
// not just interface counts.
var (
	mxProxy = obs.Default.CounterVec("pi_router_proxy_total",
		"Proxied operations attempted per shard (each moved-follow hop counts).", "shard")
	mxProxyErrs = obs.Default.CounterVec("pi_router_proxy_errors_total",
		"Proxied operations that failed at the transport (shard unreachable).", "shard")
	mxProxyDur = obs.Default.HistogramVec("pi_router_proxy_seconds",
		"Latency of one proxied hop (router -> shard), per shard.",
		obs.LatencyBuckets, "shard")
	mxProbeFails = obs.Default.CounterVec("pi_router_probe_failures_total",
		"Failed shard contacts that bumped the probe backoff.", "shard")
	mxShardDown = obs.Default.GaugeVec("pi_router_shard_down",
		"1 while the shard is in probe backoff after a failed contact, 0 when healthy.", "shard")
	mxShardIfaces = obs.Default.GaugeVec("pi_router_shard_interfaces",
		"Interfaces currently placed on the shard (ownership, not replicas).", "shard")

	mxMovedFollows = obs.Default.CounterVec("pi_router_moved_follows_total",
		"Placement repairs: moved / not-owner errors the router followed to the real owner.").With()
	mxFanouts = obs.Default.CounterVec("pi_router_fanouts_total",
		"Fleet-wide operations fanned out to every shard (list, health, debug, snapshot).").With()
	mxFailovers = obs.Default.CounterVec("pi_router_failovers_total",
		"Successful follower promotions after a dead owner.").With()
)

// shardMetrics is one shard's resolved handle set, built once in
// addShard so the proxy path never does a registry lookup.
type shardMetrics struct {
	proxied   *obs.Counter
	errs      *obs.Counter
	probeFail *obs.Counter
	dur       *obs.Histogram
	down      *obs.Gauge
}

func newShardMetrics(addr string) *shardMetrics {
	return &shardMetrics{
		proxied:   mxProxy.With(addr),
		errs:      mxProxyErrs.With(addr),
		probeFail: mxProbeFails.With(addr),
		dur:       mxProxyDur.With(addr),
		down:      mxShardDown.With(addr),
	}
}

// ownedCount counts interfaces currently placed on addr. It backs the
// lazy pi_router_shard_interfaces gauge, so the walk over the
// placement map happens only at scrape time.
func (rt *Router) ownedCount(addr string) float64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	n := 0
	for _, owner := range rt.place {
		if owner == addr {
			n++
		}
	}
	return float64(n)
}
