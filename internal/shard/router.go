package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/qlog"
	"repro/internal/replica"
	"repro/pi/client"
)

// RouterOptions configure a Router.
type RouterOptions struct {
	// Token is the bearer token the router presents to shards — both on
	// proxied v1 operations and on the shard-admin surface during
	// migrations. Shards in a routed fleet share one admin token.
	Token string
	// Timeout bounds one proxied operation (default 30s). Migrations
	// use their own caller-supplied contexts.
	Timeout time.Duration
	// Pins override hash placement: interface ID -> shard address.
	// Rebalance moves pinned interfaces to their pin, never elsewhere.
	Pins map[string]string
	// Replicas is the replication factor — total copies per interface,
	// owner included. 0 or 1 disables replication; N > 1 makes every
	// refresh drive each owner toward N-1 warm followers on the
	// rendezvous-ranked shards after it.
	Replicas int
	// ReadFanout spreads read-only operations (query, page, epoch)
	// round-robin across the owner and its in-sync followers. A
	// follower failure falls back to the owner, so fan-out never
	// degrades correctness, only load distribution.
	ReadFanout bool
	// Failover promotes the most-caught-up in-sync follower when the
	// owner stops answering, instead of surfacing shard_unavailable
	// until the owner returns.
	Failover bool
}

// shardConn is one shard the router fronts: the SDK client for
// proxied v1 operations, the admin client for migrations and the
// replica client for the replication control plane.
type shardConn struct {
	addr  string
	c     *client.Client
	admin *adminClient
	rep   *replica.Client

	// ingestion is the shard's ingestion capability as of the last
	// Refresh (guarded by the router's mu). It backs the cheap
	// IngestReady pre-check; the proxied IngestLog stays the authority.
	// Starts true (fail open) until a refresh reports otherwise.
	ingestion bool

	// Probe backoff (guarded by the router's mu). A shard that failed
	// its last contact is down; Refresh skips re-probing it until
	// nextProbe so a dead shard costs one timed-out health call per
	// backoff window, not one per refresh tick.
	down      bool
	failures  int
	nextProbe time.Time

	// mx holds this shard's resolved metric handles. Set once in
	// addShard, immutable afterwards — safe to use without rt.mu.
	mx *shardMetrics
}

// Router owns the interface→shard placement map and implements
// api.Servicer over a fleet: per-interface operations proxy to the
// owning shard through pi/client, fleet-wide operations (list, health,
// debug, snapshot) fan out and merge. A structured moved error from a
// shard repairs the map in place (the router follows it, flips the
// placement and retries), a transport failure surfaces as
// shard_unavailable — so the HTTP transport mounted on top cannot tell
// the difference between one process and a routed cluster, which is
// the point of the Servicer seam.
type Router struct {
	opts  RouterOptions
	start time.Time

	mu     sync.RWMutex
	shards map[string]*shardConn
	order  []string               // sorted shard addrs, for deterministic hashing and fan-out
	place  map[string]string      // interface ID -> owning shard addr
	pins   map[string]string      // normalized RouterOptions.Pins
	reps   map[string]*replicaSet // interface ID -> follower state (owner's view)

	// foMu serializes failover per interface: the first caller to
	// observe a dead owner runs the promotion, concurrent callers wait
	// for its outcome instead of racing a second promote.
	foMu       sync.Mutex
	foInflight map[string]chan struct{}

	// slow is the router-side slow-query ring (nil = disabled). Set
	// once via SetSlowRing before serving.
	slow *obs.SlowRing
}

// SetSlowRing attaches the slow-query ring the router records routed
// queries into (Source "router"). Call before serving traffic.
func (rt *Router) SetSlowRing(r *obs.SlowRing) { rt.slow = r }

var _ api.Servicer = (*Router)(nil)

// NewRouter builds a router over the given shard addresses. Call
// Refresh to discover what each shard hosts before serving; placements
// also repair themselves as shards return moved errors.
func NewRouter(addrs []string, opts RouterOptions) (*Router, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one shard address")
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	rt := &Router{
		opts:       opts,
		start:      time.Now(),
		shards:     make(map[string]*shardConn, len(addrs)),
		place:      map[string]string{},
		pins:       map[string]string{},
		reps:       map[string]*replicaSet{},
		foInflight: map[string]chan struct{}{},
	}
	for _, a := range addrs {
		if _, err := rt.addShard(a); err != nil {
			return nil, err
		}
	}
	for id, a := range opts.Pins {
		addr, err := NormalizeAddr(a)
		if err != nil {
			return nil, fmt.Errorf("shard: pin %q: %w", id, err)
		}
		if _, ok := rt.shards[addr]; !ok {
			return nil, fmt.Errorf("shard: pin %q targets %s, which is not a configured shard", id, addr)
		}
		rt.pins[id] = addr
	}
	return rt, nil
}

// addShard registers a shard connection (idempotent). Caller must not
// hold rt.mu.
func (rt *Router) addShard(addr string) (*shardConn, error) {
	norm, err := NormalizeAddr(addr)
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if conn, ok := rt.shards[norm]; ok {
		return conn, nil
	}
	// The router handles moved errors itself (to learn the new
	// placement) and maps transport failures onto shard_unavailable, so
	// the SDK's own following/retrying is kept minimal. The inner hop
	// skips gzip (both processes are on the same network segment in any
	// sane topology, and compressing twice per routed query costs more
	// than the bytes save) and keeps a generous idle-connection pool so
	// concurrent proxying does not reconnect per request.
	c, err := client.New(norm,
		client.WithToken(rt.opts.Token),
		client.WithFollowMoved(false),
		client.WithRetries(1),
		client.WithBackoff(50*time.Millisecond),
		client.WithHTTPClient(&http.Client{
			Timeout: rt.opts.Timeout,
			Transport: &http.Transport{
				DisableCompression:  true,
				MaxIdleConns:        256,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}),
	)
	if err != nil {
		return nil, fmt.Errorf("shard: router: %w", err)
	}
	conn := &shardConn{
		addr:      norm,
		c:         c,
		admin:     newAdminClient(norm, rt.opts.Token, defaultAdminHTTPClient()),
		rep:       replica.NewClient(norm, rt.opts.Token, defaultAdminHTTPClient()),
		ingestion: true,
	}
	conn.mx = newShardMetrics(norm)
	// Lazy load gauge: the placement walk happens at scrape time, not
	// on any serving path. Re-registering after a restart just swaps
	// the closure in.
	mxShardIfaces.Func(func() float64 { return rt.ownedCount(norm) }, norm)
	rt.shards[norm] = conn
	rt.order = append(rt.order, norm)
	sort.Strings(rt.order)
	return conn, nil
}

// Shards returns the configured shard addresses in sorted order.
func (rt *Router) Shards() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.order...)
}

// Placement returns a copy of the current interface→shard map.
func (rt *Router) Placement() map[string]string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	out := make(map[string]string, len(rt.place))
	for id, addr := range rt.place {
		out[id] = addr
	}
	return out
}

// callCtx is the per-proxied-operation budget, derived from the
// caller's context when there is one (that is how a trace id minted at
// the router edge rides the proxied hop — pi/client forwards it as the
// Pi-Trace-Id header) and from Background on internal control-plane
// calls.
func (rt *Router) callCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		parent = context.Background()
	}
	return context.WithTimeout(parent, rt.opts.Timeout)
}

// Refresh re-discovers placement by asking every shard what it hosts.
// Placement follows OWNER claims only: a follower replica listing an
// interface never captures its placement (writes routed there would
// just bounce with not_owner). New interfaces are adopted, placements
// a shard no longer backs are dropped — except when the shard is
// unreachable, in which case its placements are kept so queries fail
// with shard_unavailable (a transient, retryable condition) rather
// than not_found (a lie). When two shards both claim ownership, the
// higher replication term wins (a promotion happened; the ex-owner is
// demoted in the background); at equal terms the currently placed —
// then lexicographically first — shard wins deterministically without
// demoting anyone, since neither claim is provably stale.
//
// Dead shards are not re-probed every tick: a shard that failed its
// last contact waits out a jittered exponential backoff (probeBackoff*)
// before the next health call, and its row reports the skip. After the
// sweep, Refresh drives replication: every owned interface is told its
// desired follower set (which also retries failed seeds), making the
// refresh loop the fleet's replication reconciler. Returns one health
// row per shard from the poll it already performed, so callers
// reporting fleet state after a refresh need not re-poll.
func (rt *Router) Refresh(ctx context.Context) []api.ShardHealth {
	rt.mu.RLock()
	conns := make([]*shardConn, 0, len(rt.order))
	skip := make(map[string]time.Time)
	now := time.Now()
	for _, addr := range rt.order {
		conn := rt.shards[addr]
		conns = append(conns, conn)
		if conn.down && now.Before(conn.nextProbe) {
			skip[addr] = conn.nextProbe
		}
	}
	oldPlace := make(map[string]string, len(rt.place))
	for id, addr := range rt.place {
		oldPlace[id] = addr
	}
	rt.mu.RUnlock()

	// One health call per shard yields what it hosts, each copy's
	// replication role and whether the shard ingests (backing the
	// IngestReady pre-check).
	type result struct {
		addr      string
		rows      []api.HealthInterface
		ingestion bool
		skipped   bool
		err       error
	}
	results := make([]result, len(conns))
	var wg sync.WaitGroup
	for i, conn := range conns {
		if until, ok := skip[conn.addr]; ok {
			results[i] = result{addr: conn.addr, skipped: true,
				err: fmt.Errorf("down; next probe in %s", time.Until(until).Round(time.Millisecond))}
			continue
		}
		wg.Add(1)
		go func(i int, conn *shardConn) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, rt.opts.Timeout)
			defer cancel()
			h, err := conn.c.Health(cctx)
			res := result{addr: conn.addr, err: err}
			if err == nil {
				res.ingestion = h.Ingestion
				res.rows = h.Interfaces
			}
			results[i] = res
		}(i, conn)
	}
	wg.Wait()

	// Owner claims from live shards first: a reachable shard's claim
	// always beats a remembered placement on an unreachable one,
	// whatever the address order — otherwise a stale entry for a dead
	// shard could pin an interface to shard_unavailable while a live
	// shard actually hosts it.
	next := map[string]string{}
	claims := map[string]ownerClaim{}
	var demotions []demotion
	for _, res := range results {
		if res.err != nil {
			continue
		}
		for _, row := range res.rows {
			if row.Replication != nil && row.Replication.Role == api.RoleFollower {
				continue // follower copies never capture placement
			}
			c := ownerClaim{addr: res.addr, info: row.Replication}
			if prev, taken := claims[row.ID]; taken {
				win, lose, fence := resolveOwners(row.ID, prev, c, oldPlace[row.ID])
				claims[row.ID] = win
				if fence {
					demotions = append(demotions, demotion{
						id: row.ID, loser: lose.addr, to: win.addr, term: win.info.Term,
					})
				}
				continue
			}
			claims[row.ID] = c
		}
	}
	for id, c := range claims {
		next[id] = c.addr
	}
	for _, res := range results {
		if res.err == nil {
			continue
		}
		// Unreachable: keep whatever we believed this shard owned, for
		// interfaces no live shard claims.
		for id, addr := range oldPlace {
			if addr == res.addr {
				if _, taken := next[id]; !taken {
					next[id] = addr
				}
			}
		}
	}

	rt.mu.Lock()
	rt.place = next
	nextReps := make(map[string]*replicaSet, len(claims))
	for id, c := range claims {
		nextReps[id] = newReplicaSet(c.info, rt.reps[id])
	}
	for id := range next {
		if _, live := claims[id]; !live {
			// Placement carried over from an unreachable owner: keep its
			// last known replica view, failover needs it.
			if rs, ok := rt.reps[id]; ok {
				nextReps[id] = rs
			}
		}
	}
	rt.reps = nextReps
	for _, res := range results {
		conn, ok := rt.shards[res.addr]
		if !ok || res.skipped {
			continue
		}
		if res.err == nil {
			conn.ingestion = res.ingestion
			conn.down = false
			conn.failures = 0
			conn.nextProbe = time.Time{}
			conn.mx.down.Set(0)
		} else {
			rt.bumpBackoffLocked(conn)
		}
	}
	rt.mu.Unlock()

	// Fence ex-owners that lost a term race, off the refresh path.
	for _, d := range demotions {
		go rt.demoteStale(d)
	}
	rt.ensureReplication(ctx, claims)

	// Interfaces whose placement carried over from an unreachable shard
	// have a dead owner: promote their best surviving follower now
	// rather than waiting for the next proxied operation to trip over
	// the corpse.
	if rt.opts.Failover {
		var fwg sync.WaitGroup
		for id, addr := range next {
			if _, live := claims[id]; live {
				continue
			}
			fwg.Add(1)
			go func(id, addr string) {
				defer fwg.Done()
				rt.failover(id, addr)
			}(id, addr)
		}
		fwg.Wait()
	}

	rows := make([]api.ShardHealth, 0, len(results))
	for _, res := range results {
		row := api.ShardHealth{Addr: res.addr, Status: "ok", Interfaces: len(res.rows)}
		if res.err != nil {
			row.Status = "unreachable"
			row.Error = res.err.Error()
		}
		rows = append(rows, row)
	}
	return rows
}

// owner resolves the shard that owns the interface.
func (rt *Router) owner(id string) (*shardConn, *api.Error) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	addr, ok := rt.place[id]
	if !ok {
		return nil, api.Errf(api.CodeNotFound, http.StatusNotFound,
			"no shard hosts interface %q", id)
	}
	conn, ok := rt.shards[addr]
	if !ok {
		return nil, api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
			"interface %q is placed on unknown shard %s", id, addr)
	}
	return conn, nil
}

// follow flips the placement after a shard reported a move. Unknown
// target shards are added on the fly — a migration can legitimately
// land an interface on a shard this router was not configured with.
func (rt *Router) follow(id, addr string) {
	conn, err := rt.addShard(addr)
	if err != nil {
		return
	}
	rt.mu.Lock()
	rt.place[id] = conn.addr
	rt.mu.Unlock()
}

// drop forgets a placement, but only while it still points at the
// shard the caller observed failing (a concurrent follow wins).
func (rt *Router) drop(id, addr string) {
	rt.mu.Lock()
	if rt.place[id] == addr {
		delete(rt.place, id)
	}
	rt.mu.Unlock()
}

// proxy runs one per-interface operation against the owning shard,
// following moved errors (and repairing the placement map) a bounded
// number of times, and translating transport failures into structured
// shard_unavailable errors.
func (rt *Router) proxy(id string, fn func(ctx context.Context, c *client.Client) error) error {
	return rt.proxyOp(context.Background(), id, false, fn)
}

func (rt *Router) proxyOp(parent context.Context, id string, readOnly bool, fn func(ctx context.Context, c *client.Client) error) error {
	for hop := 0; hop < maxPlacementHops; hop++ {
		conn, apiErr := rt.owner(id)
		if apiErr != nil {
			return apiErr
		}
		ctx, cancel := rt.callCtx(parent)
		start := time.Now()
		err := fn(ctx, conn.c)
		cancel()
		conn.mx.proxied.Inc()
		conn.mx.dur.Observe(time.Since(start))
		if err == nil {
			return nil
		}
		var ae *api.Error
		if errors.As(err, &ae) {
			switch {
			case ae.Code == api.CodeMoved && ae.Addr != "":
				mxMovedFollows.Inc()
				rt.follow(id, ae.Addr)
				continue
			case (ae.Code == api.CodeNotOwner || ae.Code == api.CodeReplicaLagging) && ae.Addr != "":
				// The placement map lags a promotion: the shard we
				// believed owned the interface is (or became) a follower,
				// and names the owner it knows.
				mxMovedFollows.Inc()
				rt.follow(id, ae.Addr)
				continue
			case ae.Code == api.CodeNotFound:
				// The shard genuinely does not host it (restart without
				// its data dir, tombstone lost): stop routing there.
				rt.drop(id, conn.addr)
				return ae
			}
			return ae
		}
		// Transport failure: the owner is gone. Back its probe off, and
		// when failover is on, try to promote the most-caught-up in-sync
		// follower in its place.
		conn.mx.errs.Inc()
		rt.noteShardDown(conn.addr)
		if rt.opts.Failover {
			if newAddr, ok := rt.failover(id, conn.addr); ok {
				if readOnly {
					continue // re-run the read against the promoted owner
				}
				// Writes are NOT retried across a promotion: the dead
				// owner may have applied (and replicated) the write before
				// the response was lost, and replaying it through the new
				// owner would double-apply. The placement already points
				// at the promoted follower, so the caller's retry lands
				// there directly.
				return api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
					"shard %s (owner of %q) became unreachable mid-write; follower on %s was promoted — retry against the new owner",
					conn.addr, id, newAddr)
			}
		}
		return api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
			"shard %s (owner of %q) is unreachable: %v", conn.addr, id, err)
	}
	return api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
		"placement for %q did not converge after %d moves", id, maxPlacementHops)
}

// maxPlacementHops bounds moved-following during one proxied call.
const maxPlacementHops = 3

// --- api.Servicer: per-interface operations proxy to the owner.

func (rt *Router) GetInterface(id string) (*api.InterfaceDetail, error) {
	var out *api.InterfaceDetail
	err := rt.proxy(id, func(ctx context.Context, c *client.Client) error {
		d, err := c.GetInterface(ctx, id)
		out = d
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (rt *Router) Epoch(id string) (*api.EpochResponse, error) {
	var out api.EpochResponse
	err := rt.proxyRead(id, func(ctx context.Context, c *client.Client) error {
		e, err := c.Epoch(ctx, id)
		out.Epoch = e
		return err
	})
	if err != nil {
		return nil, err
	}
	return &out, nil
}

func (rt *Router) Page(id string) (string, error) {
	var out string
	err := rt.proxyRead(id, func(ctx context.Context, c *client.Client) error {
		p, err := c.Page(ctx, id)
		out = p
		return err
	})
	if err != nil {
		return "", err
	}
	return out, nil
}

// Query proxies with the request — limit, cursor and all — passed
// through verbatim, so epoch-bound cursors keep their exact semantics
// across the router: replicas serve at the same epoch as the owner
// (epochs advance in lockstep through the replication stream), so a
// cursor minted anywhere in the replica set pages consistently
// everywhere in it, and after a migration or promotion the bumped
// epoch expires it.
func (rt *Router) Query(id string, req api.QueryRequest) (*api.QueryResponse, error) {
	var out api.QueryResponse
	if err := rt.QueryIntoCtx(context.Background(), id, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

var _ api.CtxQuerier = (*Router)(nil)

// QueryIntoCtx is the context-carrying query path the HTTP transport
// prefers: the caller's context carries the edge-minted trace id, so
// the proxied hop forwards it to the shard (pi/client sets the
// Pi-Trace-Id header from the context) and the router's own slow-query
// ring records it. The whole routed call is attributed to ProxyMS —
// the router does no binding or execution of its own; the shard-side
// ring carries the stage split.
func (rt *Router) QueryIntoCtx(ctx context.Context, id string, req api.QueryRequest, resp *api.QueryResponse) error {
	var start time.Time
	if rt.slow.Armed() {
		start = time.Now()
	}
	err := rt.proxyReadCtx(ctx, id, func(cctx context.Context, c *client.Client) error {
		r, err := c.Query(cctx, id, req)
		if err != nil {
			return err
		}
		*resp = *r
		return nil
	})
	if !start.IsZero() {
		total := time.Since(start)
		if rt.slow.Should(total) {
			e := obs.SlowEntry{
				TraceID:   obs.TraceID(ctx),
				Interface: id,
				Source:    "router",
				Time:      time.Now(),
				TotalMS:   float64(total) / 1e6,
				ProxyMS:   float64(total) / 1e6,
			}
			if err != nil {
				e.Error = err.Error()
			} else {
				e.SQL = resp.SQL
				e.Epoch = resp.Epoch
				e.Plan = resp.Plan
				e.Cache = resp.Cache
			}
			rt.slow.Record(e)
		}
	}
	return err
}

// IngestReady pre-checks without a network round trip: placement must
// resolve and the owning shard must have reported ingestion enabled at
// the last refresh. Possibly stale by one refresh interval — the
// proxied IngestLog remains the authority — but it preserves the
// contract's point: a transport can reject before decoding a large
// body.
func (rt *Router) IngestReady(id string) error {
	conn, apiErr := rt.owner(id)
	if apiErr != nil {
		return apiErr
	}
	rt.mu.RLock()
	ready := conn.ingestion
	rt.mu.RUnlock()
	if !ready {
		return api.Errf(api.CodeIngestDisabled, http.StatusNotImplemented,
			"live ingestion is not enabled on the shard hosting %q", id)
	}
	return nil
}

func (rt *Router) IngestLog(id string, entries []qlog.Entry, flush bool) (*api.IngestAck, error) {
	wire := make([]api.LogEntry, len(entries))
	for i, e := range entries {
		wire[i] = api.LogEntry{SQL: e.SQL, Client: e.Client}
	}
	var out *api.IngestAck
	err := rt.proxy(id, func(ctx context.Context, c *client.Client) error {
		ack, err := c.IngestLog(ctx, id, wire, flush)
		out = ack
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (rt *Router) AppendRows(id string, req api.RowsRequest, flush bool) (*api.RowsAck, error) {
	var out *api.RowsAck
	err := rt.proxy(id, func(ctx context.Context, c *client.Client) error {
		ack, err := c.AppendRows(ctx, id, req.Table, req.Rows, flush)
		out = ack
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (rt *Router) MutateRows(id string, req api.MutateRequest) (*api.MutateAck, error) {
	var out *api.MutateAck
	err := rt.proxy(id, func(ctx context.Context, c *client.Client) error {
		ack, err := c.MutateRows(ctx, id, req.SQL, req.IfEpoch)
		out = ack
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (rt *Router) DeleteInterface(id string) (*api.DeleteAck, error) {
	var out *api.DeleteAck
	err := rt.proxy(id, func(ctx context.Context, c *client.Client) error {
		ack, err := c.DeleteInterface(ctx, id)
		out = ack
		return err
	})
	if err != nil {
		return nil, err
	}
	rt.mu.Lock()
	delete(rt.place, id)
	rt.mu.Unlock()
	return out, nil
}

// --- api.Servicer: fleet-wide operations fan out and merge.

// fanOut runs fn once per shard concurrently and returns the results
// in shard order.
func fanOut[T any](rt *Router, fn func(ctx context.Context, conn *shardConn) (T, error)) []fanResult[T] {
	mxFanouts.Inc()
	rt.mu.RLock()
	conns := make([]*shardConn, 0, len(rt.order))
	for _, addr := range rt.order {
		conns = append(conns, rt.shards[addr])
	}
	rt.mu.RUnlock()
	out := make([]fanResult[T], len(conns))
	var wg sync.WaitGroup
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn *shardConn) {
			defer wg.Done()
			ctx, cancel := rt.callCtx(nil)
			defer cancel()
			v, err := fn(ctx, conn)
			out[i] = fanResult[T]{addr: conn.addr, v: v, err: err}
		}(i, conn)
	}
	wg.Wait()
	return out
}

type fanResult[T any] struct {
	addr string
	v    T
	err  error
}

// ListInterfaces merges every reachable shard's listing, sorted by ID.
// Interfaces on unreachable shards are omitted — the health operation
// is where degradation is reported.
func (rt *Router) ListInterfaces() []api.InterfaceSummary {
	results := fanOut(rt, func(ctx context.Context, conn *shardConn) ([]api.InterfaceSummary, error) {
		return conn.c.ListInterfaces(ctx)
	})
	seen := map[string]bool{}
	out := []api.InterfaceSummary{}
	for _, res := range results {
		if res.err != nil {
			continue
		}
		for _, s := range res.v {
			if !seen[s.ID] {
				seen[s.ID] = true
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Health merges every shard's health and adds a per-shard roll-up;
// any unreachable shard degrades the fleet status. With replication
// on, one interface is hosted by several shards — the owner's row
// wins the merge (it carries the authoritative follower list), so the
// fleet view lists each interface once.
func (rt *Router) Health() *api.Health {
	results := fanOut(rt, func(ctx context.Context, conn *shardConn) (*api.Health, error) {
		return conn.c.Health(ctx)
	})
	health := &api.Health{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Interfaces:    []api.HealthInterface{},
	}
	byID := map[string]api.HealthInterface{}
	for _, res := range results {
		row := api.ShardHealth{Addr: res.addr, Status: "ok"}
		if res.err != nil {
			row.Status = "unreachable"
			row.Error = res.err.Error()
			health.Status = "degraded"
		} else {
			row.Interfaces = len(res.v.Interfaces)
			for _, ir := range res.v.Interfaces {
				prev, seen := byID[ir.ID]
				if !seen || (isOwnerRow(ir) && !isOwnerRow(prev)) {
					byID[ir.ID] = ir
				}
			}
			health.Ingestion = health.Ingestion || res.v.Ingestion
			health.Persistence = health.Persistence || res.v.Persistence
			health.Replication = health.Replication || res.v.Replication
		}
		health.Shards = append(health.Shards, row)
	}
	for _, ir := range byID {
		health.Interfaces = append(health.Interfaces, ir)
	}
	sort.Slice(health.Interfaces, func(i, j int) bool {
		return health.Interfaces[i].ID < health.Interfaces[j].ID
	})
	return health
}

// isOwnerRow reports whether a health row describes an owner copy
// (unreplicated rows count as owners).
func isOwnerRow(r api.HealthInterface) bool {
	return r.Replication == nil || r.Replication.Role == api.RoleOwner
}

// Debug merges every reachable shard's counters.
func (rt *Router) Debug() *api.DebugInfo {
	results := fanOut(rt, func(ctx context.Context, conn *shardConn) (*api.DebugInfo, error) {
		return conn.c.Debug(ctx)
	})
	info := &api.DebugInfo{Interfaces: []api.DebugInterface{}}
	for _, res := range results {
		if res.err != nil {
			continue
		}
		info.Interfaces = append(info.Interfaces, res.v.Interfaces...)
	}
	sort.Slice(info.Interfaces, func(i, j int) bool {
		return info.Interfaces[i].ID < info.Interfaces[j].ID
	})
	return info
}

// Snapshot asks every shard to persist; all must succeed for the
// fleet-wide snapshot to report success.
func (rt *Router) Snapshot() (*api.SnapshotResult, error) {
	start := time.Now()
	results := fanOut(rt, func(ctx context.Context, conn *shardConn) (*api.SnapshotResult, error) {
		return conn.c.Snapshot(ctx)
	})
	merged := &api.SnapshotResult{Interfaces: []api.SnapshotInterface{}}
	var dirs []string
	for _, res := range results {
		if res.err != nil {
			var ae *api.Error
			if errors.As(res.err, &ae) {
				return nil, ae
			}
			return nil, api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
				"snapshot on shard %s: %v", res.addr, res.err)
		}
		merged.Interfaces = append(merged.Interfaces, res.v.Interfaces...)
		dirs = append(dirs, res.addr+":"+res.v.Dir)
	}
	sort.Slice(merged.Interfaces, func(i, j int) bool {
		return merged.Interfaces[i].ID < merged.Interfaces[j].ID
	})
	merged.Dir = strings.Join(dirs, ", ")
	merged.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return merged, nil
}

// --- placement policy.

// Want returns the shard that should own the interface: the explicit
// pin when one exists, otherwise rendezvous (highest-random-weight)
// hashing over the shard list — stable under membership changes, so
// adding or removing one shard only re-homes the interfaces that hash
// to it, not the whole fleet.
func (rt *Router) Want(id string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if p, ok := rt.pins[id]; ok {
		return p
	}
	var best string
	var bestScore uint64
	for _, addr := range rt.order {
		score := rendezvousScore(addr, id)
		if best == "" || score > bestScore {
			best, bestScore = addr, score
		}
	}
	return best
}

func rendezvousScore(addr, id string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, addr)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, id)
	return h.Sum64()
}
