package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/api"
)

// MigrateResult reports one completed migration.
type MigrateResult struct {
	ID        string  `json:"id"`
	From      string  `json:"from"`
	To        string  `json:"to"`
	Epoch     uint64  `json:"epoch"`    // epoch the target hosts at (source + 1)
	Bytes     int     `json:"bytes"`    // transferred snapshot frame size
	Attempts  int     `json:"attempts"` // export/CAS rounds (>1 when writes raced the handoff)
	ElapsedMS float64 `json:"elapsedMs"`
}

// migrateAttempts bounds export/CAS rounds: an interface under such
// heavy write traffic that three exports in a row go stale should keep
// serving where it is rather than loop.
const migrateAttempts = 3

// Migrate moves one interface to the shard at target, live:
//
//  1. the source exports a snapshot frame (flushing buffered writes
//     first) together with the epoch it captured — the CAS token;
//  2. the target accepts the frame, re-mines the saved log and hosts
//     the interface at epoch + 1 (so cursors minted by the source
//     expire instead of paging a restored result set);
//  3. the source relinquishes, conditioned on the exported epoch: on
//     success it unhosts the interface and leaves a moved tombstone,
//     on epoch_mismatch (writes landed in between) the stale copy is
//     deleted from the target and the round restarts;
//  4. the router atomically flips its placement map.
//
// Queries never fail during the move: until relinquish the source
// answers them; between relinquish and the flip the source returns
// structured moved errors, which this router (and the SDK, for clients
// talking to shards directly) follows to the new owner.
func (rt *Router) Migrate(ctx context.Context, id, target string) (*MigrateResult, error) {
	start := time.Now()
	toAddr, err := NormalizeAddr(target)
	if err != nil {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "migrate %q: %v", id, err)
	}
	rt.mu.RLock()
	tgt, ok := rt.shards[toAddr]
	rt.mu.RUnlock()
	if !ok {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"migrate %q: target %s is not a configured shard", id, toAddr)
	}

	for attempt := 1; attempt <= migrateAttempts; attempt++ {
		src, apiErr := rt.owner(id)
		if apiErr != nil {
			return nil, apiErr
		}
		if src.addr == toAddr {
			return &MigrateResult{
				ID: id, From: src.addr, To: toAddr, Attempts: attempt,
				ElapsedMS: elapsedMS(start),
			}, nil
		}

		frame, epoch, err := src.admin.export(ctx, id)
		if err != nil {
			return nil, migrateErr("export", id, src.addr, err)
		}
		accepted, err := tgt.admin.accept(ctx, frame)
		if err != nil {
			return nil, migrateErr("accept", id, toAddr, err)
		}
		committed, refusal, relErr := settleRelinquish(ctx, src, id, toAddr, epoch)
		if relErr != nil {
			// Ambiguous: the relinquish may or may not have committed on
			// the source, so the target's copy may be the only one left —
			// deleting it here could destroy the interface fleet-wide.
			// Leave both copies standing: if the source committed, its
			// moved tombstone routes traffic to the target; if it did
			// not, the placement map still points at it and the next
			// Refresh (or a retried Migrate) reconciles.
			return nil, api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
				"migrate %q: relinquish on %s did not settle (%v); the move may or may not have committed — retry the migration or refresh placement",
				id, src.addr, relErr)
		}
		if !committed {
			// Structured refusal: the source provably still owns the
			// interface, so the copy the target accepted is stale —
			// delete it so two shards never diverge on one interface.
			dctx, cancel := rt.callCtx(nil)
			_, derr := tgt.c.DeleteInterface(dctx, id)
			cancel()
			// A lost-response replay answers not_found for a delete that
			// succeeded: the target no longer holds the copy, which is
			// exactly the state this cleanup wants.
			var dae *api.Error
			if errors.As(derr, &dae) && dae.Code == api.CodeNotFound {
				derr = nil
			}
			if derr != nil {
				return nil, api.Errf(api.CodeInternal, http.StatusInternalServerError,
					"migrate %q: relinquish on %s refused (%v) AND deleting the stale copy on %s failed (%v); manual cleanup needed",
					id, src.addr, refusal, toAddr, derr)
			}
			if refusal.Code == api.CodeEpochMismatch {
				continue // writes raced the handoff: re-export and retry
			}
			return nil, refusal
		}
		rt.follow(id, toAddr)
		return &MigrateResult{
			ID: id, From: src.addr, To: toAddr, Epoch: accepted.Epoch,
			Bytes: len(frame), Attempts: attempt, ElapsedMS: elapsedMS(start),
		}, nil
	}
	return nil, api.Errf(api.CodeEpochMismatch, http.StatusConflict,
		"migrate %q: lost the epoch race %d times (heavy write traffic?); retry later",
		id, migrateAttempts)
}

// settleRelinquish asks the source to relinquish and classifies the
// outcome into exactly one of three states:
//
//   - committed (true, nil, nil): the source handed the interface off —
//     either this call succeeded, or it answered moved-to-target,
//     which proves an earlier (lost-response) relinquish committed;
//   - refused (false, *api.Error, nil): a structured error other than
//     moved-to-target — the source provably still owns the interface;
//   - unsettled (false, nil, err): transport failures on every try —
//     the handoff may or may not have committed on the source.
//
// A transport failure is retried once before being reported unsettled:
// if the first attempt's success response was lost, the retry answers
// moved-to-target and resolves the ambiguity.
func settleRelinquish(ctx context.Context, src *shardConn, id, toAddr string, epoch uint64) (bool, *api.Error, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		_, err := src.admin.relinquish(ctx, id, toAddr, epoch)
		if err == nil {
			return true, nil, nil
		}
		var ae *api.Error
		if errors.As(err, &ae) {
			if ae.Code == api.CodeMoved && ae.Addr == toAddr {
				return true, nil, nil
			}
			return false, ae, nil
		}
		lastErr = err
	}
	return false, nil, lastErr
}

// migrateErr wraps one migration step's failure, preserving structured
// errors and turning transport failures into shard_unavailable.
func migrateErr(step, id, addr string, err error) error {
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae
	}
	return api.Errf(api.CodeShardUnavailable, http.StatusBadGateway,
		"migrate %q: %s on %s: %v", id, step, addr, err)
}

func elapsedMS(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

// RebalanceResult reports what a rebalance pass moved.
type RebalanceResult struct {
	Moved   []MigrateResult `json:"moved"`
	Skipped int             `json:"skipped"` // interfaces already home
}

// Rebalance migrates every interface whose current owner differs from
// its Want placement (pin, or rendezvous hash). Migrations run
// sequentially — rebalancing is a background operation and one
// transfer at a time keeps the fleet predictable. The first failure
// stops the pass and is returned alongside the moves that completed.
func (rt *Router) Rebalance(ctx context.Context) (*RebalanceResult, error) {
	place := rt.Placement()
	ids := make([]string, 0, len(place))
	for id := range place {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	res := &RebalanceResult{Moved: []MigrateResult{}}
	for _, id := range ids {
		want := rt.Want(id)
		if want == "" || want == place[id] {
			res.Skipped++
			continue
		}
		m, err := rt.Migrate(ctx, id, want)
		if err != nil {
			return res, fmt.Errorf("rebalance stopped at %q: %w", id, err)
		}
		res.Moved = append(res.Moved, *m)
	}
	return res, nil
}
