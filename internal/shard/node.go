// Package shard partitions hosted interfaces across processes. It has
// two halves:
//
//   - Node: a shard — the full local service (internal/api.Service over
//     its registry and ingester) plus a shard-admin surface that can
//     export an interface as a checksummed snapshot frame, accept one
//     exported by another shard, relinquish ownership after a handoff,
//     and report load. A relinquished interface leaves a tombstone, so
//     requests that still target this shard get a structured "moved"
//     error carrying the new owner's address instead of a 404.
//
//   - Router: a drop-in api.Servicer that owns an interface→shard
//     placement map, proxies every per-interface operation to the
//     owning shard through the pi/client SDK, fans out the fleet-wide
//     operations (list, health, debug, snapshot), and migrates
//     interfaces between shards live: snapshot on the source, transfer
//     the frame, restore on the target at the saved epoch + 1, then
//     atomically flip the placement map. Default placement is
//     rendezvous hashing with explicit pins on top.
//
// Because PR 4 made per-interface state self-contained — a snapshot
// frame carries (accumulated log, dataset tables, epochs) and re-mines
// to exactly the interface that was serving — moving an interface is
// moving one byte blob. Epoch discipline extends across the move: the
// target hosts at saved epoch + 1, so epoch-bound cursors minted by
// the source expire with cursor_expired instead of silently paging a
// restored result set.
package shard

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/qlog"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/pi/client"
)

// NodeOptions configure a shard node.
type NodeOptions struct {
	// Addr is this shard's advertised base URL — what moved errors,
	// load reports and the router hand to clients (e.g.
	// "http://10.0.0.5:8081"). A bare host:port gets an http scheme.
	Addr string
	// Live are the mining options used when accepting an interface via
	// snapshot. Zero value selects core.DefaultLiveOptions.
	Live core.LiveOptions
	// Funcs, when set, re-attaches table-valued functions — code a
	// snapshot frame cannot carry — to every accepted interface's store.
	Funcs func(id string, st *store.Store)
	// Persister, when set, persists accepted interfaces under this
	// shard's data dir (and the service layer removes relinquished
	// ones), so a shard restart keeps serving what it owned. It also
	// makes tombstones durable: relocations are written to the data
	// dir and reloaded on boot, so a restarted shard answers moved —
	// never not_found — for interfaces it handed off.
	Persister *ingest.Persister
	// Token authenticates this node's outbound replication calls to
	// peer shards (seeding followers, streaming events). Use the
	// fleet's shared admin token.
	Token string
}

// Node is one shard: the local service plus the shard-admin state.
// It implements api.Servicer by delegating to the wrapped service,
// except that per-interface operations on an interface this node has
// relinquished return a structured moved error with the new owner's
// address — the contract pi/client follows transparently and the
// router uses to repair its placement map.
type Node struct {
	*api.Service
	ing  *ingest.Ingester
	opts NodeOptions
	mgr  *replica.Manager

	// adminMu serializes accept/relinquish so two concurrent migrations
	// cannot interleave on one interface.
	adminMu sync.Mutex

	mu      sync.RWMutex
	moved   map[string]string // tombstones: interface ID -> new owner's base URL
	tombErr string            // last tombstone-persist failure, for load reports

	// tombMu serializes tombstone file writes (replicate.go).
	tombMu sync.Mutex
}

var _ api.Servicer = (*Node)(nil)

// NewNode wraps the service and its ingester as a shard. The ingester
// must be the one wired into the service: accept and export go through
// its live feeds.
func NewNode(svc *api.Service, ing *ingest.Ingester, opts NodeOptions) (*Node, error) {
	addr, err := NormalizeAddr(opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("shard: node needs an advertised address: %w", err)
	}
	opts.Addr = addr
	if ing == nil {
		return nil, fmt.Errorf("shard: node needs an ingester (snapshot export rides its feeds)")
	}
	n := &Node{Service: svc, ing: ing, opts: opts, moved: map[string]string{}}
	if p := opts.Persister; p != nil {
		moved, err := loadTombstones(p.Dir())
		if err != nil {
			n.tombErr = err.Error()
		}
		n.moved = moved
	}
	cfg := replica.Config{
		Self:           addr,
		Token:          opts.Token,
		Ing:            ing,
		Reg:            svc.Registry(),
		Live:           opts.Live,
		Funcs:          opts.Funcs,
		Demote:         n.demoteLocal,
		Drop:           n.dropLocal,
		ClearTombstone: n.clearTombstone,
	}
	walMode := opts.Persister != nil && opts.Persister.WALEnabled()
	if walMode {
		p := opts.Persister
		// WAL mode makes replication state crash-proof: seeds persist
		// before they are acked, control-plane changes rewrite the
		// manifest, and trailing followers re-sync from the owner's log
		// instead of taking a fresh seed.
		cfg.Adopt = p.Adopt
		cfg.Persist = func(id string) { _ = p.PersistReplState(id) }
		cfg.CatchUp = p.CatchUp
	}
	mgr, err := replica.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	n.mgr = mgr
	if walMode {
		p := opts.Persister
		p.SetReplStateSource(func(id string) *store.ReplState {
			info := mgr.Info(id)
			if info == nil {
				return nil
			}
			rs := &store.ReplState{Role: info.Role, Term: info.Term, Owner: info.Owner}
			if len(info.Followers) > 0 {
				rs.Followers = make(map[string]uint64, len(info.Followers))
				for _, fo := range info.Followers {
					rs.Followers[fo.Addr] = fo.Seq
				}
			}
			return rs
		})
		// Re-adopt what the manifests remembered: a restarted ex-owner
		// answers from the term it held (not a blank slate a stale peer
		// could out-fence), and a restarted follower resumes the stream
		// at the sequence its WAL replay reached.
		for id, rs := range p.ReplStates() {
			seq, _ := ing.Seq(id)
			mgr.RestoreState(id, rs, seq)
		}
	}
	// Every acked publish streams to followers before the ack leaves
	// this process; interfaces with no followers pay one map lookup.
	ing.SetPublishHook(mgr.Hook())
	return n, nil
}

// Addr returns the shard's advertised base URL.
func (n *Node) Addr() string { return n.opts.Addr }

// NormalizeAddr turns a shard address ("host:port" or a full URL) into
// a canonical base URL, so addresses compare equal regardless of how
// the operator spelled them. Delegates to the SDK's canonicalizer —
// the same one that follows moved errors, so the two can never drift.
func NormalizeAddr(addr string) (string, error) {
	s, err := client.NormalizeBase(addr)
	if err != nil {
		return "", fmt.Errorf("shard: %w", err)
	}
	return s, nil
}

// movedErr returns the relocation error for a tombstoned interface,
// nil otherwise.
func (n *Node) movedErr(id string) *api.Error {
	n.mu.RLock()
	addr, ok := n.moved[id]
	n.mu.RUnlock()
	if !ok {
		return nil
	}
	return api.ErrMoved(id, addr)
}

// Moved returns the tombstoned relocations this shard remembers
// (interface ID -> new owner), for load reports and tests.
func (n *Node) Moved() map[string]string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make(map[string]string, len(n.moved))
	for id, addr := range n.moved {
		out[id] = addr
	}
	return out
}

// --- api.Servicer overrides: tombstone and replication-role checks
// in front of every per-interface operation.
//
// Reads serve from follower copies (that is what read fan-out buys),
// unless the follower is stale — then replica_lagging points at the
// owner. Writes only land on owners: a follower answers not_owner
// with the owner's address, which the SDK follows exactly like moved
// (the request was not processed, so the re-issue is safe).

// readErr gates read-only per-interface operations.
func (n *Node) readErr(id string) *api.Error {
	if e := n.movedErr(id); e != nil {
		return e
	}
	if role, owner, stale := n.mgr.RoleOf(id); role == api.RoleFollower && stale {
		return api.ErrReplicaLagging(id, owner)
	}
	return nil
}

// writeErr gates mutating per-interface operations.
func (n *Node) writeErr(id string) *api.Error {
	if e := n.movedErr(id); e != nil {
		return e
	}
	if role, owner, _ := n.mgr.RoleOf(id); role == api.RoleFollower {
		return api.ErrNotOwner(id, owner)
	}
	return nil
}

func (n *Node) GetInterface(id string) (*api.InterfaceDetail, error) {
	if e := n.readErr(id); e != nil {
		return nil, e
	}
	return n.Service.GetInterface(id)
}

func (n *Node) Epoch(id string) (*api.EpochResponse, error) {
	if e := n.readErr(id); e != nil {
		return nil, e
	}
	return n.Service.Epoch(id)
}

func (n *Node) Page(id string) (string, error) {
	if e := n.readErr(id); e != nil {
		return "", e
	}
	return n.Service.Page(id)
}

func (n *Node) Query(id string, req api.QueryRequest) (*api.QueryResponse, error) {
	if e := n.readErr(id); e != nil {
		return nil, e
	}
	return n.Service.Query(id, req)
}

// QueryInto keeps the zero-alloc serving path available on a shard.
// Without this override the server's pooled-response fast path would
// reach the embedded Service's QueryInto directly and skip the
// relinquish/tombstone check that turns queries for moved interfaces
// into structured `moved` errors.
func (n *Node) QueryInto(id string, req api.QueryRequest, resp *api.QueryResponse) error {
	if e := n.readErr(id); e != nil {
		return e
	}
	return n.Service.QueryInto(id, req, resp)
}

// QueryIntoCtx mirrors QueryInto for the context-carrying fast path.
// Required for the same reason: the embedded Service satisfies
// api.CtxQuerier by promotion, and without this override the
// transport's type assertion would bypass the relinquish/tombstone
// check.
func (n *Node) QueryIntoCtx(ctx context.Context, id string, req api.QueryRequest, resp *api.QueryResponse) error {
	if e := n.readErr(id); e != nil {
		return e
	}
	return n.Service.QueryIntoCtx(ctx, id, req, resp)
}

func (n *Node) IngestReady(id string) error {
	if e := n.writeErr(id); e != nil {
		return e
	}
	return n.Service.IngestReady(id)
}

func (n *Node) IngestLog(id string, entries []qlog.Entry, flush bool) (*api.IngestAck, error) {
	if e := n.writeErr(id); e != nil {
		return nil, e
	}
	return n.Service.IngestLog(id, entries, flush)
}

func (n *Node) AppendRows(id string, req api.RowsRequest, flush bool) (*api.RowsAck, error) {
	if e := n.writeErr(id); e != nil {
		return nil, e
	}
	return n.Service.AppendRows(id, req, flush)
}

func (n *Node) MutateRows(id string, req api.MutateRequest) (*api.MutateAck, error) {
	if e := n.writeErr(id); e != nil {
		return nil, e
	}
	return n.Service.MutateRows(id, req)
}

func (n *Node) DeleteInterface(id string) (*api.DeleteAck, error) {
	if e := n.writeErr(id); e != nil {
		return nil, e
	}
	ack, err := n.Service.DeleteInterface(id)
	if err == nil {
		// Tear the replication down fleet-side (best effort, off the
		// request path): followers drop their copies instead of serving
		// a deleted interface's reads forever.
		go n.mgr.Unhost(id)
	}
	return ack, err
}

// Health annotates the local health report with per-interface
// replication status — the router's refresh reads roles, terms and
// follower sync state out of the same single poll it already does.
func (n *Node) Health() *api.Health {
	h := n.Service.Health()
	h.Replication = true
	for i := range h.Interfaces {
		h.Interfaces[i].Replication = n.mgr.Info(h.Interfaces[i].ID)
	}
	return h
}

// --- shard-admin operations.

// LoadReport is the shard-load summary the router (or an operator)
// polls when deciding placements.
type LoadReport struct {
	Addr          string  `json:"addr"`
	Interfaces    int     `json:"interfaces"`
	Queries       uint64  `json:"queries"` // total served across interfaces
	Epochs        uint64  `json:"epochs"`  // summed interface epochs (update-traffic proxy)
	Moved         int     `json:"moved"`   // tombstoned relocations
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// Load reports this shard's serving load.
func (n *Node) Load() *LoadReport {
	h := n.Service.Health()
	rep := &LoadReport{
		Addr:          n.opts.Addr,
		Interfaces:    len(h.Interfaces),
		UptimeSeconds: h.UptimeSeconds,
	}
	for _, row := range h.Interfaces {
		rep.Queries += row.Queries
		rep.Epochs += row.Epoch
	}
	n.mu.RLock()
	rep.Moved = len(n.moved)
	n.mu.RUnlock()
	return rep
}

// Export snapshots one hosted interface for transfer: buffered log
// entries and rows flush first so the frame reflects everything
// acknowledged to clients, then (log, dataset, epochs) is captured and
// encoded into the same checksummed frame format .snap files use. The
// returned epoch is the interface's serving epoch inside the frame —
// the CAS token a migration hands back to Relinquish, so a handoff
// that raced a write is detected instead of silently dropped.
func (n *Node) Export(id string) ([]byte, uint64, error) {
	if e := n.writeErr(id); e != nil {
		return nil, 0, e
	}
	if _, ok := n.Registry().Get(id); !ok {
		return nil, 0, api.Errf(api.CodeNotFound, http.StatusNotFound, "unknown interface %q", id)
	}
	if _, err := n.ing.Flush(id); err != nil {
		if errors.Is(err, ingest.ErrNoFeed) {
			// A registry-only interface (reg.Add, no live feed) has no
			// miner and therefore no accumulated log to export — say so,
			// instead of a misleading snapshot failure.
			return nil, 0, api.Errf(api.CodeIngestDisabled, http.StatusNotImplemented,
				"export %q: interface is hosted without a live feed; only live-hosted interfaces can be exported", id)
		}
		return nil, 0, api.Errf(api.CodeSnapshotFailed, http.StatusInternalServerError,
			"export %q: flush: %v", id, err)
	}
	snap, err := n.ing.Capture(id)
	if err != nil {
		return nil, 0, api.Errf(api.CodeSnapshotFailed, http.StatusInternalServerError,
			"export %q: %v", id, err)
	}
	frame, err := store.Encode(snap)
	if err != nil {
		return nil, 0, api.Errf(api.CodeSnapshotFailed, http.StatusInternalServerError,
			"export %q: %v", id, err)
	}
	return frame, snap.Epoch, nil
}

// AcceptResult reports a completed accept.
type AcceptResult struct {
	ID         string `json:"id"`
	Title      string `json:"title"`
	Epoch      uint64 `json:"epoch"` // hosted epoch: saved + 1
	LogEntries int    `json:"logEntries"`
	Rows       int    `json:"rows"`
	Bytes      int    `json:"bytes"`
}

// Accept hosts an interface from an exported snapshot frame: the frame
// is checksum-verified and decoded, the saved log re-mines to exactly
// the interface the source was serving, and the result is hosted at
// saved epoch + 1 — same-or-later epoch keeps client epoch comparisons
// monotone, and the strict bump expires epoch-bound cursors minted by
// the source (cursor_expired) instead of letting them silently page a
// restored result set. With persistence wired, the accepted snapshot
// is saved under this shard's data dir before Accept returns, so a
// restart keeps serving it; a save failure unwinds the accept rather
// than acknowledging a handoff this shard could lose.
func (n *Node) Accept(frame []byte) (*AcceptResult, error) {
	n.adminMu.Lock()
	defer n.adminMu.Unlock()
	snap, err := store.Decode(frame)
	if err != nil {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest, "accept: %v", err)
	}
	// Every failure-prone step runs BEFORE any existing copy is torn
	// down, so a failed accept never leaves this shard serving less
	// than it did: prepare (restore + re-mine), then persist, then the
	// teardown + registration that cannot realistically fail.
	prep, err := n.ing.PrepareSnapshot(snap, n.opts.Live, n.opts.Funcs)
	if err != nil {
		return nil, api.Errf(api.CodeRestoreFailed, http.StatusInternalServerError,
			"accept %q: %v", snap.ID, err)
	}
	epoch := snap.Epoch + 1
	// Re-accept replaces a copy a previous migration round left here
	// (its relinquish never settled, so the round was retried with a
	// fresh export). The fresh frame supersedes the stale copy; the
	// epoch stays monotone for clients that polled the old one.
	h, exists := n.Registry().Get(snap.ID)
	if exists {
		if cur := h.Epoch(); epoch <= cur {
			epoch = cur + 1
		}
	}
	if p := n.opts.Persister; p != nil {
		// Adopt, not a bare file write: in WAL mode this also writes the
		// manifest and resets the interface's log to the frame's
		// sequence — the old tail described state this frame replaced.
		saved := *snap
		saved.Epoch = epoch
		if err := p.Adopt(&saved, nil); err != nil {
			return nil, api.Errf(api.CodeSnapshotFailed, http.StatusInternalServerError,
				"accept %q: persist: %v", snap.ID, err)
		}
	}
	if exists {
		n.ing.Detach(snap.ID)
		n.Registry().Remove(snap.ID)
	}
	if _, err := n.ing.HostPrepared(prep, epoch); err != nil {
		return nil, api.Errf(api.CodeRestoreFailed, http.StatusInternalServerError,
			"accept %q: %v", snap.ID, err)
	}
	// The interface is hosted here now: an earlier relinquish tombstone
	// (it left and came back) no longer applies, and any follower state
	// is superseded — an accepted interface is owned.
	n.clearTombstone(snap.ID)
	n.mgr.Forget(snap.ID)

	rows := 0
	for _, t := range snap.Tables {
		rows += len(t.Rows)
	}
	return &AcceptResult{
		ID:         snap.ID,
		Title:      snap.Title,
		Epoch:      epoch,
		LogEntries: len(snap.Log),
		Rows:       rows,
		Bytes:      len(frame),
	}, nil
}

// RelinquishResult reports a completed handoff.
type RelinquishResult struct {
	ID    string `json:"id"`
	To    string `json:"to"`
	Epoch uint64 `json:"epoch"` // the epoch the handoff was CAS'd at
	// Warning reports a non-fatal wrinkle on a committed handoff (e.g.
	// the local snapshot file could not be removed and will resurrect
	// this copy on a restart).
	Warning string `json:"warning,omitempty"`
}

// Relinquish hands the interface off to the shard at to. The epoch
// check against expectEpoch — the value Export returned — is atomic
// with sealing the live feed (ingest.DetachAtEpoch): every write path
// publishes under the same feed lock, so a write either lands before
// the check (bumping the epoch and failing the CAS) or after the seal
// (rejected, never acknowledged) — an acknowledged write can never be
// silently dropped by the handoff. On a match the interface is
// unhosted, its local snapshot file removed, and a tombstone recorded
// FIRST, so the handoff window answers moved — never not_found, which
// routers treat as "drop the placement".
//
// A non-zero expectEpoch that no longer matches fails with
// epoch_mismatch and changes nothing: the caller re-exports and
// retries, so the target never keeps a stale copy. expectEpoch 0
// skips the check (forced handoff). Relinquishing an interface this
// node already handed to the same target answers moved — callers that
// lost a success response can treat that as confirmation.
func (n *Node) Relinquish(id, to string, expectEpoch uint64) (*RelinquishResult, error) {
	n.adminMu.Lock()
	defer n.adminMu.Unlock()
	toAddr, err := NormalizeAddr(to)
	if err != nil {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"relinquish %q: %v", id, err)
	}
	if toAddr == n.opts.Addr {
		return nil, api.Errf(api.CodeBadRequest, http.StatusBadRequest,
			"relinquish %q: target %s is this shard", id, toAddr)
	}
	if e := n.writeErr(id); e != nil {
		return nil, e
	}
	h, ok := n.Registry().Get(id)
	if !ok {
		return nil, api.Errf(api.CodeNotFound, http.StatusNotFound, "unknown interface %q", id)
	}

	cur, err := n.ing.DetachAtEpoch(id, expectEpoch)
	switch {
	case errors.Is(err, ingest.ErrEpochMismatch):
		return nil, api.Errf(api.CodeEpochMismatch, http.StatusConflict,
			"interface %q is at epoch %d, handoff expected epoch %d; re-export and retry",
			id, cur, expectEpoch)
	case errors.Is(err, ingest.ErrNoFeed):
		// Hosted without ingestion: there is no write path to race, so
		// a plain epoch check suffices.
		cur = h.Epoch()
		if expectEpoch != 0 && cur != expectEpoch {
			return nil, api.Errf(api.CodeEpochMismatch, http.StatusConflict,
				"interface %q is at epoch %d, handoff expected epoch %d; re-export and retry",
				id, cur, expectEpoch)
		}
	case err != nil:
		return nil, api.Errf(api.CodeSnapshotFailed, http.StatusInternalServerError,
			"relinquish %q: drain: %v", id, err)
	}

	// Tombstone before the registry removal: the window in between
	// answers moved (followed transparently), never not_found.
	n.setTombstone(id, toAddr)
	res := &RelinquishResult{ID: id, To: toAddr, Epoch: cur}
	if _, derr := n.Service.DeleteInterface(id); derr != nil {
		if _, still := n.Registry().Get(id); still {
			// Nothing was removed: roll the tombstone back — the source
			// still fully owns the interface, so this is a clean
			// structured refusal the migration can unwind from.
			n.clearTombstone(id)
			return nil, derr
		}
		// The registry entry is gone: for serving purposes the handoff
		// IS committed (requests here answer moved, the target owns the
		// interface). Only the durable snapshot lingers — report success
		// with the warning rather than an error a migration would
		// misread as "the source still owns it" and use to delete the
		// target's only good copy. Like tombstones, the stale .snap is
		// reconciled at restart by placement refresh.
		res.Warning = fmt.Sprintf("handoff committed, but the local snapshot was not removed and will resurrect on restart: %v", derr)
	}
	// The new owner inherits replication: any follower set this shard
	// maintained is re-targeted (and re-seeded where needed) by the
	// router's next refresh against the accepting shard.
	n.mgr.Forget(id)
	return res, nil
}
