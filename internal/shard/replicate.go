package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/replica"
	"repro/internal/store"
)

// This file binds a Node to its replication manager (internal/replica)
// and owns the durable tombstone file. The manager gets three
// callbacks into the node — demote (fence lost-term owners), drop
// (tear down follower copies) and clear-tombstone (a seed supersedes
// an old relocation) — and the node installs the manager's publish
// hook on its ingester, so every acked write streams to followers
// before the ack leaves the process.

// Replication returns the node's replication manager.
func (n *Node) Replication() *replica.Manager { return n.mgr }

// demoteLocal is the manager's Demote callback: this shard lost an
// ownership term race (a fenced ex-owner, or a router-observed
// conflict). Tombstone FIRST — the teardown window answers moved,
// never not_found — then drop the copy and its durable snapshot, then
// forget the replication state.
func (n *Node) demoteLocal(id, to string) {
	if addr, err := NormalizeAddr(to); err == nil {
		to = addr
	}
	n.setTombstone(id, to)
	_, _ = n.Service.DeleteInterface(id)
	n.mgr.Forget(id)
}

// dropLocal is the manager's Drop callback: remove a local copy (and
// any durable snapshot) with no tombstone. Missing copies are fine.
func (n *Node) dropLocal(id string) {
	_, _ = n.Service.DeleteInterface(id)
}

// --- durable tombstones.
//
// A tombstone is only useful if it outlives the process: a restarted
// shard that forgot its relocations answers not_found where it should
// answer moved, and routers treat not_found as "drop the placement" —
// the carried-over bug this file fixes. With a persister wired, every
// tombstone mutation rewrites <data-dir>/tombstones.json atomically
// (temp + rename, like .snap files) and NewNode reloads it on boot.

// tombstoneFile names the durable tombstone map inside a data dir.
const tombstoneFile = "tombstones.json"

// setTombstone records id -> addr and persists the map.
func (n *Node) setTombstone(id, addr string) {
	n.mu.Lock()
	n.moved[id] = addr
	n.mu.Unlock()
	n.persistTombstones()
}

// clearTombstone removes id's tombstone (the interface came back —
// accept or seed) and persists the map.
func (n *Node) clearTombstone(id string) {
	n.mu.Lock()
	_, had := n.moved[id]
	delete(n.moved, id)
	n.mu.Unlock()
	if had {
		n.persistTombstones()
	}
}

// persistTombstones writes the current tombstone map durably.
// Best-effort: the in-memory map stays authoritative for this
// process's lifetime, and a write failure only costs moved answers
// after a restart — the same exposure as before persistence existed.
func (n *Node) persistTombstones() {
	p := n.opts.Persister
	if p == nil {
		return
	}
	n.mu.RLock()
	snapshot := make(map[string]string, len(n.moved))
	for id, addr := range n.moved {
		snapshot[id] = addr
	}
	n.mu.RUnlock()

	n.tombMu.Lock()
	defer n.tombMu.Unlock()
	if err := writeTombstones(p.Dir(), snapshot); err != nil {
		n.mu.Lock()
		n.tombErr = err.Error()
		n.mu.Unlock()
	}
}

func writeTombstones(dir string, moved map[string]string) error {
	raw, err := json.MarshalIndent(moved, "", "  ")
	if err != nil {
		return fmt.Errorf("shard: encode tombstones: %w", err)
	}
	if err := store.AtomicWrite(dir, tombstoneFile, raw); err != nil {
		return fmt.Errorf("shard: persist tombstones: %w", err)
	}
	return nil
}

// loadTombstones reads the durable tombstone map on boot. A missing
// file is a fresh shard; a corrupt one is reported but not fatal (the
// shard can serve — it just answers not_found where it could have
// answered moved, which the next relocation rewrite repairs).
func loadTombstones(dir string) (map[string]string, error) {
	raw, err := os.ReadFile(filepath.Join(dir, tombstoneFile))
	if os.IsNotExist(err) {
		return map[string]string{}, nil
	}
	if err != nil {
		return map[string]string{}, fmt.Errorf("shard: read tombstones: %w", err)
	}
	moved := map[string]string{}
	if err := json.Unmarshal(raw, &moved); err != nil {
		return map[string]string{}, fmt.Errorf("shard: decode tombstones: %w", err)
	}
	return moved, nil
}
