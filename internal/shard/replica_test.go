package shard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/qlog"
	"repro/pi/client"
)

// ontimeRow is one valid row for the fixture's ontime table (16
// columns, positionally matching engine.OnTimeDB).
func ontimeRow(i int) []any {
	return []any{
		"AA", "AA", "CAP", "NYP", "CA", "NY",
		float64(1 + i%12), float64(1 + i%28), float64(1 + i%7),
		float64(i % 120), float64(i % 110), float64(i % 100),
		float64(500 + i), float64(1), float64(0), float64(0),
	}
}

// startReplicatedFleet boots one shard hosting olap plus n-1 empty
// shards, fronted by a refreshed router with the given replication
// policy. The empty shards are what a real fleet's standby processes
// look like: nothing hosted until the router seeds them.
func startReplicatedFleet(t testing.TB, n int, opts RouterOptions) ([]*testShard, *Router) {
	t.Helper()
	shards := []*testShard{startShard(t, "olap")}
	for i := 1; i < n; i++ {
		shards = append(shards, startShard(t))
	}
	addrs := make([]string, len(shards))
	for i, s := range shards {
		addrs[i] = s.ts.URL
	}
	opts.Token = testToken
	if opts.Timeout == 0 {
		opts.Timeout = 10 * time.Second
	}
	rt, err := NewRouter(addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Refresh(context.Background())
	return shards, rt
}

// waitSynced polls the owner's replication view until want followers
// report in sync, returning their addresses.
func waitSynced(t testing.TB, owner *testShard, id string, want int) []string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		var synced []string
		if info := owner.node.Replication().Info(id); info != nil {
			for _, f := range info.Followers {
				if f.Synced {
					synced = append(synced, f.Addr)
				}
			}
		}
		if len(synced) >= want {
			return synced
		}
		if time.Now().After(deadline) {
			t.Fatalf("owner never reported %d synced follower(s) of %q: %+v",
				want, id, owner.node.Replication().Info(id))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// shardByAddr finds the test shard serving at addr.
func shardByAddr(t testing.TB, shards []*testShard, addr string) *testShard {
	t.Helper()
	for _, s := range shards {
		if s.ts.URL == addr {
			return s
		}
	}
	t.Fatalf("no test shard at %q", addr)
	return nil
}

// TestReplicationSeedsAndStreams: the tentpole's data plane. A refresh
// seeds a warm follower from a snapshot frame, and every acked write
// afterwards reaches it before the ack returns — follower epoch, seq
// and query results stay in lockstep with the owner.
func TestReplicationSeedsAndStreams(t *testing.T) {
	shards, rt := startReplicatedFleet(t, 2, RouterOptions{Replicas: 2})
	owner := shards[0]

	synced := waitSynced(t, owner, "olap", 1)
	fo := shardByAddr(t, shards, synced[0])

	// The follower hosts a live copy and knows its role.
	info := fo.node.Replication().Info("olap")
	if info == nil || info.Role != api.RoleFollower || info.Owner != owner.ts.URL {
		t.Fatalf("follower replication info = %+v", info)
	}
	oe, err := owner.node.Epoch("olap")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := fo.node.Epoch("olap")
	if err != nil {
		t.Fatal(err)
	}
	if fe.Epoch != oe.Epoch {
		t.Fatalf("seeded follower epoch %d, owner %d (want lockstep)", fe.Epoch, oe.Epoch)
	}

	// An acked log ingest is on the follower BY THE TIME the ack
	// returns — replication is ack-coupled, not eventual.
	ack, err := rt.IngestLog("olap", []qlog.Entry{
		{SQL: "SELECT dest, count(*) FROM ontime WHERE carrier = 'AA' GROUP BY dest"},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	fe2, err := fo.node.Epoch("olap")
	if err != nil {
		t.Fatal(err)
	}
	if fe2.Epoch != ack.Epoch {
		t.Fatalf("follower epoch %d after acked ingest at epoch %d", fe2.Epoch, ack.Epoch)
	}

	// Acked row appends replicate the same way.
	rack, err := rt.AppendRows("olap", api.RowsRequest{Table: "ontime", Rows: [][]any{ontimeRow(1)}}, true)
	if err != nil {
		t.Fatal(err)
	}
	fq, err := fo.node.Query("olap", api.QueryRequest{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fq.Epoch != rack.Epoch {
		t.Fatalf("follower serves epoch %d after acked append at %d", fq.Epoch, rack.Epoch)
	}

	// Identical results from both replicas.
	oq, err := owner.node.Query("olap", api.QueryRequest{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	fq10, err := fo.node.Query("olap", api.QueryRequest{Limit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if oq.SQL != fq10.SQL || oq.RowCount != fq10.RowCount {
		t.Fatalf("replica diverged: owner %d rows (%s), follower %d rows (%s)",
			oq.RowCount, oq.SQL, fq10.RowCount, fq10.SQL)
	}

	// Writes sent to the follower bounce with not_owner naming the
	// owner — and the SDK follows that just like moved.
	_, err = fo.node.IngestLog("olap", []qlog.Entry{{SQL: "SELECT 1 FROM ontime"}}, true)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotOwner || ae.Addr != owner.ts.URL {
		t.Fatalf("follower write = %v, want not_owner -> %s", err, owner.ts.URL)
	}
	c, err := client.New(fo.ts.URL, client.WithToken(testToken))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.IngestLog(context.Background(), "olap",
		[]api.LogEntry{{SQL: "SELECT carrier, count(*) FROM ontime GROUP BY carrier"}}, true); err != nil {
		t.Fatalf("SDK did not follow not_owner: %v", err)
	}
}

// TestReplicationHealthSurface: the fleet health view lists each
// replicated interface once (the owner's row wins), carrying the
// replication block, and flags the fleet as replication-enabled.
func TestReplicationHealthSurface(t *testing.T) {
	shards, rt := startReplicatedFleet(t, 2, RouterOptions{Replicas: 2})
	waitSynced(t, shards[0], "olap", 1)
	rt.Refresh(context.Background()) // pick up the now-synced follower set

	h := rt.Health()
	if !h.Replication {
		t.Fatal("fleet health does not report replication")
	}
	var rows int
	for _, row := range h.Interfaces {
		if row.ID != "olap" {
			continue
		}
		rows++
		if row.Replication == nil || row.Replication.Role != api.RoleOwner {
			t.Fatalf("merged health row = %+v, want the owner's view", row.Replication)
		}
		if len(row.Replication.Followers) != 1 || !row.Replication.Followers[0].Synced {
			t.Fatalf("owner's follower list = %+v", row.Replication.Followers)
		}
	}
	if rows != 1 {
		t.Fatalf("olap appears %d times in fleet health, want once", rows)
	}

	rs := rt.Replication()
	if rs.Replicas != 2 || len(rs.Interfaces["olap"].Followers) != 1 {
		t.Fatalf("router replication status = %+v", rs)
	}
}

// TestPromoteFencesExOwner: after a forced failover the old owner's
// next write is rejected by the promoted replica's newer term, which
// fences the ex-owner — it demotes itself and answers moved/not_owner
// rather than ever accepting a write the new owner would not see. This
// is the partitioned-owner scenario: the ex-owner is alive and thinks
// it still owns the interface.
func TestPromoteFencesExOwner(t *testing.T) {
	shards, rt := startReplicatedFleet(t, 2, RouterOptions{Replicas: 2, Failover: true})
	owner := shards[0]
	synced := waitSynced(t, owner, "olap", 1)
	promoted := shardByAddr(t, shards, synced[0])

	newOwner, apiErr := rt.FailoverInterface("olap")
	if apiErr != nil {
		t.Fatal(apiErr)
	}
	if newOwner != promoted.ts.URL {
		t.Fatalf("failover promoted %q, want the synced follower %q", newOwner, promoted.ts.URL)
	}
	if got := rt.Placement()["olap"]; got != promoted.ts.URL {
		t.Fatalf("placement = %q after failover", got)
	}
	info := promoted.node.Replication().Info("olap")
	if info == nil || info.Role != api.RoleOwner || info.Term == 0 {
		t.Fatalf("promoted info = %+v, want owner at term > 0", info)
	}

	// The ex-owner still believes it owns the interface; its next write
	// reaches the promoted replica, loses the term comparison, and the
	// rejection fences it.
	_, err := owner.node.IngestLog("olap", []qlog.Entry{{SQL: "SELECT 1 FROM ontime"}}, true)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeNotOwner || ae.Addr != promoted.ts.URL {
		t.Fatalf("fenced write = %v, want not_owner -> %s", err, promoted.ts.URL)
	}
	// Fencing demotes the ex-owner in the background: it converges to
	// answering moved (tombstone) pointing at the new owner.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, qerr := owner.node.Query("olap", api.QueryRequest{Limit: 1})
		var qe *api.Error
		if errors.As(qerr, &qe) && qe.Code == api.CodeMoved && qe.Addr == promoted.ts.URL {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ex-owner never tombstoned: %v", qerr)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Writes through the router land on the new owner.
	if _, err := rt.IngestLog("olap", []qlog.Entry{
		{SQL: "SELECT origin, count(*) FROM ontime GROUP BY origin"},
	}, true); err != nil {
		t.Fatal(err)
	}
}

// TestReadFanoutRoundRobinAndFallback: fan-out alternates reads
// between the synced follower and the owner, and a follower failure
// falls back to the owner instead of surfacing an error.
func TestReadFanoutRoundRobinAndFallback(t *testing.T) {
	shards, rt := startReplicatedFleet(t, 2, RouterOptions{Replicas: 2, ReadFanout: true})
	owner := shards[0]
	synced := waitSynced(t, owner, "olap", 1)
	fo := shardByAddr(t, shards, synced[0])
	rt.Refresh(context.Background()) // pick up the synced follower set

	// The rotation alternates follower / owner (owner turn = nil).
	first := rt.readTarget("olap")
	second := rt.readTarget("olap")
	if first == nil || first.addr != fo.ts.URL {
		t.Fatalf("first read target = %+v, want follower %s", first, fo.ts.URL)
	}
	if second != nil {
		t.Fatalf("second read target = %q, want the owner's turn (nil)", second.addr)
	}
	for i := 0; i < 4; i++ {
		if _, err := rt.Query("olap", api.QueryRequest{Limit: 2}); err != nil {
			t.Fatalf("fanned query %d: %v", i, err)
		}
	}

	// Kill the follower: reads keep succeeding (owner fallback), and
	// the dead follower drops out of the rotation.
	fo.ts.Close()
	for i := 0; i < 4; i++ {
		if _, err := rt.Query("olap", api.QueryRequest{Limit: 2}); err != nil {
			t.Fatalf("query %d after follower death: %v", i, err)
		}
	}
	if got := rt.readTarget("olap"); got != nil {
		t.Fatalf("dead follower still in rotation: %q", got.addr)
	}
}

// TestProbeBackoffSkipsDeadShard: after a failed probe the next
// refresh inside the backoff window skips the shard instead of eating
// another connect timeout, and does not inflate the failure count.
func TestProbeBackoffSkipsDeadShard(t *testing.T) {
	a, b, rt := startFleet(t)
	b.ts.Close()

	rt.Refresh(context.Background())
	rt.mu.RLock()
	conn := rt.shards[b.ts.URL]
	down, failures, next := conn.down, conn.failures, conn.nextProbe
	rt.mu.RUnlock()
	if !down || failures != 1 || !next.After(time.Now()) {
		t.Fatalf("after first failed probe: down=%v failures=%d nextProbe=%v", down, failures, next)
	}

	rows := rt.Refresh(context.Background())
	var skipped bool
	for _, row := range rows {
		if row.Addr == b.ts.URL {
			if row.Status != "unreachable" || !strings.Contains(row.Error, "next probe") {
				t.Fatalf("backed-off shard row = %+v", row)
			}
			skipped = true
		}
	}
	if !skipped {
		t.Fatal("no row for the dead shard")
	}
	rt.mu.RLock()
	failures2 := rt.shards[b.ts.URL].failures
	rt.mu.RUnlock()
	if failures2 != 1 {
		t.Fatalf("skipped probe bumped failures to %d", failures2)
	}
	// The live shard is unaffected.
	if _, err := rt.Query("olap", api.QueryRequest{Limit: 1}); err != nil {
		t.Fatal(err)
	}
	_ = a
}

// TestTombstoneSurvivesRestart: a shard that relinquished an interface
// must keep answering moved after a restart — the durable tombstone
// file closes the restart hole where a tombstone-less shard answered
// not_found and routers dropped the placement.
func TestTombstoneSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	build := func() (*Node, *ingest.Ingester) {
		reg := api.NewRegistry()
		ing := ingest.New(reg, ingest.Options{})
		svc := api.NewService(reg)
		svc.SetIngestor(ing)
		p := ingest.NewPersister(dir, ing, ingest.PersistOptions{})
		node, err := NewNode(svc, ing, NodeOptions{Addr: "127.0.0.1:8199", Persister: p, Token: testToken})
		if err != nil {
			t.Fatal(err)
		}
		return node, ing
	}

	node, ing := build()
	olap, _ := fixtureLogs(t)
	if _, err := ing.Host("olap", "olap", olap, engine.OnTimeDB(200), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	frame, epoch, err := node.Export("olap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Relinquish("olap", "127.0.0.1:8222", epoch); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process over the same data dir remembers the
	// relocation.
	node2, _ := build()
	_, qerr := node2.Query("olap", api.QueryRequest{Limit: 1})
	var ae *api.Error
	if !errors.As(qerr, &ae) || ae.Code != api.CodeMoved {
		t.Fatalf("restarted shard answered %v, want moved", qerr)
	}
	if ae.Addr != "http://127.0.0.1:8222" {
		t.Fatalf("restored tombstone points at %q", ae.Addr)
	}

	// Accepting the interface back clears the tombstone durably too.
	if _, err := node2.Accept(frame); err != nil {
		t.Fatal(err)
	}
	node3, _ := build()
	if moved := node3.Moved(); len(moved) != 0 {
		t.Fatalf("tombstone survived the accept: %v", moved)
	}
}

// TestFailoverUnderLoadNoLostAcks is the race hammer: writers append
// rows and readers query through the router while the owning shard is
// killed mid-stream. Afterwards every ACKED write must be readable
// from the promoted follower (ack-coupled replication means an ack
// without the follower's copy cannot exist), no read may ever have
// failed, and the next refresh re-seeds a replacement follower on the
// remaining shard.
func TestFailoverUnderLoadNoLostAcks(t *testing.T) {
	shards, rt := startReplicatedFleet(t, 3, RouterOptions{
		Replicas: 2, ReadFanout: true, Failover: true,
	})
	owner := shards[0]
	waitSynced(t, owner, "olap", 1)
	rt.Refresh(context.Background()) // pick up the now-synced follower set

	before, err := rt.AppendRows("olap", api.RowsRequest{Table: "ontime", Rows: [][]any{ontimeRow(0)}}, true)
	if err != nil {
		t.Fatal(err)
	}
	startCount := before.RowCount

	const writers, perWriter = 4, 30
	var acked atomic.Int64
	var readErrs atomic.Int64
	var firstReadErr atomic.Value
	var wg, rwg sync.WaitGroup
	stopReads := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				row := ontimeRow(w*perWriter + i)
				// A failed write is retried until it lands or the
				// budget runs out; only acks count.
				for attempt := 0; attempt < 10; attempt++ {
					if _, err := rt.AppendRows("olap", api.RowsRequest{Table: "ontime", Rows: [][]any{row}}, true); err == nil {
						acked.Add(1)
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				// Pace the stream so the owner is killed mid-write,
				// not after the hammer already drained.
				time.Sleep(3 * time.Millisecond)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				if _, err := rt.Query("olap", api.QueryRequest{Limit: 1}); err != nil {
					readErrs.Add(1)
					firstReadErr.CompareAndSwap(nil, fmt.Sprintf("%v", err))
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	// Kill the owner mid-stream — the in-process equivalent of SIGKILL:
	// open client connections die, new ones are refused.
	time.Sleep(50 * time.Millisecond)
	owner.ts.CloseClientConnections()
	owner.ts.Close()

	// Let the writers finish, then stop the readers.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("hammer did not finish")
	}
	close(stopReads)
	rwg.Wait()

	if got := rt.Placement()["olap"]; got == owner.ts.URL || got == "" {
		t.Fatalf("placement after owner death = %q", got)
	}
	if n := readErrs.Load(); n != 0 {
		t.Fatalf("%d reads failed during failover (first: %v)", n, firstReadErr.Load())
	}

	// Every acked row is present on the promoted owner. A RowsAck
	// reports the table's total rows (a QueryResponse.RowCount is the
	// result-relation size, not the table's), so count with one more
	// flushed append.
	if _, err := rt.Query("olap", api.QueryRequest{Limit: 1}); err != nil {
		t.Fatalf("query against the promoted owner: %v", err)
	}
	finalAck, err := rt.AppendRows("olap", api.RowsRequest{Table: "ontime", Rows: [][]any{ontimeRow(9999)}}, true)
	if err != nil {
		t.Fatal(err)
	}
	wantAtLeast := startCount + int(acked.Load()) + 1
	if finalAck.RowCount < wantAtLeast {
		t.Fatalf("acked-then-lost writes: %d rows visible, %d acked (want >= %d)",
			finalAck.RowCount, acked.Load(), wantAtLeast)
	}

	// The refresh loop heals the replica set: a replacement follower is
	// seeded on the surviving shard.
	newOwner := shardByAddr(t, shards, rt.Placement()["olap"])
	rt.Refresh(context.Background())
	synced := waitSynced(t, newOwner, "olap", 1)
	if synced[0] == owner.ts.URL || synced[0] == newOwner.ts.URL {
		t.Fatalf("replacement follower at %q", synced[0])
	}
}
