package ingest

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wal"
)

// PersistOptions configure a Persister.
type PersistOptions struct {
	// Live are the mining options used when restoring (the saved log is
	// mined once at boot to rebuild the interface and the incremental
	// miner state). Zero value selects core.DefaultLiveOptions.
	Live core.LiveOptions
	// Funcs, when set, is called for every restored interface so the
	// caller can re-attach table-valued functions — code that a
	// snapshot file cannot carry (pi-serve re-binds the synthetic SDSS
	// UDF to the restored Galaxy table here).
	Funcs func(id string, st *store.Store)
	// WAL, when set, switches the persister into write-ahead-log mode
	// (walpersist.go): every acked publish is journaled before its ack,
	// periodic saves write differential deltas instead of full
	// rewrites, and restore replays the logged tail on top of the
	// newest save — zero acked-then-lost across a SIGKILL.
	WAL *wal.Manager
	// CompactEvery bounds the delta chain: after this many differential
	// saves the next save rewrites the full base snapshot and drops the
	// chain. Default 64.
	CompactEvery int
}

// Persister is the durable snapshot/restore coordinator over an
// ingester's feeds: SaveAll serializes every live-hosted interface's
// (log, dataset, epoch) into the data dir through internal/store's
// checksummed atomic writer, and Restore re-hosts whatever the dir
// holds — the saved log re-mines to exactly the interface that was
// serving, the dataset rows load instead of being regenerated, and
// the interface resumes at its saved epoch, so a SIGKILLed server
// comes back without the original log or workload generator.
// Implements api.Persister.
type Persister struct {
	dir  string
	ing  *Ingester
	opts PersistOptions

	// saveMu serializes every durable-state mutation: SaveAll (the
	// periodic ticker, the HTTP snapshot endpoint and the shutdown
	// snapshot can all fire concurrently), the WAL-mode manifest map,
	// Adopt and replication-state persists.
	saveMu sync.Mutex

	// manifests mirrors the on-disk manifest per interface in WAL mode
	// (walpersist.go). Guarded by saveMu.
	manifests map[string]*store.Manifest

	// replState, when set, reports an interface's live replication
	// control state at save time so it persists in the manifest.
	// Guarded by saveMu.
	replState func(id string) *store.ReplState
}

// NewPersister returns a persister writing snapshots under dir. With
// PersistOptions.WAL set, the persister also installs itself as the
// ingester's durability journal: every acked publish is logged before
// the ack returns.
func NewPersister(dir string, ing *Ingester, opts PersistOptions) *Persister {
	if opts.Live.Generate.Library == nil {
		opts.Live = core.DefaultLiveOptions()
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 64
	}
	p := &Persister{dir: dir, ing: ing, opts: opts, manifests: map[string]*store.Manifest{}}
	if opts.WAL != nil {
		ing.SetJournal(p)
	}
	return p
}

// Dir returns the data directory.
func (p *Persister) Dir() string { return p.dir }

// SaveAll persists every live feed. Buffered log entries and rows are
// flushed first, so the snapshot reflects everything acknowledged to
// clients. Implements api.Persister.
func (p *Persister) SaveAll() (*api.SnapshotResult, error) {
	p.saveMu.Lock()
	defer p.saveMu.Unlock()
	start := time.Now()
	p.ing.FlushAll()

	p.ing.mu.RLock()
	ids := make([]string, 0, len(p.ing.feeds))
	for id := range p.ing.feeds {
		ids = append(ids, id)
	}
	p.ing.mu.RUnlock()
	sort.Strings(ids)

	res := &api.SnapshotResult{Dir: p.dir, Interfaces: []api.SnapshotInterface{}}
	for _, id := range ids {
		row, err := p.saveOne(id)
		if err != nil {
			return nil, err
		}
		res.Interfaces = append(res.Interfaces, row)
	}
	res.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return res, nil
}

// saveOne captures one feed's state under its lock (Capture shares
// only immutable data — a log copy and published table versions), then
// writes the snapshot file with the lock released, so the disk write
// never blocks ingestion or serving. In WAL mode the write is a
// differential delta keyed off the previous save (walpersist.go).
func (p *Persister) saveOne(id string) (api.SnapshotInterface, error) {
	snap, err := p.ing.Capture(id)
	if err != nil {
		return api.SnapshotInterface{}, err
	}
	if p.opts.WAL != nil {
		return p.saveWAL(snap)
	}
	bytes, err := store.Save(p.dir, snap)
	if err != nil {
		return api.SnapshotInterface{}, fmt.Errorf("ingest: save %q: %w", id, err)
	}
	return snapshotRow(snap, bytes), nil
}

// RemoveSnapshot deletes the interface's durable state — snapshot
// file, and in WAL mode its manifest, delta chain and log directory —
// so an unhosted interface does not resurrect on the next boot; files
// that never existed are fine. Implements api.SnapshotRemover.
func (p *Persister) RemoveSnapshot(id string) error {
	p.saveMu.Lock()
	defer p.saveMu.Unlock()
	if err := os.Remove(store.SnapFile(p.dir, id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("ingest: remove snapshot %q: %w", id, err)
	}
	if err := store.RemoveManifest(p.dir, id); err != nil {
		return fmt.Errorf("ingest: remove snapshot %q: %w", id, err)
	}
	delete(p.manifests, id)
	if p.opts.WAL != nil {
		if err := p.opts.WAL.Remove(id); err != nil {
			return fmt.Errorf("ingest: remove snapshot %q: %w", id, err)
		}
	}
	return nil
}

// Restore re-hosts every snapshot in the data dir onto the ingester's
// registry. Returns what came back; a missing or empty dir restores
// nothing (first boot). A snapshot that fails its checksum or decode
// is an error — serving silently without an interface the operator
// expects is worse than failing loudly. In WAL mode each interface's
// restore merges its delta chain and replays the logged tail
// (walpersist.go). Implements api.Persister.
func (p *Persister) Restore() (*api.RestoreResult, error) {
	if p.opts.WAL != nil {
		return p.restoreWAL()
	}
	files, err := store.List(p.dir)
	if err != nil {
		return nil, err
	}
	res := &api.RestoreResult{Dir: p.dir, Interfaces: []api.SnapshotInterface{}}
	for _, path := range files {
		snap, err := store.Load(path)
		if err != nil {
			return nil, err
		}
		if err := p.restoreOne(snap); err != nil {
			return nil, err
		}
		res.Interfaces = append(res.Interfaces, snapshotRow(snap, 0))
	}
	return res, nil
}

// restoreOne rebuilds one interface: store from the saved tables,
// miner from the saved log, hosted at the saved epoch.
func (p *Persister) restoreOne(snap *store.Snapshot) error {
	if _, err := p.ing.HostSnapshot(snap, p.opts.Live, p.opts.Funcs, snap.Epoch); err != nil {
		return fmt.Errorf("ingest: restore %q: %w", snap.ID, err)
	}
	return nil
}

// snapshotRow summarizes a snapshot for results.
func snapshotRow(snap *store.Snapshot, bytes int64) api.SnapshotInterface {
	rows := 0
	for _, t := range snap.Tables {
		rows += len(t.Rows)
	}
	return api.SnapshotInterface{
		ID:         snap.ID,
		Epoch:      snap.Epoch,
		DataEpoch:  snap.DataEpoch,
		LogEntries: len(snap.Log),
		Rows:       rows,
		Bytes:      bytes,
	}
}
