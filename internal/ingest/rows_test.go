package ingest

import (
	"sync"
	"testing"

	"repro/internal/api"
	"repro/internal/engine"
)

func numRow(vals ...float64) []engine.Value {
	out := make([]engine.Value, len(vals))
	for i, v := range vals {
		out[i] = engine.Num(v)
	}
	return out
}

// TestSubmitRowsBuffersAndFlushes: rows buffer below the batch size,
// publish when it fills, and the hot swap bumps the interface epoch so
// pre-append caches are unreachable.
func TestSubmitRowsBuffersAndFlushes(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100, RowBatchSize: 3})
	svc := api.NewService(ing.reg)
	svc.SetIngestor(ing)

	before, err := svc.Query("live", api.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	// Prime the result cache, then prove the swap invalidates it.
	if resp, err := svc.Query("live", api.QueryRequest{}); err != nil || resp.Cache != "hit" {
		t.Fatalf("expected cache hit before append, got %+v (%v)", resp, err)
	}

	ack, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(990, 1)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Flushed || ack.Buffered != 1 || ack.Epoch != 1 || ack.Accepted != 1 {
		t.Fatalf("buffered ack = %+v", ack)
	}
	// Filling the row batch publishes inline: store version + interface
	// epoch both advance.
	ack, err = ing.SubmitRows("live", "t", [][]engine.Value{numRow(991, 1), numRow(992, 1)}, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed || ack.Buffered != 0 || ack.Epoch != 2 || ack.DataEpoch != 2 {
		t.Fatalf("flushed ack = %+v", ack)
	}
	if ack.RowCount != 53 {
		t.Fatalf("row count = %d, want 53", ack.RowCount)
	}
	if h.Epoch() != 2 {
		t.Fatalf("interface epoch = %d, want 2", h.Epoch())
	}

	after, err := svc.Query("live", api.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if after.Cache != "miss" {
		t.Fatal("post-append query answered from a pre-append cache")
	}
	if after.Epoch != 2 {
		t.Fatalf("post-append query epoch = %d, want 2", after.Epoch)
	}
	// The initial query is "SELECT a FROM t WHERE x = 1" shaped; the
	// three appended rows all have x=1, so the result must have grown.
	if after.RowCount != before.RowCount+3 {
		t.Fatalf("row count %d -> %d, want +3", before.RowCount, after.RowCount)
	}
}

func TestSubmitRowsValidatesBeforeBuffering(t *testing.T) {
	_, ing, h := newIngester(t, Options{RowBatchSize: 2})
	if _, err := ing.SubmitRows("live", "missing", [][]engine.Value{numRow(1)}, true); err == nil {
		t.Fatal("rows for unknown table accepted")
	}
	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(1, 2, 3)}, true); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if h.Epoch() != 1 {
		t.Fatalf("rejected rows bumped epoch to %d", h.Epoch())
	}
	if _, err := ing.SubmitRows("nope", "t", [][]engine.Value{numRow(1, 2)}, true); err == nil {
		t.Fatal("rows for unknown interface accepted")
	}
}

// TestFlushAlsoPublishesRows: the shared flush path (background loop,
// pre-snapshot) drains both log entries and buffered rows.
func TestFlushAlsoPublishesRows(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100, RowBatchSize: 100})
	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(1000, 60)}, false); err != nil {
		t.Fatal(err)
	}
	st, _ := ing.IngestStatus("live")
	if st.RowsBuffered != 1 {
		t.Fatalf("rows buffered = %d, want 1", st.RowsBuffered)
	}
	if _, err := ing.Flush("live"); err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 2 {
		t.Fatalf("flush did not swap: epoch %d", h.Epoch())
	}
	st, _ = ing.IngestStatus("live")
	if st.RowsBuffered != 0 || st.RowsAppended != 1 {
		t.Fatalf("status after flush = %+v", st)
	}
	sto, err := ing.Store("live")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sto.RowCount("t"); n != 51 {
		t.Fatalf("table rows = %d, want 51", n)
	}
}

// TestConcurrentQueriesDuringRowAppends is the serving-layer face of
// the storage contract: queries race row appends (and the hot swaps
// they trigger) without torn results — run under -race.
func TestConcurrentQueriesDuringRowAppends(t *testing.T) {
	_, ing, _ := newIngester(t, Options{RowBatchSize: 1})
	svc := api.NewService(ing.reg)
	svc.SetIngestor(ing)

	const appends = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := svc.Query("live", api.QueryRequest{})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(resp.Cols) == 0 {
					t.Error("query lost its columns mid-swap")
					return
				}
			}
		}()
	}
	for i := 0; i < appends; i++ {
		if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(float64(2000+i), 1)}, false); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	sto, err := ing.Store("live")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := sto.RowCount("t"); n != 50+appends {
		t.Fatalf("final rows = %d, want %d", n, 50+appends)
	}
}
