package ingest

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/wal"
)

// bigDB builds a dataset large enough that a full snapshot rewrite
// visibly dwarfs a 1% differential.
func bigDB(t testing.TB, rows int) *engine.DB {
	t.Helper()
	tbl := engine.NewTable("t", "a", "x")
	for i := 1; i <= rows; i++ {
		if err := tbl.AddRow(engine.Num(float64(i*10)), engine.Num(float64(i%97))); err != nil {
			t.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.AddTable(tbl)
	return db
}

func hostPerf(t testing.TB, walOpts *wal.Options) (*Ingester, *Persister, func()) {
	t.Helper()
	dir := t.TempDir()
	reg := api.NewRegistry()
	ing := New(reg, Options{BatchSize: 2, RowBatchSize: 1})
	if _, err := ing.Host("live", "perf", fixtureLog(4), bigDB(t, 20000), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	popts := PersistOptions{}
	cleanup := func() {}
	if walOpts != nil {
		m := wal.NewManager(dir, *walOpts)
		popts.WAL = m
		cleanup = func() { m.Close() }
	}
	p := NewPersister(dir, ing, popts)
	return ing, p, cleanup
}

// TestDifferentialSnapshotCheaper pins the tentpole's save economics:
// at a 1% delta, the differential save must write at least 5x fewer
// bytes than the full base rewrite it replaces. (Bytes, not wall
// time: bytes are deterministic under CI noise, and the write is the
// cost the delta exists to avoid.)
func TestDifferentialSnapshotCheaper(t *testing.T) {
	ing, p, cleanup := hostPerf(t, &wal.Options{})
	defer cleanup()

	fullStart := time.Now()
	res, err := p.SaveAll()
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(fullStart)
	fullBytes := res.Interfaces[0].Bytes
	if fullBytes == 0 {
		t.Fatal("full save reported zero bytes")
	}

	// 1% of the dataset arrives, acked and journaled.
	delta := make([][]engine.Value, 0, 200)
	for i := 0; i < 200; i++ {
		delta = append(delta, numRow(float64(1000000+i), float64(i%97)))
	}
	if _, err := ing.SubmitRows("live", "t", delta, true); err != nil {
		t.Fatal(err)
	}

	diffStart := time.Now()
	res, err = p.SaveAll()
	if err != nil {
		t.Fatal(err)
	}
	diffDur := time.Since(diffStart)
	diffBytes := res.Interfaces[0].Bytes
	if diffBytes == 0 {
		t.Fatal("differential save reported zero bytes (no delta was cut)")
	}
	t.Logf("full save: %d bytes in %v; differential (1%% delta): %d bytes in %v (%.1fx fewer bytes)",
		fullBytes, fullDur, diffBytes, diffDur, float64(fullBytes)/float64(diffBytes))
	if diffBytes*5 > fullBytes {
		t.Fatalf("differential save wrote %d bytes, full %d — less than the pinned 5x saving at a 1%% delta",
			diffBytes, fullBytes)
	}
}

// TestWALAckOverheadBounded pins the ack path clients see: with group
// commit, an acked row append over HTTP must cost at most 1.5x the
// WAL-off round trip — the journal adds one buffered write under the
// feed lock, not an fsync. Wall-time comparisons wobble under CI
// load, so the pin takes the best of several attempts.
func TestWALAckOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin; skipped in -short")
	}
	const rounds = 150
	timeAcks := func(ing *Ingester, seed int) time.Duration {
		svc := api.NewService(ing.reg)
		svc.SetIngestor(ing)
		ts := httptest.NewServer(server.New(svc).Handler())
		defer ts.Close()
		url := ts.URL + "/v1/interfaces/live/rows?flush=1"
		// Warm the connection and the handler path off the clock.
		postPerfRow(t, url, seed)
		start := time.Now()
		for i := 1; i <= rounds; i++ {
			postPerfRow(t, url, seed+i)
		}
		return time.Since(start)
	}

	var best float64 = -1
	for attempt := 0; attempt < 5; attempt++ {
		ingOff, _, cleanOff := hostPerf(t, nil)
		off := timeAcks(ingOff, 2000000)
		cleanOff()

		ingWAL, pWAL, cleanWAL := hostPerf(t, &wal.Options{SyncInterval: 2 * time.Millisecond})
		if _, err := pWAL.SaveAll(); err != nil { // anchor the log with a base
			t.Fatal(err)
		}
		on := timeAcks(ingWAL, 2100000)
		cleanWAL()

		ratio := float64(on) / float64(off)
		if best < 0 || ratio < best {
			best = ratio
		}
		t.Logf("attempt %d: no-wal %v, wal(group) %v per %d acks, ratio %.2fx", attempt, off, on, rounds, ratio)
		if ratio <= 1.5 {
			return
		}
	}
	t.Fatalf("acked append with group-commit WAL is %.2fx the WAL-off cost (pinned bound 1.5x)", best)
}

// postPerfRow drives one acked append through the rows endpoint.
func postPerfRow(t *testing.T, url string, n int) {
	t.Helper()
	body := fmt.Sprintf(`{"table":"t","rows":[[%d,3]]}`, n)
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append returned %d", resp.StatusCode)
	}
}

// Benchmarks feeding scripts/bench_json.sh -> BENCH_wal.json.

func benchAcks(b *testing.B, walOpts *wal.Options) {
	ing, p, cleanup := hostPerf(b, walOpts)
	defer cleanup()
	if walOpts != nil {
		if _, err := p.SaveAll(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(float64(3000000+i), 5)}, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAckedAppendNoWAL(b *testing.B) { benchAcks(b, nil) }
func BenchmarkAckedAppendWALStrict(b *testing.B) {
	benchAcks(b, &wal.Options{})
}
func BenchmarkAckedAppendWALGroup(b *testing.B) {
	benchAcks(b, &wal.Options{SyncInterval: 2 * time.Millisecond})
}

func BenchmarkSnapshotFull(b *testing.B) {
	ing, _, cleanup := hostPerf(b, nil)
	defer cleanup()
	snap, err := ing.Capture("live")
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Save(dir, snap); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotDifferential(b *testing.B) {
	ing, p, cleanup := hostPerf(b, &wal.Options{})
	defer cleanup()
	if _, err := p.SaveAll(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rows := make([][]engine.Value, 0, 200)
		for j := 0; j < 200; j++ {
			rows = append(rows, numRow(float64(4000000+i*200+j), float64(j%97)))
		}
		if _, err := ing.SubmitRows("live", "t", rows, true); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := p.SaveAll(); err != nil {
			b.Fatal(err)
		}
	}
}
