package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/server"
)

// fixtureDB is a tiny dataset matching the "SELECT a FROM t WHERE x=N"
// template the tests mine.
func fixtureDB(t *testing.T) *engine.DB {
	t.Helper()
	tbl := engine.NewTable("t", "a", "x")
	for i := 1; i <= 50; i++ {
		if err := tbl.AddRow(engine.Num(float64(i*10)), engine.Num(float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.AddTable(tbl)
	return db
}

func fixtureLog(n int) *qlog.Log {
	l := &qlog.Log{}
	for i := 1; i <= n; i++ {
		l.Append(fmt.Sprintf("SELECT a FROM t WHERE x = %d", i), "")
	}
	return l
}

func entry(sql string) qlog.Entry { return qlog.Entry{SQL: sql} }

func newIngester(t *testing.T, opts Options) (*api.Registry, *Ingester, *api.Hosted) {
	t.Helper()
	reg := api.NewRegistry()
	ing := New(reg, opts)
	h, err := ing.Host("live", "live test", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	return reg, ing, h
}

func TestSubmitBuffersUntilBatch(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 3})
	if h.Epoch() != 1 {
		t.Fatalf("initial epoch = %d", h.Epoch())
	}
	ack, err := ing.Submit("live", []qlog.Entry{entry("SELECT a FROM t WHERE x = 30")})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Flushed || ack.Buffered != 1 || ack.Epoch != 1 {
		t.Fatalf("ack = %+v, want buffered unflushed at epoch 1", ack)
	}
	// Filling the batch flushes inline: re-mine + hot swap.
	ack, err = ing.Submit("live", []qlog.Entry{
		entry("SELECT a FROM t WHERE x = 31"),
		entry("SELECT a FROM t WHERE x = 32"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Flushed || ack.Buffered != 0 || ack.Epoch != 2 {
		t.Fatalf("ack = %+v, want flushed at epoch 2", ack)
	}
	// The served interface widened: 32 is now inside the mined domain.
	found := false
	for _, w := range h.Iface().Widgets {
		if w.Domain.IsNumericRange() {
			if _, hi := w.Domain.Range(); hi >= 32 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no widget domain widened to the ingested values")
	}
	if n, err := ing.MinedLen("live"); err != nil || n != 7 {
		t.Fatalf("mined len = %d (%v), want 7", n, err)
	}
}

func TestFlushOnDemandAndStatus(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100})
	if _, err := ing.Submit("live", []qlog.Entry{
		entry("SELECT a FROM t WHERE x = 40"),
		entry("not sql at all ((("),
	}); err != nil {
		t.Fatal(err)
	}
	epoch, err := ing.Flush("live")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 || h.Epoch() != 2 {
		t.Fatalf("epoch = %d/%d, want 2", epoch, h.Epoch())
	}
	st, ok := ing.IngestStatus("live")
	if !ok {
		t.Fatal("no status for live feed")
	}
	if st.Accepted != 2 || st.Dropped != 1 || st.Flushes != 1 || st.Buffered != 0 {
		t.Fatalf("status = %+v", st)
	}
	if st.LastError == "" {
		t.Fatal("dropped entry left no error trace")
	}
	// Flushing an empty buffer is a no-op: no epoch bump, caches kept.
	if epoch, err = ing.Flush("live"); err != nil || epoch != 2 {
		t.Fatalf("idle flush: epoch %d, %v", epoch, err)
	}
}

func TestAllDroppedKeepsEpoch(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 1})
	ack, err := ing.Submit("live", []qlog.Entry{entry("garbage ~~~")})
	if err != nil {
		t.Fatal(err)
	}
	if ack.Epoch != 1 || h.Epoch() != 1 || ack.Dropped != 1 {
		t.Fatalf("ack = %+v epoch=%d, want unchanged epoch 1", ack, h.Epoch())
	}
}

func TestSubmitUnknownFeed(t *testing.T) {
	reg := api.NewRegistry()
	ing := New(reg, Options{})
	if _, err := ing.Submit("nope", []qlog.Entry{entry("SELECT a FROM t")}); err == nil {
		t.Fatal("unknown feed accepted")
	}
}

// TestBufferOverflowFlushesThrough: a submission larger than the
// buffer must not lose entries — it flushes mid-way and accepts
// everything.
func TestBufferOverflowFlushesThrough(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100, MaxBuffer: 2})
	var entries []qlog.Entry
	for i := 0; i < 5; i++ {
		entries = append(entries, entry(fmt.Sprintf("SELECT a FROM t WHERE x = %d", 20+i)))
	}
	ack, err := ing.Submit("live", entries)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 5 || !ack.Flushed {
		t.Fatalf("ack = %+v, want all 5 accepted via mid-way flushes", ack)
	}
	// 4 seed entries + everything flushed so far (the last partial
	// buffer may still be pending).
	mined, _ := ing.MinedLen("live")
	if mined+ack.Buffered != 9 {
		t.Fatalf("mined %d + buffered %d, want 9 total", mined, ack.Buffered)
	}
	if h.Epoch() < 2 {
		t.Fatalf("epoch = %d, want bumped by overflow flushes", h.Epoch())
	}
}

// TestNoStaleCacheAcrossSwap is the acceptance "epoch test": a result
// cached before ingestion must never be replayed after the hot swap —
// the post-swap query reports the new epoch and a cache miss.
func TestNoStaleCacheAcrossSwap(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 1})
	ts := httptest.NewServer(serveWith(nil, ing, h))
	defer ts.Close()

	first := postQuery(t, ts.URL, `{"widgets":[]}`)
	if first.Epoch != 1 || first.Cache != "miss" {
		t.Fatalf("first = %+v", first)
	}
	if again := postQuery(t, ts.URL, `{"widgets":[]}`); again.Cache != "hit" || again.Plan != "hit" {
		t.Fatalf("repeat before swap = %+v, want result+plan hits", again)
	}

	if _, err := ing.Submit("live", []qlog.Entry{entry("SELECT a FROM t WHERE x = 44")}); err != nil {
		t.Fatal(err)
	}
	if h.Epoch() != 2 {
		t.Fatalf("epoch after ingest = %d", h.Epoch())
	}
	after := postQuery(t, ts.URL, `{"widgets":[]}`)
	if after.Epoch != 2 {
		t.Fatalf("post-swap epoch = %d, want 2", after.Epoch)
	}
	if after.Cache != "miss" || after.Plan != "miss" {
		t.Fatalf("post-swap served pre-swap cached state: %+v", after)
	}
}

// serveWith builds the HTTP handler the way cmd/pi-serve does.
func serveWith(t *testing.T, ing *Ingester, h *api.Hosted) http.Handler {
	svc := api.NewService(ing.reg)
	svc.SetIngestor(ing)
	return server.New(svc).Handler()
}

func postQuery(t *testing.T, base, body string) *api.QueryResponse {
	t.Helper()
	resp, err := http.Post(base+"/interfaces/live/query", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var out api.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return &out
}

// TestIngestEndpointTextAndJSON drives POST /interfaces/{id}/log in
// both body formats, including a multi-line statement, and checks
// /healthz reports the feed.
func TestIngestEndpointTextAndJSON(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100})
	ts := httptest.NewServer(serveWith(t, ing, h))
	defer ts.Close()

	// text/plain, multi-line ;-terminated with a comment.
	text := "SELECT a\n  FROM t -- live\n  WHERE x = 45;\nSELECT a FROM t WHERE x = 46\n"
	resp, err := http.Post(ts.URL+"/interfaces/live/log?flush=1", "text/plain", bytes.NewReader([]byte(text)))
	if err != nil {
		t.Fatal(err)
	}
	var ack api.IngestAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Accepted != 2 || !ack.Flushed || ack.Epoch != 2 {
		t.Fatalf("text ingest: status=%d ack=%+v", resp.StatusCode, ack)
	}

	// JSON body.
	body := `{"entries":[{"sql":"SELECT a FROM t WHERE x = 47","client":"c9"}]}`
	resp, err = http.Post(ts.URL+"/interfaces/live/log?flush=1", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Accepted != 1 || ack.Epoch != 3 {
		t.Fatalf("json ingest: status=%d ack=%+v", resp.StatusCode, ack)
	}

	// /healthz carries the ingest counters and the epoch.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health api.Health
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || !health.Ingestion || len(health.Interfaces) != 1 {
		t.Fatalf("health = %+v", health)
	}
	row := health.Interfaces[0]
	if row.ID != "live" || row.Epoch != 3 || row.Ingest == nil || row.Ingest.Accepted != 3 {
		t.Fatalf("health row = %+v (ingest %+v)", row, row.Ingest)
	}
}

func TestIngestEndpointWithoutIngestorIs501(t *testing.T) {
	reg := api.NewRegistry()
	ing := New(reg, Options{})
	if _, err := ing.Host("live", "t", fixtureLog(3), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(api.NewService(reg)).Handler()) // no SetIngestor
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/interfaces/live/log", "text/plain",
		bytes.NewReader([]byte("SELECT a FROM t WHERE x = 1\n")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status = %d, want 501", resp.StatusCode)
	}
}

// TestHotSwapUnderConcurrentQueries is the -race hammer: goroutines
// POST widget states nonstop while the main goroutine ingests (each
// flush hot-swaps a new epoch). Every response must carry an epoch at
// least as new as the epoch observed before the request was sent — a
// post-swap query served from a pre-swap cache would violate that.
func TestHotSwapUnderConcurrentQueries(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 1})
	ts := httptest.NewServer(serveWith(t, ing, h))
	defer ts.Close()

	const goroutines = 6
	const perG = 40
	stop := make(chan struct{})
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				before := h.Epoch()
				// Alternate cached (initial) and fresh widget states.
				body := `{"widgets":[]}`
				resp, err := http.Post(ts.URL+"/interfaces/live/query", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					errs <- err
					return
				}
				var out api.QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				if out.Epoch < before {
					errs <- fmt.Errorf("stale epoch: served %d, current was already %d", out.Epoch, before)
					return
				}
			}
		}(g)
	}

	// Meanwhile: ingest entries one by one; BatchSize 1 swaps on every
	// submit.
	for i := 0; i < 25; i++ {
		if _, err := ing.Submit("live", []qlog.Entry{
			entry(fmt.Sprintf("SELECT a FROM t WHERE x = %d", 100+i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if h.Epoch() != 26 {
		t.Fatalf("final epoch = %d, want 26 (1 + 25 swaps)", h.Epoch())
	}
}

// TestTailFollowsFile appends to a log file (multi-line statements
// included) and waits for the tailer to mine them in.
func TestTailFollowsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queries.log")
	if err := os.WriteFile(path, []byte("SELECT a FROM t WHERE x = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ing, h := newIngester(t, Options{BatchSize: 1, FlushInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- ing.Tail(ctx, "live", path, 5*time.Millisecond) }()

	// Give the tailer a beat to record the initial offset, then append.
	time.Sleep(20 * time.Millisecond)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("SELECT a\n  FROM t\n  WHERE x = 48;\nSELECT a FROM t WHERE x = 49\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if n, _ := ing.MinedLen("live"); n >= 6 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n, _ := ing.MinedLen("live"); n < 6 {
		t.Fatalf("tailer mined %d entries, want 6 (4 seed + 2 appended)", n)
	}

	// A final line without a trailing newline must still land once the
	// file goes quiet.
	f, err = os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("SELECT a FROM t WHERE x = 50"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	for time.Now().Before(deadline) {
		if n, _ := ing.MinedLen("live"); n >= 7 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n, _ := ing.MinedLen("live"); n < 7 {
		t.Fatalf("tailer mined %d entries, want 7 (newline-less final line lost)", n)
	}
	if h.Epoch() < 2 {
		t.Fatalf("epoch = %d, want >= 2 after tailed ingestion", h.Epoch())
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("tail returned %v", err)
	}
}
