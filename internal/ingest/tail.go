package ingest

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/qlog"
)

// Tail follows a growing query-log file (tail -f style) and submits
// every statement appended after the call to the interface's feed.
// Statements are assembled with the qlog statement scanner, so
// multi-line ';'-terminated SQL and "--" comments are handled. A
// statement still open at the end of a poll (mid-write) is held, not
// submitted half-finished; only after two consecutive polls with no
// new bytes is the held state force-completed — a writer that pauses
// longer than 2x the interval in the middle of an unterminated
// multi-line statement can still get it split, so slow writers should
// ';'-terminate (the terminator completes a statement regardless of
// timing). Truncation or rotation (file shrinks) restarts from the
// beginning of the new file. Tail blocks until ctx is done; run it in
// a goroutine.
//
// The poll interval doubles as the liveness budget: entries appear in
// the served interface after at most interval (poll) + FlushInterval
// (background flush) once a batch hasn't filled earlier.
func (ing *Ingester) Tail(ctx context.Context, id, path string, interval time.Duration) error {
	if _, err := ing.feed(id); err != nil {
		return err
	}
	if interval <= 0 {
		interval = time.Second
	}
	offset, err := initialOffset(path)
	if err != nil {
		return fmt.Errorf("ingest: tail %q: %w", path, err)
	}
	sc := qlog.NewStatementScanner()
	var partial []byte
	quiet := 0
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			newOffset, newPartial, err := ing.poll(id, path, offset, partial, sc)
			if err != nil {
				// Transient (file rotated away, fs hiccup): keep tailing.
				continue
			}
			if newOffset != offset {
				quiet = 0
			} else if quiet++; quiet >= 2 {
				// Quiescent for two polls: what we hold is complete —
				// a final line without a trailing newline (the
				// partial) and a statement the scanner still keeps
				// open (legacy one-per-line logs never ';'-terminate
				// their last line). Feed and flush both.
				if len(newPartial) > 0 {
					sc.Line(string(newPartial))
					newPartial = nil
				}
				sc.Flush()
				if entries := sc.Drain(); len(entries) > 0 {
					_, _ = ing.Submit(id, entries)
				}
			}
			offset, partial = newOffset, newPartial
		}
	}
}

// initialOffset returns the file's current size — tailing starts at
// the end, like tail -f; the file's existing contents are the batch
// log the interface was mined from. A missing file starts at 0 and is
// picked up when it appears.
func initialOffset(path string) (int64, error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// poll reads bytes appended since offset, feeds complete lines through
// the statement scanner and submits finished statements.
func (ing *Ingester) poll(id, path string, offset int64, partial []byte, sc *qlog.StatementScanner) (int64, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return offset, partial, nil // not yet created (or rotated out)
		}
		return offset, partial, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return offset, partial, err
	}
	if st.Size() < offset {
		// Truncated or rotated: drop partial state, restart at 0.
		offset, partial = 0, nil
		sc.Flush()
		sc.Drain()
	}
	if st.Size() == offset {
		return offset, partial, nil
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return offset, partial, err
	}
	chunk, err := io.ReadAll(f)
	if err != nil {
		return offset, partial, err
	}
	offset += int64(len(chunk))

	buf := append(partial, chunk...)
	var entries []qlog.Entry
	start := 0
	for i := 0; i < len(buf); i++ {
		if buf[i] != '\n' {
			continue
		}
		sc.Line(string(buf[start:i]))
		entries = append(entries, sc.Drain()...)
		start = i + 1
	}
	partial = append([]byte(nil), buf[start:]...)
	if len(entries) > 0 {
		if _, err := ing.Submit(id, entries); err != nil {
			return offset, partial, err
		}
	}
	return offset, partial, nil
}
