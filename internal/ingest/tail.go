package ingest

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/qlog"
)

// Tail follows growing query-log files (tail -f style) and submits
// every statement appended after the call to the interface's feed.
// pathOrGlob is either one file path or a glob pattern
// (filepath.Match syntax, e.g. "logs/*.log"): with a pattern, every
// matching file is tailed, and files created after the call are picked
// up on the next poll — their whole content is new by definition, so
// they are read from the beginning, while files that already existed
// start at their current end, exactly like the single-file case.
//
// Statements are assembled per file with the qlog statement scanner,
// so multi-line ';'-terminated SQL and "--" comments are handled. A
// statement still open at the end of a poll (mid-write) is held, not
// submitted half-finished; only after two consecutive polls with no
// new bytes in that file is the held state force-completed — a writer
// that pauses longer than 2x the interval in the middle of an
// unterminated multi-line statement can still get it split, so slow
// writers should ';'-terminate (the terminator completes a statement
// regardless of timing). Truncation or rotation (a file shrinks)
// restarts that file from the beginning. A file that disappears from
// the glob drops its held state. Tail blocks until ctx is done; run it
// in a goroutine.
//
// The poll interval doubles as the liveness budget: entries appear in
// the served interface after at most interval (poll) + FlushInterval
// (background flush) once a batch hasn't filled earlier.
func (ing *Ingester) Tail(ctx context.Context, id, pathOrGlob string, interval time.Duration) error {
	if _, err := ing.feed(id); err != nil {
		return err
	}
	if interval <= 0 {
		interval = time.Second
	}
	tl := &tailer{ing: ing, id: id, pattern: pathOrGlob, files: map[string]*fileTail{}}
	if err := tl.init(); err != nil {
		return fmt.Errorf("ingest: tail %q: %w", pathOrGlob, err)
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			tl.pollAll()
		}
	}
}

// tailer tracks every file a Tail call follows.
type tailer struct {
	ing     *Ingester
	id      string
	pattern string
	isGlob  bool
	files   map[string]*fileTail
}

// fileTail is the per-file tail state: byte offset, the trailing bytes
// of an incomplete final line, the statement scanner holding a
// possibly multi-line statement, and the quiescence counter that
// force-completes held state.
type fileTail struct {
	offset  int64
	partial []byte
	sc      *qlog.StatementScanner
	quiet   int
}

// hasGlobMeta reports whether the pattern contains filepath.Match
// metacharacters.
func hasGlobMeta(p string) bool { return strings.ContainsAny(p, "*?[") }

// init seeds the file set: files that exist now start at their end
// (their contents are the batch log the interface was mined from); a
// single missing path starts at 0 and is read in full when it appears.
func (tl *tailer) init() error {
	tl.isGlob = hasGlobMeta(tl.pattern)
	if !tl.isGlob {
		off, err := initialOffset(tl.pattern)
		if err != nil {
			return err
		}
		tl.files[tl.pattern] = &fileTail{offset: off, sc: qlog.NewStatementScanner()}
		return nil
	}
	if _, err := filepath.Match(tl.pattern, ""); err != nil {
		return err // malformed pattern: fail now, not on every poll
	}
	matches, err := filepath.Glob(tl.pattern)
	if err != nil {
		return err
	}
	for _, path := range matches {
		off, err := initialOffset(path)
		if err != nil {
			// Fail like the single-file path: skipping here would make
			// the next poll treat the file as newly created and ingest
			// its whole pre-existing content as fresh entries.
			return err
		}
		tl.files[path] = &fileTail{offset: off, sc: qlog.NewStatementScanner()}
	}
	return nil
}

// pollAll refreshes the glob (picking up files created after start at
// offset 0 and dropping files that vanished) and polls every tracked
// file.
func (tl *tailer) pollAll() {
	if tl.isGlob {
		matches, err := filepath.Glob(tl.pattern)
		if err == nil {
			seen := make(map[string]bool, len(matches))
			for _, path := range matches {
				seen[path] = true
				if _, ok := tl.files[path]; !ok {
					// Created after start: everything in it is new.
					tl.files[path] = &fileTail{sc: qlog.NewStatementScanner()}
				}
			}
			for path := range tl.files {
				if !seen[path] {
					delete(tl.files, path)
				}
			}
		}
	}
	for path, ft := range tl.files {
		tl.pollFile(path, ft)
	}
}

// pollFile reads one file's appended bytes and handles quiescence.
func (tl *tailer) pollFile(path string, ft *fileTail) {
	newOffset, newPartial, err := tl.ing.poll(tl.id, path, ft.offset, ft.partial, ft.sc)
	if err != nil {
		// Transient (file rotated away, fs hiccup): keep tailing.
		return
	}
	if newOffset != ft.offset {
		ft.quiet = 0
	} else if ft.quiet++; ft.quiet >= 2 {
		// Quiescent for two polls: what we hold is complete — a final
		// line without a trailing newline (the partial) and a statement
		// the scanner still keeps open (legacy one-per-line logs never
		// ';'-terminate their last line). Feed and flush both.
		if len(newPartial) > 0 {
			ft.sc.Line(string(newPartial))
			newPartial = nil
		}
		ft.sc.Flush()
		if entries := ft.sc.Drain(); len(entries) > 0 {
			_, _ = tl.ing.Submit(tl.id, entries)
		}
	}
	ft.offset, ft.partial = newOffset, newPartial
}

// initialOffset returns the file's current size — tailing starts at
// the end, like tail -f; the file's existing contents are the batch
// log the interface was mined from. A missing file starts at 0 and is
// picked up when it appears.
func initialOffset(path string) (int64, error) {
	st, err := os.Stat(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// poll reads bytes appended since offset, feeds complete lines through
// the statement scanner and submits finished statements.
func (ing *Ingester) poll(id, path string, offset int64, partial []byte, sc *qlog.StatementScanner) (int64, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return offset, partial, nil // not yet created (or rotated out)
		}
		return offset, partial, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return offset, partial, err
	}
	if st.Size() < offset {
		// Truncated or rotated: drop partial state, restart at 0.
		offset, partial = 0, nil
		sc.Flush()
		sc.Drain()
	}
	if st.Size() == offset {
		return offset, partial, nil
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		return offset, partial, err
	}
	chunk, err := io.ReadAll(f)
	if err != nil {
		return offset, partial, err
	}
	offset += int64(len(chunk))

	buf := append(partial, chunk...)
	var entries []qlog.Entry
	start := 0
	for i := 0; i < len(buf); i++ {
		if buf[i] != '\n' {
			continue
		}
		sc.Line(string(buf[start:i]))
		entries = append(entries, sc.Drain()...)
		start = i + 1
	}
	partial = append([]byte(nil), buf[start:]...)
	if len(entries) > 0 {
		if _, err := ing.Submit(id, entries); err != nil {
			return offset, partial, err
		}
	}
	return offset, partial, nil
}
