package ingest

import (
	"errors"
	"testing"

	"repro/internal/qlog"
)

// TestDetachAtEpochCAS: a mismatched epoch leaves the feed fully
// alive; a match seals and detaches it atomically.
func TestDetachAtEpochCAS(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100})

	cur, err := ing.DetachAtEpoch("live", h.Epoch()+5)
	if !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("stale detach = %v, want ErrEpochMismatch", err)
	}
	if cur != h.Epoch() {
		t.Fatalf("reported epoch %d, want %d", cur, h.Epoch())
	}
	// The failed CAS changed nothing: the feed still accepts writes.
	if _, err := ing.Submit("live", []qlog.Entry{entry("SELECT a FROM t WHERE x = 7")}); err != nil {
		t.Fatalf("submit after failed detach: %v", err)
	}

	// Drain-then-match: the buffered entry publishes (epoch bump) as
	// part of the detach, so the pre-flush epoch fails the CAS...
	if _, err := ing.DetachAtEpoch("live", h.Epoch()); !errors.Is(err, ErrEpochMismatch) {
		t.Fatalf("detach with pre-flush epoch = %v, want ErrEpochMismatch (flush publishes)", err)
	}
	// ...and the post-flush epoch succeeds.
	cur, err = ing.DetachAtEpoch("live", h.Epoch())
	if err != nil {
		t.Fatalf("detach at current epoch: %v", err)
	}
	if cur != h.Epoch() {
		t.Fatalf("detached at epoch %d, want %d", cur, h.Epoch())
	}

	// Detached: submissions are structurally rejected.
	if _, err := ing.Submit("live", []qlog.Entry{entry("SELECT a FROM t WHERE x = 8")}); !errors.Is(err, ErrNoFeed) {
		t.Fatalf("submit after detach = %v, want ErrNoFeed", err)
	}
	if _, err := ing.DetachAtEpoch("live", 0); !errors.Is(err, ErrNoFeed) {
		t.Fatalf("double detach = %v, want ErrNoFeed", err)
	}
}

// TestSealedFeedRejectsInFlightWriters: a writer that resolved the
// feed pointer before the handoff but acquires the lock after the seal
// must be rejected, never acknowledged into a detached buffer — the
// race DetachAtEpoch's seal exists to close.
func TestSealedFeedRejectsInFlightWriters(t *testing.T) {
	_, ing, _ := newIngester(t, Options{BatchSize: 100})
	f, err := ing.feed("live")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing.DetachAtEpoch("live", 0); err != nil {
		t.Fatal(err)
	}
	if !f.sealed {
		t.Fatal("detach did not seal the feed")
	}
	// Simulate the in-flight writer: bypass the map lookup (the feed is
	// already gone from it) and drive the submission path on the stale
	// pointer the way Submit would.
	f.mu.Lock()
	sealed := f.sealed
	f.mu.Unlock()
	if !sealed {
		t.Fatal("stale feed pointer observed an unsealed feed after detach")
	}
}
