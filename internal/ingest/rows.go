package ingest

import (
	"fmt"
	"strings"

	"repro/internal/api"
	"repro/internal/engine"
)

// SubmitRows buffers new dataset rows for one table of the
// interface's store and publishes them when the row batch fills (or
// immediately with flush set). Publishing is copy-on-write in the
// store followed by a hot swap of the hosted interface onto the fresh
// snapshot under a bumped epoch — the same discipline Submit applies
// to interface updates, so a query accepted after the swap can never
// be answered from a cache that predates the appended rows.
//
// Rows are validated against the table's column count before they are
// buffered, so SubmitRows either accepts the whole batch or rejects it
// without side effects. The per-table buffer is capped at
// Options.MaxRowBuffer: a submission that would overflow it drains the
// buffer inline first, and one that cannot fit even then (a single
// batch larger than the cap, or a drain that failed) is rejected with
// an error the service layer surfaces as rows_rejected — bounded
// memory, never silent loss. The caller must not mutate rows
// afterwards. Implements api.RowIngestor.
func (ing *Ingester) SubmitRows(id, table string, rows [][]engine.Value, flush bool) (api.RowsAck, error) {
	f, err := ing.feed(id)
	if err != nil {
		return api.RowsAck{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ack := api.RowsAck{Table: table}
	if f.sealed {
		return ack, fmt.Errorf("ingest: interface %q %w", id, ErrNoFeed)
	}
	if err := f.store.ValidateRows(table, rows); err != nil {
		f.lastError = err.Error()
		return ack, err
	}
	key := strings.ToLower(table)
	if len(f.rowBuf[key])+len(rows) > ing.opts.MaxRowBuffer {
		if ferr := ing.flushRowsLocked(f); ferr != nil {
			err := fmt.Errorf("ingest: row buffer for table %q is full (%d buffered, cap %d) and draining it failed: %w",
				table, len(f.rowBuf[key]), ing.opts.MaxRowBuffer, ferr)
			f.lastError = err.Error()
			return ack, err
		}
		if len(f.rowBuf[key])+len(rows) > ing.opts.MaxRowBuffer {
			err := fmt.Errorf("ingest: %d rows exceed table %q's row-buffer cap of %d; submit smaller batches",
				len(rows), table, ing.opts.MaxRowBuffer)
			f.lastError = err.Error()
			return ack, err
		}
	}
	f.rowBuf[key] = append(f.rowBuf[key], rows...)
	f.rowBuffered += len(rows)
	ack.Accepted = len(rows)

	if flush || f.rowBuffered >= ing.opts.RowBatchSize || f.rowBuffered >= ing.opts.MaxRowBuffer {
		if err := ing.flushRowsLocked(f); err != nil {
			ack.Buffered = f.rowBuffered
			ack.Epoch = f.hosted.Epoch()
			ack.DataEpoch = f.store.Epoch()
			return ack, err
		}
		ack.Flushed = true
	}
	ack.Buffered = f.rowBuffered
	ack.Epoch = f.hosted.Epoch()
	ack.DataEpoch = f.store.Epoch()
	if n, ok := f.store.RowCount(table); ok {
		ack.RowCount = n
	}
	return ack, nil
}

// FlushRows publishes any buffered rows for the interface and returns
// the interface epoch.
func (ing *Ingester) FlushRows(id string) (uint64, error) {
	f, err := ing.feed(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := ing.flushRowsLocked(f); err != nil {
		return f.hosted.Epoch(), err
	}
	return f.hosted.Epoch(), nil
}

// flushRowsLocked appends every buffered row batch to the store and
// hot-swaps the hosted interface onto the resulting snapshot. Caller
// holds f.mu. One swap covers all tables flushed together, so a flush
// costs a single epoch bump regardless of how many tables grew.
//
// A failing table (validation at submit time makes this unreachable
// short of the table being replaced under the buffer) stops the loop
// but does not lose what already published: the buffered counters only
// cover tables still waiting, the failed table's rows stay buffered
// for retry, and the swap still runs so rows the store already
// accepted become visible instead of floating unreferenced.
func (ing *Ingester) flushRowsLocked(f *feed) error {
	if f.rowBuffered == 0 {
		return nil
	}
	appended := 0
	var published []TableRows
	var failErr error
	for table, rows := range f.rowBuf {
		if len(rows) == 0 {
			delete(f.rowBuf, table)
			continue
		}
		if _, err := f.store.AppendRows(table, rows); err != nil {
			f.lastError = err.Error()
			failErr = fmt.Errorf("ingest: append %d rows to %q: %w", len(rows), table, err)
			break
		}
		published = append(published, TableRows{Table: table, Rows: rows})
		appended += len(rows)
		f.rowBuffered -= len(rows)
		delete(f.rowBuf, table)
	}
	if appended > 0 {
		f.rowsAppended += uint64(appended)
		f.rowFlushes++
		if _, err := f.hosted.Swap(f.hosted.Iface(), f.store.Snapshot()); err != nil {
			f.lastError = err.Error()
			return fmt.Errorf("ingest: swap %q after row append: %w", f.hosted.ID, err)
		}
		// Replicate the published batches before the ack propagates
		// (see flushLocked); one publication covers every table flushed
		// under this swap.
		if err := ing.firePublish(f, nil, published, nil); err != nil {
			if failErr == nil {
				failErr = err
			}
		}
	}
	return failErr
}
