package ingest

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/api"
	"repro/internal/store"
	"repro/internal/wal"
)

// This file is the persister's write-ahead-log mode. The durability
// contract it implements:
//
//   - Every acked publish (log batch, row append, epoch bump) is in
//     the WAL before the ack returns — the persister is the
//     ingester's Journal, and the journal fires under the feed lock
//     before the submission's ack on owners and before the apply ack
//     on followers.
//   - A periodic save costs O(rows since the last save): it cuts a
//     delta off the copy-on-write version chain (store.CutDelta),
//     links it into the manifest, and truncates the WAL segments the
//     save made redundant. Every CompactEvery saves, a full base
//     rewrite drops the chain.
//   - Restore = newest base + delta chain + WAL tail replayed through
//     the same Apply paths followers use. The acked state comes back
//     exactly; a torn final record (crash mid-append) was never acked
//     and is truncated, not applied.
//   - Replication control state (role, term, owner, follower
//     positions) rides in the manifest, so a restarted shard answers
//     ownership questions from the term it actually held.

// Append implements Journal: one acked publication into the WAL,
// synchronously, before the ack returns. Sequence numbers the log
// already holds are no-ops, which is what makes restore-time replay
// (driving the same Apply paths that journal live traffic) safe.
func (p *Persister) Append(id string, pub Publication) error {
	rec := wal.Record{Seq: pub.Seq, Epoch: pub.Epoch, Entries: pub.Entries, Muts: pub.Muts}
	for _, tr := range pub.Rows {
		rec.Rows = append(rec.Rows, wal.TableRows{Table: tr.Table, Rows: tr.Rows})
	}
	if err := p.opts.WAL.Append(id, rec); err != nil {
		return api.Errf(api.CodeWALFailed, http.StatusInternalServerError,
			"wal append %q seq %d: %v", id, pub.Seq, err)
	}
	return nil
}

// WALEnabled reports whether the persister runs in write-ahead-log
// mode — callers wire the durable replication callbacks only then.
func (p *Persister) WALEnabled() bool { return p.opts.WAL != nil }

// SetReplStateSource wires the replication manager's live state into
// saves, so manifests carry current roles, terms and follower
// positions.
func (p *Persister) SetReplStateSource(fn func(id string) *store.ReplState) {
	p.saveMu.Lock()
	p.replState = fn
	p.saveMu.Unlock()
}

// ReplStates returns the replication control state the manifests held
// at restore, keyed by interface — the shard node feeds these back
// into its replication manager at boot.
func (p *Persister) ReplStates() map[string]*store.ReplState {
	p.saveMu.Lock()
	defer p.saveMu.Unlock()
	out := map[string]*store.ReplState{}
	for id, m := range p.manifests {
		if m.Replication != nil {
			out[id] = m.Replication
		}
	}
	return out
}

// WALStatus implements api.WALStatuser for /healthz rows.
func (p *Persister) WALStatus(id string) (*api.WALInfo, bool) {
	if p.opts.WAL == nil {
		return nil, false
	}
	st, ok := p.opts.WAL.Status(id)
	if !ok {
		return nil, false
	}
	info := &api.WALInfo{
		Segments:  st.Segments,
		Bytes:     st.Bytes,
		LastSeq:   st.LastSeq,
		SyncedSeq: st.SyncedSeq,
		Truncated: st.Truncated,
	}
	p.saveMu.Lock()
	if m := p.manifests[id]; m != nil && st.LastSeq > m.Seq {
		info.Lag = st.LastSeq - m.Seq
	} else if m == nil {
		info.Lag = st.LastSeq
	}
	p.saveMu.Unlock()
	return info, true
}

// replStateLocked fetches the live replication state for a manifest
// write. Caller holds saveMu.
func (p *Persister) replStateLocked(id string) *store.ReplState {
	if p.replState == nil {
		return nil
	}
	return p.replState(id)
}

// saveWAL is saveOne's WAL-mode body: a differential delta when the
// manifest chain allows it, a full base rewrite when it does not (no
// manifest yet, chain at the compaction bound, or a chain the capture
// no longer continues). Caller holds saveMu (via SaveAll).
func (p *Persister) saveWAL(snap *store.Snapshot) (api.SnapshotInterface, error) {
	m := p.manifests[snap.ID]
	rs := p.replStateLocked(snap.ID)

	if m != nil && len(m.Deltas) < p.opts.CompactEvery && snap.Seq >= m.Seq {
		if snap.Seq == m.Seq {
			// Nothing published since the last save; just refresh the
			// replication state if it moved.
			if rs != nil && !replStateEqual(rs, m.Replication) {
				m.Replication = rs
				if err := store.SaveManifest(p.dir, m); err != nil {
					return api.SnapshotInterface{}, fmt.Errorf("ingest: save %q: %w", snap.ID, err)
				}
			}
			return snapshotRow(snap, 0), nil
		}
		d, err := store.CutDelta(snap, m.Seq, m.LogLen, m.TableRows, m.TableMuts)
		if err == nil {
			size, name, err := store.SaveDelta(p.dir, d)
			if err != nil {
				return api.SnapshotInterface{}, fmt.Errorf("ingest: save %q: %w", snap.ID, err)
			}
			m.Deltas = append(m.Deltas, name)
			m.Seq, m.Epoch, m.DataEpoch = snap.Seq, snap.Epoch, snap.DataEpoch
			m.LogLen, m.TableRows, m.TableMuts = store.CoveredCounts(snap)
			if rs != nil {
				m.Replication = rs
			}
			if err := store.SaveManifest(p.dir, m); err != nil {
				return api.SnapshotInterface{}, fmt.Errorf("ingest: save %q: %w", snap.ID, err)
			}
			// The save covers everything through snap.Seq: segments the
			// replay path no longer needs can go. Best-effort — a failed
			// truncation only costs replay time.
			_ = p.opts.WAL.Truncate(snap.ID, snap.Seq)
			return snapshotRow(snap, size), nil
		}
		// A chain the capture does not continue (a table shrank — only
		// possible through paths outside the append discipline) falls
		// through to a full rewrite rather than failing the save loop.
	}
	return p.saveFull(snap, rs)
}

// saveFull writes a full base snapshot and a fresh single-node
// manifest, superseding any delta chain. Caller holds saveMu.
func (p *Persister) saveFull(snap *store.Snapshot, rs *store.ReplState) (api.SnapshotInterface, error) {
	bytes, err := store.Save(p.dir, snap)
	if err != nil {
		return api.SnapshotInterface{}, fmt.Errorf("ingest: save %q: %w", snap.ID, err)
	}
	old := p.manifests[snap.ID]
	logLen, tableRows, tableMuts := store.CoveredCounts(snap)
	m := &store.Manifest{
		ID:          snap.ID,
		Base:        snap.ID + ".snap",
		Seq:         snap.Seq,
		Epoch:       snap.Epoch,
		DataEpoch:   snap.DataEpoch,
		LogLen:      logLen,
		TableRows:   tableRows,
		TableMuts:   tableMuts,
		Replication: rs,
	}
	if rs == nil && old != nil {
		m.Replication = old.Replication
	}
	if err := store.SaveManifest(p.dir, m); err != nil {
		return api.SnapshotInterface{}, fmt.Errorf("ingest: save %q: %w", snap.ID, err)
	}
	p.manifests[snap.ID] = m
	if old != nil {
		for _, name := range old.Deltas {
			_ = os.Remove(filepath.Join(p.dir, name))
		}
	}
	_ = p.opts.WAL.Truncate(snap.ID, snap.Seq)
	// A full rewrite is the point where no delta will ever again be cut
	// against pre-rewrite state, so superseded MVCC row versions (old
	// UPDATE/DELETE residue) can fold out of the live store's arenas.
	if st, err := p.ing.Store(snap.ID); err == nil {
		st.Compact()
	}
	return snapshotRow(snap, bytes), nil
}

func replStateEqual(a, b *store.ReplState) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Role != b.Role || a.Term != b.Term || a.Owner != b.Owner || len(a.Followers) != len(b.Followers) {
		return false
	}
	for addr, seq := range a.Followers {
		if b.Followers[addr] != seq {
			return false
		}
	}
	return true
}

// Adopt durably installs an externally-sourced snapshot — a migration
// accept or a replication seed — as this node's truth for the
// interface: full base + manifest written synchronously (the caller
// has not acked the transfer yet), the old delta chain dropped, and
// the WAL reset to the snapshot's sequence, because the old log tail
// described state the snapshot wholesale replaced.
func (p *Persister) Adopt(snap *store.Snapshot, rs *store.ReplState) error {
	p.saveMu.Lock()
	defer p.saveMu.Unlock()
	if p.opts.WAL == nil {
		// Legacy mode: the durable unit is the .snap file alone.
		if _, err := store.Save(p.dir, snap); err != nil {
			return fmt.Errorf("ingest: adopt %q: %w", snap.ID, err)
		}
		return nil
	}
	if _, err := p.saveFull(snap, rs); err != nil {
		return fmt.Errorf("ingest: adopt %q: %w", snap.ID, err)
	}
	if err := p.opts.WAL.Reset(snap.ID, snap.Seq); err != nil {
		return fmt.Errorf("ingest: adopt %q: %w", snap.ID, err)
	}
	return nil
}

// PersistReplState rewrites one interface's manifest with its current
// replication control state — the replication manager calls this on
// control-plane changes (promote, demote, fence, term adoption), so a
// crash right after a failover remembers who won. An interface with
// no manifest yet (nothing saved) is skipped: the first save captures
// the state. Errors are returned for the caller to surface but leave
// the in-memory state authoritative.
func (p *Persister) PersistReplState(id string) error {
	p.saveMu.Lock()
	defer p.saveMu.Unlock()
	m := p.manifests[id]
	if m == nil || p.replState == nil {
		return nil
	}
	rs := p.replState(id)
	if replStateEqual(rs, m.Replication) {
		return nil
	}
	m.Replication = rs
	if err := store.SaveManifest(p.dir, m); err != nil {
		return fmt.Errorf("ingest: persist replication state of %q: %w", id, err)
	}
	return nil
}

// CatchUp returns the owner's logged publications with sequence in
// (fromSeq, head], so a follower that restarted at fromSeq re-syncs
// from the stream instead of taking a full snapshot seed. ok=false
// means the log does not cover the range (truncated past it, too far
// behind to be worth shipping record by record, or unreadable) and
// the caller should fall back to a seed.
func (p *Persister) CatchUp(id string, fromSeq uint64) ([]Publication, bool) {
	if p.opts.WAL == nil {
		return nil, false
	}
	const maxCatchUp = 4096
	var pubs []Publication
	err := p.opts.WAL.Replay(id, fromSeq, func(rec wal.Record) error {
		if len(pubs) >= maxCatchUp {
			return fmt.Errorf("wal: catch-up range exceeds %d records", maxCatchUp)
		}
		pub := Publication{Seq: rec.Seq, Epoch: rec.Epoch, Entries: rec.Entries, Muts: rec.Muts}
		for _, tr := range rec.Rows {
			pub.Rows = append(pub.Rows, TableRows{Table: tr.Table, Rows: tr.Rows})
		}
		pubs = append(pubs, pub)
		return nil
	})
	if err != nil {
		return nil, false
	}
	// The chain must start exactly one past the follower's position —
	// a gap means truncation outran the follower and only a seed helps.
	if len(pubs) > 0 && pubs[0].Seq != fromSeq+1 {
		return nil, false
	}
	return pubs, true
}

// restoreWAL rebuilds every interface the data dir holds: manifest
// chain (base + deltas) when present, legacy bare .snap otherwise,
// then the WAL tail replayed on top through the same Apply paths
// followers use. Caller does not hold saveMu (runs once at boot,
// before the server serves).
func (p *Persister) restoreWAL() (*api.RestoreResult, error) {
	ids, orphans, err := p.scanDataDir()
	if err != nil {
		return nil, err
	}
	if len(orphans) > 0 {
		// A WAL directory with no base to replay onto holds acked writes
		// this process cannot reconstruct. Refuse to serve as if they
		// never happened.
		return nil, fmt.Errorf("ingest: restore: WAL logs %v have no snapshot or manifest to replay onto; "+
			"the interfaces were acked writes this data dir cannot reconstruct", orphans)
	}
	res := &api.RestoreResult{Dir: p.dir, Interfaces: []api.SnapshotInterface{}}
	for _, id := range ids {
		snap, err := p.restoreOneWAL(id)
		if err != nil {
			return nil, err
		}
		res.Interfaces = append(res.Interfaces, snapshotRow(snap, 0))
	}
	return res, nil
}

// restoreOneWAL rebuilds one interface to its exact acked state.
func (p *Persister) restoreOneWAL(id string) (*store.Snapshot, error) {
	m, err := store.LoadManifest(p.dir, id)
	if err != nil {
		return nil, err
	}
	var snap *store.Snapshot
	if m != nil {
		snap, err = store.RestoreChain(p.dir, m)
		if err != nil {
			return nil, err
		}
	} else {
		// Legacy bare .snap (written before WAL mode, or a crash between
		// a first save's base write and its manifest write). Host it and
		// promote it to a manifest so the WAL tail is anchored from here
		// on.
		snap, err = store.Load(store.SnapFile(p.dir, id))
		if err != nil {
			return nil, err
		}
		logLen, tableRows, tableMuts := store.CoveredCounts(snap)
		m = &store.Manifest{
			ID:        id,
			Base:      id + ".snap",
			Seq:       snap.Seq,
			Epoch:     snap.Epoch,
			DataEpoch: snap.DataEpoch,
			LogLen:    logLen,
			TableRows: tableRows,
			TableMuts: tableMuts,
		}
		if err := store.SaveManifest(p.dir, m); err != nil {
			return nil, err
		}
	}
	if _, err := p.ing.HostSnapshot(snap, p.opts.Live, p.opts.Funcs, snap.Epoch); err != nil {
		return nil, fmt.Errorf("ingest: restore %q: %w", id, err)
	}
	p.saveMu.Lock()
	p.manifests[id] = m
	p.saveMu.Unlock()

	// Replay the acked tail: every logged publication past the save,
	// through the same deterministic Apply paths followers use (the
	// registry bumps the epoch by exactly one per swap, so the logged
	// epochs verify lockstep). The journal re-offer inside each apply
	// is a sequence-idempotent no-op.
	err = p.opts.WAL.Replay(id, m.Seq, func(rec wal.Record) error {
		switch {
		case len(rec.Entries) > 0:
			return p.ing.ApplyBatch(id, rec.Entries, rec.Epoch, rec.Seq)
		case len(rec.Rows) > 0:
			rows := make([]TableRows, 0, len(rec.Rows))
			for _, tr := range rec.Rows {
				rows = append(rows, TableRows{Table: tr.Table, Rows: tr.Rows})
			}
			return p.ing.ApplyRows(id, rows, rec.Epoch, rec.Seq)
		case len(rec.Muts) > 0:
			return p.ing.ApplyMutations(id, rec.Muts, rec.Epoch, rec.Seq)
		default:
			return p.ing.ApplyBump(id, rec.Epoch, rec.Seq)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: restore %q: replay WAL tail: %w", id, err)
	}
	// Report the replayed position, not the save's.
	if seq, err := p.ing.Seq(id); err == nil {
		snap.Seq = seq
	}
	if h, ok := p.ing.reg.Get(id); ok {
		snap.Epoch = h.Epoch()
	}
	return snap, nil
}

// scanDataDir enumerates restorable interfaces (manifest or legacy
// .snap) and orphaned WAL directories (log but no base).
func (p *Persister) scanDataDir() (ids []string, orphans []string, err error) {
	entries, err := os.ReadDir(p.dir)
	if os.IsNotExist(err) {
		return nil, nil, nil
	}
	if err != nil {
		return nil, nil, fmt.Errorf("ingest: restore: %w", err)
	}
	have := map[string]bool{}
	walDirs := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() && strings.HasSuffix(name, ".wal"):
			walDirs[strings.TrimSuffix(name, ".wal")] = true
		case e.IsDir():
		case strings.HasSuffix(name, ".manifest.json"):
			have[strings.TrimSuffix(name, ".manifest.json")] = true
		case strings.HasSuffix(name, ".snap"):
			have[strings.TrimSuffix(name, ".snap")] = true
		}
	}
	for id := range have {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for id := range walDirs {
		if !have[id] {
			orphans = append(orphans, id)
		}
	}
	sort.Strings(orphans)
	return ids, orphans, nil
}
