package ingest

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/store"
)

// This file is the ingestion side of the replication contract
// (internal/replica): the owner's ack path publishes every
// epoch-bumping flush as a Publication through an optional hook, and
// followers apply those publications — the exact batches, in the exact
// order — through ApplyBatch/ApplyRows/ApplyBump. Because the hook
// fires under the same per-feed lock every write path publishes under,
// publications carry per-interface monotone sequence numbers for free,
// and a hook error fails the submission's ack: a write is only ever
// acknowledged after the replication layer has had its say
// (replicate-before-ack).

// TableRows is one table's slice of a row publication.
type TableRows struct {
	Table string
	Rows  [][]engine.Value
}

// Publication is one epoch-bumping publish on the owner: a re-mined
// log batch (Entries), a row append (Rows), a rowid-keyed mutation set
// (Muts — the physical form of an UPDATE/DELETE, already evaluated
// against the owner's snapshot), or a bare epoch bump (none of them —
// promotion fencing). Seq is the per-interface monotone sequence
// number of the publish; Epoch is the interface epoch after it. A
// follower that applies the same publications in the same order to the
// same seed is byte-identical to the owner (the miner is deterministic
// and mutations carry resolved rowids, not predicates), so Seq+Epoch
// double-check lockstep.
type Publication struct {
	Seq     uint64
	Epoch   uint64
	Entries []qlog.Entry
	Rows    []TableRows
	Muts    []store.TableMutation
}

// PublishHook observes every epoch-bumping publish of every owned
// feed, synchronously, under the feed lock (keep it fast; serving
// reads never take that lock, but further writes to the interface
// do). Returning an error fails the triggering submission's ack — the
// replication layer uses that to refuse acks after it has been fenced
// off by a newer owner.
type PublishHook func(id string, p Publication) error

// SetPublishHook installs (or with nil, clears) the publish hook.
func (ing *Ingester) SetPublishHook(h PublishHook) {
	ing.hookMu.Lock()
	ing.hook = h
	ing.hookMu.Unlock()
}

func (ing *Ingester) publishHook() PublishHook {
	ing.hookMu.RLock()
	h := ing.hook
	ing.hookMu.RUnlock()
	return h
}

// firePublish bumps the feed's sequence number, journals the
// publication and runs the replication hook — in that order, so a
// write is durable locally before it fans out, and an ack implies
// both. Caller holds f.mu and has already published the swap.
func (ing *Ingester) firePublish(f *feed, entries []qlog.Entry, rows []TableRows, muts []store.TableMutation) error {
	f.seq++
	p := Publication{
		Seq:     f.seq,
		Epoch:   f.hosted.Epoch(),
		Entries: entries,
		Rows:    rows,
		Muts:    muts,
	}
	if err := ing.journalLocked(f, p); err != nil {
		return err
	}
	h := ing.publishHook()
	if h == nil {
		return nil
	}
	if err := h(f.hosted.ID, p); err != nil {
		f.lastError = err.Error()
		return err
	}
	return nil
}

// ErrReplicaDiverged reports a follower apply that cannot reproduce
// the owner's publication (sequence gap, epoch drift, or a batch the
// local miner rejects): the follower needs a fresh seed. Matched with
// errors.Is.
var ErrReplicaDiverged = errors.New("replica diverged from owner stream")

// Seq returns the interface's current replication sequence number.
func (ing *Ingester) Seq(id string) (uint64, error) {
	f, err := ing.feed(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq, nil
}

// PublishBump publishes a bare epoch bump through the replication
// hook — the promotion path uses it so cursors minted against the
// ex-owner expire, with surviving followers bumping in lockstep.
// Returns the new epoch and sequence number.
func (ing *Ingester) PublishBump(id string) (uint64, uint64, error) {
	f, err := ing.feed(id)
	if err != nil {
		return 0, 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return 0, 0, fmt.Errorf("ingest: interface %q %w", id, ErrNoFeed)
	}
	if _, err := f.hosted.Swap(f.hosted.Iface(), nil); err != nil {
		return 0, 0, fmt.Errorf("ingest: bump %q: %w", id, err)
	}
	if err := ing.firePublish(f, nil, nil, nil); err != nil {
		return f.hosted.Epoch(), f.seq, err
	}
	return f.hosted.Epoch(), f.seq, nil
}

// applyCheck validates the publication slot before any state changes.
// Caller holds f.mu.
func (f *feed) applyCheck(id string, wantSeq uint64) error {
	if f.sealed {
		return fmt.Errorf("ingest: interface %q %w", id, ErrNoFeed)
	}
	if wantSeq != f.seq+1 {
		return fmt.Errorf("ingest: %q apply seq %d does not follow local seq %d: %w",
			id, wantSeq, f.seq, ErrReplicaDiverged)
	}
	return nil
}

// applySettle records the applied slot and verifies epoch lockstep.
// Caller holds f.mu and has published the swap.
func (f *feed) applySettle(id string, wantEpoch, wantSeq uint64) error {
	f.seq = wantSeq
	if cur := f.hosted.Epoch(); wantEpoch != 0 && cur != wantEpoch {
		return fmt.Errorf("ingest: %q at epoch %d after apply, owner at %d: %w",
			id, cur, wantEpoch, ErrReplicaDiverged)
	}
	return nil
}

// ApplyBatch applies one replicated log publication to a follower
// feed: the exact entry batch the owner flushed, expected to land at
// exactly (wantEpoch, wantSeq). It bypasses the submission buffer and
// the publish hook — replication is one hop deep, never chained.
func (ing *Ingester) ApplyBatch(id string, entries []qlog.Entry, wantEpoch, wantSeq uint64) error {
	f, err := ing.feed(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.applyCheck(id, wantSeq); err != nil {
		return err
	}
	iface, st, err := f.miner.Append(entries)
	f.accepted += uint64(len(entries))
	f.dropped += uint64(st.ParseErrors)
	if err != nil {
		f.lastError = err.Error()
		return fmt.Errorf("ingest: %q apply re-mine: %v: %w", id, err, ErrReplicaDiverged)
	}
	if st.FullRemine {
		f.fullRemines++
	}
	if st.Added == 0 {
		// The owner bumped its epoch for this batch; a deterministic
		// re-mine that adds nothing here means the replica drifted.
		return fmt.Errorf("ingest: %q apply mined no entries the owner published: %w",
			id, ErrReplicaDiverged)
	}
	f.flushes++
	if _, err := f.hosted.Swap(iface, nil); err != nil {
		f.lastError = err.Error()
		return fmt.Errorf("ingest: %q apply swap: %v: %w", id, err, ErrReplicaDiverged)
	}
	if err := f.applySettle(id, wantEpoch, wantSeq); err != nil {
		return err
	}
	// Journal the applied publication so a restarted follower replays
	// to this position instead of demanding a full re-seed. A journal
	// failure refuses the apply (the owner re-sends or re-seeds);
	// replay-time re-applies are sequence-idempotent no-ops.
	return ing.journalLocked(f, Publication{Seq: wantSeq, Epoch: f.hosted.Epoch(), Entries: entries})
}

// ApplyRows applies one replicated row publication to a follower
// feed: every table's batch from one owner flush, published under a
// single epoch bump exactly like the owner's flushRowsLocked.
func (ing *Ingester) ApplyRows(id string, rows []TableRows, wantEpoch, wantSeq uint64) error {
	f, err := ing.feed(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.applyCheck(id, wantSeq); err != nil {
		return err
	}
	appended := 0
	for _, tr := range rows {
		if _, err := f.store.AppendRows(tr.Table, tr.Rows); err != nil {
			f.lastError = err.Error()
			return fmt.Errorf("ingest: %q apply rows to %q: %v: %w",
				id, tr.Table, err, ErrReplicaDiverged)
		}
		appended += len(tr.Rows)
	}
	f.rowsAppended += uint64(appended)
	f.rowFlushes++
	if _, err := f.hosted.Swap(f.hosted.Iface(), f.store.Snapshot()); err != nil {
		f.lastError = err.Error()
		return fmt.Errorf("ingest: %q apply swap: %v: %w", id, err, ErrReplicaDiverged)
	}
	if err := f.applySettle(id, wantEpoch, wantSeq); err != nil {
		return err
	}
	return ing.journalLocked(f, Publication{Seq: wantSeq, Epoch: f.hosted.Epoch(), Rows: rows})
}

// ApplyMutations applies one replicated mutation publication to a
// follower feed: the rowid-keyed updates and deletes the owner's DML
// evaluation produced, published under a single epoch bump exactly
// like the owner's mutation publish. Replication is physical — no
// predicate re-evaluation, so the follower lands on byte-identical
// rows even if its apply runs arbitrarily later. The WAL restore path
// replays through this same method.
func (ing *Ingester) ApplyMutations(id string, muts []store.TableMutation, wantEpoch, wantSeq uint64) error {
	f, err := ing.feed(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.applyCheck(id, wantSeq); err != nil {
		return err
	}
	for _, tm := range muts {
		if _, err := f.store.MutateRows(tm.Table, tm.Updates, tm.Deletes); err != nil {
			f.lastError = err.Error()
			return fmt.Errorf("ingest: %q apply mutations to %q: %v: %w",
				id, tm.Table, err, ErrReplicaDiverged)
		}
		f.rowsMutated += uint64(len(tm.Updates) + len(tm.Deletes))
	}
	f.mutations++
	if _, err := f.hosted.Swap(f.hosted.Iface(), f.store.Snapshot()); err != nil {
		f.lastError = err.Error()
		return fmt.Errorf("ingest: %q apply swap: %v: %w", id, err, ErrReplicaDiverged)
	}
	if err := f.applySettle(id, wantEpoch, wantSeq); err != nil {
		return err
	}
	return ing.journalLocked(f, Publication{Seq: wantSeq, Epoch: f.hosted.Epoch(), Muts: muts})
}

// ApplyBump applies a bare epoch bump (the promotion fence) to a
// follower feed.
func (ing *Ingester) ApplyBump(id string, wantEpoch, wantSeq uint64) error {
	f, err := ing.feed(id)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.applyCheck(id, wantSeq); err != nil {
		return err
	}
	if _, err := f.hosted.Swap(f.hosted.Iface(), nil); err != nil {
		f.lastError = err.Error()
		return fmt.Errorf("ingest: %q apply bump: %v: %w", id, err, ErrReplicaDiverged)
	}
	if err := f.applySettle(id, wantEpoch, wantSeq); err != nil {
		return err
	}
	return ing.journalLocked(f, Publication{Seq: wantSeq, Epoch: f.hosted.Epoch()})
}
