package ingest

import (
	"repro/internal/obs"
)

// Ingest metric families. All lazy: each hosted feed registers
// closures that read its existing counters under the feed mutex at
// scrape time, so Submit/Flush/AppendRows/Mutate carry zero metric
// bookkeeping and the exposed numbers are exactly what /v1/debug
// reports. A re-hosted interface re-registers, replacing the closure;
// a deleted one freezes at its final values.
var (
	mxAccepted = obs.Default.CounterVec("pi_ingest_accepted_total",
		"Query-log entries accepted into the interface's feed.", "iface")
	mxDropped = obs.Default.CounterVec("pi_ingest_dropped_total",
		"Query-log entries dropped (buffer overflow with failing flushes).", "iface")
	mxFlushes = obs.Default.CounterVec("pi_ingest_flushes_total",
		"Feed flushes that re-mined buffered entries and bumped the epoch.", "iface")
	mxRowsAppended = obs.Default.CounterVec("pi_ingest_rows_appended_total",
		"Dataset rows appended through the ingestion surface.", "iface")
	mxMutations = obs.Default.CounterVec("pi_ingest_mutations_total",
		"UPDATE/DELETE mutations published through the feed.", "iface")
	mxFeedSeq = obs.Default.GaugeVec("pi_ingest_seq",
		"The feed's publish sequence number (what the replication stream rides on).", "iface")
)

// registerFeedMetrics hooks one feed into the registry at host() time.
func registerFeedMetrics(id string, f *feed) {
	counter := func(field *uint64) func() uint64 {
		return func() uint64 {
			f.mu.Lock()
			defer f.mu.Unlock()
			return *field
		}
	}
	mxAccepted.Func(counter(&f.accepted), id)
	mxDropped.Func(counter(&f.dropped), id)
	mxFlushes.Func(counter(&f.flushes), id)
	mxRowsAppended.Func(counter(&f.rowsAppended), id)
	mxMutations.Func(counter(&f.mutations), id)
	mxFeedSeq.Func(func() float64 {
		f.mu.Lock()
		defer f.mu.Unlock()
		return float64(f.seq)
	}, id)
}
