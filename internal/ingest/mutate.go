package ingest

import (
	"fmt"
	"net/http"

	"repro/internal/api"
	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/sqlparser"
	"repro/internal/store"
)

// SubmitMutation evaluates one UPDATE or DELETE statement against the
// interface's current snapshot and publishes the result as a versioned
// mutation: the matched rows' durable rowids, not the predicate, are
// what the store applies, the WAL journals and the replication stream
// carries — so the owner, its WAL replay and every follower land on
// byte-identical rows no matter when they apply.
//
// Ordering under the feed lock: buffered row appends flush first
// (acked appends must be visible to the predicate), then the optional
// ifEpoch check runs against the post-flush snapshot, then the
// statement parses, plans and evaluates against that same snapshot.
// A mutation that matches zero rows acks without publishing — no
// epoch bump, nothing journaled. One that matches publishes in
// O(rows-touched): the store retires and appends row versions, the
// hosted interface hot-swaps onto the new snapshot, and the
// publication journals and replicates before the ack returns
// (replicate-before-ack, same as every other write path). Implements
// api.RowMutator.
func (ing *Ingester) SubmitMutation(id, sql string, ifEpoch uint64) (api.MutateAck, error) {
	f, err := ing.feed(id)
	if err != nil {
		return api.MutateAck{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ack := api.MutateAck{}
	if f.sealed {
		return ack, fmt.Errorf("ingest: interface %q %w", id, ErrNoFeed)
	}
	if err := ing.flushRowsLocked(f); err != nil {
		return ack, err
	}
	snap := f.store.Snapshot()
	ack.Epoch = f.hosted.Epoch()
	ack.DataEpoch = snap.Epoch()
	if ifEpoch != 0 && snap.Epoch() != ifEpoch {
		return ack, api.Errf(api.CodeMutationConflict, http.StatusConflict,
			"store is at data epoch %d, mutation expected %d", snap.Epoch(), ifEpoch)
	}
	stmt, perr := sqlparser.ParseStatement(sql)
	if perr != nil {
		f.lastError = perr.Error()
		return ack, perr
	}
	if stmt.Type != ast.TypeUpdate && stmt.Type != ast.TypeDelete {
		return ack, fmt.Errorf("ingest: mutation must be UPDATE or DELETE, got %s", stmt.Type)
	}
	mut, err := engine.EvalDML(snap, stmt)
	if err != nil {
		f.lastError = err.Error()
		return ack, err
	}
	ack.Table = mut.Table
	ack.Matched = len(mut.Matched)
	if len(mut.Matched) == 0 {
		return ack, nil
	}
	ids, ok := snap.RowIDs(mut.Table)
	if !ok {
		return ack, fmt.Errorf("ingest: table %q has no row identities", mut.Table)
	}
	tm := store.TableMutation{Table: mut.Table}
	if mut.Delete {
		tm.Deletes = make([]uint64, len(mut.Matched))
		for i, ri := range mut.Matched {
			tm.Deletes[i] = ids[ri]
		}
	} else {
		tm.Updates = make([]store.RowUpdate, len(mut.Matched))
		for i, ri := range mut.Matched {
			tm.Updates[i] = store.RowUpdate{RowID: ids[ri], Vals: mut.NewRows[i]}
		}
	}
	if _, err := f.store.MutateRows(tm.Table, tm.Updates, tm.Deletes); err != nil {
		f.lastError = err.Error()
		return ack, err
	}
	f.rowsMutated += uint64(len(tm.Updates) + len(tm.Deletes))
	f.mutations++
	if _, err := f.hosted.Swap(f.hosted.Iface(), f.store.Snapshot()); err != nil {
		f.lastError = err.Error()
		return ack, fmt.Errorf("ingest: swap %q after mutation: %w", id, err)
	}
	ack.Epoch = f.hosted.Epoch()
	ack.DataEpoch = f.store.Epoch()
	ack.Updated = len(tm.Updates)
	ack.Deleted = len(tm.Deletes)
	if err := ing.firePublish(f, nil, nil, []store.TableMutation{tm}); err != nil {
		return ack, err
	}
	return ack, nil
}
