package ingest

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/engine"
)

func rowsN(n int) [][]engine.Value {
	out := make([][]engine.Value, n)
	for i := range out {
		out[i] = []engine.Value{engine.Num(float64(1000 + i)), engine.Num(float64(100 + i))}
	}
	return out
}

// TestRowBufferCapRejectsOversizeBatch: one submission larger than
// MaxRowBuffer must be rejected with a structured error, not buffered
// without bound.
func TestRowBufferCapRejectsOversizeBatch(t *testing.T) {
	_, ing, _ := newIngester(t, Options{RowBatchSize: 1000, MaxRowBuffer: 8})
	_, err := ing.SubmitRows("live", "t", rowsN(9), false)
	if err == nil {
		t.Fatal("oversize batch accepted")
	}
	if !strings.Contains(err.Error(), "row-buffer cap") {
		t.Fatalf("error does not name the cap: %v", err)
	}
	// The rejection had no side effects: a valid batch still lands.
	ack, err := ing.SubmitRows("live", "t", rowsN(3), true)
	if err != nil {
		t.Fatal(err)
	}
	if ack.RowCount != 53 { // 50 seed rows + 3
		t.Fatalf("rowCount = %d, want 53", ack.RowCount)
	}
}

// TestRowBufferCapDrainsBeforeRejecting: a submission that overflows a
// non-empty buffer triggers an inline publish (backpressure), not a
// rejection, as long as the rows fit a drained buffer.
func TestRowBufferCapDrainsBeforeRejecting(t *testing.T) {
	_, ing, h := newIngester(t, Options{RowBatchSize: 1000, MaxRowBuffer: 8})
	before := h.Epoch()
	if _, err := ing.SubmitRows("live", "t", rowsN(6), false); err != nil {
		t.Fatal(err)
	}
	// 6 buffered + 6 more would exceed 8: the buffer publishes inline,
	// then the new rows buffer.
	ack, err := ing.SubmitRows("live", "t", rowsN(6), false)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Buffered != 6 {
		t.Fatalf("buffered = %d, want 6 (old rows published, new rows buffered)", ack.Buffered)
	}
	if h.Epoch() <= before {
		t.Fatal("inline drain did not publish (no epoch bump)")
	}
	if ack.RowCount != 56 { // 50 seed rows + 6 published
		t.Fatalf("rowCount = %d, want 56", ack.RowCount)
	}
}

// TestServiceMapsRowCapToRowsRejected: the structured contract — a
// capped buffer surfaces as rows_rejected through the service layer.
func TestServiceMapsRowCapToRowsRejected(t *testing.T) {
	reg, ing, _ := newIngester(t, Options{RowBatchSize: 1000, MaxRowBuffer: 4})
	svc := api.NewService(reg)
	svc.SetIngestor(ing)
	rows := make([][]any, 5)
	for i := range rows {
		rows[i] = []any{float64(2000 + i), float64(200 + i)}
	}
	_, err := svc.AppendRows("live", api.RowsRequest{Table: "t", Rows: rows}, false)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeRowsRejected {
		t.Fatalf("service error = %v, want %s", err, api.CodeRowsRejected)
	}
}
