package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/store"
	"repro/internal/wal"
)

// newWALPersister hosts the fixture interface with a WAL-mode
// persister journaling every ack into dir.
func newWALPersister(t *testing.T, dir string, opts PersistOptions) (*api.Registry, *Ingester, *Persister, *wal.Manager) {
	t.Helper()
	reg := api.NewRegistry()
	ing := New(reg, Options{BatchSize: 2, RowBatchSize: 2})
	if _, err := ing.Host("live", "wal test", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	m := wal.NewManager(dir, wal.Options{})
	t.Cleanup(func() { m.Close() })
	opts.WAL = m
	p := NewPersister(dir, ing, opts)
	return reg, ing, p, m
}

// TestWALKillRestoreRoundTrip is the tentpole contract end to end,
// minus the real SIGKILL (cmd/pi-serve's crash test covers the
// process): base snapshot, then acked writes that are NEVER saved —
// only journaled — then a cold restore that must replay them exactly.
func TestWALKillRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// --- first life.
	_, ing1, p1, _ := newWALPersister(t, dir, PersistOptions{})
	if _, err := p1.SaveAll(); err != nil {
		t.Fatal(err)
	}
	// Everything from here on lives only in the WAL.
	if _, err := ing1.Submit("live", []qlog.Entry{
		entry("SELECT a FROM t WHERE x = 30"),
		entry("SELECT a FROM t WHERE x = 31"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ing1.SubmitRows("live", "t", [][]engine.Value{numRow(777, 30), numRow(778, 31)}, true); err != nil {
		t.Fatal(err)
	}
	wantSeq, err := ing1.Seq("live")
	if err != nil {
		t.Fatal(err)
	}
	if wantSeq == 0 {
		t.Fatal("no publications were acked")
	}
	wantMined, _ := ing1.MinedLen("live")
	st1, _ := ing1.Store("live")
	wantRows, _ := st1.RowCount("t")
	if wantRows != 52 {
		t.Fatalf("first-life rows = %d, want 52", wantRows)
	}

	// --- second life: the snapshot predates every submit; the WAL tail
	// must close the gap.
	reg2 := api.NewRegistry()
	ing2 := New(reg2, Options{})
	m2 := wal.NewManager(dir, wal.Options{})
	defer m2.Close()
	p2 := NewPersister(dir, ing2, PersistOptions{WAL: m2})
	restored, err := p2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Interfaces) != 1 || restored.Interfaces[0].ID != "live" {
		t.Fatalf("restore result = %+v", restored)
	}
	if got, _ := ing2.Seq("live"); got != wantSeq {
		t.Fatalf("restored seq = %d, want %d", got, wantSeq)
	}
	if got, _ := ing2.MinedLen("live"); got != wantMined {
		t.Fatalf("restored mined log = %d entries, want %d", got, wantMined)
	}
	st2, err := ing2.Store("live")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st2.RowCount("t"); n != wantRows {
		t.Fatalf("restored rows = %d, want %d", n, wantRows)
	}

	// Restored process keeps journaling: another acked write, another
	// cold restore, still exact.
	if _, err := ing2.SubmitRows("live", "t", [][]engine.Value{numRow(900, 40)}, true); err != nil {
		t.Fatal(err)
	}
	m2.Close()
	reg3 := api.NewRegistry()
	ing3 := New(reg3, Options{})
	m3 := wal.NewManager(dir, wal.Options{})
	defer m3.Close()
	if _, err := NewPersister(dir, ing3, PersistOptions{WAL: m3}).Restore(); err != nil {
		t.Fatal(err)
	}
	st3, _ := ing3.Store("live")
	if n, _ := st3.RowCount("t"); n != wantRows+1 {
		t.Fatalf("third-life rows = %d, want %d", n, wantRows+1)
	}
}

// TestWALDifferentialSave: the second save must cut a delta, not
// rewrite the base, and must truncate the WAL segments it covered.
func TestWALDifferentialSave(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, m := newWALPersister(t, dir, PersistOptions{})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	baseInfo, err := os.Stat(store.SnapFile(dir, "live"))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(801, 60), numRow(802, 61)}, true); err != nil {
		t.Fatal(err)
	}
	res, err := p.SaveAll()
	if err != nil {
		t.Fatal(err)
	}

	man, err := store.LoadManifest(dir, "live")
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || len(man.Deltas) != 1 {
		t.Fatalf("manifest after differential save = %+v", man)
	}
	if _, err := os.Stat(filepath.Join(dir, man.Deltas[0])); err != nil {
		t.Fatalf("delta file missing: %v", err)
	}
	after, err := os.Stat(store.SnapFile(dir, "live"))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(baseInfo.ModTime()) || after.Size() != baseInfo.Size() {
		t.Fatal("differential save rewrote the base snapshot")
	}
	if res.Interfaces[0].Bytes >= baseInfo.Size() {
		t.Fatalf("delta (%d bytes) not smaller than base (%d bytes)", res.Interfaces[0].Bytes, baseInfo.Size())
	}
	if st, ok := m.Status("live"); !ok || st.LastSeq != man.Seq {
		t.Fatalf("WAL head does not match the save: %+v", st)
	}
	replayed := 0
	if err := m.Replay("live", 0, func(wal.Record) error { replayed++; return nil }); err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("WAL still holds %d records the save covered", replayed)
	}

	// The chain restores to the exact post-append state.
	reg2 := api.NewRegistry()
	ing2 := New(reg2, Options{})
	m2 := wal.NewManager(dir, wal.Options{})
	defer m2.Close()
	if _, err := NewPersister(dir, ing2, PersistOptions{WAL: m2}).Restore(); err != nil {
		t.Fatal(err)
	}
	st2, _ := ing2.Store("live")
	if n, _ := st2.RowCount("t"); n != 52 {
		t.Fatalf("chain-restored rows = %d, want 52", n)
	}
}

// TestWALCompaction: CompactEvery bounds the chain — the save after
// the bound rewrites the base and removes the stale delta files.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, _ := newWALPersister(t, dir, PersistOptions{CompactEvery: 2})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	var deltaFiles []string
	for i := 0; i < 3; i++ {
		if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(float64(600+i), 70)}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := p.SaveAll(); err != nil {
			t.Fatal(err)
		}
		man, err := store.LoadManifest(dir, "live")
		if err != nil {
			t.Fatal(err)
		}
		deltaFiles = append(deltaFiles, man.Deltas...)
		if i < 2 {
			if len(man.Deltas) != i+1 {
				t.Fatalf("save %d: chain = %v", i, man.Deltas)
			}
		} else if len(man.Deltas) != 0 {
			t.Fatalf("chain not compacted at bound: %v", man.Deltas)
		}
	}
	for _, name := range deltaFiles {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Fatalf("stale delta %s survived compaction", name)
		}
	}
	st, _ := ing.Store("live")
	if n, _ := st.RowCount("t"); n != 53 {
		t.Fatalf("rows = %d, want 53", n)
	}
}

// TestWALAdoptRestoresReplicationState: Adopt persists an external
// snapshot plus the replication role synchronously; a cold boot hands
// the recorded term and follower positions back to the shard node.
func TestWALAdoptRestoresReplicationState(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, m := newWALPersister(t, dir, PersistOptions{})
	snap, err := ing.Capture("live")
	if err != nil {
		t.Fatal(err)
	}
	rs := &store.ReplState{
		Role: api.RoleOwner, Term: 7, Owner: "http://127.0.0.1:9000",
		Followers: map[string]uint64{"http://127.0.0.1:9001": snap.Seq},
	}
	if err := p.Adopt(snap, rs); err != nil {
		t.Fatal(err)
	}
	if st, ok := m.Status("live"); !ok || st.LastSeq != snap.Seq {
		t.Fatalf("adopt did not reset the WAL to seq %d: %+v", snap.Seq, st)
	}

	reg2 := api.NewRegistry()
	ing2 := New(reg2, Options{})
	m2 := wal.NewManager(dir, wal.Options{})
	defer m2.Close()
	p2 := NewPersister(dir, ing2, PersistOptions{WAL: m2})
	if _, err := p2.Restore(); err != nil {
		t.Fatal(err)
	}
	states := p2.ReplStates()
	got := states["live"]
	if got == nil || got.Term != 7 || got.Role != api.RoleOwner || got.Owner != rs.Owner {
		t.Fatalf("restored replication state = %+v", got)
	}
	if got.Followers["http://127.0.0.1:9001"] != snap.Seq {
		t.Fatalf("restored follower position = %+v", got.Followers)
	}
}

// TestWALPersistReplState: a control-plane change rewrites the
// manifest in place without a data save.
func TestWALPersistReplState(t *testing.T) {
	dir := t.TempDir()
	_, _, p, _ := newWALPersister(t, dir, PersistOptions{})
	term := uint64(1)
	p.SetReplStateSource(func(id string) *store.ReplState {
		return &store.ReplState{Role: api.RoleOwner, Term: term, Owner: "http://127.0.0.1:9000"}
	})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	term = 9
	if err := p.PersistReplState("live"); err != nil {
		t.Fatal(err)
	}
	man, err := store.LoadManifest(dir, "live")
	if err != nil {
		t.Fatal(err)
	}
	if man.Replication == nil || man.Replication.Term != 9 {
		t.Fatalf("manifest replication state = %+v", man.Replication)
	}
	// Unknown interface and unchanged state are silent no-ops.
	if err := p.PersistReplState("ghost"); err != nil {
		t.Fatal(err)
	}
	if err := p.PersistReplState("live"); err != nil {
		t.Fatal(err)
	}
}

// TestWALCatchUp: the logged tail replays to a restarted follower as
// publications; a range the log no longer covers refuses instead of
// shipping a gapped stream.
func TestWALCatchUp(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, _ := newWALPersister(t, dir, PersistOptions{})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	base, _ := ing.Seq("live")
	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(811, 62), numRow(812, 63)}, true); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Submit("live", []qlog.Entry{
		entry("SELECT a FROM t WHERE x = 33"),
		entry("SELECT a FROM t WHERE x = 34"),
	}); err != nil {
		t.Fatal(err)
	}
	head, _ := ing.Seq("live")
	if head <= base {
		t.Fatalf("no publications after base (%d -> %d)", base, head)
	}

	pubs, ok := p.CatchUp("live", base)
	if !ok || len(pubs) != int(head-base) {
		t.Fatalf("CatchUp(%d) = %d pubs, ok=%v, want %d", base, len(pubs), ok, head-base)
	}
	for i, pub := range pubs {
		if pub.Seq != base+uint64(i)+1 {
			t.Fatalf("pub %d has seq %d, want %d", i, pub.Seq, base+uint64(i)+1)
		}
	}

	// Save → truncate; a follower parked before the truncation point
	// must be told to take a full seed.
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if base > 0 {
		if _, ok := p.CatchUp("live", base-1); ok {
			t.Fatal("CatchUp offered a range the truncated log cannot cover")
		}
	}
	// At head there is nothing to ship — empty but ok.
	if pubs, ok := p.CatchUp("live", head); !ok || len(pubs) != 0 {
		t.Fatalf("CatchUp at head = %d pubs, ok=%v", len(pubs), ok)
	}
}

// TestWALStatusLag: health rows report how far the log runs ahead of
// the newest save.
func TestWALStatusLag(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, _ := newWALPersister(t, dir, PersistOptions{})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	info, ok := p.WALStatus("live")
	if !ok || info.Lag != 0 {
		t.Fatalf("post-save WAL status = %+v, ok=%v", info, ok)
	}
	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(821, 64), numRow(822, 65)}, true); err != nil {
		t.Fatal(err)
	}
	info, ok = p.WALStatus("live")
	if !ok || info.Lag == 0 {
		t.Fatalf("WAL status after unsaved acks = %+v, ok=%v", info, ok)
	}
	if info.SyncedSeq != info.LastSeq {
		t.Fatalf("strict sync mode left unsynced acks: %+v", info)
	}
}

// TestWALOrphanLogFailsRestore: a log directory with no base snapshot
// holds acked writes that cannot be reconstructed — restore must fail
// loudly rather than serve as if they never happened.
func TestWALOrphanLogFailsRestore(t *testing.T) {
	dir := t.TempDir()
	m := wal.NewManager(dir, wal.Options{})
	if err := m.Append("ghost", wal.Record{Seq: 1, Epoch: 1, Entries: []qlog.Entry{entry("SELECT a FROM t")}}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	reg := api.NewRegistry()
	ing := New(reg, Options{})
	m2 := wal.NewManager(dir, wal.Options{})
	defer m2.Close()
	if _, err := NewPersister(dir, ing, PersistOptions{WAL: m2}).Restore(); err == nil {
		t.Fatal("restore over an orphaned WAL succeeded")
	}
}

// TestWALLegacySnapPromoted: a bare .snap written before WAL mode (or
// by a crash between base write and manifest write) still restores,
// gains a manifest, and anchors the replayed tail.
func TestWALLegacySnapPromoted(t *testing.T) {
	dir := t.TempDir()
	reg1 := api.NewRegistry()
	ing1 := New(reg1, Options{})
	if _, err := ing1.Host("live", "legacy", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersister(dir, ing1, PersistOptions{}).SaveAll(); err != nil {
		t.Fatal(err)
	}

	reg2 := api.NewRegistry()
	ing2 := New(reg2, Options{})
	m := wal.NewManager(dir, wal.Options{})
	defer m.Close()
	p := NewPersister(dir, ing2, PersistOptions{WAL: m})
	if _, err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	man, err := store.LoadManifest(dir, "live")
	if err != nil {
		t.Fatal(err)
	}
	if man == nil {
		t.Fatal("legacy snapshot was not promoted to a manifest")
	}
	// And the promoted interface journals from here on.
	if _, err := ing2.SubmitRows("live", "t", [][]engine.Value{numRow(950, 45)}, true); err != nil {
		t.Fatal(err)
	}
	if st, ok := m.Status("live"); !ok || st.LastSeq == 0 {
		t.Fatalf("promoted interface not journaling: %+v", st)
	}
}

// TestWALRemoveSnapshotDropsLog: unhosting removes the manifest, the
// delta chain and the log directory, so the interface cannot
// resurrect — and cannot trip the orphan check.
func TestWALRemoveSnapshotDropsLog(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, _ := newWALPersister(t, dir, PersistOptions{})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(840, 66)}, true); err != nil {
		t.Fatal(err)
	}
	if err := p.RemoveSnapshot("live"); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		t.Fatalf("durable state survived removal: %s", e.Name())
	}
}
