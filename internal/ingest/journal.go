package ingest

// Journal is the durability half of the publish contract, the way
// PublishHook is the replication half: every epoch-bumping publish —
// a re-mined log batch, a row append, a bare epoch bump — is offered
// to the journal before the ack returns, under the same per-feed lock
// the publish happened under. A journal error fails the ack: a client
// never holds an acknowledgment for a write the log could lose.
//
// The journal fires on BOTH sides of replication: on the owner
// (before the replication hook, so a write is durable locally before
// it fans out) and on followers applying the owner's stream (so a
// restarted follower replays to its applied position instead of
// demanding a full re-seed). Implementations must be idempotent on
// sequence numbers — restore-time replay drives the same Apply paths
// that journal live traffic, and re-offering an already-logged
// sequence must be a no-op, not a duplicate record.
type Journal interface {
	Append(id string, p Publication) error
}

// SetJournal installs (or with nil, clears) the durability journal.
func (ing *Ingester) SetJournal(j Journal) {
	ing.hookMu.Lock()
	ing.journal = j
	ing.hookMu.Unlock()
}

func (ing *Ingester) journalFor() Journal {
	ing.hookMu.RLock()
	j := ing.journal
	ing.hookMu.RUnlock()
	return j
}

// journalLocked offers one publication to the journal. Caller holds
// f.mu and has already published the swap; an error fails the
// triggering ack.
func (ing *Ingester) journalLocked(f *feed, p Publication) error {
	j := ing.journalFor()
	if j == nil {
		return nil
	}
	if err := j.Append(f.hosted.ID, p); err != nil {
		f.lastError = err.Error()
		return err
	}
	return nil
}
