// Package ingest is the streaming half of the pipeline: it accepts
// query-log entries for interfaces that are already being served,
// buffers them per interface, re-mines incrementally (via core.Miner,
// which reuses the interaction graph and the mapper's partition state
// so an append costs O(K·window) tree comparisons instead of a full
// O(n·window) re-mine) and hot-swaps the result into the serving
// registry under a bumped epoch. The batch pipeline turns a frozen log
// into a dashboard; this package keeps the dashboard improving while
// users keep querying — the "logs as the system API" premise applied
// to a log that is still being written.
//
// Entry points: HTTP (the server's POST /interfaces/{id}/log routes to
// Submit), direct calls (pi.Ingest) and file tailing (Tail, which
// follows a growing log file the way tail -f does). An Ingester
// implements api.Ingestor and api.IngestStatuser, so wiring it
// into a server enables the endpoint and the /healthz ingest rows.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/store"
)

// Options configure buffering and flushing.
type Options struct {
	// BatchSize is the buffered-entry count that triggers an inline
	// flush (re-mine + swap) during Submit. Default 8.
	BatchSize int
	// MaxBuffer bounds the per-interface buffer. A submission that
	// would overflow it flushes inline (backpressure through mining
	// latency instead of unbounded memory — or data loss). Default 4096.
	MaxBuffer int
	// FlushInterval is the background cadence at which Run flushes
	// buffers that never filled a batch. Default 2s.
	FlushInterval time.Duration
	// RowBatchSize is the buffered dataset-row count that triggers an
	// inline store publish + hot swap during SubmitRows. Default 256.
	RowBatchSize int
	// MaxRowBuffer caps one table's row buffer. A submission that would
	// overflow the cap drains the buffer inline first (backpressure
	// through publish latency); one that cannot fit even into a drained
	// buffer is rejected with a structured error instead of growing
	// memory without bound. Default 65536.
	MaxRowBuffer int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 8
	}
	if o.MaxBuffer <= 0 {
		o.MaxBuffer = 4096
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 2 * time.Second
	}
	if o.RowBatchSize <= 0 {
		o.RowBatchSize = 256
	}
	if o.MaxRowBuffer <= 0 {
		o.MaxRowBuffer = 65536
	}
	return o
}

// feed is one interface's ingestion state: the retained miner, the
// entry buffer and the counters. feed.mu serializes mining and
// swapping for the interface; query traffic never takes it.
type feed struct {
	hosted *api.Hosted
	mu     sync.Mutex
	miner  *core.Miner
	store  *store.Store
	buf    []qlog.Entry

	// sealed marks a feed mid-handoff (DetachAtEpoch): submissions that
	// already resolved the feed pointer but acquire mu after the seal
	// must be rejected, not acknowledged into a detached buffer.
	sealed bool

	// rowBuf holds dataset rows waiting for the next store publish,
	// keyed by the submitted table name; rowBuffered is their total.
	rowBuf      map[string][][]engine.Value
	rowBuffered int

	// seq counts the feed's epoch-bumping publishes — the per-interface
	// monotone sequence number the replication stream rides on
	// (replicate.go). Seeded snapshots resume it.
	seq uint64

	accepted     uint64
	dropped      uint64
	flushes      uint64
	fullRemines  uint64
	rowsAppended uint64
	rowFlushes   uint64
	rowsMutated  uint64
	mutations    uint64
	lastError    string
}

// Ingester routes submitted log entries to per-interface feeds. It is
// safe for concurrent use.
type Ingester struct {
	reg  *api.Registry
	opts Options

	mu    sync.RWMutex
	feeds map[string]*feed

	// hook, when set, observes every epoch-bumping publish (see
	// replicate.go), and journal, when set, makes each one durable
	// before its ack (see journal.go). Guarded separately from mu so
	// installing them never contends with feed routing.
	hookMu  sync.RWMutex
	hook    PublishHook
	journal Journal
}

// New returns an ingester over the registry.
func New(reg *api.Registry, opts Options) *Ingester {
	return &Ingester{reg: reg, opts: opts.withDefaults(), feeds: make(map[string]*feed)}
}

// Host mines the log, registers the interface for serving AND attaches
// a live feed, so subsequent Submit calls evolve it. This is the
// live-path counterpart of mining once and calling Registry.Add. The
// dataset is wrapped in a copy-on-write store (internal/store): the
// interface serves immutable store snapshots, and SubmitRows grows the
// dataset under the same epoch discipline that Submit applies to the
// interface. The caller must not mutate db after handing it over.
func (ing *Ingester) Host(id, title string, log *qlog.Log, db *engine.DB, opts core.LiveOptions) (*api.Hosted, error) {
	m, err := core.NewMiner(log, opts)
	if err != nil {
		return nil, fmt.Errorf("ingest: mine %q: %w", id, err)
	}
	return ing.host(id, title, m, store.FromDB(db), 1, 0)
}

// host registers a mined interface backed by a store at the given
// starting epoch and replication sequence — shared by Host (fresh,
// epoch 1, seq 0) and the snapshot paths (saved epoch/seq).
func (ing *Ingester) host(id, title string, m *core.Miner, st *store.Store, epoch, seq uint64) (*api.Hosted, error) {
	// Auto-select secondary indexes from the mined interface: every
	// (table, column) pair the initial query's equality/IN predicates
	// touch gets a sorted index before the first snapshot is taken, so
	// widget-shaped lookups are index-accelerated from the first serve.
	// Enabling an index republishes at the same data epoch (it changes
	// no visible rows), and the store re-applies the choice to tables
	// added later, so the restore/failover/shard paths through here get
	// identical treatment.
	if iface := m.Interface(); iface != nil && iface.Initial != nil {
		st.EnableIndexes(engine.PredicateColumns(iface.Initial))
	}
	h, err := ing.reg.AddAt(id, title, m.Interface(), st.Snapshot(), epoch)
	if err != nil {
		return nil, err
	}
	f := &feed{hosted: h, miner: m, store: st, rowBuf: map[string][][]engine.Value{}, seq: seq}
	ing.mu.Lock()
	ing.feeds[id] = f
	ing.mu.Unlock()
	registerFeedMetrics(id, f)
	return h, nil
}

// PreparedSnapshot is a snapshot rebuilt and re-mined but not yet
// hosted — the fallible half of HostSnapshot, split out so a caller
// replacing an existing copy (shard re-accept) can finish every
// failure-prone step before tearing the old copy down.
type PreparedSnapshot struct {
	snap  *store.Snapshot
	miner *core.Miner
	st    *store.Store
}

// PrepareSnapshot rebuilds a snapshot into a hostable state with no
// side effects on the ingester or registry: the store loads the saved
// tables, funcs (optional) re-attaches table-valued functions a
// snapshot cannot carry, and the saved log re-mines to exactly the
// interface that was serving.
func (ing *Ingester) PrepareSnapshot(snap *store.Snapshot, live core.LiveOptions, funcs func(id string, st *store.Store)) (*PreparedSnapshot, error) {
	if live.Generate.Library == nil {
		live = core.DefaultLiveOptions()
	}
	st, err := snap.Restore()
	if err != nil {
		return nil, fmt.Errorf("ingest: host snapshot %q: %w", snap.ID, err)
	}
	if funcs != nil {
		funcs(snap.ID, st)
	}
	m, err := core.NewMiner(snap.RestoredLog(), live)
	if err != nil {
		return nil, fmt.Errorf("ingest: host snapshot %q: mine saved log: %w", snap.ID, err)
	}
	return &PreparedSnapshot{snap: snap, miner: m, st: st}, nil
}

// HostPrepared hosts a prepared snapshot at the given epoch with a
// live feed attached. The feed resumes the snapshot's replication
// sequence, so a seeded follower continues the owner's stream where
// the seed frame left off.
func (ing *Ingester) HostPrepared(p *PreparedSnapshot, epoch uint64) (*api.Hosted, error) {
	return ing.host(p.snap.ID, p.snap.Title, p.miner, p.st, epoch, p.snap.Seq)
}

// HostSnapshot is PrepareSnapshot + HostPrepared: rebuild and host an
// interface from a snapshot at the given epoch. Shared by the
// restore-on-boot path (which hosts at the saved epoch) and the
// shard-accept path (which hosts at saved epoch + 1 so cursors minted
// by the relinquishing shard expire instead of silently paging a
// restored result set).
func (ing *Ingester) HostSnapshot(snap *store.Snapshot, live core.LiveOptions, funcs func(id string, st *store.Store), epoch uint64) (*api.Hosted, error) {
	p, err := ing.PrepareSnapshot(snap, live, funcs)
	if err != nil {
		return nil, err
	}
	return ing.HostPrepared(p, epoch)
}

// Capture freezes one live feed's durable state into a snapshot:
// (accumulated log, published tables, epochs). The capture shares only
// immutable data — a log copy and published table versions — so
// callers can serialize it without blocking ingestion or serving.
// Buffered-but-unflushed entries are not included; callers that need
// them flush first.
func (ing *Ingester) Capture(id string) (*store.Snapshot, error) {
	f, err := ing.feed(id)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return &store.Snapshot{
		ID:        f.hosted.ID,
		Title:     f.hosted.Title,
		Epoch:     f.hosted.Epoch(),
		DataEpoch: f.store.Epoch(),
		Seq:       f.seq,
		Log:       f.miner.Log().Entries,
		Tables:    f.store.CaptureTables(),
	}, nil
}

// Detach removes the interface's live feed, so further submissions are
// rejected instead of evolving an interface that is no longer hosted.
// Entries still buffered in the feed are discarded with it — callers
// that care flush first. Implements api.IngestDetacher (the
// DeleteInterface and shard-relinquish paths).
func (ing *Ingester) Detach(id string) {
	ing.mu.Lock()
	delete(ing.feeds, id)
	ing.mu.Unlock()
}

// DetachAtEpoch is the atomic CAS half of a shard handoff: it drains
// the feed's buffers, verifies the interface is still at the expected
// epoch, and — only on a match — seals the feed against further
// submissions and detaches it, all without releasing the feed lock
// between the check and the seal. Every write path (Submit,
// SubmitRows, Flush) publishes under the same lock, so a write either
// lands before the check (bumping the epoch and failing the CAS, so
// the caller re-exports) or after the seal (rejected, never
// acknowledged) — an acknowledged write can never be silently dropped
// by a concurrent handoff. expectEpoch 0 skips the check (forced
// handoff). Returns the epoch the detach happened at (or the current
// epoch alongside ErrEpochMismatch).
func (ing *Ingester) DetachAtEpoch(id string, expectEpoch uint64) (uint64, error) {
	f, err := ing.feed(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	if err := ing.flushRowsLocked(f); err != nil {
		cur := f.hosted.Epoch()
		f.mu.Unlock()
		return cur, err
	}
	if _, err := ing.flushLocked(f); err != nil {
		cur := f.hosted.Epoch()
		f.mu.Unlock()
		return cur, err
	}
	cur := f.hosted.Epoch()
	if expectEpoch != 0 && cur != expectEpoch {
		f.mu.Unlock()
		return cur, fmt.Errorf("ingest: %q at epoch %d, expected %d: %w", id, cur, expectEpoch, ErrEpochMismatch)
	}
	f.sealed = true
	f.mu.Unlock()
	ing.Detach(id)
	return cur, nil
}

// Store returns the versioned store backing a live-hosted interface.
func (ing *Ingester) Store(id string) (*store.Store, error) {
	f, err := ing.feed(id)
	if err != nil {
		return nil, err
	}
	return f.store, nil
}

// ErrNoFeed reports an interface with no live feed (hosted without
// ingestion, or already detached). Matched with errors.Is.
var ErrNoFeed = errors.New("has no live feed (hosted without ingestion?)")

// ErrEpochMismatch reports a DetachAtEpoch whose expected epoch no
// longer matches — writes published since the caller captured it.
// Matched with errors.Is.
var ErrEpochMismatch = errors.New("interface epoch advanced past the expected handoff epoch")

func (ing *Ingester) feed(id string) (*feed, error) {
	ing.mu.RLock()
	f, ok := ing.feeds[id]
	ing.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ingest: interface %q %w", id, ErrNoFeed)
	}
	return f, nil
}

// Submit buffers entries for the interface and flushes inline when the
// batch threshold is reached. A submission larger than the remaining
// buffer flushes mid-way and keeps going, so no entry is ever silently
// discarded: Submit either accepts everything (Accepted == len(entries))
// or returns the re-mining error that stopped it, with Accepted telling
// how far it got. Implements api.Ingestor.
func (ing *Ingester) Submit(id string, entries []qlog.Entry) (api.IngestAck, error) {
	f, err := ing.feed(id)
	if err != nil {
		return api.IngestAck{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sealed {
		return api.IngestAck{}, fmt.Errorf("ingest: interface %q %w", id, ErrNoFeed)
	}
	var ack api.IngestAck
	for len(entries) > 0 {
		room := ing.opts.MaxBuffer - len(f.buf)
		if room <= 0 {
			// Buffer full (flushes must have been failing, or MaxBuffer <
			// BatchSize): drain it before accepting more.
			dropped, err := ing.flushLocked(f)
			ack.Flushed = true
			ack.Dropped += dropped
			if err != nil {
				ack.Buffered = len(f.buf)
				ack.Epoch = f.hosted.Epoch()
				return ack, err
			}
			continue
		}
		take := min(room, len(entries))
		f.buf = append(f.buf, entries[:take]...)
		entries = entries[take:]
		f.accepted += uint64(take)
		ack.Accepted += take
		if len(f.buf) >= ing.opts.BatchSize {
			dropped, err := ing.flushLocked(f)
			ack.Flushed = true
			ack.Dropped += dropped
			if err != nil {
				ack.Buffered = len(f.buf)
				ack.Epoch = f.hosted.Epoch()
				return ack, err
			}
		}
	}
	ack.Buffered = len(f.buf)
	ack.Epoch = f.hosted.Epoch()
	return ack, nil
}

// Flush re-mines any buffered entries and publishes any buffered rows
// for the interface immediately, returning the current epoch.
// Implements api.Ingestor.
func (ing *Ingester) Flush(id string) (uint64, error) {
	f, err := ing.feed(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := ing.flushRowsLocked(f); err != nil {
		return f.hosted.Epoch(), err
	}
	if _, err := ing.flushLocked(f); err != nil {
		return f.hosted.Epoch(), err
	}
	return f.hosted.Epoch(), nil
}

// flushLocked re-mines the buffered entries and hot-swaps the updated
// interface. Caller holds f.mu. Returns how many entries were dropped
// as unparseable.
func (ing *Ingester) flushLocked(f *feed) (int, error) {
	if len(f.buf) == 0 {
		return 0, nil
	}
	entries := f.buf
	f.buf = nil
	iface, st, err := f.miner.Append(entries)
	f.dropped += uint64(st.ParseErrors)
	if st.LastParseError != "" {
		f.lastError = st.LastParseError
	}
	if err != nil {
		// A failed Append made no state changes: put the batch back so
		// a later flush retries it instead of silently losing it.
		f.buf = append(entries, f.buf...)
		f.lastError = err.Error()
		return st.ParseErrors, fmt.Errorf("ingest: re-mine %q: %w", f.hosted.ID, err)
	}
	if st.FullRemine {
		f.fullRemines++
	}
	if st.Added == 0 {
		// Nothing mined (every entry dropped): keep the epoch, and with
		// it the caches — nothing changed.
		return st.ParseErrors, nil
	}
	f.flushes++
	if _, err := f.hosted.Swap(iface, nil); err != nil {
		f.lastError = err.Error()
		return st.ParseErrors, fmt.Errorf("ingest: swap %q: %w", f.hosted.ID, err)
	}
	// Replicate the published batch before the ack propagates: a hook
	// error (the owner was fenced off by a newer term) fails the
	// submission so the client never holds an ack a promoted follower
	// lacks.
	if err := ing.firePublish(f, entries, nil, nil); err != nil {
		return st.ParseErrors, err
	}
	return st.ParseErrors, nil
}

// FlushAll flushes every feed; errors are recorded in the feeds'
// status rather than returned (the background loop has nobody to tell).
func (ing *Ingester) FlushAll() {
	ing.mu.RLock()
	ids := make([]string, 0, len(ing.feeds))
	for id := range ing.feeds {
		ids = append(ids, id)
	}
	ing.mu.RUnlock()
	for _, id := range ids {
		_, _ = ing.Flush(id)
	}
}

// Run flushes straggler buffers on the configured interval until ctx
// is done — Submit already flushes full batches inline; Run exists so
// a trickle of entries below BatchSize still lands.
func (ing *Ingester) Run(ctx context.Context) {
	t := time.NewTicker(ing.opts.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			ing.FlushAll()
		}
	}
}

// IngestStatus implements api.IngestStatuser for /healthz.
func (ing *Ingester) IngestStatus(id string) (api.IngestStatus, bool) {
	ing.mu.RLock()
	f, ok := ing.feeds[id]
	ing.mu.RUnlock()
	if !ok {
		return api.IngestStatus{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return api.IngestStatus{
		Buffered:     len(f.buf),
		Accepted:     f.accepted,
		Dropped:      f.dropped,
		Flushes:      f.flushes,
		FullRemines:  f.fullRemines,
		RowsAppended: f.rowsAppended,
		RowsBuffered: f.rowBuffered,
		RowFlushes:   f.rowFlushes,
		RowsMutated:  f.rowsMutated,
		Mutations:    f.mutations,
		LastError:    f.lastError,
	}, true
}

// MinedLen returns how many log entries the interface's miner holds
// (initial log plus mined appends; buffered entries not yet flushed are
// excluded).
func (ing *Ingester) MinedLen(id string) (int, error) {
	f, err := ing.feed(id)
	if err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.miner.Len(), nil
}
