package ingest

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/qlog"
	"repro/internal/store"
)

// TestKillRestoreRoundTrip is the storage tentpole end to end, minus
// the actual SIGKILL (scripts/persist_smoke.sh covers the real
// process): host live, evolve the interface through log ingestion AND
// the dataset through row appends, snapshot, throw everything away,
// restore into a fresh registry, and assert the survivor serves the
// same state.
func TestKillRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// --- first life.
	reg1 := api.NewRegistry()
	ing1 := New(reg1, Options{BatchSize: 2, RowBatchSize: 2})
	h1, err := ing1.Host("live", "round trip", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ing1.Submit("live", []qlog.Entry{
		entry("SELECT a FROM t WHERE x = 30"),
		entry("SELECT a FROM t WHERE x = 31"),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ing1.SubmitRows("live", "t", [][]engine.Value{numRow(777, 30), numRow(778, 31)}, true); err != nil {
		t.Fatal(err)
	}
	p1 := NewPersister(dir, ing1, PersistOptions{})
	res, err := p1.SaveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Interfaces) != 1 || res.Interfaces[0].ID != "live" {
		t.Fatalf("snapshot result = %+v", res)
	}
	savedEpoch := h1.Epoch()
	savedWidgets := len(h1.Iface().Widgets)
	savedMined, _ := ing1.MinedLen("live")
	if res.Interfaces[0].Epoch != savedEpoch {
		t.Fatalf("snapshot epoch %d, live epoch %d", res.Interfaces[0].Epoch, savedEpoch)
	}
	if res.Interfaces[0].Rows != 52 {
		t.Fatalf("snapshot rows = %d, want 52", res.Interfaces[0].Rows)
	}

	// --- second life: nothing survives but the data dir.
	reg2 := api.NewRegistry()
	ing2 := New(reg2, Options{})
	p2 := NewPersister(dir, ing2, PersistOptions{})
	svc, restored, err := api.NewPersistentService(reg2, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored.Interfaces) != 1 || restored.Interfaces[0].ID != "live" {
		t.Fatalf("restore result = %+v", restored)
	}

	h2, ok := reg2.Get("live")
	if !ok {
		t.Fatal("restored interface not hosted")
	}
	if h2.Epoch() < savedEpoch {
		t.Fatalf("restored epoch %d went backwards from %d", h2.Epoch(), savedEpoch)
	}
	if h2.Title != "round trip" {
		t.Fatalf("restored title %q", h2.Title)
	}
	if got := len(h2.Iface().Widgets); got != savedWidgets {
		t.Fatalf("restored widgets = %d, want %d", got, savedWidgets)
	}
	if got, _ := ing2.MinedLen("live"); got != savedMined {
		t.Fatalf("restored mined log = %d entries, want %d", got, savedMined)
	}
	st2, err := ing2.Store("live")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := st2.RowCount("t"); n != 52 {
		t.Fatalf("restored table rows = %d, want 52", n)
	}

	// The restored interface answers queries — including over the rows
	// appended in the first life.
	resp, err := svc.Query("live", api.QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.RowCount == 0 {
		t.Fatal("restored interface returned no rows")
	}

	// And it keeps evolving: ingestion continues from the restored
	// miner state.
	if _, err := ing2.Submit("live", []qlog.Entry{entry("SELECT a FROM t WHERE x = 40")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ing2.Flush("live"); err != nil {
		t.Fatal(err)
	}
	if got, _ := ing2.MinedLen("live"); got != savedMined+1 {
		t.Fatalf("post-restore ingestion mined %d, want %d", got, savedMined+1)
	}
	if _, err := ing2.SubmitRows("live", "t", [][]engine.Value{numRow(900, 40)}, true); err != nil {
		t.Fatal(err)
	}
	if n, _ := st2.RowCount("t"); n != 53 {
		t.Fatalf("post-restore append rows = %d, want 53", n)
	}
}

// TestRestoreReattachesFuncs: snapshot files cannot carry function
// values; the Funcs hook re-binds them to the restored tables.
func TestRestoreReattachesFuncs(t *testing.T) {
	dir := t.TempDir()
	reg1 := api.NewRegistry()
	ing1 := New(reg1, Options{})
	if _, err := ing1.Host("live", "udf", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersister(dir, ing1, PersistOptions{}).SaveAll(); err != nil {
		t.Fatal(err)
	}

	called := ""
	reg2 := api.NewRegistry()
	ing2 := New(reg2, Options{})
	p2 := NewPersister(dir, ing2, PersistOptions{
		Funcs: func(id string, st *store.Store) {
			called = id
			st.AddFunc("now_count", func(args []engine.Value) (*engine.Table, error) {
				return engine.NewTable("r", "x"), nil
			})
		},
	})
	if _, err := p2.Restore(); err != nil {
		t.Fatal(err)
	}
	if called != "live" {
		t.Fatalf("Funcs hook called for %q", called)
	}
	st2, err := ing2.Store("live")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Snapshot().Func("now_count"); !ok {
		t.Fatal("re-attached func missing from restored catalog")
	}
}

// TestRestoreFailsLoudlyOnCorruption: a snapshot that fails its
// checksum must abort the restore, not silently skip the interface.
func TestRestoreFailsLoudlyOnCorruption(t *testing.T) {
	dir := t.TempDir()
	reg1 := api.NewRegistry()
	ing1 := New(reg1, Options{})
	if _, err := ing1.Host("live", "x", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersister(dir, ing1, PersistOptions{}).SaveAll(); err != nil {
		t.Fatal(err)
	}
	path := store.SnapFile(dir, "live")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := api.NewRegistry()
	p2 := NewPersister(dir, New(reg2, Options{}), PersistOptions{})
	if _, _, err := api.NewPersistentService(reg2, p2); err == nil {
		t.Fatal("restore from a corrupt snapshot succeeded")
	}
}

// TestSaveAllFlushesBuffered: entries and rows acknowledged but still
// buffered must be part of the snapshot.
func TestSaveAllFlushesBuffered(t *testing.T) {
	dir := t.TempDir()
	reg := api.NewRegistry()
	ing := New(reg, Options{BatchSize: 1000, RowBatchSize: 1000})
	if _, err := ing.Host("live", "buf", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.Submit("live", []qlog.Entry{entry("SELECT a FROM t WHERE x = 44")}); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.SubmitRows("live", "t", [][]engine.Value{numRow(1, 1)}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPersister(dir, ing, PersistOptions{}).SaveAll(); err != nil {
		t.Fatal(err)
	}
	snap, err := store.Load(store.SnapFile(dir, "live"))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Log) != 5 {
		t.Fatalf("snapshot log = %d entries, want 5 (buffered entry flushed)", len(snap.Log))
	}
	rows := 0
	for _, td := range snap.Tables {
		rows += len(td.Rows)
	}
	if rows != 51 {
		t.Fatalf("snapshot rows = %d, want 51 (buffered row flushed)", rows)
	}
}

// TestTailGlob: a glob pattern follows files that existed at start
// (from their end) and picks up files created afterwards (from their
// beginning).
func TestTailGlob(t *testing.T) {
	dir := t.TempDir()
	pre := filepath.Join(dir, "pre.log")
	// Pre-existing content must NOT be ingested (it is the batch log).
	if err := os.WriteFile(pre, []byte("SELECT a FROM t WHERE x = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ing, h := newIngester(t, Options{BatchSize: 1, FlushInterval: 10 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- ing.Tail(ctx, "live", filepath.Join(dir, "*.log"), 5*time.Millisecond)
	}()

	// Give the tailer a poll to seed its file set, then grow the
	// pre-existing file and create a brand new one.
	time.Sleep(25 * time.Millisecond)
	f, err := os.OpenFile(pre, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "SELECT a FROM t WHERE x = 21;")
	f.Close()
	late := filepath.Join(dir, "late.log")
	if err := os.WriteFile(late, []byte("SELECT a FROM t WHERE x = 22;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A file outside the pattern stays invisible.
	if err := os.WriteFile(filepath.Join(dir, "ignored.txt"), []byte("SELECT a FROM t WHERE x = 99;\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, _ := ing.MinedLen("live"); n == 6 { // 4 initial + 2 tailed
			break
		}
		if time.Now().After(deadline) {
			n, _ := ing.MinedLen("live")
			t.Fatalf("mined %d entries, want 6", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("tail returned %v", err)
	}

	// Both tailed values are inside a mined widget domain; 99 is not.
	hit21, hit22, hit99 := false, false, false
	for _, w := range h.Iface().Widgets {
		if !w.Domain.IsNumericRange() {
			continue
		}
		lo, hi := w.Domain.Range()
		if lo <= 21 && 21 <= hi {
			hit21 = true
		}
		if lo <= 22 && 22 <= hi {
			hit22 = true
		}
		if hi >= 99 {
			hit99 = true
		}
	}
	if !hit21 || !hit22 {
		t.Fatalf("tailed entries not mined (21=%v 22=%v)", hit21, hit22)
	}
	if hit99 {
		t.Fatal("file outside the glob was ingested")
	}
}
