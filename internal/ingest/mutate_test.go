package ingest

import (
	"errors"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/wal"
)

// tableVals flattens the interface's current table into x -> a, the
// shape the mutation tests compare before/after and across processes.
func tableVals(t *testing.T, ing *Ingester, id, table string) map[float64]float64 {
	t.Helper()
	st, err := ing.Store(id)
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := st.Snapshot().Table(table)
	if !ok {
		t.Fatalf("no table %q", table)
	}
	out := make(map[float64]float64, len(tab.Rows))
	for _, r := range tab.Rows {
		a, _ := r[0].AsNumber()
		x, _ := r[1].AsNumber()
		out[x] = a
	}
	return out
}

// TestSubmitMutationUpdateDelete drives the full DML slice through
// SQL: parse, plan against the snapshot, resolve matched rows to
// rowids, publish, swap, count.
func TestSubmitMutationUpdateDelete(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100})
	epoch0 := h.Epoch()
	seq0, _ := ing.Seq("live")

	ack, err := ing.SubmitMutation("live", "UPDATE t SET a = a + 1 WHERE x <= 10", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Table != "t" || ack.Matched != 10 || ack.Updated != 10 || ack.Deleted != 0 {
		t.Fatalf("update ack = %+v, want 10 matched/updated on t", ack)
	}
	if ack.Epoch != epoch0+1 || h.Epoch() != epoch0+1 {
		t.Fatalf("update published at epoch %d (hosted %d), want %d", ack.Epoch, h.Epoch(), epoch0+1)
	}
	vals := tableVals(t, ing, "live", "t")
	if vals[5] != 51 || vals[10] != 101 {
		t.Fatalf("SET a = a + 1 gave a(5)=%v a(10)=%v, want 51/101", vals[5], vals[10])
	}
	if vals[20] != 200 {
		t.Fatalf("row outside the predicate changed: a(20)=%v", vals[20])
	}

	ack, err = ing.SubmitMutation("live", "DELETE FROM t WHERE x > 45", 0)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Matched != 5 || ack.Deleted != 5 || ack.Updated != 0 {
		t.Fatalf("delete ack = %+v, want 5 matched/deleted", ack)
	}
	vals = tableVals(t, ing, "live", "t")
	if len(vals) != 45 {
		t.Fatalf("%d rows after delete, want 45", len(vals))
	}
	if _, alive := vals[46]; alive {
		t.Fatal("deleted row still visible")
	}

	st, ok := ing.IngestStatus("live")
	if !ok || st.RowsMutated != 15 || st.Mutations != 2 {
		t.Fatalf("status = %+v, want 15 rows mutated over 2 mutations", st)
	}
	if seq, _ := ing.Seq("live"); seq != seq0+2 {
		t.Fatalf("seq = %d, want %d (one publication per mutation)", seq, seq0+2)
	}
}

// TestSubmitMutationConflictAndZeroMatch: the conditional-write and
// no-op edges. A stale ifEpoch refuses with the structured conflict
// code and publishes nothing; a predicate matching zero rows acks
// without bumping anything; non-DML statements are rejected.
func TestSubmitMutationConflictAndZeroMatch(t *testing.T) {
	_, ing, h := newIngester(t, Options{BatchSize: 100})
	st, _ := ing.Store("live")
	cur := st.Epoch()
	seq0, _ := ing.Seq("live")
	epoch0 := h.Epoch()

	_, err := ing.SubmitMutation("live", "DELETE FROM t WHERE x = 1", cur+5)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeMutationConflict || ae.Status != http.StatusConflict {
		t.Fatalf("stale ifEpoch error = %v, want %s/409", err, api.CodeMutationConflict)
	}
	if st.Epoch() != cur || h.Epoch() != epoch0 {
		t.Fatal("refused mutation still published")
	}

	ack, err := ing.SubmitMutation("live", "DELETE FROM t WHERE x > 1000", 0)
	if err != nil || ack.Matched != 0 {
		t.Fatalf("zero-match ack = %+v, %v", ack, err)
	}
	if seq, _ := ing.Seq("live"); seq != seq0 || st.Epoch() != cur || h.Epoch() != epoch0 {
		t.Fatal("zero-match mutation published")
	}

	if _, err := ing.SubmitMutation("live", "SELECT a FROM t", 0); err == nil {
		t.Fatal("SELECT accepted as a mutation")
	}
	if _, err := ing.SubmitMutation("live", "UPDATE t SET", 0); err == nil {
		t.Fatal("malformed UPDATE accepted")
	}

	// The matching ifEpoch goes through.
	ack, err = ing.SubmitMutation("live", "UPDATE t SET a = 0 WHERE x = 1", cur)
	if err != nil || ack.Matched != 1 {
		t.Fatalf("conditional mutation at the right epoch = %+v, %v", ack, err)
	}
}

// TestSubmitMutationReplicatesToFollower: mutations ride the publish
// hook as resolved rowid sets, and a follower applying them in order
// lands on byte-identical rows and identities.
func TestSubmitMutationReplicatesToFollower(t *testing.T) {
	_, owner, _ := newIngester(t, Options{BatchSize: 100})
	follower := New(api.NewRegistry(), Options{})
	if _, err := follower.Host("live", "live test", fixtureLog(4), fixtureDB(t), core.DefaultLiveOptions()); err != nil {
		t.Fatal(err)
	}

	var pubs []Publication
	owner.SetPublishHook(func(id string, p Publication) error {
		pubs = append(pubs, p)
		return nil
	})
	if _, err := owner.SubmitMutation("live", "UPDATE t SET a = -7 WHERE x <= 3", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := owner.SubmitMutation("live", "DELETE FROM t WHERE x = 50", 0); err != nil {
		t.Fatal(err)
	}
	if len(pubs) != 2 || len(pubs[0].Muts) != 1 || len(pubs[1].Muts) != 1 {
		t.Fatalf("publications = %+v, want one mutation set each", pubs)
	}
	up := pubs[0].Muts[0]
	if up.Table != "t" || len(up.Updates) != 3 || len(up.Deletes) != 0 {
		t.Fatalf("update publication = %+v, want 3 rowid updates on t", up)
	}
	for _, u := range up.Updates {
		if u.RowID == 0 {
			t.Fatal("publication carries an unresolved rowid")
		}
	}
	if del := pubs[1].Muts[0]; len(del.Deletes) != 1 || len(del.Updates) != 0 {
		t.Fatalf("delete publication = %+v, want 1 rowid delete", del)
	}

	for _, p := range pubs {
		if err := follower.ApplyMutations("live", p.Muts, p.Epoch, p.Seq); err != nil {
			t.Fatalf("apply seq %d: %v", p.Seq, err)
		}
	}
	if !reflect.DeepEqual(tableVals(t, owner, "live", "t"), tableVals(t, follower, "live", "t")) {
		t.Fatal("follower rows diverge from owner after applying the stream")
	}
	os, _ := owner.Store("live")
	fs, _ := follower.Store("live")
	oids, _ := os.Snapshot().RowIDs("t")
	fids, _ := fs.Snapshot().RowIDs("t")
	if !reflect.DeepEqual(oids, fids) {
		t.Fatal("follower row identities diverge from owner")
	}
}

// TestWALMutationKillRestoreRoundTrip is the issue's crash-injection
// contract: an acked UPDATE/DELETE that exists only in the WAL (the
// snapshot predates it) survives a cold restart via replay, and the
// logged tail hands the same mutations to a catching-up follower.
func TestWALMutationKillRestoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	_, ing1, p1, _ := newWALPersister(t, dir, PersistOptions{})
	if _, err := p1.SaveAll(); err != nil {
		t.Fatal(err)
	}
	base, _ := ing1.Seq("live")

	// Acked but never saved: journal-only from here.
	if _, err := ing1.SubmitMutation("live", "UPDATE t SET a = a * 2 WHERE x <= 5", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ing1.SubmitMutation("live", "DELETE FROM t WHERE x >= 48", 0); err != nil {
		t.Fatal(err)
	}
	wantSeq, _ := ing1.Seq("live")
	wantVals := tableVals(t, ing1, "live", "t")
	if len(wantVals) != 47 || wantVals[5] != 100 {
		t.Fatalf("first-life state = %d rows, a(5)=%v", len(wantVals), wantVals[5])
	}

	// Follower catch-up over the same tail carries the mutation sets.
	pubs, ok := p1.CatchUp("live", base)
	if !ok || len(pubs) != 2 {
		t.Fatalf("CatchUp = %d pubs, ok=%v, want 2", len(pubs), ok)
	}
	if len(pubs[0].Muts) != 1 || len(pubs[0].Muts[0].Updates) != 5 {
		t.Fatalf("catch-up pub 0 = %+v, want 5 updates", pubs[0].Muts)
	}
	if len(pubs[1].Muts) != 1 || len(pubs[1].Muts[0].Deletes) != 3 {
		t.Fatalf("catch-up pub 1 = %+v, want 3 deletes", pubs[1].Muts)
	}

	// Cold restore: the snapshot has none of it; replay must re-apply
	// every acked mutation — zero acked-then-lost.
	ing2 := New(api.NewRegistry(), Options{})
	m2 := wal.NewManager(dir, wal.Options{})
	defer m2.Close()
	if _, err := NewPersister(dir, ing2, PersistOptions{WAL: m2}).Restore(); err != nil {
		t.Fatal(err)
	}
	if got, _ := ing2.Seq("live"); got != wantSeq {
		t.Fatalf("restored seq = %d, want %d", got, wantSeq)
	}
	if got := tableVals(t, ing2, "live", "t"); !reflect.DeepEqual(got, wantVals) {
		t.Fatalf("restored rows diverge:\ngot  %v\nwant %v", got, wantVals)
	}
}

// TestWALMutationDifferentialSave: a save after a mutation cuts a
// Replace delta for the mutated table (a tail cannot describe an
// in-place change), and the base+delta chain restores the exact
// post-mutation state with identities intact.
func TestWALMutationDifferentialSave(t *testing.T) {
	dir := t.TempDir()
	_, ing, p, _ := newWALPersister(t, dir, PersistOptions{})
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := ing.SubmitMutation("live", "DELETE FROM t WHERE x = 7", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.SaveAll(); err != nil {
		t.Fatal(err)
	}

	man, err := store.LoadManifest(dir, "live")
	if err != nil || man == nil || len(man.Deltas) != 1 {
		t.Fatalf("manifest = %+v, %v; want one delta", man, err)
	}
	d, err := store.LoadDelta(filepath.Join(dir, man.Deltas[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Tables) != 1 || !d.Tables[0].Replace {
		t.Fatalf("delta tables = %+v, want one Replace", d.Tables)
	}
	if got := len(d.Tables[0].Rows); got != 49 {
		t.Fatalf("Replace delta carries %d rows, want the full 49", got)
	}

	ing2 := New(api.NewRegistry(), Options{})
	m2 := wal.NewManager(dir, wal.Options{})
	defer m2.Close()
	if _, err := NewPersister(dir, ing2, PersistOptions{WAL: m2}).Restore(); err != nil {
		t.Fatal(err)
	}
	vals := tableVals(t, ing2, "live", "t")
	if len(vals) != 49 {
		t.Fatalf("chain-restored rows = %d, want 49", len(vals))
	}
	if _, alive := vals[7]; alive {
		t.Fatal("deleted row resurrected by the chain restore")
	}
	// The restored interface keeps accepting mutations — identities
	// round-tripped through the Replace delta.
	if ack, err := ing2.SubmitMutation("live", "DELETE FROM t WHERE x = 8", 0); err != nil || ack.Deleted != 1 {
		t.Fatalf("post-restore mutation = %+v, %v", ack, err)
	}
}
