package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowEntry is one recorded query in the slow-query ring: the trace
// id that crossed the fleet, where the time went stage by stage, and
// what the caches did. Stage fields are milliseconds; a router entry
// reports proxyMs (time inside the downstream shard call) instead of
// the serve-side stages.
type SlowEntry struct {
	TraceID   string    `json:"traceId,omitempty"`
	Interface string    `json:"interface"`
	Source    string    `json:"source"` // "serve" or "router"
	SQL       string    `json:"sql,omitempty"`
	Epoch     uint64    `json:"epoch,omitempty"`
	Time      time.Time `json:"time"`

	TotalMS     float64 `json:"totalMs"`
	BindMS      float64 `json:"bindMs,omitempty"`
	ExecMS      float64 `json:"execMs,omitempty"`
	SerializeMS float64 `json:"serializeMs,omitempty"`
	ProxyMS     float64 `json:"proxyMs,omitempty"`

	Plan  string `json:"plan,omitempty"`  // plan cache: "hit" | "miss"
	Cache string `json:"cache,omitempty"` // result cache: "hit" | "miss"
	Error string `json:"error,omitempty"`
}

// SlowRing is a bounded in-memory ring of slow (or sampled) queries.
// The decision path (Armed/Should) is atomics only; the mutex is taken
// only when an entry is actually recorded or the ring is read.
type SlowRing struct {
	threshold atomic.Int64  // ns; 0 disables threshold capture
	sample    atomic.Int64  // record every Nth query; 0 disables
	tick      atomic.Uint64 // sampling counter
	recorded  atomic.Uint64

	mu   sync.Mutex
	buf  []SlowEntry
	next int
	full bool
}

// NewSlowRing returns a ring of the given capacity. threshold <= 0
// disables threshold capture; sampleEvery N > 0 additionally records
// every Nth query regardless of duration (N=1: record everything).
func NewSlowRing(capacity int, threshold time.Duration, sampleEvery int) *SlowRing {
	if capacity <= 0 {
		capacity = 128
	}
	r := &SlowRing{buf: make([]SlowEntry, capacity)}
	r.threshold.Store(int64(threshold))
	r.sample.Store(int64(sampleEvery))
	return r
}

// Armed reports whether any capture mode is on. Callers use it to skip
// per-stage clock reads entirely when nothing would record them.
func (r *SlowRing) Armed() bool {
	return r != nil && (r.threshold.Load() > 0 || r.sample.Load() > 0)
}

// Should reports whether a query of duration d should be recorded.
func (r *SlowRing) Should(d time.Duration) bool {
	if r == nil {
		return false
	}
	if th := r.threshold.Load(); th > 0 && int64(d) >= th {
		return true
	}
	if s := r.sample.Load(); s > 0 && r.tick.Add(1)%uint64(s) == 0 {
		return true
	}
	return false
}

// Record stores an entry, evicting the oldest when full.
func (r *SlowRing) Record(e SlowEntry) {
	if r == nil {
		return
	}
	r.recorded.Add(1)
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	r.mu.Unlock()
}

// SlowReport is the /v1/debug/slow payload.
type SlowReport struct {
	ThresholdMS float64     `json:"thresholdMs"`
	SampleEvery int64       `json:"sampleEvery"`
	Capacity    int         `json:"capacity"`
	Recorded    uint64      `json:"recorded"`
	Entries     []SlowEntry `json:"entries"`
}

// Report snapshots the ring, newest entry first.
func (r *SlowRing) Report() SlowReport {
	if r == nil {
		return SlowReport{}
	}
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	entries := make([]SlowEntry, 0, n)
	for i := 0; i < n; i++ {
		// Walk backwards from the most recent write.
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		entries = append(entries, r.buf[idx])
	}
	r.mu.Unlock()
	return SlowReport{
		ThresholdMS: float64(r.threshold.Load()) / 1e6,
		SampleEvery: r.sample.Load(),
		Capacity:    len(r.buf),
		Recorded:    r.recorded.Load(),
		Entries:     entries,
	}
}
