package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus writes every family in text exposition format 0.0.4:
// families sorted by name, cumulative histogram buckets ending in
// +Inf, `_sum`/`_count` per series, label values escaped. Lazy series
// call their closure here, which is the only place they are evaluated.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		order := make([]*series, len(f.order))
		copy(order, f.order)
		f.mu.Unlock()
		if len(order) == 0 {
			continue
		}
		bw.WriteString("# HELP ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		escapeHelp(bw, f.help)
		bw.WriteString("\n# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.k.String())
		bw.WriteByte('\n')
		for _, s := range order {
			writeSeries(bw, f, s)
		}
	}
	return bw.Flush()
}

func writeSeries(bw *bufio.Writer, f *family, s *series) {
	switch f.k {
	case kindCounter:
		writeName(bw, f.name, "", f.labels, s.values, "")
		bw.WriteByte(' ')
		v := s.c.Value()
		if s.fnU64 != nil {
			v = s.fnU64()
		}
		bw.WriteString(strconv.FormatUint(v, 10))
		bw.WriteByte('\n')
	case kindGauge:
		writeName(bw, f.name, "", f.labels, s.values, "")
		bw.WriteByte(' ')
		v := s.g.Value()
		if s.fnF64 != nil {
			v = s.fnF64()
		}
		bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		bw.WriteByte('\n')
	case kindHistogram:
		h := s.h
		var cum uint64
		for i := range h.upper {
			cum += h.counts[i].Load()
			writeName(bw, f.name, "_bucket", f.labels, s.values, h.le[i])
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatUint(cum, 10))
			bw.WriteByte('\n')
		}
		cum += h.counts[len(h.upper)].Load()
		writeName(bw, f.name, "_bucket", f.labels, s.values, "+Inf")
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
		writeName(bw, f.name, "_sum", f.labels, s.values, "")
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatFloat(float64(h.sum.Load())/h.scale, 'g', -1, 64))
		bw.WriteByte('\n')
		writeName(bw, f.name, "_count", f.labels, s.values, "")
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(cum, 10))
		bw.WriteByte('\n')
	}
}

// writeName emits `name_suffix{l1="v1",le="..."}`. The le label, when
// non-empty, is appended after the family labels (histogram buckets).
func writeName(bw *bufio.Writer, name, suffix string, labels, values []string, le string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l)
		bw.WriteString(`="`)
		escapeLabel(bw, values[i])
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(bw *bufio.Writer, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '"':
			bw.WriteString(`\"`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(bw *bufio.Writer, v string) {
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			bw.WriteString(`\\`)
		case '\n':
			bw.WriteString(`\n`)
		default:
			bw.WriteByte(c)
		}
	}
}

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Handler serves the registry in exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
