package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

// lines returns the non-comment sample lines of an exposition dump.
func lines(dump string) []string {
	var out []string
	for _, l := range strings.Split(dump, "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		out = append(out, l)
	}
	return out
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("t_requests_total", "Requests.", "route", "class")
	c.With("/v1/query/{id}", "2xx").Add(3)
	c.With("/v1/query/{id}", "5xx").Inc()
	g := r.GaugeVec("t_depth", "Depth.")
	g.With().Set(-2.5)
	r.GaugeFunc("t_lazy", "Lazy gauge.", func() float64 { return 42 })

	dump := scrape(t, r)
	for _, want := range []string{
		`t_requests_total{route="/v1/query/{id}",class="2xx"} 3`,
		`t_requests_total{route="/v1/query/{id}",class="5xx"} 1`,
		`t_depth -2.5`,
		`t_lazy 42`,
		"# TYPE t_requests_total counter",
		"# TYPE t_depth gauge",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("exposition missing %q:\n%s", want, dump)
		}
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("t_esc_total", "Help with \\ and\nnewline.", "sql")
	c.With("SELECT \"a\\b\"\nFROM t").Inc()

	dump := scrape(t, r)
	wantHelp := `# HELP t_esc_total Help with \\ and\nnewline.`
	wantLine := `t_esc_total{sql="SELECT \"a\\b\"\nFROM t"} 1`
	if !strings.Contains(dump, wantHelp) {
		t.Errorf("help not escaped, want %q in:\n%s", wantHelp, dump)
	}
	if !strings.Contains(dump, wantLine) {
		t.Errorf("label not escaped, want %q in:\n%s", wantLine, dump)
	}
}

// TestHistogramInvariants pins the three properties every Prometheus
// consumer assumes: buckets are cumulative and non-decreasing, the
// +Inf bucket equals _count, and _sum equals the sum of observations
// in exposed units.
func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	hv := r.HistogramVec("t_lat_seconds", "Latency.", []float64{1e-6, 1e-3, 1}, "op")
	h := hv.With("query")
	obsd := []time.Duration{
		500 * time.Nanosecond, // first bucket
		2 * time.Microsecond,  // second
		time.Millisecond,      // second (inclusive upper bound)
		50 * time.Millisecond, // third
		5 * time.Second,       // +Inf
	}
	var sum time.Duration
	for _, d := range obsd {
		h.Observe(d)
		sum += d
	}

	dump := scrape(t, r)
	get := func(suffix string) float64 {
		t.Helper()
		for _, l := range lines(dump) {
			if strings.HasPrefix(l, "t_lat_seconds"+suffix) {
				f, err := strconv.ParseFloat(l[strings.LastIndexByte(l, ' ')+1:], 64)
				if err != nil {
					t.Fatalf("bad sample line %q: %v", l, err)
				}
				return f
			}
		}
		t.Fatalf("no line with suffix %q in:\n%s", suffix, dump)
		return 0
	}
	buckets := []float64{
		get(`_bucket{op="query",le="1e-06"}`),
		get(`_bucket{op="query",le="0.001"}`),
		get(`_bucket{op="query",le="1"}`),
		get(`_bucket{op="query",le="+Inf"}`),
	}
	want := []float64{1, 3, 4, 5}
	for i := range buckets {
		if buckets[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, buckets[i], want[i])
		}
		if i > 0 && buckets[i] < buckets[i-1] {
			t.Errorf("buckets not cumulative at %d: %v", i, buckets)
		}
	}
	if count := get(`_count{op="query"}`); count != buckets[3] {
		t.Errorf("_count %v != +Inf bucket %v", count, buckets[3])
	}
	if got, wantSum := get(`_sum{op="query"}`), sum.Seconds(); got < wantSum*0.999 || got > wantSum*1.001 {
		t.Errorf("_sum = %v, want ~%v", got, wantSum)
	}
	if h.Count() != 5 {
		t.Errorf("Count() = %d, want 5", h.Count())
	}
}

func TestUnitHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.UnitHistogramVec("t_batch", "Batch sizes.", []float64{1, 8, 64}).With()
	for _, n := range []int64{1, 5, 64, 100} {
		h.ObserveN(n)
	}
	dump := scrape(t, r)
	for _, want := range []string{
		`t_batch_bucket{le="1"} 1`,
		`t_batch_bucket{le="8"} 2`,
		`t_batch_bucket{le="64"} 3`,
		`t_batch_bucket{le="+Inf"} 4`,
		`t_batch_sum 170`,
		`t_batch_count 4`,
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("missing %q in:\n%s", want, dump)
		}
	}
}

func TestLazyCounterFunc(t *testing.T) {
	r := NewRegistry()
	var backing uint64 = 7
	r.CounterVec("t_lazy_total", "Lazy.", "iface").Func(func() uint64 { return backing }, "olap")
	if !strings.Contains(scrape(t, r), `t_lazy_total{iface="olap"} 7`) {
		t.Fatal("lazy counter not evaluated at scrape")
	}
	backing = 9
	if !strings.Contains(scrape(t, r), `t_lazy_total{iface="olap"} 9`) {
		t.Fatal("lazy counter not re-evaluated")
	}
}

func TestVecHandleIdentity(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("t_id_total", "x.", "a")
	if v.With("x") != v.With("x") {
		t.Error("same labels resolved to different handles")
	}
	if v.With("x") == v.With("y") {
		t.Error("different labels resolved to the same handle")
	}
	// Re-registering the family yields the same series.
	v2 := r.CounterVec("t_id_total", "x.", "a")
	if v.With("x") != v2.With("x") {
		t.Error("re-registered family lost its series")
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("t_shape_total", "x.", "a")
	defer func() {
		if recover() == nil {
			t.Error("label mismatch did not panic")
		}
	}()
	r.CounterVec("t_shape_total", "x.", "b")
}

// TestMetricsRecordZeroAlloc pins the record path — counter, gauge,
// histogram, and the slow-ring decision — at zero allocations. This is
// what lets the cached-plan query path stay at 0 allocs/op with
// instrumentation live.
func TestMetricsRecordZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("t_za_total", "x.", "iface").With("olap")
	g := r.GaugeVec("t_za_gauge", "x.").With()
	h := r.HistogramVec("t_za_seconds", "x.", LatencyBuckets, "iface", "plan").With("olap", "hit")
	ring := NewSlowRing(8, 50*time.Millisecond, 0)

	allocs := testing.AllocsPerRun(500, func() {
		c.Inc()
		c.Add(2)
		g.Set(1.5)
		g.Add(-0.5)
		h.Observe(300 * time.Nanosecond)
		h.Observe(80 * time.Millisecond)
		if ring.Should(time.Microsecond) {
			t.Fatal("1us should not pass a 50ms threshold")
		}
		_ = ring.Armed()
	})
	if allocs != 0 {
		t.Fatalf("record path allocates %.1f objects per op, want 0", allocs)
	}
}

// TestConcurrentScrapeWhileRecording drives writers on every metric
// kind while scraping in a loop; run under -race this pins the
// lock-free record path against the exposition snapshot.
func TestConcurrentScrapeWhileRecording(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("t_cc_total", "x.", "i")
	g := r.GaugeVec("t_cc_gauge", "x.", "i")
	h := r.HistogramVec("t_cc_seconds", "x.", LatencyBuckets, "i")
	ring := NewSlowRing(16, time.Nanosecond, 3)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := fmt.Sprintf("w%d", w)
			cc, gg, hh := c.With(lbl), g.With(lbl), h.With(lbl)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cc.Inc()
				gg.Add(1)
				d := time.Duration(i%1000) * time.Microsecond
				hh.Observe(d)
				if ring.Should(d) {
					ring.Record(SlowEntry{Interface: lbl, TotalMS: d.Seconds() * 1e3})
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		var b bytes.Buffer
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatalf("scrape %d: %v", i, err)
		}
		// Cumulativity must hold on every concurrent snapshot: _count
		// is derived from the same bucket loads, so +Inf == _count.
		assertCumulative(t, b.String())
		ring.Report()
	}
	close(stop)
	wg.Wait()
}

// assertCumulative checks every histogram series in a dump for
// non-decreasing buckets and +Inf == _count. It relies on the writer's
// per-series layout (buckets, then _sum, then _count), which is part
// of the exposition contract.
func assertCumulative(t *testing.T, dump string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(dump))
	last := map[string]float64{} // per-series prefix -> previous bucket value
	curInf := -1.0               // +Inf of the series currently being walked
	for sc.Scan() {
		l := sc.Text()
		if strings.HasPrefix(l, "#") || l == "" {
			continue
		}
		val := func() float64 {
			v, err := strconv.ParseFloat(l[strings.LastIndexByte(l, ' ')+1:], 64)
			if err != nil {
				t.Fatalf("bad sample line %q: %v", l, err)
			}
			return v
		}
		if i := strings.Index(l, `le="`); i >= 0 && strings.Contains(l, "_bucket") {
			v := val()
			key := l[:i]
			if v < last[key] {
				t.Fatalf("bucket regression in %q: %v < %v", l, v, last[key])
			}
			last[key] = v
			if strings.Contains(l, `le="+Inf"`) {
				curInf = v
			}
			continue
		}
		if strings.Contains(l, "_count") && curInf >= 0 {
			if v := val(); v != curInf {
				t.Fatalf("_count %v != +Inf bucket %v at %q", v, curInf, l)
			}
			curInf = -1
		}
	}
}
