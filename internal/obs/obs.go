// Package obs is the fleet's dependency-free metrics substrate: atomic
// counters, gauges, and fixed-bucket histograms behind a registry that
// exposes everything in Prometheus text format. The design constraint
// that shapes the whole package is the cached-plan query path, which
// serves a warm dashboard interaction in ~215ns: instrumentation must
// cost zero allocations and no map lookups per record. Label-resolved
// handles are therefore materialized once (at host/startup time, under
// a lock) and the record path touches only atomics.
//
// Histograms count in integer "ticks" (one tick = 1/scale of the
// exposed unit; latency histograms use scale 1e9 so a tick is a
// nanosecond and the exposed unit is seconds). Integer ticks keep the
// sum a single atomic add instead of a CAS loop on float bits, and
// bucket search an integer compare ladder.
//
// Values that something else already counts — cache hit totals, a
// hosted interface's query counter — register as lazy series
// (CounterVec.Func / GaugeVec.Func): the registry calls the closure at
// scrape time instead of paying a second atomic on the hot path. This
// is also what keeps /v1/debug and /v1/metrics from drifting: both
// read the same underlying atomics.
package obs

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the value by d (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFrom(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return floatFrom(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper
// edges in ticks; counts[len(bounds)] is the +Inf bucket. The exposed
// _count is derived from the buckets at scrape time, so the
// cumulative-bucket / +Inf / _count invariants hold by construction
// even under concurrent recording.
type Histogram struct {
	upper []int64  // tick upper bounds, ascending
	le    []string // preformatted `le` values for exposition
	scale float64  // ticks per exposed unit

	counts []atomic.Uint64 // len(upper)+1
	sum    atomic.Int64    // ticks
}

// Observe records a duration (for scale-1e9 histograms: exposed in
// seconds). Zero allocations.
func (h *Histogram) Observe(d time.Duration) { h.ObserveTicks(int64(d)) }

// ObserveN records a dimensionless value on a unit histogram
// (scale 1): batch sizes, row counts.
func (h *Histogram) ObserveN(n int64) { h.ObserveTicks(n) }

// ObserveTicks records a raw tick value.
func (h *Histogram) ObserveTicks(t int64) {
	i := 0
	for i < len(h.upper) && t > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(t)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observations in exposed units.
func (h *Histogram) Sum() float64 { return float64(h.sum.Load()) / h.scale }

// LatencyBuckets spans 250ns to 2.5s: the low end covers the cached
// in-process query path, the high end covers a cross-shard proxy stall.
var LatencyBuckets = []float64{
	250e-9, 1e-6, 5e-6, 25e-6, 100e-6, 500e-6,
	2.5e-3, 10e-3, 50e-3, 250e-3, 1, 2.5,
}

// SizeBuckets is a power-of-two ladder for batch sizes and counts.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one label combination inside a family. Exactly one of the
// value fields is used, matching the family kind; fnU64/fnF64 mark
// lazy series evaluated at scrape time.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
	fnU64  func() uint64
	fnF64  func() float64
}

type family struct {
	name    string
	help    string
	k       kind
	labels  []string
	buckets []float64 // exposed units; histogram only
	scale   float64   // histogram only

	mu    sync.Mutex
	index map[string]*series
	order []*series
}

const keySep = "\xff"

func seriesKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	var b []byte
	b = make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, keySep...)
		}
		b = append(b, v...)
	}
	return string(b)
}

// ensure returns the series for the given label values, creating it if
// needed. Called at handle-resolution time, never per record.
func (f *family) ensure(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.index[key]
	if !ok {
		vals := make([]string, len(values))
		copy(vals, values)
		s = &series{values: vals}
		switch f.k {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			s.h = newHistogram(f.buckets, f.scale)
		}
		f.index[key] = s
		f.order = append(f.order, s)
	}
	return s
}

func newHistogram(buckets []float64, scale float64) *Histogram {
	h := &Histogram{
		upper:  make([]int64, len(buckets)),
		le:     make([]string, len(buckets)),
		scale:  scale,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	for i, b := range buckets {
		h.upper[i] = int64(b * scale)
		h.le[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	return h
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	start time.Time
}

// Default is the process-wide registry every package in this repo
// instruments against. Both binaries expose it at /v1/metrics.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family), start: time.Now()}
}

// family registers (or returns the existing) family. Re-registration
// with the same shape is idempotent — tests and re-hosted interfaces
// resolve the same families repeatedly — but a kind or label mismatch
// is a programming error and panics.
func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64, scale float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.k != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		k:       k,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		scale:   scale,
		index:   make(map[string]*series),
	}
	r.fams[name] = f
	return f
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers a counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil, 0)}
}

// With resolves the handle for one label combination. Resolve once,
// record forever.
func (v *CounterVec) With(values ...string) *Counter { return v.f.ensure(values).c }

// Func registers a lazy series whose value is computed at scrape time.
// Use it when another subsystem already maintains the total.
func (v *CounterVec) Func(fn func() uint64, values ...string) {
	s := v.f.ensure(values)
	v.f.mu.Lock()
	s.fnU64 = fn
	v.f.mu.Unlock()
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil, 0)}
}

// With resolves the handle for one label combination.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.ensure(values).g }

// Func registers a lazy gauge series computed at scrape time.
func (v *GaugeVec) Func(fn func() float64, values ...string) {
	s := v.f.ensure(values)
	v.f.mu.Lock()
	s.fnF64 = fn
	v.f.mu.Unlock()
}

// GaugeFunc registers an unlabeled lazy gauge (process-level values:
// goroutine count, uptime).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	v := &GaugeVec{r.family(name, help, kindGauge, nil, nil, 0)}
	v.Func(fn)
}

// RegisterProcess registers the process-level gauges every serving
// binary exposes. Idempotent: re-registering replaces the closures.
func (r *Registry) RegisterProcess() {
	r.GaugeFunc("pi_goroutines", "Goroutines in the process.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("pi_uptime_seconds", "Seconds since the metrics registry was created.",
		func() float64 { return time.Since(r.start).Seconds() })
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a latency histogram family: bucket bounds are
// in seconds, observations are time.Durations (tick = 1ns).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets, 1e9)}
}

// UnitHistogramVec registers a dimensionless histogram family (batch
// sizes, counts): bucket bounds are plain values, observe with
// ObserveN (tick = 1 unit).
func (r *Registry) UnitHistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets, 1)}
}

// With resolves the handle for one label combination.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.ensure(values).h }

// snapshotFamilies returns the families sorted by name, for exposition.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
