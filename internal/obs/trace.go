package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// TraceHeader carries the query trace id across hops: generated at the
// edge (or accepted from the client when well-formed), echoed on every
// response, forwarded by pi/client on proxied and replicated hops, and
// attached to request-log lines, error envelopes, and slow-query ring
// entries.
const TraceHeader = "Pi-Trace-Id"

type traceKey struct{}

// WithTrace returns a context carrying the trace id.
func WithTrace(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace id carried by ctx, or "".
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// NewTraceID returns a fresh 32-hex-char id.
func NewTraceID() string {
	var b [16]byte
	rand.Read(b[:]) // never fails on supported platforms
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether a client-supplied id is safe to adopt:
// 1-64 chars of [A-Za-z0-9_-]. Anything else is replaced at the edge
// so log lines and label values stay unambiguous.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
