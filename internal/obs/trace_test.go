package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context should carry no trace id")
	}
	ctx = WithTrace(ctx, "abc-123_XYZ")
	if got := TraceID(ctx); got != "abc-123_XYZ" {
		t.Fatalf("TraceID = %q", got)
	}
	// Empty id is a no-op, preserving any outer id.
	if got := TraceID(WithTrace(ctx, "")); got != "abc-123_XYZ" {
		t.Fatalf("WithTrace(\"\") clobbered the id: %q", got)
	}
}

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("two generated ids collided")
	}
	if len(a) != 32 || !ValidTraceID(a) {
		t.Fatalf("generated id %q is not a valid 32-char id", a)
	}
}

func TestValidTraceID(t *testing.T) {
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	valid := []string{"a", "abc123", "A-b_9", string(long[:64])}
	invalid := []string{"", "has space", "semi;colon", "new\nline", `quo"te`, string(long), "héllo"}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
}

func TestSlowRingThresholdAndSampling(t *testing.T) {
	r := NewSlowRing(4, 10*time.Millisecond, 0)
	if r.Should(time.Millisecond) {
		t.Fatal("1ms recorded against a 10ms threshold")
	}
	if !r.Should(10 * time.Millisecond) {
		t.Fatal("threshold is inclusive")
	}
	// Sampling records every Nth regardless of duration.
	s := NewSlowRing(4, 0, 3)
	hits := 0
	for i := 0; i < 9; i++ {
		if s.Should(time.Nanosecond) {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("sampleEvery=3 recorded %d of 9", hits)
	}
	// Nil ring: everything is off.
	var nilRing *SlowRing
	if nilRing.Armed() || nilRing.Should(time.Hour) {
		t.Fatal("nil ring should be inert")
	}
	nilRing.Record(SlowEntry{})
	if rep := nilRing.Report(); rep.Capacity != 0 || len(rep.Entries) != 0 {
		t.Fatal("nil ring report should be empty")
	}
}

func TestSlowRingEvictionAndOrder(t *testing.T) {
	r := NewSlowRing(3, time.Nanosecond, 0)
	for i := 1; i <= 5; i++ {
		r.Record(SlowEntry{TotalMS: float64(i)})
	}
	rep := r.Report()
	if rep.Recorded != 5 || rep.Capacity != 3 {
		t.Fatalf("recorded=%d capacity=%d", rep.Recorded, rep.Capacity)
	}
	if len(rep.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(rep.Entries))
	}
	// Newest first: 5, 4, 3 — 1 and 2 evicted.
	for i, want := range []float64{5, 4, 3} {
		if rep.Entries[i].TotalMS != want {
			t.Fatalf("entry %d = %v, want %v", i, rep.Entries[i].TotalMS, want)
		}
	}
}
