package engine

import "strings"

// ColumnKind classifies one column of a ColumnarTable.
type ColumnKind int

const (
	// ColNum is a column whose every value is a canonical number or
	// NULL: stored as a []float64 with a validity mask.
	ColNum ColumnKind = iota
	// ColStr is a column whose every value is a canonical string or
	// NULL: dictionary-encoded as per-row codes into a deduplicated
	// dict, so predicates evaluate once per distinct value instead of
	// once per row.
	ColStr
	// ColMixed is anything else (booleans, mixed kinds, non-canonical
	// values): kept as boxed Values. Mixed columns can still be
	// projected and filtered through the generic per-row path, but the
	// typed kernels (group-by value ids, dictionary predicates) skip
	// them.
	ColMixed
)

// Column is one typed column vector of a ColumnarTable.
type Column struct {
	Kind ColumnKind

	// ColNum layout.
	Nums  []float64
	Nulls []bool // nil when the column has no NULLs

	// ColStr layout. Codes[i] indexes Dict; -1 encodes NULL.
	Codes []int32
	Dict  []string

	// ColMixed layout.
	Vals []Value
}

// ColumnarTable is a read-only columnar projection of a Table: typed
// column vectors the vectorized kernels (colexec.go) scan instead of
// walking [][]Value rows through the AST evaluator. It is built once
// per table per data epoch (lazily, on the first columnar-eligible
// query) and is immutable afterwards, so it is safe to share across
// any number of concurrent executions — the same discipline as the
// epoch snapshots it is derived from.
type ColumnarTable struct {
	Name string
	Cols []string
	N    int // row count

	cols   []Column
	byName map[string]int // lowercased first-occurrence column name -> index
}

// ColumnarProvider is implemented by catalogs that can serve a cached
// columnar projection of a table (a *DB, or a store snapshot). The
// columnar executor only runs against catalogs that provide one —
// building the projection per query would cost more than it saves.
type ColumnarProvider interface {
	Columnar(name string) (*ColumnarTable, bool)
}

// IndexedCatalog is implemented by catalogs that maintain secondary
// indexes (store snapshots over the MVCC row store). IndexLookup
// returns the positions — ascending row indices into Table(table) —
// whose value in col satisfies SQL equality with key, or ok=false when
// no index covers the column (callers fall back to a vector scan).
// Implementations must agree exactly with Equal semantics, including
// cross-kind numeric coercion ("5" = 5).
type IndexedCatalog interface {
	IndexLookup(table, col string, key Value) ([]int32, bool)
}

// BuildColumnar converts a row-major table into its columnar
// projection. Classification is strict: a column is numeric only if
// every value is byte-identical to Num(v.Num) or Null(), and a string
// column only if every value is byte-identical to Str(v.Str) or
// Null(), so values the kernels reconstruct are provably identical to
// the originals. Anything else stays boxed (ColMixed).
func BuildColumnar(t *Table) *ColumnarTable {
	ct := &ColumnarTable{
		Name:   t.Name,
		Cols:   t.Cols,
		N:      len(t.Rows),
		cols:   make([]Column, len(t.Cols)),
		byName: make(map[string]int, len(t.Cols)),
	}
	for i, c := range t.Cols {
		key := strings.ToLower(c)
		if _, dup := ct.byName[key]; !dup {
			ct.byName[key] = i
		}
	}
	for ci := range t.Cols {
		ct.cols[ci] = buildColumn(t.Rows, ci)
	}
	return ct
}

func buildColumn(rows [][]Value, ci int) Column {
	allNum, allStr := true, true
	for _, r := range rows {
		v := r[ci]
		if v == (Value{Kind: KindNull}) {
			continue
		}
		if v != Num(v.Num) {
			allNum = false
		}
		if v != Str(v.Str) {
			allStr = false
		}
		if !allNum && !allStr {
			break
		}
	}
	switch {
	case allNum:
		col := Column{Kind: ColNum, Nums: make([]float64, len(rows))}
		for i, r := range rows {
			v := r[ci]
			if v.IsNull() {
				if col.Nulls == nil {
					col.Nulls = make([]bool, len(rows))
				}
				col.Nulls[i] = true
				continue
			}
			col.Nums[i] = v.Num
		}
		return col
	case allStr:
		col := Column{Kind: ColStr, Codes: make([]int32, len(rows))}
		codes := make(map[string]int32)
		for i, r := range rows {
			v := r[ci]
			if v.IsNull() {
				col.Codes[i] = -1
				continue
			}
			code, ok := codes[v.Str]
			if !ok {
				code = int32(len(col.Dict))
				col.Dict = append(col.Dict, v.Str)
				codes[v.Str] = code
			}
			col.Codes[i] = code
		}
		return col
	default:
		col := Column{Kind: ColMixed, Vals: make([]Value, len(rows))}
		for i, r := range rows {
			col.Vals[i] = r[ci]
		}
		return col
	}
}

// colIndexOf resolves a column name (case-insensitive, first
// occurrence wins — the same rule the row-at-a-time binding lookup
// applies) to its position, or -1.
func (ct *ColumnarTable) colIndexOf(name string) int {
	if i, ok := ct.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// valueAt reconstructs the Value at (column ci, row i). For ColNum and
// ColStr columns the reconstruction is byte-identical to the original
// by the strict classification in BuildColumnar.
func (ct *ColumnarTable) valueAt(ci int, i int32) Value {
	col := &ct.cols[ci]
	switch col.Kind {
	case ColNum:
		if col.Nulls != nil && col.Nulls[i] {
			return Null()
		}
		return Num(col.Nums[i])
	case ColStr:
		code := col.Codes[i]
		if code < 0 {
			return Null()
		}
		return Str(col.Dict[code])
	default:
		return col.Vals[i]
	}
}
