package engine

import (
	"fmt"
	"strings"
)

// ExecColumnar runs a compiled columnar plan against the catalog's
// cached column vectors. The second return reports whether the plan
// could run here at all: false means "use the row path" (no columnar
// provider, unknown/unsupported column, qualifier mismatch) and
// carries no error. When it does run, the result is value-identical to
// Exec on the same catalog: same column names, same row order, same
// Value structs bit-for-bit.
func ExecColumnar(cat Catalog, p *ColPlan) (*Table, bool, error) {
	prov, ok := cat.(ColumnarProvider)
	if !ok {
		return nil, false, nil
	}
	ct, ok := prov.Columnar(p.Table)
	if !ok {
		return nil, false, nil
	}
	alias := p.alias
	if alias == "" {
		alias = ct.Name
	}
	resolve := func(r colRef) int {
		if r.qual != "" && !strings.EqualFold(r.qual, alias) {
			return -1
		}
		return ct.colIndexOf(r.name)
	}

	predCols := make([]int, len(p.preds))
	for i := range p.preds {
		if predCols[i] = resolve(p.preds[i].col); predCols[i] < 0 {
			return nil, false, nil
		}
	}
	groupCols := make([]int, len(p.groupBy))
	for i, r := range p.groupBy {
		gi := resolve(r)
		if gi < 0 || ct.cols[gi].Kind == ColMixed {
			return nil, false, nil
		}
		groupCols[i] = gi
	}
	projCols := make([]int, len(p.projs))
	for i := range p.projs {
		pj := &p.projs[i]
		projCols[i] = -1
		if pj.kind == projCol || (pj.kind == projAgg && pj.agg != aggCountStar) {
			if projCols[i] = resolve(pj.col); projCols[i] < 0 {
				return nil, false, nil
			}
		}
	}

	// Selection: start from a secondary-index equality lookup when one
	// applies, then narrow with the vectorized predicate kernels.
	var sel []int32
	selAll := true
	usedIdx := -1
	if ic, ok := cat.(IndexedCatalog); ok {
		for i := range p.preds {
			if p.preds[i].op != "=" {
				continue
			}
			if pos, ok := ic.IndexLookup(p.Table, p.preds[i].col.name, p.preds[i].lit); ok {
				sel, selAll, usedIdx = pos, false, i
				break
			}
		}
	}
	for i := range p.preds {
		if i == usedIdx {
			continue
		}
		f, ok := ct.predEval(&p.preds[i], predCols[i])
		if !ok {
			return nil, false, nil
		}
		if selAll {
			sel = make([]int32, 0, ct.N/4+1)
			for r := int32(0); r < int32(ct.N); r++ {
				if f(r) {
					sel = append(sel, r)
				}
			}
			selAll = false
		} else {
			kept := sel[:0]
			for _, r := range sel {
				if f(r) {
					kept = append(kept, r)
				}
			}
			sel = kept
		}
	}

	outCols, out, err := ct.project(p, alias, sel, selAll, groupCols, projCols)
	if err != nil {
		return nil, true, err
	}
	if p.limit >= 0 && p.limit < len(out) {
		out = out[:p.limit]
	}
	return &Table{Name: "result", Cols: outCols, Rows: out}, true, nil
}

func (ct *ColumnarTable) project(p *ColPlan, alias string, sel []int32, selAll bool, groupCols, projCols []int) ([]string, [][]Value, error) {
	each := func(f func(i int32) bool) {
		if selAll {
			for i := int32(0); i < int32(ct.N); i++ {
				if !f(i) {
					return
				}
			}
			return
		}
		for _, i := range sel {
			if !f(i) {
				return
			}
		}
	}

	if !p.grouped {
		var outCols []string
		var outIdx []int
		for k, pj := range p.projs {
			if pj.kind == projStar {
				// Single-source star: the qualifier either matches the
				// binding alias (all columns) or nothing.
				if pj.starQual == "" || strings.EqualFold(alias, pj.starQual) {
					for ci, c := range ct.Cols {
						outCols = append(outCols, c)
						outIdx = append(outIdx, ci)
					}
				}
				continue
			}
			outCols = append(outCols, pj.name)
			outIdx = append(outIdx, projCols[k])
		}
		var out [][]Value
		each(func(i int32) bool {
			if p.limit >= 0 && len(out) >= p.limit {
				return false
			}
			if len(outIdx) == 0 {
				out = append(out, nil)
				return true
			}
			row := make([]Value, len(outIdx))
			for k, ci := range outIdx {
				row[k] = ct.valueAt(ci, i)
			}
			out = append(out, row)
			return true
		})
		return outCols, out, nil
	}

	// Aggregated mode: one pass assigns group ids in first-appearance
	// order and folds every aggregate as rows stream by, mirroring the
	// row path's per-group accumulation order (groups collect rows in
	// row order, so streaming row-major gives identical float sums and
	// identical min/max tie-breaks).
	keyers := make([]groupKeyer, len(groupCols))
	for k, gi := range groupCols {
		keyers[k] = newGroupKeyer(&ct.cols[gi])
	}
	gkeys := map[[maxGroupCols]int32]int32{}
	var firstPos []int32
	var sizes []int64
	aggs := make([]aggAcc, len(p.projs))
	for k := range p.projs {
		aggs[k] = aggAcc{kind: p.projs[k].agg, ci: projCols[k], ct: ct}
	}
	grow := func(first int32) int32 {
		gid := int32(len(firstPos))
		firstPos = append(firstPos, first)
		sizes = append(sizes, 0)
		for k := range aggs {
			aggs[k].grow()
		}
		return gid
	}
	if len(groupCols) == 0 {
		grow(-1) // global aggregation always yields exactly one group
	}
	each(func(i int32) bool {
		var gid int32
		if len(groupCols) == 0 {
			gid = 0
			if sizes[0] == 0 {
				firstPos[0] = i
			}
		} else {
			var key [maxGroupCols]int32
			for k := range keyers {
				key[k] = keyers[k].id(i)
			}
			var ok bool
			gid, ok = gkeys[key]
			if !ok {
				gid = grow(i)
				gkeys[key] = gid
			}
		}
		sizes[gid]++
		for k := range aggs {
			aggs[k].add(gid, i)
		}
		return true
	})

	// Row-path quirk, preserved: with no GROUP BY and an empty
	// selection, groupRows hands the evaluator a nil group, and every
	// aggregate errors with "outside grouping context" — the global
	// aggregate over zero rows never returns 0/NULL. Surface the same
	// error for the first aggregate projection, left to right.
	if len(groupCols) == 0 && sizes[0] == 0 {
		for k := range p.projs {
			if p.projs[k].kind == projAgg {
				return nil, nil, fmt.Errorf("engine: aggregate %s outside grouping context", aggName(p.projs[k].agg))
			}
		}
	}

	outCols := make([]string, len(p.projs))
	for k := range p.projs {
		outCols[k] = p.projs[k].name
	}
	var out [][]Value
	for gid := range firstPos {
		row := make([]Value, len(p.projs))
		for k := range p.projs {
			pj := &p.projs[k]
			if pj.kind == projCol {
				if fp := firstPos[gid]; fp >= 0 {
					row[k] = ct.valueAt(projCols[k], fp)
				}
				continue
			}
			v, err := aggs[k].finalize(int32(gid), sizes[gid])
			if err != nil {
				return nil, nil, err
			}
			row[k] = v
		}
		out = append(out, row)
	}
	return outCols, out, nil
}

func aggName(k aggKind) string {
	switch k {
	case aggCountStar, aggCount:
		return "count"
	case aggSum:
		return "sum"
	case aggAvg:
		return "avg"
	case aggMin:
		return "min"
	case aggMax:
		return "max"
	}
	return "?"
}

// groupKeyer maps row positions of one group-by column to small dense
// ids whose equality matches Value.Key() equality: dictionary codes
// for string columns; per-distinct-float ids (with one shared id for
// NaN, whose Key renders "NaN") for numeric columns. NULL is id -1,
// matching Key's single NULL bucket.
type groupKeyer struct {
	col    *Column
	numIDs map[float64]int32
	nanID  int32
	next   int32
}

func newGroupKeyer(col *Column) groupKeyer {
	k := groupKeyer{col: col, nanID: -2}
	if col.Kind == ColNum {
		k.numIDs = make(map[float64]int32)
	}
	return k
}

func (k *groupKeyer) id(i int32) int32 {
	if k.col.Kind == ColStr {
		return k.col.Codes[i] // -1 is the NULL code
	}
	if k.col.Nulls != nil && k.col.Nulls[i] {
		return -1
	}
	f := k.col.Nums[i]
	if f != f { // NaN: one shared group id
		if k.nanID == -2 {
			k.nanID = k.next
			k.next++
		}
		return k.nanID
	}
	id, ok := k.numIDs[f]
	if !ok {
		id = k.next
		k.next++
		k.numIDs[f] = id
	}
	return id
}

// aggAcc folds one aggregate projection across all groups. Errors
// (sum/avg over a non-numeric value) are recorded per group rather
// than aborting the scan, then surfaced in (group, projection) order
// by finalize — the order the row path would have hit them in.
type aggAcc struct {
	kind aggKind
	ci   int
	ct   *ColumnarTable

	sums []float64
	cnts []int64
	best []Value
	has  []bool
	errs []error
}

func (a *aggAcc) grow() {
	switch a.kind {
	case aggNone, aggCountStar:
	case aggCount:
		a.cnts = append(a.cnts, 0)
	case aggSum, aggAvg:
		a.sums = append(a.sums, 0)
		a.cnts = append(a.cnts, 0)
		a.has = append(a.has, false)
		a.errs = append(a.errs, nil)
	case aggMin, aggMax:
		a.best = append(a.best, Value{})
		a.has = append(a.has, false)
	}
}

func (a *aggAcc) add(gid, i int32) {
	switch a.kind {
	case aggNone, aggCountStar:
		return
	}
	col := &a.ct.cols[a.ci]
	// Fast non-null numeric read for ColNum; everything else boxes.
	if col.Kind == ColNum && (a.kind == aggSum || a.kind == aggAvg || a.kind == aggCount) {
		if col.Nulls != nil && col.Nulls[i] {
			return
		}
		switch a.kind {
		case aggCount:
			a.cnts[gid]++
		default:
			if a.errs[gid] == nil {
				a.sums[gid] += col.Nums[i]
				a.cnts[gid]++
				a.has[gid] = true
			}
		}
		return
	}
	v := a.ct.valueAt(a.ci, i)
	if v.IsNull() {
		return
	}
	switch a.kind {
	case aggCount:
		a.cnts[gid]++
	case aggSum, aggAvg:
		if a.errs[gid] != nil {
			return
		}
		f, ok := v.AsNumber()
		if !ok {
			name := "sum"
			if a.kind == aggAvg {
				name = "avg"
			}
			a.errs[gid] = fmt.Errorf("engine: %s over non-numeric value %s", name, v)
			return
		}
		a.sums[gid] += f
		a.cnts[gid]++
		a.has[gid] = true
	case aggMin, aggMax:
		if !a.has[gid] {
			a.best[gid] = v
			a.has[gid] = true
			return
		}
		cmp := Compare(v, a.best[gid])
		if (a.kind == aggMin && cmp < 0) || (a.kind == aggMax && cmp > 0) {
			a.best[gid] = v
		}
	}
}

func (a *aggAcc) finalize(gid int32, size int64) (Value, error) {
	switch a.kind {
	case aggCountStar:
		return Num(float64(size)), nil
	case aggCount:
		return Num(float64(a.cnts[gid])), nil
	case aggSum, aggAvg:
		if a.errs[gid] != nil {
			return Value{}, a.errs[gid]
		}
		if !a.has[gid] {
			return Null(), nil
		}
		if a.kind == aggAvg {
			return Num(a.sums[gid] / float64(a.cnts[gid])), nil
		}
		return Num(a.sums[gid]), nil
	case aggMin, aggMax:
		if !a.has[gid] {
			return Null(), nil
		}
		return a.best[gid], nil
	}
	return Value{}, fmt.Errorf("engine: columnar finalize of non-aggregate")
}

// predEval compiles one predicate against one column into a per-row
// closure. String columns evaluate the predicate once per dictionary
// entry (through the real Equal/Compare/Like, so cross-kind coercion
// like "5" = 5 is preserved) and then test codes; numeric columns get
// branch-light float compares when the literal is numeric; everything
// else falls through to boxing each value into the shared predValue,
// which mirrors evalBinary exactly.
func (ct *ColumnarTable) predEval(pr *colPred, ci int) (func(i int32) bool, bool) {
	col := &ct.cols[ci]
	switch col.Kind {
	case ColStr:
		matches := make([]bool, len(col.Dict))
		for code, s := range col.Dict {
			matches[code] = predValue(Str(s), pr)
		}
		nullMatch := predValue(Null(), pr)
		codes := col.Codes
		return func(i int32) bool {
			c := codes[i]
			if c < 0 {
				return nullMatch
			}
			return matches[c]
		}, true
	case ColNum:
		nums := col.Nums
		nulls := col.Nulls
		notNull := func(i int32) bool { return nulls == nil || !nulls[i] }
		switch pr.op {
		case "is":
			return func(i int32) bool { return !notNull(i) }, true
		case "is not":
			return notNull, true
		case "=", "<>", "<", "<=", ">", ">=":
			if pr.lit.Kind == KindNumber {
				lf := pr.lit.Num
				op := pr.op
				return func(i int32) bool {
					if !notNull(i) {
						return false
					}
					cmp := cmpFloat(nums[i], lf)
					switch op {
					case "=":
						return cmp == 0
					case "<>":
						return cmp != 0
					case "<":
						return cmp < 0
					case "<=":
						return cmp <= 0
					case ">":
						return cmp > 0
					default:
						return cmp >= 0
					}
				}, true
			}
		case "between":
			if pr.lo.Kind == KindNumber && pr.hi.Kind == KindNumber {
				lo, hi, not := pr.lo.Num, pr.hi.Num, pr.not
				return func(i int32) bool {
					if !notNull(i) {
						return false
					}
					in := cmpFloat(nums[i], lo) >= 0 && cmpFloat(nums[i], hi) <= 0
					return in != not
				}, true
			}
		}
		return func(i int32) bool {
			if !notNull(i) {
				return predValue(Null(), pr)
			}
			return predValue(Num(nums[i]), pr)
		}, true
	default:
		vals := col.Vals
		return func(i int32) bool { return predValue(vals[i], pr) }, true
	}
}

// cmpFloat mirrors Compare on two numbers: NaN compares equal to
// everything there (both < and > fail), so it must here too.
func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// predValue evaluates one compiled predicate against one boxed value
// with exactly evalBinary/evalIn/evalBetween's semantics, including
// LIKE stringifying NULL to "NULL" and BETWEEN's NULL-before-NOT rule.
func predValue(v Value, pr *colPred) bool {
	switch pr.op {
	case "is":
		return v.IsNull()
	case "is not":
		return !v.IsNull()
	case "=":
		return Equal(v, pr.lit)
	case "<>":
		if v.IsNull() || pr.lit.IsNull() {
			return false
		}
		return !Equal(v, pr.lit)
	case "<", "<=", ">", ">=":
		if v.IsNull() || pr.lit.IsNull() {
			return false
		}
		cmp := Compare(v, pr.lit)
		switch pr.op {
		case "<":
			return cmp < 0
		case "<=":
			return cmp <= 0
		case ">":
			return cmp > 0
		default:
			return cmp >= 0
		}
	case "like", "not like":
		res := Like(v.String(), pr.lit.String())
		if pr.op == "not like" {
			res = !res
		}
		return res
	case "between":
		if v.IsNull() || pr.lo.IsNull() || pr.hi.IsNull() {
			return false
		}
		in := Compare(v, pr.lo) >= 0 && Compare(v, pr.hi) <= 0
		return in != pr.not
	case "in":
		found := false
		for _, it := range pr.items {
			if Equal(v, it) {
				found = true
				break
			}
		}
		return found != pr.not
	}
	return false
}
