package engine

import (
	"strings"
	"testing"

	"repro/internal/sqlparser"
)

func exec(t *testing.T, db *DB, sql string) *Table {
	t.Helper()
	res, err := Exec(db, sqlparser.MustParse(sql))
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func smallDB() *DB {
	db := NewDB()
	tbl := NewTable("sales", "region", "product", "amount", "qty")
	tbl.MustAddRow(Str("USA"), Str("widget"), Num(100), Num(1))
	tbl.MustAddRow(Str("USA"), Str("gadget"), Num(250), Num(2))
	tbl.MustAddRow(Str("EUR"), Str("widget"), Num(80), Num(1))
	tbl.MustAddRow(Str("EUR"), Str("gadget"), Num(120), Num(3))
	tbl.MustAddRow(Str("JPN"), Str("widget"), Num(60), Num(2))
	db.AddTable(tbl)
	return db
}

func TestSelectStar(t *testing.T) {
	res := exec(t, smallDB(), "SELECT * FROM sales")
	if len(res.Rows) != 5 || len(res.Cols) != 4 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Cols))
	}
}

func TestWhereFilter(t *testing.T) {
	res := exec(t, smallDB(), "SELECT product FROM sales WHERE region = 'USA'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	res2 := exec(t, smallDB(), "SELECT product FROM sales WHERE amount > 100 AND region = 'EUR'")
	if len(res2.Rows) != 1 || res2.Rows[0][0].Str != "gadget" {
		t.Fatalf("rows = %v", res2.Rows)
	}
}

func TestGroupByAggregates(t *testing.T) {
	res := exec(t, smallDB(),
		"SELECT region, COUNT(*), SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales GROUP BY region")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// First group is USA (first appearance order).
	row := res.Rows[0]
	if row[0].Str != "USA" || row[1].Num != 2 || row[2].Num != 350 || row[3].Num != 175 ||
		row[4].Num != 100 || row[5].Num != 250 {
		t.Fatalf("USA group = %v", row)
	}
}

func TestGlobalAggregate(t *testing.T) {
	res := exec(t, smallDB(), "SELECT COUNT(*), SUM(qty) FROM sales")
	if len(res.Rows) != 1 || res.Rows[0][0].Num != 5 || res.Rows[0][1].Num != 9 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountDistinct(t *testing.T) {
	res := exec(t, smallDB(), "SELECT COUNT(DISTINCT product) FROM sales")
	if res.Rows[0][0].Num != 2 {
		t.Fatalf("count distinct = %v", res.Rows[0][0])
	}
}

func TestHaving(t *testing.T) {
	res := exec(t, smallDB(),
		"SELECT region, SUM(amount) FROM sales GROUP BY region HAVING SUM(amount) > 150")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByAndTop(t *testing.T) {
	res := exec(t, smallDB(), "SELECT product, amount FROM sales ORDER BY amount DESC")
	if res.Rows[0][1].Num != 250 || res.Rows[len(res.Rows)-1][1].Num != 60 {
		t.Fatalf("order wrong: %v", res.Rows)
	}
	top := exec(t, smallDB(), "SELECT TOP 2 product, amount FROM sales ORDER BY amount DESC")
	if len(top.Rows) != 2 || top.Rows[0][1].Num != 250 {
		t.Fatalf("top wrong: %v", top.Rows)
	}
	lim := exec(t, smallDB(), "SELECT product FROM sales LIMIT 3")
	if len(lim.Rows) != 3 {
		t.Fatalf("limit wrong: %d", len(lim.Rows))
	}
}

func TestDistinct(t *testing.T) {
	res := exec(t, smallDB(), "SELECT DISTINCT product FROM sales")
	if len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %d", len(res.Rows))
	}
}

func TestSubqueryInFrom(t *testing.T) {
	res := exec(t, smallDB(),
		"SELECT COUNT(*) FROM (SELECT product FROM sales WHERE amount > 90)")
	if res.Rows[0][0].Num != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestInAndBetweenAndLike(t *testing.T) {
	if got := exec(t, smallDB(), "SELECT product FROM sales WHERE region IN ('USA', 'JPN')"); len(got.Rows) != 3 {
		t.Fatalf("IN rows = %d", len(got.Rows))
	}
	if got := exec(t, smallDB(), "SELECT product FROM sales WHERE amount BETWEEN 80 AND 120"); len(got.Rows) != 3 {
		t.Fatalf("BETWEEN rows = %d", len(got.Rows))
	}
	if got := exec(t, smallDB(), "SELECT product FROM sales WHERE product LIKE 'wid%'"); len(got.Rows) != 3 {
		t.Fatalf("LIKE rows = %d", len(got.Rows))
	}
	if got := exec(t, smallDB(), "SELECT product FROM sales WHERE amount NOT BETWEEN 80 AND 120"); len(got.Rows) != 2 {
		t.Fatalf("NOT BETWEEN rows = %d", len(got.Rows))
	}
}

func TestInSubquery(t *testing.T) {
	res := exec(t, smallDB(),
		"SELECT region FROM sales WHERE product IN (SELECT product FROM sales WHERE amount > 200)")
	if len(res.Rows) != 2 { // gadget rows
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCaseExpression(t *testing.T) {
	res := exec(t, smallDB(), `SELECT (CASE region WHEN 'USA' THEN 'domestic' ELSE 'intl' END) AS kind,
		COUNT(*) FROM sales GROUP BY (CASE region WHEN 'USA' THEN 'domestic' ELSE 'intl' END)`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Cols[0] != "kind" {
		t.Fatalf("alias lost: %v", res.Cols)
	}
}

func TestScalarFunctionsAndArithmetic(t *testing.T) {
	res := exec(t, smallDB(), "SELECT FLOOR(amount/100), amount % 7, -qty FROM sales WHERE product = 'gadget' AND region = 'USA'")
	row := res.Rows[0]
	if row[0].Num != 2 || row[1].Num != 5 || row[2].Num != -2 {
		t.Fatalf("row = %v", row)
	}
}

func TestCast(t *testing.T) {
	res := exec(t, smallDB(), "SELECT CAST(amount AS int), CAST(qty) FROM sales WHERE region = 'JPN'")
	if res.Rows[0][0].Num != 60 || res.Rows[0][1].Num != 2 {
		t.Fatalf("cast row = %v", res.Rows[0])
	}
}

func TestQualifiedColumnsAndJoin(t *testing.T) {
	db := SDSSDB(50)
	res := exec(t, db,
		"SELECT g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) as d WHERE d.objID = g.objID")
	if len(res.Rows) == 0 {
		t.Fatal("UDF join returned no rows; fGetNearbyObjEq should reuse Galaxy ids")
	}
	top := exec(t, db,
		"SELECT TOP 1 g.objID FROM Galaxy as g, dbo.fGetNearbyObjEq(5.848, 0.352, 2.0616) as d WHERE d.objID = g.objID")
	if len(top.Rows) != 1 {
		t.Fatalf("TOP 1 returned %d rows", len(top.Rows))
	}
}

func TestListing4Executes(t *testing.T) {
	db := TinyDB()
	res := exec(t, db, `SELECT spec_ts, sum(price) FROM (
		SELECT spec_ts, action, price FROM t WHERE spec_ts > now AND spec_ts < now + 3
	) WHERE action = 'act1' GROUP BY spec_ts`)
	for _, row := range res.Rows {
		if v := row[0].Num; v <= 0 || v >= 3 {
			t.Fatalf("spec_ts out of range: %v", v)
		}
	}
}

func TestOLAPListing2Executes(t *testing.T) {
	db := OnTimeDB(500)
	res := exec(t, db,
		"SELECT COUNT(delay), deststate FROM ontime WHERE month = 9 AND day = 3 GROUP BY deststate")
	for _, row := range res.Rows {
		if row[0].Kind != KindNumber {
			t.Fatalf("count not numeric: %v", row)
		}
	}
	res2 := exec(t, db,
		"SELECT SUM(flights) FROM ontime WHERE canceled = 1 HAVING SUM(flights) > 1")
	if len(res2.Rows) > 1 {
		t.Fatalf("global aggregate rows = %d", len(res2.Rows))
	}
}

func TestUnknownTableAndColumnErrors(t *testing.T) {
	db := smallDB()
	if _, err := Exec(db, sqlparser.MustParse("SELECT a FROM nope")); err == nil {
		t.Fatal("unknown table must error")
	}
	if _, err := Exec(db, sqlparser.MustParse("SELECT nope FROM sales")); err == nil {
		t.Fatal("unknown column must error")
	}
	if _, err := Exec(db, sqlparser.MustParse("SELECT s.amount FROM sales")); err == nil {
		t.Fatal("unknown qualifier must error")
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDB()
	tbl := NewTable("n", "a")
	tbl.MustAddRow(Num(1))
	tbl.MustAddRow(Null())
	db.AddTable(tbl)
	if got := exec(t, db, "SELECT a FROM n WHERE a IS NULL"); len(got.Rows) != 1 {
		t.Fatalf("IS NULL rows = %d", len(got.Rows))
	}
	if got := exec(t, db, "SELECT a FROM n WHERE a IS NOT NULL"); len(got.Rows) != 1 {
		t.Fatalf("IS NOT NULL rows = %d", len(got.Rows))
	}
	if got := exec(t, db, "SELECT a FROM n WHERE a = a"); len(got.Rows) != 1 {
		t.Fatal("NULL = NULL must not match")
	}
	// Aggregates skip NULLs.
	if got := exec(t, db, "SELECT COUNT(a), COUNT(*) FROM n"); got.Rows[0][0].Num != 1 || got.Rows[0][1].Num != 2 {
		t.Fatalf("count semantics: %v", got.Rows[0])
	}
}

func TestDivisionByZeroYieldsNull(t *testing.T) {
	res := exec(t, smallDB(), "SELECT amount / 0 FROM sales WHERE region = 'JPN'")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("x/0 = %v, want NULL", res.Rows[0][0])
	}
}

func TestRender(t *testing.T) {
	res := exec(t, smallDB(), "SELECT region, SUM(amount) AS total FROM sales GROUP BY region")
	out := res.Render()
	if !strings.Contains(out, "region") || !strings.Contains(out, "total") || !strings.Contains(out, "350") {
		t.Fatalf("render output:\n%s", out)
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"widget", "wid%", true},
		{"widget", "%get", true},
		{"widget", "w_dget", true},
		{"widget", "gadget", false},
		{"abc", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"AA", "aa", true}, // case-insensitive
	}
	for _, c := range cases {
		if got := Like(c.s, c.p); got != c.want {
			t.Errorf("Like(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	if Compare(Num(1), Num(2)) >= 0 || Compare(Str("b"), Str("a")) <= 0 {
		t.Fatal("basic compare wrong")
	}
	if Compare(Num(10), Str("10")) != 0 {
		t.Fatal("numeric coercion in compare failed")
	}
	if Compare(Null(), Num(0)) != -1 {
		t.Fatal("NULL should sort first")
	}
	if Equal(Null(), Null()) {
		t.Fatal("NULL must not equal NULL")
	}
	if Null().Key() != Null().Key() {
		t.Fatal("NULL grouping keys must agree")
	}
}
