package engine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/ast"
)

// binding names one column of the row shape flowing through the
// executor: the relation alias (possibly "") and the column name.
type binding struct {
	alias string
	col   string
}

// evalCtx carries everything expression evaluation needs: the column
// bindings, the current row, the current group (non-nil only while
// evaluating aggregate projections/HAVING), and the read-only catalog
// for subqueries.
type evalCtx struct {
	cat      Catalog
	bindings []binding
	row      []Value
	group    [][]Value
}

func (c *evalCtx) withRow(row []Value) *evalCtx {
	cp := *c
	cp.row = row
	return &cp
}

// lookup resolves a column reference against the bindings.
func (c *evalCtx) lookup(table, col string) (Value, error) {
	for i, b := range c.bindings {
		if !strings.EqualFold(b.col, col) {
			continue
		}
		if table != "" && !strings.EqualFold(b.alias, table) {
			continue
		}
		return c.row[i], nil
	}
	// The paper's Listing 4 uses a bare "now" pseudo-column; bind it to
	// a fixed epoch so the template queries execute.
	if table == "" && strings.EqualFold(col, "now") {
		return Num(0), nil
	}
	if table != "" {
		return Value{}, fmt.Errorf("engine: unknown column %s.%s", table, col)
	}
	return Value{}, fmt.Errorf("engine: unknown column %s", col)
}

// aggregateNames are the aggregate functions the executor understands.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// hasAggregate reports whether the expression contains an aggregate
// function call.
func hasAggregate(n *ast.Node) bool {
	if n == nil {
		return false
	}
	if n.Type == ast.TypeFuncExpr {
		if name := n.Child(0).Value(); aggregateNames[name] {
			return true
		}
	}
	if n.Type == ast.TypeSubQuery {
		return false // aggregates inside a subquery belong to it
	}
	for _, ch := range n.Children {
		if hasAggregate(ch) {
			return true
		}
	}
	return false
}

// eval evaluates an expression node to a value.
func (c *evalCtx) eval(n *ast.Node) (Value, error) {
	switch n.Type {
	case ast.TypeNumExpr:
		f, ok := numericLiteral(n)
		if !ok {
			return Value{}, fmt.Errorf("engine: bad numeric literal %q", n.Value())
		}
		return Num(f), nil
	case ast.TypeStrExpr:
		return Str(n.Value()), nil
	case ast.TypeBoolExpr:
		return Boolean(strings.EqualFold(n.Value(), "true")), nil
	case ast.TypeNullExpr:
		return Null(), nil
	case ast.TypeColExpr:
		return c.lookup(n.Attr("table"), n.Value())
	case ast.TypeParen:
		return c.eval(n.Child(0))
	case ast.TypeUniExpr:
		return c.evalUnary(n)
	case ast.TypeBiExpr:
		return c.evalBinary(n)
	case ast.TypeFuncExpr:
		return c.evalFunc(n)
	case ast.TypeCastExpr:
		return c.evalCast(n)
	case ast.TypeCaseExpr:
		return c.evalCase(n)
	case ast.TypeInExpr:
		return c.evalIn(n)
	case ast.TypeBetween:
		return c.evalBetween(n)
	case ast.TypeSubQuery:
		return c.evalScalarSubquery(n)
	}
	return Value{}, fmt.Errorf("engine: cannot evaluate %s node", n.Type)
}

func (c *evalCtx) evalUnary(n *ast.Node) (Value, error) {
	v, err := c.eval(n.Child(0))
	if err != nil {
		return Value{}, err
	}
	switch n.Attr("op") {
	case "not":
		if v.IsNull() {
			return Null(), nil
		}
		return Boolean(!v.Truthy()), nil
	case "-":
		f, ok := v.AsNumber()
		if !ok {
			return Value{}, fmt.Errorf("engine: unary minus on non-number %s", v)
		}
		return Num(-f), nil
	}
	return Value{}, fmt.Errorf("engine: unknown unary op %q", n.Attr("op"))
}

func (c *evalCtx) evalBinary(n *ast.Node) (Value, error) {
	op := n.Attr("op")
	// Short-circuit logical operators.
	switch op {
	case "and":
		l, err := c.eval(n.Child(0))
		if err != nil {
			return Value{}, err
		}
		if !l.Truthy() {
			return Boolean(false), nil
		}
		r, err := c.eval(n.Child(1))
		if err != nil {
			return Value{}, err
		}
		return Boolean(r.Truthy()), nil
	case "or":
		l, err := c.eval(n.Child(0))
		if err != nil {
			return Value{}, err
		}
		if l.Truthy() {
			return Boolean(true), nil
		}
		r, err := c.eval(n.Child(1))
		if err != nil {
			return Value{}, err
		}
		return Boolean(r.Truthy()), nil
	}
	l, err := c.eval(n.Child(0))
	if err != nil {
		return Value{}, err
	}
	// IS [NOT] NULL before generic rhs evaluation (rhs is NullExpr).
	switch op {
	case "is":
		return Boolean(l.IsNull()), nil
	case "is not":
		return Boolean(!l.IsNull()), nil
	}
	r, err := c.eval(n.Child(1))
	if err != nil {
		return Value{}, err
	}
	switch op {
	case "=":
		return Boolean(Equal(l, r)), nil
	case "<>", "!=":
		if l.IsNull() || r.IsNull() {
			return Boolean(false), nil
		}
		return Boolean(!Equal(l, r)), nil
	case "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Boolean(false), nil
		}
		cmp := Compare(l, r)
		switch op {
		case "<":
			return Boolean(cmp < 0), nil
		case "<=":
			return Boolean(cmp <= 0), nil
		case ">":
			return Boolean(cmp > 0), nil
		default:
			return Boolean(cmp >= 0), nil
		}
	case "like", "not like":
		res := Like(l.String(), r.String())
		if op == "not like" {
			res = !res
		}
		return Boolean(res), nil
	case "+", "-", "*", "/", "%":
		lf, ok1 := l.AsNumber()
		rf, ok2 := r.AsNumber()
		if !ok1 || !ok2 {
			return Value{}, fmt.Errorf("engine: arithmetic on non-numbers %s %s %s", l, op, r)
		}
		switch op {
		case "+":
			return Num(lf + rf), nil
		case "-":
			return Num(lf - rf), nil
		case "*":
			return Num(lf * rf), nil
		case "/":
			if rf == 0 {
				return Null(), nil
			}
			return Num(lf / rf), nil
		default:
			if rf == 0 {
				return Null(), nil
			}
			return Num(math.Mod(lf, rf)), nil
		}
	}
	return Value{}, fmt.Errorf("engine: unknown binary op %q", op)
}

func (c *evalCtx) evalFunc(n *ast.Node) (Value, error) {
	name := n.Child(0).Value()
	if aggregateNames[name] {
		return c.evalAggregate(n)
	}
	args := make([]Value, 0, len(n.Children)-1)
	for _, a := range n.Children[1:] {
		v, err := c.eval(a)
		if err != nil {
			return Value{}, err
		}
		args = append(args, v)
	}
	arity := func(k int) error {
		if len(args) != k {
			return fmt.Errorf("engine: %s expects %d args, got %d", name, k, len(args))
		}
		return nil
	}
	num1 := func(f func(float64) float64) (Value, error) {
		if err := arity(1); err != nil {
			return Value{}, err
		}
		x, ok := args[0].AsNumber()
		if !ok {
			return Null(), nil
		}
		return Num(f(x)), nil
	}
	switch name {
	case "floor":
		return num1(math.Floor)
	case "ceil", "ceiling":
		return num1(math.Ceil)
	case "abs":
		return num1(math.Abs)
	case "round":
		return num1(math.Round)
	case "sqrt":
		return num1(math.Sqrt)
	case "upper":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		return Str(strings.ToUpper(args[0].String())), nil
	case "lower":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		return Str(strings.ToLower(args[0].String())), nil
	case "length", "len":
		if err := arity(1); err != nil {
			return Value{}, err
		}
		return Num(float64(len(args[0].String()))), nil
	case "coalesce":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null(), nil
	}
	return Value{}, fmt.Errorf("engine: unknown function %q", name)
}

// evalAggregate computes an aggregate over the current group.
func (c *evalCtx) evalAggregate(n *ast.Node) (Value, error) {
	if c.group == nil {
		return Value{}, fmt.Errorf("engine: aggregate %s outside grouping context", n.Child(0).Value())
	}
	name := n.Child(0).Value()
	distinct := n.Attr("distinct") == "true"
	// COUNT(*) counts rows.
	if name == "count" && (n.NumChildren() == 1 || n.Child(1).Type == ast.TypeStarExpr) {
		return Num(float64(len(c.group))), nil
	}
	if n.NumChildren() < 2 {
		return Value{}, fmt.Errorf("engine: aggregate %s needs an argument", name)
	}
	arg := n.Child(1)
	var vals []Value
	seen := map[string]bool{}
	for _, row := range c.group {
		v, err := c.withRow(row).evalNonAgg(arg)
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue
		}
		if distinct {
			k := v.Key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch name {
	case "count":
		return Num(float64(len(vals))), nil
	case "sum", "avg":
		if len(vals) == 0 {
			return Null(), nil
		}
		s := 0.0
		for _, v := range vals {
			f, ok := v.AsNumber()
			if !ok {
				return Value{}, fmt.Errorf("engine: %s over non-numeric value %s", name, v)
			}
			s += f
		}
		if name == "avg" {
			return Num(s / float64(len(vals))), nil
		}
		return Num(s), nil
	case "min", "max":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp := Compare(v, best)
			if (name == "min" && cmp < 0) || (name == "max" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("engine: unknown aggregate %q", name)
}

// evalNonAgg evaluates an expression in a per-row context (aggregates
// are not allowed; used for aggregate arguments).
func (c *evalCtx) evalNonAgg(n *ast.Node) (Value, error) {
	cp := *c
	cp.group = nil
	return cp.eval(n)
}

func (c *evalCtx) evalCast(n *ast.Node) (Value, error) {
	v, err := c.eval(n.Child(0))
	if err != nil {
		return Value{}, err
	}
	switch strings.ToLower(n.Attr("as")) {
	case "": // the ad-hoc log's single-argument CAST is the identity
		return v, nil
	case "int", "integer", "bigint":
		f, ok := v.AsNumber()
		if !ok {
			return Null(), nil
		}
		return Num(math.Trunc(f)), nil
	case "float", "real", "double":
		f, ok := v.AsNumber()
		if !ok {
			return Null(), nil
		}
		return Num(f), nil
	case "varchar", "char", "text", "string":
		return Str(v.String()), nil
	}
	return v, nil
}

func (c *evalCtx) evalCase(n *ast.Node) (Value, error) {
	var operand *Value
	idx := 0
	if n.NumChildren() > 0 && n.Child(0).Type != ast.TypeWhenClause && n.Child(0).Type != ast.TypeElseClause {
		v, err := c.eval(n.Child(0))
		if err != nil {
			return Value{}, err
		}
		operand = &v
		idx = 1
	}
	for ; idx < n.NumChildren(); idx++ {
		ch := n.Child(idx)
		switch ch.Type {
		case ast.TypeWhenClause:
			cond, err := c.eval(ch.Child(0))
			if err != nil {
				return Value{}, err
			}
			matched := false
			if operand != nil {
				matched = Equal(*operand, cond)
			} else {
				matched = cond.Truthy()
			}
			if matched {
				return c.eval(ch.Child(1))
			}
		case ast.TypeElseClause:
			return c.eval(ch.Child(0))
		}
	}
	return Null(), nil
}

func (c *evalCtx) evalIn(n *ast.Node) (Value, error) {
	needle, err := c.eval(n.Child(0))
	if err != nil {
		return Value{}, err
	}
	neg := n.Attr("not") == "true"
	found := false
	if n.NumChildren() == 2 && n.Child(1).Type == ast.TypeSubQuery {
		tbl, err := Exec(c.cat, n.Child(1).Child(0))
		if err != nil {
			return Value{}, err
		}
		for _, row := range tbl.Rows {
			if len(row) > 0 && Equal(needle, row[0]) {
				found = true
				break
			}
		}
	} else {
		for _, item := range n.Children[1:] {
			v, err := c.eval(item)
			if err != nil {
				return Value{}, err
			}
			if Equal(needle, v) {
				found = true
				break
			}
		}
	}
	return Boolean(found != neg), nil
}

func (c *evalCtx) evalBetween(n *ast.Node) (Value, error) {
	v, err := c.eval(n.Child(0))
	if err != nil {
		return Value{}, err
	}
	lo, err := c.eval(n.Child(1))
	if err != nil {
		return Value{}, err
	}
	hi, err := c.eval(n.Child(2))
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return Boolean(false), nil
	}
	in := Compare(v, lo) >= 0 && Compare(v, hi) <= 0
	if n.Attr("not") == "true" {
		in = !in
	}
	return Boolean(in), nil
}

func (c *evalCtx) evalScalarSubquery(n *ast.Node) (Value, error) {
	tbl, err := Exec(c.cat, n.Child(0))
	if err != nil {
		return Value{}, err
	}
	if len(tbl.Rows) == 0 || len(tbl.Rows[0]) == 0 {
		return Null(), nil
	}
	return tbl.Rows[0][0], nil
}

// numericLiteral parses a NumExpr (decimal or hex).
func numericLiteral(n *ast.Node) (float64, bool) {
	v := n.Value()
	if n.Attr("fmt") == "hex" || strings.HasPrefix(v, "0x") || strings.HasPrefix(v, "0X") {
		var f float64
		_, err := fmt.Sscanf(strings.ToLower(v), "0x%x", new(uint64))
		if err != nil {
			return 0, false
		}
		var u uint64
		fmt.Sscanf(strings.ToLower(v), "0x%x", &u)
		f = float64(u)
		return f, true
	}
	var f float64
	if _, err := fmt.Sscanf(v, "%g", &f); err != nil {
		return 0, false
	}
	return f, true
}
