package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Table is an in-memory relation: named columns over rows of values.
type Table struct {
	Name string
	Cols []string
	Rows [][]Value

	// colIdx caches lowercased column name -> first index, built
	// lazily by ColIndex. Cols never changes after a table is built
	// (AddRow only appends rows), so the cache cannot go stale.
	colIdx atomic.Pointer[map[string]int]
}

// NewTable returns an empty table with the given columns.
func NewTable(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: cols}
}

// AddRow appends a row; the value count must match the column count.
func (t *Table) AddRow(vals ...Value) error {
	if len(vals) != len(t.Cols) {
		return fmt.Errorf("engine: table %s has %d columns, row has %d", t.Name, len(t.Cols), len(vals))
	}
	t.Rows = append(t.Rows, vals)
	return nil
}

// MustAddRow is AddRow that panics; for dataset builders with constant
// shapes.
func (t *Table) MustAddRow(vals ...Value) {
	if err := t.AddRow(vals...); err != nil {
		panic(err)
	}
}

// NumRows returns the row count — a read-only accessor for callers
// (like the serving layer) that treat shared tables as immutable.
func (t *Table) NumRows() int { return len(t.Rows) }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.Cols) }

// Clone returns a deep copy of the table. Callers that want to mutate
// a shared result (e.g. one handed out by a cache) must clone it first;
// everything else should treat shared tables as read-only.
func (t *Table) Clone() *Table {
	cp := &Table{Name: t.Name, Cols: append([]string(nil), t.Cols...)}
	cp.Rows = make([][]Value, len(t.Rows))
	for i, row := range t.Rows {
		cp.Rows[i] = append([]Value(nil), row...)
	}
	return cp
}

// ColIndex returns the index of a column (case-insensitive), or -1.
// The first call builds a name->index map; later calls are a single
// map probe instead of a linear scan (this sits under every bound
// predicate evaluation). Unicode names whose ToLower form differs
// from their EqualFold class still hit the linear fallback, so the
// result is identical to the original scan in all cases.
func (t *Table) ColIndex(name string) int {
	m := t.colIdx.Load()
	if m == nil {
		idx := make(map[string]int, len(t.Cols))
		for i, c := range t.Cols {
			key := strings.ToLower(c)
			if _, dup := idx[key]; !dup {
				idx[key] = i
			}
		}
		t.colIdx.Store(&idx)
		m = &idx
	}
	if i, ok := (*m)[strings.ToLower(name)]; ok {
		return i
	}
	for i, c := range t.Cols {
		if strings.EqualFold(c, name) {
			return i
		}
	}
	return -1
}

// TableFunc is a table-valued function (e.g. the SDSS fGetNearbyObjEq
// UDF): it maps argument values to a relation.
type TableFunc func(args []Value) (*Table, error)

// Catalog is the read-only view the executor compiles against: table
// and table-valued-function lookup by (possibly qualified) name. Exec
// and expression evaluation consume only this interface, so any
// immutable snapshot — a *DB built once, or a copy-on-write store
// version — is a drop-in execution target. Implementations must be
// safe for concurrent lookups and must return tables the caller can
// treat as immutable.
type Catalog interface {
	// Table looks up a table; matching is case-insensitive and accepts
	// the final component of qualified names (dbo.X).
	Table(name string) (*Table, bool)
	// Func looks up a table-valued function under the same name rules.
	Func(name string) (TableFunc, bool)
}

// DB is the catalog: named tables and table-valued functions.
//
// Concurrency contract: a DB is built single-threaded (AddTable,
// AddFunc, loading rows) and is immutable afterwards. All read paths —
// Exec, Table, Func, TableNames, NumTables — are safe to use
// concurrently once building is done. The serving layer shares one DB
// across all request goroutines under this contract instead of locking
// per query.
type DB struct {
	tables map[string]*Table
	funcs  map[string]TableFunc

	// colTabs lazily caches the columnar projection of each table
	// (lowercased name -> *ColumnarTable). Safe under the DB's
	// immutable-after-build contract; the copy-on-write primitives
	// hand out clones with a fresh, empty cache.
	colTabs sync.Map
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}, funcs: map[string]TableFunc{}}
}

// AddTable registers a table (name matching is case-insensitive).
func (db *DB) AddTable(t *Table) { db.tables[strings.ToLower(t.Name)] = t }

// Table looks up a table by (possibly qualified) name.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		// Accept the final path component of qualified names (dbo.X).
		parts := strings.Split(name, ".")
		t, ok = db.tables[strings.ToLower(parts[len(parts)-1])]
	}
	return t, ok
}

// AddFunc registers a table-valued function.
func (db *DB) AddFunc(name string, fn TableFunc) { db.funcs[strings.ToLower(name)] = fn }

// Func looks up a table-valued function by (possibly qualified) name.
func (db *DB) Func(name string) (TableFunc, bool) {
	f, ok := db.funcs[strings.ToLower(name)]
	if !ok {
		parts := strings.Split(name, ".")
		f, ok = db.funcs[strings.ToLower(parts[len(parts)-1])]
	}
	return f, ok
}

// Columnar returns the cached columnar projection of a table,
// building it on first use — the ColumnarProvider hook for plain
// catalogs (store snapshots provide their own per-epoch variant).
func (db *DB) Columnar(name string) (*ColumnarTable, bool) {
	t, ok := db.Table(name)
	if !ok {
		return nil, false
	}
	key := strings.ToLower(t.Name)
	if c, ok := db.colTabs.Load(key); ok {
		return c.(*ColumnarTable), true
	}
	actual, _ := db.colTabs.LoadOrStore(key, BuildColumnar(t))
	return actual.(*ColumnarTable), true
}

// NumTables returns the number of registered tables.
func (db *DB) NumTables() int { return len(db.tables) }

// TableNames lists registered tables in sorted order.
func (db *DB) TableNames() []string {
	var out []string
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// FuncNames lists registered table-valued functions in sorted order.
func (db *DB) FuncNames() []string {
	var out []string
	for n := range db.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// clone copies the catalog maps (sharing the tables and functions
// themselves) — the common step of the copy-on-write primitives.
func (db *DB) clone() *DB {
	cp := &DB{
		tables: make(map[string]*Table, len(db.tables)+1),
		funcs:  make(map[string]TableFunc, len(db.funcs)+1),
	}
	for k, v := range db.tables {
		cp.tables[k] = v
	}
	for k, v := range db.funcs {
		cp.funcs[k] = v
	}
	return cp
}

// WithTable returns a new DB sharing every table and function of the
// receiver except the given table, which replaces (or adds to) its
// name slot. The receiver is not modified — this is the copy-on-write
// primitive the versioned store builds on: concurrent readers of the
// old catalog stay untouched while the new catalog sees the new table
// version.
func (db *DB) WithTable(t *Table) *DB {
	cp := db.clone()
	cp.tables[strings.ToLower(t.Name)] = t
	return cp
}

// WithFunc is WithTable for table-valued functions: a new DB with fn
// registered, sharing everything else with the receiver.
func (db *DB) WithFunc(name string, fn TableFunc) *DB {
	cp := db.clone()
	cp.funcs[strings.ToLower(name)] = fn
	return cp
}

// Render returns the table as an aligned ASCII grid — the render()
// fallback of §3.3 ("renders a table").
func (t *Table) Render() string {
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	cells := make([][]string, len(t.Rows))
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			cells[r][i] = v.String()
			if len(cells[r][i]) > widths[i] {
				widths[i] = len(cells[r][i])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(v)
			b.WriteString(strings.Repeat(" ", widths[i]-len(v)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Cols)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}
