package engine

import (
	"fmt"

	"repro/internal/ast"
)

// Mutation is the logical result of evaluating an UPDATE or DELETE
// statement against a read snapshot: the resolved table, the visible
// row indexes the predicate matched, and (for UPDATE) the replacement
// rows, index-aligned with Matched. The caller maps snapshot indexes
// to durable row identities and publishes the physical mutation — the
// engine itself never writes; it only plans against the immutable
// Catalog it was handed, so concurrent readers of the same snapshot
// are unaffected.
type Mutation struct {
	Table   string
	Matched []int
	NewRows [][]Value // nil for DELETE
	Delete  bool
}

// EvalDML evaluates a parsed UPDATE or DELETE statement (from
// sqlparser.ParseStatement) against the catalog. SET expressions are
// evaluated per matched row and may reference the row's old values;
// aggregates and star expressions are rejected. Any other statement
// type is an error — SELECTs go through Exec.
func EvalDML(cat Catalog, stmt *ast.Node) (*Mutation, error) {
	switch stmt.Type {
	case ast.TypeUpdate:
		return evalUpdate(cat, stmt)
	case ast.TypeDelete:
		return evalDelete(cat, stmt)
	default:
		return nil, fmt.Errorf("engine: statement type %s is not a mutation", stmt.Type)
	}
}

// dmlTarget resolves the statement's target table and builds the
// evaluation context its predicate and SET expressions run under: one
// binding per column, aliased by both the bare table name and its
// qualified spelling.
func dmlTarget(cat Catalog, tab *ast.Node) (*Table, *evalCtx, error) {
	if tab == nil || tab.Type != ast.TypeTabExpr {
		return nil, nil, fmt.Errorf("engine: mutation target must be a table name")
	}
	t, ok := cat.Table(tab.Value())
	if !ok {
		return nil, nil, fmt.Errorf("engine: unknown table %q", tab.Value())
	}
	bindings := make([]binding, len(t.Cols))
	for i, c := range t.Cols {
		bindings[i] = binding{alias: t.Name, col: c}
	}
	return t, &evalCtx{cat: cat, bindings: bindings}, nil
}

// matchRows returns the indexes of rows the (possibly empty) WHERE
// clause accepts.
func matchRows(t *Table, ctx *evalCtx, where *ast.Node) ([]int, error) {
	var matched []int
	if ast.IsEmptyClause(where) {
		matched = make([]int, len(t.Rows))
		for i := range t.Rows {
			matched[i] = i
		}
		return matched, nil
	}
	pred := where.Child(0)
	if hasAggregate(pred) {
		return nil, fmt.Errorf("engine: aggregates are not allowed in a mutation WHERE clause")
	}
	for i, row := range t.Rows {
		v, err := ctx.withRow(row).eval(pred)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			matched = append(matched, i)
		}
	}
	return matched, nil
}

func evalUpdate(cat Catalog, stmt *ast.Node) (*Mutation, error) {
	t, ctx, err := dmlTarget(cat, stmt.Child(0))
	if err != nil {
		return nil, err
	}
	set := stmt.Child(1)
	if set == nil || len(set.Children) == 0 {
		return nil, fmt.Errorf("engine: UPDATE %s has no SET items", t.Name)
	}
	type setItem struct {
		col  int
		expr *ast.Node
	}
	items := make([]setItem, 0, len(set.Children))
	assigned := make(map[int]bool, len(set.Children))
	for _, si := range set.Children {
		name := si.Attr("col")
		ci := t.ColIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %q", t.Name, name)
		}
		if assigned[ci] {
			return nil, fmt.Errorf("engine: column %q assigned twice", name)
		}
		assigned[ci] = true
		if hasAggregate(si.Child(0)) {
			return nil, fmt.Errorf("engine: aggregates are not allowed in a SET expression")
		}
		items = append(items, setItem{col: ci, expr: si.Child(0)})
	}
	matched, err := matchRows(t, ctx, stmt.Child(2))
	if err != nil {
		return nil, err
	}
	newRows := make([][]Value, len(matched))
	for i, ri := range matched {
		old := t.Rows[ri]
		row := append([]Value(nil), old...)
		rctx := ctx.withRow(old) // SET exprs see the pre-update row
		for _, it := range items {
			v, err := rctx.eval(it.expr)
			if err != nil {
				return nil, err
			}
			row[it.col] = v
		}
		newRows[i] = row
	}
	return &Mutation{Table: t.Name, Matched: matched, NewRows: newRows}, nil
}

func evalDelete(cat Catalog, stmt *ast.Node) (*Mutation, error) {
	t, ctx, err := dmlTarget(cat, stmt.Child(0))
	if err != nil {
		return nil, err
	}
	matched, err := matchRows(t, ctx, stmt.Child(1))
	if err != nil {
		return nil, err
	}
	return &Mutation{Table: t.Name, Matched: matched, Delete: true}, nil
}
