package engine

import (
	"strings"

	"repro/internal/ast"
)

// maxGroupCols bounds the composite group key the kernels pack into a
// fixed-size array. Mined widget queries group by one or two columns;
// anything wider falls back to the row path.
const maxGroupCols = 4

// colRef is a compiled column reference: optional qualifier as written
// in the query, plus the bare column name. Resolution against the
// actual table happens at execution time (the table behind a name can
// change shape across epochs).
type colRef struct {
	qual string
	name string
}

// Predicate operators after normalization ("!=" becomes "<>",
// reversed literal-op-column comparisons are flipped).
type colPred struct {
	col   colRef
	op    string // "=", "<>", "<", "<=", ">", ">=", "like", "not like", "is", "is not", "between", "in"
	lit   Value  // comparison / LIKE literal
	lo    Value  // BETWEEN bounds
	hi    Value
	items []Value // IN list
	not   bool    // negation for BETWEEN / IN
}

type projKind int

const (
	projCol projKind = iota
	projStar
	projAgg
)

// Aggregate kinds. count(*) is split from count(col): they differ on
// NULLs.
type aggKind int

const (
	aggNone aggKind = iota
	aggCountStar
	aggCount
	aggSum
	aggAvg
	aggMin
	aggMax
)

type colProj struct {
	kind     projKind
	col      colRef // projCol, or the argument of projAgg
	agg      aggKind
	name     string // output column name (unused for projStar: expanded at exec)
	starQual string
}

// ColPlan is a compiled columnar execution plan for one widget-shaped
// SELECT: single-table FROM, a conjunction of column-vs-literal
// predicates, plain-column or plain-aggregate projections, optional
// GROUP BY on plain columns, optional LIMIT. CompileColumnar returns
// ok=false for anything outside that shape, and ExecColumnar can still
// decline at run time (unknown column, unsupported column layout) —
// both cases fall back to the row-at-a-time Exec, whose results the
// kernels reproduce byte-for-byte when they do run.
type ColPlan struct {
	Table   string // FROM table name as written in the query
	alias   string // explicit FROM alias ("" = the resolved table's name)
	preds   []colPred
	projs   []colProj
	groupBy []colRef
	grouped bool // aggregate mode (GROUP BY present or aggregate projection)
	limit   int  // -1 = no LIMIT
}

// CompileColumnar compiles a SELECT AST into a columnar plan, or
// reports ok=false when the query needs the general row-at-a-time
// path. Compilation is pure analysis — no catalog access — so plans
// cache alongside the bound AST in the api plan cache and survive
// epoch swaps.
func CompileColumnar(sel *ast.Node) (*ColPlan, bool) {
	if sel == nil || sel.Type != ast.TypeSelect {
		return nil, false
	}
	if sel.Attr("distinct") == "true" {
		return nil, false
	}
	if !ast.IsEmptyClause(sel.Child(ast.SlotHaving)) {
		return nil, false
	}
	if !ast.IsEmptyClause(sel.Child(ast.SlotOrderBy)) {
		return nil, false
	}

	from := sel.Child(ast.SlotFrom)
	if ast.IsEmptyClause(from) || from.NumChildren() != 1 {
		return nil, false
	}
	fc := from.Child(0)
	rel := fc.Child(0)
	if rel == nil || rel.Type != ast.TypeTabExpr {
		return nil, false
	}
	p := &ColPlan{Table: rel.Value(), alias: fc.Attr("alias"), limit: -1}

	if w := sel.Child(ast.SlotWhere); !ast.IsEmptyClause(w) {
		if !collectPreds(w.Child(0), &p.preds) {
			return nil, false
		}
	}

	gb := sel.Child(ast.SlotGroupBy)
	if !ast.IsEmptyClause(gb) {
		if gb.NumChildren() == 0 || gb.NumChildren() > maxGroupCols {
			return nil, false
		}
		for _, ge := range gb.Children {
			ref, ok := colRefOf(ge)
			if !ok {
				return nil, false
			}
			p.groupBy = append(p.groupBy, ref)
		}
	}

	proj := sel.Child(ast.SlotProject)
	if proj == nil || proj.NumChildren() == 0 {
		return nil, false
	}
	// Mirror Exec's aggregated-mode detection exactly: GROUP BY present,
	// or any projection containing an aggregate. (HAVING also triggers
	// it there, but HAVING already fell back above.)
	p.grouped = len(p.groupBy) > 0
	if !p.grouped {
		for _, pc := range proj.Children {
			if hasAggregate(pc.Child(0)) {
				p.grouped = true
				break
			}
		}
	}
	for _, pc := range proj.Children {
		cp, ok := compileProj(pc, p.grouped)
		if !ok {
			return nil, false
		}
		p.projs = append(p.projs, cp)
	}

	if lim := sel.Child(ast.SlotLimit); !ast.IsEmptyClause(lim) && lim.NumChildren() > 0 {
		n, ok := numericLiteral(lim.Child(0))
		if !ok || n < 0 {
			return nil, false // the row path reports the error
		}
		p.limit = int(n)
	}
	return p, true
}

// compileProj compiles one projection clause. Output names replicate
// projectionNames: explicit alias wins, a bare column projects under
// its written name, anything else renders through ast.SQL.
func compileProj(pc *ast.Node, grouped bool) (colProj, bool) {
	e := unparen(pc.Child(0))
	alias := pc.Attr("alias")
	name := func(def string) string {
		if alias != "" {
			return alias
		}
		return def
	}
	// NOTE: projectionNames renders the *unwrapped* child, so only
	// treat parenthesized expressions as transparent when they carry an
	// alias (the rendered name of "(x)" differs from "x").
	raw := pc.Child(0)
	if raw != e && alias == "" {
		return colProj{}, false
	}
	switch e.Type {
	case ast.TypeStarExpr:
		// The row path recognizes stars only as a direct projection
		// child (a parenthesized star would not expand there).
		if grouped || raw != e {
			return colProj{}, false
		}
		return colProj{kind: projStar, starQual: e.Attr("table")}, true
	case ast.TypeColExpr:
		return colProj{
			kind: projCol,
			col:  colRef{qual: e.Attr("table"), name: e.Value()},
			name: name(e.Value()),
		}, true
	case ast.TypeFuncExpr:
		if !grouped {
			return colProj{}, false
		}
		fname := e.Child(0).Value()
		if !aggregateNames[fname] || e.Attr("distinct") == "true" {
			return colProj{}, false
		}
		if fname == "count" && (e.NumChildren() == 1 || e.Child(1).Type == ast.TypeStarExpr) {
			return colProj{kind: projAgg, agg: aggCountStar, name: name(ast.SQL(raw))}, true
		}
		if e.NumChildren() != 2 {
			return colProj{}, false
		}
		arg, ok := colRefOf(e.Child(1))
		if !ok {
			return colProj{}, false
		}
		var k aggKind
		switch fname {
		case "count":
			k = aggCount
		case "sum":
			k = aggSum
		case "avg":
			k = aggAvg
		case "min":
			k = aggMin
		case "max":
			k = aggMax
		default:
			return colProj{}, false
		}
		return colProj{kind: projAgg, agg: k, col: arg, name: name(ast.SQL(raw))}, true
	}
	return colProj{}, false
}

// collectPreds flattens an AND-tree of supported predicates. Any
// unsupported node anywhere in the tree rejects the whole query —
// partial pushdown would change short-circuit error behavior.
func collectPreds(n *ast.Node, out *[]colPred) bool {
	n = unparen(n)
	if n == nil {
		return false
	}
	switch n.Type {
	case ast.TypeBiExpr:
		op := n.Attr("op")
		if op == "and" {
			return collectPreds(n.Child(0), out) && collectPreds(n.Child(1), out)
		}
		return compileComparison(n, op, out)
	case ast.TypeBetween:
		ref, ok := colRefOf(n.Child(0))
		if !ok {
			return false
		}
		lo, ok := litOf(n.Child(1))
		if !ok {
			return false
		}
		hi, ok := litOf(n.Child(2))
		if !ok {
			return false
		}
		*out = append(*out, colPred{col: ref, op: "between", lo: lo, hi: hi, not: n.Attr("not") == "true"})
		return true
	case ast.TypeInExpr:
		ref, ok := colRefOf(n.Child(0))
		if !ok {
			return false
		}
		if n.NumChildren() < 2 {
			return false
		}
		items := make([]Value, 0, n.NumChildren()-1)
		for _, item := range n.Children[1:] {
			v, ok := litOf(item)
			if !ok {
				return false // subquery or expression item
			}
			items = append(items, v)
		}
		*out = append(*out, colPred{col: ref, op: "in", items: items, not: n.Attr("not") == "true"})
		return true
	}
	return false
}

func compileComparison(n *ast.Node, op string, out *[]colPred) bool {
	if op == "!=" {
		op = "<>"
	}
	switch op {
	case "is", "is not":
		// The row path tests the lhs for NULL without evaluating the rhs.
		ref, ok := colRefOf(n.Child(0))
		if !ok {
			return false
		}
		*out = append(*out, colPred{col: ref, op: op})
		return true
	case "like", "not like":
		// LIKE is not symmetric: only column-on-the-left compiles.
		ref, ok := colRefOf(n.Child(0))
		if !ok {
			return false
		}
		lit, ok := litOf(n.Child(1))
		if !ok {
			return false
		}
		*out = append(*out, colPred{col: ref, op: op, lit: lit})
		return true
	case "=", "<>", "<", "<=", ">", ">=":
		if ref, ok := colRefOf(n.Child(0)); ok {
			lit, ok := litOf(n.Child(1))
			if !ok {
				return false
			}
			*out = append(*out, colPred{col: ref, op: op, lit: lit})
			return true
		}
		// literal OP column: flip the inequality around the column.
		lit, ok := litOf(n.Child(0))
		if !ok {
			return false
		}
		ref, ok := colRefOf(n.Child(1))
		if !ok {
			return false
		}
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		}
		*out = append(*out, colPred{col: ref, op: op, lit: lit})
		return true
	}
	return false
}

func unparen(n *ast.Node) *ast.Node {
	for n != nil && n.Type == ast.TypeParen {
		n = n.Child(0)
	}
	return n
}

func colRefOf(n *ast.Node) (colRef, bool) {
	n = unparen(n)
	if n == nil || n.Type != ast.TypeColExpr {
		return colRef{}, false
	}
	return colRef{qual: n.Attr("table"), name: n.Value()}, true
}

// litOf evaluates a literal node to the exact Value the row path's
// eval would produce.
func litOf(n *ast.Node) (Value, bool) {
	n = unparen(n)
	if n == nil {
		return Value{}, false
	}
	switch n.Type {
	case ast.TypeNumExpr:
		f, ok := numericLiteral(n)
		if !ok {
			return Value{}, false
		}
		return Num(f), true
	case ast.TypeStrExpr:
		return Str(n.Value()), true
	case ast.TypeBoolExpr:
		return Boolean(strings.EqualFold(n.Value(), "true")), true
	case ast.TypeNullExpr:
		return Null(), true
	case ast.TypeUniExpr:
		// Fold a negated literal (BETWEEN -3 AND 6). evalUnary errors
		// on non-numeric operands, so those shapes stay on the row path.
		if n.Attr("op") != "-" {
			return Value{}, false
		}
		inner, ok := litOf(n.Child(0))
		if !ok {
			return Value{}, false
		}
		f, ok := inner.AsNumber()
		if !ok {
			return Value{}, false
		}
		return Num(-f), true
	}
	return Value{}, false
}

// PredicateColumn names a (table, column) pair that appears in a
// selective predicate of a mined query — the auto-selection input for
// secondary indexes.
type PredicateColumn struct {
	Table string
	Col   string
}

// PredicateColumns walks an interface's initial AST and returns the
// (table, column) pairs used in equality or IN predicates of
// single-table SELECTs — the predicates a sorted secondary index can
// serve. Ranges are excluded: the scan kernels already handle them
// well, and equality is where the mined SDSS-style id lookups live.
func PredicateColumns(n *ast.Node) []PredicateColumn {
	var out []PredicateColumn
	seen := map[PredicateColumn]bool{}
	n.Walk(func(node *ast.Node, _ ast.Path) bool {
		if node == nil || node.Type != ast.TypeSelect {
			return true
		}
		from := node.Child(ast.SlotFrom)
		if ast.IsEmptyClause(from) || from.NumChildren() != 1 {
			return true
		}
		rel := from.Child(0).Child(0)
		if rel == nil || rel.Type != ast.TypeTabExpr {
			return true
		}
		w := node.Child(ast.SlotWhere)
		if ast.IsEmptyClause(w) {
			return true
		}
		collectEqualityCols(w.Child(0), rel.Value(), seen, &out)
		return true
	})
	return out
}

func collectEqualityCols(n *ast.Node, table string, seen map[PredicateColumn]bool, out *[]PredicateColumn) {
	n = unparen(n)
	if n == nil {
		return
	}
	add := func(ref colRef) {
		pc := PredicateColumn{Table: table, Col: ref.name}
		if !seen[pc] {
			seen[pc] = true
			*out = append(*out, pc)
		}
	}
	switch n.Type {
	case ast.TypeBiExpr:
		switch n.Attr("op") {
		case "and":
			collectEqualityCols(n.Child(0), table, seen, out)
			collectEqualityCols(n.Child(1), table, seen, out)
		case "=":
			if ref, ok := colRefOf(n.Child(0)); ok {
				if _, lit := litOf(n.Child(1)); lit {
					add(ref)
				}
			} else if ref, ok := colRefOf(n.Child(1)); ok {
				if _, lit := litOf(n.Child(0)); lit {
					add(ref)
				}
			}
		}
	case ast.TypeInExpr:
		if ref, ok := colRefOf(n.Child(0)); ok && n.Attr("not") != "true" {
			allLit := n.NumChildren() >= 2
			for _, item := range n.Children[1:] {
				if _, ok := litOf(item); !ok {
					allLit = false
					break
				}
			}
			if allLit {
				add(ref)
			}
		}
	}
}
