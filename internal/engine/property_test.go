package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sqlparser"
)

// randomExecDB builds a small random table deterministically.
func randomExecDB(r *rand.Rand) *DB {
	db := NewDB()
	t := NewTable("r", "k", "v", "s")
	n := 5 + r.Intn(40)
	for i := 0; i < n; i++ {
		t.MustAddRow(
			Num(float64(r.Intn(5))),
			Num(float64(r.Intn(100))),
			Str(string(rune('a'+r.Intn(4)))),
		)
	}
	db.AddTable(t)
	return db
}

// TestPropertyWhereSubset: filtering never yields more rows than the
// unfiltered scan, and filters compose monotonically (AND narrows).
func TestPropertyWhereSubset(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		db := randomExecDB(r)
		all := exec(t, db, "SELECT k, v FROM r")
		x := r.Intn(100)
		filtered := exec(t, db, fmt.Sprintf("SELECT k, v FROM r WHERE v > %d", x))
		both := exec(t, db, fmt.Sprintf("SELECT k, v FROM r WHERE v > %d AND k = 1", x))
		if len(filtered.Rows) > len(all.Rows) || len(both.Rows) > len(filtered.Rows) {
			t.Fatalf("monotonicity violated: %d, %d, %d",
				len(all.Rows), len(filtered.Rows), len(both.Rows))
		}
	}
}

// TestPropertyLimitBound: LIMIT/TOP n returns at most n rows and is a
// prefix of the unlimited ordering.
func TestPropertyLimitBound(t *testing.T) {
	r := rand.New(rand.NewSource(18))
	for trial := 0; trial < 30; trial++ {
		db := randomExecDB(r)
		n := 1 + r.Intn(10)
		full := exec(t, db, "SELECT v FROM r ORDER BY v DESC")
		lim := exec(t, db, fmt.Sprintf("SELECT TOP %d v FROM r ORDER BY v DESC", n))
		if len(lim.Rows) > n {
			t.Fatalf("TOP %d returned %d rows", n, len(lim.Rows))
		}
		for i := range lim.Rows {
			if Compare(lim.Rows[i][0], full.Rows[i][0]) != 0 {
				t.Fatalf("TOP result is not a prefix at row %d", i)
			}
		}
	}
}

// TestPropertyDistinctIdempotent: DISTINCT output has no duplicate rows
// and re-applying it changes nothing.
func TestPropertyDistinctIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(28))
	for trial := 0; trial < 30; trial++ {
		db := randomExecDB(r)
		d := exec(t, db, "SELECT DISTINCT k, s FROM r")
		seen := map[string]bool{}
		for _, row := range d.Rows {
			key := rowKey(row)
			if seen[key] {
				t.Fatalf("duplicate row after DISTINCT: %v", row)
			}
			seen[key] = true
		}
	}
}

// TestPropertyGroupCountsSum: per-group COUNT(*) sums to the table
// cardinality, and the number of groups equals COUNT(DISTINCT key).
func TestPropertyGroupCountsSum(t *testing.T) {
	r := rand.New(rand.NewSource(38))
	for trial := 0; trial < 30; trial++ {
		db := randomExecDB(r)
		total := exec(t, db, "SELECT COUNT(*) FROM r").Rows[0][0].Num
		grouped := exec(t, db, "SELECT k, COUNT(*) FROM r GROUP BY k")
		sum := 0.0
		for _, row := range grouped.Rows {
			sum += row[1].Num
		}
		if sum != total {
			t.Fatalf("group counts sum %v != total %v", sum, total)
		}
		distinct := exec(t, db, "SELECT COUNT(DISTINCT k) FROM r").Rows[0][0].Num
		if float64(len(grouped.Rows)) != distinct {
			t.Fatalf("groups %d != distinct keys %v", len(grouped.Rows), distinct)
		}
	}
}

// TestPropertyAggregateAlgebra: SUM = AVG * COUNT, MIN <= AVG <= MAX
// for every group.
func TestPropertyAggregateAlgebra(t *testing.T) {
	r := rand.New(rand.NewSource(48))
	for trial := 0; trial < 30; trial++ {
		db := randomExecDB(r)
		res := exec(t, db,
			"SELECT k, SUM(v), AVG(v), COUNT(v), MIN(v), MAX(v) FROM r GROUP BY k")
		for _, row := range res.Rows {
			sum, avg, cnt := row[1].Num, row[2].Num, row[3].Num
			min, max := row[4].Num, row[5].Num
			if diff := sum - avg*cnt; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("SUM %v != AVG %v * COUNT %v", sum, avg, cnt)
			}
			if min > avg || avg > max {
				t.Fatalf("MIN %v <= AVG %v <= MAX %v violated", min, avg, max)
			}
		}
	}
}

// TestPropertyJoinVsWhere: an inner join equals the cross product
// filtered by the same condition.
func TestPropertyJoinVsWhere(t *testing.T) {
	r := rand.New(rand.NewSource(58))
	for trial := 0; trial < 20; trial++ {
		db := randomExecDB(r)
		u := NewTable("u", "k2", "w")
		for i := 0; i < 4+r.Intn(10); i++ {
			u.MustAddRow(Num(float64(r.Intn(5))), Num(float64(r.Intn(50))))
		}
		db.AddTable(u)
		joined := exec(t, db, "SELECT COUNT(*) FROM r JOIN u ON k = k2")
		crossed := exec(t, db, "SELECT COUNT(*) FROM r, u WHERE k = k2")
		if joined.Rows[0][0].Num != crossed.Rows[0][0].Num {
			t.Fatalf("join %v != filtered cross product %v",
				joined.Rows[0][0], crossed.Rows[0][0])
		}
	}
}

func TestQueryViaSQLParseAgreesWithDirectParse(t *testing.T) {
	db := randomExecDB(rand.New(rand.NewSource(68)))
	a, err := ExecSQL(db, sqlparser.Parse, "SELECT k FROM r WHERE v > 10")
	if err != nil {
		t.Fatal(err)
	}
	b := exec(t, db, "SELECT k FROM r WHERE v > 10")
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("ExecSQL disagrees: %d vs %d", len(a.Rows), len(b.Rows))
	}
}
