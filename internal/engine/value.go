// Package engine is the exec() substrate the paper assumes (§3.3): an
// in-memory SQL executor that runs the ASTs produced by generated
// interfaces. It supports scans, filters, grouping and aggregation,
// HAVING, ORDER BY, TOP/LIMIT, DISTINCT, FROM-subqueries and table-
// valued functions (including a synthetic SDSS fGetNearbyObjEq), which
// covers every query shape in the paper's three logs.
package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ValueKind enumerates runtime value types.
type ValueKind int

const (
	KindNull ValueKind = iota
	KindNumber
	KindString
	KindBool
)

// Value is a runtime SQL value.
type Value struct {
	Kind ValueKind
	Num  float64
	Str  string
	Bool bool
}

// Null, Num, Str and Bool are Value constructors.
func Null() Value          { return Value{Kind: KindNull} }
func Num(f float64) Value  { return Value{Kind: KindNumber, Num: f} }
func Str(s string) Value   { return Value{Kind: KindString, Str: s} }
func Boolean(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// Truthy interprets the value as a predicate result (NULL is false).
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.Bool
	case KindNumber:
		return v.Num != 0
	case KindString:
		return v.Str != ""
	}
	return false
}

// AsNumber coerces to a float64 where possible.
func (v Value) AsNumber() (float64, bool) {
	switch v.Kind {
	case KindNumber:
		return v.Num, true
	case KindBool:
		if v.Bool {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(v.Str, 64)
		return f, err == nil
	}
	return 0, false
}

// String renders the value for result tables.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindNumber:
		if v.Num == math.Trunc(v.Num) && math.Abs(v.Num) < 1e15 {
			return strconv.FormatInt(int64(v.Num), 10)
		}
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindString:
		return v.Str
	case KindBool:
		if v.Bool {
			return "true"
		}
		return "false"
	}
	return "?"
}

// Compare orders two values: NULLs first, then numbers, strings, bools.
// Cross-kind comparisons coerce to number when both sides allow it,
// otherwise compare the string forms.
func Compare(a, b Value) int {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0
		case a.IsNull():
			return -1
		default:
			return 1
		}
	}
	if af, ok := a.AsNumber(); ok {
		if bf, ok2 := b.AsNumber(); ok2 {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			}
			return 0
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Equal reports SQL equality (NULL never equals anything, including
// NULL; callers that need grouping semantics use Key instead).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Key returns a grouping key where NULLs compare equal to each other.
func (v Value) Key() string {
	if v.IsNull() {
		return "\x00null"
	}
	return fmt.Sprintf("%d:%s", v.Kind, v.String())
}

// Like implements SQL LIKE with % and _ wildcards (case-insensitive,
// matching common engine defaults for text analysis workloads).
func Like(s, pattern string) bool {
	return likeMatch(strings.ToLower(s), strings.ToLower(pattern))
}

func likeMatch(s, p string) bool {
	// Dynamic programming over positions; patterns are short.
	m, n := len(s), len(p)
	dp := make([]bool, m+1)
	dp[0] = true
	for j := 0; j < n; j++ {
		c := p[j]
		if c == '%' {
			// dp'[i] = any dp[k] for k <= i
			seen := false
			for i := 0; i <= m; i++ {
				if dp[i] {
					seen = true
				}
				dp[i] = seen
			}
			continue
		}
		prev := dp[0]
		dp[0] = false
		for i := 1; i <= m; i++ {
			cur := dp[i]
			dp[i] = prev && (c == '_' || s[i-1] == c)
			prev = cur
		}
	}
	return dp[m]
}
