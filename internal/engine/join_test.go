package engine

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

func joinDB() *DB {
	db := NewDB()
	emp := NewTable("emp", "id", "name", "dept")
	emp.MustAddRow(Num(1), Str("ann"), Num(10))
	emp.MustAddRow(Num(2), Str("bob"), Num(20))
	emp.MustAddRow(Num(3), Str("cyd"), Num(99)) // no matching dept
	db.AddTable(emp)
	dept := NewTable("dept", "did", "dname")
	dept.MustAddRow(Num(10), Str("eng"))
	dept.MustAddRow(Num(20), Str("ops"))
	dept.MustAddRow(Num(30), Str("hr")) // no matching emp
	db.AddTable(dept)
	return db
}

func TestInnerJoin(t *testing.T) {
	res := exec(t, joinDB(),
		"SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.did ORDER BY e.name")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "ann" || res.Rows[0][1].Str != "eng" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
}

func TestInnerJoinKeywordVariant(t *testing.T) {
	a := exec(t, joinDB(),
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.did")
	b := exec(t, joinDB(),
		"SELECT e.name FROM emp e INNER JOIN dept d ON e.dept = d.did")
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("JOIN and INNER JOIN disagree: %d vs %d", len(a.Rows), len(b.Rows))
	}
}

func TestLeftJoinPadsNulls(t *testing.T) {
	res := exec(t, joinDB(),
		"SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept = d.did ORDER BY e.name")
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// cyd has no department: dname is NULL.
	last := res.Rows[2]
	if last[0].Str != "cyd" || !last[1].IsNull() {
		t.Fatalf("unmatched row = %v", last)
	}
	// LEFT OUTER JOIN is the same thing.
	res2 := exec(t, joinDB(),
		"SELECT e.name FROM emp e LEFT OUTER JOIN dept d ON e.dept = d.did")
	if len(res2.Rows) != 3 {
		t.Fatalf("LEFT OUTER rows = %d", len(res2.Rows))
	}
}

func TestJoinChain(t *testing.T) {
	db := joinDB()
	loc := NewTable("loc", "ldept", "city")
	loc.MustAddRow(Num(10), Str("nyc"))
	loc.MustAddRow(Num(20), Str("sfo"))
	db.AddTable(loc)
	res := exec(t, db,
		"SELECT e.name, l.city FROM emp e JOIN dept d ON e.dept = d.did JOIN loc l ON d.did = l.ldept ORDER BY e.name")
	if len(res.Rows) != 2 || res.Rows[0][1].Str != "nyc" {
		t.Fatalf("chained join rows = %v", res.Rows)
	}
}

func TestJoinMixedWithComma(t *testing.T) {
	// A comma item next to a join chain (cross product of the two).
	res := exec(t, joinDB(),
		"SELECT COUNT(*) FROM dept, emp e JOIN dept d ON e.dept = d.did")
	// 3 depts × 2 matched join rows = 6.
	if res.Rows[0][0].Num != 6 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestJoinRoundTrip(t *testing.T) {
	for _, q := range []string{
		"SELECT e.name FROM emp e JOIN dept d ON e.dept = d.did",
		"SELECT e.name FROM emp e LEFT JOIN dept d ON e.dept = d.did WHERE e.id > 1",
		"SELECT a FROM t1 JOIN t2 ON t1.x = t2.y JOIN t3 ON t2.y = t3.z",
	} {
		first, err := sqlparser.Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		second, err := sqlparser.Parse(ast.SQL(first))
		if err != nil {
			t.Fatalf("reparse of %q: %v", ast.SQL(first), err)
		}
		if !ast.Equal(first, second) {
			t.Fatalf("round trip changed %q:\n%s\n%s", q, first, second)
		}
	}
}

func TestJoinOnErrorPropagates(t *testing.T) {
	if _, err := Exec(joinDB(), sqlparser.MustParse(
		"SELECT e.name FROM emp e JOIN dept d ON e.nosuch = d.did")); err == nil {
		t.Fatal("bad ON column must error")
	}
}
