package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Exec executes a SELECT AST against the database and returns the
// result relation. This is the exec() function the paper assumes is
// provided (§3.3); generated interfaces call it on every interaction.
//
// Exec consumes only the read-only Catalog interface: filtering and
// grouping only read source rows, ORDER BY sorts through a fresh index
// slice, and every result row is newly allocated by the projection, so
// nothing the catalog hands out is ever mutated. It is therefore safe
// to call concurrently from many goroutines against a shared catalog,
// as long as the catalog itself is immutable while serving — a *DB
// built before serving begins, or a copy-on-write store snapshot
// (internal/store), which is immutable by construction. Registered
// TableFuncs must uphold the same property.
func Exec(cat Catalog, sel *ast.Node) (*Table, error) {
	if sel == nil || sel.Type != ast.TypeSelect {
		return nil, fmt.Errorf("engine: not a SELECT ast (%v)", sel)
	}
	src, err := evalFrom(cat, sel.Child(ast.SlotFrom))
	if err != nil {
		return nil, err
	}
	ctx := &evalCtx{cat: cat, bindings: src.bindings}

	// WHERE.
	rows := src.rows
	if w := sel.Child(ast.SlotWhere); !ast.IsEmptyClause(w) {
		var kept [][]Value
		for _, row := range rows {
			v, err := ctx.withRow(row).eval(w.Child(0))
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				kept = append(kept, row)
			}
		}
		rows = kept
	}

	proj := sel.Child(ast.SlotProject)
	groupBy := sel.Child(ast.SlotGroupBy)
	having := sel.Child(ast.SlotHaving)
	orderBy := sel.Child(ast.SlotOrderBy)

	aggregated := !ast.IsEmptyClause(groupBy) || !ast.IsEmptyClause(having)
	if !aggregated {
		for _, pc := range proj.Children {
			if hasAggregate(pc.Child(0)) {
				aggregated = true
				break
			}
		}
	}

	outCols := projectionNames(proj, src)
	var out [][]Value
	var sortKeys [][]Value

	evalOrderKeys := func(rowCtx *evalCtx) ([]Value, error) {
		if ast.IsEmptyClause(orderBy) {
			return nil, nil
		}
		keys := make([]Value, 0, orderBy.NumChildren())
		for _, oc := range orderBy.Children {
			v, err := rowCtx.eval(oc.Child(0))
			if err != nil {
				return nil, err
			}
			keys = append(keys, v)
		}
		return keys, nil
	}

	if aggregated {
		groups, order, err := groupRows(ctx, rows, groupBy)
		if err != nil {
			return nil, err
		}
		for _, key := range order {
			g := groups[key]
			gctx := &evalCtx{cat: cat, bindings: src.bindings, group: g}
			if len(g) > 0 {
				gctx.row = g[0]
			} else {
				gctx.row = make([]Value, len(src.bindings))
			}
			if !ast.IsEmptyClause(having) {
				v, err := gctx.eval(having.Child(0))
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			row, err := projectRow(gctx, proj, src)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
			keys, err := evalOrderKeys(gctx)
			if err != nil {
				return nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	} else {
		for _, r := range rows {
			rctx := ctx.withRow(r)
			row, err := projectRow(rctx, proj, src)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
			keys, err := evalOrderKeys(rctx)
			if err != nil {
				return nil, err
			}
			sortKeys = append(sortKeys, keys)
		}
	}

	// DISTINCT.
	if sel.Attr("distinct") == "true" {
		seen := map[string]bool{}
		var dedup [][]Value
		var dedupKeys [][]Value
		for i, row := range out {
			k := rowKey(row)
			if seen[k] {
				continue
			}
			seen[k] = true
			dedup = append(dedup, row)
			dedupKeys = append(dedupKeys, sortKeys[i])
		}
		out, sortKeys = dedup, dedupKeys
	}

	// ORDER BY (stable).
	if !ast.IsEmptyClause(orderBy) {
		dirs := make([]int, orderBy.NumChildren())
		for i, oc := range orderBy.Children {
			if oc.Attr("dir") == "desc" {
				dirs[i] = -1
			} else {
				dirs[i] = 1
			}
		}
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := sortKeys[idx[a]], sortKeys[idx[b]]
			for i := range ka {
				cmp := Compare(ka[i], kb[i]) * dirs[i]
				if cmp != 0 {
					return cmp < 0
				}
			}
			return false
		})
		sorted := make([][]Value, len(out))
		for i, j := range idx {
			sorted[i] = out[j]
		}
		out = sorted
	}

	// TOP / LIMIT.
	if lim := sel.Child(ast.SlotLimit); !ast.IsEmptyClause(lim) && lim.NumChildren() > 0 {
		n, ok := numericLiteral(lim.Child(0))
		if !ok || n < 0 {
			return nil, fmt.Errorf("engine: bad LIMIT value %q", lim.Child(0).Value())
		}
		if int(n) < len(out) {
			out = out[:int(n)]
		}
	}

	res := &Table{Name: "result", Cols: outCols, Rows: out}
	return res, nil
}

// source is the joined FROM result: bindings plus materialized rows.
type source struct {
	bindings []binding
	rows     [][]Value
}

// evalFrom resolves the FROM clause into a single cross-joined source.
// An empty FROM produces a single empty row so SELECT 1+1 works.
func evalFrom(cat Catalog, from *ast.Node) (*source, error) {
	if ast.IsEmptyClause(from) {
		return &source{rows: [][]Value{{}}}, nil
	}
	total := &source{rows: [][]Value{{}}}
	for _, fc := range from.Children {
		s, err := resolveSource(cat, fc)
		if err != nil {
			return nil, err
		}
		total = crossJoin(total, s)
	}
	return total, nil
}

// crossJoin combines two sources (Cartesian product).
func crossJoin(a, b *source) *source {
	out := &source{}
	out.bindings = append(out.bindings, a.bindings...)
	out.bindings = append(out.bindings, b.bindings...)
	for _, l := range a.rows {
		for _, r := range b.rows {
			row := make([]Value, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// resolveSource materializes one FROM clause, including JOIN ... ON
// chains, into a source.
func resolveSource(cat Catalog, fc *ast.Node) (*source, error) {
	if rel := fc.Child(0); rel != nil && rel.Type == ast.TypeJoin {
		return resolveJoin(cat, rel)
	}
	rel, alias, err := resolveRelation(cat, fc)
	if err != nil {
		return nil, err
	}
	s := &source{}
	for _, col := range rel.Cols {
		s.bindings = append(s.bindings, binding{alias: alias, col: col})
	}
	s.rows = rel.Rows
	return s, nil
}

// resolveJoin evaluates an inner or left join: the cross product
// filtered by the ON condition, plus (for LEFT JOIN) unmatched left
// rows padded with NULLs.
func resolveJoin(cat Catalog, j *ast.Node) (*source, error) {
	left, err := resolveSource(cat, j.Child(0))
	if err != nil {
		return nil, err
	}
	right, err := resolveSource(cat, j.Child(1))
	if err != nil {
		return nil, err
	}
	on := j.Child(2)
	out := &source{}
	out.bindings = append(out.bindings, left.bindings...)
	out.bindings = append(out.bindings, right.bindings...)
	ctx := &evalCtx{cat: cat, bindings: out.bindings}
	leftJoin := j.Attr("kind") == "left"
	nulls := make([]Value, len(right.bindings))
	for i := range nulls {
		nulls[i] = Null()
	}
	for _, l := range left.rows {
		matched := false
		for _, r := range right.rows {
			row := make([]Value, 0, len(l)+len(r))
			row = append(row, l...)
			row = append(row, r...)
			v, err := ctx.withRow(row).eval(on)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				matched = true
				out.rows = append(out.rows, row)
			}
		}
		if leftJoin && !matched {
			row := make([]Value, 0, len(l)+len(nulls))
			row = append(row, l...)
			row = append(row, nulls...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// resolveRelation materializes one FROM item (table, subquery or
// table-valued function) and returns it with its binding alias.
func resolveRelation(cat Catalog, fc *ast.Node) (*Table, string, error) {
	rel := fc.Child(0)
	alias := fc.Attr("alias")
	switch rel.Type {
	case ast.TypeTabExpr:
		t, ok := cat.Table(rel.Value())
		if !ok {
			return nil, "", fmt.Errorf("engine: unknown table %q", rel.Value())
		}
		if alias == "" {
			alias = t.Name
		}
		return t, alias, nil
	case ast.TypeSubQuery:
		t, err := Exec(cat, rel.Child(0))
		if err != nil {
			return nil, "", err
		}
		return t, alias, nil
	case ast.TypeTabFunc:
		fn, ok := cat.Func(rel.Child(0).Value())
		if !ok {
			return nil, "", fmt.Errorf("engine: unknown table function %q", rel.Child(0).Value())
		}
		args := make([]Value, 0, rel.NumChildren()-1)
		ctx := &evalCtx{cat: cat}
		for _, a := range rel.Children[1:] {
			v, err := ctx.eval(a)
			if err != nil {
				return nil, "", err
			}
			args = append(args, v)
		}
		t, err := fn(args)
		if err != nil {
			return nil, "", err
		}
		if alias == "" {
			alias = t.Name
		}
		return t, alias, nil
	}
	return nil, "", fmt.Errorf("engine: unsupported FROM item %s", rel.Type)
}

// groupRows partitions rows by the GROUP BY expressions; with no GROUP
// BY every row falls into one group (global aggregation). Group order
// follows first appearance.
func groupRows(ctx *evalCtx, rows [][]Value, groupBy *ast.Node) (map[string][][]Value, []string, error) {
	groups := map[string][][]Value{}
	var order []string
	if ast.IsEmptyClause(groupBy) {
		groups[""] = rows
		return groups, []string{""}, nil
	}
	for _, row := range rows {
		rctx := ctx.withRow(row)
		var key strings.Builder
		for _, ge := range groupBy.Children {
			v, err := rctx.eval(ge)
			if err != nil {
				return nil, nil, err
			}
			key.WriteString(v.Key())
			key.WriteByte('\x01')
		}
		k := key.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	return groups, order, nil
}

// projectRow evaluates the projection list for one row/group context,
// expanding stars.
func projectRow(ctx *evalCtx, proj *ast.Node, src *source) ([]Value, error) {
	var out []Value
	for _, pc := range proj.Children {
		e := pc.Child(0)
		if e.Type == ast.TypeStarExpr {
			tbl := e.Attr("table")
			for i, b := range src.bindings {
				if tbl == "" || strings.EqualFold(b.alias, tbl) {
					out = append(out, ctx.row[i])
				}
			}
			continue
		}
		v, err := ctx.eval(e)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// projectionNames derives output column names: alias, column name, or
// a rendered expression.
func projectionNames(proj *ast.Node, src *source) []string {
	var out []string
	for _, pc := range proj.Children {
		e := pc.Child(0)
		if e.Type == ast.TypeStarExpr {
			tbl := e.Attr("table")
			for _, b := range src.bindings {
				if tbl == "" || strings.EqualFold(b.alias, tbl) {
					out = append(out, b.col)
				}
			}
			continue
		}
		switch {
		case pc.Attr("alias") != "":
			out = append(out, pc.Attr("alias"))
		case e.Type == ast.TypeColExpr:
			out = append(out, e.Value())
		default:
			out = append(out, ast.SQL(e))
		}
	}
	return out
}

func rowKey(row []Value) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(v.Key())
		b.WriteByte('\x01')
	}
	return b.String()
}

// ExecSQL is a convenience wrapper: parse-then-exec is what generated
// web interfaces do on every widget interaction.
func ExecSQL(cat Catalog, parse func(string) (*ast.Node, error), sql string) (*Table, error) {
	n, err := parse(sql)
	if err != nil {
		return nil, err
	}
	return Exec(cat, n)
}
