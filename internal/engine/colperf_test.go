package engine

import (
	"sort"
	"testing"
	"time"

	"repro/internal/sqlparser"
)

// TestColumnarAtLeast10x pins the PR's executable perf bar: the
// columnar kernels must beat row-at-a-time Exec by ≥10x on the OLAP
// widget shape (filter + group-by + aggregates over the on-time
// table), measured as median-of-runs on the same snapshot. The margin
// in practice is far larger (the row path re-materializes the scan,
// builds string group keys and walks the AST per row), so 10x holds on
// loaded CI machines.
func TestColumnarAtLeast10x(t *testing.T) {
	if testing.Short() {
		t.Skip("perf pin skipped in -short")
	}
	db := OnTimeDB(20000)
	sql := "SELECT DestState, COUNT(*), AVG(ArrDelay) FROM ontime WHERE Month = 2 AND DayOfWeek = 3 GROUP BY DestState"
	n, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	p, ok := CompileColumnar(n)
	if !ok {
		t.Fatal("OLAP widget query did not compile to a columnar plan")
	}

	// Correctness first; also warms the columnar projection cache so
	// the timed section measures kernels, not the one-time build.
	want, err := Exec(db, n)
	if err != nil {
		t.Fatal(err)
	}
	got, ran, err := ExecColumnar(db, p)
	if !ran || err != nil {
		t.Fatalf("columnar exec: ran=%v err=%v", ran, err)
	}
	if !sameResult(want, got) {
		t.Fatalf("columnar result differs from row path:\nrow:\n%s\ncolumnar:\n%s", want.Render(), got.Render())
	}

	median := func(runs int, f func()) time.Duration {
		ds := make([]time.Duration, runs)
		for i := range ds {
			t0 := time.Now()
			f()
			ds[i] = time.Since(t0)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[runs/2]
	}

	rowT := median(7, func() {
		if _, err := Exec(db, n); err != nil {
			t.Fatal(err)
		}
	})
	colT := median(31, func() {
		if _, ran, err := ExecColumnar(db, p); !ran || err != nil {
			t.Fatalf("ran=%v err=%v", ran, err)
		}
	})
	if colT <= 0 {
		colT = time.Nanosecond
	}
	ratio := float64(rowT) / float64(colT)
	t.Logf("row path median %v, columnar median %v (%.1fx)", rowT, colT, ratio)
	if ratio < 10 {
		t.Fatalf("columnar path only %.1fx faster than row path (row %v, columnar %v); want >= 10x",
			ratio, rowT, colT)
	}
}
