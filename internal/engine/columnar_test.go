package engine

import (
	"reflect"
	"testing"

	"repro/internal/sqlparser"
	"repro/internal/workload"
)

// sameResult compares the three logical fields of a result table —
// the byte-identity contract the columnar kernels promise.
func sameResult(a, b *Table) bool {
	return a.Name == b.Name &&
		reflect.DeepEqual(a.Cols, b.Cols) &&
		reflect.DeepEqual(a.Rows, b.Rows)
}

// runColumnar compiles and executes sql through the columnar path.
// ran=false means it fell back (either compile- or exec-time).
func runColumnar(t *testing.T, cat Catalog, sql string) (*Table, error, bool) {
	t.Helper()
	n, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	p, ok := CompileColumnar(n)
	if !ok {
		return nil, nil, false
	}
	res, ran, err := ExecColumnar(cat, p)
	if !ran {
		return nil, nil, false
	}
	return res, err, true
}

// assertBoth runs sql through both paths and asserts they agree:
// identical tables, or identical errors. wantColumnar pins whether the
// columnar path must have handled it.
func assertBoth(t *testing.T, cat Catalog, sql string, wantColumnar bool) {
	t.Helper()
	rowRes, rowErr := ExecSQL(cat, sqlparser.Parse, sql)
	colRes, colErr, ran := runColumnar(t, cat, sql)
	if ran != wantColumnar {
		t.Fatalf("%q: columnar ran=%v, want %v", sql, ran, wantColumnar)
	}
	if !ran {
		return
	}
	if (rowErr == nil) != (colErr == nil) {
		t.Fatalf("%q: row err=%v columnar err=%v", sql, rowErr, colErr)
	}
	if rowErr != nil {
		if rowErr.Error() != colErr.Error() {
			t.Fatalf("%q: error mismatch\nrow:      %v\ncolumnar: %v", sql, rowErr, colErr)
		}
		return
	}
	if !sameResult(rowRes, colRes) {
		t.Fatalf("%q: result mismatch\nrow:\n%s\ncolumnar:\n%s", sql, rowRes.Render(), colRes.Render())
	}
}

// mixedDB exercises every column layout: pure numeric, numeric with
// NULLs, dictionary strings with NULLs, numeric-looking strings, and
// a mixed-kind column that must stay boxed.
func mixedDB() *DB {
	db := NewDB()
	tb := NewTable("t", "n", "nn", "s", "ns", "m")
	add := func(n, nn, s, ns, m Value) { tb.MustAddRow(n, nn, s, ns, m) }
	add(Num(1), Num(10), Str("ca"), Str("5"), Num(1))
	add(Num(2), Null(), Str("tx"), Str("05"), Str("x"))
	add(Num(3), Num(30), Null(), Str("abc"), Boolean(true))
	add(Num(4), Num(40), Str("ca"), Str("7"), Null())
	add(Num(5), Null(), Str("CA"), Str("5.0"), Num(2))
	add(Num(1), Num(10), Str("wa"), Str("-3"), Str("x"))
	db.AddTable(tb)
	return db
}

func TestColumnarFiltersMatchRowPath(t *testing.T) {
	db := mixedDB()
	for _, sql := range []string{
		"SELECT n FROM t WHERE n = 1",
		"SELECT n FROM t WHERE n <> 1",
		"SELECT n FROM t WHERE 3 < n",
		"SELECT n FROM t WHERE n >= 2 AND n <= 4",
		"SELECT n, s FROM t WHERE s = 'ca'",
		"SELECT s FROM t WHERE s LIKE 'c%'",
		"SELECT s FROM t WHERE s IS NULL",
		"SELECT s FROM t WHERE s IS NOT NULL",
		"SELECT nn FROM t WHERE nn IS NULL",
		"SELECT n FROM t WHERE n BETWEEN 2 AND 4",
		"SELECT n FROM t WHERE n NOT BETWEEN 2 AND 4",
		"SELECT s FROM t WHERE s IN ('ca', 'wa')",
		"SELECT s FROM t WHERE s NOT IN ('ca', 'wa')",
		// Cross-kind coercion: numeric-looking strings vs numbers.
		"SELECT ns FROM t WHERE ns = 5",
		"SELECT ns FROM t WHERE ns = '05'",
		"SELECT ns FROM t WHERE ns > 4",
		"SELECT ns FROM t WHERE ns BETWEEN -3 AND 6",
		"SELECT n FROM t WHERE n = '2'",
		"SELECT n FROM t WHERE n IN ('1', 3)",
		// NULL literal comparisons are never true; LIKE stringifies NULL.
		"SELECT n FROM t WHERE nn = NULL",
		"SELECT s FROM t WHERE s LIKE 'NU%'",
		// Mixed-kind column: filter and project through the boxed path.
		"SELECT m FROM t WHERE m = 'x'",
		"SELECT m FROM t WHERE m = 1",
		"SELECT * FROM t WHERE n < 3",
		"SELECT t.n, t.s FROM t WHERE t.n <= 2",
		"SELECT a.n FROM t a WHERE a.n = 1",
		"SELECT TOP 2 n FROM t",
		"SELECT n FROM t",
	} {
		assertBoth(t, db, sql, true)
	}
}

func TestColumnarAggregatesMatchRowPath(t *testing.T) {
	db := mixedDB()
	for _, sql := range []string{
		"SELECT COUNT(*) FROM t",
		"SELECT COUNT(nn) FROM t",
		"SELECT COUNT(s) FROM t",
		"SELECT SUM(n), AVG(n), MIN(n), MAX(n) FROM t",
		"SELECT SUM(nn) FROM t",
		"SELECT MIN(s), MAX(s) FROM t",
		"SELECT SUM(ns) FROM t WHERE ns <> 'abc'",
		"SELECT s, COUNT(*) FROM t GROUP BY s",
		"SELECT s, SUM(n), AVG(nn) FROM t GROUP BY s",
		"SELECT n, COUNT(*) FROM t GROUP BY n",
		"SELECT s, n, COUNT(*) FROM t GROUP BY s, n",
		"SELECT s, MIN(n) AS lo, MAX(n) AS hi FROM t GROUP BY s",
		"SELECT COUNT(*) FROM t WHERE n > 100",
		"SELECT SUM(n) FROM t WHERE n > 100",
		"SELECT MIN(m), MAX(m) FROM t",
		"SELECT COUNT(m) FROM t",
		// Identical error text, surfaced in the same (group, proj) order.
		"SELECT SUM(ns) FROM t",
		"SELECT AVG(ns) FROM t",
		"SELECT s, SUM(ns) FROM t GROUP BY s",
		"SELECT SUM(m) FROM t",
		// Non-grouped projection alongside an aggregate (first-row rule).
		"SELECT s, COUNT(*) FROM t",
	} {
		assertBoth(t, db, sql, true)
	}
}

func TestColumnarFallbacks(t *testing.T) {
	db := mixedDB()
	for _, sql := range []string{
		"SELECT DISTINCT s FROM t",                                 // DISTINCT
		"SELECT n FROM t ORDER BY n",                               // ORDER BY
		"SELECT s, COUNT(*) FROM t GROUP BY s HAVING COUNT(*) > 1", // HAVING
		"SELECT n FROM t WHERE n = 1 OR n = 2",                     // OR tree
		"SELECT n FROM t WHERE NOT n = 1",                          // unary NOT
		"SELECT FLOOR(n) FROM t",                                   // scalar function
		"SELECT n + 1 FROM t",                                      // arithmetic
		"SELECT m FROM t GROUP BY m",                               // group on mixed column (exec-time)
		"SELECT COUNT(DISTINCT s) FROM t",                          // distinct aggregate
		"SELECT x.n FROM t x, t y",                                 // join
		"SELECT n FROM (SELECT n FROM t) d",                        // subquery FROM
		"SELECT nope FROM t",                                       // unknown column (row path errors)
	} {
		assertBoth(t, db, sql, false)
	}
}

// TestColumnarProviderCaching: the same *ColumnarTable is handed out
// on repeat lookups, and copy-on-write clones rebuild rather than
// serving a stale projection.
func TestColumnarProviderCaching(t *testing.T) {
	db := mixedDB()
	a, ok := db.Columnar("t")
	if !ok {
		t.Fatal("no columnar projection for t")
	}
	b, _ := db.Columnar("T") // case-insensitive name
	if a != b {
		t.Fatal("columnar projection not cached")
	}
	tb := NewTable("t", "n")
	tb.MustAddRow(Num(42))
	db2 := db.WithTable(tb)
	c, ok := db2.Columnar("t")
	if !ok || c == a {
		t.Fatal("copy-on-write clone served a stale columnar projection")
	}
	if c.N != 1 || len(c.Cols) != 1 {
		t.Fatalf("clone projection has wrong shape: %d rows, %v", c.N, c.Cols)
	}
}

func TestColIndexCachedLookup(t *testing.T) {
	tb := NewTable("x", "Alpha", "beta", "ALPHA", "Gamma")
	cases := []struct {
		name string
		want int
	}{
		{"alpha", 0}, {"Alpha", 0}, {"ALPHA", 0},
		{"beta", 1}, {"BETA", 1},
		{"gamma", 3},
		{"missing", -1},
	}
	for round := 0; round < 2; round++ { // cold then cached
		for _, c := range cases {
			if got := tb.ColIndex(c.name); got != c.want {
				t.Fatalf("round %d: ColIndex(%q) = %d, want %d", round, c.name, got, c.want)
			}
		}
	}
}

func TestPredicateColumns(t *testing.T) {
	n, err := sqlparser.Parse(
		"SELECT s, COUNT(*) FROM t WHERE n = 3 AND s IN ('a','b') AND nn > 5 GROUP BY s")
	if err != nil {
		t.Fatal(err)
	}
	got := PredicateColumns(n)
	want := []PredicateColumn{{Table: "t", Col: "n"}, {Table: "t", Col: "s"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PredicateColumns = %v, want %v", got, want)
	}
	// Joins and range-only predicates select nothing.
	n, err = sqlparser.Parse("SELECT a.x FROM t a, u b WHERE a.x = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := PredicateColumns(n); len(got) != 0 {
		t.Fatalf("join query selected index columns: %v", got)
	}
}

// TestColumnarCorpusIdentical is the property test over the mined
// widget corpus: every query of the three workload generators runs
// through both paths, and whenever the columnar path takes a query it
// must reproduce the row path's result (or error) exactly. A coverage
// floor keeps the plan compiler honest — if it silently starts
// rejecting the OLAP widget shapes, falling back "safely" on
// everything, this fails.
func TestColumnarCorpusIdentical(t *testing.T) {
	type corpus struct {
		name string
		db   *DB
		sqls []string
	}
	var sets []corpus

	onTime := OnTimeDB(300)
	var olap []string
	olap = append(olap, workloadSQLs(t, "olap")...)
	sets = append(sets, corpus{"olap", onTime, olap})
	sets = append(sets, corpus{"adhoc", onTime, workloadSQLs(t, "adhoc")})
	sets = append(sets, corpus{"sdss", SDSSDB(200), workloadSQLs(t, "sdss")})

	for _, c := range sets {
		ranCount := 0
		for _, sql := range c.sqls {
			n, err := sqlparser.Parse(sql)
			if err != nil {
				continue // the miner skips unparsable statements too
			}
			rowRes, rowErr := Exec(c.db, n)
			p, ok := CompileColumnar(n)
			if !ok {
				continue
			}
			colRes, ran, colErr := ExecColumnar(c.db, p)
			if !ran {
				continue
			}
			ranCount++
			if (rowErr == nil) != (colErr == nil) {
				t.Fatalf("[%s] %q: row err=%v columnar err=%v", c.name, sql, rowErr, colErr)
			}
			if rowErr != nil {
				if rowErr.Error() != colErr.Error() {
					t.Fatalf("[%s] %q: error mismatch\nrow:      %v\ncolumnar: %v", c.name, sql, rowErr, colErr)
				}
				continue
			}
			if !sameResult(rowRes, colRes) {
				t.Fatalf("[%s] %q: result mismatch\nrow:\n%s\ncolumnar:\n%s",
					c.name, sql, rowRes.Render(), colRes.Render())
			}
		}
		t.Logf("[%s] columnar handled %d/%d queries", c.name, ranCount, len(c.sqls))
		if c.name == "olap" && ranCount*2 < len(c.sqls) {
			t.Fatalf("[olap] columnar coverage collapsed: %d/%d", ranCount, len(c.sqls))
		}
	}
}

func BenchmarkColumnarOLAP(b *testing.B) {
	db := OnTimeDB(20000)
	sql := "SELECT DestState, COUNT(*), AVG(ArrDelay) FROM ontime WHERE Month = 2 AND DayOfWeek = 3 GROUP BY DestState"
	n, err := sqlparser.Parse(sql)
	if err != nil {
		b.Fatal(err)
	}
	p, ok := CompileColumnar(n)
	if !ok {
		b.Fatal("query did not compile columnar")
	}
	db.Columnar("ontime") // build outside the timer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ran, err := ExecColumnar(db, p); !ran || err != nil {
			b.Fatalf("ran=%v err=%v", ran, err)
		}
	}
}

func BenchmarkRowOLAP(b *testing.B) {
	db := OnTimeDB(20000)
	n, err := sqlparser.Parse(
		"SELECT DestState, COUNT(*), AVG(ArrDelay) FROM ontime WHERE Month = 2 AND DayOfWeek = 3 GROUP BY DestState")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(db, n); err != nil {
			b.Fatal(err)
		}
	}
}

// workloadSQLs pulls the mined-widget corpus out of the in-tree
// workload generators (deterministic seeds, same shapes the miner and
// smokes use).
func workloadSQLs(t testing.TB, name string) []string {
	t.Helper()
	switch name {
	case "olap":
		return workload.OLAPLog(150, 7).SQLs()
	case "adhoc":
		return workload.AdhocLog(100, 7).SQLs()
	case "sdss":
		var out []string
		for _, l := range workload.SDSSClients(4, 40, 7) {
			out = append(out, l.SQLs()...)
		}
		return out
	}
	t.Fatalf("unknown corpus %q", name)
	return nil
}
