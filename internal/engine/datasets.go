package engine

import (
	"fmt"
	"math/rand"
)

// OnTimeDB builds a deterministic synthetic sample of the OnTime flight
// delays dataset [36] that the paper's OLAP and ad-hoc logs query. The
// row count is configurable so benchmarks can scale it.
func OnTimeDB(rows int) *DB {
	r := rand.New(rand.NewSource(42))
	carriers := []string{"AA", "UA", "DL", "WN", "B6", "AS"}
	states := []string{"CA", "NY", "TX", "IL", "GA", "WA", "FL", "CO"}
	t := NewTable("ontime",
		"uniquecarrier", "carrier", "origin", "dest", "originstate", "deststate",
		"month", "day", "dayofweek", "delay", "arrdelay", "depdelay",
		"distance", "flights", "canceled", "diverted")
	for i := 0; i < rows; i++ {
		carrier := carriers[r.Intn(len(carriers))]
		delay := float64(r.Intn(240) - 30)
		t.MustAddRow(
			Str(carrier), Str(carrier),
			Str(states[r.Intn(len(states))]+"P"), Str(states[r.Intn(len(states))]+"P"),
			Str(states[r.Intn(len(states))]), Str(states[r.Intn(len(states))]),
			Num(float64(1+r.Intn(12))), Num(float64(1+r.Intn(28))), Num(float64(1+r.Intn(7))),
			Num(delay), Num(delay+float64(r.Intn(20)-10)), Num(delay+float64(r.Intn(20)-10)),
			Num(float64(100+r.Intn(2900))), Num(1), Num(float64(r.Intn(2))), Num(float64(r.Intn(50)/49)),
		)
	}
	db := NewDB()
	db.AddTable(t)
	return db
}

// SDSSDB builds a deterministic synthetic subset of the Sloan Digital
// Sky Survey schema: the spectro tables the per-client logs query plus
// the Galaxy table used with fGetNearbyObjEq. rowsPerTable controls
// scale.
func SDSSDB(rowsPerTable int) *DB {
	r := rand.New(rand.NewSource(7))
	db := NewDB()

	// Column sets mirror the synthetic SDSS workload's per-table id
	// attributes (internal/workload lookupAttrsFor, variant 0) so every
	// query a mined lookup interface can produce also executes.
	spec := NewTable("SpecLineIndex", "specObjId", "plateId", "ew", "ewErr", "z", "zErr", "name")
	xcr := NewTable("XCRedshift", "specObjId", "objId", "fieldId", "tempNo", "peakNo", "z", "zErr")
	specObj := NewTable("SpecObj", "specObjId", "objId", "mjd", "fiberId", "z", "zErr", "ra", "dec")
	for i := 0; i < rowsPerTable; i++ {
		id := Num(float64(r.Intn(1 << 16)))
		alt := Num(float64(r.Intn(1 << 16)))
		z := Num(r.Float64() * 3)
		zerr := Num(r.Float64() * 0.01)
		spec.MustAddRow(id, alt, Num(r.Float64()*10), Num(r.Float64()), z, zerr,
			Str(fmt.Sprintf("line0_%d", i%32)))
		xcr.MustAddRow(id, alt, Num(float64(r.Intn(1<<16))), Num(float64(r.Intn(40))),
			Num(float64(r.Intn(10))), z, zerr)
		specObj.MustAddRow(id, alt, Num(float64(r.Intn(1<<16))), Num(float64(r.Intn(640))),
			z, zerr, Num(r.Float64()*360), Num(r.Float64()*180-90))
	}
	db.AddTable(spec)
	db.AddTable(xcr)
	db.AddTable(specObj)

	gal := NewTable("Galaxy", "objID", "ra", "dec", "u", "g", "r", "i", "z", "redshift")
	for i := 0; i < rowsPerTable; i++ {
		gal.MustAddRow(
			Num(float64(r.Intn(1<<20))),
			Num(r.Float64()*360), Num(r.Float64()*180-90),
			Num(14+r.Float64()*8), Num(14+r.Float64()*8), Num(14+r.Float64()*8),
			Num(14+r.Float64()*8), Num(14+r.Float64()*8), Num(r.Float64()*2),
		)
	}
	db.AddTable(gal)

	photo := NewTable("PhotoObj", "objID", "ra", "dec", "type", "u", "g", "r", "i", "z")
	for i := 0; i < rowsPerTable; i++ {
		photo.MustAddRow(
			Num(float64(r.Intn(1<<20))),
			Num(r.Float64()*360), Num(r.Float64()*180-90), Num(float64(3+r.Intn(4))),
			Num(14+r.Float64()*8), Num(14+r.Float64()*8), Num(14+r.Float64()*8),
			Num(14+r.Float64()*8), Num(14+r.Float64()*8),
		)
	}
	db.AddTable(photo)

	db.AddFunc("dbo.fGetNearbyObjEq", FGetNearbyObjEq(gal))
	return db
}

// FGetNearbyObjEq builds the synthetic SDSS spatial UDF
// fGetNearbyObjEq(ra, dec, radius_arcmin) over the given Galaxy table:
// a deterministic cone of objects whose count scales with the radius —
// enough to exercise the table-function code path that Listing 6's
// queries rely on. It is exported separately from SDSSDB so a catalog
// restored from a persisted snapshot (which cannot serialize function
// values) can re-attach the UDF against its restored Galaxy table.
func FGetNearbyObjEq(gal *Table) TableFunc {
	return func(args []Value) (*Table, error) {
		if len(args) != 3 {
			return nil, fmt.Errorf("engine: fGetNearbyObjEq expects 3 args, got %d", len(args))
		}
		ra, ok1 := args[0].AsNumber()
		dec, ok2 := args[1].AsNumber()
		rad, ok3 := args[2].AsNumber()
		if !ok1 || !ok2 || !ok3 {
			return nil, fmt.Errorf("engine: fGetNearbyObjEq needs numeric args")
		}
		if gal.NumRows() == 0 {
			return NewTable("nearby", "objID", "distance"), nil
		}
		out := NewTable("nearby", "objID", "distance")
		n := int(rad*10) + 1
		if n > gal.NumRows() {
			n = gal.NumRows()
		}
		rr := rand.New(rand.NewSource(int64(ra*1e3) ^ int64(dec*1e3)))
		for i := 0; i < n; i++ {
			// Reuse Galaxy object ids so joins on objID produce matches.
			row := gal.Rows[rr.Intn(len(gal.Rows))]
			out.MustAddRow(row[0], Num(rr.Float64()*rad))
		}
		return out, nil
	}
}

// TinyDB builds the toy tables (t, u, T, ontime) that the paper's
// worked examples (Figure 3, Listings 4–7) reference, so the example
// binaries can execute any query of any generated interface.
func TinyDB() *DB {
	db := NewDB()
	// The table catalog is case-insensitive, so the paper's "t"
	// (Listing 4) and "T" (Figure 3, Listing 7) resolve to one table
	// carrying the union of the columns both sets of examples use.
	t := NewTable("t", "a", "b", "c", "d", "e", "x", "y", "action", "customer",
		"spec_ts", "cust", "country", "price", "cty", "sales", "costs")
	r := rand.New(rand.NewSource(3))
	names := []string{"Alice", "Bob", "Carol"}
	countries := []string{"China", "USA", "France"}
	regions := []string{"USA", "EUR", "JPN"}
	for i := 0; i < 64; i++ {
		t.MustAddRow(
			Num(float64(r.Intn(50))), Num(float64(r.Intn(50))), Num(float64(r.Intn(50))),
			Num(float64(r.Intn(50))), Num(float64(r.Intn(50))),
			Num(float64(r.Intn(10))), Str(string(rune('p'+r.Intn(3)))),
			Str(fmt.Sprintf("act%d", r.Intn(4))), Num(float64(r.Intn(100))),
			Num(float64(r.Intn(12)-4)), Str(names[r.Intn(3)]), Str(countries[r.Intn(3)]),
			Num(float64(r.Intn(1000))),
			Str(regions[r.Intn(3)]), Num(float64(r.Intn(10000))), Num(float64(r.Intn(8000))),
		)
	}
	db.AddTable(t)
	u := NewTable("u", "a", "b", "c", "d")
	for i := 0; i < 32; i++ {
		u.MustAddRow(Num(float64(r.Intn(20))), Num(float64(r.Intn(20))),
			Num(float64(r.Intn(20))), Num(float64(r.Intn(20))))
	}
	db.AddTable(u)
	return db
}
