package api

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/qlog"
)

// fakeRowIngestor implements Ingestor + RowIngestor, recording the
// last rows submission.
type fakeRowIngestor struct {
	lastID    string
	lastTable string
	lastRows  [][]engine.Value
	lastFlush bool
	fail      bool
}

func (f *fakeRowIngestor) Submit(id string, entries []qlog.Entry) (IngestAck, error) {
	return IngestAck{Accepted: len(entries)}, nil
}

func (f *fakeRowIngestor) Flush(id string) (uint64, error) { return 1, nil }

func (f *fakeRowIngestor) SubmitRows(id, table string, rows [][]engine.Value, flush bool) (RowsAck, error) {
	f.lastID, f.lastTable, f.lastRows, f.lastFlush = id, table, rows, flush
	if f.fail {
		return RowsAck{}, errors.New("store says no")
	}
	return RowsAck{Table: table, Accepted: len(rows), Flushed: flush, Epoch: 2, DataEpoch: 2, RowCount: 7}, nil
}

// fakePersister implements Persister in-memory.
type fakePersister struct {
	saves       int
	restores    int
	saveErr     error
	restoreErr  error
	restoreRows []SnapshotInterface
}

func (p *fakePersister) SaveAll() (*SnapshotResult, error) {
	p.saves++
	if p.saveErr != nil {
		return nil, p.saveErr
	}
	return &SnapshotResult{Dir: "mem", Interfaces: []SnapshotInterface{{ID: "olap", Epoch: 3}}}, nil
}

func (p *fakePersister) Restore() (*RestoreResult, error) {
	p.restores++
	if p.restoreErr != nil {
		return nil, p.restoreErr
	}
	return &RestoreResult{Dir: "mem", Interfaces: p.restoreRows}, nil
}

func TestServiceAppendRowsWithoutRowIngestor(t *testing.T) {
	svc, _ := newTestService(t)
	req := RowsRequest{Table: "ontime", Rows: [][]any{{1.0}}}
	// No ingestor at all.
	if _, err := svc.AppendRows("olap", req, false); errCode(t, err) != CodeIngestDisabled {
		t.Fatalf("no-ingestor code = %v", err)
	}
	// An ingestor that cannot do rows (log-only) is the same contract.
	svc.SetIngestor(logOnlyIngestor{})
	if _, err := svc.AppendRows("olap", req, false); errCode(t, err) != CodeIngestDisabled {
		t.Fatalf("log-only ingestor code = %v", err)
	}
	if _, err := svc.AppendRows("nope", req, false); errCode(t, err) != CodeNotFound {
		t.Fatalf("unknown interface code = %v", err)
	}
}

type logOnlyIngestor struct{}

func (logOnlyIngestor) Submit(id string, entries []qlog.Entry) (IngestAck, error) {
	return IngestAck{}, nil
}
func (logOnlyIngestor) Flush(id string) (uint64, error) { return 1, nil }

func TestServiceAppendRowsValidationAndConversion(t *testing.T) {
	svc, _ := newTestService(t)
	ri := &fakeRowIngestor{}
	svc.SetIngestor(ri)

	if _, err := svc.AppendRows("olap", RowsRequest{Rows: [][]any{{1.0}}}, false); errCode(t, err) != CodeBadRequest {
		t.Fatalf("missing table code = %v", err)
	}
	if _, err := svc.AppendRows("olap", RowsRequest{Table: "ontime"}, false); errCode(t, err) != CodeBadRequest {
		t.Fatalf("no rows code = %v", err)
	}
	// Nested values are not SQL scalars.
	_, err := svc.AppendRows("olap", RowsRequest{Table: "ontime", Rows: [][]any{{[]any{1.0}}}}, false)
	if errCode(t, err) != CodeRowsRejected {
		t.Fatalf("nested value code = %v", err)
	}

	ack, err := svc.AppendRows("olap", RowsRequest{
		Table: "ontime",
		Rows:  [][]any{{1.5, "AA", true, nil}},
	}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 1 || !ack.Flushed || ack.RowCount != 7 {
		t.Fatalf("ack = %+v", ack)
	}
	if ri.lastID != "olap" || ri.lastTable != "ontime" || !ri.lastFlush {
		t.Fatalf("ingestor saw %q %q flush=%v", ri.lastID, ri.lastTable, ri.lastFlush)
	}
	want := []engine.Value{engine.Num(1.5), engine.Str("AA"), engine.Boolean(true), engine.Null()}
	if len(ri.lastRows) != 1 || fmt.Sprint(ri.lastRows[0]) != fmt.Sprint(want) {
		t.Fatalf("converted rows = %v, want %v", ri.lastRows, want)
	}

	// A store rejection surfaces as rows_rejected.
	ri.fail = true
	if _, err := svc.AppendRows("olap", RowsRequest{Table: "ontime", Rows: [][]any{{1.0}}}, false); errCode(t, err) != CodeRowsRejected {
		t.Fatalf("store rejection code = %v", err)
	}
}

func TestServiceSnapshotContract(t *testing.T) {
	svc, _ := newTestService(t)
	if _, err := svc.Snapshot(); errCode(t, err) != CodePersistenceDisabled {
		t.Fatalf("no-persister code = %v", err)
	}
	if svc.Persistence() {
		t.Fatal("Persistence() true without a persister")
	}

	p := &fakePersister{}
	svc.SetPersister(p)
	if !svc.Persistence() {
		t.Fatal("Persistence() false with a persister")
	}
	res, err := svc.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if p.saves != 1 || len(res.Interfaces) != 1 || res.Interfaces[0].ID != "olap" {
		t.Fatalf("snapshot = %+v (saves %d)", res, p.saves)
	}
	if !svc.Health().Persistence {
		t.Fatal("health does not report persistence")
	}

	p.saveErr = errors.New("disk full")
	if _, err := svc.Snapshot(); errCode(t, err) != CodeSnapshotFailed {
		t.Fatalf("save failure code = %v", err)
	}
}

func TestNewPersistentServiceRestores(t *testing.T) {
	reg := NewRegistry()
	p := &fakePersister{restoreRows: []SnapshotInterface{{ID: "back", Epoch: 5}}}
	svc, res, err := NewPersistentService(reg, p)
	if err != nil {
		t.Fatal(err)
	}
	if p.restores != 1 || len(res.Interfaces) != 1 || res.Interfaces[0].ID != "back" {
		t.Fatalf("restore result = %+v (restores %d)", res, p.restores)
	}
	if !svc.Persistence() {
		t.Fatal("persister not wired after restore")
	}

	p2 := &fakePersister{restoreErr: errors.New("checksum mismatch")}
	_, _, err = NewPersistentService(reg, p2)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeRestoreFailed {
		t.Fatalf("restore failure = %v", err)
	}
}
