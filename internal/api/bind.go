package api

import (
	"fmt"
	"strconv"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/mapper"
)

// WidgetBinding is one widget's requested state in a query request.
// Exactly one of Value, Number, Text or Absent should be set:
//
//   - Value:  a full AST subtree in the {type, attrs, children} wire
//     format (what the served page's JS sends for option widgets);
//   - Number: shorthand for a numeric literal (sliders);
//   - Text:   shorthand for a string literal (textboxes);
//   - Absent: request removal of the node at the widget's path
//     (toggles whose domain includes the absent option).
type WidgetBinding struct {
	Path   string    `json:"path"`
	Value  *ast.Node `json:"value,omitempty"`
	Number *float64  `json:"number,omitempty"`
	Text   *string   `json:"text,omitempty"`
	Absent bool      `json:"absent,omitempty"`
}

// BindError is a client error discovered while binding widget state:
// unknown widget path, ambiguous binding, or a value outside the mined
// domain. Handlers map it to a 4xx status.
type BindError struct{ msg string }

func (e *BindError) Error() string { return e.msg }

func bindErrf(format string, args ...any) *BindError {
	return &BindError{msg: fmt.Sprintf(format, args...)}
}

// valueNode converts the binding's requested state into the AST subtree
// to swap in at the widget's path (nil = absent).
func (b *WidgetBinding) valueNode() (*ast.Node, error) {
	set := 0
	if b.Value != nil {
		set++
	}
	if b.Number != nil {
		set++
	}
	if b.Text != nil {
		set++
	}
	if b.Absent {
		set++
	}
	if set != 1 {
		return nil, bindErrf("binding for path %q must set exactly one of value, number, text, absent", b.Path)
	}
	switch {
	case b.Absent:
		return nil, nil
	case b.Number != nil:
		return ast.Leaf(ast.TypeNumExpr, strconv.FormatFloat(*b.Number, 'g', -1, 64)), nil
	case b.Text != nil:
		return ast.Leaf(ast.TypeStrExpr, *b.Text), nil
	default:
		return b.Value, nil
	}
}

// Bind applies the widget bindings to the interface's initial query and
// returns the bound query AST. Widgets are applied in the interface's
// path order (ancestors first) so a template swapped in by an ancestor
// widget can be refined by descendant bindings, mirroring
// core.Interface.CanExpress. Every binding must name a mined widget
// path and carry a value inside that widget's domain (numeric-range
// extrapolation included) — anything else is a *BindError.
func Bind(iface *core.Interface, bindings []WidgetBinding) (*ast.Node, error) {
	if len(bindings) == 0 {
		return iface.Initial, nil
	}
	byPath := make(map[string]*WidgetBinding, len(bindings))
	for i := range bindings {
		b := &bindings[i]
		if _, dup := byPath[b.Path]; dup {
			return nil, bindErrf("duplicate binding for path %q", b.Path)
		}
		byPath[b.Path] = b
	}

	cur := iface.Initial
	bound := 0
	for _, w := range iface.Widgets {
		b, ok := byPath[w.Path.String()]
		if !ok {
			continue
		}
		bound++
		val, err := b.valueNode()
		if err != nil {
			return nil, err
		}
		next, err := applyOne(cur, w, val)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	if bound != len(byPath) {
		for p := range byPath {
			if !hasWidgetAt(iface, p) {
				return nil, bindErrf("no widget at path %q", p)
			}
		}
	}
	return cur, nil
}

func hasWidgetAt(iface *core.Interface, path string) bool {
	for _, w := range iface.Widgets {
		if w.Path.String() == path {
			return true
		}
	}
	return false
}

// applyOne sets one widget, translating domain violations into client
// errors.
func applyOne(q *ast.Node, w *mapper.MappedWidget, val *ast.Node) (*ast.Node, error) {
	if val == nil && !w.Domain.HasAbsent() {
		return nil, bindErrf("widget at %q cannot be absent", w.Path)
	}
	if !w.Domain.Contains(val) {
		return nil, bindErrf("value %s outside the domain of widget at %q",
			renderVal(val), w.Path)
	}
	next := core.Apply(q, w, val)
	if next == nil {
		return nil, bindErrf("value %s not applicable to widget at %q", renderVal(val), w.Path)
	}
	return next, nil
}

func renderVal(val *ast.Node) string {
	if val == nil {
		return "(absent)"
	}
	return strconv.Quote(ast.SQL(val))
}
