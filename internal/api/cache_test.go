package api

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/engine"
)

func tableOf(n int) *engine.Table {
	t := engine.NewTable("result", "v")
	t.MustAddRow(engine.Num(float64(n)))
	return t
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put(ast.Hash(1), "q1", tableOf(1))
	c.Put(ast.Hash(2), "q2", tableOf(2))
	if _, ok := c.Get(ast.Hash(1), "q1"); !ok {
		t.Fatal("q1 evicted too early")
	}
	// q2 is now LRU; inserting q3 must evict it.
	c.Put(ast.Hash(3), "q3", tableOf(3))
	if _, ok := c.Get(ast.Hash(2), "q2"); ok {
		t.Fatal("q2 survived past capacity")
	}
	if _, ok := c.Get(ast.Hash(3), "q3"); !ok {
		t.Fatal("q3 missing")
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheCollisionVerified(t *testing.T) {
	c := NewCache(4)
	c.Put(ast.Hash(7), "SELECT a", tableOf(1))
	// Same hash, different canonical SQL: must miss, not serve a wrong
	// result.
	if _, ok := c.Get(ast.Hash(7), "SELECT b"); ok {
		t.Fatal("collision served the wrong result")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(0)
	c.Put(ast.Hash(1), "q", tableOf(1))
	if _, ok := c.Get(ast.Hash(1), "q"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := ast.Hash(i % 32)
				sql := fmt.Sprintf("q%d", i%32)
				if res, ok := c.Get(k, sql); ok {
					_ = res.Res.NumRows()
				} else {
					c.Put(k, sql, tableOf(i))
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 16 {
		t.Fatalf("cache overflowed: %+v", st)
	}
}
