package api

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ast"
)

// Plan is a bound, rendered, hashed query — everything the query
// handler derives from a widget-state shape before execution. Caching
// plans means a cold *result* cache state (or a cache-disabled server)
// still skips the per-request AST binding walk: the widget-state shape
// is looked up as a string key, no tree copies, no SQL re-rendering,
// no re-hashing.
type Plan struct {
	Query *ast.Node
	SQL   string
	Hash  ast.Hash
}

// PlanCache is a concurrency-safe LRU of Plans keyed by the canonical
// widget-state shape (PlanKey). Like the result cache it lives inside
// one epoch snapshot, so an interface swap starts with an empty plan
// cache and stale bindings can never leak across epochs.
type PlanCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type planEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache returns an LRU holding at most capacity plans (<= 0
// disables caching).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached plan for the widget-state key.
func (c *PlanCache) Get(key string) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*planEntry).plan, true
	}
	c.misses++
	return nil, false
}

// Put stores a plan, evicting the least recently used entry when full.
func (c *PlanCache) Put(key string, p *Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = &planEntry{key: key, plan: p}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, plan: p})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*planEntry).key)
	}
}

// Stats returns a snapshot of the hit/miss counters and occupancy.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
}

// PlanKey renders a widget-binding set as a canonical string: bindings
// sorted by path, each with a tag for which of the four binding forms
// it uses and a canonical rendering of the value. Requests that bind
// the same widgets to the same values produce the same key regardless
// of binding order, so they share one cached plan. The key builder
// never touches the query AST — that is the work being skipped.
//
// Every user-controlled field (path, text, value SQL) is length-
// prefixed, making the encoding injective: no crafted text can make
// one binding set collide with another's key and hit a plan the
// client's own bindings would not have validated to.
func PlanKey(bindings []WidgetBinding) string {
	if len(bindings) == 0 {
		return ""
	}
	parts := make([]string, 0, len(bindings))
	for i := range bindings {
		b := &bindings[i]
		var sb strings.Builder
		writeField(&sb, b.Path)
		switch {
		case b.Absent:
			sb.WriteByte('a')
		case b.Number != nil:
			sb.WriteByte('n')
			writeField(&sb, strconv.FormatFloat(*b.Number, 'g', -1, 64))
		case b.Text != nil:
			sb.WriteByte('t')
			writeField(&sb, *b.Text)
		case b.Value != nil:
			sb.WriteByte('v')
			writeField(&sb, strconv.FormatUint(uint64(ast.HashOf(b.Value)), 16))
			writeField(&sb, ast.SQL(b.Value))
		default:
			// Malformed binding (nothing set): make the key unique so it
			// misses and Bind reports the error.
			sb.WriteByte('?')
		}
		parts = append(parts, sb.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// writeField appends one length-prefixed field.
func writeField(sb *strings.Builder, s string) {
	sb.WriteString(strconv.Itoa(len(s)))
	sb.WriteByte(':')
	sb.WriteString(s)
}
