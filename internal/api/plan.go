package api

import (
	"bytes"
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ast"
	"repro/internal/engine"
)

// Plan is a bound, rendered, hashed query — everything the query
// handler derives from a widget-state shape before execution. Caching
// plans means a cold *result* cache state (or a cache-disabled server)
// still skips the per-request AST binding walk: the widget-state shape
// is looked up as a string key, no tree copies, no SQL re-rendering,
// no re-hashing.
type Plan struct {
	Query *ast.Node
	SQL   string
	Hash  ast.Hash
	// Col is the columnar compilation of Query when its shape is one
	// the vectorized kernels support (nil otherwise, or when the
	// service was built with DisableColumnar). Compiled once per plan,
	// so the per-request execution choice is a nil check.
	Col *engine.ColPlan
}

// PlanCache is a concurrency-safe LRU of Plans keyed by the canonical
// widget-state shape (PlanKey). Like the result cache it lives inside
// one epoch snapshot, so an interface swap starts with an empty plan
// cache and stale bindings can never leak across epochs.
type PlanCache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type planEntry struct {
	key  string
	plan *Plan
}

// NewPlanCache returns an LRU holding at most capacity plans (<= 0
// disables caching).
func NewPlanCache(capacity int) *PlanCache {
	return &PlanCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached plan for the widget-state key.
func (c *PlanCache) Get(key string) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*planEntry).plan, true
	}
	c.misses++
	return nil, false
}

// GetBytes is Get for a key assembled in a reusable byte buffer
// (AppendPlanKey). The string conversion inside the map index is
// recognized by the compiler and does not allocate, so a plan-cache
// hit costs zero heap — the point of building the key as bytes.
func (c *PlanCache) GetBytes(key []byte) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[string(key)]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*planEntry).plan, true
	}
	c.misses++
	return nil, false
}

// Put stores a plan, evicting the least recently used entry when full.
func (c *PlanCache) Put(key string, p *Plan) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = &planEntry{key: key, plan: p}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&planEntry{key: key, plan: p})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*planEntry).key)
	}
}

// Stats returns a snapshot of the hit/miss counters and occupancy.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
}

// PlanKey renders a widget-binding set as a canonical string: bindings
// sorted by path, each with a tag for which of the four binding forms
// it uses and a canonical rendering of the value. Requests that bind
// the same widgets to the same values produce the same key regardless
// of binding order, so they share one cached plan. The key builder
// never touches the query AST — that is the work being skipped.
//
// Every user-controlled field (path, text, value SQL) is length-
// prefixed, making the encoding injective: no crafted text can make
// one binding set collide with another's key and hit a plan the
// client's own bindings would not have validated to.
func PlanKey(bindings []WidgetBinding) string {
	if len(bindings) == 0 {
		return ""
	}
	parts := make([]string, 0, len(bindings))
	for i := range bindings {
		b := &bindings[i]
		var sb strings.Builder
		writeField(&sb, b.Path)
		switch {
		case b.Absent:
			sb.WriteByte('a')
		case b.Number != nil:
			sb.WriteByte('n')
			writeField(&sb, strconv.FormatFloat(*b.Number, 'g', -1, 64))
		case b.Text != nil:
			sb.WriteByte('t')
			writeField(&sb, *b.Text)
		case b.Value != nil:
			sb.WriteByte('v')
			writeField(&sb, strconv.FormatUint(uint64(ast.HashOf(b.Value)), 16))
			writeField(&sb, ast.SQL(b.Value))
		default:
			// Malformed binding (nothing set): make the key unique so it
			// misses and Bind reports the error.
			sb.WriteByte('?')
		}
		parts = append(parts, sb.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// writeField appends one length-prefixed field.
func writeField(sb *strings.Builder, s string) {
	sb.WriteString(strconv.Itoa(len(s)))
	sb.WriteByte(':')
	sb.WriteString(s)
}

// planKeyScratch is the reusable state one AppendPlanKey call needs:
// the key buffer itself, a per-binding rendering area for multi-binding
// requests (which must sort before joining), and a small number buffer
// so float rendering never escapes to the heap. Pooled so the steady
// state of the hot query path allocates nothing.
type planKeyScratch struct {
	buf   []byte
	parts [][]byte
	num   []byte
}

var planKeyPool = sync.Pool{New: func() any { return &planKeyScratch{num: make([]byte, 0, 32)} }}

// AppendPlanKey renders the same canonical widget-state key as PlanKey
// into sc.buf — byte-identical, so GetBytes hits exactly the entries
// Put stored under PlanKey-formed strings. The single-binding case
// (the common dashboard interaction: one widget changed) needs no
// sort and no join; multi-binding requests render each part into
// reused scratch slices, insertion-sort them (binding counts are
// widget counts — single digits) and join with '|'.
func (sc *planKeyScratch) AppendPlanKey(bindings []WidgetBinding) {
	sc.buf = sc.buf[:0]
	switch len(bindings) {
	case 0:
		return
	case 1:
		sc.buf = sc.appendBinding(sc.buf, &bindings[0])
		return
	}
	if cap(sc.parts) < len(bindings) {
		sc.parts = make([][]byte, len(bindings))
	}
	parts := sc.parts[:len(bindings)]
	for i := range bindings {
		parts[i] = sc.appendBinding(parts[i][:0], &bindings[i])
	}
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && bytes.Compare(parts[j], parts[j-1]) < 0; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	for i, p := range parts {
		if i > 0 {
			sc.buf = append(sc.buf, '|')
		}
		sc.buf = append(sc.buf, p...)
	}
}

// appendBinding renders one binding exactly as PlanKey's per-binding
// loop does.
func (sc *planKeyScratch) appendBinding(dst []byte, b *WidgetBinding) []byte {
	dst = appendFieldStr(dst, b.Path)
	switch {
	case b.Absent:
		dst = append(dst, 'a')
	case b.Number != nil:
		dst = append(dst, 'n')
		sc.num = strconv.AppendFloat(sc.num[:0], *b.Number, 'g', -1, 64)
		dst = appendFieldBytes(dst, sc.num)
	case b.Text != nil:
		dst = append(dst, 't')
		dst = appendFieldStr(dst, *b.Text)
	case b.Value != nil:
		dst = append(dst, 'v')
		sc.num = strconv.AppendUint(sc.num[:0], uint64(ast.HashOf(b.Value)), 16)
		dst = appendFieldBytes(dst, sc.num)
		dst = appendFieldStr(dst, ast.SQL(b.Value))
	default:
		dst = append(dst, '?')
	}
	return dst
}

func appendFieldStr(dst []byte, s string) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}

func appendFieldBytes(dst []byte, s []byte) []byte {
	dst = strconv.AppendInt(dst, int64(len(s)), 10)
	dst = append(dst, ':')
	return append(dst, s...)
}
