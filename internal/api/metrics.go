package api

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Query-path metric families. The hot path records through handles
// resolved at host time (hostedMetrics); everything a subsystem
// already counts — the per-interface query counter, the caches' own
// hit/miss atomics — is exposed as lazy series evaluated at scrape
// time, so instrumentation adds nothing to the 215ns cached-plan path
// beyond a sampled histogram observation.
var (
	mxQueryDur = obs.Default.HistogramVec("pi_query_duration_seconds",
		"Service-layer query latency by plan-cache outcome and execution path (path=columnar: the plan compiled to vectorized kernels). Sampled 1:32 unless the slow-query ring is armed; use pi_queries_total for request rates.",
		obs.LatencyBuckets, "iface", "plan", "path")
	mxQueries = obs.Default.CounterVec("pi_queries_total",
		"Accepted queries served, per interface.", "iface")
	mxQueryErrs = obs.Default.CounterVec("pi_query_errors_total",
		"Queries rejected after interface resolution (bind, cursor or exec failures), per interface.", "iface")
	mxResultCache = obs.Default.CounterVec("pi_query_result_cache_total",
		"Result-cache probes on the query path, cumulative across epochs.", "iface", "outcome")
	mxPlanCache = obs.Default.CounterVec("pi_query_plan_cache_total",
		"Plan-cache probes on the query path, cumulative across epochs.", "iface", "outcome")
	mxEpoch = obs.Default.GaugeVec("pi_interface_epoch",
		"Current epoch of the hosted interface (bumped by every hot swap).", "iface")
)

// sampleMask: when the slow-query ring is not armed, only every 32nd
// query pays for clock reads; the latency histogram is a 1:32 sample.
// 1:8 measured ~1.24x on the ~175ns cached-plan path — over the 1.1x
// budget TestMetricsOverhead pins — 1:32 amortizes the clock+record
// cost below it while a busy dashboard still fills every bucket.
const sampleMask = 31

// hostedMetrics is one interface's preallocated handle set.
type hostedMetrics struct {
	// tick aliases the Hosted's own query counter: sampling rides the
	// atomic add queryInto already pays, so the unsampled path's only
	// metric cost is one relaxed load and a mask.
	tick *atomic.Uint64
	// dur[planHit][columnar]
	dur  [2][2]*obs.Histogram
	errs *obs.Counter
}

// newHostedMetrics resolves handles and registers the lazy series for
// one hosted interface. Re-hosting the same id re-binds the closures
// to the new *Hosted (latest wins), which is what tests and interface
// re-adoption after a move want.
func newHostedMetrics(h *Hosted) *hostedMetrics {
	mx := &hostedMetrics{tick: &h.queries, errs: mxQueryErrs.With(h.ID)}
	for pi, plan := range [2]string{"miss", "hit"} {
		for ci, path := range [2]string{"row", "columnar"} {
			mx.dur[pi][ci] = mxQueryDur.With(h.ID, plan, path)
		}
	}
	mxQueries.Func(h.queries.Load, h.ID)
	mxEpoch.Func(func() float64 { return float64(h.Epoch()) }, h.ID)
	mxResultCache.Func(func() uint64 { res, _ := h.CacheTotals(); return res.Hits }, h.ID, "hit")
	mxResultCache.Func(func() uint64 { res, _ := h.CacheTotals(); return res.Misses }, h.ID, "miss")
	mxPlanCache.Func(func() uint64 { _, plans := h.CacheTotals(); return plans.Hits }, h.ID, "hit")
	mxPlanCache.Func(func() uint64 { _, plans := h.CacheTotals(); return plans.Misses }, h.ID, "miss")
	return mx
}

// sample reports whether this query should be timed (1 in 32). The
// decision reads the query counter the serving path increments anyway;
// concurrent queries may occasionally both sample the same tick, which
// biases nothing.
func (mx *hostedMetrics) sample() bool {
	return mx.tick.Load()&sampleMask == 0
}

// queryStages carries the per-stage clock marks and outcome flags from
// queryInto back to the instrumented wrapper. Pooled so the timed path
// stays allocation-free.
type queryStages struct {
	t0, tBind, tExec time.Time
	planHit          bool
	cacheHit         bool
	columnar         bool
	sql              string
	epoch            uint64
}

var stagesPool = sync.Pool{New: func() any { return new(queryStages) }}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func hitMiss(b bool) string {
	if b {
		return "hit"
	}
	return "miss"
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// stageMS returns the duration between two marks in milliseconds, 0
// when either mark was never taken (error paths bail out mid-query).
func stageMS(from, to time.Time) float64 {
	if from.IsZero() || to.IsZero() {
		return 0
	}
	return ms(to.Sub(from))
}
