package api

import (
	"strings"

	"repro/internal/engine"
	"repro/internal/qlog"
)

// This file is the typed v1 operation contract: the request and
// response shapes every transport (internal/server over HTTP,
// pi/client from the consumer side) exchanges with the Service.
// Field names are the JSON contract; see API.md.

// InterfaceSummary is one row of ListInterfaces.
type InterfaceSummary struct {
	ID      string  `json:"id"`
	Title   string  `json:"title"`
	Widgets int     `json:"widgets"`
	Cost    float64 `json:"cost"`
	Queries uint64  `json:"queries"`
	Epoch   uint64  `json:"epoch"`
}

// WidgetInfo describes one widget of GetInterface.
type WidgetInfo struct {
	Path    string   `json:"path"`
	Kind    string   `json:"kind"`
	Label   string   `json:"label"`
	Options []string `json:"options"`
	Absent  bool     `json:"absent,omitempty"`
	Numeric bool     `json:"numeric,omitempty"`
	// Min/Max are meaningful only when Numeric; no omitempty, since 0
	// is a legitimate bound.
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// InterfaceDetail is the body of GetInterface.
type InterfaceDetail struct {
	ID         string       `json:"id"`
	Title      string       `json:"title"`
	Epoch      uint64       `json:"epoch"`
	InitialSQL string       `json:"initialSql"`
	Widgets    []WidgetInfo `json:"widgets"`
}

// QueryRequest is the body of Query: the widget bindings plus result
// pagination. Limit caps the rows returned (0 means the server
// default; the server also enforces a hard cap). Cursor resumes a
// previous truncated response at its NextCursor.
type QueryRequest struct {
	Widgets []WidgetBinding `json:"widgets"`
	Limit   int             `json:"limit,omitempty"`
	Cursor  string          `json:"cursor,omitempty"`
}

// QueryResponse is the body of a successful query: the bound SQL, one
// page of the result relation, the epoch of the interface that
// answered, and whether result and plan came from their caches.
// RowCount is the size of the full result; Rows holds the requested
// page ([Offset, Offset+len(Rows))). When Truncated, NextCursor
// resumes at the next page (valid only for the same epoch).
type QueryResponse struct {
	SQL        string     `json:"sql"`
	Epoch      uint64     `json:"epoch"`
	Cols       []string   `json:"cols"`
	Rows       [][]any    `json:"rows"`
	RowCount   int        `json:"rowCount"`
	Offset     int        `json:"offset,omitempty"`
	Truncated  bool       `json:"truncated,omitempty"`
	NextCursor string     `json:"nextCursor,omitempty"`
	Cache      string     `json:"cache"` // "hit" | "miss"
	Plan       string     `json:"plan"`  // "hit" | "miss"
	CacheStats CacheStats `json:"cacheStats"`
}

// LogRequest is the JSON body of IngestLog (the HTTP endpoint also
// accepts text/plain statements in the qlog text format).
type LogRequest struct {
	Entries []LogEntry `json:"entries"`
}

// LogEntry is one submitted query-log entry.
type LogEntry struct {
	SQL    string `json:"sql"`
	Client string `json:"client,omitempty"`
}

// QlogEntries converts the request to qlog entries, dropping blank SQL.
func (r *LogRequest) QlogEntries() []qlog.Entry {
	out := make([]qlog.Entry, 0, len(r.Entries))
	for _, e := range r.Entries {
		if strings.TrimSpace(e.SQL) == "" {
			continue
		}
		out = append(out, qlog.Entry{SQL: e.SQL, Client: e.Client})
	}
	return out
}

// EpochResponse is the body of Epoch (pages poll it to detect swaps).
type EpochResponse struct {
	Epoch uint64 `json:"epoch"`
}

// DeleteAck confirms a DeleteInterface call.
type DeleteAck struct {
	ID      string `json:"id"`
	Deleted bool   `json:"deleted"`
}

// RowsRequest is the body of AppendRows: new rows for one table of the
// interface's dataset. Values are JSON scalars (number, string, bool,
// null) positionally matching the table's columns.
type RowsRequest struct {
	Table string  `json:"table"`
	Rows  [][]any `json:"rows"`
}

// RowsAck reports what happened to one AppendRows call. DataEpoch is
// the storage layer's version counter; Epoch is the interface's
// serving epoch (bumped when the appended rows were hot-swapped in, so
// post-append queries never see pre-append cached results). RowCount
// is the table's total rows after any flush this call performed.
type RowsAck struct {
	Table     string `json:"table"`
	Accepted  int    `json:"accepted"`           // rows buffered by this call
	Buffered  int    `json:"buffered"`           // rows still waiting after the call
	Flushed   bool   `json:"flushed"`            // whether the store published a new version
	Epoch     uint64 `json:"epoch"`              // interface epoch after the call
	DataEpoch uint64 `json:"dataEpoch"`          // store version after the call
	RowCount  int    `json:"rowCount,omitempty"` // table rows visible to queries
}

// MutateRequest is the body of MutateRows: one UPDATE or DELETE
// statement evaluated against the interface's current snapshot. When
// IfEpoch is nonzero the mutation is conditional — it is rejected with
// mutation_conflict unless the store's data epoch still equals IfEpoch
// after buffered appends flush, giving clients optimistic concurrency
// over read-modify-write cycles.
type MutateRequest struct {
	SQL     string `json:"sql"`
	IfEpoch uint64 `json:"ifEpoch,omitempty"`
}

// MutateAck reports what happened to one MutateRows call. Matched is
// how many visible rows the predicate selected; Updated/Deleted how
// many row versions the publish retired or replaced (zero matches ack
// without publishing, leaving the epochs untouched).
type MutateAck struct {
	Table     string `json:"table,omitempty"`
	Matched   int    `json:"matched"`
	Updated   int    `json:"updated,omitempty"`
	Deleted   int    `json:"deleted,omitempty"`
	Epoch     uint64 `json:"epoch"`     // interface epoch after the call
	DataEpoch uint64 `json:"dataEpoch"` // store version after the call
}

// SnapshotInterface is one interface's row in a snapshot result.
type SnapshotInterface struct {
	ID         string `json:"id"`
	Epoch      uint64 `json:"epoch"`
	DataEpoch  uint64 `json:"dataEpoch"`
	LogEntries int    `json:"logEntries"`
	Rows       int    `json:"rows"` // dataset rows across all tables
	Bytes      int64  `json:"bytes"`
}

// SnapshotResult is the body of the Snapshot operation: what was
// persisted, where, and how long it took.
type SnapshotResult struct {
	Dir        string              `json:"dir"`
	Interfaces []SnapshotInterface `json:"interfaces"`
	ElapsedMS  float64             `json:"elapsedMs"`
}

// RestoreResult reports what a restore-on-construct brought back.
type RestoreResult struct {
	Dir        string              `json:"dir"`
	Interfaces []SnapshotInterface `json:"interfaces"`
}

// Ingestor accepts new query-log entries for a hosted interface —
// internal/ingest implements it; the service stays decoupled from the
// mining machinery. Submit buffers entries (and may flush when a batch
// fills); Flush forces buffered entries through re-mining and returns
// the resulting epoch.
type Ingestor interface {
	Submit(id string, entries []qlog.Entry) (IngestAck, error)
	Flush(id string) (uint64, error)
}

// IngestStatuser is optionally implemented by an Ingestor to surface
// per-interface ingestion counters in Health.
type IngestStatuser interface {
	IngestStatus(id string) (IngestStatus, bool)
}

// RowIngestor is optionally implemented by an Ingestor whose hosted
// interfaces sit on a versioned store: SubmitRows buffers (and, when a
// batch fills or flush is set, publishes) new dataset rows under the
// same hot-swap discipline as interface re-mining — the bumped epoch
// makes every pre-append cached result unreachable.
type RowIngestor interface {
	SubmitRows(id, table string, rows [][]engine.Value, flush bool) (RowsAck, error)
}

// RowMutator is optionally implemented by an Ingestor whose hosted
// interfaces sit on a versioned store: SubmitMutation evaluates one
// UPDATE or DELETE statement against the interface's current snapshot
// and publishes the resulting row-version changes under a bumped
// epoch, so every pre-mutation cached result becomes unreachable the
// moment the ack returns.
type RowMutator interface {
	SubmitMutation(id, sql string, ifEpoch uint64) (MutateAck, error)
}

// IngestDetacher is optionally implemented by an Ingestor that keeps
// per-interface state (live feeds): DeleteInterface calls it so an
// unhosted interface stops accepting submissions instead of leaking
// its feed.
type IngestDetacher interface {
	Detach(id string)
}

// Persister is the durable snapshot/restore seam the service exposes
// through Snapshot and restore-on-construct; internal/ingest
// implements it over the data dir. SaveAll persists every hosted
// interface's (log, dataset, epoch); Restore rebuilds hosted
// interfaces from the newest snapshot files.
type Persister interface {
	SaveAll() (*SnapshotResult, error)
	Restore() (*RestoreResult, error)
}

// SnapshotRemover is optionally implemented by a Persister:
// DeleteInterface calls it so an unhosted interface's durable snapshot
// does not resurrect it on the next boot.
type SnapshotRemover interface {
	RemoveSnapshot(id string) error
}

// WALStatuser is optionally implemented by a Persister running with a
// write-ahead log: Health attaches the per-interface log position so
// operators can watch durability lag.
type WALStatuser interface {
	WALStatus(id string) (*WALInfo, bool)
}

// WALInfo is one interface's write-ahead-log row in Health.
type WALInfo struct {
	// Segments and Bytes describe the on-disk log (Bytes covers the
	// active segment; sealed segments rotate out at the configured size).
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// LastSeq is the newest logged publication; SyncedSeq is the newest
	// one known fsynced (they converge at every group commit).
	LastSeq   uint64 `json:"lastSeq"`
	SyncedSeq uint64 `json:"syncedSeq"`
	// Lag counts acked publications the newest snapshot save does not
	// cover — what a crash right now would replay from the log.
	Lag uint64 `json:"lag"`
	// Truncated reports that a torn tail (a record cut mid-write by a
	// crash) was dropped when the log was opened. The torn record was
	// never acked, so this is informational, not data loss.
	Truncated bool `json:"truncated,omitempty"`
}

// IngestStatus is one interface's ingestion counters.
type IngestStatus struct {
	Buffered     int    `json:"buffered"`
	Accepted     uint64 `json:"accepted"`
	Dropped      uint64 `json:"dropped"`
	Flushes      uint64 `json:"flushes"`
	FullRemines  uint64 `json:"fullRemines"`
	RowsAppended uint64 `json:"rowsAppended,omitempty"`
	RowsBuffered int    `json:"rowsBuffered,omitempty"`
	RowFlushes   uint64 `json:"rowFlushes,omitempty"`
	RowsMutated  uint64 `json:"rowsMutated,omitempty"`
	Mutations    uint64 `json:"mutations,omitempty"`
	LastError    string `json:"lastError,omitempty"`
}

// IngestAck reports what happened to a Submit call.
type IngestAck struct {
	Accepted int    `json:"accepted"` // entries buffered by this call
	Buffered int    `json:"buffered"` // entries still waiting after the call
	Flushed  bool   `json:"flushed"`  // whether a re-mine ran
	Dropped  int    `json:"dropped,omitempty"`
	Epoch    uint64 `json:"epoch"` // interface epoch after the call
}

// HealthInterface is one interface's health row.
type HealthInterface struct {
	ID           string        `json:"id"`
	Epoch        uint64        `json:"epoch"`
	Widgets      int           `json:"widgets"`
	Queries      uint64        `json:"queries"`
	CacheHitRate float64       `json:"cacheHitRate"`
	PlanHitRate  float64       `json:"planHitRate"`
	Ingest       *IngestStatus `json:"ingest,omitempty"`
	// Replication is present on replicated deployments: the interface's
	// role on this shard and its position in the replication stream.
	Replication *ReplicationInfo `json:"replication,omitempty"`
	// WAL is present when the server runs with a write-ahead log: the
	// interface's log position and durability lag.
	WAL *WALInfo `json:"wal,omitempty"`
}

// Replication roles, as reported in ReplicationInfo.Role. An interface
// hosted on a shard with no replication manager (or one the manager
// has no explicit state for) is implicitly an owner.
const (
	RoleOwner    = "owner"
	RoleFollower = "follower"
)

// ReplicationInfo is one interface's replication status on one shard.
type ReplicationInfo struct {
	// Role is RoleOwner or RoleFollower.
	Role string `json:"role"`
	// Term is the fencing term: promotions increment it, and a shard
	// rejects replication traffic from owners with an older term.
	Term uint64 `json:"term"`
	// Seq is the last replication sequence number this shard published
	// (owner) or applied (follower).
	Seq uint64 `json:"seq"`
	// Stale marks a follower that detected a gap in its apply stream
	// and is awaiting a re-seed; its reads answer replica_lagging.
	Stale bool `json:"stale,omitempty"`
	// Owner is the owner's base URL, set on followers.
	Owner string `json:"owner,omitempty"`
	// Seeds counts full snapshot seeds this owner shipped; CatchUps
	// counts followers it re-synced from the write-ahead log instead.
	// The replica smoke test pins "a bounced follower does not force a
	// re-seed" on these.
	Seeds    uint64 `json:"seeds,omitempty"`
	CatchUps uint64 `json:"catchUps,omitempty"`
	// Followers is the owner's view of its replicas.
	Followers []ReplicaFollower `json:"followers,omitempty"`
}

// ReplicaFollower is the owner's record of one follower replica.
type ReplicaFollower struct {
	Addr string `json:"addr"`
	// Synced means the follower holds every acked publish up to Seq;
	// an unsynced follower is being (re-)seeded or awaiting one.
	Synced bool   `json:"synced"`
	Seq    uint64 `json:"seq"`
	Error  string `json:"error,omitempty"`
}

// ShardHealth is one shard's row in a routed health report.
type ShardHealth struct {
	Addr       string `json:"addr"`
	Status     string `json:"status"` // "ok" | "unreachable"
	Interfaces int    `json:"interfaces"`
	Error      string `json:"error,omitempty"`
}

// Health is the body of the health operation. Shards is present only
// on routed deployments: one row per shard the router fronts, with
// Status "degraded" when any of them is unreachable.
type Health struct {
	Status        string            `json:"status"`
	GoVersion     string            `json:"goVersion"`
	Revision      string            `json:"revision,omitempty"`
	UptimeSeconds float64           `json:"uptimeSeconds"`
	Ingestion     bool              `json:"ingestion"`
	Persistence   bool              `json:"persistence"`
	Replication   bool              `json:"replication,omitempty"`
	Interfaces    []HealthInterface `json:"interfaces"`
	Shards        []ShardHealth     `json:"shards,omitempty"`
}

// DebugInfo is the body of the debug operation.
type DebugInfo struct {
	Interfaces []DebugInterface `json:"interfaces"`
}

// DebugInterface is one interface's serving counters.
type DebugInterface struct {
	ID      string     `json:"id"`
	Epoch   uint64     `json:"epoch"`
	Queries uint64     `json:"queries"`
	Cache   CacheStats `json:"cache"` // current epoch only
	Plans   CacheStats `json:"plans"` // current epoch only
	// Cumulative across every epoch served (epoch swaps reset the live
	// caches but fold their counters forward). Sourced from the same
	// atomics as the pi_query_result_cache_total /
	// pi_query_plan_cache_total metric series.
	CacheTotals  CacheStats `json:"cacheTotals"`
	PlanTotals   CacheStats `json:"planTotals"`
	CacheHitRate float64    `json:"cacheHitRate"`
	PlanHitRate  float64    `json:"planHitRate"`
}
