package api

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/engine"
	"repro/internal/htmlgen"
	"repro/internal/obs"
	"repro/internal/qlog"
)

// Default pagination bounds (see ServiceOptions).
const (
	// DefaultRowLimit is the page size used when a query request does
	// not ask for one.
	DefaultRowLimit = 1000
	// MaxRowLimit is the hard server-side cap: requests asking for more
	// rows per page are clamped to it and the response is marked
	// truncated, so an unbounded result can never be serialized in one
	// response.
	MaxRowLimit = 10000
)

// ServiceOptions tune a Service.
type ServiceOptions struct {
	// DefaultRowLimit is the page size for query requests with Limit 0.
	// 0 means DefaultRowLimit.
	DefaultRowLimit int
	// MaxRowLimit is the hard per-response row cap. 0 means MaxRowLimit.
	MaxRowLimit int
	// PageBase is the URL prefix compiled pages use to reach the query
	// and epoch endpoints ("" means "/v1/interfaces"). Transports that
	// mount the API elsewhere set it to match.
	PageBase string
	// DisableColumnar turns off the vectorized execution kernels: every
	// query runs the row-at-a-time path. The columnar path is selected
	// per plan and produces byte-identical results, so this exists for
	// A/B comparison and as an escape hatch, not as a semantic switch.
	DisableColumnar bool
}

func (o ServiceOptions) withDefaults() ServiceOptions {
	if o.DefaultRowLimit <= 0 {
		o.DefaultRowLimit = DefaultRowLimit
	}
	if o.MaxRowLimit <= 0 {
		o.MaxRowLimit = MaxRowLimit
	}
	if o.MaxRowLimit < o.DefaultRowLimit {
		o.DefaultRowLimit = o.MaxRowLimit
	}
	if o.PageBase == "" {
		o.PageBase = "/v1/interfaces"
	}
	return o
}

// Service is the transport-agnostic operation surface over a registry
// of hosted interfaces (and, optionally, a live ingester). Every
// operation validates its input, returns typed results and reports
// failures as *Error values, so a transport's only job is decoding
// requests and encoding responses. It is safe for concurrent use.
type Service struct {
	reg   *Registry
	ing   Ingestor
	per   Persister
	opts  ServiceOptions
	start time.Time
	slow  *obs.SlowRing
}

// NewService builds a service over the registry. Interfaces may still
// be added to the registry after the service is built.
func NewService(reg *Registry, opts ...ServiceOptions) *Service {
	var o ServiceOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return &Service{reg: reg, opts: o.withDefaults(), start: time.Now()}
}

// NewPersistentService is NewService with durable storage wired in:
// it restores hosted interfaces from the persister's data dir before
// returning (so a killed server comes back serving what it was serving)
// and enables the Snapshot operation. A restore failure is returned as
// a CodeRestoreFailed *Error — a data dir that exists but cannot be
// read is a deployment fault, not something to silently serve past.
func NewPersistentService(reg *Registry, p Persister, opts ...ServiceOptions) (*Service, *RestoreResult, error) {
	s := NewService(reg, opts...)
	res, err := p.Restore()
	if err != nil {
		return nil, nil, Errf(CodeRestoreFailed, http.StatusInternalServerError, "restore: %v", err)
	}
	s.per = p
	return s, res, nil
}

// SetIngestor wires live log ingestion into IngestLog. Call before
// serving begins.
func (s *Service) SetIngestor(ing Ingestor) { s.ing = ing }

// SetSlowRing wires a slow-query ring into the query path: queries
// over the ring's threshold (or hit by its sampler) are recorded with
// a per-stage timing breakdown. Call before serving begins. A nil (or
// absent) ring keeps the query path on its cheapest configuration —
// per-stage clocks are only read while a ring is armed or the 1:8
// latency sampler fires.
func (s *Service) SetSlowRing(r *obs.SlowRing) { s.slow = r }

// SetPersister wires durable snapshots into Snapshot without the
// restore-on-construct step (tests, or a first boot into an empty
// dir). Call before serving begins.
func (s *Service) SetPersister(p Persister) { s.per = p }

// Persistence reports whether a persister is wired in.
func (s *Service) Persistence() bool { return s.per != nil }

// Registry returns the underlying registry.
func (s *Service) Registry() *Registry { return s.reg }

// Ingestion reports whether an ingestor is wired in.
func (s *Service) Ingestion() bool { return s.ing != nil }

// hosted resolves an interface ID or returns a CodeNotFound error.
func (s *Service) hosted(id string) (*Hosted, *Error) {
	h, ok := s.reg.Get(id)
	if !ok {
		return nil, errNotFound(id)
	}
	return h, nil
}

// ListInterfaces returns a summary row per hosted interface, sorted by
// ID.
func (s *Service) ListInterfaces() []InterfaceSummary {
	hosted := s.reg.List()
	out := make([]InterfaceSummary, 0, len(hosted))
	for _, h := range hosted {
		st := h.load()
		out = append(out, InterfaceSummary{
			ID:      h.ID,
			Title:   h.Title,
			Widgets: len(st.iface.Widgets),
			Cost:    st.iface.Cost(),
			Queries: h.Queries(),
			Epoch:   st.epoch,
		})
	}
	return out
}

// GetInterface returns one interface's widgets and initial query.
func (s *Service) GetInterface(id string) (*InterfaceDetail, error) {
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return nil, apiErr
	}
	st := h.load()
	d := &InterfaceDetail{ID: h.ID, Title: h.Title, Epoch: st.epoch, InitialSQL: ast.SQL(st.iface.Initial)}
	for _, wd := range st.iface.Widgets {
		info := WidgetInfo{
			Path:   wd.Path.String(),
			Kind:   wd.Type.Name,
			Label:  htmlgen.Label(wd),
			Absent: wd.Domain.HasAbsent(),
		}
		for _, v := range wd.Domain.Values() {
			if v == nil {
				info.Options = append(info.Options, "(absent)")
				continue
			}
			info.Options = append(info.Options, ast.SQL(v))
		}
		if wd.Domain.IsNumericRange() {
			info.Numeric = true
			info.Min, info.Max = wd.Domain.Range()
		}
		d.Widgets = append(d.Widgets, info)
	}
	return d, nil
}

// Epoch returns the interface's current epoch (pages poll it to detect
// hot swaps).
func (s *Service) Epoch(id string) (*EpochResponse, error) {
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return nil, apiErr
	}
	return &EpochResponse{Epoch: h.Epoch()}, nil
}

// Page returns the compiled live HTML page for the interface, wired to
// the configured PageBase endpoints. The page is compiled lazily once
// per epoch and cached in the epoch snapshot.
func (s *Service) Page(id string) (string, error) {
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return "", apiErr
	}
	st := h.load()
	st.pageMu.RLock()
	page := st.page
	st.pageMu.RUnlock()
	if page != "" {
		return page, nil
	}
	st.pageMu.Lock()
	defer st.pageMu.Unlock()
	if st.page == "" {
		base := s.opts.PageBase + "/" + h.ID
		compiled, err := htmlgen.CompileServedLive(st.iface, h.Title, base+"/query", base+"/epoch", st.epoch)
		if err != nil {
			return "", errInternal(fmt.Errorf("compile page for %q: %w", h.ID, err))
		}
		st.page = compiled
	}
	return st.page, nil
}

// Query binds the requested widget state onto the interface's query
// template, executes it (through the plan and result caches) and
// returns one page of the result. Only accepted queries — requests
// that bind and execute — advance the interface's query counter;
// malformed or rejected requests do not inflate traffic stats.
func (s *Service) Query(id string, req QueryRequest) (*QueryResponse, error) {
	resp := new(QueryResponse)
	if err := s.QueryInto(id, req, resp); err != nil {
		return nil, err
	}
	return resp, nil
}

// QueryInto is Query writing into a caller-provided response, the
// allocation-free fast path: when the plan and result caches both hit,
// the whole bind→execute→serialize round trip is a pooled key render,
// two cache probes and a page subslice — zero heap allocations — so
// transports can pool responses and a warm dashboard's per-interaction
// cost is pure lookup. resp is fully overwritten.
func (s *Service) QueryInto(id string, req QueryRequest, resp *QueryResponse) error {
	return s.QueryIntoCtx(context.Background(), id, req, resp)
}

// QueryIntoCtx is QueryInto carrying a request context, which exists
// solely so the trace id minted (or accepted) at the HTTP edge reaches
// the slow-query ring — the Servicer seam itself stays context-free.
// It is also the instrumented wrapper around the query proper: latency
// lands in the per-interface histogram (sampled 1:8 when the slow ring
// is not armed, so the untimed path pays one atomic tick and no clock
// reads), and slow or sampled queries are recorded with their
// bind/exec/serialize breakdown. The stage scratch is pooled: the warm
// path stays at zero heap allocations with instrumentation live.
func (s *Service) QueryIntoCtx(ctx context.Context, id string, req QueryRequest, resp *QueryResponse) error {
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return apiErr
	}
	mx, ring := h.mx, s.slow
	var qs *queryStages
	if ring.Armed() || (mx != nil && mx.sample()) {
		qs = stagesPool.Get().(*queryStages)
		*qs = queryStages{t0: time.Now()}
	}
	err := s.queryInto(h, req, resp, qs)
	if qs == nil {
		if err != nil && mx != nil {
			mx.errs.Inc()
		}
		return err
	}
	total := time.Since(qs.t0)
	if mx != nil {
		if err != nil {
			mx.errs.Inc()
		} else {
			mx.dur[b2i(qs.planHit)][b2i(qs.columnar)].Observe(total)
		}
	}
	if ring.Should(total) {
		e := obs.SlowEntry{
			TraceID:     obs.TraceID(ctx),
			Interface:   h.ID,
			Source:      "serve",
			SQL:         qs.sql,
			Epoch:       qs.epoch,
			Time:        time.Now(),
			TotalMS:     ms(total),
			BindMS:      stageMS(qs.t0, qs.tBind),
			ExecMS:      stageMS(qs.tBind, qs.tExec),
			SerializeMS: stageMS(qs.tExec, qs.t0.Add(total)),
		}
		if err != nil {
			e.Error = err.Error()
		} else {
			e.Plan = hitMiss(qs.planHit)
			e.Cache = hitMiss(qs.cacheHit)
		}
		ring.Record(e)
	}
	stagesPool.Put(qs)
	return err
}

// queryInto is the query proper: plan resolution, cursor validation,
// result-cache probe / execution, page slicing. qs, when non-nil,
// receives stage clock marks and outcome flags for the caller's
// metrics and slow-ring entry.
func (s *Service) queryInto(h *Hosted, req QueryRequest, resp *QueryResponse, qs *queryStages) error {
	st := h.load()

	limit, apiErr := s.pageLimit(req.Limit)
	if apiErr != nil {
		return apiErr
	}

	// Plan lookup first: a repeated widget-state shape skips binding,
	// rendering and hashing even when its result has been evicted. The
	// key is rendered into a pooled buffer and looked up as bytes, so
	// a hit never materializes a key string.
	sc := planKeyPool.Get().(*planKeyScratch)
	sc.AppendPlanKey(req.Widgets)
	plan, planHit := st.plans.GetBytes(sc.buf)
	if !planHit {
		q, err := Bind(st.iface, req.Widgets)
		if err != nil {
			planKeyPool.Put(sc)
			return bindToError(err)
		}
		plan = &Plan{Query: q, SQL: ast.SQL(q), Hash: ast.HashOf(q)}
		if !s.opts.DisableColumnar {
			if col, ok := engine.CompileColumnar(q); ok {
				plan.Col = col
			}
		}
		st.plans.Put(string(sc.buf), plan)
	}
	planKeyPool.Put(sc)
	if qs != nil {
		qs.tBind = time.Now()
		qs.planHit = planHit
		qs.columnar = plan.Col != nil
		qs.sql = plan.SQL
		qs.epoch = st.epoch
	}

	// The cursor can only be validated once the plan is known: it is
	// bound to the exact query that produced the first page, not just
	// the epoch.
	offset := 0
	if req.Cursor != "" {
		if offset, apiErr = parseCursor(req.Cursor, st.epoch, plan.Hash); apiErr != nil {
			return apiErr
		}
	}

	cr, hit := st.cache.Get(plan.Hash, plan.SQL)
	if !hit {
		res, err := s.exec(st, plan)
		if err != nil {
			// The closure can contain queries the dataset cannot answer
			// (e.g. a column the sample lacks); that is a client-state
			// problem, not a server fault.
			return Errf(CodeExecFailed, http.StatusUnprocessableEntity, "exec: %v", err)
		}
		cr = st.cache.Put(plan.Hash, plan.SQL, res)
	}
	h.queries.Add(1)
	if qs != nil {
		qs.tExec = time.Now()
		qs.cacheHit = hit
	}

	total := len(cr.Res.Rows)
	if offset > total {
		offset = total
	}
	end := offset + limit
	if end > total {
		end = total
	}
	*resp = QueryResponse{
		SQL:        plan.SQL,
		Epoch:      st.epoch,
		Cols:       cr.Res.Cols,
		Rows:       cr.Rows[offset:end],
		RowCount:   total,
		Offset:     offset,
		Truncated:  end < total,
		Cache:      "miss",
		Plan:       "miss",
		CacheStats: st.cache.Stats(),
	}
	if resp.Truncated {
		resp.NextCursor = encodeCursor(st.epoch, plan.Hash, end)
	}
	if hit {
		resp.Cache = "hit"
	}
	if planHit {
		resp.Plan = "hit"
	}
	return nil
}

// exec runs one bound plan against the epoch's catalog: the vectorized
// kernels when the plan compiled to a columnar shape and the catalog
// can serve columns, the row-at-a-time interpreter otherwise. The two
// paths produce byte-identical results (including error text), so the
// choice is invisible above this line.
func (s *Service) exec(st *epochState, plan *Plan) (*engine.Table, error) {
	if plan.Col != nil {
		if res, ran, err := engine.ExecColumnar(st.db, plan.Col); ran {
			return res, err
		}
	}
	return engine.Exec(st.db, plan.Query)
}

// pageLimit resolves the requested page size against the service caps.
func (s *Service) pageLimit(limit int) (int, *Error) {
	switch {
	case limit < 0:
		return 0, errBadRequest("limit must be non-negative, got %d", limit)
	case limit == 0:
		return s.opts.DefaultRowLimit, nil
	case limit > s.opts.MaxRowLimit:
		return s.opts.MaxRowLimit, nil
	}
	return limit, nil
}

// bindToError maps binding failures onto the error contract.
func bindToError(err error) *Error {
	if _, ok := err.(*BindError); ok {
		return Errf(CodeBindRejected, http.StatusUnprocessableEntity, "%v", err)
	}
	return errBadRequest("%v", err)
}

// --- pagination cursors.
//
// A cursor is "<epoch>.<planhash>.<offset>": resuming is only sound
// against the same immutable epoch snapshot AND the same bound query
// that produced the first page, so both are part of the token — a hot
// swap invalidates outstanding cursors (CodeCursorExpired), and a
// cursor replayed with different widget bindings is rejected
// (CodeBadRequest) instead of silently splicing pages from two
// different result sets.

func encodeCursor(epoch uint64, hash ast.Hash, offset int) string {
	return strconv.FormatUint(epoch, 10) + "." +
		strconv.FormatUint(uint64(hash), 16) + "." +
		strconv.Itoa(offset)
}

func parseCursor(c string, epoch uint64, hash ast.Hash) (int, *Error) {
	parts := strings.Split(c, ".")
	if len(parts) != 3 {
		return 0, errBadRequest("malformed cursor %q", c)
	}
	ce, err1 := strconv.ParseUint(parts[0], 10, 64)
	ch, err2 := strconv.ParseUint(parts[1], 16, 64)
	off, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || off < 0 {
		return 0, errBadRequest("malformed cursor %q", c)
	}
	if ce != epoch {
		return 0, Errf(CodeCursorExpired, http.StatusGone,
			"cursor from epoch %d, interface is at epoch %d; restart from the first page", ce, epoch)
	}
	if ast.Hash(ch) != hash {
		return 0, errBadRequest("cursor was minted for a different query; restart from the first page")
	}
	return off, nil
}

// IngestReady reports whether IngestLog can accept entries for the
// interface: not_found when it is not hosted, ingest_disabled when no
// ingestor is wired in. Transports call it before paying to decode a
// potentially large log body.
func (s *Service) IngestReady(id string) error {
	if _, apiErr := s.hosted(id); apiErr != nil {
		return apiErr
	}
	if s.ing == nil {
		return Errf(CodeIngestDisabled, http.StatusNotImplemented,
			"live ingestion is not enabled on this server")
	}
	return nil
}

// IngestLog submits query-log entries to the live ingester. With flush
// set, buffered entries are re-mined before returning, so the ack's
// epoch reflects the submitted entries.
func (s *Service) IngestLog(id string, entries []qlog.Entry, flush bool) (*IngestAck, error) {
	if err := s.IngestReady(id); err != nil {
		return nil, err
	}
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return nil, apiErr
	}
	if len(entries) == 0 {
		return nil, errBadRequest("no log entries in request body")
	}
	ack, err := s.ing.Submit(h.ID, entries)
	if err != nil {
		return nil, errOr(err, CodeIngestFailed, http.StatusUnprocessableEntity)
	}
	if flush && ack.Buffered > 0 {
		if _, err := s.ing.Flush(h.ID); err != nil {
			return nil, errOr(err, CodeIngestFailed, http.StatusUnprocessableEntity)
		}
		ack.Flushed = true
		ack.Buffered = 0
	}
	ack.Epoch = h.Epoch()
	return &ack, nil
}

// AppendRows submits new dataset rows for one table of the
// interface's store. Rows buffer in the ingestion layer and are
// published copy-on-write under a bumped epoch when a batch fills (or
// immediately with flush set), so queries accepted after the ack with
// Flushed=true can never be answered from a pre-append cache. Requires
// an ingestor that supports row ingestion (a store-backed one).
func (s *Service) AppendRows(id string, req RowsRequest, flush bool) (*RowsAck, error) {
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return nil, apiErr
	}
	ri, ok := s.ing.(RowIngestor)
	if !ok {
		return nil, Errf(CodeIngestDisabled, http.StatusNotImplemented,
			"row ingestion is not enabled on this server")
	}
	if strings.TrimSpace(req.Table) == "" {
		return nil, errBadRequest("rows request needs a table name")
	}
	if len(req.Rows) == 0 {
		return nil, errBadRequest("no rows in request body")
	}
	rows, apiErr := decodeRows(req.Rows)
	if apiErr != nil {
		return nil, apiErr
	}
	ack, err := ri.SubmitRows(h.ID, req.Table, rows, flush)
	if err != nil {
		return nil, errOr(err, CodeRowsRejected, http.StatusUnprocessableEntity)
	}
	return &ack, nil
}

// MutateRows evaluates one UPDATE or DELETE statement against the
// interface's store and publishes the result as a versioned mutation
// under a bumped epoch — post-mutation queries can never be answered
// from a pre-mutation cache. The statement's predicate runs against
// the snapshot current at submission (after buffered appends flush),
// and the resulting rowid-keyed mutation set — not the predicate — is
// what journals and replicates, so every copy of the interface lands
// on byte-identical rows. Requires an ingestor that supports row
// mutation (a store-backed one).
func (s *Service) MutateRows(id string, req MutateRequest) (*MutateAck, error) {
	h, apiErr := s.hosted(id)
	if apiErr != nil {
		return nil, apiErr
	}
	rm, ok := s.ing.(RowMutator)
	if !ok {
		return nil, Errf(CodeIngestDisabled, http.StatusNotImplemented,
			"row mutation is not enabled on this server")
	}
	if strings.TrimSpace(req.SQL) == "" {
		return nil, errBadRequest("mutation request needs a sql statement")
	}
	ack, err := rm.SubmitMutation(h.ID, req.SQL, req.IfEpoch)
	if err != nil {
		return nil, errOr(err, CodeRowsRejected, http.StatusUnprocessableEntity)
	}
	return &ack, nil
}

// decodeRows converts JSON row values into engine values. Only scalars
// are representable; a nested array or object is a client error.
// Numbers arrive as float64 — the engine's only numeric representation
// — so integers beyond 2^53 round like they would in any query result.
func decodeRows(in [][]any) ([][]engine.Value, *Error) {
	out := make([][]engine.Value, len(in))
	for i, row := range in {
		vals := make([]engine.Value, len(row))
		for j, v := range row {
			switch x := v.(type) {
			case nil:
				vals[j] = engine.Null()
			case float64:
				vals[j] = engine.Num(x)
			case string:
				vals[j] = engine.Str(x)
			case bool:
				vals[j] = engine.Boolean(x)
			default:
				return nil, Errf(CodeRowsRejected, http.StatusUnprocessableEntity,
					"row %d col %d: value %T is not a SQL scalar", i, j, v)
			}
		}
		out[i] = vals
	}
	return out, nil
}

// DeleteInterface unhosts the interface: its live feed (if any)
// detaches first so no further submissions land, the registry entry is
// removed so new requests see not_found, and its durable snapshot (if
// persistence is wired) is deleted so the interface does not resurrect
// on the next boot. In-flight requests that already resolved the
// interface finish against the epoch snapshot they loaded. This is
// also the local half of a shard relinquishing an interface during
// rebalancing.
func (s *Service) DeleteInterface(id string) (*DeleteAck, error) {
	if _, apiErr := s.hosted(id); apiErr != nil {
		return nil, apiErr
	}
	if d, ok := s.ing.(IngestDetacher); ok {
		d.Detach(id)
	}
	s.reg.Remove(id)
	if rem, ok := s.per.(SnapshotRemover); ok {
		if err := rem.RemoveSnapshot(id); err != nil {
			return nil, Errf(CodeSnapshotFailed, http.StatusInternalServerError,
				"interface %q unhosted but its snapshot was not removed: %v", id, err)
		}
	}
	return &DeleteAck{ID: id, Deleted: true}, nil
}

// Snapshot persists every hosted interface's (log, dataset, epoch) to
// the data dir through the wired persister — the durable counterpart
// of the in-memory epoch snapshots every query already runs against.
func (s *Service) Snapshot() (*SnapshotResult, error) {
	if s.per == nil {
		return nil, Errf(CodePersistenceDisabled, http.StatusNotImplemented,
			"persistence is not enabled on this server (start with a data dir)")
	}
	res, err := s.per.SaveAll()
	if err != nil {
		return nil, Errf(CodeSnapshotFailed, http.StatusInternalServerError, "snapshot: %v", err)
	}
	return res, nil
}

// Health reports build info, uptime and a per-interface row with epoch,
// traffic and cache hit rates (plus ingestion counters when wired).
func (s *Service) Health() *Health {
	health := &Health{
		Status:        "ok",
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Ingestion:     s.ing != nil,
		Persistence:   s.per != nil,
		Interfaces:    []HealthInterface{},
	}
	statuser, _ := s.ing.(IngestStatuser)
	walStatuser, _ := s.per.(WALStatuser)
	for _, h := range s.reg.List() {
		st := h.load()
		row := HealthInterface{
			ID:           h.ID,
			Epoch:        st.epoch,
			Widgets:      len(st.iface.Widgets),
			Queries:      h.Queries(),
			CacheHitRate: hitRate(st.cache.Stats()),
			PlanHitRate:  hitRate(st.plans.Stats()),
		}
		if statuser != nil {
			if is, ok := statuser.IngestStatus(h.ID); ok {
				row.Ingest = &is
			}
		}
		if walStatuser != nil {
			if wi, ok := walStatuser.WALStatus(h.ID); ok {
				row.WAL = wi
			}
		}
		health.Interfaces = append(health.Interfaces, row)
	}
	return health
}

// Debug returns the cache and traffic counters per interface: the
// current epoch's point-in-time cache stats plus the cumulative
// hit/miss totals across every epoch served. The totals come from
// Hosted.CacheTotals — the same function the pi_query_*_cache_total
// metric series read — so /v1/debug and /v1/metrics cannot disagree.
func (s *Service) Debug() *DebugInfo {
	info := &DebugInfo{Interfaces: []DebugInterface{}}
	for _, h := range s.reg.List() {
		st := h.load()
		res, plans := h.CacheTotals()
		info.Interfaces = append(info.Interfaces, DebugInterface{
			ID:           h.ID,
			Epoch:        st.epoch,
			Queries:      h.Queries(),
			Cache:        st.cache.Stats(),
			Plans:        st.plans.Stats(),
			CacheTotals:  res,
			PlanTotals:   plans,
			CacheHitRate: hitRate(res),
			PlanHitRate:  hitRate(plans),
		})
	}
	return info
}

func hitRate(st CacheStats) float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

// rowsJSON converts engine values in [lo, hi) to JSON scalars (numbers,
// strings, booleans, null).
func rowsJSON(t *engine.Table, lo, hi int) [][]any {
	out := make([][]any, 0, hi-lo)
	for _, row := range t.Rows[lo:hi] {
		jr := make([]any, len(row))
		for j, v := range row {
			switch v.Kind {
			case engine.KindNumber:
				jr[j] = v.Num
			case engine.KindString:
				jr[j] = v.Str
			case engine.KindBool:
				jr[j] = v.Bool
			default:
				jr[j] = nil
			}
		}
		out = append(out, jr)
	}
	return out
}
