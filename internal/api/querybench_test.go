package api

import (
	"sort"
	"testing"
	"time"
)

// BenchmarkQueryPlanCached measures the full cached-plan query path a
// warm dashboard pays per interaction — pooled key render, plan-cache
// hit, bound execution against the hosted snapshot — and reports tail
// latency (p50_ns/p99_ns) alongside the mean, because the mean hides
// exactly the stalls a slider drag feels. It drives QueryInto with a
// reused response, the same shape the HTTP handler's response pool
// produces, so the number is the serving path's cost, not the
// caller's allocation discipline. scripts/bench_json.sh folds the
// numbers into BENCH_query.json.
func BenchmarkQueryPlanCached(b *testing.B) {
	svc, h := newTestService(b)
	w := sliderWidget(b, h.Iface())
	lo, _ := w.Domain.Range()
	req := QueryRequest{Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &lo}}}

	// Warm the plan cache; every timed iteration must be a hit.
	if _, err := svc.Query("olap", req); err != nil {
		b.Fatal(err)
	}
	if resp, err := svc.Query("olap", req); err != nil || resp.Plan != "hit" {
		b.Fatalf("warmup did not cache the plan: %+v (%v)", resp, err)
	}

	var resp QueryResponse
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := svc.QueryInto("olap", req, &resp); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p int) float64 {
		idx := len(lat) * p / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx].Nanoseconds())
	}
	b.ReportMetric(pct(50), "p50_ns")
	b.ReportMetric(pct(99), "p99_ns")
}
