package api

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/mapper"
	"repro/internal/qlog"
	"repro/internal/workload"
)

// testFixture mines the OLAP interface once; every test builds its own
// registry over the shared immutable interface and dataset.
var fixture struct {
	once  sync.Once
	iface *core.Interface
	db    *engine.DB
	err   error
}

func minedOLAP(t testing.TB) (*core.Interface, *engine.DB) {
	t.Helper()
	fixture.once.Do(func() {
		log := workload.OLAPLog(150, 7)
		fixture.iface, fixture.err = core.Generate(log, core.DefaultOptions())
		fixture.db = engine.OnTimeDB(300)
	})
	if fixture.err != nil {
		t.Fatalf("mine OLAP fixture: %v", fixture.err)
	}
	return fixture.iface, fixture.db
}

func newTestService(t testing.TB, opts ...ServiceOptions) (*Service, *Hosted) {
	t.Helper()
	iface, db := minedOLAP(t)
	reg := NewRegistry()
	h, err := reg.Add("olap", "OnTime OLAP dashboard", iface, db)
	if err != nil {
		t.Fatal(err)
	}
	return NewService(reg, opts...), h
}

// sliderWidget returns a mined numeric-range widget to exercise
// extrapolation.
func sliderWidget(t testing.TB, iface *core.Interface) *mapper.MappedWidget {
	t.Helper()
	for _, w := range iface.Widgets {
		if w.Domain.IsNumericRange() {
			return w
		}
	}
	t.Fatal("fixture mined no numeric-range widget")
	return nil
}

// errCode extracts the structured code from a service error.
func errCode(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		t.Fatal("expected an error")
	}
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error %v is not an *api.Error", err)
	}
	return e.Code
}

func TestServiceUnknownInterface(t *testing.T) {
	svc, _ := newTestService(t)
	if _, err := svc.GetInterface("nope"); errCode(t, err) != CodeNotFound {
		t.Fatalf("GetInterface code = %v", err)
	}
	if _, err := svc.Query("nope", QueryRequest{}); errCode(t, err) != CodeNotFound {
		t.Fatalf("Query code = %v", err)
	}
	if _, err := svc.Epoch("nope"); errCode(t, err) != CodeNotFound {
		t.Fatalf("Epoch code = %v", err)
	}
	if _, err := svc.Page("nope"); errCode(t, err) != CodeNotFound {
		t.Fatalf("Page code = %v", err)
	}
}

func TestServiceBindRejectedCode(t *testing.T) {
	svc, h := newTestService(t)
	w := sliderWidget(t, h.Iface())
	_, hi := w.Domain.Range()
	outside := hi + 1000
	_, err := svc.Query("olap", QueryRequest{
		Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &outside}},
	})
	if errCode(t, err) != CodeBindRejected {
		t.Fatalf("out-of-domain code = %v", err)
	}
	v := 1.0
	_, err = svc.Query("olap", QueryRequest{
		Widgets: []WidgetBinding{{Path: "9/9/9", Number: &v}},
	})
	if errCode(t, err) != CodeBindRejected {
		t.Fatalf("unknown-path code = %v", err)
	}
}

// TestServiceQueryCounterCountsOnlyAccepted: rejected bindings must not
// inflate the per-interface query counter that /healthz and /debug
// report.
func TestServiceQueryCounterCountsOnlyAccepted(t *testing.T) {
	svc, h := newTestService(t)
	w := sliderWidget(t, h.Iface())
	_, hi := w.Domain.Range()
	outside := hi + 1000
	for i := 0; i < 3; i++ {
		if _, err := svc.Query("olap", QueryRequest{
			Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &outside}},
		}); err == nil {
			t.Fatal("out-of-domain query accepted")
		}
	}
	if got := h.Queries(); got != 0 {
		t.Fatalf("rejected queries advanced the counter to %d", got)
	}
	if _, err := svc.Query("olap", QueryRequest{}); err != nil {
		t.Fatal(err)
	}
	if got := h.Queries(); got != 1 {
		t.Fatalf("accepted query counter = %d, want 1", got)
	}
}

func TestServiceQueryPagination(t *testing.T) {
	svc, _ := newTestService(t)
	full, err := svc.Query("olap", QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if full.RowCount < 3 {
		t.Skipf("fixture initial query returns %d rows; need >= 3", full.RowCount)
	}
	total := full.RowCount

	// Page through with limit 2 and reassemble the full result.
	var rows [][]any
	cursor := ""
	pages := 0
	for {
		resp, err := svc.Query("olap", QueryRequest{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatalf("page %d: %v", pages, err)
		}
		if resp.RowCount != total {
			t.Fatalf("page %d reports total %d, want %d", pages, resp.RowCount, total)
		}
		if len(resp.Rows) > 2 {
			t.Fatalf("page %d has %d rows, limit was 2", pages, len(resp.Rows))
		}
		rows = append(rows, resp.Rows...)
		pages++
		if !resp.Truncated {
			if resp.NextCursor != "" {
				t.Fatalf("final page still carries a cursor %q", resp.NextCursor)
			}
			break
		}
		if resp.NextCursor == "" {
			t.Fatal("truncated page without a nextCursor")
		}
		cursor = resp.NextCursor
	}
	if len(rows) != total {
		t.Fatalf("reassembled %d rows across %d pages, want %d", len(rows), pages, total)
	}
	if pages != (total+1)/2 {
		t.Fatalf("walked %d pages for %d rows at limit 2", pages, total)
	}
}

func TestServiceQueryPaginationDefaultsAndCaps(t *testing.T) {
	svc, _ := newTestService(t, ServiceOptions{DefaultRowLimit: 2, MaxRowLimit: 3})
	resp, err := svc.Query("olap", QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) > 2 {
		t.Fatalf("default limit not applied: %d rows", len(resp.Rows))
	}
	if resp.RowCount > 2 && !resp.Truncated {
		t.Fatal("truncation not reported under the default cap")
	}
	// An absurd requested limit is clamped to the hard cap.
	resp, err = svc.Query("olap", QueryRequest{Limit: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) > 3 {
		t.Fatalf("hard cap not applied: %d rows", len(resp.Rows))
	}
	// Negative limits are rejected, malformed cursors too.
	if _, err := svc.Query("olap", QueryRequest{Limit: -1}); errCode(t, err) != CodeBadRequest {
		t.Fatalf("negative limit code = %v", err)
	}
	if _, err := svc.Query("olap", QueryRequest{Cursor: "junk"}); errCode(t, err) != CodeBadRequest {
		t.Fatalf("malformed cursor code = %v", err)
	}
}

// TestServiceCursorExpiresAcrossEpochs: a cursor minted before a hot
// swap must not splice rows from two different result sets.
func TestServiceCursorExpiresAcrossEpochs(t *testing.T) {
	svc, h := newTestService(t, ServiceOptions{DefaultRowLimit: 1})
	first, err := svc.Query("olap", QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Truncated {
		t.Skip("fixture initial query fits one row; cannot mint a cursor")
	}
	if _, err := h.Swap(h.Iface(), nil); err != nil {
		t.Fatal(err)
	}
	_, err = svc.Query("olap", QueryRequest{Cursor: first.NextCursor})
	if errCode(t, err) != CodeCursorExpired {
		t.Fatalf("stale cursor code = %v", err)
	}
}

// TestServiceCursorBoundToQuery: a cursor minted for one widget state
// must not page through a different query's result at the same epoch.
func TestServiceCursorBoundToQuery(t *testing.T) {
	svc, h := newTestService(t, ServiceOptions{DefaultRowLimit: 1})
	first, err := svc.Query("olap", QueryRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if !first.Truncated {
		t.Skip("fixture initial query fits one row; cannot mint a cursor")
	}
	w := sliderWidget(t, h.Iface())
	lo, _ := w.Domain.Range()
	_, err = svc.Query("olap", QueryRequest{
		Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &lo}},
		Cursor:  first.NextCursor,
	})
	if errCode(t, err) != CodeBadRequest {
		t.Fatalf("cross-query cursor code = %v", err)
	}
}

func TestServiceIngestDisabled(t *testing.T) {
	svc, _ := newTestService(t)
	_, err := svc.IngestLog("olap", []qlog.Entry{{SQL: "SELECT 1"}}, false)
	if errCode(t, err) != CodeIngestDisabled {
		t.Fatalf("ingest without ingestor code = %v", err)
	}
}

func TestServicePageWiredToV1(t *testing.T) {
	svc, _ := newTestService(t)
	page, err := svc.Page("olap")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, `"endpoint":"/v1/interfaces/olap/query"`) {
		t.Fatalf("page not wired to the v1 query endpoint:\n%.300s", page)
	}
	if !strings.Contains(page, `"epochEndpoint":"/v1/interfaces/olap/epoch"`) {
		t.Fatal("page not wired to the v1 epoch endpoint")
	}
}
