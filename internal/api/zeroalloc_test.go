package api

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ast"
	"repro/internal/sqlparser"
)

// TestAppendPlanKeyMatchesPlanKey pins the byte identity between the
// allocating key builder (PlanKey, used when storing) and the pooled
// one (AppendPlanKey, used when probing): any divergence would turn
// every cache hit into a miss — silently, since both paths are
// correct in isolation.
func TestAppendPlanKeyMatchesPlanKey(t *testing.T) {
	num := func(f float64) *float64 { return &f }
	txt := func(s string) *string { return &s }
	val := func(sql string) *ast.Node {
		q := sqlparser.MustParse("SELECT a FROM t WHERE x = " + sql)
		var lit *ast.Node
		q.Walk(func(n *ast.Node, _ ast.Path) bool {
			if n != nil && n.Type == ast.TypeBiExpr && n.Attr("op") == "=" {
				lit = n.Child(1)
			}
			return true
		})
		if lit == nil {
			t.Fatalf("no literal in %q", sql)
		}
		return lit
	}

	cases := [][]WidgetBinding{
		nil,
		{},
		{{Path: "0/1", Number: num(3.5)}},
		{{Path: "0/1", Number: num(-0.000001)}},
		{{Path: "0/1", Text: txt("O'Hare|5:x")}},
		{{Path: "0/1", Text: txt("")}},
		{{Path: "0/1", Absent: true}},
		{{Path: "0/1"}}, // malformed: nothing set
		{{Path: "2/0/1", Value: val("42")}},
		{{Path: "2/0/1", Value: val("'ORD'")}},
		// Multi-binding: sort order must match regardless of input order.
		{
			{Path: "3/1", Number: num(7)},
			{Path: "0/2", Text: txt("zzz")},
			{Path: "1/0", Absent: true},
		},
		{
			{Path: "b", Text: txt("1")},
			{Path: "a", Text: txt("2")},
			{Path: "a", Text: txt("1")},
		},
		// Adversarial: path content that looks like another binding's
		// rendering (the length prefixes keep these apart).
		{
			{Path: "3:abc", Text: txt("n3:1.5")},
			{Path: "3", Text: txt("abcn3:1.5")},
		},
	}

	sc := &planKeyScratch{}
	for i, bindings := range cases {
		want := PlanKey(bindings)
		sc.AppendPlanKey(bindings)
		if got := string(sc.buf); got != want {
			t.Errorf("case %d: AppendPlanKey = %q, PlanKey = %q", i, got, want)
		}
	}
}

// TestQueryIntoCachedPathAllocs pins the tentpole's third layer: a
// warm query (plan hit + result hit) served through QueryInto must
// cost at most one heap allocation — the before state of this path
// was five.
func TestQueryIntoCachedPathAllocs(t *testing.T) {
	svc, h := newTestService(t)
	w := sliderWidget(t, h.Iface())
	lo, _ := w.Domain.Range()
	req := QueryRequest{Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &lo}}}

	var resp QueryResponse
	// Warm: first call populates both caches and the key-scratch pool.
	for i := 0; i < 3; i++ {
		if err := svc.QueryInto("olap", req, &resp); err != nil {
			t.Fatal(err)
		}
	}
	if resp.Plan != "hit" || resp.Cache != "hit" {
		t.Fatalf("warmup did not reach the cached path: plan=%s cache=%s", resp.Plan, resp.Cache)
	}

	allocs := testing.AllocsPerRun(200, func() {
		if err := svc.QueryInto("olap", req, &resp); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("cached query path allocates %.1f objects per call, want <= 1", allocs)
	}
}

// TestQueryColumnarMatchesRowPath runs the mined OLAP interface's
// widget states through two services over the same data — one with
// the vectorized kernels, one forced onto the row interpreter — and
// requires byte-identical responses. This is the service-level half
// of the identity guarantee (the engine-level corpus test covers raw
// SQL): whatever the planner selects, the wire format cannot tell.
func TestQueryColumnarMatchesRowPath(t *testing.T) {
	iface, db := minedOLAP(t)
	newSvc := func(opts ServiceOptions) *Service {
		reg := NewRegistry()
		if _, err := reg.Add("olap", "t", iface, db); err != nil {
			t.Fatal(err)
		}
		return NewService(reg, opts)
	}
	vec := newSvc(ServiceOptions{})
	row := newSvc(ServiceOptions{DisableColumnar: true})

	reqs := []QueryRequest{{}} // the initial query
	for _, w := range iface.Widgets {
		for i, v := range w.Domain.Values() {
			if i >= 4 { // a few values per widget is plenty
				break
			}
			b := WidgetBinding{Path: w.Path.String()}
			if v == nil {
				b.Absent = true
			} else {
				b.Value = v
			}
			reqs = append(reqs, QueryRequest{Widgets: []WidgetBinding{b}})
		}
	}

	ran := 0
	for _, req := range reqs {
		a, errA := vec.Query("olap", req)
		b, errB := row.Query("olap", req)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("req %+v: columnar err=%v, row err=%v", req, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("req %+v: error text diverged: %q vs %q", req, errA, errB)
			}
			continue
		}
		// CacheStats legitimately differ (two independent services);
		// everything the client derives data from must not.
		a.CacheStats, b.CacheStats = CacheStats{}, CacheStats{}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("req %+v:\ncolumnar: %s\nrow:      %s", req, dumpResp(a), dumpResp(b))
		}
		ran++
	}
	if ran == 0 {
		t.Fatal("no request executed on both paths")
	}
}

func dumpResp(r *QueryResponse) string {
	return fmt.Sprintf("sql=%q rows=%d first=%v", r.SQL, r.RowCount, firstRow(r))
}

func firstRow(r *QueryResponse) []any {
	if len(r.Rows) == 0 {
		return nil
	}
	return r.Rows[0]
}
