package api

import (
	"sort"
	"testing"
	"time"
)

// newBenchService builds the cached-plan benchmark fixture with
// metrics either live (the shipped configuration) or disabled (the
// clean baseline the overhead comparison needs).
func newBenchService(b testing.TB, metrics bool) (*Service, QueryRequest) {
	iface, db := minedOLAP(b)
	reg := NewRegistry()
	if !metrics {
		reg.DisableMetrics()
	}
	h, err := reg.Add("olap", "OnTime OLAP dashboard", iface, db)
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(reg)
	w := sliderWidget(b, h.Iface())
	lo, _ := w.Domain.Range()
	req := QueryRequest{Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &lo}}}
	// Warm the plan cache; every timed iteration must be a hit.
	if _, err := svc.Query("olap", req); err != nil {
		b.Fatal(err)
	}
	if resp, err := svc.Query("olap", req); err != nil || resp.Plan != "hit" {
		b.Fatalf("warmup did not cache the plan: %+v (%v)", resp, err)
	}
	return svc, req
}

// BenchmarkQueryPlanCachedNoMetrics is BenchmarkQueryPlanCached with
// instrumentation compiled out of the hosted interface — the "metrics
// off" baseline scripts/bench_json.sh folds into BENCH_obs.json to
// compute the instrumentation overhead ratio.
func BenchmarkQueryPlanCachedNoMetrics(b *testing.B) {
	svc, req := newBenchService(b, false)
	var resp QueryResponse
	lat := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		if err := svc.QueryInto("olap", req, &resp); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(t0))
	}
	b.StopTimer()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p int) float64 {
		idx := len(lat) * p / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		return float64(lat[idx].Nanoseconds())
	}
	b.ReportMetric(pct(50), "p50_ns")
	b.ReportMetric(pct(99), "p99_ns")
}
