// Package api is the transport-agnostic service layer of the serving
// system: it owns the registry of hosted interfaces, the binding /
// execution / caching logic, and a typed operation surface (Service)
// with structured errors and pagination. Transports stay thin —
// internal/server maps HTTP requests onto Service operations and
// encodes the results; pi/client speaks the same contract from the
// consumer side; future transports (gRPC, shard routers) plug into the
// same seam.
//
// Concurrency model: a Registry is safe for concurrent use. Each
// Hosted interface's mutable serving state (interface, dataset, result
// cache, plan cache, compiled page) lives behind one atomically
// swapped, internally immutable epoch snapshot: request handlers load
// the snapshot once and work against consistent state for the whole
// request, while ingestion swaps in a re-mined interface under a
// bumped epoch without blocking readers. Swapping replaces the caches
// wholesale, so a post-swap request can never observe a pre-swap
// cached result — the epoch-based invalidation discipline of answering
// queries under updates (Berkholz et al.).
package api

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/engine"
)

// epochState is one epoch's immutable serving snapshot: the interface
// and dataset plus the caches that are only valid for them. The two
// caches and the lazily compiled page are internally synchronized; the
// rest is read-only after construction.
type epochState struct {
	epoch uint64
	iface *core.Interface
	db    engine.Catalog
	cache *Cache     // result LRU keyed by canonical AST hash
	plans *PlanCache // bound-query plans keyed by widget-state shape

	pageMu sync.RWMutex
	page   string // lazily compiled served page ("" until first GET)
}

// Hosted is one mined interface registered for serving. Identity (ID,
// Title) is fixed at registration; the served interface itself advances
// through epoch snapshots as live ingestion re-mines it.
type Hosted struct {
	ID    string
	Title string

	cacheSize int
	queries   atomic.Uint64 // total POST /query requests served

	// mx holds the interface's preallocated metric handles (nil when
	// the registry was built with metrics disabled). statsMu guards the
	// cache hit/miss totals carried over from retired epochs, so the
	// cumulative counters /v1/metrics and /v1/debug expose survive hot
	// swaps even though each epoch starts with fresh caches.
	mx        *hostedMetrics
	statsMu   sync.Mutex
	cacheBase CacheStats
	planBase  CacheStats

	swapMu sync.Mutex // serializes Swap; readers never take it
	state  atomic.Pointer[epochState]
}

// newHosted builds a hosted interface at the given starting epoch
// (1 for a fresh host; a restored interface resumes at its saved
// epoch).
func newHosted(id, title string, iface *core.Interface, db engine.Catalog, cacheSize int, epoch uint64) *Hosted {
	h := &Hosted{ID: id, Title: title, cacheSize: cacheSize}
	h.state.Store(h.newEpoch(epoch, iface, db))
	return h
}

func (h *Hosted) newEpoch(epoch uint64, iface *core.Interface, db engine.Catalog) *epochState {
	return &epochState{
		epoch: epoch,
		iface: iface,
		db:    db,
		cache: NewCache(h.cacheSize),
		plans: NewPlanCache(h.cacheSize),
	}
}

// load returns the current epoch snapshot. Handlers call it once per
// request and use only the snapshot afterwards.
func (h *Hosted) load() *epochState { return h.state.Load() }

// Iface returns the currently served interface (immutable; a Swap
// replaces rather than mutates it, so holders stay consistent).
func (h *Hosted) Iface() *core.Interface { return h.load().iface }

// Catalog returns the read-only dataset view the current interface
// executes against (a frozen *engine.DB or a store snapshot).
func (h *Hosted) Catalog() engine.Catalog { return h.load().db }

// Cache returns the current epoch's result cache (exposed for stats).
func (h *Hosted) Cache() *Cache { return h.load().cache }

// Plans returns the current epoch's plan cache (exposed for stats).
func (h *Hosted) Plans() *PlanCache { return h.load().plans }

// Epoch returns the current epoch counter (starts at 1, bumped by every
// Swap).
func (h *Hosted) Epoch() uint64 { return h.load().epoch }

// Queries returns the number of query requests this interface served.
func (h *Hosted) Queries() uint64 { return h.queries.Load() }

// CacheTotals returns the cumulative result- and plan-cache hit/miss
// counters across every epoch this interface has served (each Swap
// retires the per-epoch caches but folds their counters into the
// base). Size/Capacity reflect the current epoch. Both /v1/debug and
// the pi_query_*_cache_total metric series read through here, so the
// two surfaces cannot drift.
func (h *Hosted) CacheTotals() (res, plans CacheStats) {
	h.statsMu.Lock()
	res, plans = h.cacheBase, h.planBase
	h.statsMu.Unlock()
	st := h.load()
	cs, ps := st.cache.Stats(), st.plans.Stats()
	res.Hits += cs.Hits
	res.Misses += cs.Misses
	res.Size, res.Capacity = cs.Size, cs.Capacity
	plans.Hits += ps.Hits
	plans.Misses += ps.Misses
	plans.Size, plans.Capacity = ps.Size, ps.Capacity
	return res, plans
}

// Swap replaces the served interface under a bumped epoch: widget
// domains widen (or change arbitrarily), the result and plan caches
// start empty, and the compiled page is recompiled on next request — a
// dashboard that keeps its URL while its log grows. A nil db keeps the
// current dataset; a non-nil one (typically a fresh store snapshot
// after row appends) replaces it, so data updates ride the same
// epoch-bump cache discipline as interface updates. In-flight requests
// finish against the snapshot they loaded; new requests see the new
// epoch. Returns the new epoch.
func (h *Hosted) Swap(iface *core.Interface, db engine.Catalog) (uint64, error) {
	if iface == nil {
		return 0, fmt.Errorf("api: swap on %q needs a non-nil interface", h.ID)
	}
	h.swapMu.Lock()
	defer h.swapMu.Unlock()
	cur := h.load()
	if db == nil {
		db = cur.db
	}
	next := h.newEpoch(cur.epoch+1, iface, db)
	// Fold the retiring epoch's cache counters into the cumulative
	// base before the swap; late hits recorded against the old caches
	// after this point are the one tolerated undercount.
	cs, ps := cur.cache.Stats(), cur.plans.Stats()
	h.statsMu.Lock()
	h.cacheBase.Hits += cs.Hits
	h.cacheBase.Misses += cs.Misses
	h.planBase.Hits += ps.Hits
	h.planBase.Misses += ps.Misses
	h.statsMu.Unlock()
	h.state.Store(next)
	return next.epoch, nil
}

// Registry is a concurrency-safe collection of hosted interfaces keyed
// by ID. Reads (the per-request path) take a shared lock; registration
// takes the exclusive lock.
type Registry struct {
	mu        sync.RWMutex
	ifaces    map[string]*Hosted
	cacheSize int
	noMetrics bool
}

// DefaultCacheSize is the per-interface result LRU capacity used when
// the registry was built with NewRegistry.
const DefaultCacheSize = 256

// NewRegistry returns an empty registry whose hosted interfaces get a
// result cache of DefaultCacheSize entries.
func NewRegistry() *Registry { return NewRegistryWithCache(DefaultCacheSize) }

// NewRegistryWithCache returns an empty registry with a custom
// per-interface result-cache capacity (0 disables result caching).
func NewRegistryWithCache(cacheSize int) *Registry {
	return &Registry{ifaces: make(map[string]*Hosted), cacheSize: cacheSize}
}

// Add hosts an interface under the given ID. IDs become one URL path
// segment (/interfaces/{id}/query), so they are restricted to letters,
// digits, '_', '-' and '.'. The database is shared, not copied: callers
// must stop mutating it before serving begins. Adding a duplicate or
// invalid ID or a nil interface/db is an error.
func (r *Registry) Add(id, title string, iface *core.Interface, db engine.Catalog) (*Hosted, error) {
	return r.AddAt(id, title, iface, db, 1)
}

// AddAt is Add with an explicit starting epoch — the restore path
// brings an interface back at (or after) the epoch it was saved at, so
// clients comparing epochs across the restart never observe time
// running backwards.
func (r *Registry) AddAt(id, title string, iface *core.Interface, db engine.Catalog, epoch uint64) (*Hosted, error) {
	if !validID(id) {
		return nil, fmt.Errorf("api: invalid interface id %q (want [A-Za-z0-9._-]+)", id)
	}
	if iface == nil || db == nil {
		return nil, fmt.Errorf("api: interface %q needs a non-nil interface and db", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ifaces[id]; dup {
		return nil, fmt.Errorf("api: duplicate interface id %q", id)
	}
	if epoch == 0 {
		epoch = 1
	}
	h := newHosted(id, title, iface, db, r.cacheSize, epoch)
	if !r.noMetrics {
		h.mx = newHostedMetrics(h)
	}
	r.ifaces[id] = h
	return h, nil
}

// DisableMetrics stops interfaces hosted after this call from
// registering with the process metric registry. It exists for the
// instrumentation-overhead benchmark (a clean "metrics off" baseline),
// not for production use.
func (r *Registry) DisableMetrics() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noMetrics = true
}

// Swap replaces the interface hosted under id (see Hosted.Swap) and
// returns the new epoch.
func (r *Registry) Swap(id string, iface *core.Interface, db engine.Catalog) (uint64, error) {
	h, ok := r.Get(id)
	if !ok {
		return 0, fmt.Errorf("api: unknown interface %q", id)
	}
	return h.Swap(iface, db)
}

// validID reports whether the ID is non-empty and safe to embed as one
// URL path segment.
func validID(id string) bool {
	if id == "" {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// Remove unhosts the interface with the given ID and reports whether
// it was hosted. In-flight requests that already resolved the *Hosted
// finish against the epoch snapshot they loaded; new lookups miss.
// Removal is the registry half of deleting or relinquishing an
// interface — callers that attached live feeds or durable snapshots
// detach those through their own seams.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.ifaces[id]; !ok {
		return false
	}
	delete(r.ifaces, id)
	return true
}

// Get returns the hosted interface with the given ID.
func (r *Registry) Get(id string) (*Hosted, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.ifaces[id]
	return h, ok
}

// List returns the hosted interfaces sorted by ID.
func (r *Registry) List() []*Hosted {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Hosted, 0, len(r.ifaces))
	for _, h := range r.ifaces {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of hosted interfaces.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.ifaces)
}
