package api

import (
	"errors"
	"fmt"
	"net/http"
)

// Error is the service layer's structured error model: a stable
// machine-readable Code (the contract clients switch on), the HTTP
// status a REST transport should map it to, and a human-readable
// Message. Every Service operation returns either nil or an *Error, so
// transports never have to guess a status from error text.
type Error struct {
	Code    string `json:"code"`
	Status  int    `json:"-"`
	Message string `json:"error"`
	// Addr is set on CodeMoved: the base URL of the shard that now
	// hosts the interface, so clients (and the router) can re-issue the
	// request there instead of treating the move as a failure.
	Addr string `json:"addr,omitempty"`
	// TraceID is stamped onto the envelope by the HTTP transport so a
	// failed request can be matched against request logs and the
	// slow-query ring across hops. It is presentation-only: error
	// identity (Code, Message) never depends on it.
	TraceID string `json:"traceId,omitempty"`
}

// WithTrace returns the error with the trace id stamped on. Service
// errors are sometimes shared values (sentinels, pooled paths), so the
// receiver is cloned rather than mutated; a nil receiver or empty id
// passes through unchanged.
func (e *Error) WithTrace(id string) *Error {
	if e == nil || id == "" || e.TraceID == id {
		return e
	}
	c := *e
	c.TraceID = id
	return &c
}

// The v1 error codes. These are part of the versioned contract: codes
// may be added, but existing codes keep their meaning.
const (
	// CodeBadRequest — the request body or parameters could not be
	// decoded (malformed JSON, unknown fields, bad cursor syntax). 400.
	CodeBadRequest = "bad_request"
	// CodeUnauthorized — the operation needs a bearer token and none was
	// presented. 401.
	CodeUnauthorized = "unauthorized"
	// CodeForbidden — a token was presented but it is not the one
	// configured for this interface. 403.
	CodeForbidden = "forbidden"
	// CodeNotFound — no interface is hosted under the requested ID. 404.
	CodeNotFound = "not_found"
	// CodeCursorExpired — the pagination cursor was minted at an earlier
	// epoch of the interface; the underlying result set is gone. Restart
	// from the first page. 410.
	CodeCursorExpired = "cursor_expired"
	// CodePayloadTooLarge — the request body exceeded the endpoint's
	// size cap. 413.
	CodePayloadTooLarge = "payload_too_large"
	// CodeBindRejected — the widget bindings are invalid against the
	// mined interface (unknown path, out-of-domain value, ambiguous
	// binding). 422.
	CodeBindRejected = "bind_rejected"
	// CodeExecFailed — the bindings were valid but the bound query
	// cannot run against the dataset (e.g. a column the sample lacks) —
	// a client-state problem, not a server fault. 422.
	CodeExecFailed = "exec_failed"
	// CodeIngestDisabled — the log endpoint was called on a server
	// running without an ingestor. 501.
	CodeIngestDisabled = "ingest_disabled"
	// CodeIngestFailed — the entries were accepted for decoding but
	// re-mining rejected them. 422.
	CodeIngestFailed = "ingest_failed"
	// CodeRowsRejected — submitted rows name an unknown table, mismatch
	// its column count, or carry values the engine cannot represent
	// (nested arrays/objects). 422.
	CodeRowsRejected = "rows_rejected"

	// CodeMutationConflict — a conditional mutation (ifEpoch set) found
	// the store at a different data epoch: the snapshot the client
	// planned against has been superseded by a concurrent write. The
	// client re-reads and retries.
	CodeMutationConflict = "mutation_conflict"
	// CodePersistenceDisabled — the snapshot endpoint was called on a
	// server running without a data dir. 501.
	CodePersistenceDisabled = "persistence_disabled"
	// CodeSnapshotFailed — writing the durable snapshot failed
	// (disk full, permission, ...). 500.
	CodeSnapshotFailed = "snapshot_failed"
	// CodeRestoreFailed — restoring from the data dir at construction
	// failed (corrupt or unreadable snapshot file). 500.
	CodeRestoreFailed = "restore_failed"
	// CodeMoved — the interface is no longer hosted on this shard: it
	// migrated to the shard whose base URL is in the error's Addr field.
	// The request was NOT processed, so re-issuing it against Addr is
	// always safe (including non-idempotent ingestion). 421.
	CodeMoved = "moved"
	// CodeShardUnavailable — the shard that owns the interface could not
	// be reached (process down, network partition). Transient from the
	// router's point of view; clients may retry. 502.
	CodeShardUnavailable = "shard_unavailable"
	// CodeEpochMismatch — a shard-admin handoff was conditioned on an
	// interface epoch that has since advanced (writes landed between
	// snapshot export and relinquish); the caller re-exports and
	// retries. 409.
	CodeEpochMismatch = "epoch_mismatch"
	// CodeNotOwner — the shard hosts only a follower replica of the
	// interface (or was fenced off by a newer replication term); writes
	// must go to the owner whose base URL is in the error's Addr field.
	// The request was NOT processed, so re-issuing it against Addr is
	// always safe (including non-idempotent ingestion). 421.
	CodeNotOwner = "not_owner"
	// CodeReplicaLagging — the follower replica that received the
	// request has detected a gap in its apply stream and is awaiting a
	// re-seed; its data may be arbitrarily stale. Addr (when set) names
	// the owner, which can answer instead. 503.
	CodeReplicaLagging = "replica_lagging"
	// CodeReplicaOutOfSync — a replication apply arrived out of
	// sequence (the follower missed at least one event); the owner must
	// re-seed the follower with a fresh snapshot frame before streaming
	// resumes. 409.
	CodeReplicaOutOfSync = "replica_out_of_sync"
	// CodeTermMismatch — a replication control operation (promote,
	// demote) was conditioned on a fencing term that has since advanced;
	// the caller re-reads replica status and retries. 409.
	CodeTermMismatch = "term_mismatch"
	// CodeWALFailed — the write-ahead log could not record a publish
	// (disk full, torn log directory, ...). The write is visible locally
	// but was NOT acknowledged as durable; clients should treat the
	// submission as failed and retry. 500.
	CodeWALFailed = "wal_failed"
	// CodeInternal — an unexpected server-side failure. 500.
	CodeInternal = "internal"
)

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// Errf builds an *Error with a formatted message.
func Errf(code string, status int, format string, args ...any) *Error {
	return &Error{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}
}

// Convenience constructors for the common codes.
func errNotFound(id string) *Error {
	return Errf(CodeNotFound, http.StatusNotFound, "unknown interface %q", id)
}

func errBadRequest(format string, args ...any) *Error {
	return Errf(CodeBadRequest, http.StatusBadRequest, format, args...)
}

func errInternal(err error) *Error {
	return Errf(CodeInternal, http.StatusInternalServerError, "%v", err)
}

// ErrMoved builds the structured relocation error a shard returns for
// an interface it handed off to the shard at addr.
func ErrMoved(id, addr string) *Error {
	e := Errf(CodeMoved, http.StatusMisdirectedRequest,
		"interface %q moved to %s", id, addr)
	e.Addr = addr
	return e
}

// errOr preserves a structured *Error riding inside err (the
// replication hook threads not_owner through the ingestion ack path),
// falling back to the given code/status for plain errors.
func errOr(err error, code string, status int) *Error {
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return Errf(code, status, "%v", err)
}

// ErrNotOwner builds the structured write-redirect error a follower
// replica returns for an interface whose owner is the shard at addr.
// An empty addr means the follower does not (yet) know its owner.
func ErrNotOwner(id, addr string) *Error {
	e := Errf(CodeNotOwner, http.StatusMisdirectedRequest,
		"interface %q is a follower replica here; owner is %s", id, addr)
	e.Addr = addr
	return e
}

// ErrReplicaLagging builds the structured stale-replica error a
// follower returns while it awaits a re-seed from the owner at addr.
func ErrReplicaLagging(id, addr string) *Error {
	e := Errf(CodeReplicaLagging, http.StatusServiceUnavailable,
		"follower replica of %q is lagging (awaiting re-seed)", id)
	e.Addr = addr
	return e
}

// FromErr coerces any error into the structured model: an *Error passes
// through (including one wrapped with fmt.Errorf %w); anything else
// becomes CodeInternal.
func FromErr(err error) *Error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return e
	}
	return errInternal(err)
}
