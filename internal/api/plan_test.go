package api

import (
	"testing"

	"repro/internal/ast"
)

func TestPlanKeyCanonical(t *testing.T) {
	n1, n2 := 1.0, 2.0
	txt := "abc"
	a := []WidgetBinding{{Path: "2/0", Number: &n1}, {Path: "3/1", Text: &txt}}
	b := []WidgetBinding{{Path: "3/1", Text: &txt}, {Path: "2/0", Number: &n1}}
	if PlanKey(a) != PlanKey(b) {
		t.Fatal("binding order changed the plan key")
	}
	c := []WidgetBinding{{Path: "2/0", Number: &n2}, {Path: "3/1", Text: &txt}}
	if PlanKey(a) == PlanKey(c) {
		t.Fatal("different values share a plan key")
	}
	d := []WidgetBinding{{Path: "2/0", Absent: true}}
	e := []WidgetBinding{{Path: "2/0", Text: new(string)}}
	if PlanKey(d) == PlanKey(e) {
		t.Fatal("absent and empty-text bindings share a plan key")
	}
	if PlanKey(nil) != "" {
		t.Fatal("empty binding set should key to the initial query")
	}
	v := ast.Leaf(ast.TypeNumExpr, "7")
	f := []WidgetBinding{{Path: "2/0", Value: v}}
	g := []WidgetBinding{{Path: "2/0", Number: &[]float64{7}[0]}}
	if PlanKey(f) == PlanKey(g) {
		// Not required to collide or differ semantically, but they must
		// not be confused with each other's *form* silently producing a
		// wrong plan — distinct forms get distinct keys.
		t.Fatal("value and number forms share a plan key")
	}
}

// TestPlanKeyInjectionResistant: text controlled by the client must
// not be able to forge another binding set's key (a collision would
// let a request skip Bind validation via someone else's cached plan).
func TestPlanKeyInjectionResistant(t *testing.T) {
	x, y := "x", "y"
	legit := []WidgetBinding{{Path: "p", Text: &x}, {Path: "q", Text: &y}}
	// Reconstruct the legit key's tail inside a single binding's text.
	forged := "x|1:qt1:y"
	attack := []WidgetBinding{{Path: "p", Text: &forged}}
	if PlanKey(legit) == PlanKey(attack) {
		t.Fatalf("forged binding collided with a multi-binding key: %q", PlanKey(legit))
	}
	// Separator bytes inside paths must not merge adjacent fields.
	a := []WidgetBinding{{Path: "p:1", Absent: true}}
	b := []WidgetBinding{{Path: "p", Text: &[]string{"1a"}[0]}}
	if PlanKey(a) == PlanKey(b) {
		t.Fatal("length-prefix framing broken")
	}
}

func TestPlanCacheLRUAndStats(t *testing.T) {
	c := NewPlanCache(2)
	p := func(sql string) *Plan { return &Plan{SQL: sql} }
	c.Put("a", p("A"))
	c.Put("b", p("B"))
	if got, ok := c.Get("a"); !ok || got.SQL != "A" {
		t.Fatalf("get a = %v %v", got, ok)
	}
	c.Put("c", p("C")) // evicts b (a was just used)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b not evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.Stats()
	if st.Size != 2 || st.Capacity != 2 || st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Capacity 0 disables.
	d := NewPlanCache(0)
	d.Put("x", p("X"))
	if _, ok := d.Get("x"); ok {
		t.Fatal("disabled cache stored a plan")
	}
}

// TestQueryPlanCache: the second identical widget state reports plan
// "hit" — the binding walk is skipped for repeated widget shapes.
func TestQueryPlanCache(t *testing.T) {
	svc, h := newTestService(t)
	w := sliderWidget(t, h.Iface())
	lo, _ := w.Domain.Range()
	req := QueryRequest{Widgets: []WidgetBinding{{Path: w.Path.String(), Number: &lo}}}
	first, err := svc.Query("olap", req)
	if err != nil || first.Plan != "miss" {
		t.Fatalf("first = %+v (%v)", first, err)
	}
	second, err := svc.Query("olap", req)
	if err != nil || second.Plan != "hit" {
		t.Fatalf("second = %+v (%v), want plan hit", second, err)
	}
	if second.SQL != first.SQL {
		t.Fatalf("cached plan rendered different SQL: %q vs %q", second.SQL, first.SQL)
	}
}

// BenchmarkBindCold is the baseline a cold state pays without the plan
// cache: full binding walk, SQL rendering and canonical hashing.
func BenchmarkBindCold(b *testing.B) {
	iface, _ := minedOLAP(b)
	w := sliderWidget(b, iface)
	lo, _ := w.Domain.Range()
	bindings := []WidgetBinding{{Path: w.Path.String(), Number: &lo}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q, err := Bind(iface, bindings)
		if err != nil {
			b.Fatal(err)
		}
		_ = ast.SQL(q)
		_ = ast.HashOf(q)
	}
}

// BenchmarkBindPlanCached is the same widget state served through the
// plan cache: one key render plus a locked map lookup.
func BenchmarkBindPlanCached(b *testing.B) {
	iface, _ := minedOLAP(b)
	w := sliderWidget(b, iface)
	lo, _ := w.Domain.Range()
	bindings := []WidgetBinding{{Path: w.Path.String(), Number: &lo}}
	cache := NewPlanCache(DefaultCacheSize)
	q, err := Bind(iface, bindings)
	if err != nil {
		b.Fatal(err)
	}
	cache.Put(PlanKey(bindings), &Plan{Query: q, SQL: ast.SQL(q), Hash: ast.HashOf(q)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := cache.Get(PlanKey(bindings)); !ok {
			b.Fatal("plan miss")
		}
	}
}
