//go:build !race

package api

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// TestMetricsOverhead pins the issue's overhead budget as an
// executable check: the cached-plan query path with instrumentation
// live must stay within 1.1x of the same path with metrics disabled.
// The budget holds because the hot path pays only one atomic tick 7 of
// 8 times (the 1:8 sampler) and every per-interface counter is a lazy
// scrape-time closure.
//
// Measured as min-of-rounds on both sides (the minimum is the stable
// statistic on a shared machine; means drift with scheduler noise),
// with a few attempts before failing. OBS_OVERHEAD_X overrides the
// bound; excluded under -race, whose instrumentation distorts both
// sides unevenly.
func TestMetricsOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	limit := 1.1
	if s := os.Getenv("OBS_OVERHEAD_X"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad OBS_OVERHEAD_X %q: %v", s, err)
		}
		limit = v
	}

	svcOn, reqOn := newBenchService(t, true)
	svcOff, reqOff := newBenchService(t, false)

	const perRound = 5000
	const rounds = 6
	measure := func(svc *Service, req QueryRequest) time.Duration {
		var resp QueryResponse
		best := time.Duration(1<<63 - 1)
		for r := 0; r < rounds; r++ {
			start := time.Now()
			for i := 0; i < perRound; i++ {
				if err := svc.QueryInto("olap", req, &resp); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}

	// Warm both paths out of any cold-start effects before timing.
	measure(svcOn, reqOn)
	measure(svcOff, reqOff)

	const attempts = 5
	var lines []string
	for a := 0; a < attempts; a++ {
		// Interleave so frequency scaling hits both sides alike.
		off := measure(svcOff, reqOff)
		on := measure(svcOn, reqOn)
		ratio := float64(on) / float64(off)
		lines = append(lines, fmt.Sprintf("attempt %d: off %v, on %v per %d queries, ratio %.3fx",
			a, off, on, perRound, ratio))
		if ratio <= limit {
			for _, l := range lines {
				t.Log(l)
			}
			return
		}
	}
	for _, l := range lines {
		t.Log(l)
	}
	t.Fatalf("instrumented cached-plan path exceeded %.2fx of the metrics-off baseline on every attempt", limit)
}
