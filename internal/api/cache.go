package api

import (
	"container/list"
	"sync"

	"repro/internal/ast"
	"repro/internal/engine"
)

// Cache is a concurrency-safe LRU of query results keyed by the
// canonical structural hash of the bound query AST (ast.HashOf). Widget
// interactions are bursty and highly repetitive — many clients sit on
// the same dashboard and flip the same options — so a small result
// cache absorbs most of the execution load (result caching in the
// spirit of query answering under updates: recompute only what the
// interaction actually changed).
//
// Hash collisions are guarded by comparing the canonical SQL rendering
// of the query; a colliding entry is treated as a miss and overwritten.
type Cache struct {
	mu     sync.Mutex
	cap    int
	ll     *list.List // front = most recently used
	items  map[ast.Hash]*list.Element
	hits   uint64
	misses uint64
}

// CachedResult is what the result cache hands the query path: the
// result relation plus its full JSON-scalar projection, computed once
// when the entry is stored. Serving a page is then a subslice of Rows
// — no per-request value conversion, no per-request allocation. Both
// fields are shared across requests and must be treated as immutable.
type CachedResult struct {
	Res  *engine.Table
	Rows [][]any // rowsJSON(Res, 0, len(Res.Rows)), index-aligned
}

type cacheEntry struct {
	key ast.Hash
	sql string // canonical rendering, verified on hit
	res *CachedResult
}

// NewCache returns an LRU holding at most capacity results. A capacity
// of 0 or less disables caching (every lookup misses, nothing is kept).
func NewCache(capacity int) *Cache {
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[ast.Hash]*list.Element),
	}
}

// Get returns the cached result for the query hash, verifying the
// canonical SQL to rule out hash collisions. The returned result is
// shared and must be treated as immutable by callers.
func (c *Cache) Get(key ast.Hash, sql string) (*CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		if e.sql == sql {
			c.ll.MoveToFront(el)
			c.hits++
			return e.res, true
		}
	}
	c.misses++
	return nil, false
}

// Put wraps a fresh result with its JSON projection, stores it
// (evicting the least recently used entry when the cache is full) and
// returns the wrapped entry so the miss path serves from the same
// projection a later hit would. With caching disabled the wrapping
// still happens — the current request needs it — it just isn't kept.
// The caller must not mutate res after handing it over.
func (c *Cache) Put(key ast.Hash, sql string, res *engine.Table) *CachedResult {
	cr := &CachedResult{Res: res, Rows: rowsJSON(res, 0, len(res.Rows))}
	if c.cap <= 0 {
		return cr
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value = &cacheEntry{key: key, sql: sql, res: cr}
		c.ll.MoveToFront(el)
		return cr
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sql: sql, res: cr})
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
	return cr
}

// CacheStats is a point-in-time snapshot of cache effectiveness,
// exposed by the /debug endpoint and echoed in query responses.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Size     int    `json:"size"`
	Capacity int    `json:"capacity"`
}

// Stats returns a snapshot of the hit/miss counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Size: c.ll.Len(), Capacity: c.cap}
}
