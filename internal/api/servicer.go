package api

import (
	"context"

	"repro/internal/qlog"
)

// Servicer is the extracted operation surface of the service layer —
// the seam every transport is written against. *Service implements it
// over an in-process registry; internal/shard's Router implements it
// by proxying each operation to the shard that owns the interface, so
// a fleet of processes is a drop-in replacement for one: the HTTP
// transport (internal/server) cannot tell whether it fronts a single
// registry or a routed cluster.
//
// Operations that take an interface ID return *Error with CodeNotFound
// when the ID is unknown, CodeMoved (with the new owner's address)
// when a shard has relinquished the interface, and CodeShardUnavailable
// when a routed implementation cannot reach the owner.
type Servicer interface {
	// ListInterfaces returns a summary row per hosted interface, sorted
	// by ID. A routed implementation fans out and merges.
	ListInterfaces() []InterfaceSummary
	// GetInterface returns one interface's widgets and initial query.
	GetInterface(id string) (*InterfaceDetail, error)
	// Epoch returns the interface's current epoch.
	Epoch(id string) (*EpochResponse, error)
	// Page returns the compiled live HTML page for the interface.
	Page(id string) (string, error)
	// Query binds widget state, executes, and returns one page of rows.
	Query(id string, req QueryRequest) (*QueryResponse, error)
	// IngestReady reports whether IngestLog can accept entries for the
	// interface (cheap pre-check before decoding a large body).
	IngestReady(id string) error
	// IngestLog submits query-log entries for incremental re-mining.
	IngestLog(id string, entries []qlog.Entry, flush bool) (*IngestAck, error)
	// AppendRows submits new dataset rows for one table.
	AppendRows(id string, req RowsRequest, flush bool) (*RowsAck, error)
	// MutateRows evaluates one UPDATE or DELETE statement against the
	// interface's store and publishes the result as a versioned
	// mutation.
	MutateRows(id string, req MutateRequest) (*MutateAck, error)
	// DeleteInterface unhosts the interface: it stops being served,
	// its live feed detaches and its durable snapshot (if any) is
	// removed.
	DeleteInterface(id string) (*DeleteAck, error)
	// Snapshot persists hosted interfaces durably. A routed
	// implementation fans out to every shard.
	Snapshot() (*SnapshotResult, error)
	// Health reports liveness, build info and per-interface serving
	// state.
	Health() *Health
	// Debug returns cache and traffic counters per interface.
	Debug() *DebugInfo
}

var _ Servicer = (*Service)(nil)

// CtxQuerier is the optional context-carrying query seam. The Servicer
// surface is deliberately context-free, but the query path is where
// cross-hop tracing matters: a transport that has a request context
// (carrying the obs trace id) type-asserts for this interface and
// prefers it, so the trace id minted at the edge reaches slow-query
// rings and proxied hops. Implementations must behave exactly like
// QueryInto otherwise.
type CtxQuerier interface {
	QueryIntoCtx(ctx context.Context, id string, req QueryRequest, resp *QueryResponse) error
}

var _ CtxQuerier = (*Service)(nil)
