package api

import "testing"

// stubDetacher records Detach calls (the live-feed half of deletion).
type stubDetacher struct {
	Ingestor
	detached []string
}

func (d *stubDetacher) Detach(id string) { d.detached = append(d.detached, id) }

// stubRemover implements Persister + SnapshotRemover.
type stubRemover struct {
	removed []string
	fail    error
}

func (r *stubRemover) SaveAll() (*SnapshotResult, error) { return &SnapshotResult{}, nil }
func (r *stubRemover) Restore() (*RestoreResult, error)  { return &RestoreResult{}, nil }
func (r *stubRemover) RemoveSnapshot(id string) error {
	r.removed = append(r.removed, id)
	return r.fail
}

func TestRegistryRemove(t *testing.T) {
	svc, h := newTestService(t)
	reg := svc.Registry()
	if !reg.Remove("olap") {
		t.Fatal("Remove(olap) = false for a hosted interface")
	}
	if reg.Remove("olap") {
		t.Fatal("Remove(olap) = true twice")
	}
	if _, ok := reg.Get("olap"); ok {
		t.Fatal("removed interface still resolvable")
	}
	// An already-resolved handle keeps working against its snapshot.
	if h.Epoch() == 0 {
		t.Fatal("resolved handle broke after removal")
	}
}

func TestDeleteInterface(t *testing.T) {
	svc, _ := newTestService(t)
	det := &stubDetacher{}
	rem := &stubRemover{}
	svc.SetIngestor(det)
	svc.SetPersister(rem)

	ack, err := svc.DeleteInterface("olap")
	if err != nil {
		t.Fatal(err)
	}
	if !ack.Deleted || ack.ID != "olap" {
		t.Fatalf("ack = %+v", ack)
	}
	if len(det.detached) != 1 || det.detached[0] != "olap" {
		t.Fatalf("feed not detached: %v", det.detached)
	}
	if len(rem.removed) != 1 || rem.removed[0] != "olap" {
		t.Fatalf("snapshot not removed: %v", rem.removed)
	}
	// Gone for every operation.
	if _, err := svc.GetInterface("olap"); errCode(t, err) != CodeNotFound {
		t.Fatalf("post-delete get = %v", err)
	}
	if _, err := svc.DeleteInterface("olap"); errCode(t, err) != CodeNotFound {
		t.Fatalf("double delete = %v", err)
	}
	if n := len(svc.ListInterfaces()); n != 0 {
		t.Fatalf("list still shows %d interfaces", n)
	}
}

func TestDeleteInterfaceWithoutSeams(t *testing.T) {
	// No ingestor, no persister: deletion is just the registry removal.
	svc, _ := newTestService(t)
	if _, err := svc.DeleteInterface("olap"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Query("olap", QueryRequest{}); errCode(t, err) != CodeNotFound {
		t.Fatalf("post-delete query = %v", err)
	}
}
