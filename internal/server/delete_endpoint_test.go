package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/api"
)

// doDelete issues DELETE /v1/interfaces/{id} with an optional token.
func doDelete(t *testing.T, base, id, token string) (int, *api.DeleteAck, *api.Error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/v1/interfaces/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e api.Error
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("decode error envelope: %v", err)
		}
		return resp.StatusCode, nil, &e
	}
	var ack api.DeleteAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatalf("decode ack: %v", err)
	}
	return resp.StatusCode, &ack, nil
}

func TestDeleteEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	status, ack, _ := doDelete(t, ts.URL, "olap", "")
	if status != http.StatusOK || ack == nil || !ack.Deleted || ack.ID != "olap" {
		t.Fatalf("delete = %d %+v", status, ack)
	}

	// Gone from every surface; a second delete is a structured 404.
	var list []api.InterfaceSummary
	if code := getJSON(t, ts.URL+"/v1/interfaces", &list); code != http.StatusOK || len(list) != 0 {
		t.Fatalf("post-delete list = %d %v", code, list)
	}
	status, _, e := doDelete(t, ts.URL, "olap", "")
	if status != http.StatusNotFound || e == nil || e.Code != api.CodeNotFound {
		t.Fatalf("double delete = %d %+v", status, e)
	}
}

// TestDeleteEndpointRequiresAuth: deletion is a mutating endpoint and
// rides the same bearer-token protection as query/log/rows.
func TestDeleteEndpointRequiresAuth(t *testing.T) {
	ts, _ := newTestServer(t, WithAuth(AuthConfig{Token: "s3cret"}))

	status, _, e := doDelete(t, ts.URL, "olap", "")
	if status != http.StatusUnauthorized || e == nil || e.Code != api.CodeUnauthorized {
		t.Fatalf("unauthenticated delete = %d %+v", status, e)
	}
	status, _, e = doDelete(t, ts.URL, "olap", "wrong")
	if status != http.StatusForbidden || e == nil || e.Code != api.CodeForbidden {
		t.Fatalf("wrong-token delete = %d %+v", status, e)
	}
	status, ack, _ := doDelete(t, ts.URL, "olap", "s3cret")
	if status != http.StatusOK || ack == nil || !ack.Deleted {
		t.Fatalf("authenticated delete = %d %+v", status, ack)
	}
}
